// Compaction demonstrates the two dimensions of the paper's SI test-set
// compaction in isolation (Section 3 and Fig. 2):
//
//   - vertical: greedy clique-cover merging of compatible patterns,
//     including the shared-bus conflict rule, compared against the
//     DSATUR and exact reference covers on a small set;
//   - horizontal: hypergraph partitioning of the cores so most patterns
//     shrink to the wrapper cells of one core group, with the cut
//     hyperedges (the Fig. 2 "7-4-6" pattern) kept at full length.
package main

import (
	"fmt"
	"log"

	"sitam"
	"sitam/internal/compaction"
	"sitam/internal/hypergraph"
	"sitam/internal/sifault"
)

func main() {
	log.SetFlags(0)
	s, err := sitam.LoadBenchmark("p34392")
	if err != nil {
		log.Fatal(err)
	}
	sp := sitam.NewPatternSpace(s)

	// Vertical compaction: greedy vs the reference covers.
	small, err := sitam.GeneratePatterns(s, sitam.GenConfig{N: 18, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	_, gStats := compaction.Greedy(sp, small)
	_, dStats, err := compaction.DSATUR(small)
	if err != nil {
		log.Fatal(err)
	}
	_, eStats, err := compaction.Exact(small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Vertical compaction of 18 patterns (clique cover of the compatibility graph):")
	fmt.Printf("  greedy (paper's heuristic): %d patterns\n", gStats.Compacted)
	fmt.Printf("  DSATUR coloring:            %d patterns\n", dStats.Compacted)
	fmt.Printf("  exact minimum cover:        %d patterns\n", eStats.Compacted)

	// The shared-bus rule at work.
	a := &sifault.Pattern{
		Care:   []sifault.Care{{Pos: 0, Sym: sifault.Rise}},
		Bus:    []sifault.BusUse{{Line: 3, Driver: 1}},
		Weight: 1,
	}
	b := &sifault.Pattern{
		Care:   []sifault.Care{{Pos: 100, Sym: sifault.Fall}},
		Bus:    []sifault.BusUse{{Line: 3, Driver: 2}},
		Weight: 1,
	}
	fmt.Printf("\nShared-bus rule: disjoint patterns driving bus line 3 from cores 1 and 2:")
	fmt.Printf(" compatible = %v (must be false)\n", compaction.Compatible(a, b))

	// Horizontal compaction at scale.
	patterns, err := sitam.GeneratePatterns(s, sitam.GenConfig{N: 20000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTwo-dimensional compaction of %d patterns on %s:\n", len(patterns), s.Name)
	fmt.Printf("%-4s %10s %10s %10s %12s\n", "g", "compacted", "ratio", "residual", "max group len")
	for _, g := range []int{1, 2, 4, 8} {
		gr, err := sitam.BuildGroups(s, patterns, sitam.GroupingOptions{Parts: g, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		maxLen := 0
		for _, grp := range gr.Groups {
			l := 0
			for _, id := range grp.Cores {
				l += s.CoreByID(id).WOC()
			}
			if grp.Name != "RES" && l > maxLen {
				maxLen = l
			}
		}
		fmt.Printf("%-4d %10d %10.1f %10d %12d\n",
			g, gr.TotalCompacted(), gr.Stats.Ratio(), gr.CutPatterns, maxLen)
	}
	fmt.Printf("(full pattern length: %d WOCs)\n", s.TotalWOC())

	// The Fig. 2 example: eight cores, hyperedges = care-core sets,
	// one edge (7-4-6) spanning the parts.
	fmt.Println("\nFig. 2 reconstruction: 8 cores, patterns as hyperedges, 2 parts")
	h := hypergraph.New([]int64{8, 8, 8, 8, 8, 8, 8, 8})
	edges := [][]int{{0, 1}, {1, 2}, {0, 2}, {4, 5}, {5, 7}, {4, 7}, {6, 3, 5}}
	for _, e := range edges {
		if err := h.AddEdge(e, 1); err != nil {
			log.Fatal(err)
		}
	}
	assign, cut, err := hypergraph.PartitionK(h, 2, hypergraph.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  parts: %v, cut hyperedges: %d (the cut patterns stay full-length)\n", assign, cut)
}
