// Fig3 reconstructs Example 1 and Fig. 3 of the paper: the same SOC and
// the same three SI test groups under two different TAM designs, showing
// how the bottleneck TAM — and therefore the SI testing time — changes
// with the architecture even though the SI tests use the same total TAM
// resources.
package main

import (
	"fmt"
	"log"

	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/wrapper"
)

func main() {
	log.SetFlags(0)

	// Five cores with 8 WOCs each; per-core SI shift on a 2-wire rail
	// is ceil(8/2) = 4 cycles per pattern.
	s := &soc.SOC{Name: "fig3", BusWidth: 8}
	for id := 1; id <= 5; id++ {
		s.CoreList = append(s.CoreList, &soc.Core{
			ID: id, Inputs: 2, Outputs: 8, ScanChains: []int{5}, Patterns: 10,
		})
	}
	tt, err := wrapper.NewTimeTable(s, 8)
	if err != nil {
		log.Fatal(err)
	}

	groups := []*sischedule.Group{
		{Name: "SI1", Cores: []int{1, 2, 3, 4, 5}, Patterns: 10},
		{Name: "SI2", Cores: []int{1, 4, 5}, Patterns: 20},
		{Name: "SI3", Cores: []int{2, 3}, Patterns: 5},
	}

	show := func(label string, build func(a *tam.Architecture)) {
		a := tam.New(s, tt)
		build(a)
		fmt.Printf("--- TAM design %s ---\n%s", label, a)
		times, err := sischedule.CalculateSITestTime(a, groups, sischedule.Model{})
		if err != nil {
			log.Fatal(err)
		}
		for i, g := range groups {
			fmt.Printf("  time_si(%s) = %d (bottleneck TAM%d)\n", g.Name, times[i].Time, times[i].Bottleneck+1)
		}
		sched, err := sischedule.ScheduleSITest(a, groups, sischedule.Model{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(sched)
		fmt.Println()
	}

	// Fig. 3(a): TAM1={1,2}, TAM2={3,4}, TAM3={5}.
	// T_si1 = max(T1+T2, T3+T4, T5) = T1+T2.
	show("(a)", func(a *tam.Architecture) {
		a.AddRail([]int{1, 2}, 2)
		a.AddRail([]int{3, 4}, 2)
		a.AddRail([]int{5}, 2)
	})

	// Fig. 3(b): TAM1={1,4,5}, TAM2={2,3}.
	// T_si1 = max(T1+T4+T5, T2+T3) = T1+T4+T5 — larger, despite SI1
	// using all TAM wires in both designs.
	show("(b)", func(a *tam.Architecture) {
		a.AddRail([]int{1, 4, 5}, 2)
		a.AddRail([]int{2, 3}, 2)
	})

	fmt.Println("Note how SI1's time grows from design (a) to (b): the SI testing time")
	fmt.Println("depends on the architecture, which is why Algorithm 2 evaluates the SI")
	fmt.Println("schedule inside the TAM optimization loop rather than after it.")
}
