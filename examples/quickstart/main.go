// Quickstart: load a benchmark SOC, generate SI test patterns, run the
// two-dimensional compaction, optimize the TAM architecture with the
// SI-aware algorithm, and print the resulting rails, schedule and time
// breakdown — the library's whole pipeline in one screen of code.
//
// It also prints a few generated patterns in the notation of the
// paper's Table 1 (on a small synthetic SOC so the rows fit a
// terminal).
package main

import (
	"fmt"
	"log"

	"sitam"
)

func main() {
	log.SetFlags(0)

	// Table 1-style pattern listing on a small SOC.
	small := &sitam.SOC{
		Name:     "demo",
		BusWidth: 8,
		CoreList: []*sitam.Core{
			{ID: 1, Inputs: 2, Outputs: 6, Patterns: 1},
			{ID: 2, Inputs: 2, Outputs: 6, Patterns: 1},
			{ID: 3, Inputs: 2, Outputs: 6, Patterns: 1},
		},
	}
	pats, err := sitam.GeneratePatterns(small, sitam.GenConfig{N: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	sp := sitam.NewPatternSpace(small)
	fmt.Println("SI test patterns (Table 1 notation: |core1|core2|core3‖bus|):")
	for i, p := range pats {
		fmt.Printf("  p%d: %s\n", i+1, p.Format(sp))
	}

	// Full pipeline on a benchmark SOC.
	s, err := sitam.LoadBenchmark("p93791")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", s.Summary())

	patterns, err := sitam.GeneratePatterns(s, sitam.GenConfig{N: 10000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	groups, err := sitam.BuildGroups(s, patterns, sitam.GroupingOptions{Parts: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-D compaction: %d patterns -> %d in %d groups (%.1fx, %d residual)\n",
		groups.Stats.Original, groups.TotalCompacted(), len(groups.Groups),
		groups.Stats.Ratio(), groups.CutPatterns)

	const wmax = 32
	res, err := sitam.Optimize(s, wmax, groups.Groups, sitam.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSI-aware TAM architecture (W_max=%d):\n%s", wmax, res.Architecture)
	fmt.Print(res.Schedule)
	fmt.Printf("T_in=%d  T_si=%d  T_soc=%d clock cycles\n",
		res.Breakdown.TimeIn, res.Breakdown.TimeSI, res.Breakdown.TimeSOC)

	base, err := sitam.OptimizeBaseline(s, wmax, groups.Groups, sitam.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSI-oblivious baseline (TR-Architect): T_soc=%d — the SI-aware design saves %.1f%%\n",
		base.Breakdown.TimeSOC,
		100*float64(base.Breakdown.TimeSOC-res.Breakdown.TimeSOC)/float64(base.Breakdown.TimeSOC))
}
