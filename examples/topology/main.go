// Topology demonstrates the interconnect-netlist path of the library
// (the arbitrary SOC interconnect topologies of the paper's Fig. 1):
// build a netlist over a benchmark SOC, derive coupling neighborhoods
// with a locality factor, synthesize deterministic MA and reduced-MT
// test sets, and push them through compaction and SI-aware TAM
// optimization.
package main

import (
	"fmt"
	"log"

	"sitam"
)

func main() {
	log.SetFlags(0)
	s, err := sitam.LoadBenchmark("p93791")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Summary())

	topo, err := sitam.RandomTopology(s, sitam.TopologyConfig{FanOut: 2, Width: 16, BusFraction: 0.4}, 11)
	if err != nil {
		log.Fatal(err)
	}
	onBus := 0
	for _, n := range topo.Nets {
		if n.BusLine >= 0 {
			onBus++
		}
	}
	fmt.Printf("topology: %d nets (%d routed over the %d-bit shared bus)\n",
		len(topo.Nets), onBus, s.BusWidth)

	for _, k := range []int{1, 2, 3} {
		ma, err := sitam.MAPatterns(topo, k)
		if err != nil {
			log.Fatal(err)
		}
		groups, err := sitam.BuildGroups(s, ma, sitam.GroupingOptions{Parts: 4, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sitam.Optimize(s, 32, groups.Groups, sitam.DefaultModel())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MA, locality k=%d: %5d patterns -> %5d compacted; T_si=%7d cc, T_soc=%d cc\n",
			k, len(ma), groups.TotalCompacted(), res.Breakdown.TimeSI, res.Breakdown.TimeSOC)
	}

	// Reduced MT explodes with k; cap it and watch the volume climb.
	for _, k := range []int{1, 2} {
		mt, err := sitam.ReducedMTPatterns(topo, k, 300000)
		if err != nil {
			log.Fatal(err)
		}
		groups, err := sitam.BuildGroups(s, mt, sitam.GroupingOptions{Parts: 4, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reduced MT, k=%d: %6d patterns -> %6d compacted (%.1fx)\n",
			k, len(mt), groups.TotalCompacted(), groups.Stats.Ratio())
	}
}
