// Sweep renders the headline result of the paper as ASCII curves: total
// SOC test time versus TAM width for the SI-oblivious baseline and the
// SI-aware optimizer, at a pattern volume where SI testing matters. The
// widening gap with W_max — and the flattening of the p34392 curve once
// its bottleneck core pins the InTest floor — are the shapes the
// paper's Tables 2 and 3 report.
package main

import (
	"fmt"
	"log"
	"strings"

	"sitam"
)

func main() {
	log.SetFlags(0)
	const (
		nr   = 20000
		seed = 1
	)
	widths := []int{8, 16, 24, 32, 40, 48, 56, 64}

	for _, name := range []string{"p34392", "p93791"} {
		s, err := sitam.LoadBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		patterns, err := sitam.GeneratePatterns(s, sitam.GenConfig{N: nr, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		gr, err := sitam.BuildGroups(s, patterns, sitam.GroupingOptions{Parts: 4, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}

		var base, aware []int64
		for _, w := range widths {
			b, err := sitam.OptimizeBaseline(s, w, gr.Groups, sitam.DefaultModel())
			if err != nil {
				log.Fatal(err)
			}
			a, err := sitam.Optimize(s, w, gr.Groups, sitam.DefaultModel())
			if err != nil {
				log.Fatal(err)
			}
			base = append(base, b.Breakdown.TimeSOC)
			aware = append(aware, a.Breakdown.TimeSOC)
		}

		fmt.Printf("%s, N_r=%d, g=4 — T_soc vs W_max ('o' = SI-oblivious, '*' = SI-aware)\n\n", name, nr)
		plot(widths, base, aware)
		fmt.Println()
	}
}

// plot draws two series as a crude ASCII scatter over a 20-row grid.
func plot(widths []int, a, b []int64) {
	var lo, hi int64
	for i := range a {
		for _, v := range []int64{a[i], b[i]} {
			if lo == 0 || v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	const rows = 18
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", 4*len(widths)+2))
	}
	put := func(col int, v int64, mark byte) {
		r := int(float64(hi-v) / float64(hi-lo) * float64(rows-1))
		c := 2 + 4*col
		if grid[r][c] == ' ' || grid[r][c] == mark {
			grid[r][c] = mark
		} else {
			grid[r][c] = '+' // both series share the cell
		}
	}
	for i := range widths {
		put(i, a[i], 'o')
		put(i, b[i], '*')
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7dk", hi/1000)
		case rows - 1:
			label = fmt.Sprintf("%7dk", lo/1000)
		}
		fmt.Printf("%s |%s\n", label, row)
	}
	fmt.Printf("         +%s\n", strings.Repeat("-", 4*len(widths)))
	fmt.Print("          ")
	for _, w := range widths {
		fmt.Printf("%4d", w)
	}
	fmt.Println("   (W_max)")
}
