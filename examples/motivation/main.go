// Motivation reproduces the Section 2 back-of-envelope analysis that
// motivates the paper, then verifies it constructively: it builds the
// 10-core, 32-bit-bus SOC as an actual interconnect topology,
// synthesizes the maximal-aggressor and reduced multiple-transition test
// sets, and compares the resulting serial external test time with the
// time after compaction and SI-aware TAM optimization.
package main

import (
	"fmt"
	"log"

	"sitam"
	"sitam/internal/experiments"
)

func main() {
	log.SetFlags(0)

	// The analytical estimate, exactly as printed in the paper.
	fmt.Print(experiments.DefaultMotivation().Format())

	// Now the constructive version: a real topology with the same
	// shape. Ten cores, each sending 32-bit data to two other cores.
	s := &sitam.SOC{Name: "bus10", BusWidth: 32}
	for id := 1; id <= 10; id++ {
		s.CoreList = append(s.CoreList, &sitam.Core{
			ID: id, Inputs: 100, Outputs: 100, ScanChains: []int{50, 50}, Patterns: 100,
		})
	}
	topo, err := sitam.RandomTopology(s, sitam.TopologyConfig{FanOut: 2, Width: 32, BusFraction: 0.5}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nConstructed topology: %d victim nets\n", len(topo.Nets))

	ma, err := sitam.MAPatterns(topo, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MA test set: %d vector pairs (6N)\n", len(ma))

	mt, err := sitam.ReducedMTPatterns(topo, 3, 200000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced MT test set (k=3): %d vector pairs (bound N*2^(2k+2) = %d)\n",
		len(mt), int64(len(topo.Nets))<<8)

	// What the paper's machinery does to that MA test set.
	groups, err := sitam.BuildGroups(s, ma, sitam.GroupingOptions{Parts: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2-D compaction of the MA set: %d -> %d patterns (%.1fx)\n",
		groups.Stats.Original, groups.TotalCompacted(), groups.Stats.Ratio())

	res, err := sitam.Optimize(s, 32, groups.Groups, sitam.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	serial := int64(len(ma)) * int64(s.TotalTerminals())
	fmt.Printf("serial 1-bit ExTest of the raw MA set: %d cc\n", serial)
	fmt.Printf("after compaction + SI-aware TAM (W=32): T_si=%d cc (%.0fx faster)\n",
		res.Breakdown.TimeSI, float64(serial)/float64(res.Breakdown.TimeSI))
	fmt.Printf("total SOC test time including core-internal tests: %d cc\n", res.Breakdown.TimeSOC)
}
