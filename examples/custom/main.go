// Custom shows the library on a user-defined SOC instead of the
// embedded benchmarks: the SOC is described in the ITC'02-style .soc
// text format, parsed, and swept over TAM widths comparing the
// SI-oblivious baseline against the SI-aware optimizer — the workflow a
// system integrator would follow for their own design.
package main

import (
	"fmt"
	"log"
	"strings"

	"sitam"
)

const mySOC = `
SocName camera-isp
BusWidth 16
TotalModules 7

Module 0
  Name top
  Inputs 64
  Outputs 64
  Bidirs 0

Module 1
  Name sensor-if
  Inputs 40
  Outputs 36
  Bidirs 0
  ScanChains 4 : 220 215 210 205
  Patterns 310

Module 2
  Name demosaic
  Inputs 48
  Outputs 48
  Bidirs 0
  ScanChains 8 : 150 150 148 148 146 146 144 144
  Patterns 420

Module 3
  Name noise-reduce
  Inputs 36
  Outputs 36
  Bidirs 0
  ScanChains 6 : 180 178 176 174 172 170
  Patterns 380

Module 4
  Name scaler
  Inputs 32
  Outputs 40
  Bidirs 0
  ScanChains 3 : 120 118 116
  Patterns 250

Module 5
  Name jpeg
  Inputs 44
  Outputs 28
  Bidirs 0
  ScanChains 10 : 90 90 88 88 86 86 84 84 82 82
  Patterns 520

Module 6
  Name dma
  Inputs 24
  Outputs 32
  Bidirs 8
  Patterns 1500
`

func main() {
	log.SetFlags(0)
	s, err := sitam.ParseSOC(strings.NewReader(mySOC))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Summary())

	patterns, err := sitam.GeneratePatterns(s, sitam.GenConfig{N: 20000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Pick the grouping count by trying a few, exactly like the
	// experiments do.
	bestGroups := map[int][]*sitam.Group{}
	for _, g := range []int{1, 2, 3} {
		gr, err := sitam.BuildGroups(s, patterns, sitam.GroupingOptions{Parts: g, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		bestGroups[g] = gr.Groups
	}

	fmt.Printf("\n%-6s %14s %14s %9s\n", "Wmax", "baseline (cc)", "SI-aware (cc)", "saving")
	for _, w := range []int{8, 16, 24, 32} {
		var base, aware int64
		for _, g := range []int{1, 2, 3} {
			b, err := sitam.OptimizeBaseline(s, w, bestGroups[g], sitam.DefaultModel())
			if err != nil {
				log.Fatal(err)
			}
			a, err := sitam.Optimize(s, w, bestGroups[g], sitam.DefaultModel())
			if err != nil {
				log.Fatal(err)
			}
			if base == 0 || b.Breakdown.TimeSOC < base {
				base = b.Breakdown.TimeSOC
			}
			if aware == 0 || a.Breakdown.TimeSOC < aware {
				aware = a.Breakdown.TimeSOC
			}
		}
		fmt.Printf("%-6d %14d %14d %8.1f%%\n",
			w, base, aware, 100*float64(base-aware)/float64(base))
	}

	// Show the winning architecture at W=16 in detail.
	res, err := sitam.Optimize(s, 16, bestGroups[2], sitam.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSI-aware architecture at W_max=16:\n%s%s", res.Architecture, res.Schedule)
}
