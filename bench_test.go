package sitam

// Benchmarks regenerating the paper's evaluation artifacts, one per
// table and figure, plus micro-benchmarks of every subsystem and the
// ablation benches DESIGN.md calls out.
//
// The table benches run a reduced sweep per iteration (smaller N_r and
// fewer widths than the paper) so `go test -bench=.` stays laptop-
// friendly; the full-scale sweep is the cmd/socbench binary, whose
// output is recorded in EXPERIMENTS.md. Shape metrics (the paper's
// ΔT_[8] and ΔT_g, in percent) are attached to the bench results via
// b.ReportMetric.

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"sitam/internal/compaction"
	"sitam/internal/core"
	"sitam/internal/experiments"
	"sitam/internal/hypergraph"
	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/topology"
	"sitam/internal/trarchitect"
	"sitam/internal/wrapper"
)

// benchTable runs a reduced Tables 2/3 sweep for one SOC.
func benchTable(b *testing.B, name string) {
	s := soc.MustLoadBenchmark(name)
	cfg := experiments.TableConfig{
		Widths:    []int{8, 32, 64},
		Nr:        []int{5000},
		Groupings: []int{1, 4},
		Seed:      1,
	}
	var lastD8, lastDg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.RunTable(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := tbl.Cells[len(tbl.Cells)-1]
		lastD8, lastDg = last.DeltaT8(), last.DeltaTg()
	}
	b.ReportMetric(lastD8, "ΔT8_W64_%")
	b.ReportMetric(lastDg, "ΔTg_W64_%")
}

// BenchmarkTable2P34392 regenerates (at reduced scale) the paper's
// Table 2: p34392 overall test time, baseline vs SI-aware.
func BenchmarkTable2P34392(b *testing.B) { benchTable(b, "p34392") }

// BenchmarkTable3P93791 regenerates (at reduced scale) the paper's
// Table 3: p93791 overall test time, baseline vs SI-aware.
func BenchmarkTable3P93791(b *testing.B) { benchTable(b, "p93791") }

// BenchmarkFig3Schedule exercises Example 1 / Fig. 3: computing the SI
// test times and the Algorithm 1 schedule for the five-core SOC under
// the two TAM designs of the figure.
func BenchmarkFig3Schedule(b *testing.B) {
	s := &soc.SOC{Name: "fig3", BusWidth: 8}
	for id := 1; id <= 5; id++ {
		s.CoreList = append(s.CoreList, &soc.Core{
			ID: id, Inputs: 2, Outputs: 8, ScanChains: []int{5}, Patterns: 10,
		})
	}
	tt, err := wrapper.NewTimeTable(s, 8)
	if err != nil {
		b.Fatal(err)
	}
	groups := []*sischedule.Group{
		{Name: "SI1", Cores: []int{1, 2, 3, 4, 5}, Patterns: 10},
		{Name: "SI2", Cores: []int{1, 4, 5}, Patterns: 20},
		{Name: "SI3", Cores: []int{2, 3}, Patterns: 5},
	}
	aA := tam.New(s, tt)
	aA.AddRail([]int{1, 2}, 2)
	aA.AddRail([]int{3, 4}, 2)
	aA.AddRail([]int{5}, 2)
	aB := tam.New(s, tt)
	aB.AddRail([]int{1, 4, 5}, 2)
	aB.AddRail([]int{2, 3}, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range []*tam.Architecture{aA, aB} {
			if _, err := sischedule.ScheduleSITest(a, groups, sischedule.Model{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig2Partition exercises the Fig. 2 workload: partitioning
// the care-core hypergraph of a real pattern set into 4 parts.
func BenchmarkFig2Partition(b *testing.B) {
	s := soc.MustLoadBenchmark("p93791")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 20000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sp := sifault.NewSpace(s)
	weights := make([]int64, s.NumCores())
	idx := map[int]int{}
	for i, c := range s.Cores() {
		weights[i] = int64(c.WOC())
		idx[c.ID] = i
	}
	h := hypergraph.New(weights)
	for _, p := range patterns {
		cc := p.CareCores(sp)
		pins := make([]int, len(cc))
		for j, id := range cc {
			pins[j] = idx[id]
		}
		if err := h.AddEdge(pins, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hypergraph.PartitionK(h, 4, hypergraph.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMotivationMASet regenerates the Section 2 estimate
// constructively: the 640-net topology and its 6N-pattern MA test set.
func BenchmarkMotivationMASet(b *testing.B) {
	s := &soc.SOC{Name: "bus10", BusWidth: 32}
	for id := 1; id <= 10; id++ {
		s.CoreList = append(s.CoreList, &soc.Core{
			ID: id, Inputs: 100, Outputs: 100, ScanChains: []int{50}, Patterns: 10,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo, err := topology.Random(s, topology.RandomConfig{FanOut: 2, Width: 32, BusFraction: 0.5}, 1)
		if err != nil {
			b.Fatal(err)
		}
		ma, err := topology.MAPatterns(topo, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(ma) != 3840 {
			b.Fatalf("MA set = %d, want 3840", len(ma))
		}
	}
}

// --- Subsystem micro-benchmarks ---

func BenchmarkPatternGeneration(b *testing.B) {
	s := soc.MustLoadBenchmark("p93791")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sifault.Generate(s, sifault.GenConfig{N: 10000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyCompaction10k(b *testing.B) {
	s := soc.MustLoadBenchmark("p93791")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sp := sifault.NewSpace(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compaction.Greedy(sp, patterns)
	}
}

func BenchmarkWrapperCombine(b *testing.B) {
	s := soc.MustLoadBenchmark("p93791")
	cores := s.Cores()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cores[i%len(cores)]
		if _, err := wrapper.Combine(c, 1+i%32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTRArchitectP93791W32(b *testing.B) {
	s := soc.MustLoadBenchmark("p93791")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := trarchitect.Optimize(s, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTAMOptimizationP93791W32(b *testing.B) {
	s := soc.MustLoadBenchmark("p93791")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TAMOptimization(s, 32, gr.Groups, sischedule.DefaultModel()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleSITest(b *testing.B) {
	s := soc.MustLoadBenchmark("p93791")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	arch, _, err := trarchitect.Optimize(s, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sischedule.ScheduleSITest(arch, gr.Groups, sischedule.DefaultModel()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices from DESIGN.md) ---

// Benchmark_AblationCover compares the paper's greedy clique-cover
// heuristic with the DSATUR reference on the same pattern set; the
// reported metric is the compacted pattern count.
func Benchmark_AblationCover(b *testing.B) {
	s := soc.MustLoadBenchmark("p34392")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 1500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sp := sifault.NewSpace(s)
	b.Run("greedy", func(b *testing.B) {
		var compacted int
		for i := 0; i < b.N; i++ {
			_, stats := compaction.Greedy(sp, patterns)
			compacted = stats.Compacted
		}
		b.ReportMetric(float64(compacted), "patterns")
	})
	b.Run("dsatur", func(b *testing.B) {
		var compacted int
		for i := 0; i < b.N; i++ {
			_, stats, err := compaction.DSATUR(patterns)
			if err != nil {
				b.Fatal(err)
			}
			compacted = stats.Compacted
		}
		b.ReportMetric(float64(compacted), "patterns")
	})
}

// Benchmark_AblationGrouping sweeps the grouping count g, reporting the
// resulting T_soc at W=32 — the trade-off behind the T_g_i columns.
func Benchmark_AblationGrouping(b *testing.B) {
	s := soc.MustLoadBenchmark("p34392")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 20000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "g1", 2: "g2", 4: "g4", 8: "g8"}[g], func(b *testing.B) {
			var tsoc int64
			for i := 0; i < b.N; i++ {
				gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: g, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.TAMOptimization(s, 32, gr.Groups, sischedule.DefaultModel())
				if err != nil {
					b.Fatal(err)
				}
				tsoc = res.Breakdown.TimeSOC
			}
			b.ReportMetric(float64(tsoc), "T_soc_cc")
		})
	}
}

// Benchmark_AblationILS measures what iterated local search buys over
// the paper's greedy fixed point (extension; see internal/core/ils.go).
func Benchmark_AblationILS(b *testing.B) {
	s := soc.MustLoadBenchmark("p34392")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, kicks := range []int{0, 10} {
		name := "greedy"
		if kicks > 0 {
			name = "ils10"
		}
		b.Run(name, func(b *testing.B) {
			var obj int64
			for i := 0; i < b.N; i++ {
				eng, err := core.NewEngine(s, 32, &core.SIEvaluator{Groups: gr.Groups, Model: sischedule.DefaultModel()})
				if err != nil {
					b.Fatal(err)
				}
				_, obj, err = eng.OptimizeILS(kicks, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(obj), "T_soc_cc")
		})
	}
}

// --- Parallel evaluation and memoization benches ---

// benchParallelEval compares the optimization under serial/no-cache,
// serial/cached and multi-worker/cached configurations; all variants
// produce byte-identical architectures (see the differential tests),
// so the comparison isolates wall-clock and cache effects. The cache
// hit rate of the last run is attached as a metric.
func benchParallelEval(b *testing.B, name string, wmax int) {
	s := soc.MustLoadBenchmark(name)
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m := sischedule.DefaultModel()
	for _, bc := range []struct {
		name string
		cfg  core.ParallelConfig
	}{
		{"serial_nocache", core.ParallelConfig{Workers: 1, CacheSize: -1}},
		{"serial_cache", core.ParallelConfig{Workers: 1}},
		{"workers2_cache", core.ParallelConfig{Workers: 2}},
		{"workers8_cache", core.ParallelConfig{Workers: 8}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				res, err := core.TAMOptimizationWith(context.Background(), s, wmax, gr.Groups, m, bc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				hitRate = res.Cache.HitRate()
			}
			if hitRate > 0 {
				b.ReportMetric(100*hitRate, "cache_hit_%")
			}
		})
	}
}

func Benchmark_ParallelEvalP34392W64(b *testing.B) { benchParallelEval(b, "p34392", 64) }
func Benchmark_ParallelEvalP93791W64(b *testing.B) { benchParallelEval(b, "p93791", 64) }

// Benchmark_CacheColdVsWarm isolates the memoization win: cold resets
// the cache before every optimization; warm reuses the populated cache
// across runs, so repeat optimizations of the same workload answer
// almost every evaluation from the cache.
func Benchmark_CacheColdVsWarm(b *testing.B) {
	s := soc.MustLoadBenchmark("p34392")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	eng, cache, err := core.NewParallelEngine(s, 64,
		&core.SIEvaluator{Groups: gr.Groups, Model: sischedule.DefaultModel()},
		core.ParallelConfig{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache.Reset()
			if _, _, _, err := eng.OptimizeCtx(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100*cache.Stats().HitRate(), "cache_hit_%")
	})
	b.Run("warm", func(b *testing.B) {
		cache.Reset()
		if _, _, _, err := eng.OptimizeCtx(context.Background()); err != nil {
			b.Fatal(err)
		}
		cache.ResetStats() // keep entries, count only the timed runs below
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := eng.OptimizeCtx(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100*cache.Stats().HitRate(), "cache_hit_%")
	})
}

// Benchmark_CachePersistentRestart measures the restart win of the
// persistent cache file: a first "process" runs cold with -cache-file
// semantics (populating the journal), then every timed iteration of
// the warm sub-bench simulates a restarted process — reopen the file,
// seed a brand-new in-memory cache from it, re-run the same sweep.
// Seeded entries count as Loads, not hits, so the reported hit rate is
// earned entirely by the timed run; the acceptance bar is >= 90% on
// the first repeated sweep after restart.
func Benchmark_CachePersistentRestart(b *testing.B) {
	s := soc.MustLoadBenchmark("p34392")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m := sischedule.DefaultModel()
	path := filepath.Join(b.TempDir(), "evals.sitcache")

	// First process: one cold run populates the cache file.
	cf, err := core.OpenCacheFile(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.TAMOptimizationWith(context.Background(), s, 64, gr.Groups, m,
		core.ParallelConfig{Workers: 1, Persist: cf}); err != nil {
		b.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		var hitRate float64
		for i := 0; i < b.N; i++ {
			res, err := core.TAMOptimizationWith(context.Background(), s, 64, gr.Groups, m,
				core.ParallelConfig{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			hitRate = res.Cache.HitRate()
		}
		b.ReportMetric(100*hitRate, "cache_hit_%")
	})
	b.Run("persistent_warm", func(b *testing.B) {
		var hitRate float64
		for i := 0; i < b.N; i++ {
			cf, err := core.OpenCacheFile(path)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.TAMOptimizationWith(context.Background(), s, 64, gr.Groups, m,
				core.ParallelConfig{Workers: 1, Persist: cf})
			if err != nil {
				b.Fatal(err)
			}
			if err := cf.Close(); err != nil {
				b.Fatal(err)
			}
			hitRate = res.Cache.HitRate()
		}
		b.ReportMetric(100*hitRate, "cache_hit_%")
		if hitRate < 0.9 {
			b.Errorf("persistent warm hit rate %.1f%% < 90%% — restart seeding regressed", 100*hitRate)
		}
	})
}

// --- Incremental delta evaluation benches ---

// Benchmark_IncrementalEval isolates the delta-evaluation win: a full
// serial p93791 W=64 optimization (no memoization cache, workers=1)
// under the from-scratch SIEvaluator versus the incremental evaluator
// (dirty-rail TimeIn refresh + per-rail SI composition memo). The
// differential suite pins both to byte-identical results, so the
// comparison is pure wall-clock.
func Benchmark_IncrementalEval(b *testing.B) {
	s := soc.MustLoadBenchmark("p93791")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m := sischedule.DefaultModel()
	run := func(b *testing.B, eval core.Evaluator) {
		eng, _, err := core.NewParallelEngine(s, 64, eval, core.ParallelConfig{Workers: 1, CacheSize: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := eng.OptimizeCtx(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("scratch", func(b *testing.B) {
		run(b, &core.SIEvaluator{Groups: gr.Groups, Model: m})
	})
	b.Run("incremental", func(b *testing.B) {
		run(b, core.NewIncrementalSIEvaluator(gr.Groups, m))
	})
}

// Benchmark_ColdCacheGuard guards against the cold-run cache
// regression BENCH_parallel.json recorded for the string-keyed cache:
// with the incremental hash keying, a cold cached optimization must
// not be meaningfully slower than an uncached one. Both variants are
// timed inside one benchmark run so they see the same machine state;
// the assertion allows a generous noise margin (the steady-state
// numbers live in BENCH_incremental.json).
func Benchmark_ColdCacheGuard(b *testing.B) {
	s := soc.MustLoadBenchmark("p34392")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m := sischedule.DefaultModel()
	time1 := func(cfg core.ParallelConfig) time.Duration {
		t0 := time.Now()
		if _, err := core.TAMOptimizationWith(context.Background(), s, 64, gr.Groups, m, cfg); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	// Warm the planner memo and allocator so both variants run steady.
	time1(core.ParallelConfig{Workers: 1, CacheSize: -1})
	var uncached, cached time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uncached += time1(core.ParallelConfig{Workers: 1, CacheSize: -1})
		cached += time1(core.ParallelConfig{Workers: 1}) // fresh cache: cold run
	}
	b.StopTimer()
	b.ReportMetric(float64(uncached.Nanoseconds())/float64(b.N), "nocache_ns")
	b.ReportMetric(float64(cached.Nanoseconds())/float64(b.N), "coldcache_ns")
	if cached > uncached*3/2 {
		b.Errorf("cold cached run %v is >1.5x the uncached run %v — hash-keyed cache regressed", cached, uncached)
	}
}

// Benchmark_AblationSchedulingOverlap compares Algorithm 1's
// concurrent schedule against serial group application.
func Benchmark_AblationSchedulingOverlap(b *testing.B) {
	s := soc.MustLoadBenchmark("p93791")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 20000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	arch, _, err := trarchitect.Optimize(s, 32)
	if err != nil {
		b.Fatal(err)
	}
	var overlap, serial int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := sischedule.ScheduleSITest(arch, gr.Groups, sischedule.DefaultModel())
		if err != nil {
			b.Fatal(err)
		}
		overlap = sched.TotalSI
		serial, err = sischedule.SerialTime(arch, gr.Groups, sischedule.DefaultModel())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(overlap), "T_si_overlap_cc")
	b.ReportMetric(float64(serial), "T_si_serial_cc")
}
