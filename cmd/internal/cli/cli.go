// Package cli holds the run-lifecycle plumbing shared by the sitam
// commands: a root context wired to SIGINT/SIGTERM and an optional
// -timeout deadline, and the exit-code convention for reporting how a
// run ended.
//
// All commands exit with:
//
//	0    success
//	1    error (bad input, I/O failure, internal error)
//	3    partial result: the deadline expired or the run was
//	     interrupted, and the best result found so far was printed
//	130  forced exit: a second SIGINT/SIGTERM arrived while the
//	     command was still draining after the first one
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// Exit codes shared by all sitam commands.
const (
	ExitOK      = 0
	ExitError   = 1
	ExitPartial = 3

	// ExitForced is 128+SIGINT, the conventional code for a
	// signal-forced termination.
	ExitForced = 130
)

// Context returns a context that is cancelled on SIGINT or SIGTERM and,
// when timeout is positive, expires after the timeout.
//
// The first signal only cancels the context: the command drains
// gracefully, printing its partial result. A second signal while that
// drain is still running forces an immediate os.Exit(ExitForced) — a
// stuck drain must never trap the user in an unkillable command. The
// returned stop function releases the signal handler (restoring
// default Ctrl-C behavior) and cancels the context.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	base, interrupt := context.WithCancel(context.Background())
	ctx := base
	cancelTimeout := func() {}
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(base, timeout)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stopped := make(chan struct{})
	go func() {
		select {
		case <-stopped:
			return
		case <-sig:
		}
		interrupt() // begin the graceful drain
		fmt.Fprintln(os.Stderr, "interrupt: draining (press Ctrl-C again to force exit)")
		select {
		case <-stopped:
		case <-sig:
			fmt.Fprintln(os.Stderr, "second interrupt: forcing exit")
			os.Exit(ExitForced)
		}
	}()

	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(sig)
			close(stopped)
		})
		cancelTimeout()
		interrupt()
	}
	return ctx, stop
}

// IsCtxErr reports whether err is the context machinery's cancellation
// or deadline error (possibly wrapped).
func IsCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Cause names why the context is done, for the partial-result marker:
// "deadline" after -timeout expiry, "interrupted" after a signal.
func Cause(ctx context.Context) string {
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		return "deadline"
	case errors.Is(ctx.Err(), context.Canceled):
		return "interrupted"
	}
	return "partial"
}
