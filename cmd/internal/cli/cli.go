// Package cli holds the run-lifecycle plumbing shared by the sitam
// commands: a root context wired to SIGINT/SIGTERM and an optional
// -timeout deadline, and the exit-code convention for reporting how a
// run ended.
//
// All commands exit with:
//
//	0  success
//	1  error (bad input, I/O failure, internal error)
//	3  partial result: the deadline expired or the run was interrupted,
//	   and the best result found so far was printed
package cli

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Exit codes shared by all sitam commands.
const (
	ExitOK      = 0
	ExitError   = 1
	ExitPartial = 3
)

// Context returns a context that is cancelled on SIGINT or SIGTERM and,
// when timeout is positive, expires after the timeout. The returned
// stop function releases the signal handler (restoring default
// Ctrl-C behavior, so a second interrupt kills the process) and cancels
// the context.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

// IsCtxErr reports whether err is the context machinery's cancellation
// or deadline error (possibly wrapped).
func IsCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Cause names why the context is done, for the partial-result marker:
// "deadline" after -timeout expiry, "interrupted" after a signal.
func Cause(ctx context.Context) string {
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		return "deadline"
	case errors.Is(ctx.Err(), context.Canceled):
		return "interrupted"
	}
	return "partial"
}
