package cli

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile starts the profilers behind the -cpuprofile, -memprofile and
// -httpprof flags shared by tamopt and socbench: a CPU profile streamed
// to cpuFile, a heap profile written to memFile when the run finishes,
// and an HTTP server exposing the net/http/pprof endpoints on httpAddr
// (e.g. "localhost:6060"). An empty string disables the respective
// profiler.
//
// The returned stop function ends the CPU profile and writes the heap
// profile; call it explicitly before deciding the exit code — the
// commands exit through os.Exit, which skips deferred calls.
func Profile(cpuFile, memFile, httpAddr string) (func() error, error) {
	var cpu *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpu = f
	}
	if httpAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers registered by
			// the net/http/pprof import.
			if err := http.ListenAndServe(httpAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize reachable-heap stats before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
