package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestContextTimeout(t *testing.T) {
	ctx, stop := Context(10 * time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("timeout context never expired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Errorf("ctx.Err() = %v, want DeadlineExceeded", ctx.Err())
	}
	if Cause(ctx) != "deadline" {
		t.Errorf("Cause = %q, want deadline", Cause(ctx))
	}
}

func TestContextStopIsIdempotent(t *testing.T) {
	ctx, stop := Context(0)
	stop()
	stop() // second call must not panic or deadlock
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Errorf("ctx.Err() = %v, want Canceled after stop", ctx.Err())
	}
}

// TestMain turns the test binary into the signal guinea pig when
// re-exec'd: a command whose graceful drain deliberately dawdles, so
// the parent can land a second signal inside it.
func TestMain(m *testing.M) {
	if os.Getenv("CLI_SIGTEST_CHILD") == "1" {
		ctx, stop := Context(0)
		defer stop()
		fmt.Println("ready")
		<-ctx.Done()
		time.Sleep(2 * time.Second) // slow drain for the parent to interrupt
		stop()
		os.Exit(ExitPartial)
	}
	os.Exit(m.Run())
}

// TestSecondSignalForcesExit pins the escape hatch deterministically:
// first SIGINT starts the drain (banner on stderr), second SIGINT
// during the slow drain forces exit 130. This drives the same
// cli.Context plumbing every sitam command uses.
func TestSecondSignalForcesExit(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "CLI_SIGTEST_CHILD=1")
	out := &lockedBuilder{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor := func(marker string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !strings.Contains(out.String(), marker) {
			if time.Now().After(deadline) {
				t.Fatalf("child never printed %q:\n%s", marker, out.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("ready")
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitFor("press Ctrl-C again to force exit")
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != ExitForced {
		t.Fatalf("err = %v, want exit code %d\n%s", err, ExitForced, out.String())
	}
	if !strings.Contains(out.String(), "forcing exit") {
		t.Errorf("child output missing forced-exit marker:\n%s", out.String())
	}
}

// TestSIGTERMAlsoDrains checks the drain path is wired for SIGTERM,
// the signal process supervisors actually send.
func TestSIGTERMAlsoDrains(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "CLI_SIGTEST_CHILD=1")
	out := &lockedBuilder{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "ready") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != ExitPartial {
		t.Fatalf("err = %v, want exit code %d (graceful drain)\n%s", err, ExitPartial, out.String())
	}
}

type lockedBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuilder) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuilder) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}
