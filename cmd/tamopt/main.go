// Command tamopt designs a TestRail test access architecture for an SOC
// and prints the resulting rails, test schedule and time breakdown.
//
// Usage:
//
//	tamopt -soc p93791 -w 32 -nr 10000 -g 4 [-seed 1] [-baseline] [-file design.soc] [-timeout 30s]
//
// With -baseline the architecture is optimized for core-internal test
// only (TR-Architect); otherwise the SI-aware TAM_Optimization algorithm
// of the paper is used. Either way the SI test groups produced by the
// two-dimensional compaction pipeline are scheduled on the final
// architecture and the combined time is reported.
//
// The optimization is an anytime algorithm: with -timeout, on
// SIGINT/SIGTERM, or when the -budget evaluation allowance runs out,
// the best architecture found so far is printed with a "RESULT PARTIAL"
// marker naming the cause (deadline, interrupted, budget) and the
// command exits with code 3. Exit codes: 0 success, 1 error, 3 partial
// result.
//
// Observability: -trace writes the structured search trace as JSONL
// (summarize it with sitrace), -stats prints the run's metrics snapshot
// after the result, and -cpuprofile/-memprofile/-httpprof enable the
// standard Go profilers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"sitam/cmd/internal/cli"
	"sitam/internal/core"
	"sitam/internal/obs"
	"sitam/internal/report"
	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/trarchitect"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tamopt: ")
	var (
		socName  = flag.String("soc", "p93791", "embedded benchmark SOC name")
		file     = flag.String("file", "", ".soc file to load instead of an embedded benchmark")
		wmax     = flag.Int("w", 32, "total TAM width W_max")
		nr       = flag.Int("nr", 10000, "initial SI pattern count N_r")
		parts    = flag.Int("g", 4, "SI test grouping count g")
		seed     = flag.Int64("seed", 1, "random seed for pattern generation and partitioning")
		baseline = flag.Bool("baseline", false, "optimize for InTest only (TR-Architect baseline)")
		gantt    = flag.Bool("gantt", false, "render the SI schedule as an ASCII Gantt chart")
		jsonOut  = flag.String("json", "", "also write the result as JSON to this file (\"-\" for stdout)")
		ils      = flag.Int("ils", 0, "iterated-local-search kicks after the greedy optimization (0 = paper's algorithm)")
		restarts = flag.Int("restarts", 1, "independent ILS restarts with seeds seed, seed+1, ... (only with -ils > 0)")
		workers  = flag.Int("workers", 0, "concurrent candidate evaluations (0 = GOMAXPROCS, 1 = serial); results are identical at any worker count")
		cworkers = flag.Int("compact-workers", 0, "concurrent compaction shard workers (0 = serial, -1 = GOMAXPROCS); output is identical at any count")
		cache    = flag.Int("cache", 0, "evaluation cache capacity in entries (0 = default, negative = disabled)")
		cacheFil = flag.String("cache-file", "", "persistent evaluation-cache file: loaded before the run, appended during it; a locked or damaged file degrades to memory-only")
		timeout  = flag.Duration("timeout", 0, "overall deadline; on expiry the best result so far is printed and the exit code is 3 (0 = none)")
		budget   = flag.Int64("budget", 0, "objective-evaluation budget; on exhaustion the best result so far is printed and the exit code is 3 (0 = unlimited)")
		traceOut = flag.String("trace", "", "write the structured search trace as JSONL to this file")
		stats    = flag.Bool("stats", false, "print the run's metrics snapshot (evaluations, cache, worker pool, phase timings) after the result")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		httpProf = flag.String("httpprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	profStop, err := cli.Profile(*cpuProf, *memProf, *httpProf)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()

	cfg := core.ParallelConfig{Workers: *workers, CacheSize: *cache, MaxEvals: *budget}
	if *cacheFil != "" && *cache >= 0 {
		cf, cferr := core.OpenCacheFile(*cacheFil)
		if cferr != nil {
			// Persistence is an accelerator, never a gate: run memory-only.
			log.Printf("cache file %s unavailable (%v); continuing without persistence", *cacheFil, cferr)
		} else {
			defer func() {
				if cerr := cf.Close(); cerr != nil {
					log.Printf("cache file %s: close: %v (appends since the last sync may be lost)", *cacheFil, cerr)
				}
			}()
			cfg.Persist = cf
		}
	}
	o := options{
		socName: *socName, file: *file, wmax: *wmax, nr: *nr, parts: *parts,
		seed: *seed, baseline: *baseline, gantt: *gantt, jsonOut: *jsonOut,
		ils: *ils, restarts: *restarts, stats: *stats, traceFile: *traceOut,
		compactWorkers: *cworkers,
	}
	if *traceOut != "" {
		o.tracer = obs.NewTracer()
		cfg.Trace = o.tracer
	}
	if *stats {
		cfg.Metrics = obs.NewRegistry()
	}
	o.cfg = cfg

	partial, reason, cause, err := run(ctx, o)
	stop()
	if perr := profStop(); perr != nil {
		log.Fatal(perr)
	}
	if err != nil {
		if cli.IsCtxErr(err) {
			// The deadline or signal fired before anything usable was
			// produced: still a cut-short run, not an input error.
			fmt.Printf("RESULT PARTIAL (%s): %v\n", cli.Cause(ctx), err)
			os.Exit(cli.ExitPartial)
		}
		log.Fatal(err)
	}
	if partial {
		fmt.Printf("RESULT PARTIAL (%s): %s\n", cause, reason)
		os.Exit(cli.ExitPartial)
	}
}

type options struct {
	socName, file, jsonOut         string
	wmax, nr, parts, ils, restarts int
	compactWorkers                 int
	seed                           int64
	baseline, gantt, stats         bool
	traceFile                      string
	tracer                         *obs.Tracer
	cfg                            core.ParallelConfig
}

// sink adapts the optional tracer to the Sink interface without ever
// wrapping a nil pointer in a non-nil interface.
func (o options) sink() obs.Sink {
	if o.tracer == nil {
		return nil
	}
	return o.tracer
}

// run executes the pipeline and reports whether any stage returned a
// degraded (partial) result, along with the cause label for the marker.
// It is a separate function so its deferred file closes run before main
// decides the exit code.
func run(ctx context.Context, o options) (partial bool, reason, cause string, err error) {
	s, err := loadSOC(o.file, o.socName)
	if err != nil {
		return false, "", "", err
	}
	fmt.Println(s.Summary())

	span := obs.Span(o.sink(), "pattern generation")
	patterns, cut, err := sifault.GenerateCtx(ctx, s, sifault.GenConfig{N: o.nr, Seed: o.seed})
	if err != nil {
		return false, "", "", err
	}
	if cut {
		partial, reason, cause = true, fmt.Sprintf("pattern generation stopped at %d of %d patterns", len(patterns), o.nr), cli.Cause(ctx)
		if sink := o.sink(); sink != nil {
			sink.Emit(obs.Event{Type: obs.DeadlineHit, Phase: "pattern generation", Cause: obs.CtxCause(ctx.Err())})
		}
	}
	span.End(0, int64(len(patterns)))

	grouping, err := core.BuildGroupsCtx(ctx, s, patterns, core.GroupingOptions{
		Parts: o.parts, Seed: o.seed, Trace: o.sink(),
		CompactWorkers: o.compactWorkers, Metrics: o.cfg.Metrics,
	})
	if err != nil {
		return false, "", "", err
	}
	if grouping.Partial && !partial {
		partial, reason, cause = true, grouping.Reason, cli.Cause(ctx)
	}
	fmt.Printf("SI compaction: %d patterns -> %d compacted in %d groups (ratio %.1fx, %d residual)\n",
		grouping.Stats.Original, grouping.TotalCompacted(), len(grouping.Groups),
		grouping.Stats.Ratio(), grouping.CutPatterns)
	for _, g := range grouping.Groups {
		fmt.Printf("  %-4s: %5d patterns over %d cores\n", g.Name, g.Patterns, len(g.Cores))
	}

	model := sischedule.DefaultModel()
	var res *core.Result
	switch {
	case o.baseline:
		res, err = trarchitect.OptimizeThenScheduleSIWith(ctx, s, o.wmax, grouping.Groups, model, o.cfg)
	case o.ils > 0:
		var cons *sischedule.Constraints
		cons, err = core.CompileSOCConstraints(s, grouping.Groups)
		if err != nil {
			break
		}
		var eng *core.Engine
		var cache *core.CachedEvaluator
		eng, cache, err = core.NewParallelEngine(s, o.wmax, &core.SIEvaluator{Groups: grouping.Groups, Model: model, Cons: cons}, o.cfg)
		if err != nil {
			break
		}
		var arch *tam.Architecture
		var st core.Status
		arch, _, st, err = eng.OptimizeILSRestartsCtx(ctx, o.ils, o.restarts, o.seed)
		if err != nil {
			break
		}
		res, err = eng.Finish(arch, st, grouping.Groups, model, cache)
	default:
		res, err = core.TAMOptimizationWith(ctx, s, o.wmax, grouping.Groups, model, o.cfg)
	}
	if err != nil {
		return false, "", "", err
	}
	if res.Partial && !partial {
		partial, reason = true, res.Reason
		if cause = res.Cause.Label(); cause == "" {
			cause = cli.Cause(ctx)
		}
	}

	fmt.Println()
	fmt.Print(res.Architecture)
	fmt.Print(res.Schedule)
	if o.gantt {
		fmt.Print(res.Architecture.InTestGantt(72))
		fmt.Print(res.Schedule.Gantt(len(res.Architecture.Rails), 72))
	}
	fmt.Printf("T_in=%d cc  T_si=%d cc  T_soc=%d cc\n",
		res.Breakdown.TimeIn, res.Breakdown.TimeSI, res.Breakdown.TimeSOC)

	if o.stats {
		fmt.Println()
		fmt.Println("run metrics:")
		fmt.Print(res.Metrics.Format())
	}
	if o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		if err != nil {
			return false, "", "", err
		}
		werr := o.tracer.WriteJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return false, "", "", werr
		}
		log.Printf("wrote %d trace events to %s", o.tracer.Len(), o.traceFile)
	}

	if o.jsonOut != "" {
		w := os.Stdout
		if o.jsonOut != "-" {
			f, err := os.Create(o.jsonOut)
			if err != nil {
				return false, "", "", err
			}
			defer f.Close()
			w = f
		}
		if err := report.FromResult(res).Write(w); err != nil {
			return false, "", "", err
		}
	}
	return partial, reason, cause, nil
}

func loadSOC(file, name string) (*soc.SOC, error) {
	if file == "" {
		return soc.LoadBenchmark(name)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return soc.Parse(f)
}
