// Command tamopt designs a TestRail test access architecture for an SOC
// and prints the resulting rails, test schedule and time breakdown.
//
// Usage:
//
//	tamopt -soc p93791 -w 32 -nr 10000 -g 4 [-seed 1] [-baseline] [-file design.soc]
//
// With -baseline the architecture is optimized for core-internal test
// only (TR-Architect); otherwise the SI-aware TAM_Optimization algorithm
// of the paper is used. Either way the SI test groups produced by the
// two-dimensional compaction pipeline are scheduled on the final
// architecture and the combined time is reported.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sitam/internal/core"
	"sitam/internal/report"
	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/trarchitect"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tamopt: ")
	var (
		socName  = flag.String("soc", "p93791", "embedded benchmark SOC name")
		file     = flag.String("file", "", ".soc file to load instead of an embedded benchmark")
		wmax     = flag.Int("w", 32, "total TAM width W_max")
		nr       = flag.Int("nr", 10000, "initial SI pattern count N_r")
		parts    = flag.Int("g", 4, "SI test grouping count g")
		seed     = flag.Int64("seed", 1, "random seed for pattern generation and partitioning")
		baseline = flag.Bool("baseline", false, "optimize for InTest only (TR-Architect baseline)")
		gantt    = flag.Bool("gantt", false, "render the SI schedule as an ASCII Gantt chart")
		jsonOut  = flag.String("json", "", "also write the result as JSON to this file (\"-\" for stdout)")
		ils      = flag.Int("ils", 0, "iterated-local-search kicks after the greedy optimization (0 = paper's algorithm)")
	)
	flag.Parse()

	s, err := loadSOC(*file, *socName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Summary())

	patterns, err := sifault.Generate(s, sifault.GenConfig{N: *nr, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	grouping, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: *parts, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SI compaction: %d patterns -> %d compacted in %d groups (ratio %.1fx, %d residual)\n",
		grouping.Stats.Original, grouping.TotalCompacted(), len(grouping.Groups),
		grouping.Stats.Ratio(), grouping.CutPatterns)
	for i, g := range grouping.Groups {
		fmt.Printf("  %-4s: %5d patterns over %d cores\n", g.Name, g.Patterns, len(g.Cores))
		_ = i
	}

	model := sischedule.DefaultModel()
	var res *core.Result
	switch {
	case *baseline:
		res, err = trarchitect.OptimizeThenScheduleSI(s, *wmax, grouping.Groups, model)
	case *ils > 0:
		var eng *core.Engine
		eng, err = core.NewEngine(s, *wmax, &core.SIEvaluator{Groups: grouping.Groups, Model: model})
		if err != nil {
			break
		}
		var arch *tam.Architecture
		arch, _, err = eng.OptimizeILS(*ils, *seed)
		if err != nil {
			break
		}
		var bd core.Breakdown
		var sched *sischedule.Schedule
		bd, sched, err = core.EvaluateBreakdown(arch, grouping.Groups, model)
		res = &core.Result{Architecture: arch, Breakdown: bd, Schedule: sched}
	default:
		res, err = core.TAMOptimization(s, *wmax, grouping.Groups, model)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(res.Architecture)
	fmt.Print(res.Schedule)
	if *gantt {
		fmt.Print(res.Architecture.InTestGantt(72))
		fmt.Print(res.Schedule.Gantt(len(res.Architecture.Rails), 72))
	}
	fmt.Printf("T_in=%d cc  T_si=%d cc  T_soc=%d cc\n",
		res.Breakdown.TimeIn, res.Breakdown.TimeSI, res.Breakdown.TimeSOC)

	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := report.FromResult(res).Write(w); err != nil {
			log.Fatal(err)
		}
	}
}

func loadSOC(file, name string) (*soc.SOC, error) {
	if file == "" {
		return soc.LoadBenchmark(name)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return soc.Parse(f)
}
