package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// buildTool builds the sitlint binary once per test binary run.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sitlint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/sitlint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/sitlint: %v\n%s", err, out)
	}
	return bin
}

// TestVersionHandshake checks the -V=full output the go command parses
// to compute the vet tool's build ID.
func TestVersionHandshake(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(strings.TrimSpace(string(out)))
	if len(fields) < 3 || fields[0] != "sitlint" || fields[1] != "version" {
		t.Fatalf("-V=full output %q; want \"sitlint version ...\"", out)
	}
	last := fields[len(fields)-1]
	if !strings.HasPrefix(last, "buildID=") || len(last) == len("buildID=") {
		t.Fatalf("-V=full output %q lacks a buildID= token", out)
	}
}

// TestFlagsHandshake checks the -flags JSON the go command uses to
// validate user-provided analyzer flags.
func TestFlagsHandshake(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var defs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out)
	}
	got := map[string]bool{}
	for _, d := range defs {
		if !d.Bool {
			t.Errorf("flag %s not boolean", d.Name)
		}
		got[d.Name] = true
	}
	for _, want := range []string{"ctxflow", "detrand", "errwrapcheck", "railmutate", "traceevent"} {
		if !got[want] {
			t.Errorf("-flags output missing analyzer %s: %s", want, out)
		}
	}
}

// violations is a source file that commits one violation per analyzer.
// It is injected into internal/sischedule via -overlay (the package is
// in ctxflow's target set and already imports tam and obs), so the
// on-disk tree is never modified.
const violations = `package sischedule

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sitam/internal/obs"
	"sitam/internal/tam"
)

var ErrZZViolation = errors.New("zz violation")

func ZZViolate(a *tam.Architecture, sink obs.Sink, items []int, err error) (int64, error) {
	a.Rails[0].TimeSI = 9
	total := int64(rand.Intn(3)) + time.Now().UnixNano()
	for _, x := range items {
		total += int64(zzEval(context.Background(), x))
	}
	sink.Emit(obs.Event{Type: obs.PhaseStart, Phase: "zz"})
	if err == ErrZZViolation {
		return 0, fmt.Errorf("zz: %v", ErrZZViolation)
	}
	return total, nil
}

func zzEval(ctx context.Context, x int) int { return x }
`

// TestVettoolFlagsReintroducedViolations reintroduces one violation of
// each kind through a build overlay and asserts that
// `go vet -vettool=sitlint` fails with every analyzer represented.
func TestVettoolFlagsReintroducedViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet; skipped in -short mode")
	}
	bin := buildTool(t)
	root := repoRoot(t)
	tmp := t.TempDir()

	vioFile := filepath.Join(tmp, "zz_violation.go")
	if err := os.WriteFile(vioFile, []byte(violations), 0o644); err != nil {
		t.Fatal(err)
	}
	overlay := filepath.Join(tmp, "overlay.json")
	ov, err := json.Marshal(map[string]map[string]string{
		"Replace": {filepath.Join(root, "internal/sischedule/zz_violation.go"): vioFile},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(overlay, ov, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "-overlay="+overlay, "sitam/internal/sischedule")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet succeeded on a tree with reintroduced violations:\n%s", out)
	}

	// One diagnostic per analyzer, except detrand (two sites: rand.Intn
	// and time.Now) and errwrapcheck (identity comparison plus %v wrap).
	wantCounts := map[string]int{
		"railmutate":   1,
		"detrand":      2,
		"ctxflow":      1,
		"traceevent":   1,
		"errwrapcheck": 2,
	}
	for name, want := range wantCounts {
		n := 0
		for _, line := range strings.Split(string(out), "\n") {
			if strings.Contains(line, "zz_violation.go:") && strings.Contains(line, ": "+name+": ") {
				n++
			}
		}
		if n != want {
			t.Errorf("analyzer %s: got %d diagnostics, want %d\noutput:\n%s", name, n, want, out)
		}
	}
}

// TestStandaloneCleanTree runs the standalone driver over the whole
// module and requires a clean exit: the repository must stay free of
// the invariant violations the suite enforces.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short mode")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("sitlint ./... failed: %v\n%s", err, out)
	}
}
