package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// buildTool builds the sitlint binary once per test binary run.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sitlint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/sitlint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/sitlint: %v\n%s", err, out)
	}
	return bin
}

// TestVersionHandshake checks the -V=full output the go command parses
// to compute the vet tool's build ID.
func TestVersionHandshake(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(strings.TrimSpace(string(out)))
	if len(fields) < 3 || fields[0] != "sitlint" || fields[1] != "version" {
		t.Fatalf("-V=full output %q; want \"sitlint version ...\"", out)
	}
	last := fields[len(fields)-1]
	if !strings.HasPrefix(last, "buildID=") || len(last) == len("buildID=") {
		t.Fatalf("-V=full output %q lacks a buildID= token", out)
	}
}

// TestFlagsHandshake checks the -flags JSON the go command uses to
// validate user-provided analyzer flags.
func TestFlagsHandshake(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var defs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out)
	}
	got := map[string]bool{}
	for _, d := range defs {
		if !d.Bool {
			t.Errorf("flag %s not boolean", d.Name)
		}
		got[d.Name] = true
	}
	for _, want := range []string{
		"ctxflow", "detmerge", "detrand", "errwrapcheck", "fsyncack",
		"gorojoin", "lockorder", "metricvocab", "railmutate", "traceevent",
	} {
		if !got[want] {
			t.Errorf("-flags output missing analyzer %s: %s", want, out)
		}
	}
}

// violations is a source file that commits one violation per analyzer.
// It is injected into internal/sischedule via -overlay (the package is
// in ctxflow's target set and already imports tam and obs), so the
// on-disk tree is never modified.
const violations = `package sischedule

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sitam/internal/obs"
	"sitam/internal/tam"
)

var ErrZZViolation = errors.New("zz violation")

func ZZViolate(a *tam.Architecture, sink obs.Sink, items []int, err error) (int64, error) {
	a.Rails[0].TimeSI = 9
	total := int64(rand.Intn(3)) + time.Now().UnixNano()
	for _, x := range items {
		total += int64(zzEval(context.Background(), x))
	}
	sink.Emit(obs.Event{Type: obs.PhaseStart, Phase: "zz"})
	if err == ErrZZViolation {
		return 0, fmt.Errorf("zz: %v", ErrZZViolation)
	}
	return total, nil
}

func zzEval(ctx context.Context, x int) int { return x }
`

// TestVettoolFlagsReintroducedViolations reintroduces one violation of
// each kind through a build overlay and asserts that
// `go vet -vettool=sitlint` fails with every analyzer represented.
func TestVettoolFlagsReintroducedViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet; skipped in -short mode")
	}
	bin := buildTool(t)
	root := repoRoot(t)
	tmp := t.TempDir()

	vioFile := filepath.Join(tmp, "zz_violation.go")
	if err := os.WriteFile(vioFile, []byte(violations), 0o644); err != nil {
		t.Fatal(err)
	}
	overlay := filepath.Join(tmp, "overlay.json")
	ov, err := json.Marshal(map[string]map[string]string{
		"Replace": {filepath.Join(root, "internal/sischedule/zz_violation.go"): vioFile},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(overlay, ov, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "-overlay="+overlay, "sitam/internal/sischedule")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet succeeded on a tree with reintroduced violations:\n%s", out)
	}

	// One diagnostic per analyzer, except detrand (two sites: rand.Intn
	// and time.Now) and errwrapcheck (identity comparison plus %v wrap).
	wantCounts := map[string]int{
		"railmutate":   1,
		"detrand":      2,
		"ctxflow":      1,
		"traceevent":   1,
		"errwrapcheck": 2,
	}
	for name, want := range wantCounts {
		n := 0
		for _, line := range strings.Split(string(out), "\n") {
			if strings.Contains(line, "zz_violation.go:") && strings.Contains(line, ": "+name+": ") {
				n++
			}
		}
		if n != want {
			t.Errorf("analyzer %s: got %d diagnostics, want %d\noutput:\n%s", name, n, want, out)
		}
	}
}

// serveViolations reintroduces one violation per concurrency/durability
// analyzer inside internal/serve, where the real invariants live:
// lockorder (a return while holding the scheduler lock, and a
// Job-before-Scheduler inversion), gorojoin (a detached goroutine),
// fsyncack (a raw journal-fd write outside the owner, a discarded
// same-package Journal.Append error, and a discarded cross-package
// core.CacheFile.Sync error — the last one only fails if Durable facts
// really flow through the vet .vetx protocol), and metricvocab (a
// concatenated series name).
const serveViolations = `package serve

func zzLockLeak(s *Scheduler, x bool) {
	s.mu.Lock()
	if x {
		return
	}
	s.mu.Unlock()
}

func zzInvert(s *Scheduler, j *Job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
}

func zzDetached() {
	go func() {}()
}

func zzRawWrite(j *Journal, b []byte) {
	j.f.Write(b)
}

func zzDiscard(s *Scheduler) {
	s.journal.Append(JournalEntry{})
}

func zzCrossDiscard(s *Scheduler) {
	s.cache.Sync()
}

func zzBadMetric(s *Scheduler, name string) {
	s.cfg.Metrics.Counter("zz_" + name).Inc()
}
`

// compactionViolations reintroduces a detmerge violation on a declared
// merge root.
const compactionViolations = `package compaction

//sitlint:detmerge-root
func zzMerge(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`

// TestVettoolReintroducedFactViolations overlays concurrency,
// durability and determinism violations into internal/serve and
// internal/compaction and asserts `go vet -vettool=sitlint` fails with
// every fact-based analyzer represented at the expected multiplicity.
func TestVettoolReintroducedFactViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet; skipped in -short mode")
	}
	bin := buildTool(t)
	root := repoRoot(t)
	tmp := t.TempDir()

	serveFile := filepath.Join(tmp, "zz_serve_violation.go")
	if err := os.WriteFile(serveFile, []byte(serveViolations), 0o644); err != nil {
		t.Fatal(err)
	}
	compactFile := filepath.Join(tmp, "zz_compaction_violation.go")
	if err := os.WriteFile(compactFile, []byte(compactionViolations), 0o644); err != nil {
		t.Fatal(err)
	}
	overlay := filepath.Join(tmp, "overlay.json")
	ov, err := json.Marshal(map[string]map[string]string{
		"Replace": {
			filepath.Join(root, "internal/serve/zz_serve_violation.go"):           serveFile,
			filepath.Join(root, "internal/compaction/zz_compaction_violation.go"): compactFile,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(overlay, ov, 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "-overlay="+overlay,
		"sitam/internal/serve", "sitam/internal/compaction")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet succeeded on a tree with reintroduced violations:\n%s", out)
	}

	wantCounts := map[string]int{
		"lockorder":   2, // return-while-held + inversion
		"gorojoin":    1,
		"fsyncack":    3, // raw fd write + discarded Append + discarded cross-package Sync
		"metricvocab": 1,
		"detmerge":    1,
	}
	for name, want := range wantCounts {
		n := 0
		for _, line := range strings.Split(string(out), "\n") {
			if strings.Contains(line, "_violation.go:") && strings.Contains(line, ": "+name+": ") {
				n++
			}
		}
		if n != want {
			t.Errorf("analyzer %s: got %d diagnostics, want %d\noutput:\n%s", name, n, want, out)
		}
	}
}

// TestSarifCleanTree validates the -sarif exposition on the clean
// module: well-formed JSON, the right version/schema pair, the full
// rule set, and an empty (but present) results array.
func TestSarifCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short mode")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "-sarif", "./...")
	cmd.Dir = repoRoot(t)
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("sitlint -sarif ./... failed: %v\n%s", err, out)
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("-sarif output is not JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif") {
		t.Fatalf("version/schema = %q/%q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "sitlint" {
		t.Fatalf("runs malformed: %s", out)
	}
	if got := len(log.Runs[0].Tool.Driver.Rules); got != 10 {
		t.Fatalf("rules = %d, want 10", got)
	}
	if log.Runs[0].Results == nil {
		t.Fatal("results array absent; SARIF requires it even when empty")
	}
	if len(log.Runs[0].Results) != 0 {
		t.Fatalf("clean tree produced findings:\n%s", out)
	}
}

// TestAuditCleanTree requires zero stale //sitlint:allow directives on
// the real tree.
func TestAuditCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short mode")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "-audit", "./...")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("sitlint -audit ./... failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 problem(s)") {
		t.Fatalf("audit output does not report zero problems:\n%s", out)
	}
}

// TestAuditFlagsStaleDirective runs the audit over a scratch module
// holding one //sitlint:allow that suppresses nothing and asserts exit
// 2 with the stale report.
func TestAuditFlagsStaleDirective(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	bin := buildTool(t)
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module zzaudit\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package zzaudit

//sitlint:allow detrand — stale: nothing below uses randomness
func F() int { return 1 }

//sitlint:allow nosuchanalyzer — typo'd name
func G() int { return 2 }
`
	if err := os.WriteFile(filepath.Join(tmp, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-audit", "./...")
	cmd.Dir = tmp
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("audit on stale directive: err=%v, want exit 2\n%s", err, out)
	}
	if !strings.Contains(string(out), "stale //sitlint:allow detrand") {
		t.Errorf("missing stale report:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown analyzer") {
		t.Errorf("missing unknown-analyzer report:\n%s", out)
	}
}

// TestStandaloneCleanTree runs the standalone driver over the whole
// module and requires a clean exit: the repository must stay free of
// the invariant violations the suite enforces.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short mode")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("sitlint ./... failed: %v\n%s", err, out)
	}
}
