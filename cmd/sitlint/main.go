// Command sitlint runs the project's custom static-analysis suite —
// one analyzer per cross-package correctness invariant of the
// optimization engine (see internal/analysis/...):
//
//	railmutate    direct tam.Rail/tam.Architecture field writes outside internal/tam
//	ctxflow       optimization loops must thread and check context.Context
//	detrand       no global math/rand or time.Now in the deterministic search path
//	traceevent    obs.Event literals use typed constants; phase spans balance
//	errwrapcheck  sentinel errors use errors.Is and %w
//
// Two modes:
//
//	sitlint ./...                            # standalone, like a linter
//	go vet -vettool=$(pwd)/sitlint ./...     # as a vet tool in CI
//
// In vettool mode sitlint implements the protocol `go vet` expects of
// external tools (the x/tools unitchecker protocol): -V=full prints a
// version line keyed to the binary's content, -flags advertises the
// analyzer selection flags, and otherwise the single argument is a
// JSON .cfg file describing one compilation unit. Analyzer selection:
// with no flags every analyzer runs; naming analyzers (-railmutate
// -detrand) runs only those.
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sitam/internal/analysis"
	"sitam/internal/analysis/load"
	"sitam/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The -V=full handshake must come before flag parsing: the go
	// command invokes it to compute the tool's build ID.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		return printVersion()
	}

	fs := flag.NewFlagSet("sitlint", flag.ContinueOnError)
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (vettool protocol)")
	enabled := map[string]*bool{}
	for _, a := range suite.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, false, "run only the named analyzers: "+firstLine(a.Doc))
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *printFlags {
		return printFlagDefs()
	}

	var analyzers []*analysis.Analyzer
	for _, a := range suite.Analyzers() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		analyzers = suite.Analyzers()
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(analyzers, rest[0])
	}
	return runStandalone(analyzers, rest)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion implements the -V=full handshake: the go command
// requires "<name> version <vers>" and, for devel versions, a
// trailing buildID= token it uses to cache vet results. Hashing the
// executable makes the ID track rebuilds of the tool itself.
func printVersion() int {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", name, h.Sum(nil))
	return 0
}

// printFlagDefs implements the -flags handshake: the go command asks
// which flags the tool supports so it can forward matching command
// line flags.
func printFlagDefs() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	for _, a := range suite.Analyzers() {
		defs = append(defs, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	data, err := json.Marshal(defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

// vetConfig is the JSON the go command writes for each compilation
// unit in vettool mode (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit described by a vet .cfg file.
func runUnit(analyzers []*analysis.Analyzer, cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sitlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The suite carries no cross-package facts, so dependency-only
	// units need no analysis — just the (empty) facts file the go
	// command expects as the action's output.
	if !cfg.VetxOnly {
		if code := analyzeUnit(analyzers, &cfg); code != 0 {
			return code
		}
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "sitlint:", err)
			return 1
		}
	}
	return 0
}

func analyzeUnit(analyzers []*analysis.Analyzer, cfg *vetConfig) int {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "sitlint:", err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{Importer: imp, Sizes: types.SizesFor(compiler, "amd64")}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	// Test variants list the package under paths like "pkg [pkg.test]";
	// analyzers match on the plain import path.
	pkg := &analysis.Package{
		Path:      strings.TrimSuffix(strings.SplitN(cfg.ImportPath, " ", 2)[0], ".test"),
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	if pkg.Path != tpkg.Path() {
		pkg.Types = tpkg // path used only for scoping decisions
	}
	diags, err := analysis.RunAll(analyzers, []*analysis.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone loads packages by pattern and analyzes them, printing
// diagnostics to stdout with paths relative to the working directory.
func runStandalone(analyzers []*analysis.Analyzer, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	pkgs, err := load.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	count := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAll(analyzers, []*analysis.Package{pkg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sitlint:", err)
			return 1
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
			count++
		}
	}
	if count > 0 {
		return 2
	}
	return 0
}
