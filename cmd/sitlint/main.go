// Command sitlint runs the project's custom static-analysis suite —
// one analyzer per cross-package correctness invariant of the
// optimization engine (see internal/analysis/...):
//
//	railmutate    direct tam.Rail/tam.Architecture field writes outside internal/tam
//	ctxflow       optimization loops must thread and check context.Context
//	detrand       no global math/rand or time.Now in the deterministic search path
//	traceevent    obs.Event literals use typed constants; phase spans balance
//	errwrapcheck  sentinel errors use errors.Is and %w
//	lockorder     mutex/flock release discipline and canonical lock ordering
//	gorojoin      every go statement in the serving/parallel layers provably joins
//	fsyncack      journal writes fsync before acknowledgement; durable errors checked
//	detmerge      parallel reductions merge in deterministic index order
//	metricvocab   /metrics series names come from the closed DESIGN §13 vocabulary
//
// The last five are fact-based: they export object facts (what locks a
// function takes, whether a helper fsyncs, whether its returns stay
// inside the metric vocabulary) that flow to importing packages, so
// cross-package violations surface at the caller. Standalone mode runs
// one session over the whole module in dependency order; vettool mode
// round-trips the facts through the .vetx files of the go vet protocol.
//
// Modes:
//
//	sitlint ./...                            # standalone, like a linter
//	sitlint -sarif ./...                     # standalone, SARIF 2.1.0 on stdout
//	sitlint -audit ./...                     # suppression audit: stale //sitlint:allow
//	go vet -vettool=$(pwd)/sitlint ./...     # as a vet tool in CI
//
// In vettool mode sitlint implements the protocol `go vet` expects of
// external tools (the x/tools unitchecker protocol): -V=full prints a
// version line keyed to the binary's content, -flags advertises the
// analyzer selection flags, and otherwise the single argument is a
// JSON .cfg file describing one compilation unit. Analyzer selection:
// with no flags every analyzer runs; naming analyzers (-railmutate
// -detrand) runs only those.
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported
// (or, under -audit, stale/unknown suppression directives found).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sitam/internal/analysis"
	"sitam/internal/analysis/load"
	"sitam/internal/analysis/sarif"
	"sitam/internal/analysis/suite"
)

// modulePath scopes which compilation units get analyzed (and have
// facts computed) in vettool mode; everything else only relays facts.
const modulePath = "sitam"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Fact types must be gob-registered before any .vetx file or
	// session is touched.
	analysis.RegisterFactTypes(suite.Analyzers())

	// The -V=full handshake must come before flag parsing: the go
	// command invokes it to compute the tool's build ID.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		return printVersion()
	}

	fs := flag.NewFlagSet("sitlint", flag.ContinueOnError)
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (vettool protocol)")
	sarifOut := fs.Bool("sarif", false, "standalone mode: emit SARIF 2.1.0 to stdout")
	audit := fs.Bool("audit", false, "standalone mode: audit //sitlint:allow directives for staleness")
	enabled := map[string]*bool{}
	for _, a := range suite.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, false, "run only the named analyzers: "+firstLine(a.Doc))
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *printFlags {
		return printFlagDefs()
	}

	var analyzers []*analysis.Analyzer
	for _, a := range suite.Analyzers() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 || *audit {
		// The audit needs the full suite: a directive is only provably
		// stale after every analyzer it names has run.
		analyzers = suite.Analyzers()
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(analyzers, rest[0])
	}
	return runStandalone(analyzers, rest, *sarifOut, *audit)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion implements the -V=full handshake: the go command
// requires "<name> version <vers>" and, for devel versions, a
// trailing buildID= token it uses to cache vet results. Hashing the
// executable makes the ID track rebuilds of the tool itself.
func printVersion() int {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", name, h.Sum(nil))
	return 0
}

// printFlagDefs implements the -flags handshake: the go command asks
// which flags the tool supports so it can forward matching command
// line flags.
func printFlagDefs() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	for _, a := range suite.Analyzers() {
		defs = append(defs, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	data, err := json.Marshal(defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

// vetConfig is the JSON the go command writes for each compilation
// unit in vettool mode (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit described by a vet .cfg file.
// Facts flow through the protocol: the .vetx files of the unit's
// dependencies (PackageVetx) seed the session, the unit's own analysis
// adds to it, and the union is written to VetxOutput for units that
// import this one. Dependency-only units of the module (VetxOnly) run
// the analyzers with diagnostics discarded — their facts are needed,
// their findings are reported when the package is vetted as a target.
func runUnit(analyzers []*analysis.Analyzer, cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sitlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	session := analysis.NewSession()
	for _, vetx := range cfg.PackageVetx {
		f, err := os.Open(vetx)
		if err != nil {
			continue // a dep analyzed by an older tool build; facts degrade gracefully
		}
		derr := session.DecodeFacts(f)
		f.Close()
		if derr != nil {
			fmt.Fprintf(os.Stderr, "sitlint: reading facts %s: %v\n", vetx, derr)
			return 1
		}
	}

	if inModule(cfg.ImportPath) {
		if code := analyzeUnit(session, analyzers, &cfg, !cfg.VetxOnly); code != 0 {
			return code
		}
	}
	if cfg.VetxOutput != "" {
		f, err := os.Create(cfg.VetxOutput)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sitlint:", err)
			return 1
		}
		eerr := session.EncodeFacts(f)
		cerr := f.Close()
		if eerr == nil {
			eerr = cerr
		}
		if eerr != nil {
			fmt.Fprintln(os.Stderr, "sitlint:", eerr)
			return 1
		}
	}
	return 0
}

// inModule reports whether the (possibly test-variant) unit path
// belongs to this module.
func inModule(importPath string) bool {
	p := plainImportPath(importPath)
	return p == modulePath || strings.HasPrefix(p, modulePath+"/")
}

// plainImportPath strips the test-variant decorations the go command
// adds ("pkg [pkg.test]", "pkg.test").
func plainImportPath(importPath string) string {
	return strings.TrimSuffix(strings.SplitN(importPath, " ", 2)[0], ".test")
}

func analyzeUnit(session *analysis.Session, analyzers []*analysis.Analyzer, cfg *vetConfig, report bool) int {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "sitlint:", err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{Importer: imp, Sizes: types.SizesFor(compiler, "amd64")}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	// Test variants list the package under paths like "pkg [pkg.test]";
	// analyzers (and fact keys) match on the plain import path.
	pkg := &analysis.Package{
		Path:      plainImportPath(cfg.ImportPath),
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	diags, err := analysis.RunAllSession(session, analyzers, []*analysis.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	if !report {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone loads packages by pattern and analyzes them in one
// session in dependency order (so facts propagate), printing
// diagnostics to stdout with paths relative to the working directory —
// or as SARIF with -sarif, or as a suppression audit with -audit.
func runStandalone(analyzers []*analysis.Analyzer, patterns []string, sarifOut, audit bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	pkgs, err := load.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}
	session := analysis.NewSession()
	diags, err := analysis.RunAllSession(session, analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		return 1
	}

	relative := func(name string) string {
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return name
	}

	if audit {
		return runAudit(session, relative)
	}

	if sarifOut {
		rules := make([]sarif.Rule, 0, len(analyzers))
		for _, a := range analyzers {
			rules = append(rules, sarif.Rule{ID: a.Name, ShortDescription: sarif.Message{Text: firstLine(a.Doc)}})
		}
		log := sarif.NewLog("sitlint", "https://sitam.invalid/sitlint", "file://"+filepath.ToSlash(cwd)+"/", rules)
		for _, d := range diags {
			pos := fsetFor(pkgs, d).Position(d.Pos)
			log.AddResult(d.Analyzer, d.Message, filepath.ToSlash(relative(pos.Filename)), pos.Line, pos.Column)
		}
		if err := log.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sitlint:", err)
			return 1
		}
		if len(diags) > 0 {
			return 2
		}
		return 0
	}

	for _, d := range diags {
		pos := fsetFor(pkgs, d).Position(d.Pos)
		fmt.Printf("%s:%d:%d: %s: %s\n", relative(pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// fsetFor returns the FileSet positions resolve against. All packages
// of one load share a FileSet; the indirection keeps that assumption
// in one place.
func fsetFor(pkgs []*analysis.Package, _ analysis.Diagnostic) *token.FileSet {
	return pkgs[0].Fset
}

// runAudit reports every //sitlint:allow directive that names an
// unknown analyzer or suppressed nothing during the full-suite run.
// Exit 2 when any directive is stale — a suppression that suppresses
// nothing is a future false negative waiting for code to drift under
// it.
func runAudit(session *analysis.Session, relative func(string) string) int {
	known := map[string]bool{"all": true}
	for _, a := range suite.Analyzers() {
		known[a.Name] = true
	}
	directives := session.Directives()
	bad := 0
	for _, d := range directives {
		var unknown, stale []string
		for _, n := range d.Names {
			if !known[n] {
				unknown = append(unknown, n)
			}
		}
		for _, n := range d.Stale() {
			if known[n] {
				stale = append(stale, n)
			}
		}
		if len(unknown) > 0 {
			fmt.Printf("%s:%d: unknown analyzer in //sitlint:allow: %s\n", relative(d.File), d.Line, strings.Join(unknown, ", "))
			bad++
		}
		if len(stale) > 0 {
			fmt.Printf("%s:%d: stale //sitlint:allow %s: suppresses nothing; remove it or fix the justification\n", relative(d.File), d.Line, strings.Join(stale, ", "))
			bad++
		}
	}
	fmt.Printf("sitlint audit: %d directive(s), %d problem(s)\n", len(directives), bad)
	if bad > 0 {
		return 2
	}
	return 0
}
