// Command socbench regenerates the paper's evaluation artifacts: Table 2
// (SOC p34392) and Table 3 (SOC p93791), comparing the SI-oblivious
// TR-Architect baseline T_[8] against the SI-aware TAM_Optimization
// results T_g_i for several SI test grouping counts, plus the Section 2
// motivation estimate.
//
// Usage:
//
//	socbench                      # both tables, full paper sweep
//	socbench -soc p34392          # one table
//	socbench -quick               # reduced sweep for a fast smoke run
//	socbench -markdown            # emit GitHub-flavored markdown
//	socbench -ablation            # run the ablation sweeps instead
//	socbench -scenarios 200       # constrained-scenario matrix instead
//
// The full sweep takes several minutes on a laptop-class machine; use
// -v to watch progress. With -timeout, or on SIGINT/SIGTERM, the cells
// completed so far are printed with a "RESULT PARTIAL" marker and the
// exit code is 3. Exit codes: 0 success, 1 error, 3 partial result.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"sitam/cmd/internal/cli"
	"sitam/internal/core"
	"sitam/internal/experiments"
	"sitam/internal/obs"
	"sitam/internal/soc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("socbench: ")
	var (
		socName  = flag.String("soc", "", "run a single benchmark SOC (default: all)")
		quick    = flag.Bool("quick", false, "reduced sweep (fewer widths, smaller Nr)")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		verbose  = flag.Bool("v", false, "log per-cell progress to stderr")
		seed     = flag.Int64("seed", 1, "random seed")
		ablation = flag.Bool("ablation", false, "run ablation sweeps instead of the main tables")
		nScen    = flag.Int("scenarios", 0, "run N seeded constrained-scheduling scenarios (seed, seed+1, ...) through the solve-and-check harness instead of the main tables")
		coverage = flag.Bool("coverage", false, "run the SI fault coverage experiment instead of the main tables")
		workers  = flag.Int("workers", 0, "concurrent candidate evaluations per optimization (0 = GOMAXPROCS, 1 = serial); table numbers are identical at any worker count")
		cacheFil = flag.String("cache-file", "", "persistent evaluation-cache file shared by every cell of the sweep; a locked or damaged file degrades to memory-only")
		timeout  = flag.Duration("timeout", 0, "deadline; on expiry the completed cells are printed and the exit code is 3 (0 = none)")
		stats    = flag.Bool("stats", false, "print the accumulated metrics snapshot (worker pool, phase timings) to stderr after the tables")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		httpProf = flag.String("httpprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	profStop, err := cli.Profile(*cpuProf, *memProf, *httpProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := profStop(); err != nil {
			log.Print(err)
		}
	}()
	var metrics *obs.Registry
	printStats := func() {
		if metrics != nil {
			fmt.Fprint(os.Stderr, "run metrics:\n"+metrics.Snapshot().Format())
		}
	}
	if *stats {
		metrics = obs.NewRegistry()
		defer printStats()
	}

	var persist *core.CacheFile
	if *cacheFil != "" {
		cf, cferr := core.OpenCacheFile(*cacheFil)
		if cferr != nil {
			log.Printf("cache file %s unavailable (%v); continuing without persistence", *cacheFil, cferr)
		} else {
			defer func() {
				if cerr := cf.Close(); cerr != nil {
					log.Printf("cache file %s: close: %v (appends since the last sync may be lost)", *cacheFil, cerr)
				}
			}()
			persist = cf
		}
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	// os.Exit skips deferred calls, so the partial-exit path flushes the
	// profilers and the metrics snapshot itself.
	exitPartial := func(reason string) {
		stop()
		fmt.Printf("RESULT PARTIAL (%s): %s\n", cli.Cause(ctx), reason)
		if err := profStop(); err != nil {
			log.Print(err)
		}
		printStats()
		os.Exit(cli.ExitPartial)
	}

	if *ablation {
		if err := experiments.RunAblations(ctx, os.Stdout, *seed, *quick); err != nil {
			if cli.IsCtxErr(err) {
				exitPartial("ablation study stopped early")
			}
			log.Fatal(err)
		}
		return
	}
	if *nScen > 0 {
		solved, err := runScenarioMatrix(ctx, os.Stdout, *seed, *nScen, *markdown)
		if err != nil {
			log.Fatal(err)
		}
		if solved < *nScen {
			exitPartial(fmt.Sprintf("%d of %d scenarios solved", solved, *nScen))
		}
		return
	}
	if *coverage {
		if err := experiments.RunCoverage(ctx, os.Stdout, *seed, *quick); err != nil {
			if cli.IsCtxErr(err) {
				exitPartial("coverage experiment stopped early")
			}
			log.Fatal(err)
		}
		return
	}

	fmt.Println(experiments.DefaultMotivation().Format())

	names := []string{"p34392", "p93791"}
	if *socName != "" {
		names = []string{*socName}
	}
	partialReason := ""
	for _, name := range names {
		s, err := soc.LoadBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := experiments.TableConfig{
			Seed: *seed, Progress: progress,
			Parallel: core.ParallelConfig{Workers: *workers, CacheSize: core.DefaultCacheSize, Metrics: metrics, Persist: persist},
		}
		if *quick {
			cfg.Widths = []int{16, 32, 64}
			cfg.Nr = []int{10000}
		}
		tbl, err := experiments.RunTableCtx(ctx, s, cfg)
		if err != nil {
			if cli.IsCtxErr(err) {
				exitPartial(fmt.Sprintf("no completed cells for %s", name))
			}
			log.Fatal(err)
		}
		if *markdown {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.Format())
		}
		if tbl.Partial {
			partialReason = fmt.Sprintf("%s: %s", name, tbl.Reason)
			break
		}
	}
	if partialReason != "" {
		exitPartial(partialReason)
	}
}
