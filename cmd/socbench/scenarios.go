package main

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"sitam/internal/scenario"
)

// runScenarioMatrix drives the constrained-scheduling harness from the
// command line: N seeded scenarios (seed, seed+1, ...) are generated,
// solved by the production scheduler and cross-checked by the
// independent checker (internal/sicheck), exactly as the generative
// test sweep does. The matrix lists each scenario's shape — core,
// rail, group and constraint counts, power budget — next to its solved
// T_si, so regressions in the constrained path show up as changed
// makespans, not just pass/fail.
//
// The context is checked between scenarios; on cancellation the rows
// completed so far are printed and the count of solved scenarios is
// returned, letting main exit via the RESULT PARTIAL path.
func runScenarioMatrix(ctx context.Context, w io.Writer, base int64, n int, markdown bool) (solved int, err error) {
	type row struct {
		seed                    int64
		cores, rails, groups    int
		budget                  int64
		precedences, exclusions int
		tsi                     int64
	}
	rows := make([]row, 0, n)
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		seed := base + int64(i)
		sc := scenario.Generate(seed)
		if verr := sc.Validate(); verr != nil {
			return solved, fmt.Errorf("seed %d: generator produced invalid scenario: %w", seed, verr)
		}
		sched, serr := scenario.Solve(sc)
		if serr != nil {
			return solved, fmt.Errorf("seed %d: %w (replay: gensoc -scenario -seed %d)", seed, serr, seed)
		}
		r := row{
			seed:   seed,
			cores:  sc.SOC.NumCores(),
			rails:  len(sc.Rails),
			groups: len(sc.Groups),
			tsi:    sched.TotalSI,
		}
		if cs := sc.SOC.Constraints; cs != nil {
			r.budget = cs.PowerBudget
			r.precedences = len(cs.Precedences)
			r.exclusions = len(cs.Exclusions)
		}
		rows = append(rows, r)
		solved++
	}

	if markdown {
		fmt.Fprintln(w, "| seed | cores | rails | groups | budget | prec | excl | T_si |")
		fmt.Fprintln(w, "|-----:|------:|------:|-------:|-------:|-----:|-----:|-----:|")
		for _, r := range rows {
			fmt.Fprintf(w, "| %d | %d | %d | %d | %d | %d | %d | %d |\n",
				r.seed, r.cores, r.rails, r.groups, r.budget, r.precedences, r.exclusions, r.tsi)
		}
	} else {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "seed\tcores\trails\tgroups\tbudget\tprec\texcl\tT_si\t")
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
				r.seed, r.cores, r.rails, r.groups, r.budget, r.precedences, r.exclusions, r.tsi)
		}
		if err := tw.Flush(); err != nil {
			return solved, err
		}
	}
	fmt.Fprintf(w, "\n%d scenarios solved, 0 checker violations\n", solved)
	return solved, nil
}
