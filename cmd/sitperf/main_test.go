package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCompareFlagsInjectedRegression is the sentinel's core guarantee
// in unit form: a 2x slowdown over the baseline must come back as a
// regression, an unmodified run must not, and an entry inside the
// noise band must read ok.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	s := suite{name: "unit", baseline: "BENCH_unit.json", thresholdScale: 1}
	base := map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 500}

	sr := compareSuite(s, base, map[string][]float64{
		"BenchmarkA": {2100, 2000, 1950}, // 2x: regression
		"BenchmarkB": {520, 510, 540},    // within noise: ok
		"BenchmarkC": {10},               // no baseline: new
	}, 1.5)
	if sr.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1: %+v", sr.Regressions, sr.Entries)
	}
	byName := map[string]entry{}
	for _, e := range sr.Entries {
		byName[e.Name] = e
	}
	if byName["BenchmarkA"].Status != "regression" || byName["BenchmarkA"].Ratio != 2.0 {
		t.Errorf("BenchmarkA: %+v", byName["BenchmarkA"])
	}
	if byName["BenchmarkB"].Status != "ok" {
		t.Errorf("BenchmarkB: %+v", byName["BenchmarkB"])
	}
	if byName["BenchmarkC"].Status != "new" {
		t.Errorf("BenchmarkC: %+v", byName["BenchmarkC"])
	}

	// The clean run: identical medians, zero regressions.
	clean := compareSuite(s, base, map[string][]float64{
		"BenchmarkA": {1000, 1000, 1000},
		"BenchmarkB": {500, 500, 500},
	}, 1.5)
	if clean.Regressions != 0 {
		t.Errorf("unmodified run flagged %d regressions", clean.Regressions)
	}

	// A large improvement is reported but never fails the run.
	imp := compareSuite(s, base, map[string][]float64{"BenchmarkA": {100, 100, 100}}, 1.5)
	if imp.Regressions != 0 || imp.Entries[0].Status != "improvement" {
		t.Errorf("improvement misclassified: %+v", imp.Entries[0])
	}
}

func TestRobustStats(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %v", m)
	}
	// One wild outlier (the shared-VM scenario) barely moves the pair.
	samples := []float64{100, 102, 98, 101, 1000}
	if m := median(samples); m != 101 {
		t.Errorf("median with outlier = %v", m)
	}
	if d := mad(samples); d != 1 {
		t.Errorf("mad with outlier = %v", d)
	}
}

func TestParseBenchOutput(t *testing.T) {
	raw := `goos: linux
goarch: amd64
Benchmark_IncrementalEval/scratch-8         	       2	163917550 ns/op	220453648 B/op	  920930 allocs/op
Benchmark_IncrementalEval/scratch-8         	       2	165000000 ns/op
BenchmarkScheduleSITest-8                   	   20000	      4260 ns/op
Benchmark_Odd-8                             	       1	 100000.5 ns/op
PASS
`
	matches := benchLine.FindAllStringSubmatch(raw, -1)
	got := map[string][]string{}
	for _, m := range matches {
		got[m[1]] = append(got[m[1]], m[2])
	}
	if len(got["Benchmark_IncrementalEval/scratch"]) != 2 {
		t.Errorf("repetitions not grouped: %v", got)
	}
	if got["BenchmarkScheduleSITest"][0] != "4260" {
		t.Errorf("parse: %v", got)
	}
	if got["Benchmark_Odd"][0] != "100000.5" {
		t.Errorf("fractional ns/op: %v", got)
	}
}

func buildSitperf(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sitperf")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSelftestAgainstCommittedBaselines runs `sitperf -selftest`
// against the real BENCH_*.json files: the comparator must pass the
// unmodified numbers and flag the injected slowdown in every suite.
func TestSelftestAgainstCommittedBaselines(t *testing.T) {
	bin := buildSitperf(t)
	out, err := exec.Command(bin, "-selftest", "-baselines", "../..").CombinedOutput()
	if err != nil {
		t.Fatalf("sitperf -selftest: %v\n%s", err, out)
	}
	for _, want := range []string{"selftest incremental: ok", "selftest parallel: ok", "selftest serve: ok", "selftest lint: ok"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("selftest output missing %q:\n%s", want, out)
		}
	}
}

// TestUpdateBaselinePreservesProse checks -update surgery: ns_per_op
// values move, the findings/environment prose and entries the run did
// not measure stay intact.
func TestUpdateBaselinePreservesProse(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_unit.json")
	src := `{
  "description": "unit fixture",
  "environment": {"note": "keep me"},
  "benchmarks": [
    {"name": "BenchmarkA", "iters": 2, "ns_per_op": 1000},
    {"name": "BenchmarkGuard", "iters": 2, "custom_ns": 42},
    {"name": "BenchmarkB", "iters": 2, "ns_per_op": 500}
  ],
  "findings": ["keep this sentence"]
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	s := suite{name: "unit", baseline: "BENCH_unit.json", thresholdScale: 1}
	err := updateBaseline(path, s, map[string][]float64{
		"BenchmarkA":     {2000, 2100, 1900},
		"BenchmarkGuard": {7, 7, 7}, // no ns_per_op in the entry: untouched
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["findings"].([]any)[0] != "keep this sentence" {
		t.Error("findings prose lost")
	}
	byName := map[string]map[string]any{}
	for _, item := range doc["benchmarks"].([]any) {
		m := item.(map[string]any)
		byName[m["name"].(string)] = m
	}
	if byName["BenchmarkA"]["ns_per_op"].(float64) != 2000 {
		t.Errorf("BenchmarkA not updated to the median: %v", byName["BenchmarkA"])
	}
	if byName["BenchmarkB"]["ns_per_op"].(float64) != 500 {
		t.Errorf("unmeasured BenchmarkB changed: %v", byName["BenchmarkB"])
	}
	if _, has := byName["BenchmarkGuard"]["ns_per_op"]; has {
		t.Errorf("guard entry grew an ns_per_op: %v", byName["BenchmarkGuard"])
	}

	// The rewritten file still loads as a baseline.
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base["BenchmarkA"] != 2000 || len(base) != 2 {
		t.Errorf("reloaded baseline: %v", base)
	}
}
