package main

// Baseline files are the committed BENCH_*.json documents. They carry
// prose (findings, environment notes) alongside the numbers, so both
// loading and updating go through a schema-light map representation
// that touches only the compared fields and leaves the rest intact.

import (
	"encoding/json"
	"fmt"
	"os"
)

// loadBaseline extracts the comparable values of a baseline document:
// benchmarks[].ns_per_op keyed by benchmarks[].name, and the serve
// latency percentiles keyed latency/p50_ms etc. Entries without a
// comparable value (e.g. guard benches reporting custom fields) are
// skipped.
func loadBaseline(path string) (map[string]float64, error) {
	doc, err := readDoc(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	if benches, ok := doc["benchmarks"].([]any); ok {
		for _, item := range benches {
			m, ok := item.(map[string]any)
			if !ok {
				continue
			}
			name, _ := m["name"].(string)
			ns, ok := m["ns_per_op"].(float64)
			if name == "" || !ok {
				continue
			}
			out[name] = ns
		}
	}
	if lat, ok := doc["latency"].(map[string]any); ok {
		for _, k := range []string{"p50_ms", "p95_ms", "p99_ms"} {
			if v, ok := lat[k].(float64); ok {
				out["latency/"+k] = v
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no comparable entries (benchmarks[].ns_per_op or latency percentiles)", path)
	}
	return out, nil
}

// updateBaseline rewrites the compared values of a baseline document
// from this run's medians, preserving every other field. Bench entries
// get ns_per_op (rounded to integer nanoseconds); the serve document
// gets its latency percentiles.
func updateBaseline(path string, s suite, measured map[string][]float64) error {
	doc, err := readDoc(path)
	if err != nil {
		return err
	}
	if benches, ok := doc["benchmarks"].([]any); ok {
		for _, item := range benches {
			m, ok := item.(map[string]any)
			if !ok {
				continue
			}
			name, _ := m["name"].(string)
			if _, had := m["ns_per_op"]; !had {
				continue
			}
			if samples, ok := measured[name]; ok {
				m["ns_per_op"] = int64(median(samples))
			}
		}
	}
	if lat, ok := doc["latency"].(map[string]any); ok {
		for _, k := range []string{"p50_ms", "p95_ms", "p99_ms"} {
			if samples, ok := measured["latency/"+k]; ok {
				lat[k] = median(samples)
			}
		}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func readDoc(path string) (map[string]any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}
