// Command sitperf is the performance-regression sentinel: it re-runs
// the benchmark suites behind the committed BENCH_*.json baselines,
// summarizes each benchmark with robust statistics (median and MAD
// across repetitions), and compares the medians against the baselines
// under a noise threshold.
//
//	sitperf                      # run every suite, human summary on stdout
//	sitperf -suites incremental  # one suite
//	sitperf -iters 5 -threshold 1.4
//	sitperf -report perf.json    # machine-readable comparison report
//	sitperf -update              # refresh the baselines from this run
//	sitperf -selftest            # verify the detector flags an injected 2x slowdown
//
// Exit codes: 0 clean, 1 run/usage error, 2 regression detected (the
// report names each offender). The threshold is deliberately generous:
// the baselines were captured on a shared VM whose wall-clock varies
// run to run by 20-40%, so only multiples beyond that band are flagged.
// The serve suite compares chaos-harness latency percentiles, which
// are noisier still; its threshold is scaled (see suite definitions).
// The lint suite times a full-module sitlint run and additionally
// enforces a hard 60s wall-clock smoke budget independent of the
// baseline, so analyzer work can never silently make `go vet` painful.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// exit codes (cli.ExitOK/ExitError plus the sentinel's own verdict code).
const (
	exitOK         = 0
	exitError      = 1
	exitRegression = 2
)

// suite binds a committed baseline file to the bench invocations that
// reproduce its numbers.
type suite struct {
	name     string
	baseline string
	// thresholdScale relaxes the global threshold for suites with
	// intrinsically noisier measurements (chaos latency percentiles).
	thresholdScale float64
	runs           []benchRun
	// serveLatency marks the chaos-harness suite, which measures via a
	// test run writing CHAOS_BENCH_OUT instead of -bench output.
	serveLatency bool
	// lintSmoke marks the static-analysis suite: it builds the sitlint
	// vettool and times a full-module standalone run, hard-failing past
	// the wall-clock budget regardless of the baseline comparison.
	lintSmoke bool
}

// benchRun is one `go test -bench` invocation.
type benchRun struct {
	pkg       string
	pattern   string
	benchtime string
}

var suites = []suite{
	{
		name:           "incremental",
		baseline:       "BENCH_incremental.json",
		thresholdScale: 1,
		runs: []benchRun{
			{pkg: ".", pattern: "Benchmark_IncrementalEval", benchtime: "2x"},
			{pkg: ".", pattern: "BenchmarkScheduleSITest", benchtime: "20000x"},
			{pkg: "./internal/compaction", pattern: "Benchmark_CompactionBitset", benchtime: "2x"},
		},
	},
	{
		name:           "parallel",
		baseline:       "BENCH_parallel.json",
		thresholdScale: 1,
		runs: []benchRun{
			{pkg: ".", pattern: "Benchmark_ParallelEval|Benchmark_CacheColdVsWarm", benchtime: "2x"},
		},
	},
	{
		name:           "serve",
		baseline:       "BENCH_serve.json",
		thresholdScale: 2.5,
		serveLatency:   true,
	},
	{
		name:           "compact",
		baseline:       "BENCH_compact.json",
		thresholdScale: 1,
		runs: []benchRun{
			{pkg: "./internal/compaction", pattern: "Benchmark_CompactionSharded", benchtime: "2x"},
			{pkg: ".", pattern: "Benchmark_CachePersistentRestart", benchtime: "2x"},
		},
	},
	{
		name:     "lint",
		baseline: "BENCH_lint.json",
		// Full-module analysis wall-clock rides on the go build cache and
		// the VM's disk, both noisier than a tight bench loop.
		thresholdScale: 2,
		lintSmoke:      true,
	},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sitperf: ")
	var (
		suitesFlag = flag.String("suites", "incremental,parallel,serve,compact,lint", "comma-separated suites to run")
		iters      = flag.Int("iters", 3, "benchmark repetitions per suite (go test -count); median/MAD computed across them")
		threshold  = flag.Float64("threshold", 1.5, "regression bar: flag when measured median > baseline * threshold")
		update     = flag.Bool("update", false, "rewrite the baseline files from this run's medians instead of comparing")
		reportPath = flag.String("report", "", "write the machine-readable comparison report (JSON) to this path")
		baseDir    = flag.String("baselines", ".", "directory holding the BENCH_*.json baselines (the repo root)")
		selftest   = flag.Bool("selftest", false, "no benches: verify the comparator passes an unmodified run and flags an injected 2x slowdown")
		verbose    = flag.Bool("v", false, "stream go test output")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		log.Print("usage: sitperf [-suites a,b] [-iters n] [-threshold x] [-update] [-report file]")
		os.Exit(exitError)
	}

	selected, err := selectSuites(*suitesFlag)
	if err != nil {
		log.Print(err)
		os.Exit(exitError)
	}

	if *selftest {
		os.Exit(runSelftest(selected, *baseDir, *threshold))
	}

	rep := report{Threshold: *threshold, Iters: *iters}
	for _, s := range selected {
		base, err := loadBaseline(filepath.Join(*baseDir, s.baseline))
		if err != nil {
			log.Printf("%s: %v", s.name, err)
			os.Exit(exitError)
		}
		measured, err := measure(s, *iters, *verbose, *baseDir)
		if err != nil {
			log.Printf("%s: %v", s.name, err)
			os.Exit(exitError)
		}
		sr := compareSuite(s, base, measured, *threshold)
		rep.Suites = append(rep.Suites, sr)
		rep.Regressions += sr.Regressions

		if *update {
			if err := updateBaseline(filepath.Join(*baseDir, s.baseline), s, measured); err != nil {
				log.Printf("%s: updating baseline: %v", s.name, err)
				os.Exit(exitError)
			}
			fmt.Printf("updated %s\n", s.baseline)
		}
	}

	printReport(os.Stdout, &rep)
	if *reportPath != "" {
		b, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			log.Print(err)
			os.Exit(exitError)
		}
		if err := os.WriteFile(*reportPath, append(b, '\n'), 0o644); err != nil {
			log.Print(err)
			os.Exit(exitError)
		}
	}
	if !*update && rep.Regressions > 0 {
		os.Exit(exitRegression)
	}
	os.Exit(exitOK)
}

func selectSuites(names string) ([]suite, error) {
	var out []suite
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, s := range suites {
			if s.name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown suite %q (have incremental, parallel, serve, compact, lint)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no suites selected")
	}
	return out, nil
}

// runSelftest exercises the comparator against synthetic measurements
// derived from the committed baselines themselves: an unmodified run
// must produce zero regressions, and the same run slowed 2x must flag
// every comparable entry. No benchmarks are executed.
func runSelftest(selected []suite, baseDir string, threshold float64) int {
	failed := false
	for _, s := range selected {
		base, err := loadBaseline(filepath.Join(baseDir, s.baseline))
		if err != nil {
			log.Printf("selftest %s: %v", s.name, err)
			return exitError
		}
		if len(base) == 0 {
			log.Printf("selftest %s: baseline has no comparable entries", s.name)
			failed = true
			continue
		}

		// The injected slowdown is 2x, pushed past the suite's scaled bar
		// when that bar itself exceeds 2 (the serve latency suite).
		factor := 2.0
		if bar := threshold * s.thresholdScale; factor <= bar {
			factor = bar * 1.5
		}
		clean := make(map[string][]float64, len(base))
		slowed := make(map[string][]float64, len(base))
		for name, v := range base {
			clean[name] = []float64{v, v, v}
			slowed[name] = []float64{factor * v, factor * v, factor * v}
		}
		if sr := compareSuite(s, base, clean, threshold); sr.Regressions != 0 {
			log.Printf("selftest %s: unmodified run flagged %d regressions", s.name, sr.Regressions)
			failed = true
		}
		sr := compareSuite(s, base, slowed, threshold)
		if sr.Regressions != len(base) {
			log.Printf("selftest %s: injected %.1fx slowdown flagged %d/%d entries", s.name, factor, sr.Regressions, len(base))
			failed = true
		}
		fmt.Printf("selftest %s: ok (%d entries, %.1fx slowdown flags all)\n", s.name, len(base), factor)
	}
	if failed {
		return exitError
	}
	return exitOK
}

func printReport(w *os.File, rep *report) {
	for _, sr := range rep.Suites {
		fmt.Fprintf(w, "suite %s (baseline %s, bar %.2fx):\n", sr.Suite, sr.Baseline, sr.Bar)
		for _, e := range sr.Entries {
			switch e.Status {
			case "new":
				fmt.Fprintf(w, "  %-48s %14.3f        (no baseline)\n", e.Name, e.Measured)
			default:
				fmt.Fprintf(w, "  %-48s %14.3f  %5.2fx  ±%.1f%%  %s\n",
					e.Name, e.Measured, e.Ratio, e.NoisePct, e.Status)
			}
		}
	}
	if rep.Regressions > 0 {
		fmt.Fprintf(w, "REGRESSION: %d benchmark(s) beyond threshold %.2fx\n", rep.Regressions, rep.Threshold)
	} else {
		fmt.Fprintf(w, "no regressions beyond threshold %.2fx\n", rep.Threshold)
	}
}
