package main

// Benchmark execution and output parsing. Bench suites run
// `go test -bench` with -count repetitions in one invocation (one
// binary build, N samples per benchmark); the serve suite runs the
// chaos harness once per repetition and reads the latency percentiles
// it writes to CHAOS_BENCH_OUT.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"time"
)

// benchLine matches one benchmark result line; the -\d+ suffix is the
// GOMAXPROCS decoration, stripped so names match the baseline entries.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// measure runs a suite's workload dir-rooted at root and returns the
// per-benchmark samples (one per repetition).
func measure(s suite, iters int, verbose bool, root string) (map[string][]float64, error) {
	if s.serveLatency {
		return measureServeLatency(iters, verbose, root)
	}
	if s.lintSmoke {
		return measureLint(iters, verbose, root)
	}
	out := make(map[string][]float64)
	for _, r := range s.runs {
		args := []string{"test", "-run", "^$", "-bench", r.pattern,
			"-benchtime", r.benchtime, "-count", strconv.Itoa(iters), r.pkg}
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		if verbose {
			fmt.Fprintf(os.Stderr, "sitperf: go %v\n", args)
		}
		raw, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("go %v: %v\n%s", args, err, raw)
		}
		if verbose {
			os.Stderr.Write(raw)
		}
		matches := benchLine.FindAllStringSubmatch(string(raw), -1)
		if len(matches) == 0 {
			return nil, fmt.Errorf("go %v produced no benchmark results:\n%s", args, raw)
		}
		for _, m := range matches {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %v", m[0], err)
			}
			out[m[1]] = append(out[m[1]], ns)
		}
	}
	return out, nil
}

// lintBudget is the hard wall-clock ceiling for one full-module sitlint
// run. A standalone run type-checks every package and propagates facts
// in dependency order; if that ever crosses a minute, the vettool has
// become too expensive for the edit-lint loop and the suite fails
// outright, baseline or not.
const lintBudget = 60 * time.Second

// measureLint builds the sitlint vettool into a scratch dir and times
// iters full-module standalone analyses, reported as Lint_FullModule
// wall nanoseconds. Build time is excluded: the smoke target is the
// analysis cost developers and CI pay per run, not the one-off compile.
func measureLint(iters int, verbose bool, root string) (map[string][]float64, error) {
	dir, err := os.MkdirTemp("", "sitperf-lint")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "sitlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sitlint")
	build.Dir = root
	if raw, err := build.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("building sitlint: %v\n%s", err, raw)
	}
	out := make(map[string][]float64)
	for i := 0; i < iters; i++ {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = root
		start := time.Now()
		raw, err := cmd.CombinedOutput()
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("lint run %d: sitlint ./... : %v\n%s", i, err, raw)
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "sitperf: lint run %d: %s\n", i, elapsed)
		}
		if elapsed > lintBudget {
			return nil, fmt.Errorf("lint run %d took %s, over the %s smoke budget", i, elapsed, lintBudget)
		}
		out["Lint_FullModule"] = append(out["Lint_FullModule"], float64(elapsed.Nanoseconds()))
	}
	return out, nil
}

// serveBench is the slice of the chaos result the sentinel compares.
type serveBench struct {
	Latency struct {
		Samples int     `json:"samples"`
		P50ms   float64 `json:"p50_ms"`
		P95ms   float64 `json:"p95_ms"`
		P99ms   float64 `json:"p99_ms"`
	} `json:"latency"`
}

// measureServeLatency runs the chaos harness iters times, each run
// writing its result to a throwaway CHAOS_BENCH_OUT (the committed
// BENCH_serve.json is never clobbered by a measurement run).
func measureServeLatency(iters int, verbose bool, root string) (map[string][]float64, error) {
	out := make(map[string][]float64)
	dir, err := os.MkdirTemp("", "sitperf-serve")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	for i := 0; i < iters; i++ {
		bench := filepath.Join(dir, fmt.Sprintf("serve-%d.json", i))
		cmd := exec.Command("go", "test", "-run", "TestChaos", "-count=1", "./internal/serve/chaostest")
		cmd.Dir = root
		cmd.Env = append(os.Environ(), "CHAOS_BENCH_OUT="+bench)
		raw, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("chaos run %d: %v\n%s", i, err, raw)
		}
		if verbose {
			os.Stderr.Write(raw)
		}
		b, err := os.ReadFile(bench)
		if err != nil {
			return nil, fmt.Errorf("chaos run %d wrote no bench file: %v", i, err)
		}
		var doc serveBench
		if err := json.Unmarshal(b, &doc); err != nil {
			return nil, fmt.Errorf("chaos run %d: %v", i, err)
		}
		out["latency/p50_ms"] = append(out["latency/p50_ms"], doc.Latency.P50ms)
		out["latency/p95_ms"] = append(out["latency/p95_ms"], doc.Latency.P95ms)
		out["latency/p99_ms"] = append(out["latency/p99_ms"], doc.Latency.P99ms)
	}
	return out, nil
}
