package main

// Robust statistics and the baseline comparison. Medians resist the
// long-tail outliers a shared VM injects (GC pause, noisy neighbor);
// the MAD gives a scale-free noise estimate reported alongside each
// verdict so a borderline ratio can be read in context.

import "sort"

// median returns the middle value (mean of the middle two for even n).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mad returns the median absolute deviation from the median.
func mad(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		d := x - m
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	return median(dev)
}

// report is the machine-readable comparison document.
type report struct {
	Threshold   float64       `json:"threshold"`
	Iters       int           `json:"iters"`
	Regressions int           `json:"regressions"`
	Suites      []suiteReport `json:"suites"`
}

type suiteReport struct {
	Suite       string  `json:"suite"`
	Baseline    string  `json:"baseline"`
	Bar         float64 `json:"bar"` // threshold * suite scale
	Regressions int     `json:"regressions"`
	Entries     []entry `json:"entries"`
}

// entry compares one benchmark. Values are ns/op for bench suites and
// milliseconds for the serve latency percentiles — the ratio is what
// the verdict reads, so the unit only needs to match the baseline's.
type entry struct {
	Name     string    `json:"name"`
	Baseline float64   `json:"baseline,omitempty"`
	Measured float64   `json:"measured"` // median across repetitions
	Samples  []float64 `json:"samples,omitempty"`
	MAD      float64   `json:"mad"`
	// NoisePct is the MAD as a percentage of the median (scaled by
	// 1.4826, the consistency constant for a normal distribution).
	NoisePct float64 `json:"noise_pct"`
	Ratio    float64 `json:"ratio,omitempty"`
	// Status: ok | regression | improvement | new (no baseline entry).
	Status string `json:"status"`
}

// compareSuite folds measured samples against the baseline map
// (name -> baseline ns). Entries are emitted in sorted-name order so
// the report is deterministic.
func compareSuite(s suite, base map[string]float64, measured map[string][]float64, threshold float64) suiteReport {
	bar := threshold * s.thresholdScale
	sr := suiteReport{Suite: s.name, Baseline: s.baseline, Bar: bar}
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		samples := measured[name]
		m := median(samples)
		d := mad(samples)
		e := entry{Name: name, Measured: m, Samples: samples, MAD: d}
		if m > 0 {
			e.NoisePct = 100 * 1.4826 * d / m
		}
		baseVal, ok := base[name]
		if !ok || baseVal <= 0 {
			e.Status = "new"
			sr.Entries = append(sr.Entries, e)
			continue
		}
		e.Baseline = baseVal
		e.Ratio = m / baseVal
		switch {
		case e.Ratio > bar:
			e.Status = "regression"
			sr.Regressions++
		case e.Ratio < 1/bar:
			e.Status = "improvement"
		default:
			e.Status = "ok"
		}
		sr.Entries = append(sr.Entries, e)
	}
	return sr
}
