// Command sicompact runs the paper's two-dimensional SI test-set
// compaction on a pattern file produced by sigen: hypergraph
// partitioning of the cores into -g groups followed by greedy
// clique-cover compaction within each group. It reports the compaction
// statistics and optionally writes the compacted patterns.
//
//	sigen -soc p93791 -nr 100000 -o raw.pat
//	sicompact -soc p93791 -g 4 raw.pat -o compact.pat
//
// With -timeout, or on SIGINT/SIGTERM, compaction degrades gracefully:
// remaining patterns pass through unmerged, the output is still a valid
// cover of the input set, a "RESULT PARTIAL" marker is printed and the
// exit code is 3. Exit codes: 0 success, 1 error, 3 partial result.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sitam/cmd/internal/cli"
	"sitam/internal/core"
	"sitam/internal/obs"
	"sitam/internal/sifault"
	"sitam/internal/soc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sicompact: ")
	var (
		socName = flag.String("soc", "p93791", "embedded benchmark SOC name")
		file    = flag.String("file", "", ".soc file to load instead of a benchmark")
		parts   = flag.Int("g", 1, "number of SI test groups (1 = vertical compaction only)")
		seed    = flag.Int64("seed", 1, "partitioner seed")
		workers = flag.Int("compact-workers", 0, "concurrent compaction shard workers (0 = serial, -1 = GOMAXPROCS); output is identical at any count")
		out     = flag.String("o", "", "write compacted patterns to this file")
		stats   = flag.Bool("stats", false, "print partition/compaction phase metrics to stderr")
		timeout = flag.Duration("timeout", 0, "deadline; on expiry the partially compacted set is emitted and the exit code is 3 (0 = none)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: sicompact [flags] <pattern file>")
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()

	partial, reason, err := run(ctx, *socName, *file, *parts, *seed, *workers, *out, flag.Arg(0), *stats)
	stop()
	if err != nil {
		if cli.IsCtxErr(err) {
			fmt.Printf("RESULT PARTIAL (%s): %v\n", cli.Cause(ctx), err)
			os.Exit(cli.ExitPartial)
		}
		log.Fatal(err)
	}
	if partial {
		fmt.Printf("RESULT PARTIAL (%s): %s\n", cli.Cause(ctx), reason)
		os.Exit(cli.ExitPartial)
	}
}

func run(ctx context.Context, socName, file string, parts int, seed int64, workers int, out, patFile string, stats bool) (partial bool, reason string, err error) {
	s, err := loadSOC(file, socName)
	if err != nil {
		return false, "", err
	}
	sp := sifault.NewSpace(s)

	in, err := os.Open(patFile)
	if err != nil {
		return false, "", err
	}
	total, bus, patterns, err := sifault.ReadPatterns(in)
	in.Close()
	if err != nil {
		return false, "", err
	}
	if total != sp.Total() || bus != sp.BusWidth() {
		return false, "", fmt.Errorf("pattern space (%d,%d) does not match SOC %s (%d,%d)",
			total, bus, s.Name, sp.Total(), sp.BusWidth())
	}

	var tracer *obs.Tracer
	gopts := core.GroupingOptions{Parts: parts, Seed: seed, CompactWorkers: workers}
	if stats {
		tracer = obs.NewTracer()
		gopts.Trace = tracer
	}
	gr, err := core.BuildGroupsCtx(ctx, s, patterns, gopts)
	if err != nil {
		return false, "", err
	}
	if stats {
		// Fold the trace's phase spans into a metrics snapshot, using
		// the same phase_ns_* naming as the optimizer's registry.
		reg := obs.NewRegistry()
		for _, ev := range tracer.Events() {
			if ev.Type == obs.PhaseEnd {
				reg.Histogram("phase_ns_" + strings.ReplaceAll(ev.Phase, " ", "_")).Observe(ev.DurNS)
			}
		}
		fmt.Fprint(os.Stderr, "run metrics:\n"+reg.Snapshot().Format())
	}
	fmt.Printf("%s: %d patterns -> %d compacted (%.2fx) in %d groups, %d residual\n",
		s.Name, gr.Stats.Original, gr.TotalCompacted(), gr.Stats.Ratio(),
		len(gr.Groups), gr.CutPatterns)
	for _, g := range gr.Groups {
		length := 0
		for _, id := range g.Cores {
			length += s.CoreByID(id).WOC()
		}
		fmt.Printf("  %-4s: %6d patterns, %2d cores, pattern length %d WOCs\n",
			g.Name, g.Patterns, len(g.Cores), length)
	}

	if out != "" {
		var all []*sifault.Pattern
		for _, ps := range gr.GroupPatterns {
			all = append(all, ps...)
		}
		f, err := os.Create(out)
		if err != nil {
			return false, "", err
		}
		defer f.Close()
		if err := sifault.WritePatterns(f, sp, all); err != nil {
			return false, "", err
		}
		log.Printf("wrote %d compacted patterns to %s", len(all), out)
	}
	return gr.Partial, gr.Reason, nil
}

func loadSOC(file, name string) (*soc.SOC, error) {
	if file == "" {
		return soc.LoadBenchmark(name)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return soc.Parse(f)
}
