// Command socinfo prints design-exploration data for an SOC: per-core
// wrapper test times across TAM widths, total test data volume, the
// theoretical InTest lower bound per width, and how close TR-Architect
// gets to it. It is the first stop when sizing a TAM budget.
//
//	socinfo -soc p34392
//	socinfo -file mydesign.soc -w 8,16,32
//
// With -timeout, or on SIGINT/SIGTERM, the bound table stops at the
// widths computed so far with a "RESULT PARTIAL" marker and exit code
// 3. Exit codes: 0 success, 1 error, 3 partial result.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sitam/cmd/internal/cli"
	"sitam/internal/core"
	"sitam/internal/obs"
	"sitam/internal/soc"
	"sitam/internal/trarchitect"
	"sitam/internal/wrapper"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("socinfo: ")
	var (
		socName = flag.String("soc", "p34392", "embedded benchmark SOC name")
		file    = flag.String("file", "", ".soc file to load instead of a benchmark")
		widths  = flag.String("w", "1,8,16,32,64", "comma-separated TAM widths to tabulate")
		stats   = flag.Bool("stats", false, "print the accumulated optimizer metrics (phase timings, pool counters) to stderr")
		timeout = flag.Duration("timeout", 0, "deadline; on expiry the rows computed so far are printed and the exit code is 3 (0 = none)")
	)
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	s, err := loadSOC(*file, *socName)
	if err != nil {
		log.Fatal(err)
	}
	ws, err := parseWidths(*widths)
	if err != nil {
		log.Fatal(err)
	}

	// The partial paths exit through os.Exit, which skips deferred
	// calls, so they flush the metrics snapshot themselves.
	var metrics *obs.Registry
	printStats := func() {
		if metrics != nil {
			fmt.Fprint(os.Stderr, "run metrics:\n"+metrics.Snapshot().Format())
		}
	}
	if *stats {
		metrics = obs.NewRegistry()
	}
	defer printStats()

	fmt.Println(s.Summary())
	fmt.Println()

	// Per-core wrapper test times.
	fmt.Printf("%-6s %-10s %6s %6s %6s %9s", "core", "name", "in", "out", "scan", "patterns")
	for _, w := range ws {
		fmt.Printf(" %12s", fmt.Sprintf("T(w=%d)", w))
	}
	fmt.Println()
	for _, c := range s.Cores() {
		name := c.Name
		if name == "" {
			name = "-"
		}
		fmt.Printf("%-6d %-10s %6d %6d %6d %9d", c.ID, name, c.WIC(), c.WOC(), c.ScanBits(), c.Patterns)
		for _, w := range ws {
			t, err := wrapper.InTestTime(c, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12d", t)
		}
		fmt.Println()
	}

	// SOC-level bounds and achieved times.
	fmt.Printf("\n%-8s %14s %14s %9s\n", "Wmax", "lower bound", "TR-Architect", "gap")
	for _, w := range ws {
		if w < 1 {
			continue
		}
		if ctx.Err() != nil {
			stop()
			fmt.Printf("RESULT PARTIAL (%s): stopped before W=%d\n", cli.Cause(ctx), w)
			printStats()
			os.Exit(cli.ExitPartial)
		}
		lb, err := trarchitect.LowerBound(s, w)
		if err != nil {
			log.Fatal(err)
		}
		arch, _, st, err := trarchitect.OptimizeWithCtx(ctx, s, w,
			core.ParallelConfig{Workers: 1, CacheSize: -1, Metrics: metrics})
		if err != nil {
			if cli.IsCtxErr(err) {
				// Deadline fired before W=w produced anything usable
				// (e.g. during the lower-bound computation just above).
				stop()
				fmt.Printf("RESULT PARTIAL (%s): stopped before W=%d\n", cli.Cause(ctx), w)
				printStats()
				os.Exit(cli.ExitPartial)
			}
			log.Fatal(err)
		}
		got := arch.InTestTime()
		fmt.Printf("%-8d %14d %14d %8.1f%%\n", w, lb, got, 100*float64(got-lb)/float64(lb))
		if st.Partial {
			stop()
			fmt.Printf("RESULT PARTIAL (%s): W=%d row is the best architecture found before interruption (%s)\n",
				cli.Cause(ctx), w, st.Reason)
			printStats()
			os.Exit(cli.ExitPartial)
		}
	}
}

func parseWidths(list string) ([]int, error) {
	var ws []int
	for _, f := range strings.Split(list, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad width %q", f)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

func loadSOC(file, name string) (*soc.SOC, error) {
	if file == "" {
		return soc.LoadBenchmark(name)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return soc.Parse(f)
}
