// Command sigen generates interconnect SI test patterns for an SOC and
// writes them in the sitam pattern text format (stdout by default).
//
// Two generation modes are available:
//
//	sigen -soc p93791 -nr 10000 -seed 1            # the paper's random protocol
//	sigen -soc p93791 -model ma -fanout 2 -k 3      # deterministic, topology-driven
//
// The random mode follows Section 5 of the paper (one victim, 2-6
// aggressors, at most two outside the victim core, 50% shared-bus
// usage). The topology mode builds a random netlist and synthesizes the
// maximal-aggressor ("ma") or reduced multiple-transition ("mt") test
// set for it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sitam/internal/sifault"
	"sitam/internal/soc"
	"sitam/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sigen: ")
	var (
		socName = flag.String("soc", "p93791", "embedded benchmark SOC name")
		file    = flag.String("file", "", ".soc file to load instead of a benchmark")
		out     = flag.String("o", "", "output file (default stdout)")
		seed    = flag.Int64("seed", 1, "random seed")

		nr      = flag.Int("nr", 10000, "random mode: number of patterns")
		busProb = flag.Float64("bus", 0.5, "random mode: shared-bus usage probability")
		quiesce = flag.Float64("quiesce", 1.0, "random mode: victim-core background quiescing probability")

		model  = flag.String("model", "", "topology mode: fault model, \"ma\" or \"mt\"")
		fanout = flag.Int("fanout", 2, "topology mode: connections per core")
		width  = flag.Int("width", 32, "topology mode: bits per connection")
		k      = flag.Int("k", 3, "topology mode: coupling locality factor")
		capN   = flag.Int("cap", 0, "topology mode: cap on mt pattern count (0 = none)")
		stats  = flag.Bool("stats", false, "print pattern-set statistics to stderr")
	)
	flag.Parse()

	s, err := loadSOC(*file, *socName)
	if err != nil {
		log.Fatal(err)
	}

	var patterns []*sifault.Pattern
	switch *model {
	case "":
		patterns, err = sifault.Generate(s, sifault.GenConfig{
			N: *nr, Seed: *seed, BusProb: orNeg(*busProb), QuiesceProb: orNeg(*quiesce),
		})
	case "ma", "mt":
		var topo *topology.Topology
		topo, err = topology.Random(s, topology.RandomConfig{
			FanOut: *fanout, Width: *width, BusFraction: *busProb,
		}, *seed)
		if err != nil {
			break
		}
		if *model == "ma" {
			patterns, err = topology.MAPatterns(topo, *k)
		} else {
			patterns, err = topology.ReducedMTPatterns(topo, *k, *capN)
		}
	default:
		err = fmt.Errorf("unknown -model %q (want \"ma\" or \"mt\")", *model)
	}
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := sifault.WritePatterns(w, sifault.NewSpace(s), patterns); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d patterns for %s", len(patterns), s.Name)
	if *stats {
		fmt.Fprint(os.Stderr, sifault.Analyze(patterns).Format())
	}
}

// orNeg maps an explicit 0 flag value to the generator's "disabled"
// sentinel (-1), since the zero value selects the paper default.
func orNeg(v float64) float64 {
	if v == 0 {
		return -1
	}
	return v
}

func loadSOC(file, name string) (*soc.SOC, error) {
	if file == "" {
		return soc.LoadBenchmark(name)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return soc.Parse(f)
}
