// Command sigen generates interconnect SI test patterns for an SOC and
// writes them in the sitam pattern text format (stdout by default).
//
// Two generation modes are available:
//
//	sigen -soc p93791 -nr 10000 -seed 1            # the paper's random protocol
//	sigen -soc p93791 -model ma -fanout 2 -k 3      # deterministic, topology-driven
//
// The random mode follows Section 5 of the paper (one victim, 2-6
// aggressors, at most two outside the victim core, 50% shared-bus
// usage). The topology mode builds a random netlist and synthesizes the
// maximal-aggressor ("ma") or reduced multiple-transition ("mt") test
// set for it.
//
// With -timeout, or on SIGINT/SIGTERM, random generation stops early
// and the prefix generated so far is written: since stdout carries the
// pattern data, the "RESULT PARTIAL" marker goes to stderr and the exit
// code is 3. Exit codes: 0 success, 1 error, 3 partial result.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"time"

	"sitam/cmd/internal/cli"
	"sitam/internal/obs"
	"sitam/internal/sifault"
	"sitam/internal/soc"
	"sitam/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sigen: ")
	var (
		socName = flag.String("soc", "p93791", "embedded benchmark SOC name")
		file    = flag.String("file", "", ".soc file to load instead of a benchmark")
		out     = flag.String("o", "", "output file (default stdout)")
		seed    = flag.Int64("seed", 1, "random seed")

		nr      = flag.Int("nr", 10000, "random mode: number of patterns")
		busProb = flag.Float64("bus", 0.5, "random mode: shared-bus usage probability")
		quiesce = flag.Float64("quiesce", 1.0, "random mode: victim-core background quiescing probability")

		model   = flag.String("model", "", "topology mode: fault model, \"ma\" or \"mt\"")
		fanout  = flag.Int("fanout", 2, "topology mode: connections per core")
		width   = flag.Int("width", 32, "topology mode: bits per connection")
		k       = flag.Int("k", 3, "topology mode: coupling locality factor")
		capN    = flag.Int("cap", 0, "topology mode: cap on mt pattern count (0 = none)")
		stats   = flag.Bool("stats", false, "print pattern-set statistics and generation metrics to stderr")
		timeout = flag.Duration("timeout", 0, "deadline; on expiry the patterns generated so far are written and the exit code is 3 (0 = none)")
	)
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()

	partial, err := run(ctx, genOptions{
		socName: *socName, file: *file, out: *out, seed: *seed,
		nr: *nr, busProb: *busProb, quiesce: *quiesce,
		model: *model, fanout: *fanout, width: *width, k: *k, capN: *capN,
		stats: *stats,
	})
	stop()
	if err != nil {
		if cli.IsCtxErr(err) {
			fmt.Fprintf(os.Stderr, "sigen: RESULT PARTIAL (%s): %v\n", cli.Cause(ctx), err)
			os.Exit(cli.ExitPartial)
		}
		log.Fatal(err)
	}
	if partial {
		fmt.Fprintf(os.Stderr, "sigen: RESULT PARTIAL (%s): generation stopped early\n", cli.Cause(ctx))
		os.Exit(cli.ExitPartial)
	}
}

type genOptions struct {
	socName, file, out, model  string
	nr, fanout, width, k, capN int
	busProb, quiesce           float64
	seed                       int64
	stats                      bool
}

func run(ctx context.Context, o genOptions) (partial bool, err error) {
	s, err := loadSOC(o.file, o.socName)
	if err != nil {
		return false, err
	}

	genStart := time.Now()
	var patterns []*sifault.Pattern
	switch o.model {
	case "":
		patterns, partial, err = sifault.GenerateCtx(ctx, s, sifault.GenConfig{
			N: o.nr, Seed: o.seed, BusProb: orNeg(o.busProb), QuiesceProb: orNeg(o.quiesce),
		})
	case "ma", "mt":
		var topo *topology.Topology
		topo, err = topology.Random(s, topology.RandomConfig{
			FanOut: o.fanout, Width: o.width, BusFraction: o.busProb,
		}, o.seed)
		if err != nil {
			break
		}
		if o.model == "ma" {
			patterns, err = topology.MAPatterns(topo, o.k)
		} else {
			patterns, err = topology.ReducedMTPatterns(topo, o.k, o.capN)
		}
	default:
		err = fmt.Errorf("unknown -model %q (want \"ma\" or \"mt\")", o.model)
	}
	if err != nil {
		return false, err
	}
	genDur := time.Since(genStart)

	w := os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return false, err
		}
		defer f.Close()
		w = f
	}
	if err := sifault.WritePatterns(w, sifault.NewSpace(s), patterns); err != nil {
		return false, err
	}
	log.Printf("wrote %d patterns for %s", len(patterns), s.Name)
	if o.stats {
		reg := obs.NewRegistry()
		reg.Counter("patterns").Add(int64(len(patterns)))
		reg.Histogram("phase_ns_pattern_generation").Observe(int64(genDur))
		fmt.Fprint(os.Stderr, "run metrics:\n"+reg.Snapshot().Format())
		fmt.Fprint(os.Stderr, sifault.Analyze(patterns).Format())
	}
	return partial, nil
}

// orNeg maps an explicit 0 flag value to the generator's "disabled"
// sentinel (-1), since the zero value selects the paper default.
func orNeg(v float64) float64 {
	if v == 0 {
		return -1
	}
	return v
}

func loadSOC(file, name string) (*soc.SOC, error) {
	if file == "" {
		return soc.LoadBenchmark(name)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return soc.Parse(f)
}
