// Command sitamd is the sitam optimization daemon: an HTTP/JSON
// service that runs SI-aware TAM optimization jobs under admission
// control and streams their convergence traces.
//
// Usage:
//
//	sitamd -addr 127.0.0.1:8037 [-workers 4] [-queue 64] [-journal jobs.jsonl]
//	       [-max-timeout 2m] [-default-timeout 30s] [-budget-cap 0] [-drain 10s]
//
// Endpoints (see the README "Serving" section for the full contract):
//
//	POST   /v1/jobs             submit a job -> 202 {id}; 503 + Retry-After when saturated
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status and terminal result
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/events SSE stream of the search trace (heartbeats; disconnect cancels)
//	GET    /v1/jobs/{id}/trace  flight-recorder replay of a finished job's trace (JSONL)
//	GET    /metrics             metrics snapshot: JSON, or Prometheus text under Accept: text/plain
//	GET    /healthz             liveness and drain state
//
// Robustness: the queue is bounded and overload is shed with 503;
// client deadlines and eval budgets are clamped server-side; a job
// that panics becomes a structured job failure, not a daemon crash;
// with -journal, admissions and results are fsynced to an append-only
// journal and replayed on restart, so completed and partial results
// survive a crash. On SIGINT/SIGTERM the daemon stops admitting,
// lets in-flight jobs finish (partial-izing whatever is still running
// when -drain expires), flushes a final metrics snapshot and exits 0.
// A second signal while draining forces an immediate exit with code
// 130.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"sitam/cmd/internal/cli"
	"sitam/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sitamd: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:8037", "listen address (host:port; port 0 picks a free port)")
		workers     = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth; submits beyond it are shed with 503")
		jobWorkers  = flag.Int("job-workers", 1, "max candidate-evaluation workers one job may claim")
		defTimeout  = flag.Duration("default-timeout", serve.DefaultJobDeadline, "per-job deadline when the request has none")
		maxTimeout  = flag.Duration("max-timeout", serve.DefaultMaxDeadline, "clamp on client-supplied per-job deadlines")
		budgetCap   = flag.Int64("budget-cap", 0, "clamp on client-supplied eval budgets (0 = unlimited)")
		journal     = flag.String("journal", "", "append-only job journal path; replayed on restart (empty = no durability)")
		cacheFile   = flag.String("cache-file", "", "persistent evaluation-cache file shared by all jobs and reloaded on restart (empty = memory-only caching)")
		traceJobs   = flag.Int("trace-jobs", serve.DefaultRecorderJobs, "finished jobs whose traces the flight recorder retains")
		traceEvents = flag.Int("trace-events", serve.DefaultRecorderEvents, "events kept per retained trace (head/tail sampled beyond)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-drain grace period: in-flight jobs beyond it are partial-ized")
		heartbeat   = flag.Duration("heartbeat", 10*time.Second, "SSE heartbeat interval")
		retryAfter  = flag.Duration("retry-after", time.Second, "backoff advertised on 503 responses")
		testHooks   = flag.Bool("test-hooks", false, "honor chaos fault-injection fields in requests (tests only)")
	)
	flag.Parse()
	if err := run(*addr, serve.ServerConfig{
		Config: serve.Config{
			Workers:         *workers,
			QueueDepth:      *queue,
			MaxJobWorkers:   *jobWorkers,
			DefaultDeadline: *defTimeout,
			MaxDeadline:     *maxTimeout,
			MaxEvals:        *budgetCap,
			RetryAfter:      *retryAfter,
			TestHooks:       *testHooks,
			JournalPath:     *journal,
			CachePath:       *cacheFile,
			RecorderJobs:    *traceJobs,
			RecorderEvents:  *traceEvents,
			Logf:            log.Printf,
		},
		Heartbeat: *heartbeat,
	}, *drain); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, cfg serve.ServerConfig, drainGrace time.Duration) error {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	log.Printf("listening on http://%s", ln.Addr())

	// First SIGINT/SIGTERM cancels ctx and starts the graceful drain;
	// a second one forces os.Exit(130) via the cli signal watcher.
	ctx, stop := cli.Context(0)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	log.Printf("draining: admission closed, waiting up to %v for in-flight jobs", drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainGrace)
	srv.Scheduler().Drain(drainCtx)
	cancel()

	// The scheduler is down; give lingering connections (status polls,
	// SSE streams now at their terminal event) a moment to finish.
	shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	err = httpSrv.Shutdown(shutCtx)
	cancel()
	if err != nil {
		httpSrv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http server: %v", err)
	}

	snap := srv.Scheduler().Metrics().Snapshot()
	log.Printf("final metrics snapshot:\n%s", snap.Format())
	log.Printf("drained cleanly")
	// Belt and braces: main returning nil exits 0, but be explicit that
	// a clean drain is a success exit for process supervisors.
	os.Exit(cli.ExitOK)
	return nil
}
