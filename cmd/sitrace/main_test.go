package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sitam/internal/obs"
)

func buildSitrace(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "sitrace")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func writeTrace(t *testing.T, events []obs.Event) string {
	t.Helper()
	for i := range events {
		events[i].Seq = uint64(i)
	}
	name := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.WriteJSONL(f, events); err != nil {
		t.Fatal(err)
	}
	return name
}

// TestCheckUnbalancedSpanFails drives `sitrace -check` against a trace
// whose schema is valid but whose greedy phase span is never closed:
// validation must fail.
func TestCheckUnbalancedSpanFails(t *testing.T) {
	bin := buildSitrace(t)
	trace := writeTrace(t, []obs.Event{
		{Type: obs.PhaseStart, Phase: "greedy"},
		{Type: obs.CandidateEvaluated, Phase: "greedy", Best: 10},
	})
	out, err := exec.Command(bin, "-check", trace).CombinedOutput()
	if err == nil {
		t.Fatalf("-check accepted a trace with an unclosed span:\n%s", out)
	}
	if !strings.Contains(string(out), "unbalanced phase spans") {
		t.Fatalf("unexpected failure output: %s", out)
	}

	// The summary mode must stay usable on the same (truncated) trace.
	if out, err := exec.Command(bin, trace).CombinedOutput(); err != nil {
		t.Fatalf("summary rejected a truncated trace: %v\n%s", err, out)
	}
}

// TestCheckPowerOverBudgetFails drives `sitrace -check` against a
// trace whose two overlapping si_group_scheduled events sum past their
// shared budget: per-event schema validation passes (each group alone
// fits), but the cross-event power sweep must fail.
func TestCheckPowerOverBudgetFails(t *testing.T) {
	bin := buildSitrace(t)
	trace := writeTrace(t, []obs.Event{
		{Type: obs.SIGroupScheduled, Group: "SI1", Rails: 1, Begin: 0, End: 100, Power: 60, Budget: 100},
		{Type: obs.SIGroupScheduled, Group: "SI2", Rails: 1, Begin: 50, End: 150, Power: 60, Budget: 100},
	})
	out, err := exec.Command(bin, "-check", trace).CombinedOutput()
	if err == nil {
		t.Fatalf("-check accepted a trace exceeding its power budget:\n%s", out)
	}
	if !strings.Contains(string(out), "exceeds budget") {
		t.Fatalf("unexpected failure output: %s", out)
	}

	// Disjoint in time: same groups, no overlap, must pass.
	trace = writeTrace(t, []obs.Event{
		{Type: obs.SIGroupScheduled, Group: "SI1", Rails: 1, Begin: 0, End: 100, Power: 60, Budget: 100},
		{Type: obs.SIGroupScheduled, Group: "SI2", Rails: 1, Begin: 100, End: 200, Power: 60, Budget: 100},
	})
	if out, err := exec.Command(bin, "-check", trace).CombinedOutput(); err != nil {
		t.Fatalf("-check rejected a budget-respecting trace: %v\n%s", err, out)
	}
}

// TestCheckUnbalancedJobSpansFails drives `sitrace -check` against a
// trace where the spans balance globally but cross job-correlation
// IDs: job a opens "greedy" and job b closes it. Global span balance
// passes; the per-job check must fail.
func TestCheckUnbalancedJobSpansFails(t *testing.T) {
	bin := buildSitrace(t)
	trace := writeTrace(t, []obs.Event{
		{Type: obs.PhaseStart, Phase: "greedy", Job: "a"},
		{Type: obs.PhaseEnd, Phase: "greedy", Job: "b"},
	})
	out, err := exec.Command(bin, "-check", trace).CombinedOutput()
	if err == nil {
		t.Fatalf("-check accepted spans crossing job IDs:\n%s", out)
	}
	if !strings.Contains(string(out), `job "a"`) {
		t.Fatalf("failure should name the offending job: %s", out)
	}
}

// TestDiffTraces drives `sitrace -diff` over two traces that differ
// in phase time, phase set and final objective; the comparison must
// surface all three.
func TestDiffTraces(t *testing.T) {
	bin := buildSitrace(t)
	a := writeTrace(t, []obs.Event{
		{Type: obs.PhaseStart, Phase: "greedy"},
		{Type: obs.CandidateEvaluated, Phase: "greedy", Best: 20},
		{Type: obs.CandidateEvaluated, Phase: "greedy", Best: 10},
		{Type: obs.PhaseEnd, Phase: "greedy", DurNS: 4e6, N: 2, Best: 10},
	})
	b := writeTrace(t, []obs.Event{
		{Type: obs.PhaseStart, Phase: "greedy"},
		{Type: obs.CandidateEvaluated, Phase: "greedy", Best: 12},
		{Type: obs.PhaseEnd, Phase: "greedy", DurNS: 8e6, N: 1, Best: 12},
		{Type: obs.PhaseStart, Phase: "merge"},
		{Type: obs.PhaseEnd, Phase: "merge", DurNS: 1e6, Best: 12},
	})
	out, err := exec.Command(bin, "-diff", a, b).CombinedOutput()
	if err != nil {
		t.Fatalf("-diff failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"greedy", "+100.0%", // phase wall doubled
		"B only", "merge", // phase present only in B
		"final best:   A=10 B=12",
		"verdict: A converged lower",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}

	// Wrong arity is a usage error.
	if _, err := exec.Command(bin, "-diff", a).CombinedOutput(); err == nil {
		t.Error("-diff accepted a single argument")
	}
}

// TestCheckBalancedTracePasses is the matching positive case.
func TestCheckBalancedTracePasses(t *testing.T) {
	bin := buildSitrace(t)
	trace := writeTrace(t, []obs.Event{
		{Type: obs.PhaseStart, Phase: "greedy"},
		{Type: obs.CandidateEvaluated, Phase: "greedy", Best: 10},
		{Type: obs.PhaseEnd, Phase: "greedy", Best: 10},
	})
	out, err := exec.Command(bin, "-check", trace).CombinedOutput()
	if err != nil {
		t.Fatalf("-check rejected a balanced trace: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "trace OK") {
		t.Fatalf("unexpected output: %s", out)
	}
}
