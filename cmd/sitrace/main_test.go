package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sitam/internal/obs"
)

func buildSitrace(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "sitrace")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func writeTrace(t *testing.T, events []obs.Event) string {
	t.Helper()
	for i := range events {
		events[i].Seq = uint64(i)
	}
	name := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.WriteJSONL(f, events); err != nil {
		t.Fatal(err)
	}
	return name
}

// TestCheckUnbalancedSpanFails drives `sitrace -check` against a trace
// whose schema is valid but whose greedy phase span is never closed:
// validation must fail.
func TestCheckUnbalancedSpanFails(t *testing.T) {
	bin := buildSitrace(t)
	trace := writeTrace(t, []obs.Event{
		{Type: obs.PhaseStart, Phase: "greedy"},
		{Type: obs.CandidateEvaluated, Phase: "greedy", Best: 10},
	})
	out, err := exec.Command(bin, "-check", trace).CombinedOutput()
	if err == nil {
		t.Fatalf("-check accepted a trace with an unclosed span:\n%s", out)
	}
	if !strings.Contains(string(out), "unbalanced phase spans") {
		t.Fatalf("unexpected failure output: %s", out)
	}

	// The summary mode must stay usable on the same (truncated) trace.
	if out, err := exec.Command(bin, trace).CombinedOutput(); err != nil {
		t.Fatalf("summary rejected a truncated trace: %v\n%s", err, out)
	}
}

// TestCheckPowerOverBudgetFails drives `sitrace -check` against a
// trace whose two overlapping si_group_scheduled events sum past their
// shared budget: per-event schema validation passes (each group alone
// fits), but the cross-event power sweep must fail.
func TestCheckPowerOverBudgetFails(t *testing.T) {
	bin := buildSitrace(t)
	trace := writeTrace(t, []obs.Event{
		{Type: obs.SIGroupScheduled, Group: "SI1", Rails: 1, Begin: 0, End: 100, Power: 60, Budget: 100},
		{Type: obs.SIGroupScheduled, Group: "SI2", Rails: 1, Begin: 50, End: 150, Power: 60, Budget: 100},
	})
	out, err := exec.Command(bin, "-check", trace).CombinedOutput()
	if err == nil {
		t.Fatalf("-check accepted a trace exceeding its power budget:\n%s", out)
	}
	if !strings.Contains(string(out), "exceeds budget") {
		t.Fatalf("unexpected failure output: %s", out)
	}

	// Disjoint in time: same groups, no overlap, must pass.
	trace = writeTrace(t, []obs.Event{
		{Type: obs.SIGroupScheduled, Group: "SI1", Rails: 1, Begin: 0, End: 100, Power: 60, Budget: 100},
		{Type: obs.SIGroupScheduled, Group: "SI2", Rails: 1, Begin: 100, End: 200, Power: 60, Budget: 100},
	})
	if out, err := exec.Command(bin, "-check", trace).CombinedOutput(); err != nil {
		t.Fatalf("-check rejected a budget-respecting trace: %v\n%s", err, out)
	}
}

// TestCheckBalancedTracePasses is the matching positive case.
func TestCheckBalancedTracePasses(t *testing.T) {
	bin := buildSitrace(t)
	trace := writeTrace(t, []obs.Event{
		{Type: obs.PhaseStart, Phase: "greedy"},
		{Type: obs.CandidateEvaluated, Phase: "greedy", Best: 10},
		{Type: obs.PhaseEnd, Phase: "greedy", Best: 10},
	})
	out, err := exec.Command(bin, "-check", trace).CombinedOutput()
	if err != nil {
		t.Fatalf("-check rejected a balanced trace: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "trace OK") {
		t.Fatalf("unexpected output: %s", out)
	}
}
