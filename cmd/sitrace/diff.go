package main

// Trace differencing: `sitrace -diff a.jsonl b.jsonl` lines up two
// runs' phase-time breakdowns and convergence curves so a regression
// hunt can say *where* a run got slower (which phase) and *whether* it
// got worse (final objective, evals to reach it) without eyeballing
// two summaries side by side. The flight-recorder replay endpoint of
// sitamd produces byte-stable traces, so diffing two daemon jobs of
// the same request isolates nondeterminism and perf drift.

import (
	"fmt"
	"io"

	"sitam/internal/obs"
)

// diffTraces writes a phase and convergence comparison of traces a
// and b. Output is deterministic: phases appear in first-appearance
// order of trace a, then phases only b has.
func diffTraces(w io.Writer, nameA string, a []obs.Event, nameB string, b []obs.Event) {
	fmt.Fprintf(w, "diff: A=%s (%d events)  B=%s (%d events)\n", nameA, len(a), nameB, len(b))

	pa, pb := obs.AggregatePhases(a), obs.AggregatePhases(b)
	indexB := make(map[string]obs.PhaseAgg, len(pb))
	for _, p := range pb {
		indexB[p.Phase] = p
	}
	if len(pa) > 0 || len(pb) > 0 {
		fmt.Fprintf(w, "phases:\n  %-24s %12s %12s %8s %11s %13s\n",
			"phase", "A wall(ms)", "B wall(ms)", "delta", "spans A/B", "n A/B")
	}
	seen := make(map[string]bool, len(pa))
	for _, p := range pa {
		seen[p.Phase] = true
		q, ok := indexB[p.Phase]
		if !ok {
			fmt.Fprintf(w, "  %-24s %12.1f %12s %8s %11s %13s\n",
				p.Phase, float64(p.WallNS)/1e6, "-", "A only",
				fmt.Sprintf("%d/-", p.Spans), fmt.Sprintf("%d/-", p.N))
			continue
		}
		fmt.Fprintf(w, "  %-24s %12.1f %12.1f %8s %11s %13s\n",
			p.Phase, float64(p.WallNS)/1e6, float64(q.WallNS)/1e6,
			deltaPct(p.WallNS, q.WallNS),
			fmt.Sprintf("%d/%d", p.Spans, q.Spans),
			fmt.Sprintf("%d/%d", p.N, q.N))
	}
	for _, q := range pb {
		if seen[q.Phase] {
			continue
		}
		fmt.Fprintf(w, "  %-24s %12s %12.1f %8s %11s %13s\n",
			q.Phase, "-", float64(q.WallNS)/1e6, "B only",
			fmt.Sprintf("-/%d", q.Spans), fmt.Sprintf("-/%d", q.N))
	}

	ca, cb := obs.Curve(a), obs.Curve(b)
	fmt.Fprintf(w, "convergence:\n")
	fmt.Fprintf(w, "  improvements: A=%d B=%d\n", len(ca), len(cb))
	if len(ca) == 0 || len(cb) == 0 {
		// One side carries no objective (e.g. a validation-only trace);
		// the phase table above is the whole comparison.
		return
	}
	fa, fb := ca[len(ca)-1], cb[len(cb)-1]
	fmt.Fprintf(w, "  final best:   A=%d B=%d (%s)\n", fa.Best, fb.Best, deltaPct(fa.Best, fb.Best))
	fmt.Fprintf(w, "  total evals:  A=%d B=%d\n", fa.Evals, fb.Evals)
	fmt.Fprintf(w, "  evals to B's final best: A=%d B=%d\n", evalsToReach(ca, fb.Best), fb.Evals)
	switch {
	case fa.Best < fb.Best:
		fmt.Fprintf(w, "  verdict: A converged lower\n")
	case fb.Best < fa.Best:
		fmt.Fprintf(w, "  verdict: B converged lower\n")
	default:
		fmt.Fprintf(w, "  verdict: equal final objective\n")
	}
}

// evalsToReach returns the cumulative evaluations at which curve c
// first meets or beats target, or the curve's total evals + a marker
// -1 sentinel when it never does.
func evalsToReach(c []obs.CurvePoint, target int64) int64 {
	for _, p := range c {
		if p.Best <= target {
			return p.Evals
		}
	}
	return -1
}

// deltaPct renders the B-vs-A relative change of a pair of values.
func deltaPct(a, b int64) string {
	if a == 0 {
		if b == 0 {
			return "0.0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(b-a)/float64(a))
}
