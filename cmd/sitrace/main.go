// Command sitrace summarizes a structured search trace written by
// tamopt -trace: per-phase wall-clock and counts, merge acceptance
// rates, cache hit rate, ILS kicks, interruptions, and the convergence
// curve of the best objective versus candidate evaluations.
//
//	tamopt -soc d695 -w 16 -trace run.jsonl
//	sitrace run.jsonl              # summary
//	sitrace -check run.jsonl       # schema, span-balance, per-job-span and power-budget validation
//	sitrace -curve run.jsonl       # convergence curve as CSV on stdout
//	sitrace -diff a.jsonl b.jsonl  # phase-time and convergence comparison of two runs
//
// The input is read from the file argument, or stdin when the argument
// is "-" or absent (-diff takes exactly two file arguments). Every
// line is validated against the event schema before any reporting; an
// invalid trace exits with code 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"sitam/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sitrace: ")
	var (
		check = flag.Bool("check", false, "validate the trace against the event schema and exit")
		curve = flag.Bool("curve", false, "print the convergence curve as \"seq,evals,best\" CSV instead of the summary")
		diff  = flag.Bool("diff", false, "compare two traces' phase times and convergence (takes two file arguments)")
	)
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			log.Fatal("usage: sitrace -diff a.jsonl b.jsonl")
		}
		var traces [2][]obs.Event
		for i := 0; i < 2; i++ {
			events, err := read(flag.Arg(i))
			if err != nil {
				log.Fatal(err)
			}
			if err := obs.ValidateTrace(events); err != nil {
				log.Fatalf("%s: %v", flag.Arg(i), err)
			}
			traces[i] = events
		}
		diffTraces(os.Stdout, flag.Arg(0), traces[0], flag.Arg(1), traces[1])
		return
	}
	if flag.NArg() > 1 {
		log.Fatal("usage: sitrace [-check|-curve|-diff] [trace.jsonl]")
	}

	events, err := read(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.ValidateTrace(events); err != nil {
		log.Fatal(err)
	}
	switch {
	case *check:
		// Only -check enforces span balance: the summary stays usable
		// on traces truncated by a killed process.
		if err := obs.ValidateSpans(events); err != nil {
			log.Fatal(err)
		}
		// Daemon traces stamp every event with a job-correlation ID;
		// spans must balance within each job, not just globally — two
		// interleaved jobs can hide each other's unclosed spans.
		if err := obs.ValidateJobSpans(events); err != nil {
			log.Fatal(err)
		}
		// Power-annotated schedules must stay within their budget at
		// every instant; the check reconstructs the concurrency from the
		// si_group_scheduled events alone.
		if err := obs.ValidateSchedulePower(events); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace OK: %d events\n", len(events))
	case *curve:
		fmt.Println("seq,evals,best")
		for _, p := range obs.Curve(events) {
			fmt.Printf("%d,%d,%d\n", p.Seq, p.Evals, p.Best)
		}
	default:
		summarize(os.Stdout, events)
	}
}

func read(name string) ([]obs.Event, error) {
	var r io.Reader = os.Stdin
	if name != "" && name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return obs.ReadJSONL(r)
}

func summarize(w io.Writer, events []obs.Event) {
	fmt.Fprintf(w, "trace: %d events\n", len(events))

	if phases := obs.AggregatePhases(events); len(phases) > 0 {
		fmt.Fprintf(w, "phases:\n  %-24s %6s %12s %12s\n", "phase", "spans", "wall(ms)", "n")
		for _, pa := range phases {
			fmt.Fprintf(w, "  %-24s %6d %12.1f %12d\n",
				pa.Phase, pa.Spans, float64(pa.WallNS)/1e6, pa.N)
		}
	}

	var accepted, rejected, candidates int
	var hits, misses int64
	var kicks int
	var kickBest int64
	for i := range events {
		switch ev := &events[i]; ev.Type {
		case obs.MergeAccepted:
			accepted++
		case obs.MergeRejected:
			rejected++
		case obs.CandidateEvaluated:
			candidates++
		case obs.CacheHit:
			hits++
		case obs.CacheMiss:
			misses++
		case obs.ILSKick:
			kicks++
			kickBest = ev.Best
		}
	}
	fmt.Fprintf(w, "candidates evaluated: %d\n", candidates)
	if accepted+rejected > 0 {
		fmt.Fprintf(w, "merge batches: %d accepted, %d rejected (%.1f%% accepted)\n",
			accepted, rejected, 100*float64(accepted)/float64(accepted+rejected))
	}
	if hits+misses > 0 {
		fmt.Fprintf(w, "cache: %d hits, %d misses (%.1f%% hit rate)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
	if kicks > 0 {
		fmt.Fprintf(w, "ILS: %d kicks, best %d\n", kicks, kickBest)
	}
	for i := range events {
		if ev := &events[i]; ev.Type == obs.DeadlineHit {
			fmt.Fprintf(w, "interrupted: %s during %s", ev.Cause, ev.Phase)
			if ev.Kick > 0 {
				fmt.Fprintf(w, " (kick %d)", ev.Kick)
			}
			fmt.Fprintln(w)
		}
	}

	if curve := obs.Curve(events); len(curve) > 0 {
		fmt.Fprintf(w, "convergence: %d improvements over %d evaluations\n",
			len(curve), curve[len(curve)-1].Evals)
		fmt.Fprintf(w, "final best objective: %d\n", curve[len(curve)-1].Best)
	}
}
