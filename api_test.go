package sitam

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the whole public API the way the package
// documentation advertises.
func TestFacadeEndToEnd(t *testing.T) {
	if got := Benchmarks(); len(got) != 3 {
		t.Fatalf("Benchmarks = %v", got)
	}
	s, err := LoadBenchmark("p34392")
	if err != nil {
		t.Fatal(err)
	}

	patterns, err := GeneratePatterns(s, GenConfig{N: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := BuildGroups(s, patterns, GroupingOptions{Parts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if groups.Stats.Original != 2000 {
		t.Errorf("Original = %d", groups.Stats.Original)
	}

	res, err := Optimize(s, 16, groups.Groups, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Architecture.Validate(); err != nil {
		t.Fatal(err)
	}
	base, err := OptimizeBaseline(s, 16, groups.Groups, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// Both optimizers are heuristics, so neither strictly dominates the
	// other on a single objective; but the baseline optimizes InTest
	// only and should stay in the same ballpark on it.
	if float64(base.Breakdown.TimeIn) > 1.15*float64(res.Breakdown.TimeIn) {
		t.Errorf("baseline InTest %d far above SI-aware %d",
			base.Breakdown.TimeIn, res.Breakdown.TimeIn)
	}

	sched, err := ScheduleSI(res.Architecture, groups.Groups, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalSI != res.Breakdown.TimeSI {
		t.Errorf("re-scheduled T_si %d != result %d", sched.TotalSI, res.Breakdown.TimeSI)
	}
}

func TestFacadeSOCRoundTrip(t *testing.T) {
	s, err := LoadBenchmark("p93791")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSOC(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSOC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumCores() != s.NumCores() {
		t.Errorf("round trip lost cores: %d vs %d", s2.NumCores(), s.NumCores())
	}
}

func TestFacadeTopologyPath(t *testing.T) {
	s, err := LoadBenchmark("p34392")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := RandomTopology(s, TopologyConfig{FanOut: 1, Width: 4, BusFraction: 0.5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := MAPatterns(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma) != 6*len(topo.Nets) {
		t.Errorf("MA patterns = %d, want %d", len(ma), 6*len(topo.Nets))
	}
	mt, err := ReducedMTPatterns(topo, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(mt) == 0 {
		t.Error("no reduced MT patterns")
	}
	groups, err := BuildGroups(s, ma, GroupingOptions{Parts: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups.Groups) == 0 {
		t.Error("topology patterns produced no groups")
	}
}

func TestFacadeInTestTime(t *testing.T) {
	s, err := LoadBenchmark("p34392")
	if err != nil {
		t.Fatal(err)
	}
	c := s.CoreByID(18)
	t1, err := InTestTime(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	t16, err := InTestTime(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	if t16 >= t1 {
		t.Errorf("width 16 (%d) not faster than width 1 (%d)", t16, t1)
	}
}

func TestFacadeExtensions(t *testing.T) {
	s, err := LoadBenchmark("d695")
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := GeneratePatterns(s, GenConfig{N: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := BuildGroups(s, patterns, GroupingOptions{Parts: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeILS(s, 12, gr.Groups, DefaultModel(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Architecture.Validate(); err != nil {
		t.Fatal(err)
	}

	plain, err := Optimize(s, 12, gr.Groups, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.TimeSOC > plain.Breakdown.TimeSOC {
		t.Errorf("ILS %d worse than plain %d", res.Breakdown.TimeSOC, plain.Breakdown.TimeSOC)
	}

	opt, err := ExactScheduleSI(res.Architecture, gr.Groups, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.TimeSI < opt {
		t.Errorf("Algorithm 1 T_si %d below exact optimum %d", res.Breakdown.TimeSI, opt)
	}

	unlimited, err := ScheduleSIPower(res.Architecture, gr.Groups, DefaultModel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.TotalSI != res.Breakdown.TimeSI {
		t.Errorf("unlimited power schedule %d != Algorithm 1 %d", unlimited.TotalSI, res.Breakdown.TimeSI)
	}

	lb, err := InTestLowerBound(s, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.TimeIn < lb {
		t.Errorf("InTest %d below lower bound %d", res.Breakdown.TimeIn, lb)
	}
}

func TestFacadeRunTable(t *testing.T) {
	s, err := LoadBenchmark("p34392")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := RunTable(s, TableConfig{Widths: []int{8}, Nr: []int{1000}, Groupings: []int{1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Cells) != 1 || tbl.Cells[0].Tmin <= 0 {
		t.Errorf("table = %+v", tbl)
	}
	if !strings.Contains(tbl.Format(), "p34392") {
		t.Error("Format missing SOC name")
	}
}
