module sitam

go 1.22
