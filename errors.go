package sitam

import (
	"errors"
	"fmt"
	"runtime"
	"strings"

	"sitam/internal/serve"
)

// ErrInternal wraps every error the facade synthesizes from a recovered
// internal panic. Library invariants are enforced with panics inside
// the internal packages; the facade converts any that escape into an
// ordinary error carrying the panic message and a stack snippet, so a
// library bug cannot crash the embedding process. Test for it with
// errors.Is(err, sitam.ErrInternal).
var ErrInternal = errors.New("sitam: internal error")

// ErrOverloaded is the admission-control sentinel of the serving
// layer (sitamd): a job submission was shed because the bounded queue
// was full or the daemon was draining. Over HTTP it surfaces as
// 503 + Retry-After; embedders driving a serve.Scheduler directly test
// for it with errors.Is(err, sitam.ErrOverloaded) and retry later
// instead of treating the shed as a hard failure.
var ErrOverloaded = serve.ErrOverloaded

// guard recovers a panic into *errp, wrapping ErrInternal. Use as
//
//	func F() (err error) {
//	    defer guard(&err)
//	    ...
//	}
//
// on every exported facade function. A nil recover leaves err alone, so
// the normal return path is untouched.
func guard(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	*errp = fmt.Errorf("%w: %v\n%s", ErrInternal, r, stackSnippet())
}

// stackSnippet returns the top frames of the panicking goroutine's
// stack, trimmed to the few entries that locate the fault without
// dumping the whole trace into the error string.
func stackSnippet() string {
	buf := make([]byte, 8192)
	n := runtime.Stack(buf, false)
	lines := strings.Split(strings.TrimSpace(string(buf[:n])), "\n")
	// Drop the frames of the recovery machinery itself (runtime.Stack,
	// stackSnippet, guard, the deferred call and the panic dispatch):
	// the first line is the goroutine header, then two lines per frame.
	const skipFrames = 4
	kept := lines[:1]
	if len(lines) > 1+2*skipFrames {
		kept = append(kept, lines[1+2*skipFrames:]...)
	}
	const maxLines = 13 // header + 6 frames
	if len(kept) > maxLines {
		kept = kept[:maxLines]
	}
	return strings.Join(kept, "\n")
}
