package sitam

// End-to-end tests of the fleet-telemetry path: sitamd's negotiated
// Prometheus exposition, the flight-recorder trace replay, and the
// sitrace -diff comparison of two daemon-produced traces.

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sitam/internal/obs"
)

func httpGet(t *testing.T, url, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestE2ESitamdTelemetry drives the daemon through two jobs and then
// walks the whole telemetry surface: a Prometheus scrape that the
// strict format validator accepts, byte-stable trace replays, a
// sitrace -check pass on a daemon trace (job spans balance), and a
// nonempty sitrace -diff between the two runs.
func TestE2ESitamdTelemetry(t *testing.T) {
	cmd, _, base := startSitamd(t)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	id1 := submitJob(t, base, `{"soc":"d695","wmax":12,"nr":200,"groups":2,"seed":1}`)
	waitJobState(t, base, id1, "done")
	id2 := submitJob(t, base, `{"soc":"d695","wmax":16,"nr":400,"groups":2,"seed":7}`)
	waitJobState(t, base, id2, "done")

	// A Prometheus scrape parses cleanly and carries the job counters.
	resp, prom := httpGet(t, base+"/metrics", "text/plain")
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("scrape Content-Type = %q", ct)
	}
	if err := obs.ValidatePrometheus(bytes.NewReader(prom)); err != nil {
		t.Errorf("daemon exposition invalid: %v\n%s", err, prom)
	}
	if !bytes.Contains(prom, []byte(`sitam_jobs_total{state="done"} 2`)) {
		t.Errorf("exposition missing done-jobs counter:\n%s", prom)
	}
	// The JSON default is untouched.
	resp, jsonBody := httpGet(t, base+"/metrics", "")
	if resp.Header.Get("Content-Type") != "application/json" || !bytes.Contains(jsonBody, []byte(`"serve_done"`)) {
		t.Errorf("JSON metrics changed shape:\n%s", jsonBody)
	}

	// Trace replays are byte-stable and land on disk for sitrace.
	dir := t.TempDir()
	var traceFiles []string
	for _, id := range []string{id1, id2} {
		_, first := httpGet(t, base+"/v1/jobs/"+id+"/trace", "")
		_, second := httpGet(t, base+"/v1/jobs/"+id+"/trace", "")
		if !bytes.Equal(first, second) {
			t.Fatalf("trace replay of %s not byte-stable", id)
		}
		name := filepath.Join(dir, id+".jsonl")
		if err := os.WriteFile(name, first, 0o644); err != nil {
			t.Fatal(err)
		}
		traceFiles = append(traceFiles, name)
	}

	// A daemon trace passes the strict check: schema, global spans,
	// per-job spans, power budget.
	if out := runTool(t, "sitrace", "-check", traceFiles[0]); !strings.Contains(out, "trace OK") {
		t.Errorf("sitrace -check on daemon trace:\n%s", out)
	}

	// And the two runs diff into a nonempty phase/convergence report.
	out, err := exec.Command(filepath.Join(binaries(t), "sitrace"),
		"-diff", traceFiles[0], traceFiles[1]).CombinedOutput()
	if err != nil {
		t.Fatalf("sitrace -diff: %v\n%s", err, out)
	}
	for _, want := range []string{"diff:", "phases:", "si schedule", "convergence:", "final best:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("sitrace -diff output missing %q:\n%s", want, out)
		}
	}
}
