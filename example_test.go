package sitam_test

import (
	"fmt"
	"log"

	"sitam"
)

// demoSOC builds a small deterministic SOC for the examples.
func demoSOC() *sitam.SOC {
	s := &sitam.SOC{Name: "demo", BusWidth: 8}
	for id := 1; id <= 4; id++ {
		s.CoreList = append(s.CoreList, &sitam.Core{
			ID:         id,
			Inputs:     4,
			Outputs:    8,
			ScanChains: []int{20, 20},
			Patterns:   50,
		})
	}
	return s
}

// ExampleOptimize runs the full pipeline — pattern generation,
// two-dimensional compaction, SI-aware TAM optimization — on a small
// SOC and prints the resulting architecture size and time breakdown.
func ExampleOptimize() {
	s := demoSOC()
	patterns, err := sitam.GeneratePatterns(s, sitam.GenConfig{N: 500, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	groups, err := sitam.BuildGroups(s, patterns, sitam.GroupingOptions{Parts: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sitam.Optimize(s, 4, groups.Groups, sitam.DefaultModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("total width:", res.Architecture.TotalWidth())
	fmt.Println("T_soc equals T_in+T_si:", res.Breakdown.TimeSOC == res.Breakdown.TimeIn+res.Breakdown.TimeSI)
	// Output:
	// total width: 4
	// T_soc equals T_in+T_si: true
}

// ExampleInTestTime shows the wrapper test-time formula at two widths:
// more TAM wires shorten the wrapper scan chains.
func ExampleInTestTime() {
	c := &sitam.Core{ID: 1, Inputs: 4, Outputs: 4, ScanChains: []int{30, 30}, Patterns: 10}
	t1, _ := sitam.InTestTime(c, 1)
	t2, _ := sitam.InTestTime(c, 2)
	fmt.Println(t1, t2)
	// w=1: one 64-cell chain -> (1+64)*10+64 = 714.
	// w=2: two 32-cell chains -> (1+32)*10+32 = 362.
	// Output: 714 362
}

// ExampleMAPatterns synthesizes the maximal-aggressor test set for a
// small topology: exactly six vector pairs per interconnect.
func ExampleMAPatterns() {
	s := demoSOC()
	topo, err := sitam.RandomTopology(s, sitam.TopologyConfig{FanOut: 1, Width: 4}, 1)
	if err != nil {
		log.Fatal(err)
	}
	patterns, err := sitam.MAPatterns(topo, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(topo.Nets), "nets ->", len(patterns), "patterns")
	// Output: 16 nets -> 96 patterns
}
