// Package soc defines the data model for core-based system-on-chip (SOC)
// designs used throughout the library, together with a parser and writer
// for an ITC'02-style ".soc" benchmark description format and embedded,
// reconstructed versions of the two benchmark SOCs evaluated in the paper
// (p34392 and p93791).
//
// The model follows the ITC'02 SOC Test Benchmarks convention: an SOC is a
// list of modules (embedded cores); every module carries its terminal
// counts (inputs, outputs, bidirectionals), its internal scan-chain
// lengths, and the number of test patterns for its internal logic. Module
// 0 conventionally describes the SOC top level and carries no internal
// test; it is parsed but excluded from Cores().
package soc

import (
	"fmt"
	"sort"
	"strings"
)

// Core describes one wrapped embedded core (an ITC'02 "module").
type Core struct {
	// ID is the module number from the benchmark file. IDs are unique
	// within an SOC but need not be contiguous.
	ID int

	// Name is an optional human-readable label.
	Name string

	// Inputs, Outputs and Bidirs are the counts of functional input,
	// output and bidirectional terminals of the core.
	Inputs  int
	Outputs int
	Bidirs  int

	// ScanChains holds the length (in flip-flops) of every internal scan
	// chain of the core. A purely combinational core has none.
	ScanChains []int

	// Patterns is the number of test patterns for the core-internal
	// logic. When the core carries multiple test sets (the ITC'02
	// TotalTests/Test blocks), Patterns is their sum and Tests holds
	// the breakdown.
	Patterns int

	// Tests optionally details the individual test sets of the core.
	Tests []CoreTest
}

// CoreTest is one test set of a core, as described by an ITC'02 "Test"
// block.
type CoreTest struct {
	// Patterns is this test set's pattern count.
	Patterns int

	// ScanUse reports whether the test uses the core's scan chains.
	ScanUse bool

	// TamUse reports whether the test is delivered over the TAM.
	TamUse bool
}

// ScanBits returns the total number of scan flip-flops in the core.
func (c *Core) ScanBits() int {
	total := 0
	for _, l := range c.ScanChains {
		total += l
	}
	return total
}

// WIC returns the number of wrapper input cells: one per functional input
// and one per bidirectional terminal.
func (c *Core) WIC() int { return c.Inputs + c.Bidirs }

// WOC returns the number of wrapper output cells: one per functional
// output and one per bidirectional terminal. The SI test-pattern position
// space is the concatenation of all cores' WOCs.
func (c *Core) WOC() int { return c.Outputs + c.Bidirs }

// Terminals returns the total number of wrapper boundary cells.
func (c *Core) Terminals() int { return c.Inputs + c.Outputs + 2*c.Bidirs }

// Validate reports the first structural problem with the core, if any.
func (c *Core) Validate() error {
	switch {
	case c.ID < 0:
		return fmt.Errorf("core %d: negative ID", c.ID)
	case c.Inputs < 0 || c.Outputs < 0 || c.Bidirs < 0:
		return fmt.Errorf("core %d: negative terminal count", c.ID)
	case c.Patterns < 0:
		return fmt.Errorf("core %d: negative pattern count", c.ID)
	}
	for i, l := range c.ScanChains {
		if l <= 0 {
			return fmt.Errorf("core %d: scan chain %d has non-positive length %d", c.ID, i, l)
		}
	}
	if len(c.Tests) > 0 {
		sum := 0
		for i, t := range c.Tests {
			if t.Patterns < 0 {
				return fmt.Errorf("core %d: test %d has negative pattern count", c.ID, i+1)
			}
			sum += t.Patterns
		}
		if sum != c.Patterns {
			return fmt.Errorf("core %d: test pattern counts sum to %d but Patterns is %d", c.ID, sum, c.Patterns)
		}
	}
	if c.Terminals() == 0 && len(c.ScanChains) == 0 {
		return fmt.Errorf("core %d: no terminals and no scan chains", c.ID)
	}
	return nil
}

// SOC is a full system-on-chip design: a named set of wrapped cores plus
// the width of the shared functional bus crossing the core-external
// interconnect fabric.
type SOC struct {
	Name string

	// Top optionally describes the SOC-level module (module 0 in ITC'02
	// files). It is not a wrapped core and takes no part in TAM
	// optimization.
	Top *Core

	// CoreList holds the wrapped cores in file order.
	CoreList []*Core

	// BusWidth is the width of the shared functional bus. The paper's
	// experiments assume a 32-bit bus on both benchmark SOCs.
	BusWidth int

	// Constraints optionally holds test-floor scheduling constraints
	// (power budget, precedence, mutual exclusion) parsed from the
	// Constraints stanza of a .soc file. Nil means unconstrained.
	Constraints *ConstraintSet
}

// Cores returns the wrapped cores of the SOC (excluding the top module).
func (s *SOC) Cores() []*Core { return s.CoreList }

// NumCores returns the number of wrapped cores.
func (s *SOC) NumCores() int { return len(s.CoreList) }

// CoreByID returns the core with the given module ID, or nil.
func (s *SOC) CoreByID(id int) *Core {
	for _, c := range s.CoreList {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// TotalWOC returns the total number of wrapper output cells across all
// cores — the length of an unpartitioned ("horizontal") SI test pattern.
func (s *SOC) TotalWOC() int {
	total := 0
	for _, c := range s.CoreList {
		total += c.WOC()
	}
	return total
}

// TotalTerminals returns the sum of all cores' boundary cell counts.
func (s *SOC) TotalTerminals() int {
	total := 0
	for _, c := range s.CoreList {
		total += c.Terminals()
	}
	return total
}

// Validate reports the first structural problem with the SOC, if any.
func (s *SOC) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("soc: empty name")
	}
	if len(s.CoreList) == 0 {
		return fmt.Errorf("soc %s: no cores", s.Name)
	}
	if s.BusWidth < 0 {
		return fmt.Errorf("soc %s: negative bus width", s.Name)
	}
	seen := make(map[int]bool, len(s.CoreList))
	for _, c := range s.CoreList {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("soc %s: %w", s.Name, err)
		}
		if seen[c.ID] {
			return fmt.Errorf("soc %s: duplicate core ID %d", s.Name, c.ID)
		}
		seen[c.ID] = true
	}
	if err := s.Constraints.Validate(s); err != nil {
		return fmt.Errorf("soc %s: %w", s.Name, err)
	}
	return nil
}

// Summary returns a one-line, human-readable description of the SOC.
func (s *SOC) Summary() string {
	scan := 0
	pats := 0
	for _, c := range s.CoreList {
		scan += c.ScanBits()
		pats += c.Patterns
	}
	return fmt.Sprintf("%s: %d cores, %d boundary cells (%d WOCs), %d scan bits, %d internal patterns, %d-bit bus",
		s.Name, len(s.CoreList), s.TotalTerminals(), s.TotalWOC(), scan, pats, s.BusWidth)
}

// SortedIDs returns the core IDs in ascending order.
func (s *SOC) SortedIDs() []int {
	ids := make([]int, 0, len(s.CoreList))
	for _, c := range s.CoreList {
		ids = append(ids, c.ID)
	}
	sort.Ints(ids)
	return ids
}

// String implements fmt.Stringer.
func (s *SOC) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SOC %s (%d cores)\n", s.Name, len(s.CoreList))
	for _, c := range s.CoreList {
		fmt.Fprintf(&b, "  core %2d: in=%3d out=%3d bidir=%3d chains=%2d scan=%5d patterns=%5d\n",
			c.ID, c.Inputs, c.Outputs, c.Bidirs, len(c.ScanChains), c.ScanBits(), c.Patterns)
	}
	return b.String()
}
