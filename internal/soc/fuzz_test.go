package soc

import (
	"bytes"
	"testing"
)

// FuzzParse checks that the .soc parser never panics and that anything
// it accepts survives a write/reparse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sampleSOC)
	f.Add("SocName x\nModule 1\nInputs 1\nOutputs 1\nPatterns 1\n")
	f.Add("SocName x\nBusWidth 0\nModule 1\nInputs 1\nOutputs 2\nScanChains 2 : 3 4\nPatterns 9\n")
	f.Add("# only a comment\n")
	f.Add("SocName \x00weird\nModule -1\n")
	f.Add("Module 1\nScanChains 1 : 99999999999999999999\n")
	f.Add("SocName x\nModule 1\nInputs 1\nOutputs 1\nPatterns 1\nModule 2\nOutputs 2\nPatterns 1\n" +
		"Constraints\nPowerBudget 10\nCorePower 1 4\nPrecede 1 2\nExclude 1 2\n")
	f.Add("SocName cyc\nModule 1\nOutputs 1\nModule 2\nOutputs 1\nConstraints\nPrecede 1 2\nPrecede 2 1\n")
	f.Add("SocName bad\nModule 1\nOutputs 1\nConstraints\nPrecede 1 99\n")
	f.Add("SocName bad\nModule 1\nOutputs 1\nConstraints\nExclude 1\n")
	f.Add("SocName bad\nModule 1\nOutputs 1\nPowerBudget 5\n")
	f.Add("SocName x\nModule 1\nOutputs 1\nConstraints\nConstraints\nPowerBudget 1\n")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseString(text)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid SOC: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatalf("Write failed on parsed SOC: %v", err)
		}
		s2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, buf.String())
		}
		if s2.NumCores() != s.NumCores() || s2.BusWidth != s.BusWidth {
			t.Fatalf("round trip changed the SOC: %s vs %s", s2.Summary(), s.Summary())
		}
		// Constraints must survive the round trip too. The writer omits
		// an all-defaults stanza, so compare through Empty() first.
		if s.Constraints.Empty() != s2.Constraints.Empty() {
			t.Fatalf("round trip changed constraint emptiness:\n%s", buf.String())
		}
		if !s.Constraints.Empty() {
			var b1, b2 bytes.Buffer
			Write(&b1, s)
			Write(&b2, s2)
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatalf("constraints round trip not a fixed point:\n%s\nvs\n%s", b1.String(), b2.String())
			}
		}
	})
}
