package soc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

const consSOC = `SocName cons
BusWidth 16
Module 1
  Outputs 8
  Patterns 10
Module 2
  Outputs 4
  Patterns 5
Module 3
  Outputs 2
  Patterns 5

Constraints
  PowerBudget 500
  CorePower 2 120
  Precede 1 2
  Precede 1 3
  Exclude 2 3
`

func TestParseConstraints(t *testing.T) {
	s, err := ParseString(consSOC)
	if err != nil {
		t.Fatal(err)
	}
	cs := s.Constraints
	if cs == nil {
		t.Fatal("no constraints parsed")
	}
	if cs.PowerBudget != 500 {
		t.Errorf("PowerBudget = %d, want 500", cs.PowerBudget)
	}
	if got := cs.CorePower[2]; got != 120 {
		t.Errorf("CorePower[2] = %d, want 120", got)
	}
	want := []Precedence{{1, 2}, {1, 3}}
	if len(cs.Precedences) != 2 || cs.Precedences[0] != want[0] || cs.Precedences[1] != want[1] {
		t.Errorf("Precedences = %v, want %v", cs.Precedences, want)
	}
	if len(cs.Exclusions) != 1 || len(cs.Exclusions[0]) != 2 {
		t.Errorf("Exclusions = %v, want [[2 3]]", cs.Exclusions)
	}
	// PowerOf: override beats the WOC default.
	if got := cs.PowerOf(s.CoreByID(2)); got != 120 {
		t.Errorf("PowerOf(core 2) = %d, want 120", got)
	}
	if got := cs.PowerOf(s.CoreByID(1)); got != 8 {
		t.Errorf("PowerOf(core 1) = %d, want WOC 8", got)
	}
}

func TestConstraintsRoundTrip(t *testing.T) {
	s, err := ParseString(consSOC)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	var buf2 bytes.Buffer
	if err := Write(&buf2, s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("write/parse/write not a fixed point:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestConstraintsErrInvalid(t *testing.T) {
	base := "SocName x\nModule 1\nOutputs 1\nPatterns 1\nModule 2\nOutputs 1\nPatterns 1\nConstraints\n"
	cases := []struct {
		name  string
		lines string
	}{
		{"cyclic precedence", "Precede 1 2\nPrecede 2 1\n"},
		{"long cycle", "Precede 1 2\nPrecede 2 3\nPrecede 3 1\n"},
		{"self precedence", "Precede 1 1\n"},
		{"unknown precede before", "Precede 99 1\n"},
		{"unknown precede after", "Precede 1 99\n"},
		{"unknown corepower", "CorePower 99 5\n"},
		{"unknown exclude", "Exclude 1 99\n"},
		{"repeated exclude", "Exclude 1 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := base + tc.lines
			if tc.name == "long cycle" {
				in = strings.Replace(in, "Constraints\n",
					"Module 3\nOutputs 1\nPatterns 1\nConstraints\n", 1)
			}
			_, err := ParseString(in)
			if err == nil {
				t.Fatalf("parse accepted invalid constraints:\n%s", in)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("error %v does not wrap ErrInvalid", err)
			}
		})
	}
}

func TestConstraintsParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"powerbudget outside stanza", "SocName x\nModule 1\nOutputs 1\nPowerBudget 5\n"},
		{"precede outside stanza", "SocName x\nModule 1\nOutputs 1\nPrecede 1 2\n"},
		{"exclude outside stanza", "SocName x\nModule 1\nOutputs 1\nExclude 1 2\n"},
		{"corepower outside stanza", "SocName x\nModule 1\nOutputs 1\nCorePower 1 2\n"},
		{"exclude one core", "SocName x\nModule 1\nOutputs 1\nConstraints\nExclude 1\n"},
		{"negative budget", "SocName x\nModule 1\nOutputs 1\nConstraints\nPowerBudget -1\n"},
		{"negative corepower", "SocName x\nModule 1\nOutputs 1\nConstraints\nCorePower 1 -3\n"},
		{"duplicate corepower", "SocName x\nModule 1\nOutputs 1\nConstraints\nCorePower 1 2\nCorePower 1 3\n"},
		{"constraints with args", "SocName x\nModule 1\nOutputs 1\nConstraints 3\n"},
		{"module key after constraints", "SocName x\nModule 1\nOutputs 1\nConstraints\nInputs 3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.in); err == nil {
				t.Fatalf("parse accepted:\n%s", tc.in)
			}
		})
	}
}

func TestConstraintSetCloneAndEmpty(t *testing.T) {
	var nilSet *ConstraintSet
	if !nilSet.Empty() {
		t.Error("nil set should be Empty")
	}
	if nilSet.Clone() != nil {
		t.Error("nil Clone should be nil")
	}
	if (&ConstraintSet{}).Empty() != true {
		t.Error("zero set should be Empty")
	}
	cs := &ConstraintSet{
		PowerBudget: 7,
		CorePower:   map[int]int64{1: 2},
		Precedences: []Precedence{{1, 2}},
		Exclusions:  [][]int{{1, 2}},
	}
	c := cs.Clone()
	c.CorePower[1] = 99
	c.Precedences[0].After = 99
	c.Exclusions[0][0] = 99
	if cs.CorePower[1] != 2 || cs.Precedences[0].After != 2 || cs.Exclusions[0][0] != 1 {
		t.Error("Clone shares storage with the original")
	}
}

func TestBenchmarksHaveNoConstraints(t *testing.T) {
	// The embedded paper fixtures predate the stanza; their parse must
	// stay constraint-free so unconstrained code paths are untouched.
	for _, name := range []string{"d695", "p34392", "p93791"} {
		s := MustLoadBenchmark(name)
		if !s.Constraints.Empty() {
			t.Errorf("%s unexpectedly has constraints", name)
		}
	}
}
