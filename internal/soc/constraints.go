package soc

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInvalid wraps every structural rejection of a constraint set: an
// unknown core reference, a cyclic precedence relation, a malformed
// exclusion set. Test for it with errors.Is(err, soc.ErrInvalid).
// The parser surfaces constraint problems through this sentinel so
// callers can distinguish "bad constraints" from I/O failures.
var ErrInvalid = errors.New("soc: invalid constraints")

// Precedence orders the SI tests of two cores: every SI test group
// involving core Before must finish before any group involving core
// After may start (groups containing both cores satisfy the relation
// internally and are exempt).
type Precedence struct {
	Before int
	After  int
}

// ConstraintSet holds the test-floor constraints of an SOC, parsed from
// the optional Constraints stanza of a .soc file:
//
//	Constraints
//	  PowerBudget 500
//	  CorePower 3 120
//	  Precede 1 2
//	  Exclude 3 4 5
//
// The paper's optimizer schedules SI test groups with rail exclusivity
// only; real test floors additionally cap peak test power and impose
// precedence and mutual-exclusion relations between tests (see
// arXiv:1008.4448 and the DSC-chip flow of arXiv:0710.4669). The
// constraint vocabulary is core-level — the .soc format describes
// cores, not groups — and is lifted onto SI test groups by
// sischedule.CompileConstraints.
type ConstraintSet struct {
	// PowerBudget caps the summed test power of concurrently running
	// SI test groups. 0 means unlimited.
	PowerBudget int64

	// CorePower overrides the test power of individual cores; a core
	// without an entry defaults to its WOC count (the boundary cells an
	// SI test toggles).
	CorePower map[int]int64

	// Precedences holds the core-level precedence relation.
	Precedences []Precedence

	// Exclusions holds mutual-exclusion sets: no two SI test groups
	// that (separately) involve cores of the same set may run
	// concurrently. Each set lists at least two distinct core IDs.
	Exclusions [][]int
}

// Empty reports whether the set constrains nothing.
func (cs *ConstraintSet) Empty() bool {
	return cs == nil ||
		(cs.PowerBudget == 0 && len(cs.CorePower) == 0 &&
			len(cs.Precedences) == 0 && len(cs.Exclusions) == 0)
}

// Clone returns a deep copy. A nil receiver clones to nil.
func (cs *ConstraintSet) Clone() *ConstraintSet {
	if cs == nil {
		return nil
	}
	c := &ConstraintSet{PowerBudget: cs.PowerBudget}
	if cs.CorePower != nil {
		c.CorePower = make(map[int]int64, len(cs.CorePower))
		for id, p := range cs.CorePower {
			c.CorePower[id] = p
		}
	}
	c.Precedences = append([]Precedence(nil), cs.Precedences...)
	for _, e := range cs.Exclusions {
		c.Exclusions = append(c.Exclusions, append([]int(nil), e...))
	}
	return c
}

// PowerOf returns the test power of core c under the constraint set:
// the CorePower override when present, the core's WOC count otherwise.
// A nil set always answers WOC.
func (cs *ConstraintSet) PowerOf(c *Core) int64 {
	if cs != nil {
		if p, ok := cs.CorePower[c.ID]; ok {
			return p
		}
	}
	return int64(c.WOC())
}

// Validate reports the first structural problem of the constraint set
// against the SOC's cores. Every returned error wraps ErrInvalid.
func (cs *ConstraintSet) Validate(s *SOC) error {
	if cs == nil {
		return nil
	}
	fail := func(format string, a ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, a...))
	}
	if cs.PowerBudget < 0 {
		return fail("negative power budget %d", cs.PowerBudget)
	}
	ids := make(map[int]bool, len(s.CoreList))
	for _, c := range s.CoreList {
		ids[c.ID] = true
	}
	known := func(id int) bool { return ids[id] }
	for id, p := range cs.CorePower {
		if !known(id) {
			return fail("CorePower names unknown core %d", id)
		}
		if p < 0 {
			return fail("core %d has negative power %d", id, p)
		}
	}
	for _, pr := range cs.Precedences {
		if pr.Before == pr.After {
			return fail("core %d precedes itself", pr.Before)
		}
		if !known(pr.Before) {
			return fail("Precede names unknown core %d", pr.Before)
		}
		if !known(pr.After) {
			return fail("Precede names unknown core %d", pr.After)
		}
	}
	for i, e := range cs.Exclusions {
		if len(e) < 2 {
			return fail("exclusion set %d has %d cores, need at least 2", i, len(e))
		}
		seen := make(map[int]bool, len(e))
		for _, id := range e {
			if !known(id) {
				return fail("Exclude names unknown core %d", id)
			}
			if seen[id] {
				return fail("exclusion set %d repeats core %d", i, id)
			}
			seen[id] = true
		}
	}
	if cycle := precedenceCycle(cs.Precedences); cycle != nil {
		return fail("cyclic precedence through cores %v", cycle)
	}
	return nil
}

// precedenceCycle returns the core IDs of one cycle in the precedence
// relation (in no particular order), or nil when the relation is a DAG.
// Kahn's algorithm: peel zero-in-degree vertices; leftovers are cyclic.
func precedenceCycle(prs []Precedence) []int {
	indeg := make(map[int]int)
	succ := make(map[int][]int)
	for _, pr := range prs {
		succ[pr.Before] = append(succ[pr.Before], pr.After)
		indeg[pr.After]++
		if _, ok := indeg[pr.Before]; !ok {
			indeg[pr.Before] = 0
		}
	}
	queue := make([]int, 0, len(indeg))
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	left := len(indeg)
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		left--
		for _, nxt := range succ[id] {
			if indeg[nxt]--; indeg[nxt] == 0 {
				queue = append(queue, nxt)
			}
		}
	}
	if left == 0 {
		return nil
	}
	var cyc []int
	for id, d := range indeg {
		if d > 0 {
			cyc = append(cyc, id)
		}
	}
	sort.Ints(cyc)
	return cyc
}
