package soc

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The .soc format accepted by Parse is a line-oriented, whitespace-separated
// description modeled on the ITC'02 SOC Test Benchmarks distribution:
//
//	SocName p34392
//	BusWidth 32            # optional, defaults to 32
//	TotalModules 20
//
//	Module 0               # SOC top level: terminals only
//	  Name top
//	  Inputs 32
//	  Outputs 32
//	  Bidirs 0
//
//	Module 1
//	  Inputs 117
//	  Outputs 18
//	  Bidirs 0
//	  ScanChains 4 : 201 199 198 198
//	  Patterns 210
//
// '#' starts a comment that runs to end of line. Keys are case-insensitive.
// "ScanChains n : l1 ... ln" lists the n internal scan-chain lengths; a
// module line without ScanChains describes a combinational core. Module 0,
// when present, is stored as SOC.Top and excluded from Cores().
//
// An optional Constraints stanza describes test-floor scheduling
// constraints (see ConstraintSet). The bare "Constraints" marker line
// closes any open Module block; the stanza keys are only legal inside it:
//
//	Constraints
//	  PowerBudget 500        # peak concurrent test power, 0 = unlimited
//	  CorePower 3 120        # override core 3's power (default: its WOC)
//	  Precede 1 2            # core 1's SI groups finish before core 2's start
//	  Exclude 3 4 5          # no two groups covering these may overlap

// Parse reads an SOC description in the .soc format from r.
func Parse(r io.Reader) (*SOC, error) {
	s := &SOC{BusWidth: DefaultBusWidth}
	var cur *Core
	var curTest *CoreTest
	inCons := false
	declaredTests := make(map[*Core]int)
	total := -1

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		key := strings.ToLower(fields[0])
		args := fields[1:]
		fail := func(format string, a ...any) error {
			return fmt.Errorf("soc parse: line %d: %s", lineno, fmt.Sprintf(format, a...))
		}
		needInt := func(what string) (int, error) {
			if len(args) != 1 {
				return 0, fail("%s expects one integer argument, got %d", what, len(args))
			}
			// The original ITC'02 files write "Module 1:" and
			// "Test 1:" with a trailing colon; tolerate it.
			v, err := strconv.Atoi(strings.TrimSuffix(args[0], ":"))
			if err != nil {
				return 0, fail("%s: bad integer %q", what, args[0])
			}
			return v, nil
		}
		// needInts parses exactly n integer arguments (any number when
		// n < 0). Used by the Constraints stanza keys.
		needInts := func(what string, n int) ([]int, error) {
			if n >= 0 && len(args) != n {
				return nil, fail("%s expects %d integer arguments, got %d", what, n, len(args))
			}
			vs := make([]int, len(args))
			for i, a := range args {
				v, err := strconv.Atoi(a)
				if err != nil {
					return nil, fail("%s: bad integer %q", what, a)
				}
				vs[i] = v
			}
			return vs, nil
		}

		switch key {
		case "socname":
			if len(args) != 1 {
				return nil, fail("SocName expects one argument")
			}
			s.Name = args[0]
		case "buswidth":
			v, err := needInt("BusWidth")
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fail("BusWidth must be non-negative, got %d", v)
			}
			s.BusWidth = v
		case "totalmodules":
			v, err := needInt("TotalModules")
			if err != nil {
				return nil, err
			}
			total = v
		case "module":
			v, err := needInt("Module")
			if err != nil {
				return nil, err
			}
			cur = &Core{ID: v}
			curTest = nil
			inCons = false
			if v == 0 {
				s.Top = cur
			} else {
				s.CoreList = append(s.CoreList, cur)
			}
		case "totaltests":
			if cur == nil {
				return nil, fail("TotalTests outside a Module block")
			}
			v, err := needInt("TotalTests")
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fail("TotalTests must be non-negative, got %d", v)
			}
			declaredTests[cur] = v
		case "test":
			if cur == nil {
				return nil, fail("Test outside a Module block")
			}
			if _, err := needInt("Test"); err != nil {
				return nil, err
			}
			cur.Tests = append(cur.Tests, CoreTest{})
			curTest = &cur.Tests[len(cur.Tests)-1]
		case "scanuse", "tamuse":
			if curTest == nil {
				return nil, fail("%s outside a Test block", fields[0])
			}
			v, err := needInt(fields[0])
			if err != nil {
				return nil, err
			}
			if v != 0 && v != 1 {
				return nil, fail("%s must be 0 or 1, got %d", fields[0], v)
			}
			if key == "scanuse" {
				curTest.ScanUse = v == 1
			} else {
				curTest.TamUse = v == 1
			}
		case "name":
			if cur == nil {
				return nil, fail("Name outside a Module block")
			}
			if len(args) != 1 {
				return nil, fail("Name expects one argument")
			}
			cur.Name = args[0]
		case "inputs", "outputs", "bidirs", "patterns":
			if cur == nil {
				return nil, fail("%s outside a Module block", fields[0])
			}
			v, err := needInt(fields[0])
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fail("%s must be non-negative, got %d", fields[0], v)
			}
			switch key {
			case "inputs":
				cur.Inputs = v
			case "outputs":
				cur.Outputs = v
			case "bidirs":
				cur.Bidirs = v
			case "patterns":
				if curTest != nil {
					// Inside a Test block the count belongs to the
					// test; the core total accumulates.
					curTest.Patterns = v
					cur.Patterns += v
				} else {
					cur.Patterns = v
				}
			}
		case "scanchains":
			if cur == nil {
				return nil, fail("ScanChains outside a Module block")
			}
			// Format: ScanChains n : l1 l2 ... ln
			if len(args) < 2 || args[1] != ":" {
				return nil, fail("ScanChains expects \"n : l1 ... ln\"")
			}
			n, err := strconv.Atoi(args[0])
			if err != nil || n < 0 {
				return nil, fail("ScanChains: bad chain count %q", args[0])
			}
			lens := args[2:]
			if len(lens) != n {
				return nil, fail("ScanChains: declared %d chains but listed %d lengths", n, len(lens))
			}
			cur.ScanChains = make([]int, n)
			for i, ls := range lens {
				l, err := strconv.Atoi(ls)
				if err != nil || l <= 0 {
					return nil, fail("ScanChains: bad chain length %q", ls)
				}
				cur.ScanChains[i] = l
			}
		case "constraints":
			if len(args) != 0 {
				return nil, fail("Constraints takes no arguments")
			}
			cur = nil
			curTest = nil
			inCons = true
			if s.Constraints == nil {
				s.Constraints = &ConstraintSet{}
			}
		case "powerbudget":
			if !inCons {
				return nil, fail("PowerBudget outside a Constraints stanza")
			}
			v, err := needInt("PowerBudget")
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fail("PowerBudget must be non-negative, got %d", v)
			}
			s.Constraints.PowerBudget = int64(v)
		case "corepower":
			if !inCons {
				return nil, fail("CorePower outside a Constraints stanza")
			}
			ids, err := needInts("CorePower", 2)
			if err != nil {
				return nil, err
			}
			if ids[1] < 0 {
				return nil, fail("CorePower must be non-negative, got %d", ids[1])
			}
			if s.Constraints.CorePower == nil {
				s.Constraints.CorePower = make(map[int]int64)
			}
			if _, dup := s.Constraints.CorePower[ids[0]]; dup {
				return nil, fail("duplicate CorePower for core %d", ids[0])
			}
			s.Constraints.CorePower[ids[0]] = int64(ids[1])
		case "precede":
			if !inCons {
				return nil, fail("Precede outside a Constraints stanza")
			}
			ids, err := needInts("Precede", 2)
			if err != nil {
				return nil, err
			}
			s.Constraints.Precedences = append(s.Constraints.Precedences,
				Precedence{Before: ids[0], After: ids[1]})
		case "exclude":
			if !inCons {
				return nil, fail("Exclude outside a Constraints stanza")
			}
			ids, err := needInts("Exclude", -1)
			if err != nil {
				return nil, err
			}
			if len(ids) < 2 {
				return nil, fail("Exclude needs at least 2 core IDs, got %d", len(ids))
			}
			s.Constraints.Exclusions = append(s.Constraints.Exclusions, ids)
		default:
			return nil, fail("unknown key %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("soc parse: %w", err)
	}
	if total >= 0 {
		got := len(s.CoreList)
		if s.Top != nil {
			got++
		}
		if got != total {
			return nil, fmt.Errorf("soc parse: TotalModules %d but %d Module blocks found", total, got)
		}
	}
	for c, want := range declaredTests {
		if len(c.Tests) != want {
			return nil, fmt.Errorf("soc parse: module %d declares TotalTests %d but has %d Test blocks", c.ID, want, len(c.Tests))
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// DefaultBusWidth is the shared-bus width assumed when a .soc file does
// not specify one; the paper's experiments use a 32-bit functional bus.
const DefaultBusWidth = 32

// ParseString parses a .soc description held in a string.
func ParseString(text string) (*SOC, error) {
	return Parse(strings.NewReader(text))
}

// Write serializes the SOC in the .soc format accepted by Parse.
func Write(w io.Writer, s *SOC) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "SocName %s\n", s.Name)
	fmt.Fprintf(bw, "BusWidth %d\n", s.BusWidth)
	total := len(s.CoreList)
	if s.Top != nil {
		total++
	}
	fmt.Fprintf(bw, "TotalModules %d\n", total)
	writeCore := func(c *Core) {
		fmt.Fprintf(bw, "\nModule %d\n", c.ID)
		if c.Name != "" {
			fmt.Fprintf(bw, "  Name %s\n", c.Name)
		}
		fmt.Fprintf(bw, "  Inputs %d\n  Outputs %d\n  Bidirs %d\n", c.Inputs, c.Outputs, c.Bidirs)
		if len(c.ScanChains) > 0 {
			fmt.Fprintf(bw, "  ScanChains %d :", len(c.ScanChains))
			for _, l := range c.ScanChains {
				fmt.Fprintf(bw, " %d", l)
			}
			fmt.Fprintln(bw)
		}
		if c.Patterns > 0 {
			fmt.Fprintf(bw, "  Patterns %d\n", c.Patterns)
		}
	}
	if s.Top != nil {
		writeCore(s.Top)
	}
	for _, c := range s.CoreList {
		writeCore(c)
	}
	if cs := s.Constraints; cs != nil && !cs.Empty() {
		fmt.Fprintf(bw, "\nConstraints\n")
		if cs.PowerBudget > 0 {
			fmt.Fprintf(bw, "  PowerBudget %d\n", cs.PowerBudget)
		}
		ids := make([]int, 0, len(cs.CorePower))
		for id := range cs.CorePower {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(bw, "  CorePower %d %d\n", id, cs.CorePower[id])
		}
		for _, pr := range cs.Precedences {
			fmt.Fprintf(bw, "  Precede %d %d\n", pr.Before, pr.After)
		}
		for _, e := range cs.Exclusions {
			fmt.Fprintf(bw, "  Exclude")
			for _, id := range e {
				fmt.Fprintf(bw, " %d", id)
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
