package soc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The .soc format accepted by Parse is a line-oriented, whitespace-separated
// description modeled on the ITC'02 SOC Test Benchmarks distribution:
//
//	SocName p34392
//	BusWidth 32            # optional, defaults to 32
//	TotalModules 20
//
//	Module 0               # SOC top level: terminals only
//	  Name top
//	  Inputs 32
//	  Outputs 32
//	  Bidirs 0
//
//	Module 1
//	  Inputs 117
//	  Outputs 18
//	  Bidirs 0
//	  ScanChains 4 : 201 199 198 198
//	  Patterns 210
//
// '#' starts a comment that runs to end of line. Keys are case-insensitive.
// "ScanChains n : l1 ... ln" lists the n internal scan-chain lengths; a
// module line without ScanChains describes a combinational core. Module 0,
// when present, is stored as SOC.Top and excluded from Cores().

// Parse reads an SOC description in the .soc format from r.
func Parse(r io.Reader) (*SOC, error) {
	s := &SOC{BusWidth: DefaultBusWidth}
	var cur *Core
	var curTest *CoreTest
	declaredTests := make(map[*Core]int)
	total := -1

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		key := strings.ToLower(fields[0])
		args := fields[1:]
		fail := func(format string, a ...any) error {
			return fmt.Errorf("soc parse: line %d: %s", lineno, fmt.Sprintf(format, a...))
		}
		needInt := func(what string) (int, error) {
			if len(args) != 1 {
				return 0, fail("%s expects one integer argument, got %d", what, len(args))
			}
			// The original ITC'02 files write "Module 1:" and
			// "Test 1:" with a trailing colon; tolerate it.
			v, err := strconv.Atoi(strings.TrimSuffix(args[0], ":"))
			if err != nil {
				return 0, fail("%s: bad integer %q", what, args[0])
			}
			return v, nil
		}

		switch key {
		case "socname":
			if len(args) != 1 {
				return nil, fail("SocName expects one argument")
			}
			s.Name = args[0]
		case "buswidth":
			v, err := needInt("BusWidth")
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fail("BusWidth must be non-negative, got %d", v)
			}
			s.BusWidth = v
		case "totalmodules":
			v, err := needInt("TotalModules")
			if err != nil {
				return nil, err
			}
			total = v
		case "module":
			v, err := needInt("Module")
			if err != nil {
				return nil, err
			}
			cur = &Core{ID: v}
			curTest = nil
			if v == 0 {
				s.Top = cur
			} else {
				s.CoreList = append(s.CoreList, cur)
			}
		case "totaltests":
			if cur == nil {
				return nil, fail("TotalTests outside a Module block")
			}
			v, err := needInt("TotalTests")
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fail("TotalTests must be non-negative, got %d", v)
			}
			declaredTests[cur] = v
		case "test":
			if cur == nil {
				return nil, fail("Test outside a Module block")
			}
			if _, err := needInt("Test"); err != nil {
				return nil, err
			}
			cur.Tests = append(cur.Tests, CoreTest{})
			curTest = &cur.Tests[len(cur.Tests)-1]
		case "scanuse", "tamuse":
			if curTest == nil {
				return nil, fail("%s outside a Test block", fields[0])
			}
			v, err := needInt(fields[0])
			if err != nil {
				return nil, err
			}
			if v != 0 && v != 1 {
				return nil, fail("%s must be 0 or 1, got %d", fields[0], v)
			}
			if key == "scanuse" {
				curTest.ScanUse = v == 1
			} else {
				curTest.TamUse = v == 1
			}
		case "name":
			if cur == nil {
				return nil, fail("Name outside a Module block")
			}
			if len(args) != 1 {
				return nil, fail("Name expects one argument")
			}
			cur.Name = args[0]
		case "inputs", "outputs", "bidirs", "patterns":
			if cur == nil {
				return nil, fail("%s outside a Module block", fields[0])
			}
			v, err := needInt(fields[0])
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fail("%s must be non-negative, got %d", fields[0], v)
			}
			switch key {
			case "inputs":
				cur.Inputs = v
			case "outputs":
				cur.Outputs = v
			case "bidirs":
				cur.Bidirs = v
			case "patterns":
				if curTest != nil {
					// Inside a Test block the count belongs to the
					// test; the core total accumulates.
					curTest.Patterns = v
					cur.Patterns += v
				} else {
					cur.Patterns = v
				}
			}
		case "scanchains":
			if cur == nil {
				return nil, fail("ScanChains outside a Module block")
			}
			// Format: ScanChains n : l1 l2 ... ln
			if len(args) < 2 || args[1] != ":" {
				return nil, fail("ScanChains expects \"n : l1 ... ln\"")
			}
			n, err := strconv.Atoi(args[0])
			if err != nil || n < 0 {
				return nil, fail("ScanChains: bad chain count %q", args[0])
			}
			lens := args[2:]
			if len(lens) != n {
				return nil, fail("ScanChains: declared %d chains but listed %d lengths", n, len(lens))
			}
			cur.ScanChains = make([]int, n)
			for i, ls := range lens {
				l, err := strconv.Atoi(ls)
				if err != nil || l <= 0 {
					return nil, fail("ScanChains: bad chain length %q", ls)
				}
				cur.ScanChains[i] = l
			}
		default:
			return nil, fail("unknown key %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("soc parse: %w", err)
	}
	if total >= 0 {
		got := len(s.CoreList)
		if s.Top != nil {
			got++
		}
		if got != total {
			return nil, fmt.Errorf("soc parse: TotalModules %d but %d Module blocks found", total, got)
		}
	}
	for c, want := range declaredTests {
		if len(c.Tests) != want {
			return nil, fmt.Errorf("soc parse: module %d declares TotalTests %d but has %d Test blocks", c.ID, want, len(c.Tests))
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// DefaultBusWidth is the shared-bus width assumed when a .soc file does
// not specify one; the paper's experiments use a 32-bit functional bus.
const DefaultBusWidth = 32

// ParseString parses a .soc description held in a string.
func ParseString(text string) (*SOC, error) {
	return Parse(strings.NewReader(text))
}

// Write serializes the SOC in the .soc format accepted by Parse.
func Write(w io.Writer, s *SOC) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "SocName %s\n", s.Name)
	fmt.Fprintf(bw, "BusWidth %d\n", s.BusWidth)
	total := len(s.CoreList)
	if s.Top != nil {
		total++
	}
	fmt.Fprintf(bw, "TotalModules %d\n", total)
	writeCore := func(c *Core) {
		fmt.Fprintf(bw, "\nModule %d\n", c.ID)
		if c.Name != "" {
			fmt.Fprintf(bw, "  Name %s\n", c.Name)
		}
		fmt.Fprintf(bw, "  Inputs %d\n  Outputs %d\n  Bidirs %d\n", c.Inputs, c.Outputs, c.Bidirs)
		if len(c.ScanChains) > 0 {
			fmt.Fprintf(bw, "  ScanChains %d :", len(c.ScanChains))
			for _, l := range c.ScanChains {
				fmt.Fprintf(bw, " %d", l)
			}
			fmt.Fprintln(bw)
		}
		if c.Patterns > 0 {
			fmt.Fprintf(bw, "  Patterns %d\n", c.Patterns)
		}
	}
	if s.Top != nil {
		writeCore(s.Top)
	}
	for _, c := range s.CoreList {
		writeCore(c)
	}
	return bw.Flush()
}
