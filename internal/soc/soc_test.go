package soc

import (
	"bytes"
	"strings"
	"testing"
)

func TestCoreDerivedCounts(t *testing.T) {
	c := &Core{ID: 1, Inputs: 10, Outputs: 7, Bidirs: 3, ScanChains: []int{5, 6, 7}, Patterns: 42}
	if got := c.ScanBits(); got != 18 {
		t.Errorf("ScanBits = %d, want 18", got)
	}
	if got := c.WIC(); got != 13 {
		t.Errorf("WIC = %d, want 13", got)
	}
	if got := c.WOC(); got != 10 {
		t.Errorf("WOC = %d, want 10", got)
	}
	if got := c.Terminals(); got != 23 {
		t.Errorf("Terminals = %d, want 23", got)
	}
}

func TestCoreValidate(t *testing.T) {
	cases := []struct {
		name string
		core Core
		ok   bool
	}{
		{"valid scan core", Core{ID: 1, Inputs: 2, Outputs: 2, ScanChains: []int{3}, Patterns: 1}, true},
		{"valid combinational", Core{ID: 1, Inputs: 2, Outputs: 2, Patterns: 5}, true},
		{"negative id", Core{ID: -1, Inputs: 1, Outputs: 1}, false},
		{"negative inputs", Core{ID: 1, Inputs: -2, Outputs: 2}, false},
		{"negative patterns", Core{ID: 1, Inputs: 1, Outputs: 1, Patterns: -1}, false},
		{"zero-length chain", Core{ID: 1, Inputs: 1, Outputs: 1, ScanChains: []int{0}}, false},
		{"empty core", Core{ID: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.core.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestSOCValidateDuplicateID(t *testing.T) {
	s := &SOC{
		Name: "dup",
		CoreList: []*Core{
			{ID: 1, Inputs: 1, Outputs: 1, Patterns: 1},
			{ID: 1, Inputs: 2, Outputs: 2, Patterns: 1},
		},
	}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate core IDs")
	}
}

const sampleSOC = `
# sample
SocName demo
BusWidth 16
TotalModules 3

Module 0
  Name top
  Inputs 4
  Outputs 4
  Bidirs 0

Module 1
  Inputs 6
  Outputs 5
  Bidirs 1
  ScanChains 2 : 10 12
  Patterns 33

Module 2
  Inputs 3
  Outputs 2
  Bidirs 0
  Patterns 7
`

func TestParseSample(t *testing.T) {
	s, err := ParseString(sampleSOC)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" {
		t.Errorf("Name = %q", s.Name)
	}
	if s.BusWidth != 16 {
		t.Errorf("BusWidth = %d, want 16", s.BusWidth)
	}
	if s.Top == nil || s.Top.Name != "top" || s.Top.Inputs != 4 {
		t.Errorf("Top = %+v", s.Top)
	}
	if s.NumCores() != 2 {
		t.Fatalf("NumCores = %d, want 2", s.NumCores())
	}
	c1 := s.CoreByID(1)
	if c1 == nil || c1.Inputs != 6 || c1.Outputs != 5 || c1.Bidirs != 1 || c1.Patterns != 33 {
		t.Errorf("core 1 = %+v", c1)
	}
	if len(c1.ScanChains) != 2 || c1.ScanChains[0] != 10 || c1.ScanChains[1] != 12 {
		t.Errorf("core 1 chains = %v", c1.ScanChains)
	}
	if got := s.TotalWOC(); got != 6+2 {
		t.Errorf("TotalWOC = %d, want 8", got)
	}
	if s.CoreByID(99) != nil {
		t.Error("CoreByID(99) should be nil")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"unknown key", "SocName x\nBogus 3\n"},
		{"inputs outside module", "SocName x\nInputs 3\n"},
		{"bad int", "SocName x\nModule one\n"},
		{"chain count mismatch", "SocName x\nModule 1\nInputs 1\nOutputs 1\nScanChains 3 : 1 2\nPatterns 1\n"},
		{"bad chain length", "SocName x\nModule 1\nInputs 1\nOutputs 1\nScanChains 1 : -5\nPatterns 1\n"},
		{"missing colon", "SocName x\nModule 1\nInputs 1\nOutputs 1\nScanChains 1 5\nPatterns 1\n"},
		{"totalmodules mismatch", "SocName x\nTotalModules 5\nModule 1\nInputs 1\nOutputs 1\nPatterns 1\n"},
		{"negative buswidth", "SocName x\nBusWidth -4\nModule 1\nInputs 1\nOutputs 1\nPatterns 1\n"},
		{"no cores", "SocName x\n"},
		{"empty name", "Module 1\nInputs 1\nOutputs 1\nPatterns 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.text); err == nil {
				t.Errorf("ParseString accepted %q", tc.text)
			}
		})
	}
}

func TestParseMultiTestModule(t *testing.T) {
	// The original ITC'02 files use "Module 1:" / "Test 1:" headers and
	// per-test ScanUse/TamUse/Patterns lines.
	text := `
SocName multi
Module 1:
  Inputs 4
  Outputs 4
  ScanChains 2 : 10 12
  TotalTests 2
  Test 1:
    ScanUse 1
    TamUse 1
    Patterns 30
  Test 2:
    ScanUse 0
    TamUse 1
    Patterns 12
`
	s, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	c := s.CoreByID(1)
	if c.Patterns != 42 {
		t.Errorf("Patterns = %d, want 42 (sum of tests)", c.Patterns)
	}
	if len(c.Tests) != 2 {
		t.Fatalf("Tests = %v", c.Tests)
	}
	if !c.Tests[0].ScanUse || !c.Tests[0].TamUse || c.Tests[0].Patterns != 30 {
		t.Errorf("test 1 = %+v", c.Tests[0])
	}
	if c.Tests[1].ScanUse || c.Tests[1].Patterns != 12 {
		t.Errorf("test 2 = %+v", c.Tests[1])
	}
}

func TestParseMultiTestErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"test count mismatch", "SocName x\nModule 1\nInputs 1\nOutputs 1\nTotalTests 3\nTest 1:\nPatterns 5\n"},
		{"scanuse outside test", "SocName x\nModule 1\nInputs 1\nOutputs 1\nScanUse 1\nPatterns 1\n"},
		{"bad scanuse value", "SocName x\nModule 1\nInputs 1\nOutputs 1\nTest 1:\nScanUse 2\nPatterns 1\n"},
		{"test outside module", "SocName x\nTest 1:\n"},
		{"totaltests outside module", "SocName x\nTotalTests 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.text); err == nil {
				t.Errorf("accepted %q", tc.text)
			}
		})
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	s, err := ParseString(sampleSOC)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\ntext:\n%s", err, buf.String())
	}
	if s2.Name != s.Name || s2.BusWidth != s.BusWidth || s2.NumCores() != s.NumCores() {
		t.Errorf("round trip mismatch: %v vs %v", s2.Summary(), s.Summary())
	}
	for _, c := range s.Cores() {
		c2 := s2.CoreByID(c.ID)
		if c2 == nil {
			t.Fatalf("core %d lost in round trip", c.ID)
		}
		if c2.Inputs != c.Inputs || c2.Outputs != c.Outputs || c2.Bidirs != c.Bidirs ||
			c2.Patterns != c.Patterns || len(c2.ScanChains) != len(c.ScanChains) {
			t.Errorf("core %d mismatch: %+v vs %+v", c.ID, c2, c)
		}
	}
}

func TestBenchmarksEmbedded(t *testing.T) {
	names := Benchmarks()
	if len(names) != 3 {
		t.Fatalf("Benchmarks() = %v, want d695, p34392 and p93791", names)
	}
	for _, name := range names {
		s, err := LoadBenchmark(name)
		if err != nil {
			t.Fatalf("LoadBenchmark(%s): %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if s.BusWidth != 32 {
			t.Errorf("%s: BusWidth = %d, want 32 (paper setup)", name, s.BusWidth)
		}
	}
	p34392 := MustLoadBenchmark("p34392")
	if p34392.NumCores() != 19 {
		t.Errorf("p34392 has %d cores, want 19", p34392.NumCores())
	}
	p93791 := MustLoadBenchmark("p93791")
	if p93791.NumCores() != 32 {
		t.Errorf("p93791 has %d cores, want 32", p93791.NumCores())
	}
	d695 := MustLoadBenchmark("d695")
	if d695.NumCores() != 10 {
		t.Errorf("d695 has %d cores, want 10", d695.NumCores())
	}
	if d695.CoreByID(1).Name != "c6288" || len(d695.CoreByID(1).ScanChains) != 0 {
		t.Errorf("d695 core 1 should be the combinational c6288: %+v", d695.CoreByID(1))
	}
	if _, err := LoadBenchmark("nonexistent"); err == nil {
		t.Error("LoadBenchmark accepted unknown name")
	}
}

func TestSummaryAndString(t *testing.T) {
	s := MustLoadBenchmark("p34392")
	sum := s.Summary()
	for _, want := range []string{"p34392", "19 cores", "32-bit bus"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary %q missing %q", sum, want)
		}
	}
	if !strings.Contains(s.String(), "core 18") {
		t.Errorf("String() missing core 18 line:\n%s", s.String())
	}
	ids := s.SortedIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("SortedIDs not ascending: %v", ids)
		}
	}
}
