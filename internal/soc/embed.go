package soc

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

// Regenerate the reconstructed benchmark files (p34392, p93791) with:
//
//go:generate sh -c "cd benchmarks && go run ../../../tools/gensoc"

//go:embed benchmarks/*.soc
var benchmarkFS embed.FS

// Benchmarks returns the names of the embedded benchmark SOCs.
func Benchmarks() []string {
	entries, err := benchmarkFS.ReadDir("benchmarks")
	if err != nil {
		// The embed directive guarantees the directory exists; reaching
		// here indicates a build-system failure.
		panic(fmt.Sprintf("soc: embedded benchmarks unreadable: %v", err))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".soc"))
	}
	sort.Strings(names)
	return names
}

// LoadBenchmark parses one of the embedded benchmark SOCs by name
// (e.g. "p34392" or "p93791").
func LoadBenchmark(name string) (*SOC, error) {
	data, err := benchmarkFS.ReadFile("benchmarks/" + name + ".soc")
	if err != nil {
		return nil, fmt.Errorf("soc: unknown benchmark %q (have %v)", name, Benchmarks())
	}
	s, err := ParseString(string(data))
	if err != nil {
		return nil, fmt.Errorf("soc: embedded benchmark %q: %w", name, err)
	}
	return s, nil
}

// MustLoadBenchmark is LoadBenchmark that panics on error. Embedded
// benchmarks are validated by the package tests, so a failure indicates
// a corrupted build.
func MustLoadBenchmark(name string) *SOC {
	s, err := LoadBenchmark(name)
	if err != nil {
		panic(err)
	}
	return s
}
