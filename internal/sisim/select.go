package sisim

import (
	"sitam/internal/sifault"
)

// Coverage-driven pattern selection: grade a candidate pattern stream
// against the MA fault list with fault dropping and keep only the
// patterns that detect at least one not-yet-detected fault. This is
// the classic test-compaction-by-fault-dropping step that precedes
// structural compaction: it shrinks the random N_r stream to its
// useful core before the two-dimensional compaction of Section 3 even
// starts.

// Selection is the outcome of SelectUseful.
type Selection struct {
	// Kept holds the selected patterns, in input order.
	Kept []*sifault.Pattern

	// KeptIndex[i] is the input index of Kept[i].
	KeptIndex []int

	// Coverage is the final coverage achieved by the kept set (equal
	// to that of the full input set).
	Coverage Coverage

	// NewFaults[i] is the number of new faults pattern Kept[i]
	// detected when it was admitted.
	NewFaults []int
}

// SelectUseful filters patterns to those contributing new fault
// detections.
func (s *Simulator) SelectUseful(patterns []*sifault.Pattern) Selection {
	sel := Selection{}
	total := 6 * len(s.topo.Nets)
	sel.Coverage.Total = total
	for i := range s.worst {
		if s.worst[i] == 0 {
			sel.Coverage.Undetectable += 6
		}
	}
	detected := make([]bool, total)
	for idx, p := range patterns {
		newHits := 0
		for _, c := range p.Care {
			net, ok := s.netAt[c.Pos]
			if !ok {
				continue
			}
			for k := FaultKind(0); k < numKinds; k++ {
				fi := net*6 + int(k)
				if detected[fi] {
					continue
				}
				if s.Detects(p, Fault{Net: net, Kind: k}) {
					detected[fi] = true
					newHits++
					sel.Coverage.Detected++
					sel.Coverage.PerKind[k]++
				}
			}
		}
		if newHits > 0 {
			sel.Kept = append(sel.Kept, p)
			sel.KeptIndex = append(sel.KeptIndex, idx)
			sel.NewFaults = append(sel.NewFaults, newHits)
		}
	}
	return sel
}
