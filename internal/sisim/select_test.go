package sisim

import (
	"testing"

	"sitam/internal/sifault"
	"sitam/internal/topology"
)

func TestSelectUsefulKeepsCoverage(t *testing.T) {
	topo := lineTopology(t, 30)
	sim, err := New(topo, Config{LocalityK: 2, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := sifault.Generate(topo.SOC, sifault.GenConfig{N: 2000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	full := sim.Grade(patterns)
	sel := sim.SelectUseful(patterns)

	if sel.Coverage.Detected != full.Detected {
		t.Errorf("selection coverage %d != full coverage %d", sel.Coverage.Detected, full.Detected)
	}
	if len(sel.Kept) >= len(patterns) && full.Detected < full.Total {
		t.Errorf("selection kept everything (%d)", len(sel.Kept))
	}
	// Re-grading only the kept patterns must reproduce the coverage.
	again := sim.Grade(sel.Kept)
	if again.Detected != full.Detected {
		t.Errorf("kept set grades to %d, full to %d", again.Detected, full.Detected)
	}
	// Bookkeeping invariants.
	if len(sel.Kept) != len(sel.KeptIndex) || len(sel.Kept) != len(sel.NewFaults) {
		t.Fatal("selection slices out of sync")
	}
	sum := 0
	for i, n := range sel.NewFaults {
		if n < 1 {
			t.Errorf("kept pattern %d detected nothing new", i)
		}
		sum += n
	}
	if sum != sel.Coverage.Detected {
		t.Errorf("new-fault counts sum to %d, coverage says %d", sum, sel.Coverage.Detected)
	}
	for i := 1; i < len(sel.KeptIndex); i++ {
		if sel.KeptIndex[i] <= sel.KeptIndex[i-1] {
			t.Fatal("kept indices not ascending")
		}
	}
}

func TestSelectUsefulOnCompleteSet(t *testing.T) {
	topo := lineTopology(t, 20)
	k := 2
	sim, err := New(topo, Config{LocalityK: k, Threshold: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := topology.MAPatterns(topo, k)
	if err != nil {
		t.Fatal(err)
	}
	sel := sim.SelectUseful(ma)
	if sel.Coverage.Detected != sel.Coverage.Total {
		t.Errorf("MA set selection covers %d/%d", sel.Coverage.Detected, sel.Coverage.Total)
	}
	// Every MA pattern targets a distinct (victim, kind) pair, so the
	// whole set is useful... except where a pattern detects several
	// faults at once and later ones arrive already-covered. At
	// threshold 1.0 with full windows, each pattern detects exactly
	// its own fault, so all 6N are kept.
	if len(sel.Kept) != len(ma) {
		t.Logf("kept %d of %d MA patterns (cross-detection dropped the rest)", len(sel.Kept), len(ma))
	}
	if len(sel.Kept) == 0 {
		t.Fatal("kept nothing")
	}
}

func TestSelectUsefulEmpty(t *testing.T) {
	topo := lineTopology(t, 5)
	sim, err := New(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sel := sim.SelectUseful(nil)
	if len(sel.Kept) != 0 || sel.Coverage.Detected != 0 {
		t.Errorf("empty selection = %+v", sel)
	}
}
