// Package sisim is a behavioral signal-integrity fault simulator for
// core-external interconnects, in the spirit of the maximal-aggressor
// fault model of Cuviello et al. (ICCAD 1999): crosstalk noise on a
// victim net is the superposition of contributions from its
// neighborhood aggressors, weighted by coupling strength that decays
// with routing-track distance, and an integrity-loss sensor at the
// receiver flags the fault when the accumulated noise crosses a
// threshold.
//
// The simulator grades SI test sets: it enumerates the MA fault list of
// a topology (six faults per net: positive/negative glitch,
// rising/falling delay, rising/falling speedup) and reports which
// faults a pattern set detects. The library uses it to demonstrate the
// paper's premise — high SI fault coverage needs large pattern counts —
// and to sanity-check the deterministic MA test sets (which achieve
// 100% coverage by construction).
package sisim

import (
	"fmt"
	"math"

	"sitam/internal/sifault"
	"sitam/internal/topology"
)

// FaultKind enumerates the six MA fault types.
type FaultKind uint8

// The six maximal-aggressor faults per victim net.
const (
	GlitchPositive FaultKind = iota // victim quiescent 0, noise pulls up
	GlitchNegative                  // victim quiescent 1, noise pulls down
	DelayRise                       // victim rises, opposing noise delays it
	DelayFall                       // victim falls, opposing noise delays it
	SpeedupRise                     // victim rises, assisting noise speeds it up
	SpeedupFall                     // victim falls, assisting noise speeds it up
	numKinds
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case GlitchPositive:
		return "glitch+"
	case GlitchNegative:
		return "glitch-"
	case DelayRise:
		return "delay-rise"
	case DelayFall:
		return "delay-fall"
	case SpeedupRise:
		return "speedup-rise"
	case SpeedupFall:
		return "speedup-fall"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// victimState returns the victim symbol that sensitizes the fault and
// the aggressor transition direction that excites it (+1 rise,
// -1 fall).
func (k FaultKind) victimState() (sifault.Symbol, int) {
	switch k {
	case GlitchPositive:
		return sifault.Zero, +1
	case GlitchNegative:
		return sifault.One, -1
	case DelayRise:
		return sifault.Rise, -1
	case DelayFall:
		return sifault.Fall, +1
	case SpeedupRise:
		return sifault.Rise, +1
	case SpeedupFall:
		return sifault.Fall, -1
	}
	panic(fmt.Sprintf("sisim: bad fault kind %d", k))
}

// Fault is one SI fault: a kind on a victim net.
type Fault struct {
	Net  int // index into the topology's net list
	Kind FaultKind
}

// Config parameterizes the noise model.
type Config struct {
	// LocalityK is the coupling window: nets further than K tracks
	// from the victim contribute no noise. The zero value defaults
	// to 3 (the paper's reduced-MT example).
	LocalityK int

	// Threshold is the fraction of the victim's worst-case
	// neighborhood noise that must be excited for the sensor to flag
	// the fault. 1.0 requires the full maximal-aggressor condition;
	// lower values model wider noise margins being violated earlier.
	// The zero value defaults to 0.9.
	Threshold float64
}

func (c Config) withDefaults() Config {
	if c.LocalityK == 0 {
		c.LocalityK = 3
	}
	if c.Threshold == 0 {
		c.Threshold = 0.9
	}
	return c
}

// coupling returns the capacitive coupling weight between two nets at
// track distance d >= 1: an inverse-distance decay, the customary
// first-order approximation.
func coupling(d int) float64 {
	if d < 1 {
		d = 1
	}
	return 1 / float64(d)
}

// Simulator grades pattern sets against the MA fault list of one
// topology.
type Simulator struct {
	topo *topology.Topology
	cfg  Config
	sp   *sifault.Space

	// posOf[i] is the global WOC position of net i's driver.
	posOf []int32

	// netAt maps a global position to the net it drives, or -1.
	netAt map[int32]int

	// worst[i] is net i's worst-case neighborhood noise (all window
	// aggressors in unison).
	worst []float64
}

// New builds a simulator for the topology.
func New(t *topology.Topology, cfg Config) (*Simulator, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("sisim: threshold %v outside [0,1]", cfg.Threshold)
	}
	s := &Simulator{
		topo:  t,
		cfg:   cfg,
		sp:    sifault.NewSpace(t.SOC),
		posOf: make([]int32, len(t.Nets)),
		netAt: make(map[int32]int, len(t.Nets)),
		worst: make([]float64, len(t.Nets)),
	}
	for i, n := range t.Nets {
		start, cnt := s.sp.Range(n.Driver.Core)
		if n.Driver.Index >= cnt {
			return nil, fmt.Errorf("sisim: net %d driver index out of range", i)
		}
		pos := int32(start + n.Driver.Index)
		s.posOf[i] = pos
		s.netAt[pos] = i
	}
	for i := range t.Nets {
		for _, j := range s.topoNeighbors(i) {
			d := t.Nets[j].Track - t.Nets[i].Track
			if d < 0 {
				d = -d
			}
			s.worst[i] += coupling(d)
		}
	}
	return s, nil
}

// topoNeighbors returns the coupling window of net i under the
// configured locality.
func (s *Simulator) topoNeighbors(i int) []int { return s.topo.Neighbors(i, s.cfg.LocalityK) }

// Faults returns the full MA fault list: 6 faults per net.
func (s *Simulator) Faults() []Fault {
	out := make([]Fault, 0, 6*len(s.topo.Nets))
	for i := range s.topo.Nets {
		for k := FaultKind(0); k < numKinds; k++ {
			out = append(out, Fault{Net: i, Kind: k})
		}
	}
	return out
}

// Detects reports whether one pattern detects one fault: the victim
// must be driven to the fault's sensitizing state, and the excited
// neighborhood noise (aggressors transitioning in the fault's
// direction minus aggressors transitioning against it) must reach the
// threshold fraction of the worst case.
func (s *Simulator) Detects(p *sifault.Pattern, f Fault) bool {
	victimSym, dir := f.Kind.victimState()
	if p.SymbolAt(s.posOf[f.Net]) != victimSym {
		return false
	}
	if s.worst[f.Net] == 0 {
		return false // isolated net: the fault is undetectable (and unexcitable)
	}
	noise := 0.0
	vTrack := s.topo.Nets[f.Net].Track
	for _, j := range s.topoNeighbors(f.Net) {
		sym := p.SymbolAt(s.posOf[j])
		var contrib int
		switch sym {
		case sifault.Rise:
			contrib = +1
		case sifault.Fall:
			contrib = -1
		default:
			continue
		}
		d := s.topo.Nets[j].Track - vTrack
		if d < 0 {
			d = -d
		}
		noise += float64(dir*contrib) * coupling(d)
	}
	return noise >= s.cfg.Threshold*s.worst[f.Net]-1e-9
}

// Coverage is the outcome of grading a pattern set.
type Coverage struct {
	Total    int
	Detected int

	// Undetectable counts faults on nets with empty neighborhoods;
	// they are included in Total but can never be detected.
	Undetectable int

	// PerKind[k] is the number of detected faults of kind k.
	PerKind [6]int
}

// Fraction returns Detected/Total (0 when the fault list is empty).
func (c Coverage) Fraction() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Total)
}

// DetectableFraction returns coverage of the detectable faults only.
func (c Coverage) DetectableFraction() float64 {
	d := c.Total - c.Undetectable
	if d == 0 {
		return 0
	}
	return float64(c.Detected) / float64(d)
}

// Grade runs fault simulation of the pattern set with fault dropping
// and returns the achieved coverage.
func (s *Simulator) Grade(patterns []*sifault.Pattern) Coverage {
	cov := Coverage{Total: 6 * len(s.topo.Nets)}
	for i := range s.worst {
		if s.worst[i] == 0 {
			cov.Undetectable += 6
		}
	}
	detected := make([]bool, cov.Total)
	// Index patterns by the nets whose drivers they determine, so each
	// pattern is only simulated against faults it could sensitize.
	for _, p := range patterns {
		for _, c := range p.Care {
			net, ok := s.netAt[c.Pos]
			if !ok {
				continue
			}
			for k := FaultKind(0); k < numKinds; k++ {
				fi := net*6 + int(k)
				if detected[fi] {
					continue
				}
				if s.Detects(p, Fault{Net: net, Kind: k}) {
					detected[fi] = true
					cov.Detected++
					cov.PerKind[k]++
				}
			}
		}
	}
	return cov
}

// CoverageCurve grades growing prefixes of the pattern set and returns
// the coverage fraction after each checkpoint. Checkpoints must be
// ascending; values beyond len(patterns) clamp.
func (s *Simulator) CoverageCurve(patterns []*sifault.Pattern, checkpoints []int) []float64 {
	out := make([]float64, len(checkpoints))
	for i, n := range checkpoints {
		if n > len(patterns) {
			n = len(patterns)
		}
		out[i] = s.Grade(patterns[:n]).Fraction()
	}
	return out
}

// WorstCaseNoise exposes the per-net maximal-aggressor noise level
// (useful for calibrating thresholds in tests).
func (s *Simulator) WorstCaseNoise(net int) float64 {
	return s.worst[net]
}

// RequiredPatternsEstimate returns the analytic MA pattern count for
// the topology (6N), for comparison against how many random patterns
// Grade needs for the same coverage.
func (s *Simulator) RequiredPatternsEstimate() int64 {
	return sifault.MACount(len(s.topo.Nets))
}

// MaxCoupling returns the largest single coupling weight in use, a
// sanity handle for threshold selection.
func MaxCoupling() float64 { return coupling(1) }

// ThresholdForWindow returns the threshold fraction at which a single
// nearest-track aggressor suffices to excite a fault in a window of
// 2k nets — handy in tests that want patterns with few aggressors to
// count.
func ThresholdForWindow(k int) float64 {
	worst := 0.0
	for d := 1; d <= k; d++ {
		worst += 2 * coupling(d)
	}
	if worst == 0 {
		return 1
	}
	return math.Min(1, coupling(1)/worst)
}
