package sisim

import (
	"testing"

	"sitam/internal/sifault"
	"sitam/internal/soc"
	"sitam/internal/topology"
)

func lineTopology(t *testing.T, nets int) *topology.Topology {
	t.Helper()
	s := &soc.SOC{Name: "line", BusWidth: 8}
	perCore := 10
	cores := (nets + perCore - 1) / perCore
	if cores < 2 {
		cores = 2
	}
	for id := 1; id <= cores; id++ {
		s.CoreList = append(s.CoreList, &soc.Core{
			ID: id, Inputs: perCore, Outputs: perCore, ScanChains: []int{10}, Patterns: 5,
		})
	}
	topo := &topology.Topology{SOC: s}
	for i := 0; i < nets; i++ {
		topo.Nets = append(topo.Nets, topology.Net{
			Driver:        topology.Terminal{Core: 1 + i/perCore, Index: i % perCore},
			ReceiverCores: []int{1 + (i/perCore+1)%cores},
			BusLine:       -1,
			Track:         i,
		})
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestFaultKindString(t *testing.T) {
	want := map[FaultKind]string{
		GlitchPositive: "glitch+", GlitchNegative: "glitch-",
		DelayRise: "delay-rise", DelayFall: "delay-fall",
		SpeedupRise: "speedup-rise", SpeedupFall: "speedup-fall",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestFaultListSize(t *testing.T) {
	topo := lineTopology(t, 25)
	sim, err := New(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	faults := sim.Faults()
	if len(faults) != 150 {
		t.Errorf("fault list = %d, want 6*25", len(faults))
	}
	if sim.RequiredPatternsEstimate() != 150 {
		t.Errorf("estimate = %d", sim.RequiredPatternsEstimate())
	}
}

func TestMAPatternsAchieveFullCoverage(t *testing.T) {
	topo := lineTopology(t, 30)
	k := 3
	sim, err := New(topo, Config{LocalityK: k, Threshold: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := topology.MAPatterns(topo, k)
	if err != nil {
		t.Fatal(err)
	}
	cov := sim.Grade(patterns)
	if cov.Undetectable != 0 {
		t.Fatalf("line topology has %d undetectable faults", cov.Undetectable)
	}
	if cov.Detected != cov.Total {
		t.Errorf("MA test set covers %d/%d faults; must be complete by construction",
			cov.Detected, cov.Total)
	}
	for k, n := range cov.PerKind {
		if n != 30 {
			t.Errorf("kind %v covered %d/30", FaultKind(k), n)
		}
	}
}

func TestCoverageMonotonic(t *testing.T) {
	topo := lineTopology(t, 30)
	sim, err := New(topo, Config{LocalityK: 2, Threshold: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := topology.MAPatterns(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	curve := sim.CoverageCurve(patterns, []int{10, 40, 90, len(patterns), len(patterns) + 100})
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Errorf("coverage curve not monotonic: %v", curve)
		}
	}
	if curve[len(curve)-1] != 1.0 {
		t.Errorf("final coverage = %v, want 1.0", curve[len(curve)-1])
	}
	if curve[0] >= curve[len(curve)-1] {
		t.Errorf("coverage already complete after 10 patterns: %v", curve)
	}
}

func TestDetectsRequiresVictimState(t *testing.T) {
	topo := lineTopology(t, 10)
	sim, err := New(topo, Config{LocalityK: 1, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Pattern drives net 5's victim to Rise with neighbor 4 rising.
	sp := sifault.NewSpace(topo.SOC)
	_ = sp
	mk := func(vSym, aSym sifault.Symbol) *sifault.Pattern {
		p := &sifault.Pattern{Weight: 1}
		p.Care = []sifault.Care{
			{Pos: sim.posOf[4], Sym: aSym},
			{Pos: sim.posOf[5], Sym: vSym},
		}
		if sim.posOf[4] > sim.posOf[5] {
			p.Care[0], p.Care[1] = p.Care[1], p.Care[0]
		}
		return p
	}
	if !sim.Detects(mk(sifault.Rise, sifault.Rise), Fault{Net: 5, Kind: SpeedupRise}) {
		t.Error("speedup-rise undetected with rising victim and rising aggressor")
	}
	if sim.Detects(mk(sifault.Fall, sifault.Rise), Fault{Net: 5, Kind: SpeedupRise}) {
		t.Error("speedup-rise detected with falling victim")
	}
	if sim.Detects(mk(sifault.Rise, sifault.Fall), Fault{Net: 5, Kind: SpeedupRise}) {
		t.Error("speedup-rise detected with opposing aggressor only")
	}
	if !sim.Detects(mk(sifault.Rise, sifault.Fall), Fault{Net: 5, Kind: DelayRise}) {
		t.Error("delay-rise undetected with falling aggressor")
	}
}

func TestOpposingAggressorsCancel(t *testing.T) {
	topo := lineTopology(t, 10)
	sim, err := New(topo, Config{LocalityK: 1, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Net 5's window at k=1 is nets 4 and 6, equal coupling. One rises,
	// one falls: net noise 0, below any positive threshold.
	p := &sifault.Pattern{Weight: 1}
	p.Care = []sifault.Care{
		{Pos: sim.posOf[4], Sym: sifault.Rise},
		{Pos: sim.posOf[5], Sym: sifault.Zero},
		{Pos: sim.posOf[6], Sym: sifault.Fall},
	}
	sortCare(p)
	if sim.Detects(p, Fault{Net: 5, Kind: GlitchPositive}) {
		t.Error("cancelled noise still detected")
	}
	// Both rising: full excitation.
	p.Care[2].Sym = sifault.Rise
	if !sim.Detects(p, Fault{Net: 5, Kind: GlitchPositive}) {
		t.Error("full excitation undetected")
	}
}

func sortCare(p *sifault.Pattern) {
	for i := 1; i < len(p.Care); i++ {
		for j := i; j > 0 && p.Care[j].Pos < p.Care[j-1].Pos; j-- {
			p.Care[j], p.Care[j-1] = p.Care[j-1], p.Care[j]
		}
	}
}

func TestThresholdForWindow(t *testing.T) {
	// k=1: worst = 2*1.0; single nearest aggressor -> 0.5.
	if got := ThresholdForWindow(1); got != 0.5 {
		t.Errorf("ThresholdForWindow(1) = %v, want 0.5", got)
	}
	if got := ThresholdForWindow(0); got != 1 {
		t.Errorf("ThresholdForWindow(0) = %v, want 1", got)
	}
	if MaxCoupling() != 1 {
		t.Errorf("MaxCoupling = %v", MaxCoupling())
	}
}

func TestRandomPatternsPartialCoverage(t *testing.T) {
	// Random generator patterns over the SOC detect some but not all
	// MA faults at a generous threshold — the paper's motivation for
	// large N_r.
	topo := lineTopology(t, 40)
	sim, err := New(topo, Config{LocalityK: 2, Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := sifault.Generate(topo.SOC, sifault.GenConfig{N: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cov := sim.Grade(patterns)
	if cov.Detected == 0 {
		t.Error("random patterns detected nothing at threshold 0.3")
	}
	if cov.Detected == cov.Total {
		t.Error("300 random patterns already at full coverage — threshold too lax for the test's premise")
	}
	if cov.Fraction() <= 0 || cov.Fraction() >= 1 {
		t.Errorf("fraction = %v", cov.Fraction())
	}
	if cov.DetectableFraction() < cov.Fraction() {
		t.Error("detectable fraction below raw fraction")
	}
}

func TestConfigValidation(t *testing.T) {
	topo := lineTopology(t, 5)
	if _, err := New(topo, Config{Threshold: 2}); err == nil {
		t.Error("accepted threshold > 1")
	}
	bad := &topology.Topology{SOC: topo.SOC}
	if _, err := New(bad, Config{}); err == nil {
		t.Error("accepted empty topology")
	}
}
