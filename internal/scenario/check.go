package scenario

import (
	"sitam/internal/sicheck"
	"sitam/internal/sischedule"
	"sitam/internal/tam"
)

// Instance restates the scenario as plain data for the independent
// checker. The translation is deliberately mechanical — core WOCs,
// rail specs, group membership and the raw core-level constraint
// stanza — so the checker sees exactly what the generator produced,
// not anything the scheduler derived.
func (sc *Scenario) Instance() *sicheck.Instance {
	return sc.InstanceForRails(sc.Rails)
}

// InstanceForRails is Instance with the architecture overridden — used
// to validate schedules on optimizer-designed architectures rather
// than the scenario's fixed rails.
func (sc *Scenario) InstanceForRails(rails []RailSpec) *sicheck.Instance {
	m := sc.Model()
	inst := &sicheck.Instance{
		WOC:      make(map[int]int, sc.SOC.NumCores()),
		Bypass:   m.Bypass,
		Overhead: m.Overhead,
	}
	for _, c := range sc.SOC.Cores() {
		inst.WOC[c.ID] = c.WOC()
	}
	for _, r := range rails {
		inst.Rails = append(inst.Rails, sicheck.Rail{Width: r.Width, Cores: append([]int(nil), r.Cores...)})
	}
	for _, g := range sc.Groups {
		inst.Groups = append(inst.Groups, sicheck.Group{Name: g.Name, Cores: append([]int(nil), g.Cores...), Patterns: g.Patterns})
	}
	if cs := sc.SOC.Constraints; cs != nil {
		inst.PowerBudget = cs.PowerBudget
		if len(cs.CorePower) > 0 {
			inst.CorePower = make(map[int]int64, len(cs.CorePower))
			for id, p := range cs.CorePower {
				inst.CorePower[id] = p
			}
		}
		for _, pr := range cs.Precedences {
			inst.Precedences = append(inst.Precedences, [2]int{pr.Before, pr.After})
		}
		for _, set := range cs.Exclusions {
			inst.Exclusions = append(inst.Exclusions, append([]int(nil), set...))
		}
	}
	return inst
}

// RailsOf restates an architecture's rails as RailSpecs, for
// InstanceForRails.
func RailsOf(a *tam.Architecture) []RailSpec {
	out := make([]RailSpec, len(a.Rails))
	for i, r := range a.Rails {
		out[i] = RailSpec{Width: r.Width, Cores: append([]int(nil), r.Cores...)}
	}
	return out
}

// Slots restates a schedule for the checker.
func Slots(s *sischedule.Schedule) []sicheck.Slot {
	out := make([]sicheck.Slot, len(s.Slots))
	for i, sl := range s.Slots {
		out[i] = sicheck.Slot{Group: sl.Group.Name, Begin: sl.Begin, End: sl.End}
	}
	return out
}
