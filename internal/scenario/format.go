package scenario

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sitam/internal/sischedule"
	"sitam/internal/soc"
)

// Write serializes a scenario as text: the scenario-specific lines
// (seed, rails, groups) followed by the SOC in .soc format, whose
// Constraints stanza carries the power/precedence/exclusion
// annotations. The output is deterministic and Parse reads it back to
// an equal scenario, so shrunk reproductions can be frozen under
// testdata/ and replayed.
func Write(w io.Writer, sc *Scenario) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# sitam scenario %s\n", sc.SOC.Name)
	if sc.Seed != 0 {
		fmt.Fprintf(bw, "ScenarioSeed %d\n", sc.Seed)
	}
	for _, r := range sc.Rails {
		fmt.Fprintf(bw, "Rail %d :", r.Width)
		for _, id := range r.Cores {
			fmt.Fprintf(bw, " %d", id)
		}
		fmt.Fprintln(bw)
	}
	for _, g := range sc.Groups {
		fmt.Fprintf(bw, "SIGroup %s %d :", g.Name, g.Patterns)
		for _, id := range g.Cores {
			fmt.Fprintf(bw, " %d", id)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw)
	if err := soc.Write(bw, sc.SOC); err != nil {
		return err
	}
	return bw.Flush()
}

// Parse reads a scenario written by Write. Lines starting with
// ScenarioSeed, Rail or SIGroup are scenario-specific; everything else
// is handed to the .soc parser verbatim. The parsed scenario is
// validated structurally before it is returned.
func Parse(r io.Reader) (*Scenario, error) {
	sc := &Scenario{}
	var socText strings.Builder
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := scan.Text()
		f := strings.Fields(line)
		if len(f) == 0 || !isScenarioKey(f[0]) {
			socText.WriteString(line)
			socText.WriteByte('\n')
			continue
		}
		if err := sc.parseLine(f); err != nil {
			return nil, fmt.Errorf("scenario: line %d: %w", lineNo, err)
		}
	}
	if err := scan.Err(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := soc.Parse(strings.NewReader(socText.String()))
	if err != nil {
		return nil, err
	}
	sc.SOC = s
	if len(sc.Rails) == 0 {
		return nil, fmt.Errorf("scenario: no Rail lines")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func isScenarioKey(key string) bool {
	switch key {
	case "ScenarioSeed", "Rail", "SIGroup":
		return true
	}
	return false
}

func (sc *Scenario) parseLine(f []string) error {
	switch f[0] {
	case "ScenarioSeed":
		if len(f) != 2 {
			return fmt.Errorf("ScenarioSeed wants 1 argument, got %d", len(f)-1)
		}
		seed, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return fmt.Errorf("ScenarioSeed: %w", err)
		}
		sc.Seed = seed
	case "Rail":
		if len(f) < 4 || f[2] != ":" {
			return fmt.Errorf("Rail wants \"Rail <width> : <core>...\"")
		}
		width, err := strconv.Atoi(f[1])
		if err != nil || width <= 0 {
			return fmt.Errorf("Rail: bad width %q", f[1])
		}
		cores, err := parseIDs(f[3:])
		if err != nil {
			return fmt.Errorf("Rail: %w", err)
		}
		sc.Rails = append(sc.Rails, RailSpec{Width: width, Cores: cores})
	case "SIGroup":
		if len(f) < 5 || f[3] != ":" {
			return fmt.Errorf("SIGroup wants \"SIGroup <name> <patterns> : <core>...\"")
		}
		patterns, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil || patterns < 0 {
			return fmt.Errorf("SIGroup: bad pattern count %q", f[2])
		}
		cores, err := parseIDs(f[4:])
		if err != nil {
			return fmt.Errorf("SIGroup: %w", err)
		}
		sc.Groups = append(sc.Groups, &sischedule.Group{Name: f[1], Cores: cores, Patterns: patterns})
	}
	return nil
}

func parseIDs(f []string) ([]int, error) {
	out := make([]int, len(f))
	for i, s := range f {
		id, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad core ID %q", s)
		}
		out[i] = id
	}
	return out, nil
}
