package scenario

import (
	"bytes"
	"testing"

	"sitam/internal/sicheck"
)

// TestGenerateDeterministic pins the chaos-determinism contract: the
// same seed yields byte-identical scenarios across two independent
// generator runs.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 99991} {
		var a, b bytes.Buffer
		if err := Write(&a, Generate(seed)); err != nil {
			t.Fatal(err)
		}
		if err := Write(&b, Generate(seed)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("seed %d: two generator runs produced different bytes", seed)
		}
	}
}

// TestGenerateValid checks structural validity and the documented
// ranges over a spread of seeds.
func TestGenerateValid(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sc := Generate(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := sc.SOC.NumCores(); n < 100 || n > 1000 {
			t.Fatalf("seed %d: %d cores outside [100, 1000]", seed, n)
		}
		if len(sc.Groups) == 0 {
			t.Fatalf("seed %d: no groups", seed)
		}
	}
}

// TestWitnessFeasible verifies the generator's known-feasibility
// claim with the independent checker: the serial schedule in
// group-index order satisfies every constraint of every scenario.
func TestWitnessFeasible(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		sc := Generate(seed)
		inst := sc.Instance()
		var slots []sicheck.Slot
		var now int64
		for gi := range inst.Groups {
			d := inst.Duration(&inst.Groups[gi])
			if d == 0 {
				slots = append(slots, sicheck.Slot{Group: inst.Groups[gi].Name})
				continue
			}
			slots = append(slots, sicheck.Slot{Group: inst.Groups[gi].Name, Begin: now, End: now + d})
			now += d
		}
		if err := inst.Check(slots, now); err != nil {
			t.Fatalf("seed %d: serial witness rejected: %v", seed, err)
		}
	}
}

// TestFormatRoundTrip: Write -> Parse -> Write is a fixed point.
func TestFormatRoundTrip(t *testing.T) {
	for _, seed := range []int64{3, 1234} {
		sc := Generate(seed)
		var a bytes.Buffer
		if err := Write(&a, sc); err != nil {
			t.Fatal(err)
		}
		sc2, err := Parse(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var b bytes.Buffer
		if err := Write(&b, sc2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("seed %d: roundtrip changed the bytes", seed)
		}
		if sc2.Seed != sc.Seed || len(sc2.Groups) != len(sc.Groups) || len(sc2.Rails) != len(sc.Rails) {
			t.Fatalf("seed %d: roundtrip changed the shape", seed)
		}
	}
}

// TestParseRejectsBroken covers the parser's error paths.
func TestParseRejectsBroken(t *testing.T) {
	cases := []struct{ name, text string }{
		{"no rails", "SocName x\nModule 1\n  Inputs 2\n  Outputs 2\n  Patterns 1\n"},
		{"bad rail width", "Rail zero : 1\nSocName x\nModule 1\n  Inputs 2\n  Outputs 2\n  Patterns 1\n"},
		{"rail unknown core", "Rail 4 : 7\nSocName x\nModule 1\n  Inputs 2\n  Outputs 2\n  Patterns 1\n"},
		{"group unknown core", "Rail 4 : 1\nSIGroup SI1 5 : 9\nSocName x\nModule 1\n  Inputs 2\n  Outputs 2\n  Patterns 1\n"},
		{"group negative patterns", "Rail 4 : 1\nSIGroup SI1 -2 : 1\nSocName x\nModule 1\n  Inputs 2\n  Outputs 2\n  Patterns 1\n"},
		{"seed garbage", "ScenarioSeed x\nRail 4 : 1\nSocName x\nModule 1\n  Inputs 2\n  Outputs 2\n  Patterns 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(bytes.NewReader([]byte(tc.text))); err == nil {
				t.Fatal("broken scenario accepted")
			}
		})
	}
}

// TestShrinkMinimizes drives the shrinker with a checker-style
// predicate: the scheduler's output, corrupted by stretching one slot,
// must be rejected by the independent checker. That stays true as long
// as one nonzero-duration group remains, so the shrinker should reduce
// a several-hundred-core scenario to a handful of cores.
func TestShrinkMinimizes(t *testing.T) {
	fails := func(sc *Scenario) bool {
		if sc.Validate() != nil {
			return false
		}
		sched, err := Solve(sc)
		if err != nil {
			return false
		}
		slots := Slots(sched)
		corrupted := false
		for i := range slots {
			if slots[i].End > slots[i].Begin {
				slots[i].End++
				corrupted = true
				break
			}
		}
		if !corrupted {
			return false
		}
		return sc.Instance().Check(slots, sched.TotalSI) != nil
	}
	sc := GenerateConfig(Config{MinCores: 100, MaxCores: 160}, 5)
	if !fails(sc) {
		t.Fatal("seed scenario does not exhibit the failure")
	}
	small := Shrink(sc, fails)
	if !fails(small) {
		t.Fatal("shrunk scenario lost the failure")
	}
	if got := len(small.Groups); got > 2 {
		t.Fatalf("shrink left %d groups, want <= 2", got)
	}
	if got := small.SOC.NumCores(); got > 12 {
		t.Fatalf("shrink left %d cores, want <= 12", got)
	}
	if err := small.Validate(); err != nil {
		t.Fatalf("shrunk scenario invalid: %v", err)
	}
}
