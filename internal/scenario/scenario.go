// Package scenario generates randomized constrained-scheduling
// instances for the differential test harness: 100-1000-core SOCs with
// power/precedence/exclusion annotations, a TestRail architecture and
// an SI test-group set, all derived deterministically from one seed.
//
// Every generated scenario is feasible by construction, with the
// serial schedule in group-index order as the witness:
//
//   - The power budget, when set, is at least the largest single group
//     power, so any one group can always run alone.
//   - Precedence edges Precede(b, a) are only emitted when every group
//     involving core b has a strictly smaller group index than every
//     group involving core a, so the core-level relation lifts to a
//     group order that the identity permutation satisfies — lifted
//     cycles are impossible.
//   - Exclusions never threaten feasibility (serial application
//     satisfies any exclusion set).
//
// The package deliberately knows nothing about how the schedulers
// enforce constraints: it emits plain SOC/constraint/group data. The
// matching independent validator lives in internal/sicheck, which
// shares no code with internal/sischedule (see DESIGN.md).
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/wrapper"
)

// RailSpec is one TestRail of a scenario's fixed architecture: a width
// and the IDs of the cores it hosts. Every core of the SOC appears on
// exactly one rail.
type RailSpec struct {
	Width int
	Cores []int
}

// Scenario is one generated constrained-scheduling instance.
type Scenario struct {
	// Seed reproduces the scenario via Generate(Seed) (zero for
	// scenarios read from a file that omits the seed, e.g. shrunk
	// repros edited by hand).
	Seed int64

	// SOC carries the cores and, in Constraints, the power budget,
	// per-core power overrides, precedence and exclusion sets.
	SOC *soc.SOC

	// Rails is the fixed TestRail architecture the groups are
	// scheduled on.
	Rails []RailSpec

	// Groups are the SI test groups, in witness order: the serial
	// schedule applying them in slice order is feasible.
	Groups []*sischedule.Group
}

// Config bounds the generator's random choices. The zero value selects
// the defaults noted per field.
type Config struct {
	// MinCores and MaxCores bound the core count (defaults 100, 1000).
	MinCores, MaxCores int

	// MaxGroups caps the group count (default: cores, i.e. ~1 group
	// per core on average).
	MaxGroups int
}

func (c Config) withDefaults() Config {
	if c.MinCores <= 0 {
		c.MinCores = 100
	}
	if c.MaxCores < c.MinCores {
		c.MaxCores = 1000
		if c.MaxCores < c.MinCores {
			c.MaxCores = c.MinCores
		}
	}
	return c
}

// Generate builds the default-range scenario of a seed: 100-1000 cores,
// randomized rails, groups and constraint stanza.
func Generate(seed int64) *Scenario {
	return GenerateConfig(Config{}, seed)
}

// GenerateConfig is Generate under explicit bounds. The same (cfg,
// seed) pair always yields the same scenario, byte for byte.
func GenerateConfig(cfg Config, seed int64) *Scenario {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))

	nCores := cfg.MinCores + rng.Intn(cfg.MaxCores-cfg.MinCores+1)
	s := &soc.SOC{Name: fmt.Sprintf("sc%05d", seed), BusWidth: 32}
	for id := 1; id <= nCores; id++ {
		c := &soc.Core{
			ID:      id,
			Inputs:  4 + rng.Intn(37),
			Outputs: 4 + rng.Intn(37),
			Bidirs:  rng.Intn(5),
		}
		for k := rng.Intn(4); k > 0; k-- {
			c.ScanChains = append(c.ScanChains, 5+rng.Intn(96))
		}
		c.Patterns = 5 + rng.Intn(196)
		s.CoreList = append(s.CoreList, c)
	}

	// Rails: shuffle the cores and deal them round-robin.
	nRails := 8 + rng.Intn(17)
	if nRails > nCores {
		nRails = nCores
	}
	rails := make([]RailSpec, nRails)
	for i := range rails {
		rails[i].Width = 4 + rng.Intn(29)
	}
	for i, pi := range rng.Perm(nCores) {
		ri := i % nRails
		rails[ri].Cores = append(rails[ri].Cores, s.CoreList[pi].ID)
	}
	for i := range rails {
		sort.Ints(rails[i].Cores)
	}

	// Groups over sliding windows of the ID space: group j draws its
	// cores from a window starting near j*nCores/nGroups, so a core's
	// group memberships cluster around one index — the precondition
	// that makes precedence edges plentiful below.
	maxGroups := cfg.MaxGroups
	if maxGroups <= 0 {
		maxGroups = nCores
	}
	nGroups := nCores/3 + rng.Intn(nCores-nCores/3+1)
	if nGroups > maxGroups {
		nGroups = maxGroups
	}
	if nGroups < 1 {
		nGroups = 1
	}
	groups := make([]*sischedule.Group, nGroups)
	// minG[id] and maxG[id] bracket the group indices involving core id.
	minG := make(map[int]int, nCores)
	maxG := make(map[int]int, nCores)
	for j := range groups {
		start := j * nCores / nGroups
		width := 12
		if width > nCores {
			width = nCores
		}
		want := 2 + rng.Intn(5)
		seen := make(map[int]bool, want)
		var cores []int
		for len(cores) < want {
			id := 1 + (start+rng.Intn(width))%nCores
			if seen[id] {
				continue
			}
			seen[id] = true
			cores = append(cores, id)
			if _, ok := minG[id]; !ok {
				minG[id] = j
			}
			maxG[id] = j
		}
		sort.Ints(cores)
		patterns := int64(1 + rng.Intn(60))
		if rng.Intn(16) == 0 {
			patterns = 0 // exercise the zero-duration exemption
		}
		groups[j] = &sischedule.Group{Name: fmt.Sprintf("SI%d", j+1), Cores: cores, Patterns: patterns}
	}

	cs := &soc.ConstraintSet{}

	// Per-core power overrides (3 of 4 scenarios; the rest fall back
	// to the WOC default so both power models are swept).
	if rng.Intn(4) != 0 {
		cs.CorePower = make(map[int]int64, nCores)
		for _, c := range s.CoreList {
			cs.CorePower[c.ID] = int64(1 + rng.Intn(20))
		}
	}

	// Budget: at least the largest group power (the feasibility
	// witness needs every group to fit alone), at most twice it so
	// the cap actually limits concurrency. 1 in 8 scenarios runs
	// uncapped.
	if rng.Intn(8) != 0 {
		var pmax int64
		for _, g := range groups {
			var p int64
			for _, id := range g.Cores {
				p += cs.PowerOf(s.CoreByID(id))
			}
			if p > pmax {
				pmax = p
			}
		}
		cs.PowerBudget = pmax + rng.Int63n(pmax+1)
	}

	// Precedence edges: only Precede(b, a) with maxG[b] < minG[a], so
	// every lifted edge points from a lower group index to a higher
	// one and the identity order is a topological witness.
	target := nCores / 4
	if target > 150 {
		target = 150
	}
	edge := make(map[soc.Precedence]bool)
	for try := 0; try < 4*target && len(cs.Precedences) < target; try++ {
		b := 1 + rng.Intn(nCores)
		a := 1 + rng.Intn(nCores)
		mb, okb := maxG[b]
		na, oka := minG[a]
		if !okb || !oka || mb >= na {
			continue
		}
		pr := soc.Precedence{Before: b, After: a}
		if edge[pr] {
			continue
		}
		edge[pr] = true
		cs.Precedences = append(cs.Precedences, pr)
	}

	// Exclusion sets of 2-4 group-covered cores.
	covered := make([]int, 0, len(minG))
	for id := range minG {
		covered = append(covered, id)
	}
	sort.Ints(covered)
	for k := rng.Intn(1 + nCores/50); k > 0; k-- {
		want := 2 + rng.Intn(3)
		if want > len(covered) {
			break
		}
		seen := make(map[int]bool, want)
		var set []int
		for len(set) < want {
			id := covered[rng.Intn(len(covered))]
			if seen[id] {
				continue
			}
			seen[id] = true
			set = append(set, id)
		}
		sort.Ints(set)
		cs.Exclusions = append(cs.Exclusions, set)
	}

	if !cs.Empty() {
		s.Constraints = cs
	}
	return &Scenario{Seed: seed, SOC: s, Rails: rails, Groups: groups}
}

// Architecture builds the scenario's fixed TestRail architecture.
func (sc *Scenario) Architecture() (*tam.Architecture, error) {
	maxWidth := 1
	for _, r := range sc.Rails {
		if r.Width > maxWidth {
			maxWidth = r.Width
		}
	}
	tt, err := wrapper.NewTimeTable(sc.SOC, maxWidth)
	if err != nil {
		return nil, err
	}
	a := tam.New(sc.SOC, tt)
	for _, r := range sc.Rails {
		a.AddRail(r.Cores, r.Width)
	}
	return a, nil
}

// Model returns the cost model scenarios are scheduled under.
func (sc *Scenario) Model() sischedule.Model { return sischedule.DefaultModel() }

// Validate reports the first structural problem with the scenario:
// an invalid SOC or constraint set, a rail with a non-positive width
// or unknown core, a core on zero or several rails, or a group
// referencing an unknown core.
func (sc *Scenario) Validate() error {
	if err := sc.SOC.Validate(); err != nil {
		return err
	}
	onRail := make(map[int]int)
	for i, r := range sc.Rails {
		if r.Width <= 0 {
			return fmt.Errorf("scenario: rail %d has width %d", i, r.Width)
		}
		for _, id := range r.Cores {
			if sc.SOC.CoreByID(id) == nil {
				return fmt.Errorf("scenario: rail %d hosts unknown core %d", i, id)
			}
			onRail[id]++
		}
	}
	for _, c := range sc.SOC.Cores() {
		if onRail[c.ID] != 1 {
			return fmt.Errorf("scenario: core %d is on %d rails", c.ID, onRail[c.ID])
		}
	}
	for _, g := range sc.Groups {
		if len(g.Cores) == 0 {
			return fmt.Errorf("scenario: group %q has no cores", g.Name)
		}
		for _, id := range g.Cores {
			if sc.SOC.CoreByID(id) == nil {
				return fmt.Errorf("scenario: group %q involves unknown core %d", g.Name, id)
			}
		}
		if g.Patterns < 0 {
			return fmt.Errorf("scenario: group %q has negative pattern count", g.Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the scenario.
func (sc *Scenario) Clone() *Scenario {
	out := &Scenario{Seed: sc.Seed}
	cp := *sc.SOC
	cp.CoreList = make([]*soc.Core, len(sc.SOC.CoreList))
	for i, c := range sc.SOC.CoreList {
		cc := *c
		cc.ScanChains = append([]int(nil), c.ScanChains...)
		cc.Tests = append([]soc.CoreTest(nil), c.Tests...)
		cp.CoreList[i] = &cc
	}
	cp.Constraints = sc.SOC.Constraints.Clone()
	out.SOC = &cp
	out.Rails = make([]RailSpec, len(sc.Rails))
	for i, r := range sc.Rails {
		out.Rails[i] = RailSpec{Width: r.Width, Cores: append([]int(nil), r.Cores...)}
	}
	out.Groups = make([]*sischedule.Group, len(sc.Groups))
	for i, g := range sc.Groups {
		out.Groups[i] = g.Clone()
	}
	return out
}
