package scenario

import (
	"fmt"

	"sitam/internal/sischedule"
)

// Solve runs one scenario through the production scheduling path and
// cross-validates the outcome three ways:
//
//  1. the constrained list scheduler (Algorithm 1 + constraints)
//     produces the schedule;
//  2. the planner — the optimizer's memoized cost path — must agree
//     with the scheduler's makespan exactly;
//  3. the compiled constraint validator and the independent checker
//     (internal/sicheck, no shared code) must both accept the
//     schedule.
//
// Any disagreement comes back as an error; the harness shrinks the
// scenario that caused it and freezes the reproduction.
func Solve(sc *Scenario) (*sischedule.Schedule, error) {
	arch, err := sc.Architecture()
	if err != nil {
		return nil, fmt.Errorf("architecture: %w", err)
	}
	m := sc.Model()
	cons, err := sischedule.CompileConstraints(sc.SOC, sc.SOC.Constraints, sc.Groups)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	sched, err := sischedule.ScheduleSITestCons(arch, sc.Groups, m, cons)
	if err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}

	planner := sischedule.NewPlannerCons(sc.Groups, m, cons)
	si, _, err := planner.Cost(arch)
	if err != nil {
		return nil, fmt.Errorf("planner: %w", err)
	}
	if si != sched.TotalSI {
		return nil, fmt.Errorf("planner says T_si=%d, scheduler says %d", si, sched.TotalSI)
	}

	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("schedule invariants: %w", err)
	}
	if err := cons.ValidateSchedule(sc.Groups, sched); err != nil {
		return nil, fmt.Errorf("compiled validator: %w", err)
	}
	if err := sc.Instance().Check(Slots(sched), sched.TotalSI); err != nil {
		return nil, err
	}
	return sched, nil
}
