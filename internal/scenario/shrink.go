package scenario

import "sitam/internal/soc"

// Shrink minimizes a failing scenario: fails must report true on sc
// (the failure being minimized) and Shrink greedily removes groups,
// precedence edges, exclusion sets, the power budget, power overrides
// and finally unreferenced cores, keeping each removal only while
// fails stays true. The result is a (locally) minimal reproduction to
// freeze under testdata/. fails must be a pure predicate: it is called
// many times on candidate scenarios.
func Shrink(sc *Scenario, fails func(*Scenario) bool) *Scenario {
	cur := sc.Clone()
	for progress := true; progress; {
		progress = false
		// Groups first — dropping a group shrinks everything downstream
		// (powers, lifted edges, exclusion pairs). Chunked ddmin: halves
		// first, then single groups.
		for chunk := (len(cur.Groups) + 1) / 2; chunk >= 1; chunk /= 2 {
			for at := 0; at+chunk <= len(cur.Groups); {
				cand := cur.Clone()
				cand.Groups = append(cand.Groups[:at], cand.Groups[at+chunk:]...)
				if fails(cand) {
					cur = cand
					progress = true
				} else {
					at += chunk
				}
			}
		}
		for at := 0; at < lenPrecedences(cur); {
			cand := cur.Clone()
			cs := cand.SOC.Constraints
			cs.Precedences = append(cs.Precedences[:at], cs.Precedences[at+1:]...)
			normalize(cand)
			if fails(cand) {
				cur = cand
				progress = true
			} else {
				at++
			}
		}
		for at := 0; at < lenExclusions(cur); {
			cand := cur.Clone()
			cs := cand.SOC.Constraints
			cs.Exclusions = append(cs.Exclusions[:at], cs.Exclusions[at+1:]...)
			normalize(cand)
			if fails(cand) {
				cur = cand
				progress = true
			} else {
				at++
			}
		}
		if cur.SOC.Constraints != nil && cur.SOC.Constraints.PowerBudget > 0 {
			cand := cur.Clone()
			cand.SOC.Constraints.PowerBudget = 0
			normalize(cand)
			if fails(cand) {
				cur = cand
				progress = true
			}
		}
		if cur.SOC.Constraints != nil && len(cur.SOC.Constraints.CorePower) > 0 {
			cand := cur.Clone()
			cand.SOC.Constraints.CorePower = nil
			normalize(cand)
			if fails(cand) {
				cur = cand
				progress = true
			}
		}
		if cand := dropUnreferencedCores(cur); cand != nil && fails(cand) {
			cur = cand
			progress = true
		}
	}
	return cur
}

// lenPrecedences and lenExclusions are nil-safe loop bounds: shrinking
// can null out the whole constraint set mid-pass.
func lenPrecedences(sc *Scenario) int {
	if sc.SOC.Constraints == nil {
		return 0
	}
	return len(sc.SOC.Constraints.Precedences)
}

func lenExclusions(sc *Scenario) int {
	if sc.SOC.Constraints == nil {
		return 0
	}
	return len(sc.SOC.Constraints.Exclusions)
}

// normalize drops a constraint set that shrank to empty, restoring the
// nil-means-unconstrained convention.
func normalize(sc *Scenario) {
	if sc.SOC.Constraints.Empty() {
		sc.SOC.Constraints = nil
	}
}

// dropUnreferencedCores removes cores that no group, precedence edge
// or exclusion set mentions (trimming CorePower overrides with them),
// and prunes newly empty rails. Returns nil when nothing is removable
// (at least one core must remain).
func dropUnreferencedCores(sc *Scenario) *Scenario {
	used := make(map[int]bool)
	for _, g := range sc.Groups {
		for _, id := range g.Cores {
			used[id] = true
		}
	}
	if cs := sc.SOC.Constraints; cs != nil {
		for _, pr := range cs.Precedences {
			used[pr.Before] = true
			used[pr.After] = true
		}
		for _, set := range cs.Exclusions {
			for _, id := range set {
				used[id] = true
			}
		}
	}
	keep := make([]*soc.Core, 0, len(sc.SOC.CoreList))
	for _, c := range sc.SOC.CoreList {
		if used[c.ID] {
			keep = append(keep, c)
		}
	}
	if len(keep) == len(sc.SOC.CoreList) || len(keep) == 0 {
		return nil
	}
	cand := sc.Clone()
	kept := make([]*soc.Core, 0, len(keep))
	for _, c := range cand.SOC.CoreList {
		if used[c.ID] {
			kept = append(kept, c)
		}
	}
	cand.SOC.CoreList = kept
	if cs := cand.SOC.Constraints; cs != nil && cs.CorePower != nil {
		for id := range cs.CorePower {
			if !used[id] {
				delete(cs.CorePower, id)
			}
		}
	}
	rails := cand.Rails[:0]
	for _, r := range cand.Rails {
		cores := r.Cores[:0]
		for _, id := range r.Cores {
			if used[id] {
				cores = append(cores, id)
			}
		}
		r.Cores = cores
		if len(r.Cores) > 0 {
			rails = append(rails, r)
		}
	}
	cand.Rails = rails
	normalize(cand)
	return cand
}
