package scenario

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"sitam/internal/core"
	"sitam/internal/sischedule"
)

// sweepSeeds returns how many scenarios the generative sweep covers:
// SITAM_SCENARIO_SEEDS when set (the CI scenario-smoke job passes
// 200), otherwise a fast default.
func sweepSeeds(t *testing.T) int64 {
	if v := os.Getenv("SITAM_SCENARIO_SEEDS"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 1 {
			t.Fatalf("bad SITAM_SCENARIO_SEEDS %q", v)
		}
		return n
	}
	if testing.Short() {
		return 10
	}
	return 40
}

// persistFailure shrinks a failing scenario to a minimal reproduction
// and freezes it under testdata/, where TestFrozenScenarios replays it
// on every run until the underlying bug is fixed.
func persistFailure(t *testing.T, sc *Scenario, origErr error) {
	t.Helper()
	fails := func(cand *Scenario) bool {
		if cand.Validate() != nil {
			return false
		}
		_, err := Solve(cand)
		return err != nil
	}
	repro := sc
	if fails(sc) {
		repro = Shrink(sc, fails)
	}
	name := filepath.Join("testdata", fmt.Sprintf("failing-seed%d.scenario", sc.Seed))
	var buf bytes.Buffer
	if err := Write(&buf, repro); err != nil {
		t.Errorf("serializing reproduction: %v", err)
		return
	}
	if err := os.WriteFile(name, buf.Bytes(), 0o644); err != nil {
		t.Errorf("freezing reproduction: %v", err)
		return
	}
	t.Errorf("seed %d: %v\nminimal reproduction frozen at %s (%d cores, %d groups)",
		sc.Seed, origErr, name, repro.SOC.NumCores(), len(repro.Groups))
}

// TestScenarioSweep is the generative differential harness: every
// seeded scenario (100-1000 cores, randomized constraints) is solved
// by the production scheduler, cross-checked against the planner, the
// compiled validator and the independent checker. A violation is
// shrunk and frozen under testdata/.
func TestScenarioSweep(t *testing.T) {
	n := sweepSeeds(t)
	for seed := int64(1); seed <= n; seed++ {
		sc := Generate(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid scenario: %v", seed, err)
		}
		if _, err := Solve(sc); err != nil {
			persistFailure(t, sc, err)
		}
	}
}

// TestFrozenScenarios replays every scenario frozen under testdata/ —
// both the seeded regression corpus and any minimal reproductions the
// sweep persisted. All of them must solve cleanly.
func TestFrozenScenarios(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.scenario"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no frozen scenarios under testdata/ — the seeded corpus is missing")
	}
	for _, name := range files {
		name := name
		t.Run(filepath.Base(name), func(t *testing.T) {
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Parse(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Solve(sc); err != nil {
				t.Fatalf("frozen scenario fails: %v", err)
			}
		})
	}
}

// TestEngineOnScenarios runs small constrained scenarios through the
// full TAM optimization (Algorithm 2) and validates the resulting
// schedule — on the architecture the optimizer designed, not the
// scenario's fixed rails — with the independent checker. This is the
// end-to-end leg of the differential harness: constraints travel on
// the SOC, so the engine path needs no scenario-specific wiring.
func TestEngineOnScenarios(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		sc := GenerateConfig(Config{MinCores: 10, MaxCores: 40, MaxGroups: 25}, seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := core.TAMOptimization(sc.SOC, 24, sc.Groups, sc.Model())
		if err != nil {
			t.Fatalf("seed %d: optimization: %v", seed, err)
		}
		inst := sc.InstanceForRails(RailsOf(res.Architecture))
		if err := inst.Check(Slots(res.Schedule), res.Schedule.TotalSI); err != nil {
			t.Errorf("seed %d: engine schedule rejected by independent checker: %v", seed, err)
		}
		if res.Breakdown.TimeSI != res.Schedule.TotalSI {
			t.Errorf("seed %d: breakdown T_si=%d but schedule says %d", seed, res.Breakdown.TimeSI, res.Schedule.TotalSI)
		}
	}
}

// TestExactOnScenarios pins the constrained branch-and-bound against
// the greedy scheduler on tiny scenarios: the exact optimum is never
// worse, and its schedule is achievable (the greedy result bounds it
// from above).
func TestExactOnScenarios(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		sc := GenerateConfig(Config{MinCores: 8, MaxCores: 14, MaxGroups: 6}, seed)
		arch, err := sc.Architecture()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := sc.Model()
		cons, err := sischedule.CompileConstraints(sc.SOC, sc.SOC.Constraints, sc.Groups)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		greedy, err := sischedule.ScheduleSITestCons(arch, sc.Groups, m, cons)
		if err != nil {
			t.Fatalf("seed %d: greedy: %v", seed, err)
		}
		exact, _, _, err := sischedule.ExactScheduleCons(context.Background(), arch, sc.Groups, m, cons)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		if exact > greedy.TotalSI {
			t.Errorf("seed %d: exact %d worse than greedy %d", seed, exact, greedy.TotalSI)
		}
	}
}

// TestChaosDeterminism is the chaos-style gate: one seed, two fully
// independent end-to-end runs at different worker counts, byte-equal
// outputs — scenario bytes, designed architecture, schedule and
// breakdown.
func TestChaosDeterminism(t *testing.T) {
	const seed = 11
	type outcome struct {
		scenario string
		arch     string
		sched    string
		tsoc     int64
	}
	runAt := func(workers int) outcome {
		sc := GenerateConfig(Config{MinCores: 12, MaxCores: 30, MaxGroups: 15}, seed)
		var buf bytes.Buffer
		if err := Write(&buf, sc); err != nil {
			t.Fatal(err)
		}
		cfg := core.ParallelConfig{Workers: workers}
		res, err := core.TAMOptimizationWith(context.Background(), sc.SOC, 16, sc.Groups, sc.Model(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{
			scenario: buf.String(),
			arch:     res.Architecture.String(),
			sched:    res.Schedule.String(),
			tsoc:     res.Breakdown.TimeSOC,
		}
	}
	a, b := runAt(1), runAt(4)
	if a.scenario != b.scenario {
		t.Error("scenario bytes differ between runs")
	}
	if a.arch != b.arch {
		t.Errorf("architectures differ:\n%s\nvs\n%s", a.arch, b.arch)
	}
	if a.sched != b.sched {
		t.Errorf("schedules differ:\n%s\nvs\n%s", a.sched, b.sched)
	}
	if a.tsoc != b.tsoc {
		t.Errorf("T_soc differs: %d vs %d", a.tsoc, b.tsoc)
	}
}
