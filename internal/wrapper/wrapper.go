// Package wrapper implements IEEE 1500-style test wrapper design for
// embedded cores: partitioning a core's internal scan chains and boundary
// cells into a given number of balanced wrapper scan chains, and the
// resulting test application time.
//
// The partitioning heuristic is the Combine procedure of Marinissen, Goel
// and Lousberg ("Wrapper Design for Embedded Core Test", ITC 2000): Best
// Fit Decreasing placement of the internal scan chains followed by
// distribution of the wrapper input/output cells, which builds
// near-balanced wrapper scan chains. The paper under reproduction uses
// Combine for InTest-mode wrappers; in SI (ExTest) mode wrapper scan
// chains contain boundary cells only and are assumed perfectly balanced.
package wrapper

import (
	"fmt"
	"sort"

	"sitam/internal/soc"
)

// Design describes the wrapper scan-chain arrangement of one core for a
// given TAM width.
type Design struct {
	// Width is the number of wrapper scan chains (the TAM width the
	// core is hooked to).
	Width int

	// ScanIn[i] is the scan-in length of wrapper chain i: wrapper input
	// cells plus the internal scan flip-flops routed through chain i.
	ScanIn []int

	// ScanOut[i] is the scan-out length of wrapper chain i: internal
	// scan flip-flops plus wrapper output cells.
	ScanOut []int
}

// MaxScanIn returns the longest scan-in chain length.
func (d *Design) MaxScanIn() int { return maxOf(d.ScanIn) }

// MaxScanOut returns the longest scan-out chain length.
func (d *Design) MaxScanOut() int { return maxOf(d.ScanOut) }

func maxOf(v []int) int {
	m := 0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// TestTime returns the InTest application time of a core tested through
// this wrapper with p test patterns, in clock cycles:
//
//	T = (1 + max(si, so))·p + min(si, so)
//
// where si and so are the longest wrapper scan-in and scan-out chain
// lengths. This is the standard formula from Iyengar, Chakrabarty and
// Marinissen (JETTA 2002): each pattern needs max(si,so) shift cycles
// (scan-in of the next pattern overlaps scan-out of the previous) plus
// one capture cycle, and the final response needs min(si,so) extra
// cycles to flush.
func (d *Design) TestTime(patterns int) int64 {
	if patterns == 0 {
		return 0
	}
	si := int64(d.MaxScanIn())
	so := int64(d.MaxScanOut())
	mx, mn := si, so
	if mn > mx {
		mx, mn = mn, mx
	}
	return (1+mx)*int64(patterns) + mn
}

// Combine builds an InTest wrapper design for core c at the given TAM
// width using Best Fit Decreasing.
//
// Internal scan chains are placed longest-first onto the wrapper chain
// with the currently shortest scan length; wrapper input cells are then
// distributed to equalize scan-in lengths and wrapper output cells to
// equalize scan-out lengths. Width must be at least 1; a width larger
// than the number of placeable items simply leaves some wrapper chains
// empty.
func Combine(c *soc.Core, width int) (*Design, error) {
	if width < 1 {
		return nil, fmt.Errorf("wrapper: width must be >= 1, got %d", width)
	}
	d := &Design{
		Width:   width,
		ScanIn:  make([]int, width),
		ScanOut: make([]int, width),
	}

	// Step 1: BFD placement of internal scan chains. Scan flip-flops
	// count toward both scan-in and scan-out length.
	chains := append([]int(nil), c.ScanChains...)
	sort.Sort(sort.Reverse(sort.IntSlice(chains)))
	internal := make([]int, width)
	for _, l := range chains {
		best := 0
		for i := 1; i < width; i++ {
			if internal[i] < internal[best] {
				best = i
			}
		}
		internal[best] += l
	}
	copy(d.ScanIn, internal)
	copy(d.ScanOut, internal)

	// Step 2: distribute wrapper input cells (inputs + bidirs) to the
	// wrapper chains, always extending the shortest scan-in chain.
	distribute(d.ScanIn, c.WIC())

	// Step 3: distribute wrapper output cells likewise on scan-out.
	distribute(d.ScanOut, c.WOC())

	return d, nil
}

// distribute adds n unit-length cells one by one to the shortest chain.
// Because all cells have length 1, this greedy pass yields an optimal
// balancing of the cells over the given base lengths.
func distribute(chain []int, n int) {
	if len(chain) == 0 {
		return
	}
	// Fast path: repeatedly raise the minimum. Equivalent to adding one
	// cell at a time to the shortest chain, but O(w log w + w) instead
	// of O(n·w).
	idx := make([]int, len(chain))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return chain[idx[a]] < chain[idx[b]] })
	for n > 0 {
		// Raise the current minimum level to the next level, spending
		// cells across all chains at the minimum.
		lvl := chain[idx[0]]
		cnt := 0
		for cnt < len(idx) && chain[idx[cnt]] == lvl {
			cnt++
		}
		var next int
		if cnt < len(idx) {
			next = chain[idx[cnt]]
		} else {
			// All equal: spread the remainder round-robin.
			q, r := n/len(chain), n%len(chain)
			for i := range chain {
				chain[i] += q
				if i < r {
					chain[i]++
				}
			}
			return
		}
		need := (next - lvl) * cnt
		if need > n {
			q, r := n/cnt, n%cnt
			for i := 0; i < cnt; i++ {
				chain[idx[i]] += q
				if i < r {
					chain[idx[i]]++
				}
			}
			return
		}
		for i := 0; i < cnt; i++ {
			chain[idx[i]] = next
		}
		n -= need
	}
}

// InTestTime returns the InTest time of core c at TAM width w.
func InTestTime(c *soc.Core, w int) (int64, error) {
	d, err := Combine(c, w)
	if err != nil {
		return 0, err
	}
	return d.TestTime(c.Patterns), nil
}

// TimeTable precomputes InTest times for a set of cores at every width
// from 1 to maxWidth. It is the lookup structure the TAM optimizers use
// so that architecture evaluation never re-runs wrapper design.
type TimeTable struct {
	maxWidth int
	byCore   map[int][]int64 // core ID -> [width-1] -> time
}

// NewTimeTable builds the table for all cores of s.
func NewTimeTable(s *soc.SOC, maxWidth int) (*TimeTable, error) {
	if maxWidth < 1 {
		return nil, fmt.Errorf("wrapper: maxWidth must be >= 1, got %d", maxWidth)
	}
	t := &TimeTable{maxWidth: maxWidth, byCore: make(map[int][]int64, s.NumCores())}
	for _, c := range s.Cores() {
		times := make([]int64, maxWidth)
		for w := 1; w <= maxWidth; w++ {
			tt, err := InTestTime(c, w)
			if err != nil {
				return nil, err
			}
			times[w-1] = tt
		}
		t.byCore[c.ID] = times
	}
	return t, nil
}

// MaxWidth returns the largest width the table covers.
func (t *TimeTable) MaxWidth() int { return t.maxWidth }

// Time returns the InTest time of the core with the given ID at width w.
// Widths above the table's maximum clamp to the maximum: InTest time is
// non-increasing in width, and the extra wires beyond maxWidth cannot
// help a single core more than maxWidth wires do.
func (t *TimeTable) Time(coreID, w int) int64 {
	times, ok := t.byCore[coreID]
	if !ok {
		panic(fmt.Sprintf("wrapper: TimeTable has no core %d", coreID))
	}
	if w < 1 {
		panic(fmt.Sprintf("wrapper: width %d < 1", w))
	}
	if w > t.maxWidth {
		w = t.maxWidth
	}
	return times[w-1]
}

// SIDesign describes the wrapper configuration used in SI (ExTest)
// mode: wrapper scan chains contain boundary cells only, split into
// balanced input-cell chains (loading receiver-side sensor
// configuration) and output-cell chains (loading the transition
// stimuli).
type SIDesign struct {
	Width     int
	InChains  []int // balanced WIC chain lengths
	OutChains []int // balanced WOC chain lengths
}

// NewSIDesign balances a core's boundary cells over w wrapper chains
// for SI test mode.
func NewSIDesign(c *soc.Core, w int) (*SIDesign, error) {
	if w < 1 {
		return nil, fmt.Errorf("wrapper: width must be >= 1, got %d", w)
	}
	d := &SIDesign{Width: w, InChains: make([]int, w), OutChains: make([]int, w)}
	distribute(d.InChains, c.WIC())
	distribute(d.OutChains, c.WOC())
	return d, nil
}

// ShiftCycles returns the cycles needed to shift one SI stimulus
// through the output chains: the longest WOC chain. It always equals
// SIShiftCycles(c.WOC(), w) — balanced unit-cell chains are exactly the
// ceiling division — and the redundancy is checked in tests.
func (d *SIDesign) ShiftCycles() int64 {
	return int64(maxOf(d.OutChains))
}

// SIShiftCycles returns the per-pattern shift cycle count contributed by a
// core with nWOC wrapper output cells on a rail of width w in SI test
// mode. In SI mode the wrapper scan chains contain wrapper cells only and
// are balanced, so shifting one pattern through the core's boundary costs
// ceil(nWOC / w) cycles on the rail.
func SIShiftCycles(nWOC, w int) int64 {
	if w < 1 {
		panic(fmt.Sprintf("wrapper: width %d < 1", w))
	}
	return int64((nWOC + w - 1) / w)
}
