package wrapper

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sitam/internal/soc"
)

func testCore() *soc.Core {
	return &soc.Core{ID: 1, Inputs: 10, Outputs: 8, Bidirs: 2, ScanChains: []int{30, 20, 10, 5}, Patterns: 100}
}

func TestCombineWidthOne(t *testing.T) {
	c := testCore()
	d, err := Combine(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Everything concatenates on one chain.
	wantIn := c.ScanBits() + c.WIC()  // 65 + 12
	wantOut := c.ScanBits() + c.WOC() // 65 + 10
	if d.MaxScanIn() != wantIn {
		t.Errorf("MaxScanIn = %d, want %d", d.MaxScanIn(), wantIn)
	}
	if d.MaxScanOut() != wantOut {
		t.Errorf("MaxScanOut = %d, want %d", d.MaxScanOut(), wantOut)
	}
}

func TestCombineRejectsBadWidth(t *testing.T) {
	if _, err := Combine(testCore(), 0); err == nil {
		t.Error("Combine accepted width 0")
	}
	if _, err := Combine(testCore(), -3); err == nil {
		t.Error("Combine accepted negative width")
	}
}

func TestCombinePreservesCells(t *testing.T) {
	c := testCore()
	for w := 1; w <= 8; w++ {
		d, err := Combine(c, w)
		if err != nil {
			t.Fatal(err)
		}
		sumIn, sumOut := 0, 0
		for i := 0; i < w; i++ {
			sumIn += d.ScanIn[i]
			sumOut += d.ScanOut[i]
		}
		if sumIn != c.ScanBits()+c.WIC() {
			t.Errorf("w=%d: scan-in cells %d, want %d", w, sumIn, c.ScanBits()+c.WIC())
		}
		if sumOut != c.ScanBits()+c.WOC() {
			t.Errorf("w=%d: scan-out cells %d, want %d", w, sumOut, c.ScanBits()+c.WOC())
		}
	}
}

func TestCombineBottleneckChain(t *testing.T) {
	// A single long chain bounds the wrapper scan length from below no
	// matter how wide the TAM is.
	c := &soc.Core{ID: 1, Inputs: 4, Outputs: 4, ScanChains: []int{100, 5, 5}, Patterns: 10}
	for _, w := range []int{3, 8, 64} {
		d, err := Combine(c, w)
		if err != nil {
			t.Fatal(err)
		}
		if d.MaxScanIn() < 100 || d.MaxScanOut() < 100 {
			t.Errorf("w=%d: max chain (%d,%d) below the 100-FF chain", w, d.MaxScanIn(), d.MaxScanOut())
		}
	}
}

func TestTestTimeFormula(t *testing.T) {
	d := &Design{Width: 2, ScanIn: []int{10, 8}, ScanOut: []int{7, 6}}
	// T = (1+max(10,7))*p + min(10,7) = 11p + 7
	if got := d.TestTime(5); got != 11*5+7 {
		t.Errorf("TestTime(5) = %d, want %d", got, 11*5+7)
	}
	if got := d.TestTime(0); got != 0 {
		t.Errorf("TestTime(0) = %d, want 0", got)
	}
}

func TestInTestTimeMonotonicInWidth(t *testing.T) {
	for _, c := range soc.MustLoadBenchmark("p34392").Cores() {
		prev := int64(-1)
		for w := 1; w <= 40; w++ {
			tt, err := InTestTime(c, w)
			if err != nil {
				t.Fatal(err)
			}
			if prev >= 0 && tt > prev {
				t.Errorf("core %d: InTest time increased from %d to %d at width %d", c.ID, prev, tt, w)
			}
			prev = tt
		}
	}
}

func TestCombineBalanceProperty(t *testing.T) {
	// Property: after distributing unit cells, the chain lengths differ
	// by at most the largest single placed item (for the IO cells, 1,
	// unless a scan chain forces imbalance).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nChains := 1 + rng.Intn(6)
		chains := make([]int, nChains)
		maxChain := 0
		for i := range chains {
			chains[i] = 1 + rng.Intn(50)
			if chains[i] > maxChain {
				maxChain = chains[i]
			}
		}
		c := &soc.Core{
			ID:         1,
			Inputs:     rng.Intn(100),
			Outputs:    1 + rng.Intn(100),
			ScanChains: chains,
			Patterns:   1 + rng.Intn(50),
		}
		w := 1 + rng.Intn(10)
		d, err := Combine(c, w)
		if err != nil {
			return false
		}
		// Lengths are non-negative and the spread of scan-in lengths is
		// bounded by the longest internal chain (BFD guarantee for item
		// sizes <= maxChain) when there are at least as many items as
		// chains; always bounded by max(maxChain, total).
		minIn, maxIn := d.ScanIn[0], d.ScanIn[0]
		for _, l := range d.ScanIn {
			if l < 0 {
				return false
			}
			if l < minIn {
				minIn = l
			}
			if l > maxIn {
				maxIn = l
			}
		}
		if minIn > 0 && maxIn-minIn > maxChain {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistributeExact(t *testing.T) {
	cases := []struct {
		base []int
		n    int
		want []int
	}{
		{[]int{0, 0, 0}, 7, []int{3, 2, 2}},
		{[]int{5, 0, 0}, 4, []int{5, 2, 2}},
		{[]int{5, 0, 0}, 12, []int{6, 6, 5}},
		{[]int{3, 3, 3}, 0, []int{3, 3, 3}},
		{[]int{10, 1}, 2, []int{10, 3}},
	}
	for _, tc := range cases {
		got := append([]int(nil), tc.base...)
		distribute(got, tc.n)
		sumGot, sumWant := 0, 0
		maxGot, maxWant := 0, 0
		for i := range got {
			sumGot += got[i]
			sumWant += tc.want[i]
			if got[i] > maxGot {
				maxGot = got[i]
			}
			if tc.want[i] > maxWant {
				maxWant = tc.want[i]
			}
		}
		if sumGot != sumWant || maxGot != maxWant {
			t.Errorf("distribute(%v, %d) = %v, want balance like %v", tc.base, tc.n, got, tc.want)
		}
	}
}

func TestTimeTable(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	tt, err := NewTimeTable(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tt.MaxWidth() != 16 {
		t.Errorf("MaxWidth = %d", tt.MaxWidth())
	}
	for _, c := range s.Cores() {
		for w := 1; w <= 16; w++ {
			want, err := InTestTime(c, w)
			if err != nil {
				t.Fatal(err)
			}
			if got := tt.Time(c.ID, w); got != want {
				t.Errorf("Time(%d,%d) = %d, want %d", c.ID, w, got, want)
			}
		}
		// Clamping above max width.
		if got := tt.Time(c.ID, 100); got != tt.Time(c.ID, 16) {
			t.Errorf("Time(%d,100) = %d, want clamp to width 16 = %d", c.ID, got, tt.Time(c.ID, 16))
		}
	}
}

func TestTimeTablePanics(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	tt, err := NewTimeTable(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "unknown core", func() { tt.Time(999, 1) })
	mustPanic(t, "width 0", func() { tt.Time(1, 0) })
	if _, err := NewTimeTable(s, 0); err == nil {
		t.Error("NewTimeTable accepted maxWidth 0")
	}
}

func TestSIShiftCycles(t *testing.T) {
	cases := []struct {
		woc, w int
		want   int64
	}{
		{32, 1, 32},
		{32, 8, 4},
		{33, 8, 5},
		{0, 8, 0},
		{7, 64, 1},
	}
	for _, tc := range cases {
		if got := SIShiftCycles(tc.woc, tc.w); got != tc.want {
			t.Errorf("SIShiftCycles(%d,%d) = %d, want %d", tc.woc, tc.w, got, tc.want)
		}
	}
	mustPanic(t, "zero width", func() { SIShiftCycles(8, 0) })
}

func TestSIDesignMatchesShiftFormula(t *testing.T) {
	f := func(out uint16, in uint16, w uint8) bool {
		width := 1 + int(w%32)
		c := &soc.Core{ID: 1, Inputs: int(in % 500), Outputs: 1 + int(out%500), Patterns: 1}
		d, err := NewSIDesign(c, width)
		if err != nil {
			return false
		}
		sumIn, sumOut := 0, 0
		for i := 0; i < width; i++ {
			sumIn += d.InChains[i]
			sumOut += d.OutChains[i]
		}
		if sumIn != c.WIC() || sumOut != c.WOC() {
			return false
		}
		return d.ShiftCycles() == SIShiftCycles(c.WOC(), width)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if _, err := NewSIDesign(testCore(), 0); err == nil {
		t.Error("NewSIDesign accepted width 0")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestInTestTimeRejectsBadWidth pins the error contract for widths
// below 1: callers get an error, not a panic, so untrusted width input
// cannot crash a CLI or embedding process.
func TestInTestTimeRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, -1, -100} {
		if _, err := InTestTime(testCore(), w); err == nil {
			t.Errorf("InTestTime(width=%d) accepted, want error", w)
		}
	}
}
