package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a metrics
// Snapshot. The encoder is zero-dependency and deterministic: families
// are emitted counters first, then gauges, then histograms, each in
// sorted key order, so the output is golden-testable and two scrapes of
// the same snapshot are byte-identical. Label-keyed series (see Labels)
// are grouped under one family; bucketed histograms render the full
// _bucket/_sum/_count triple, plain ones the implicit +Inf bucket only.
// ValidatePrometheus is the matching strict parser — the format
// validator the exposition tests and the sitamd telemetry e2e run
// against every scrape.

// PromContentType is the Content-Type a 0.0.4 text exposition is
// served under.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promFamily is one metric family being assembled for exposition.
type promFamily struct {
	name   string // sanitized family name
	kind   string // counter | gauge | histogram
	series []promSeries
}

type promSeries struct {
	labels string // rendered {k="v",...} block, "" when unlabeled
	value  int64
	hist   *HistogramStats
}

// WritePrometheus renders the snapshot in the Prometheus text format.
// Safe on a nil snapshot (writes nothing).
func WritePrometheus(w io.Writer, s *Snapshot) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, fam := range promFamilies(s) {
		fmt.Fprintf(bw, "# HELP %s sitam %s %s\n", fam.name, fam.kind, fam.name)
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, ser := range fam.series {
			if fam.kind != "histogram" {
				fmt.Fprintf(bw, "%s%s %d\n", fam.name, ser.labels, ser.value)
				continue
			}
			st := ser.hist
			for _, b := range st.Buckets {
				fmt.Fprintf(bw, "%s_bucket%s %d\n",
					fam.name, withLabel(ser.labels, "le", strconv.FormatInt(b.UpperBound, 10)), b.Count)
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", fam.name, withLabel(ser.labels, "le", "+Inf"), st.Count)
			fmt.Fprintf(bw, "%s_sum%s %d\n", fam.name, ser.labels, st.Sum)
			fmt.Fprintf(bw, "%s_count%s %d\n", fam.name, ser.labels, st.Count)
		}
	}
	return bw.Flush()
}

// promFamilies groups a snapshot's flat keys into exposition families.
func promFamilies(s *Snapshot) []promFamily {
	var out []promFamily
	collect := func(kind string, names []string, value func(string) promSeries) {
		byName := make(map[string]*promFamily)
		var order []string
		for _, key := range names {
			name, labels := ParseKey(key)
			name = sanitizeMetricName(name)
			fam, ok := byName[name]
			if !ok {
				fam = &promFamily{name: name, kind: kind}
				byName[name] = fam
				order = append(order, name)
			}
			ser := value(key)
			ser.labels = renderLabels(labels)
			fam.series = append(fam.series, ser)
		}
		sort.Strings(order)
		for _, name := range order {
			out = append(out, *byName[name])
		}
	}
	collect("counter", s.CounterNames(), func(key string) promSeries {
		return promSeries{value: s.Counters[key]}
	})
	collect("gauge", s.GaugeNames(), func(key string) promSeries {
		return promSeries{value: s.Gauges[key]}
	})
	collect("histogram", s.HistogramNames(), func(key string) promSeries {
		st := s.Histograms[key]
		return promSeries{hist: &st}
	})
	return out
}

// renderLabels rebuilds the canonical {k="v",...} block from parsed
// pairs, sanitizing label names. Empty pairs render as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLabel appends one more label pair to a rendered label block.
func withLabel(block, key, value string) string {
	pair := key + `="` + value + `"`
	if block == "" {
		return "{" + pair + "}"
	}
	return block[:len(block)-1] + "," + pair + "}"
}

// sanitizeMetricName maps an arbitrary registry name onto the metric
// name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	return sanitizeName(name, true)
}

// sanitizeLabelName maps a label key onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	return sanitizeName(name, false)
}

func sanitizeName(name string, allowColon bool) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(allowColon && r == ':') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ValidatePrometheus parses a text exposition strictly and checks the
// invariants a Prometheus scraper relies on: well-formed comment and
// sample lines, every sampled family declared by a preceding TYPE line,
// no duplicate series, and — for histogram families — cumulative
// buckets that are monotone in le, include le="+Inf", and agree with
// the _count sample. It returns the first violation found.
func ValidatePrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	types := map[string]string{} // family -> declared type
	seen := map[string]bool{}    // "name{labels}" -> sampled
	type histSeries struct {
		buckets map[string]float64 // le -> cumulative count
		count   float64
		hasCnt  bool
		hasSum  bool
	}
	hists := map[string]*histSeries{} // family + base labels -> series
	histSeriesFor := func(key string) *histSeries {
		h, ok := hists[key]
		if !ok {
			h = &histSeries{buckets: map[string]float64{}}
			hists[key] = h
		}
		return h
	}

	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := validateComment(text, types); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		serKey := name + renderParsed(labels)
		if seen[serKey] {
			return fmt.Errorf("line %d: duplicate series %s", line, serKey)
		}
		seen[serKey] = true

		family, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name && types[base] == "histogram" {
				family, suffix = base, s
				break
			}
		}
		typ, declared := types[family]
		if !declared {
			return fmt.Errorf("line %d: sample %s before any TYPE declaration", line, name)
		}
		if typ != "histogram" {
			continue
		}
		if suffix == "" {
			return fmt.Errorf("line %d: histogram family %s sampled without _bucket/_sum/_count suffix", line, family)
		}
		base, le, hasLE := splitLE(labels)
		h := histSeriesFor(family + base)
		switch suffix {
		case "_bucket":
			if !hasLE {
				return fmt.Errorf("line %d: %s_bucket without le label", line, family)
			}
			if _, dup := h.buckets[le]; dup {
				return fmt.Errorf("line %d: duplicate bucket le=%q for %s", line, le, family)
			}
			h.buckets[le] = value
		case "_sum":
			h.hasSum = true
		case "_count":
			h.count, h.hasCnt = value, true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	// Histogram closing invariants, per series.
	keys := sortedKeys(hists)
	for _, key := range keys {
		h := hists[key]
		if !h.hasCnt || !h.hasSum {
			return fmt.Errorf("histogram %s missing _sum or _count", key)
		}
		inf, ok := h.buckets["+Inf"]
		if !ok {
			return fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", key)
		}
		if inf != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", key, inf, h.count)
		}
		type bound struct {
			le  float64
			cum float64
		}
		bounds := make([]bound, 0, len(h.buckets))
		for le, cum := range h.buckets {
			f, err := parseLE(le)
			if err != nil {
				return fmt.Errorf("histogram %s: %w", key, err)
			}
			bounds = append(bounds, bound{le: f, cum: cum})
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i].le < bounds[j].le })
		for i := 1; i < len(bounds); i++ {
			if bounds[i].cum < bounds[i-1].cum {
				return fmt.Errorf("histogram %s: bucket counts not cumulative (le=%g count %g < %g)",
					key, bounds[i].le, bounds[i].cum, bounds[i-1].cum)
			}
		}
	}
	return nil
}

func validateComment(text string, types map[string]string) error {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", text)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		types[name] = typ
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", text)
		}
	}
	return nil
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(text string) (name string, labels []Label, value float64, err error) {
	i := 0
	for i < len(text) && text[i] != '{' && text[i] != ' ' && text[i] != '\t' {
		i++
	}
	name = text[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := text[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label block in %q", text)
		}
		parsed, plabels := ParseKey(name + rest[:end+1])
		if parsed != name {
			return "", nil, 0, fmt.Errorf("malformed label block in %q", text)
		}
		for _, l := range plabels {
			if !validLabelName(l.Key) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", l.Key)
			}
		}
		labels = plabels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("want value [timestamp] after %q, got %q", name, rest)
	}
	value, err = parseLE(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLE parses a sample or le value, accepting the +Inf/-Inf/NaN
// spellings of the text format.
func parseLE(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// splitLE removes the le label from a parsed label set, returning the
// rendered base block and the le value.
func splitLE(labels []Label) (base string, le string, ok bool) {
	rest := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Key == "le" {
			le, ok = l.Value, true
			continue
		}
		rest = append(rest, l)
	}
	return renderParsed(rest), le, ok
}

func renderParsed(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}
