package obs

// Trace post-processing shared by the sitrace summarizer, the CLIs'
// -stats output and the differential tests: per-phase aggregation of
// the span events and the convergence curve of the run.

// PhaseAgg aggregates the phase_end events of one phase.
type PhaseAgg struct {
	// Phase is the phase name.
	Phase string

	// Spans is the number of closed spans of the phase.
	Spans int

	// WallNS is the summed wall-clock duration of the spans.
	WallNS int64

	// N is the summed phase-specific count (see Event.N).
	N int64
}

// AggregatePhases folds a trace's phase_end events into per-phase
// aggregates, in order of each phase's first appearance.
func AggregatePhases(events []Event) []PhaseAgg {
	index := make(map[string]int)
	var out []PhaseAgg
	for i := range events {
		ev := &events[i]
		if ev.Type != PhaseEnd {
			continue
		}
		j, ok := index[ev.Phase]
		if !ok {
			j = len(out)
			index[ev.Phase] = j
			out = append(out, PhaseAgg{Phase: ev.Phase})
		}
		out[j].Spans++
		out[j].WallNS += ev.DurNS
		out[j].N += ev.N
	}
	return out
}

// CurvePoint is one point of a run's convergence curve.
type CurvePoint struct {
	// Seq is the sequence number of the event that improved the best.
	Seq uint64

	// Evals is the cumulative number of candidate_evaluated events at
	// that point.
	Evals int64

	// Best is the incumbent objective after the improvement.
	Best int64
}

// Curve extracts the convergence curve of a trace: the running minimum
// of the Best field over the events that carry one (Best > 0; phases
// without an incumbent objective leave Best at zero). For an SI-aware
// optimization trace the final point's Best equals the returned
// Breakdown.TimeSOC — the engine's incumbent objective is monotone and
// the closing "si schedule" span re-scores the returned architecture
// with the same cost model. An empty slice means the trace carries no
// objective at all.
func Curve(events []Event) []CurvePoint {
	var out []CurvePoint
	var evals int64
	for i := range events {
		ev := &events[i]
		if ev.Type == CandidateEvaluated {
			evals++
		}
		if ev.Best <= 0 {
			continue
		}
		if len(out) == 0 || ev.Best < out[len(out)-1].Best {
			out = append(out, CurvePoint{Seq: ev.Seq, Evals: evals, Best: ev.Best})
		}
	}
	return out
}
