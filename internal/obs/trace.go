package obs

import (
	"io"
	"sync"
	"time"
)

// Sink receives search-trace events. Emitters hold a Sink and guard
// every emission with a nil check, so a disabled trace costs one
// branch. Implementations: *Tracer (ordered, locked, the collector a
// run hands out) and *Local (unlocked per-worker buffer drained into a
// Tracer in deterministic order).
type Sink interface {
	Emit(Event)
}

// Tracer is the ordered trace collector of one run. It assigns
// contiguous sequence numbers under a mutex; emission is cheap (an
// append) but serialized, which is why concurrent regions emit into
// per-worker Local buffers instead and drain them in a deterministic
// order afterwards.
type Tracer struct {
	mu     sync.Mutex
	job    string
	events []Event
}

// NewTracer returns an empty trace collector.
func NewTracer() *Tracer {
	return &Tracer{}
}

// NewJobTracer returns a trace collector that stamps the given
// job-correlation ID into every event it collects. Emitters stay
// job-agnostic — per-worker Local buffers drained into the tracer pick
// the ID up at collection time, so one engine run recorded for job
// j000042 carries "j000042" on every event of its flight recording.
func NewJobTracer(job string) *Tracer {
	return &Tracer{job: job}
}

// Emit implements Sink: stamps the event with the next sequence number
// (and the collector's job-correlation ID, if any) and records it.
func (t *Tracer) Emit(ev Event) {
	t.mu.Lock()
	ev.Seq = uint64(len(t.events))
	if t.job != "" && ev.Job == "" {
		ev.Job = t.job
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of collected events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the collected trace.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Since returns a copy of the events with sequence numbers >= n — the
// incremental read used by followers (e.g. the sitamd SSE stream) that
// poll a live trace without copying the growing prefix on every poll.
func (t *Tracer) Since(n int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(t.events) {
		return nil
	}
	return append([]Event(nil), t.events[n:]...)
}

// WriteJSONL serializes the collected trace one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	t.mu.Lock()
	events := t.events
	t.mu.Unlock()
	return WriteJSONL(w, events)
}

// Local is an unlocked event buffer for one worker (or one ILS
// restart). Workers emit into their own Local without synchronization;
// the coordinator drains the buffers into the shared Tracer in a
// deterministic order once the concurrent region is over.
type Local struct {
	events []Event
}

// NewLocal returns an empty per-worker buffer.
func NewLocal() *Local {
	return &Local{}
}

// Emit implements Sink.
func (l *Local) Emit(ev Event) {
	l.events = append(l.events, ev)
}

// SpanHandle is an open phase span returned by Span.
type SpanHandle struct {
	sink  Sink
	phase string
	start time.Time
}

// Span emits a PhaseStart for phase on sink and returns a handle whose
// End emits the matching PhaseEnd. A nil sink yields an inert handle
// and takes no timestamps, so callers bracket phases unconditionally.
func Span(sink Sink, phase string) SpanHandle {
	if sink == nil {
		return SpanHandle{}
	}
	sink.Emit(Event{Type: PhaseStart, Phase: phase})
	return SpanHandle{sink: sink, phase: phase, start: time.Now()}
}

// End closes the span with the incumbent objective (0 when the phase
// has none) and the phase-specific count n.
func (s SpanHandle) End(best, n int64) {
	if s.sink == nil {
		return
	}
	s.sink.Emit(Event{
		Type: PhaseEnd, Phase: s.phase,
		Best: best, N: n, DurNS: int64(time.Since(s.start)),
	})
}

// Drain replays the buffered events of each Local into dst in argument
// order, then empties the buffers. Sequence numbers are re-assigned by
// dst, so the drained trace is as deterministic as the drain order.
func Drain(dst Sink, locals ...*Local) {
	if dst == nil {
		return
	}
	for _, l := range locals {
		if l == nil {
			continue
		}
		for _, ev := range l.events {
			dst.Emit(ev)
		}
		l.events = nil
	}
}
