package obs

import (
	"strings"
	"testing"
)

func TestJobTracerStampsEvents(t *testing.T) {
	tr := NewJobTracer("j000007")
	sp := Span(tr, "compaction")
	sp.End(0, 3)
	// A pre-stamped event (e.g. a concatenated foreign recording) keeps
	// its own ID.
	tr.Emit(Event{Type: ILSKick, Kick: 1, Job: "j000001"})

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Job != "j000007" || events[1].Job != "j000007" {
		t.Errorf("span events not stamped: %+v", events[:2])
	}
	if events[2].Job != "j000001" {
		t.Errorf("pre-stamped event overwritten: %+v", events[2])
	}
	// Drained Local buffers pick the ID up at collection time.
	l := NewLocal()
	l.Emit(Event{Type: MergeRejected, Phase: "merge"})
	Drain(tr, l)
	if got := tr.Events()[3]; got.Job != "j000007" {
		t.Errorf("drained event not stamped: %+v", got)
	}
}

func TestValidateJobSpans(t *testing.T) {
	// Balanced per job, interleaved: fine.
	ok := []Event{
		{Type: PhaseStart, Phase: "merge", Job: "a"},
		{Type: PhaseStart, Phase: "merge", Job: "b"},
		{Type: PhaseEnd, Phase: "merge", Job: "a"},
		{Type: PhaseEnd, Phase: "merge", Job: "b"},
	}
	if err := ValidateJobSpans(ok); err != nil {
		t.Errorf("balanced interleaved trace rejected: %v", err)
	}

	// Globally balanced but per-job unbalanced: job a opened the span,
	// job b closed it. ValidateSpans alone cannot see this.
	crossed := []Event{
		{Type: PhaseStart, Phase: "merge", Job: "a"},
		{Type: PhaseEnd, Phase: "merge", Job: "b"},
	}
	if err := ValidateSpans(crossed); err != nil {
		t.Fatalf("global span check unexpectedly failed: %v", err)
	}
	err := ValidateJobSpans(crossed)
	if err == nil || !strings.Contains(err.Error(), `job "a"`) {
		t.Errorf("ValidateJobSpans(crossed) = %v, want per-job error", err)
	}

	// The empty ID (CLI traces) is checked too.
	bare := []Event{{Type: PhaseEnd, Phase: "merge"}}
	if err := ValidateJobSpans(bare); err == nil {
		t.Error("unbalanced bare trace accepted")
	}
}
