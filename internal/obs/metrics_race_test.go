package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestRegistryConcurrentWriters hammers one registry from many
// goroutines — lazy handle creation, counters, gauges, bucketed
// histograms and concurrent snapshots — and checks the totals and the
// histogram invariants afterwards. Run under -race this is the data
// race proof for the registry; the invariant checks also pin that a
// snapshot taken mid-write stays internally consistent (cumulative
// buckets never exceed the count).
func TestRegistryConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	const writers = 8
	const perWriter = 2000
	bounds := []int64{10, 100, 1000}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				reg.Counter("hits").Inc()
				reg.Counter(Labels("jobs_total", "state", "done")).Inc()
				reg.Gauge("depth").Set(int64(i))
				reg.HistogramBuckets("lat_ms", bounds).Observe(int64(i % 1500))
			}
		}(w)
	}
	// Concurrent readers: snapshots and expositions while writes race.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Snapshot()
				checkHistInvariants(t, snap)
				var buf bytes.Buffer
				if err := WritePrometheus(&buf, snap); err != nil {
					t.Error(err)
					return
				}
				if err := ValidatePrometheus(&buf); err != nil {
					t.Errorf("mid-write exposition invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	snap := reg.Snapshot()
	if got := snap.Counter("hits"); got != writers*perWriter {
		t.Errorf("hits = %d, want %d", got, writers*perWriter)
	}
	if got := snap.Counter(Labels("jobs_total", "state", "done")); got != writers*perWriter {
		t.Errorf("labeled counter = %d, want %d", got, writers*perWriter)
	}
	st := snap.Histograms["lat_ms"]
	if st.Count != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", st.Count, writers*perWriter)
	}
	if len(st.Buckets) != 3 || st.Buckets[2].Count >= st.Count {
		t.Errorf("buckets = %+v (count %d)", st.Buckets, st.Count)
	}
}

func checkHistInvariants(t *testing.T, snap *Snapshot) {
	t.Helper()
	for _, name := range snap.HistogramNames() {
		st := snap.Histograms[name]
		var prev int64
		for _, b := range st.Buckets {
			if b.Count < prev {
				t.Errorf("%s: bucket le=%d count %d < previous %d", name, b.UpperBound, b.Count, prev)
			}
			if b.Count > st.Count {
				t.Errorf("%s: bucket le=%d count %d > count %d", name, b.UpperBound, b.Count, st.Count)
			}
			prev = b.Count
		}
	}
}

func TestHistogramBucketsDedupSort(t *testing.T) {
	h := NewHistogramBuckets([]int64{100, 10, 100, 1})
	for _, v := range []int64{0, 5, 50, 500} {
		h.Observe(v)
	}
	st := h.Stats()
	want := []HistogramBucket{{1, 1}, {10, 2}, {100, 3}}
	if len(st.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", st.Buckets)
	}
	for i, b := range want {
		if st.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, st.Buckets[i], b)
		}
	}
	if st.Count != 4 || st.Sum != 555 {
		t.Errorf("count/sum = %d/%d", st.Count, st.Sum)
	}
}
