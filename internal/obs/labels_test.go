package obs

import "testing"

func TestLabelsCanonical(t *testing.T) {
	a := Labels("jobs_total", "state", "done")
	if a != `jobs_total{state="done"}` {
		t.Fatalf("Labels = %q", a)
	}
	// Argument order never splits a series.
	x := Labels("m", "b", "2", "a", "1")
	y := Labels("m", "a", "1", "b", "2")
	if x != y || x != `m{a="1",b="2"}` {
		t.Fatalf("Labels not canonical: %q vs %q", x, y)
	}
	if got := Labels("m"); got != "m" {
		t.Fatalf("Labels with no pairs = %q", got)
	}
	// An odd trailing key keeps the series visible instead of vanishing.
	if got := Labels("m", "k"); got != `m{k=""}` {
		t.Fatalf("Labels odd kv = %q", got)
	}
}

func TestLabelsEscaping(t *testing.T) {
	key := Labels("m", "path", `a"b\c`+"\n")
	name, labels := ParseKey(key)
	if name != "m" || len(labels) != 1 {
		t.Fatalf("ParseKey(%q) = %q, %v", key, name, labels)
	}
	if labels[0].Value != `a"b\c`+"\n" {
		t.Fatalf("roundtrip value = %q", labels[0].Value)
	}
}

func TestParseKey(t *testing.T) {
	name, labels := ParseKey(`phase_ms{phase="si schedule",state="done"}`)
	if name != "phase_ms" || len(labels) != 2 {
		t.Fatalf("ParseKey = %q, %v", name, labels)
	}
	if labels[0] != (Label{"phase", "si schedule"}) || labels[1] != (Label{"state", "done"}) {
		t.Fatalf("labels = %v", labels)
	}

	// Bare names pass through.
	if name, labels := ParseKey("evals"); name != "evals" || labels != nil {
		t.Fatalf("bare ParseKey = %q, %v", name, labels)
	}

	// Malformed blocks are kept verbatim rather than half-parsed.
	for _, bad := range []string{`m{k=v}`, `m{k="v`, `m{k="v" j="w"}`} {
		if name, labels := ParseKey(bad); name != bad || labels != nil {
			t.Errorf("ParseKey(%q) = %q, %v; want verbatim", bad, name, labels)
		}
	}
}
