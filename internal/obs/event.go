// Package obs is the zero-dependency observability layer of the
// optimization stack: a structured search-trace (typed events collected
// by ordered sinks and serialized as JSONL), and a registry of atomic
// counters, gauges and histograms.
//
// The package is a leaf — it imports only the standard library — so
// every implementation package (engine, schedulers, partitioner,
// compaction) can emit into it without import cycles. All hooks are
// nil-safe: a nil sink or nil metric costs one branch on the hot path,
// which is the contract that keeps observability free when disabled.
//
// # Determinism
//
// A trace is deterministic for a fixed seed and worker count, with two
// documented exceptions: the dur_ns field of phase-end events carries
// wall-clock time (diff traces with it zeroed — see Event.Canonical),
// and cache_hit/cache_miss events are emitted only by single-worker
// runs, because under concurrent evaluation the hit/miss split of the
// memoization cache is timing-dependent (racing double-misses). Cache
// totals are always available through the metrics registry.
package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Type identifies one kind of search-trace event.
type Type string

// The event vocabulary of the search trace.
const (
	// PhaseStart and PhaseEnd bracket one optimization phase (start
	// solution, the merge loops, reshuffle, ILS, partitioning,
	// compaction, SI scheduling). PhaseEnd carries the wall-clock
	// duration, a phase-specific count N (objective evaluations for
	// engine phases, compacted patterns for compaction, explored nodes
	// for the exact scheduler) and the incumbent objective.
	PhaseStart Type = "phase_start"
	PhaseEnd   Type = "phase_end"

	// CandidateEvaluated reports one scored candidate of a batch: its
	// index within the batch and its objective. Emitted by the
	// coordinating goroutine after the batch completes, in candidate
	// order, so it is identical at any worker count.
	CandidateEvaluated Type = "candidate_evaluated"

	// MergeAccepted and MergeRejected close one improvement batch
	// (a mergeTAMs enumeration or a reshuffle round): accepted batches
	// carry the winning candidate and the new incumbent objective,
	// rejected ones the surviving incumbent.
	MergeAccepted Type = "merge_accepted"
	MergeRejected Type = "merge_rejected"

	// ILSKick reports one iterated-local-search perturbation round:
	// the kick number, the walk's objective after local search, and
	// the best objective seen so far.
	ILSKick Type = "ils_kick"

	// SIGroupScheduled reports one SI test group placed by Algorithm 1
	// on the final architecture: begin/end times, the involved rail
	// count, the bottleneck rail and the pattern count.
	SIGroupScheduled Type = "si_group_scheduled"

	// CacheHit and CacheMiss report one evaluation-cache lookup.
	// Emitted only by single-worker runs (see the package comment).
	CacheHit  Type = "cache_hit"
	CacheMiss Type = "cache_miss"

	// CacheLoad reports the one-time seeding of the evaluation cache
	// from a persistent cache file: N carries the entry count loaded.
	// Loads are not hits — they are inventory carried over from a
	// previous process, kept distinct so warm-start runs cannot claim a
	// hit rate they did not earn this run.
	CacheLoad Type = "cache_load"

	// EvalIncremental reports one incremental objective evaluation: N
	// carries the dirty-rail count, Recomputed/Memoized the SI groups
	// whose time was recomputed versus served from the composition
	// memo. Emitted only by single-worker runs, like the cache events
	// (the memo hit/miss split is timing-dependent under concurrency).
	EvalIncremental Type = "eval_incremental"

	// DeadlineHit reports an anytime interruption: the phase that was
	// cut short and the cause ("deadline", "interrupted" or "budget").
	DeadlineHit Type = "deadline_hit"
)

// knownTypes is the closed set of event types a valid trace may use.
var knownTypes = map[Type]bool{
	PhaseStart: true, PhaseEnd: true,
	CandidateEvaluated: true,
	MergeAccepted:      true, MergeRejected: true,
	ILSKick:          true,
	SIGroupScheduled: true,
	CacheHit:         true, CacheMiss: true,
	CacheLoad:       true,
	EvalIncremental: true,
	DeadlineHit:     true,
}

// Event is one search-trace record. The struct is flat — every event
// type uses a documented subset of the fields and leaves the rest at
// their zero value, which the JSONL encoding omits.
type Event struct {
	// Seq is the event's position in the trace, assigned by the
	// collecting Tracer: contiguous from 0.
	Seq uint64 `json:"seq"`

	// Type is the event kind; one of the Type constants.
	Type Type `json:"type"`

	// Phase names the optimization phase the event belongs to.
	Phase string `json:"phase,omitempty"`

	// Cand is the candidate index within its batch (CandidateEvaluated)
	// or the winning candidate index (MergeAccepted).
	Cand int `json:"cand,omitempty"`

	// Obj is the objective value attached to the event: the scored
	// candidate's objective, or the incumbent after a batch closes.
	Obj int64 `json:"obj,omitempty"`

	// Best is the best (incumbent) objective of the enclosing search
	// at emission time. The convergence curve of a run is the running
	// minimum of Best over the trace; it ends at the run's final
	// objective.
	Best int64 `json:"best,omitempty"`

	// N is a per-type count: batch size on MergeAccepted/Rejected,
	// objective evaluations on engine PhaseEnd, compacted patterns on
	// compaction PhaseEnd, branch-and-bound nodes on the exact
	// scheduler's PhaseEnd, pattern count on SIGroupScheduled.
	N int64 `json:"n,omitempty"`

	// Kick is the 1-based ILS perturbation round.
	Kick int `json:"kick,omitempty"`

	// Seed is the random seed of the emitting search (ILS walks).
	Seed int64 `json:"seed,omitempty"`

	// Group names an SI test group (SIGroupScheduled, compaction).
	Group string `json:"group,omitempty"`

	// Rails is the number of involved rails (SIGroupScheduled) or the
	// rail count of the accepted architecture (MergeAccepted).
	Rails int `json:"rails,omitempty"`

	// Rail is the bottleneck rail index of a scheduled group.
	Rail int `json:"rail,omitempty"`

	// Begin and End are schedule times in cycles (SIGroupScheduled).
	Begin int64 `json:"begin,omitempty"`
	End   int64 `json:"end,omitempty"`

	// Recomputed and Memoized split an incremental evaluation's SI
	// groups into recomputed versus memo-served (EvalIncremental).
	Recomputed int `json:"recomputed,omitempty"`
	Memoized   int `json:"memoized,omitempty"`

	// Power is the scheduled group's test power and Budget the power
	// ceiling it was scheduled under (SIGroupScheduled; both 0 on
	// unconstrained runs). Carried on every event rather than once per
	// trace so power validation survives truncated traces.
	Power  int64 `json:"power,omitempty"`
	Budget int64 `json:"budget,omitempty"`

	// Cause is the interruption cause of a DeadlineHit: "deadline",
	// "interrupted" or "budget".
	Cause string `json:"cause,omitempty"`

	// DurNS is the phase wall-clock duration in nanoseconds (PhaseEnd).
	// It is the one nondeterministic field of a trace.
	DurNS int64 `json:"dur_ns,omitempty"`

	// Job is the job-correlation ID stamped by a NewJobTracer collector
	// (the sitamd flight recorder). Empty on CLI traces. A trace may
	// interleave events of several jobs (e.g. concatenated flight
	// recordings); ValidateJobSpans checks span balance per job.
	Job string `json:"job,omitempty"`
}

// Canonical returns the event with its nondeterministic wall-clock
// field zeroed, so two traces of the same run can be compared.
func (e Event) Canonical() Event {
	e.DurNS = 0
	return e
}

// Validate checks the event against the schema: a known type and the
// per-type required fields.
func (e *Event) Validate() error {
	if !knownTypes[e.Type] {
		return fmt.Errorf("obs: unknown event type %q", e.Type)
	}
	switch e.Type {
	case PhaseStart, PhaseEnd, CandidateEvaluated, MergeAccepted, MergeRejected:
		if e.Phase == "" {
			return fmt.Errorf("obs: %s event without phase", e.Type)
		}
	case ILSKick:
		if e.Kick < 1 {
			return fmt.Errorf("obs: ils_kick event with kick %d", e.Kick)
		}
	case SIGroupScheduled:
		if e.Group == "" {
			return errors.New("obs: si_group_scheduled event without group")
		}
		if e.End < e.Begin {
			return fmt.Errorf("obs: si_group_scheduled %q ends at %d before it begins at %d", e.Group, e.End, e.Begin)
		}
		if e.Rails < 1 {
			return fmt.Errorf("obs: si_group_scheduled %q involves %d rails", e.Group, e.Rails)
		}
		if e.Power < 0 || e.Budget < 0 {
			return fmt.Errorf("obs: si_group_scheduled %q with negative power %d or budget %d", e.Group, e.Power, e.Budget)
		}
		if e.Budget > 0 && e.Power > e.Budget {
			return fmt.Errorf("obs: si_group_scheduled %q power %d exceeds its own budget %d", e.Group, e.Power, e.Budget)
		}
	case CacheLoad:
		if e.N < 0 {
			return fmt.Errorf("obs: cache_load event with negative count %d", e.N)
		}
	case EvalIncremental:
		if e.N < 0 || e.Recomputed < 0 || e.Memoized < 0 {
			return fmt.Errorf("obs: eval_incremental event with negative counts (n=%d recomputed=%d memoized=%d)", e.N, e.Recomputed, e.Memoized)
		}
	case DeadlineHit:
		switch e.Cause {
		case "deadline", "interrupted", "budget":
		default:
			return fmt.Errorf("obs: deadline_hit event with cause %q", e.Cause)
		}
	}
	if e.DurNS < 0 {
		return fmt.Errorf("obs: negative duration %d", e.DurNS)
	}
	return nil
}

// ValidateTrace checks a whole trace: every event validates and the
// sequence numbers are contiguous from 0 (the collector's invariant).
func ValidateTrace(events []Event) error {
	for i := range events {
		if events[i].Seq != uint64(i) {
			return fmt.Errorf("obs: event %d has seq %d", i, events[i].Seq)
		}
		if err := events[i].Validate(); err != nil {
			return fmt.Errorf("obs: event %d: %w", i, err)
		}
	}
	return nil
}

// ValidateSpans checks that phase spans balance: every PhaseStart has
// a matching PhaseEnd for the same phase, and no PhaseEnd arrives for
// a phase with no span open. Balance is counted per phase name rather
// than strictly nested, because Drain replays per-worker buffers
// sequentially and same-name spans from sibling workers may
// interleave. A trace that fails this check was truncated (the process
// died mid-phase) or comes from an emitter with a missing End — the
// statically checked counterpart is the traceevent analyzer.
func ValidateSpans(events []Event) error {
	open := map[string]int{}
	for i := range events {
		switch events[i].Type {
		case PhaseStart:
			open[events[i].Phase]++
		case PhaseEnd:
			open[events[i].Phase]--
			if open[events[i].Phase] < 0 {
				return fmt.Errorf("obs: event %d: phase_end %q with no open span", i, events[i].Phase)
			}
		}
	}
	var bad []string
	for phase, n := range open {
		if n != 0 {
			bad = append(bad, fmt.Sprintf("%q (%d unclosed)", phase, n))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("obs: unbalanced phase spans: %s", bad)
	}
	return nil
}

// ValidateJobSpans checks job-correlation balance: phase spans must
// balance within each job-correlation ID separately (the empty ID — CLI
// traces — is a job of its own). A global ValidateSpans pass can be
// fooled by two interleaved jobs whose mismatched spans happen to sum
// to balance; grouping by ID first closes that hole, and it is what
// sitrace -check runs against flight-recorder output.
func ValidateJobSpans(events []Event) error {
	byJob := map[string][]Event{}
	var order []string
	for i := range events {
		id := events[i].Job
		if _, ok := byJob[id]; !ok {
			order = append(order, id)
		}
		byJob[id] = append(byJob[id], events[i])
	}
	for _, id := range order {
		if err := ValidateSpans(byJob[id]); err != nil {
			if id == "" {
				return err
			}
			return fmt.Errorf("job %q: %w", id, err)
		}
	}
	return nil
}

// ValidateSchedulePower sweeps the si_group_scheduled events of a
// trace and checks that at no instant the summed power of overlapping
// groups exceeds their declared budget. Events with budget 0
// (unconstrained runs) are skipped; budgets are carried per event, so
// the check is meaningful even on truncated traces. This is the trace
// half of the ValidatePower invariant — sitrace -check runs it against
// every trace, independent of the scheduler that produced it.
func ValidateSchedulePower(events []Event) error {
	var slots []Event
	for i := range events {
		e := &events[i]
		if e.Type == SIGroupScheduled && e.Budget > 0 && e.End > e.Begin {
			slots = append(slots, *e)
		}
	}
	// Sweep the start boundaries (peaks only form at starts).
	for _, probe := range slots {
		var inUse int64
		for _, s := range slots {
			if s.Begin <= probe.Begin && probe.Begin < s.End {
				inUse += s.Power
			}
		}
		if inUse > probe.Budget {
			return fmt.Errorf("obs: power %d in use at t=%d exceeds budget %d (group %q)",
				inUse, probe.Begin, probe.Budget, probe.Group)
		}
	}
	return nil
}

// WriteJSONL serializes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("obs: event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace strictly: unknown fields and unknown
// event types are errors, blank lines are skipped.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return out, nil
}

// CtxCause names a context error for the Cause field of a DeadlineHit
// event: "deadline" for expiry, "interrupted" for cancellation, ""
// otherwise. The engine's richer StopCause (which adds the evaluation
// budget) lives in package core; layers below it only ever stop on
// context errors.
func CtxCause(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "interrupted"
	}
	return ""
}
