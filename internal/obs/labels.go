package obs

import (
	"sort"
	"strings"
)

// Label-keyed series. The metrics Registry keys every metric by a flat
// string; labeled series encode their labels into that key in one
// canonical form,
//
//	name{k1="v1",k2="v2"}
//
// with the label pairs sorted by key and the values escaped. Labels
// builds the canonical key (so two call sites with the same pairs in
// any order land on the same series) and ParseKey splits a key back
// into name and pairs — which is all the Prometheus text encoder needs
// to render labeled families without the Registry growing a second
// storage shape. Unlabeled metrics are the degenerate case: their key
// is just the name.

// Label is one name="value" pair of a labeled series key.
type Label struct {
	Key   string
	Value string
}

// Labels builds the canonical registry key for a labeled series. The
// variadic tail is alternating key, value pairs; pairs are sorted by
// key, so argument order never splits a series. With no pairs the name
// itself is returned.
func Labels(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	pairs := make([]Label, 0, (len(kv)+1)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, Label{Key: kv[i], Value: kv[i+1]})
	}
	if len(kv)%2 == 1 {
		// An unpaired trailing key takes an empty value rather than
		// silently vanishing; the exposition layer renders it as k="".
		pairs = append(pairs, Label{Key: kv[len(kv)-1]})
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// ParseKey splits a registry key into its metric name and label pairs.
// A key with no label block parses as the bare name; a malformed block
// is kept verbatim in the name so nothing is silently dropped.
func ParseKey(key string) (name string, labels []Label) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name = key[:open]
	body := key[open+1 : len(key)-1]
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return key, nil
		}
		k := body[:eq]
		rest := body[eq+2:]
		v, n, ok := unescapeLabelValue(rest)
		if !ok {
			return key, nil
		}
		labels = append(labels, Label{Key: k, Value: v})
		body = rest[n:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if body != "" {
			return key, nil
		}
	}
	return name, labels
}

// escapeLabelValue escapes a label value per the Prometheus text
// format: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// unescapeLabelValue reads an escaped label value up to its closing
// quote, returning the value, the bytes consumed (closing quote
// included) and whether the value was well-formed.
func unescapeLabelValue(s string) (string, int, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, true
		case '\\':
			if i+1 >= len(s) {
				return "", 0, false
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, false
}
