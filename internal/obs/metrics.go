package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics side of the observability layer: named atomic counters,
// gauges and histograms collected in a Registry and exported as a
// plain-data Snapshot on Result.Metrics. Every metric type is nil-safe
// — a nil *Counter/*Gauge/*Histogram ignores writes and reads zero —
// so instrumented code can hold metric handles unconditionally and pay
// one branch when metrics are off.

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value; zero on a nil counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value metric.
type Gauge struct {
	v atomic.Int64
}

// Set records the value. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Load returns the current value; zero on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates a distribution of int64 observations (count,
// sum, min, max, and — when built with bounds — fixed cumulative
// buckets) using atomics only. Obtain histograms from a Registry —
// NewHistogram seeds the extrema sentinels the CAS loops rely on, so
// the zero value is not ready to use (a nil histogram is).
type Histogram struct {
	count, sum atomic.Int64
	min, max   atomic.Int64

	// bounds are the sorted upper bucket bounds; buckets[i] counts the
	// observations with v <= bounds[i] that fell into no earlier
	// bucket. Observations above every bound land only in count (the
	// implicit +Inf bucket of the exposition format). Both slices are
	// immutable after construction.
	bounds  []int64
	buckets []atomic.Int64
}

// NewHistogram returns an empty histogram ready for observations.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// NewHistogramBuckets returns an empty histogram with the given fixed
// upper bucket bounds (sorted and deduplicated here, so callers can
// pass literals). Empty bounds degrade to a plain histogram.
func NewHistogramBuckets(bounds []int64) *Histogram {
	h := NewHistogram()
	if len(bounds) == 0 {
		return h
	}
	sorted := append([]int64(nil), bounds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h.bounds = sorted[:1]
	for _, b := range sorted[1:] {
		if b != h.bounds[len(h.bounds)-1] {
			h.bounds = append(h.bounds, b)
		}
	}
	h.buckets = make([]atomic.Int64, len(h.bounds))
	return h
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	if i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] }); i < len(h.bounds) {
		h.buckets[i].Add(1)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Stats returns the accumulated distribution; the zero value on a nil
// or empty histogram. Bucket counts are cumulative (Prometheus "le"
// semantics) and clamped to Count, so a snapshot taken while writers
// race still satisfies bucket <= count and monotonicity.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	n := h.count.Load()
	if n == 0 {
		return HistogramStats{}
	}
	st := HistogramStats{
		Count: n,
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if len(h.bounds) > 0 {
		st.Buckets = make([]HistogramBucket, len(h.bounds))
		var cum int64
		for i := range h.bounds {
			cum += h.buckets[i].Load()
			if cum > n {
				cum = n
			}
			st.Buckets[i] = HistogramBucket{UpperBound: h.bounds[i], Count: cum}
		}
	}
	return st
}

// HistogramBucket is one cumulative bucket of a bucketed histogram:
// Count observations were <= UpperBound.
type HistogramBucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// HistogramStats is the exported summary of a Histogram.
type HistogramStats struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`

	// Buckets are the cumulative fixed buckets; empty on histograms
	// built without bounds (their exposition carries only the implicit
	// +Inf bucket).
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramStats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry is a concurrency-safe collection of named metrics. Handles
// are created lazily on first use and live for the registry's
// lifetime. A nil *Registry hands out nil handles, which are themselves
// safe to use, so callers thread a possibly-nil registry freely.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// HistogramBuckets returns the named histogram, creating it with the
// given fixed bucket bounds on first use. A histogram that already
// exists keeps its original bounds — bounds are a property of the
// series, not of the call site. Nil on a nil registry.
func (r *Registry) HistogramBuckets(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogramBuckets(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot copies the current metric values into plain data. Safe on a
// nil registry (returns an empty snapshot).
func (r *Registry) Snapshot() *Snapshot {
	s := NewSnapshot()
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		if st := h.Stats(); st.Count > 0 {
			s.Histograms[name] = st
		}
	}
	return s
}

// Snapshot is a plain-data copy of a registry's metrics, attached to
// Result.Metrics and serialized with the result JSON.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// NewSnapshot returns an empty snapshot with initialized maps.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramStats),
	}
}

// Counter returns a named counter value; zero when absent or on a nil
// snapshot.
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// sortedKeys returns a map's keys in sorted order — the one iteration
// order every snapshot consumer (Format, the JSON encoder's own key
// sorting, the Prometheus encoder) agrees on, which is what makes
// /metrics output and -stats prints golden-testable.
func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CounterNames returns the snapshot's counter keys in sorted order.
func (s *Snapshot) CounterNames() []string { return sortedKeys(s.Counters) }

// GaugeNames returns the snapshot's gauge keys in sorted order.
func (s *Snapshot) GaugeNames() []string { return sortedKeys(s.Gauges) }

// HistogramNames returns the snapshot's histogram keys in sorted order.
func (s *Snapshot) HistogramNames() []string { return sortedKeys(s.Histograms) }

// Format renders the snapshot as sorted "name value" lines, one metric
// per line, for the CLIs' -stats output. Deterministic for a given
// snapshot.
func (s *Snapshot) Format() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, name := range s.CounterNames() {
		fmt.Fprintf(&b, "%-28s %d\n", name, s.Counters[name])
	}
	for _, name := range s.GaugeNames() {
		fmt.Fprintf(&b, "%-28s %d\n", name, s.Gauges[name])
	}
	for _, name := range s.HistogramNames() {
		st := s.Histograms[name]
		fmt.Fprintf(&b, "%-28s count=%d sum=%d min=%d max=%d mean=%.1f\n",
			name, st.Count, st.Sum, st.Min, st.Max, st.Mean())
	}
	return b.String()
}
