package obs

import (
	"strings"
	"testing"
)

func TestValidateSpansBalanced(t *testing.T) {
	events := []Event{
		{Type: PhaseStart, Phase: "greedy"},
		{Type: PhaseStart, Phase: "merge"},
		{Type: PhaseEnd, Phase: "merge"},
		{Type: PhaseEnd, Phase: "greedy"},
	}
	if err := ValidateSpans(events); err != nil {
		t.Fatalf("balanced trace rejected: %v", err)
	}
}

func TestValidateSpansInterleavedSameName(t *testing.T) {
	// Drain replays per-worker buffers sequentially, so same-name spans
	// from sibling workers interleave without nesting; counting per
	// phase name must accept this.
	events := []Event{
		{Type: PhaseStart, Phase: "restart"},
		{Type: PhaseStart, Phase: "restart"},
		{Type: PhaseEnd, Phase: "restart"},
		{Type: PhaseEnd, Phase: "restart"},
	}
	if err := ValidateSpans(events); err != nil {
		t.Fatalf("interleaved same-name spans rejected: %v", err)
	}
}

func TestValidateSpansUnclosed(t *testing.T) {
	events := []Event{
		{Type: PhaseStart, Phase: "greedy"},
		{Type: PhaseEnd, Phase: "greedy"},
		{Type: PhaseStart, Phase: "merge"},
	}
	err := ValidateSpans(events)
	if err == nil {
		t.Fatal("unclosed span accepted")
	}
	if !strings.Contains(err.Error(), "unbalanced phase spans") || !strings.Contains(err.Error(), "merge") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestValidateSpansEndWithoutStart(t *testing.T) {
	events := []Event{
		{Type: PhaseEnd, Phase: "greedy"},
	}
	if err := ValidateSpans(events); err == nil {
		t.Fatal("phase_end with no open span accepted")
	}
}
