package obs

import (
	"bytes"
	"strings"
	"testing"
)

// promFixture builds a registry exercising every exposition shape:
// bare and labeled counters, a gauge, a plain histogram and a bucketed
// one with two labeled series.
func promFixture() *Registry {
	reg := NewRegistry()
	reg.Counter("evals").Add(42)
	reg.Counter(Labels("jobs_total", "state", "done")).Add(3)
	reg.Counter(Labels("jobs_total", "state", "failed")).Add(1)
	reg.Gauge("queue_depth").Set(7)
	reg.Histogram("plain_ms").Observe(5)
	reg.Histogram("plain_ms").Observe(11)
	for _, v := range []int64{1, 3, 9, 40, 5000} {
		reg.HistogramBuckets(Labels("phase_ms", "phase", "compaction"), []int64{2, 10, 100}).Observe(v)
	}
	reg.HistogramBuckets(Labels("phase_ms", "phase", "si schedule"), []int64{2, 10, 100}).Observe(4)
	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promFixture().Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP evals sitam counter evals
# TYPE evals counter
evals 42
# HELP jobs_total sitam counter jobs_total
# TYPE jobs_total counter
jobs_total{state="done"} 3
jobs_total{state="failed"} 1
# HELP queue_depth sitam gauge queue_depth
# TYPE queue_depth gauge
queue_depth 7
# HELP phase_ms sitam histogram phase_ms
# TYPE phase_ms histogram
phase_ms_bucket{phase="compaction",le="2"} 1
phase_ms_bucket{phase="compaction",le="10"} 3
phase_ms_bucket{phase="compaction",le="100"} 4
phase_ms_bucket{phase="compaction",le="+Inf"} 5
phase_ms_sum{phase="compaction"} 5053
phase_ms_count{phase="compaction"} 5
phase_ms_bucket{phase="si schedule",le="2"} 0
phase_ms_bucket{phase="si schedule",le="10"} 1
phase_ms_bucket{phase="si schedule",le="100"} 1
phase_ms_bucket{phase="si schedule",le="+Inf"} 1
phase_ms_sum{phase="si schedule"} 4
phase_ms_count{phase="si schedule"} 1
# HELP plain_ms sitam histogram plain_ms
# TYPE plain_ms histogram
plain_ms_bucket{le="+Inf"} 2
plain_ms_sum 16
plain_ms_count 2
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusDeterministic pins the satellite requirement that
// two scrapes of one snapshot are byte-identical (map iteration order
// must never leak into the exposition).
func TestWritePrometheusDeterministic(t *testing.T) {
	snap := promFixture().Snapshot()
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of one snapshot differ")
	}
}

func TestValidatePrometheusAcceptsEncoder(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promFixture().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(&buf); err != nil {
		t.Errorf("validator rejects encoder output: %v", err)
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"undeclared family", "orphan 1\n", "before any TYPE"},
		{"duplicate series", "# TYPE a counter\na 1\na 2\n", "duplicate series"},
		{"duplicate type", "# TYPE a counter\n# TYPE a counter\n", "duplicate TYPE"},
		{"bad type", "# TYPE a rate\n", "unknown metric type"},
		{"bad name", "# TYPE 1a counter\n", "invalid metric name"},
		{"bad value", "# TYPE a counter\na one\n", "bad sample value"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf"},
		{
			"noncumulative",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
			"not cumulative",
		},
		{
			"inf count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n",
			"+Inf bucket 4 != count 5",
		},
		{
			"bare histogram sample",
			"# TYPE h histogram\nh 4\n",
			"without _bucket/_sum/_count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidatePrometheus(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ValidatePrometheus = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}

	// And a well-formed hand-written exposition passes, timestamps and
	// free comments included.
	good := "# scraped at t0\n# TYPE a counter\na{x=\"1\"} 3 1700000000\na 4\n"
	if err := ValidatePrometheus(strings.NewReader(good)); err != nil {
		t.Errorf("ValidatePrometheus(good) = %v", err)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"serve_job_ms":   "serve_job_ms",
		"phase ns total": "phase_ns_total",
		"9lives":         "_lives",
		"":               "_",
		"a:b":            "a:b",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
