package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

func TestEventValidate(t *testing.T) {
	valid := []Event{
		{Type: PhaseStart, Phase: "bottom-up merge"},
		{Type: PhaseEnd, Phase: "ILS", Best: 42, N: 7, DurNS: 100},
		{Type: CandidateEvaluated, Phase: "start solution", Cand: 3, Obj: 99},
		{Type: MergeAccepted, Phase: "ILS local search", Cand: 1, Obj: 5, Best: 5, Rails: 3, N: 10},
		{Type: MergeRejected, Phase: "core reshuffle", Obj: 5, N: 2},
		{Type: ILSKick, Kick: 1, Seed: 7, Obj: 50, Best: 40},
		{Type: SIGroupScheduled, Group: "G1", Begin: 0, End: 10, Rails: 2, Rail: 1, N: 30},
		{Type: CacheHit},
		{Type: CacheMiss},
		{Type: DeadlineHit, Phase: "ILS", Cause: "deadline"},
		{Type: DeadlineHit, Cause: "interrupted"},
		{Type: DeadlineHit, Cause: "budget"},
	}
	for i, ev := range valid {
		if err := ev.Validate(); err != nil {
			t.Errorf("valid event %d rejected: %v", i, err)
		}
	}
	invalid := []Event{
		{Type: "bogus"},
		{Type: PhaseStart},                    // missing phase
		{Type: CandidateEvaluated},            // missing phase
		{Type: ILSKick, Kick: 0},              // kick must be >= 1
		{Type: SIGroupScheduled, Rails: 1},    // missing group
		{Type: SIGroupScheduled, Group: "G1"}, // zero rails
		{Type: SIGroupScheduled, Group: "G1", Rails: 1, Begin: 5, End: 4},
		{Type: DeadlineHit, Cause: "tired"},     // unknown cause
		{Type: DeadlineHit},                     // empty cause
		{Type: PhaseEnd, Phase: "x", DurNS: -1}, // negative duration
	}
	for i, ev := range invalid {
		if err := ev.Validate(); err == nil {
			t.Errorf("invalid event %d accepted: %+v", i, ev)
		}
	}
}

func TestValidateTraceSeq(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Event{Type: PhaseStart, Phase: "a"})
	tr.Emit(Event{Type: PhaseEnd, Phase: "a"})
	if err := ValidateTrace(tr.Events()); err != nil {
		t.Fatalf("collector trace invalid: %v", err)
	}
	broken := tr.Events()
	broken[1].Seq = 5
	if err := ValidateTrace(broken); err == nil {
		t.Error("gap in sequence numbers accepted")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Event{Type: PhaseStart, Phase: "partition"})
	tr.Emit(Event{Type: CandidateEvaluated, Phase: "start solution", Cand: 2, Obj: 123})
	tr.Emit(Event{Type: SIGroupScheduled, Group: "RES", Begin: 1, End: 9, Rails: 4, Rail: 2, N: 67})
	tr.Emit(Event{Type: PhaseEnd, Phase: "partition", Best: 77, N: 3, DurNS: 1500})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip lost events: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLStrict(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"seq":0,"type":"cache_hit","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json")); err == nil {
		t.Error("malformed line accepted")
	}
	evs, err := ReadJSONL(strings.NewReader("\n{\"seq\":0,\"type\":\"cache_hit\"}\n\n"))
	if err != nil || len(evs) != 1 {
		t.Errorf("blank lines not skipped: %v, %d events", err, len(evs))
	}
}

func TestLocalDrainOrder(t *testing.T) {
	tr := NewTracer()
	a, b := NewLocal(), NewLocal()
	b.Emit(Event{Type: CacheMiss})
	a.Emit(Event{Type: CacheHit})
	a.Emit(Event{Type: CacheHit})
	Drain(tr, a, nil, b)
	evs := tr.Events()
	wantTypes := []Type{CacheHit, CacheHit, CacheMiss}
	if len(evs) != len(wantTypes) {
		t.Fatalf("drained %d events, want %d", len(evs), len(wantTypes))
	}
	for i, ev := range evs {
		if ev.Type != wantTypes[i] || ev.Seq != uint64(i) {
			t.Errorf("event %d = %+v, want type %s seq %d", i, ev, wantTypes[i], i)
		}
	}
	// Buffers are emptied; draining again adds nothing.
	Drain(tr, a, b)
	if tr.Len() != 3 {
		t.Errorf("re-drain appended events: len = %d", tr.Len())
	}
	Drain(nil, a) // must not panic
}

func TestSpanNilSink(t *testing.T) {
	span := Span(nil, "quiet")
	span.End(1, 2) // must not panic

	tr := NewTracer()
	span = Span(tr, "loud")
	span.End(10, 20)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Type != PhaseStart || evs[1].Type != PhaseEnd {
		t.Fatalf("span emitted %+v", evs)
	}
	if evs[1].Best != 10 || evs[1].N != 20 || evs[1].DurNS < 0 {
		t.Errorf("phase_end = %+v", evs[1])
	}
}

func TestCanonicalZeroesDuration(t *testing.T) {
	ev := Event{Type: PhaseEnd, Phase: "x", DurNS: 999, Best: 5}
	c := ev.Canonical()
	if c.DurNS != 0 || c.Best != 5 {
		t.Errorf("Canonical() = %+v", c)
	}
}

func TestMetricsNilSafety(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Error("nil counter loaded nonzero")
	}
	var g *Gauge
	g.Set(7)
	if g.Load() != 0 {
		t.Error("nil gauge loaded nonzero")
	}
	var h *Histogram
	h.Observe(3)
	if st := h.Stats(); st.Count != 0 || st.Sum != 0 || len(st.Buckets) != 0 {
		t.Error("nil histogram accumulated")
	}
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(2)
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot = %+v", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("evals").Inc()
				r.Histogram("obj").Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counter("evals") != 8000 {
		t.Errorf("evals = %d, want 8000", snap.Counter("evals"))
	}
	st := snap.Histograms["obj"]
	if st.Count != 8000 || st.Min != 0 || st.Max != 7999 {
		t.Errorf("histogram = %+v", st)
	}
}

func TestHistogramExtremaWithNegatives(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{5, -3, 0, 12, -3} {
		h.Observe(v)
	}
	st := h.Stats()
	if st.Min != -3 || st.Max != 12 || st.Count != 5 || st.Sum != 11 {
		t.Errorf("stats = %+v", st)
	}
	if st.Mean() != 11.0/5 {
		t.Errorf("mean = %v", st.Mean())
	}
}

func TestSnapshotFormatDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("w").Set(4)
	r.Histogram("h").Observe(10)
	s1, s2 := r.Snapshot().Format(), r.Snapshot().Format()
	if s1 != s2 {
		t.Error("Format is not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(s1), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "a") || !strings.HasPrefix(lines[1], "b") {
		t.Errorf("format = %q", s1)
	}
}

func TestCtxCause(t *testing.T) {
	if got := CtxCause(context.DeadlineExceeded); got != "deadline" {
		t.Errorf("deadline cause = %q", got)
	}
	if got := CtxCause(context.Canceled); got != "interrupted" {
		t.Errorf("cancel cause = %q", got)
	}
	if got := CtxCause(nil); got != "" {
		t.Errorf("nil cause = %q", got)
	}
}

func TestAggregatePhases(t *testing.T) {
	events := []Event{
		{Type: PhaseStart, Phase: "a"},
		{Type: PhaseEnd, Phase: "a", N: 10, DurNS: 100},
		{Type: PhaseStart, Phase: "b"},
		{Type: PhaseEnd, Phase: "b", N: 1, DurNS: 5},
		{Type: PhaseEnd, Phase: "a", N: 2, DurNS: 50},
	}
	got := AggregatePhases(events)
	if len(got) != 2 {
		t.Fatalf("%d phases, want 2", len(got))
	}
	if got[0] != (PhaseAgg{Phase: "a", Spans: 2, WallNS: 150, N: 12}) {
		t.Errorf("phase a = %+v", got[0])
	}
	if got[1] != (PhaseAgg{Phase: "b", Spans: 1, WallNS: 5, N: 1}) {
		t.Errorf("phase b = %+v", got[1])
	}
}

func TestCurve(t *testing.T) {
	events := []Event{
		{Seq: 0, Type: CandidateEvaluated, Phase: "x", Obj: 90},
		{Seq: 1, Type: MergeAccepted, Phase: "x", Best: 100},
		{Seq: 2, Type: CandidateEvaluated, Phase: "x", Obj: 80},
		{Seq: 3, Type: MergeAccepted, Phase: "x", Best: 80},
		{Seq: 4, Type: PhaseEnd, Phase: "x", Best: 80}, // no improvement: no point
		{Seq: 5, Type: ILSKick, Kick: 1, Best: 75},
	}
	got := Curve(events)
	want := []CurvePoint{{Seq: 1, Evals: 1, Best: 100}, {Seq: 3, Evals: 2, Best: 80}, {Seq: 5, Evals: 2, Best: 75}}
	if len(got) != len(want) {
		t.Fatalf("curve = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if pts := Curve([]Event{{Type: PhaseEnd, Phase: "y"}}); len(pts) != 0 {
		t.Errorf("objective-free trace produced curve %+v", pts)
	}
}
