// Package compaction implements the "vertical" dimension of the paper's
// two-dimensional SI test-set compaction: merging compatible test
// patterns to reduce the pattern count.
//
// Two patterns are compatible when their symbol-wise intersection is
// non-empty at every WOC position (x merges with anything, determined
// symbols only with themselves) AND they do not occupy the same shared
// bus line from different core boundaries. Finding the minimum compacted
// set is the NP-complete clique covering problem on the compatibility
// graph; following the paper, the production path is a greedy heuristic
// that merges the first uncompacted pattern with every following
// compatible pattern on each pass. Reference exact and DSATUR-based
// covers are provided for small instances (tests and ablation benches).
//
// Pairwise compatibility implies set-wise mergeability here: at any
// position, pairwise-compatible patterns can only carry one distinct
// determined symbol, and on any bus line only one distinct driver — so
// every clique of the compatibility graph is a valid merged pattern.
package compaction

import (
	"context"
	"fmt"
	"sort"

	"sitam/internal/obs"
	"sitam/internal/sifault"
)

// Stats summarizes one compaction run.
type Stats struct {
	// Original is the pattern count before compaction (sum of weights
	// of the input patterns).
	Original int64

	// Compacted is the pattern count after compaction.
	Compacted int

	// Passes is the number of greedy seed passes (equals Compacted for
	// the greedy algorithm).
	Passes int
}

// Ratio returns Original/Compacted, the compaction ratio.
func (s Stats) Ratio() float64 {
	if s.Compacted == 0 {
		return 0
	}
	return float64(s.Original) / float64(s.Compacted)
}

// accumulator is the dense merge state for one greedy seed pass. Epoch
// marking avoids clearing the arrays between passes.
type accumulator struct {
	sym      []sifault.Symbol
	symEpoch []uint32
	drv      []int32
	drvEpoch []uint32
	epoch    uint32
	touched  []int32 // positions determined this epoch
	busUsed  []int32 // bus lines occupied this epoch
}

func newAccumulator(nPos, nBus int) *accumulator {
	return &accumulator{
		sym:      make([]sifault.Symbol, nPos),
		symEpoch: make([]uint32, nPos),
		drv:      make([]int32, nBus),
		drvEpoch: make([]uint32, nBus),
	}
}

func (a *accumulator) reset() {
	a.epoch++
	a.touched = a.touched[:0]
	a.busUsed = a.busUsed[:0]
}

// compatible reports whether p can merge into the current accumulation.
func (a *accumulator) compatible(p *sifault.Pattern) bool {
	for _, c := range p.Care {
		if a.symEpoch[c.Pos] == a.epoch && a.sym[c.Pos] != c.Sym {
			return false
		}
	}
	for _, b := range p.Bus {
		if a.drvEpoch[b.Line] == a.epoch && a.drv[b.Line] != b.Driver {
			return false
		}
	}
	return true
}

// merge absorbs p; the caller must have checked compatible(p).
func (a *accumulator) merge(p *sifault.Pattern) {
	for _, c := range p.Care {
		if a.symEpoch[c.Pos] != a.epoch {
			a.symEpoch[c.Pos] = a.epoch
			a.sym[c.Pos] = c.Sym
			a.touched = append(a.touched, c.Pos)
		}
	}
	for _, b := range p.Bus {
		if a.drvEpoch[b.Line] != a.epoch {
			a.drvEpoch[b.Line] = a.epoch
			a.drv[b.Line] = b.Driver
			a.busUsed = append(a.busUsed, b.Line)
		}
	}
}

// pattern materializes the accumulated merge as a Pattern of the given
// total weight.
func (a *accumulator) pattern(weight int64) *sifault.Pattern {
	p := &sifault.Pattern{
		Care:       make([]sifault.Care, 0, len(a.touched)),
		VictimPos:  -1,
		VictimCore: -1,
		Weight:     int32(weight),
	}
	sort.Slice(a.touched, func(i, j int) bool { return a.touched[i] < a.touched[j] })
	for _, pos := range a.touched {
		p.Care = append(p.Care, sifault.Care{Pos: pos, Sym: a.sym[pos]})
	}
	sort.Slice(a.busUsed, func(i, j int) bool { return a.busUsed[i] < a.busUsed[j] })
	for _, l := range a.busUsed {
		p.Bus = append(p.Bus, sifault.BusUse{Line: l, Driver: a.drv[l]})
	}
	return p
}

// Greedy compacts patterns with the paper's heuristic: take the first
// uncompacted pattern as a seed and merge every following compatible
// pattern into it, repeating until all patterns are absorbed. Input
// patterns are not modified. The input order is the merge order, so the
// result is deterministic.
func Greedy(sp *sifault.Space, patterns []*sifault.Pattern) ([]*sifault.Pattern, Stats) {
	out, stats, _ := GreedyCtx(context.Background(), sp, patterns)
	return out, stats
}

// GreedyCtx is Greedy as an anytime algorithm: the context is checked
// before each seed pass, and on cancellation or deadline expiry the
// remaining unmerged patterns are emitted as-is (sharing the input
// pattern values, which are never modified). The result is then a
// valid but less compacted cover of the same original pattern set; the
// returned bool reports whether compaction was cut short.
func GreedyCtx(ctx context.Context, sp *sifault.Space, patterns []*sifault.Pattern) ([]*sifault.Pattern, Stats, bool) {
	return GreedyObs(ctx, sp, patterns, nil, "")
}

// GreedyObs is GreedyCtx with tracing: the run is bracketed in a
// "compaction" phase span labeled with the group name, whose PhaseEnd
// carries the compacted pattern count; a cut emits a deadline_hit
// event. A nil sink traces nothing.
func GreedyObs(ctx context.Context, sp *sifault.Space, patterns []*sifault.Pattern, sink obs.Sink, group string) ([]*sifault.Pattern, Stats, bool) {
	span := obs.Span(sink, "compaction")
	out, stats, cut := greedy(ctx, sp, patterns)
	if sink != nil {
		if cut {
			sink.Emit(obs.Event{Type: obs.DeadlineHit, Phase: "compaction", Group: group, Cause: obs.CtxCause(ctx.Err())})
		}
		span.End(0, int64(stats.Compacted))
	}
	return out, stats, cut
}

func greedy(ctx context.Context, sp *sifault.Space, patterns []*sifault.Pattern) ([]*sifault.Pattern, Stats, bool) {
	acc := newAccumulator(sp.Total(), sp.BusWidth())
	alive := make([]bool, len(patterns))
	remaining := make([]int, len(patterns))
	var original int64
	for i, p := range patterns {
		alive[i] = true
		remaining[i] = i
		original += int64(p.Weight)
	}

	var out []*sifault.Pattern
	cut := false
	passes := 0
	for len(remaining) > 0 {
		if ctx.Err() != nil {
			// Graceful degradation: pass the unmerged remainder
			// through untouched rather than dropping coverage.
			cut = true
			for _, idx := range remaining {
				alive[idx] = false
				out = append(out, patterns[idx])
			}
			break
		}
		acc.reset()
		seed := patterns[remaining[0]]
		acc.merge(seed)
		weight := int64(seed.Weight)
		alive[remaining[0]] = false

		next := remaining[:0]
		for _, idx := range remaining[1:] {
			p := patterns[idx]
			if acc.compatible(p) {
				acc.merge(p)
				weight += int64(p.Weight)
				alive[idx] = false
			} else {
				next = append(next, idx)
			}
		}
		remaining = next
		out = append(out, acc.pattern(weight))
		passes++
	}
	return out, Stats{Original: original, Compacted: len(out), Passes: passes}, cut
}

// Compatible reports whether two patterns may be merged, applying both
// the symbol intersection rule and the shared-bus-line driver rule.
func Compatible(a, b *sifault.Pattern) bool {
	// Merge-join over the sorted care lists.
	i, j := 0, 0
	for i < len(a.Care) && j < len(b.Care) {
		switch {
		case a.Care[i].Pos < b.Care[j].Pos:
			i++
		case a.Care[i].Pos > b.Care[j].Pos:
			j++
		default:
			if !a.Care[i].Sym.CompatibleWith(b.Care[j].Sym) {
				return false
			}
			i++
			j++
		}
	}
	i, j = 0, 0
	for i < len(a.Bus) && j < len(b.Bus) {
		switch {
		case a.Bus[i].Line < b.Bus[j].Line:
			i++
		case a.Bus[i].Line > b.Bus[j].Line:
			j++
		default:
			if a.Bus[i].Driver != b.Bus[j].Driver {
				return false
			}
			i++
			j++
		}
	}
	return true
}

// Merge returns the intersection pattern of a and b. It fails if the
// patterns are incompatible.
func Merge(a, b *sifault.Pattern) (*sifault.Pattern, error) {
	if !Compatible(a, b) {
		return nil, fmt.Errorf("compaction: patterns are incompatible")
	}
	m := &sifault.Pattern{VictimPos: -1, VictimCore: -1, Weight: a.Weight + b.Weight}
	m.Care = make([]sifault.Care, 0, len(a.Care)+len(b.Care))
	i, j := 0, 0
	for i < len(a.Care) || j < len(b.Care) {
		switch {
		case j >= len(b.Care) || (i < len(a.Care) && a.Care[i].Pos < b.Care[j].Pos):
			m.Care = append(m.Care, a.Care[i])
			i++
		case i >= len(a.Care) || a.Care[i].Pos > b.Care[j].Pos:
			m.Care = append(m.Care, b.Care[j])
			j++
		default:
			m.Care = append(m.Care, sifault.Care{Pos: a.Care[i].Pos, Sym: a.Care[i].Sym.Intersect(b.Care[j].Sym)})
			i++
			j++
		}
	}
	m.Bus = make([]sifault.BusUse, 0, len(a.Bus)+len(b.Bus))
	i, j = 0, 0
	for i < len(a.Bus) || j < len(b.Bus) {
		switch {
		case j >= len(b.Bus) || (i < len(a.Bus) && a.Bus[i].Line < b.Bus[j].Line):
			m.Bus = append(m.Bus, a.Bus[i])
			i++
		case i >= len(a.Bus) || a.Bus[i].Line > b.Bus[j].Line:
			m.Bus = append(m.Bus, b.Bus[j])
			j++
		default:
			m.Bus = append(m.Bus, a.Bus[i])
			i++
			j++
		}
	}
	return m, nil
}
