// Package compaction implements the "vertical" dimension of the paper's
// two-dimensional SI test-set compaction: merging compatible test
// patterns to reduce the pattern count.
//
// Two patterns are compatible when their symbol-wise intersection is
// non-empty at every WOC position (x merges with anything, determined
// symbols only with themselves) AND they do not occupy the same shared
// bus line from different core boundaries. Finding the minimum compacted
// set is the NP-complete clique covering problem on the compatibility
// graph; following the paper, the production path is a greedy heuristic
// that merges the first uncompacted pattern with every following
// compatible pattern on each pass. Reference exact and DSATUR-based
// covers are provided for small instances (tests and ablation benches).
//
// Pairwise compatibility implies set-wise mergeability here: at any
// position, pairwise-compatible patterns can only carry one distinct
// determined symbol, and on any bus line only one distinct driver — so
// every clique of the compatibility graph is a valid merged pattern.
package compaction

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"sitam/internal/obs"
	"sitam/internal/sifault"
)

// Stats summarizes one compaction run.
type Stats struct {
	// Original is the pattern count before compaction (sum of weights
	// of the input patterns).
	Original int64

	// Compacted is the pattern count after compaction.
	Compacted int

	// Passes is the number of greedy seed passes (equals Compacted for
	// the greedy algorithm).
	Passes int
}

// Ratio returns Original/Compacted, the compaction ratio.
func (s Stats) Ratio() float64 {
	if s.Compacted == 0 {
		return 0
	}
	return float64(s.Original) / float64(s.Compacted)
}

// bitsetAccumulator is the word-parallel merge state for one greedy
// seed pass: per 64 positions one interleaved [care, v0, v1] plane
// entry (the care mask plus the two value bits of Symbol-1 — see
// sifault.PackedWord), so a compatibility check costs one AND and two
// XORs per 64 care positions instead of one comparison per care
// position, and the three planes of a word share one cache line.
//
// Bus occupation rides the same machinery: bus line L maps to the
// pseudo-word plane busBase+L whose care plane is all-ones when the
// line is occupied and whose v0 plane carries the driver verbatim —
// the generic conflict formula then reads "occupied and a different
// driver", exactly the shared-bus rule. One uniform loop per candidate
// replaces the separate care and bus scans.
//
// The planes of untouched words are all-zero — reset clears only the
// entries the last pass touched — which keeps the conflict test free
// of epoch loads: a zero care plane can never intersect.
type bitsetAccumulator struct {
	planes   [][3]uint64 // care, v0, v1 per word; bus pseudo-words after busBase
	busBase  int32
	touchedW []int32 // care word indices determined this pass
	busUsed  []int32 // bus plane indices occupied this pass
}

func newBitsetAccumulator(nPos, nBus int) *bitsetAccumulator {
	nWords := (nPos + 63) / 64
	return &bitsetAccumulator{
		planes:  make([][3]uint64, nWords+nBus),
		busBase: int32(nWords),
	}
}

func (a *bitsetAccumulator) reset() {
	for _, wi := range a.touchedW {
		a.planes[wi] = [3]uint64{}
	}
	for _, wi := range a.busUsed {
		a.planes[wi] = [3]uint64{}
	}
	a.touchedW = a.touchedW[:0]
	a.busUsed = a.busUsed[:0]
}

// compatible reports whether the pattern (packed care words plus bus
// pseudo-words) can merge into the current accumulation. A conflict is
// a shared care bit whose value planes differ; masking with both care
// planes first keeps the value comparison to genuinely shared bits.
func (a *bitsetAccumulator) compatible(items []sifault.PackedWord) bool {
	planes := a.planes
	for i := range items {
		w := &items[i]
		pl := &planes[w.Idx]
		if pl[0]&w.Care&((pl[1]^w.V0)|(pl[2]^w.V1)) != 0 {
			return false
		}
	}
	return true
}

// merge absorbs the pattern; the caller must have checked compatible.
// ORing the value planes is exact: shared care positions carry equal
// symbols and shared bus lines equal drivers (checked), and bits
// outside a word's care mask are zero. A zero care plane identifies an
// untouched entry (every packed word carries at least one care bit and
// bus pseudo-words an all-ones mask), so no epoch bookkeeping is
// needed.
func (a *bitsetAccumulator) merge(items []sifault.PackedWord) {
	for i := range items {
		w := &items[i]
		pl := &a.planes[w.Idx]
		if pl[0] == 0 {
			if w.Idx >= a.busBase {
				a.busUsed = append(a.busUsed, w.Idx)
			} else {
				a.touchedW = append(a.touchedW, w.Idx)
			}
		}
		pl[0] |= w.Care
		pl[1] |= w.V0
		pl[2] |= w.V1
	}
}

// pattern materializes the accumulated merge as a Pattern of the given
// total weight, identical to the scalar reference's output: care
// entries sorted by position, bus uses sorted by line.
func (a *bitsetAccumulator) pattern(weight int64) *sifault.Pattern {
	p := &sifault.Pattern{
		VictimPos:  -1,
		VictimCore: -1,
		Weight:     int32(weight),
	}
	sort.Slice(a.touchedW, func(i, j int) bool { return a.touchedW[i] < a.touchedW[j] })
	n := 0
	for _, wi := range a.touchedW {
		n += bits.OnesCount64(a.planes[wi][0])
	}
	p.Care = make([]sifault.Care, 0, n)
	for _, wi := range a.touchedW {
		base := int32(wi) << 6
		pl := &a.planes[wi]
		for m := pl[0]; m != 0; m &= m - 1 {
			b := uint(bits.TrailingZeros64(m))
			sym := sifault.Symbol(1 + (pl[1]>>b)&1 + 2*((pl[2]>>b)&1))
			p.Care = append(p.Care, sifault.Care{Pos: base + int32(b), Sym: sym})
		}
	}
	sort.Slice(a.busUsed, func(i, j int) bool { return a.busUsed[i] < a.busUsed[j] })
	for _, wi := range a.busUsed {
		p.Bus = append(p.Bus, sifault.BusUse{Line: wi - a.busBase, Driver: int32(uint32(a.planes[wi][1]))})
	}
	return p
}

// Greedy compacts patterns with the paper's heuristic: take the first
// uncompacted pattern as a seed and merge every following compatible
// pattern into it, repeating until all patterns are absorbed. Input
// patterns are not modified. The input order is the merge order, so the
// result is deterministic.
func Greedy(sp *sifault.Space, patterns []*sifault.Pattern) ([]*sifault.Pattern, Stats) {
	out, stats, _ := GreedyCtx(context.Background(), sp, patterns)
	return out, stats
}

// GreedyCtx is Greedy as an anytime algorithm: the context is checked
// before each seed pass, and on cancellation or deadline expiry the
// remaining unmerged patterns are emitted as-is (sharing the input
// pattern values, which are never modified). The result is then a
// valid but less compacted cover of the same original pattern set; the
// returned bool reports whether compaction was cut short.
func GreedyCtx(ctx context.Context, sp *sifault.Space, patterns []*sifault.Pattern) ([]*sifault.Pattern, Stats, bool) {
	return GreedyObs(ctx, sp, patterns, nil, "")
}

// GreedyObs is GreedyCtx with tracing: the run is bracketed in a
// "compaction" phase span labeled with the group name, whose PhaseEnd
// carries the compacted pattern count; a cut emits a deadline_hit
// event. A nil sink traces nothing. For worker-pool parallelism see
// GreedyWith (sharded.go); the trace and the output are identical at
// every worker count.
func GreedyObs(ctx context.Context, sp *sifault.Space, patterns []*sifault.Pattern, sink obs.Sink, group string) ([]*sifault.Pattern, Stats, bool) {
	return GreedyWith(ctx, sp, patterns, Config{Workers: 1, Sink: sink, Group: group})
}

// packPatterns packs every pattern's care list (as PackedWords) and
// bus list (as bus pseudo-words: all-ones care mask, driver in v0) into
// one shared arena, and returns per-pattern item slices index-aligned
// with patterns. Per-pattern runs stay contiguous in memory and the
// precomputed slice headers keep the hot loop to two contiguous-array
// loads per candidate — no *Pattern dereference on the compatibility
// path.
//
// Bus pseudo-words are placed BEFORE the care words of each pattern:
// item order inside one pattern cannot change the conflict verdict
// (conflict is "any item conflicts") or the merge result (ORs commute),
// but bus words carry an all-ones care mask and so are the most
// discriminating conflict probes — putting them first lets the reject
// path of the greedy scan exit earliest.
func packPatterns(patterns []*sifault.Pattern, busBase int32) (itemsOf [][]sifault.PackedWord) {
	n := 0
	for _, p := range patterns {
		n += len(p.Care) + len(p.Bus)
	}
	arena := make([]sifault.PackedWord, 0, n)
	off := make([]int32, len(patterns)+1)
	for i, p := range patterns {
		off[i] = int32(len(arena))
		arena = sifault.AppendPackedWords(arena, p)
		for _, b := range p.Bus {
			arena = append(arena, sifault.PackedWord{
				Idx: busBase + b.Line, Care: ^uint64(0), V0: uint64(uint32(b.Driver)),
			})
		}
	}
	off[len(patterns)] = int32(len(arena))
	itemsOf = make([][]sifault.PackedWord, len(patterns))
	for i := range patterns {
		itemsOf[i] = arena[off[i]:off[i+1]:off[i+1]]
	}
	return itemsOf
}

// greedy is the single-worker compaction path: sharded GreedyWith at
// Workers=1. The fused super-pass loop that used to live here moved to
// the conflict-index engine (engine.go), which fuses 64 serial seed
// passes into one stream over the remaining set and answers most
// accumulator conflicts from bitmask indexes instead of plane probes.
// First-fit equivalence (the reason any of this is byte-identical to
// the paper's one-seed-pass-at-a-time greedy) is argued on GreedyWith
// and in the engine's package comment.
func greedy(ctx context.Context, sp *sifault.Space, patterns []*sifault.Pattern) ([]*sifault.Pattern, Stats, bool) {
	return greedyWith(ctx, sp, patterns, Config{Workers: 1})
}

// Compatible reports whether two patterns may be merged, applying both
// the symbol intersection rule and the shared-bus-line driver rule.
func Compatible(a, b *sifault.Pattern) bool {
	// Merge-join over the sorted care lists.
	i, j := 0, 0
	for i < len(a.Care) && j < len(b.Care) {
		switch {
		case a.Care[i].Pos < b.Care[j].Pos:
			i++
		case a.Care[i].Pos > b.Care[j].Pos:
			j++
		default:
			if !a.Care[i].Sym.CompatibleWith(b.Care[j].Sym) {
				return false
			}
			i++
			j++
		}
	}
	i, j = 0, 0
	for i < len(a.Bus) && j < len(b.Bus) {
		switch {
		case a.Bus[i].Line < b.Bus[j].Line:
			i++
		case a.Bus[i].Line > b.Bus[j].Line:
			j++
		default:
			if a.Bus[i].Driver != b.Bus[j].Driver {
				return false
			}
			i++
			j++
		}
	}
	return true
}

// Merge returns the intersection pattern of a and b. It fails if the
// patterns are incompatible.
func Merge(a, b *sifault.Pattern) (*sifault.Pattern, error) {
	if !Compatible(a, b) {
		return nil, fmt.Errorf("compaction: patterns are incompatible")
	}
	m := &sifault.Pattern{VictimPos: -1, VictimCore: -1, Weight: a.Weight + b.Weight}
	m.Care = make([]sifault.Care, 0, len(a.Care)+len(b.Care))
	i, j := 0, 0
	for i < len(a.Care) || j < len(b.Care) {
		switch {
		case j >= len(b.Care) || (i < len(a.Care) && a.Care[i].Pos < b.Care[j].Pos):
			m.Care = append(m.Care, a.Care[i])
			i++
		case i >= len(a.Care) || a.Care[i].Pos > b.Care[j].Pos:
			m.Care = append(m.Care, b.Care[j])
			j++
		default:
			m.Care = append(m.Care, sifault.Care{Pos: a.Care[i].Pos, Sym: a.Care[i].Sym.Intersect(b.Care[j].Sym)})
			i++
			j++
		}
	}
	m.Bus = make([]sifault.BusUse, 0, len(a.Bus)+len(b.Bus))
	i, j = 0, 0
	for i < len(a.Bus) || j < len(b.Bus) {
		switch {
		case j >= len(b.Bus) || (i < len(a.Bus) && a.Bus[i].Line < b.Bus[j].Line):
			m.Bus = append(m.Bus, a.Bus[i])
			i++
		case i >= len(a.Bus) || a.Bus[i].Line > b.Bus[j].Line:
			m.Bus = append(m.Bus, b.Bus[j])
			j++
		default:
			m.Bus = append(m.Bus, a.Bus[i])
			i++
			j++
		}
	}
	return m, nil
}
