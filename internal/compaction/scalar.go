package compaction

import (
	"context"
	"sort"

	"sitam/internal/sifault"
)

// The scalar accumulator is the original per-care-position greedy merge
// state, kept as the reference implementation: the differential tests
// pin the bitset path (compaction.go) against it, and the compaction
// benchmark measures the word-parallel speedup over it.

// scalarAccumulator is the dense merge state for one greedy seed pass.
// Epoch marking avoids clearing the arrays between passes.
type scalarAccumulator struct {
	sym      []sifault.Symbol
	symEpoch []uint32
	drv      []int32
	drvEpoch []uint32
	epoch    uint32
	touched  []int32 // positions determined this epoch
	busUsed  []int32 // bus lines occupied this epoch
}

func newScalarAccumulator(nPos, nBus int) *scalarAccumulator {
	return &scalarAccumulator{
		sym:      make([]sifault.Symbol, nPos),
		symEpoch: make([]uint32, nPos),
		drv:      make([]int32, nBus),
		drvEpoch: make([]uint32, nBus),
	}
}

func (a *scalarAccumulator) reset() {
	a.epoch++
	a.touched = a.touched[:0]
	a.busUsed = a.busUsed[:0]
}

// compatible reports whether p can merge into the current accumulation.
func (a *scalarAccumulator) compatible(p *sifault.Pattern) bool {
	for _, c := range p.Care {
		if a.symEpoch[c.Pos] == a.epoch && a.sym[c.Pos] != c.Sym {
			return false
		}
	}
	for _, b := range p.Bus {
		if a.drvEpoch[b.Line] == a.epoch && a.drv[b.Line] != b.Driver {
			return false
		}
	}
	return true
}

// merge absorbs p; the caller must have checked compatible(p).
func (a *scalarAccumulator) merge(p *sifault.Pattern) {
	for _, c := range p.Care {
		if a.symEpoch[c.Pos] != a.epoch {
			a.symEpoch[c.Pos] = a.epoch
			a.sym[c.Pos] = c.Sym
			a.touched = append(a.touched, c.Pos)
		}
	}
	for _, b := range p.Bus {
		if a.drvEpoch[b.Line] != a.epoch {
			a.drvEpoch[b.Line] = a.epoch
			a.drv[b.Line] = b.Driver
			a.busUsed = append(a.busUsed, b.Line)
		}
	}
}

// pattern materializes the accumulated merge as a Pattern of the given
// total weight.
func (a *scalarAccumulator) pattern(weight int64) *sifault.Pattern {
	p := &sifault.Pattern{
		Care:       make([]sifault.Care, 0, len(a.touched)),
		VictimPos:  -1,
		VictimCore: -1,
		Weight:     int32(weight),
	}
	sort.Slice(a.touched, func(i, j int) bool { return a.touched[i] < a.touched[j] })
	for _, pos := range a.touched {
		p.Care = append(p.Care, sifault.Care{Pos: pos, Sym: a.sym[pos]})
	}
	sort.Slice(a.busUsed, func(i, j int) bool { return a.busUsed[i] < a.busUsed[j] })
	for _, l := range a.busUsed {
		p.Bus = append(p.Bus, sifault.BusUse{Line: l, Driver: a.drv[l]})
	}
	return p
}

// greedyScalar is the reference greedy clique cover on the scalar
// accumulator, byte-identical in output to the production bitset path.
func greedyScalar(ctx context.Context, sp *sifault.Space, patterns []*sifault.Pattern) ([]*sifault.Pattern, Stats, bool) {
	acc := newScalarAccumulator(sp.Total(), sp.BusWidth())
	remaining := make([]int, len(patterns))
	var original int64
	for i, p := range patterns {
		remaining[i] = i
		original += int64(p.Weight)
	}

	var out []*sifault.Pattern
	cut := false
	passes := 0
	for len(remaining) > 0 {
		if ctx.Err() != nil {
			cut = true
			for _, idx := range remaining {
				out = append(out, patterns[idx])
			}
			break
		}
		acc.reset()
		seed := patterns[remaining[0]]
		acc.merge(seed)
		weight := int64(seed.Weight)

		next := remaining[:0]
		for _, idx := range remaining[1:] {
			p := patterns[idx]
			if acc.compatible(p) {
				acc.merge(p)
				weight += int64(p.Weight)
			} else {
				next = append(next, idx)
			}
		}
		remaining = next
		out = append(out, acc.pattern(weight))
		passes++
	}
	return out, Stats{Original: original, Compacted: len(out), Passes: passes}, cut
}
