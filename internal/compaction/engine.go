package compaction

import (
	"context"
	"math/bits"
	"sort"

	"sitam/internal/sifault"
)

// Conflict-index first-fit engine.
//
// The fused super-pass form of the greedy clique cover (see greedy's
// history in compaction.go and the equivalence argument on GreedyWith)
// spends essentially all of its time answering one question per
// (candidate, open accumulator) pair: "do they conflict?". The packed
// bit-plane probe answers it in a handful of word operations, but the
// answer is recomputed per pair — Θ(Σ bin-index) probes over a run,
// ~4·10^8 on the Nr=100k acceptance corpus.
//
// This engine answers the question for all open accumulators of a
// super-pass at once, with accumulator-indexed bitmasks built around
// the structure of SI patterns:
//
//   - bus lines: an accumulator occupies a line with exactly one
//     driver, so per line a mask of occupying accumulators (busOcc)
//     and per (line, driver) a mask of same-driver occupants (busDrv)
//     decide every bus conflict in two words: busOcc[L] &^ busDrv[L][d].
//
//   - full-block care: SI patterns quiesce the victim core, so their
//     care typically covers the core's whole WOC block. Two patterns
//     that both cover block g in full are compatible exactly when
//     their block contents are IDENTICAL — an equality, so contents
//     are interned into per-block classes at pack time and per class a
//     mask of accumulators holding that class (clsState[..][0]) turns
//     the whole same-block check into fullOcc[g] &^ sameMask.
//
//   - loose care (externals, partially-quiesced or file-loaded
//     patterns): per WOC position, a mask of accumulators caring at
//     that position (posOcc any-plane) and per symbol the agreeing
//     subset — a candidate's loose position kills occAny &^ occSym.
//     The mirror case, an accumulator's loose care landing inside a
//     candidate's full block, is resolved by pack-time AGREE sets:
//     for every distinct (position, symbol) loose pair the set of
//     block classes it agrees with; an accumulator's first loose in a
//     block ORs itself into the okMask (clsState[..][1]) of the
//     agreeing classes, so the query is baseKill[g] &^ okMask.
//
// Every mask is conflict-SOUND (a set bit proves a conflict; an
// accumulator is only excused when agreement is proven), and the flat
// per-accumulator bit planes are kept as ground truth: whatever the
// masks cannot decide exactly — an accumulator with two or more loose
// positions in one block (stale okMask), a block whose AGREE table
// blew the pack-time budget, a candidate with more loose care than
// looseCap — is routed to the generic word probe via suspect masks.
// Byte-identity with the scalar reference therefore never depends on
// the filters being complete, only sound; the differential and fuzz
// suites pin it across fixtures and worker counts.
const (
	fanout = 64 // open accumulators per super-pass == bits per accumulator mask

	// looseCap bounds the per-super-pass filter cost of one candidate:
	// candidates with more loose care positions fall back to the
	// generic probe for every surviving accumulator.
	looseCap = 16

	// agreeBudget bounds the total pack-time AGREE table work
	// (Σ nPairs(g)·nClasses(g) over blocks); blocks beyond it resolve
	// loose-vs-full conflicts by probing instead.
	agreeBudget = 1 << 25
)

type fullRef struct {
	block int32 // block (core) index in space order
	cls   int32 // interned block-content class
}

type looseRef struct {
	pos   int32 // WOC position
	block int32 // owning block
	pair  int32 // per-block (offset, symbol) pair id
	sym   uint8 // Symbol-1 (0..3)
}

type busRef struct {
	line   int32 // bus line
	drv    int32 // dense driver index
	driver int32 // raw driving core ID (for materialization)
}

type pairKey struct {
	off int32 // position offset within the block
	sym uint8
}

// ffEngine is one shard's first-fit run: packed candidates plus the
// per-super-pass accumulator mask state. All slices are reused across
// passes; reset cost is proportional to what the pass touched.
type ffEngine struct {
	patterns []*sifault.Pattern
	idxs     []int32 // global pattern indices of this shard, ascending

	nWords  int32
	nBlocks int
	nBus    int
	nDrv    int

	blockStart []int32
	blockLen   []int32

	// Per-candidate packed metadata (arena-backed, index-aligned with idxs).
	words    [][]sifault.PackedWord
	fulls    [][]fullRef
	looses   [][]looseRef
	buses    [][]busRef
	filtered []bool

	// Per-block class interning.
	nCls       []int32
	clsOff     []int32   // block -> first slot in clsState
	clsContent [][]uint8 // block -> concatenated class contents (blockLen symbols each)
	pairs      [][]pairKey
	agree      [][]uint64 // block -> nPairs x stride bitset over classes; nil when not exact
	agreeW     []int32    // block -> stride in words
	agreeT     [][]uint64 // transpose: block -> nCls x strideT bitset over pairs
	agreeTW    []int32    // block -> transpose stride in words
	pairOff    []int32    // block -> first slot in okLoose (prefix over len(pairs))
	looseExact []bool

	busDisabled bool

	// Super-pass state.
	planes     [][3]uint64 // fanout*nWords, accumulator-major
	accWords   [][]int32   // per acc: touched word indices
	accBus     [][]sifault.BusUse
	weights    [fanout]int64
	posOcc     []uint64 // nPos*5: [any, sym0..3] accumulator masks
	posTouched []int32
	fullOcc    []uint64    // per block
	baseKill   []uint64    // per block: accs with loose care there (exact blocks only)
	suspect    []uint64    // per block: accs needing a probe for that block
	okLoose    []uint64    // per (block, pair): accs whose full class agrees with the pair
	okTouched  []int32
	clsState   [][2]uint64 // per class slot: [sameMask, okMask]
	clsTouched []int32
	looseCnt   []uint8 // fanout*nBlocks
	cntTouched []int32
	busOcc     []uint64
	busDrv     []uint64 // nBus*nDrv
	busTouched []int32
}

func newFFEngine(sp *sifault.Space, patterns []*sifault.Pattern, idxs []int32) *ffEngine {
	e := &ffEngine{
		patterns: patterns,
		idxs:     idxs,
		nWords:   int32((sp.Total() + 63) / 64),
		nBus:     sp.BusWidth(),
	}
	order := sp.CoreOrder()
	e.nBlocks = len(order)
	e.blockStart = make([]int32, e.nBlocks)
	e.blockLen = make([]int32, e.nBlocks)
	for i, id := range order {
		start, n := sp.Range(id)
		e.blockStart[i] = int32(start)
		e.blockLen[i] = int32(n)
	}
	e.pack(sp)
	e.buildAgree()
	e.initState(sp)
	return e
}

// pack interns every candidate into packed care words plus the
// full/loose/bus metadata the filter masks operate on.
func (e *ffEngine) pack(sp *sifault.Space) {
	n := len(e.idxs)
	var nWordsTotal, nCareTotal, nBusTotal int
	for _, gi := range e.idxs {
		p := e.patterns[gi]
		nCareTotal += len(p.Care)
		nBusTotal += len(p.Bus)
	}
	nWordsTotal = nCareTotal // upper bound

	wordArena := make([]sifault.PackedWord, 0, nWordsTotal)
	wordOff := make([]int32, n+1)
	fullArena := make([]fullRef, 0, n)
	fullOff := make([]int32, n+1)
	looseArena := make([]looseRef, 0, 16)
	looseOff := make([]int32, n+1)
	busArena := make([]busRef, 0, nBusTotal)
	busOff := make([]int32, n+1)

	clsMap := make([]map[string]int32, e.nBlocks)
	pairMap := make([]map[pairKey]int32, e.nBlocks)
	e.nCls = make([]int32, e.nBlocks)
	e.clsContent = make([][]uint8, e.nBlocks)
	e.pairs = make([][]pairKey, e.nBlocks)
	drvMap := make(map[int32]int32)

	e.filtered = make([]bool, n)
	keyBuf := make([]uint8, 0, 128)

	for ci, gi := range e.idxs {
		p := e.patterns[gi]
		wordOff[ci] = int32(len(wordArena))
		fullOff[ci] = int32(len(fullArena))
		looseOff[ci] = int32(len(looseArena))
		busOff[ci] = int32(len(busArena))

		wordArena = sifault.AppendPackedWords(wordArena, p)

		// Walk the sorted care list block by block; a run covering its
		// whole block is interned as a class, anything else is loose.
		care := p.Care
		bi := 0
		for i := 0; i < len(care); {
			pos := care[i].Pos
			for bi < e.nBlocks-1 && pos >= e.blockStart[bi+1] {
				bi++
			}
			end := e.blockStart[bi] + e.blockLen[bi]
			j := i
			for j < len(care) && care[j].Pos < end {
				j++
			}
			if int32(j-i) == e.blockLen[bi] {
				keyBuf = keyBuf[:0]
				for k := i; k < j; k++ {
					keyBuf = append(keyBuf, uint8(care[k].Sym))
				}
				if clsMap[bi] == nil {
					clsMap[bi] = make(map[string]int32)
				}
				cls, ok := clsMap[bi][string(keyBuf)]
				if !ok {
					cls = e.nCls[bi]
					e.nCls[bi]++
					clsMap[bi][string(keyBuf)] = cls
					e.clsContent[bi] = append(e.clsContent[bi], keyBuf...)
				}
				fullArena = append(fullArena, fullRef{block: int32(bi), cls: cls})
			} else {
				for k := i; k < j; k++ {
					pk := pairKey{off: care[k].Pos - e.blockStart[bi], sym: uint8(care[k].Sym - 1)}
					if pairMap[bi] == nil {
						pairMap[bi] = make(map[pairKey]int32)
					}
					pid, ok := pairMap[bi][pk]
					if !ok {
						pid = int32(len(e.pairs[bi]))
						pairMap[bi][pk] = pid
						e.pairs[bi] = append(e.pairs[bi], pk)
					}
					looseArena = append(looseArena, looseRef{
						pos: care[k].Pos, block: int32(bi), pair: pid, sym: uint8(care[k].Sym - 1),
					})
				}
			}
			i = j
		}
		for _, b := range p.Bus {
			di, ok := drvMap[b.Driver]
			if !ok {
				di = int32(len(drvMap))
				drvMap[b.Driver] = di
			}
			busArena = append(busArena, busRef{line: b.Line, drv: di, driver: b.Driver})
		}
		e.filtered[ci] = int(looseOff[ci])+looseCap >= len(looseArena)
	}
	wordOff[n] = int32(len(wordArena))
	fullOff[n] = int32(len(fullArena))
	looseOff[n] = int32(len(looseArena))
	busOff[n] = int32(len(busArena))

	e.words = make([][]sifault.PackedWord, n)
	e.fulls = make([][]fullRef, n)
	e.looses = make([][]looseRef, n)
	e.buses = make([][]busRef, n)
	for i := 0; i < n; i++ {
		e.words[i] = wordArena[wordOff[i]:wordOff[i+1]:wordOff[i+1]]
		e.fulls[i] = fullArena[fullOff[i]:fullOff[i+1]:fullOff[i+1]]
		e.looses[i] = looseArena[looseOff[i]:looseOff[i+1]:looseOff[i+1]]
		e.buses[i] = busArena[busOff[i]:busOff[i+1]:busOff[i+1]]
	}
	e.nDrv = len(drvMap)
	e.busDisabled = e.nBus > 0 && e.nDrv > 0 && e.nBus*e.nDrv > 1<<22
}

// buildAgree precomputes, per block and per distinct loose (position,
// symbol) pair, the set of block classes that AGREE at that position —
// the basis of the okMask excusal. Blocks whose table would exceed the
// remaining budget fall back to probing (looseExact=false).
func (e *ffEngine) buildAgree() {
	e.agree = make([][]uint64, e.nBlocks)
	e.agreeW = make([]int32, e.nBlocks)
	e.agreeT = make([][]uint64, e.nBlocks)
	e.agreeTW = make([]int32, e.nBlocks)
	e.looseExact = make([]bool, e.nBlocks)
	e.clsOff = make([]int32, e.nBlocks+1)
	e.pairOff = make([]int32, e.nBlocks+1)
	budget := int64(agreeBudget)
	var off, poff int32
	for g := 0; g < e.nBlocks; g++ {
		e.clsOff[g] = off
		e.pairOff[g] = poff
		off += e.nCls[g]
		poff += int32(len(e.pairs[g]))
		nP, nC := int64(len(e.pairs[g])), int64(e.nCls[g])
		if nC == 0 {
			continue
		}
		if nP == 0 {
			e.looseExact[g] = true
			continue
		}
		if nP*nC > budget {
			continue
		}
		budget -= nP * nC
		stride := int32((nC + 63) / 64)
		strideT := int32((nP + 63) / 64)
		e.agreeW[g] = stride
		e.agreeTW[g] = strideT
		tbl := make([]uint64, nP*int64(stride))
		tblT := make([]uint64, nC*int64(strideT))
		content := e.clsContent[g]
		bl := int(e.blockLen[g])
		for pi, pk := range e.pairs[g] {
			row := tbl[int32(pi)*stride : (int32(pi)+1)*stride]
			for j := 0; j < int(nC); j++ {
				if content[j*bl+int(pk.off)] == pk.sym+1 {
					row[j>>6] |= 1 << uint(j&63)
					tblT[int32(j)*strideT+int32(pi>>6)] |= 1 << uint(pi&63)
				}
			}
		}
		e.agree[g] = tbl
		e.agreeT[g] = tblT
		e.looseExact[g] = true
	}
	e.clsOff[e.nBlocks] = off
	e.pairOff[e.nBlocks] = poff
}

func (e *ffEngine) initState(sp *sifault.Space) {
	e.planes = make([][3]uint64, int(e.nWords)*fanout)
	e.accWords = make([][]int32, fanout)
	e.accBus = make([][]sifault.BusUse, fanout)
	e.posOcc = make([]uint64, sp.Total()*5)
	e.fullOcc = make([]uint64, e.nBlocks)
	e.baseKill = make([]uint64, e.nBlocks)
	e.suspect = make([]uint64, e.nBlocks)
	e.clsState = make([][2]uint64, e.clsOff[e.nBlocks])
	e.okLoose = make([]uint64, e.pairOff[e.nBlocks])
	e.looseCnt = make([]uint8, fanout*e.nBlocks)
	e.busOcc = make([]uint64, e.nBus)
	if !e.busDisabled {
		e.busDrv = make([]uint64, e.nBus*e.nDrv)
	}
}

// probe is the ground-truth conflict check of candidate ci against
// accumulator b: the generic packed-word walk over the flat planes
// (plus the bus lists when the bus masks are disabled). It reports
// whether the candidate CAN merge.
func (e *ffEngine) probe(b int, ci int32) bool {
	base := b * int(e.nWords)
	planes := e.planes
	words := e.words[ci]
	for i := range words {
		w := &words[i]
		pl := &planes[base+int(w.Idx)]
		if pl[0]&w.Care&((pl[1]^w.V0)|(pl[2]^w.V1)) != 0 {
			return false
		}
	}
	if e.busDisabled {
		for _, bu := range e.buses[ci] {
			for _, have := range e.accBus[b] {
				if have.Line == bu.line && have.Driver != bu.driver {
					return false
				}
			}
		}
	}
	return true
}

// mergeInto absorbs candidate ci into accumulator b, updating the
// ground-truth planes and every filter mask.
func (e *ffEngine) mergeInto(b int, ci int32) {
	bit := uint64(1) << uint(b)
	base := b * int(e.nWords)
	for i := range e.words[ci] {
		w := &e.words[ci][i]
		pl := &e.planes[base+int(w.Idx)]
		if pl[0] == 0 {
			e.accWords[b] = append(e.accWords[b], w.Idx)
		}
		pl[0] |= w.Care
		pl[1] |= w.V0
		pl[2] |= w.V1
	}
	for _, f := range e.fulls[ci] {
		if e.fullOcc[f.block]&bit == 0 {
			// First full content of this accumulator in the block (any
			// later one is the same class — different classes conflict):
			// excuse the accumulator on every loose pair its content
			// agrees with, so the loose-vs-full query is two words.
			if tt := e.agreeT[f.block]; tt != nil {
				strideT := e.agreeTW[f.block]
				row := tt[f.cls*strideT : (f.cls+1)*strideT]
				pbase := e.pairOff[f.block]
				for wi, wv := range row {
					for wv != 0 {
						slot := pbase + int32(wi<<6) + int32(bits.TrailingZeros64(wv))
						wv &= wv - 1
						if e.okLoose[slot] == 0 {
							e.okTouched = append(e.okTouched, slot)
						}
						e.okLoose[slot] |= bit
					}
				}
			}
		}
		e.fullOcc[f.block] |= bit
		slot := e.clsOff[f.block] + f.cls
		st := &e.clsState[slot]
		if st[0] == 0 && st[1] == 0 {
			e.clsTouched = append(e.clsTouched, slot)
		}
		st[0] |= bit
	}
	for _, l := range e.looses[ci] {
		o := e.posOcc[int(l.pos)*5 : int(l.pos)*5+5]
		if o[0] == 0 {
			e.posTouched = append(e.posTouched, l.pos)
		}
		o[0] |= bit
		o[1+l.sym] |= bit
		g := l.block
		cntIdx := int32(b)*int32(e.nBlocks) + g
		switch e.looseCnt[cntIdx] {
		case 0:
			e.looseCnt[cntIdx] = 1
			e.cntTouched = append(e.cntTouched, cntIdx)
			if e.looseExact[g] {
				e.baseKill[g] |= bit
				if tbl := e.agree[g]; tbl != nil {
					stride := e.agreeW[g]
					row := tbl[l.pair*stride : (l.pair+1)*stride]
					cbase := e.clsOff[g]
					for wi, wv := range row {
						for wv != 0 {
							j := int32(wi<<6) + int32(bits.TrailingZeros64(wv))
							wv &= wv - 1
							st := &e.clsState[cbase+j]
							if st[0] == 0 && st[1] == 0 {
								e.clsTouched = append(e.clsTouched, cbase+j)
							}
							st[1] |= bit
						}
					}
				}
			} else {
				e.suspect[g] |= bit
			}
		case 1:
			e.looseCnt[cntIdx] = 2
			e.suspect[g] |= bit
		}
	}
	for _, bu := range e.buses[ci] {
		if e.busOcc[bu.line]&bit == 0 {
			e.busOcc[bu.line] |= bit
			e.accBus[b] = append(e.accBus[b], sifault.BusUse{Line: bu.line, Driver: bu.driver})
			if !e.busDisabled {
				di := bu.line*int32(e.nDrv) + bu.drv
				e.busDrv[di] |= bit
				e.busTouched = append(e.busTouched, di)
			}
		}
	}
	e.weights[b] += int64(e.patterns[e.idxs[ci]].Weight)
}

// materialize emits accumulator b as a merged pattern, byte-identical
// to the scalar reference's output: care sorted by position, bus uses
// sorted by line.
func (e *ffEngine) materialize(b int) *sifault.Pattern {
	p := &sifault.Pattern{
		VictimPos:  -1,
		VictimCore: -1,
		Weight:     int32(e.weights[b]),
	}
	tw := e.accWords[b]
	sort.Slice(tw, func(i, j int) bool { return tw[i] < tw[j] })
	base := b * int(e.nWords)
	n := 0
	for _, wi := range tw {
		n += bits.OnesCount64(e.planes[base+int(wi)][0])
	}
	p.Care = make([]sifault.Care, 0, n)
	for _, wi := range tw {
		pl := &e.planes[base+int(wi)]
		wbase := wi << 6
		for m := pl[0]; m != 0; m &= m - 1 {
			bb := uint(bits.TrailingZeros64(m))
			sym := sifault.Symbol(1 + (pl[1]>>bb)&1 + 2*((pl[2]>>bb)&1))
			p.Care = append(p.Care, sifault.Care{Pos: wbase + int32(bb), Sym: sym})
		}
	}
	bus := e.accBus[b]
	sort.Slice(bus, func(i, j int) bool { return bus[i].Line < bus[j].Line })
	for _, u := range bus {
		p.Bus = append(p.Bus, u)
	}
	return p
}

// resetPass clears exactly the state the finished super-pass touched.
func (e *ffEngine) resetPass(nOpen int) {
	for b := 0; b < nOpen; b++ {
		base := b * int(e.nWords)
		for _, wi := range e.accWords[b] {
			e.planes[base+int(wi)] = [3]uint64{}
		}
		e.accWords[b] = e.accWords[b][:0]
		e.accBus[b] = e.accBus[b][:0]
		e.weights[b] = 0
	}
	for _, p := range e.posTouched {
		o := e.posOcc[int(p)*5 : int(p)*5+5]
		o[0], o[1], o[2], o[3], o[4] = 0, 0, 0, 0, 0
	}
	e.posTouched = e.posTouched[:0]
	for _, slot := range e.clsTouched {
		e.clsState[slot] = [2]uint64{}
	}
	e.clsTouched = e.clsTouched[:0]
	for _, slot := range e.okTouched {
		e.okLoose[slot] = 0
	}
	e.okTouched = e.okTouched[:0]
	for _, i := range e.cntTouched {
		e.looseCnt[i] = 0
	}
	e.cntTouched = e.cntTouched[:0]
	for _, di := range e.busTouched {
		e.busDrv[di] = 0
	}
	e.busTouched = e.busTouched[:0]
	for g := range e.fullOcc {
		e.fullOcc[g] = 0
		e.baseKill[g] = 0
		e.suspect[g] = 0
	}
	for l := range e.busOcc {
		e.busOcc[l] = 0
	}
}

// run first-fits the shard. bins holds the materialized merged
// patterns in bin order; raw holds the GLOBAL pattern indices of the
// untouched pass-through remainder of a context-cut run (cut=true),
// ascending, so the caller can interleave cut tails across shards in
// input order.
func (e *ffEngine) run(ctx context.Context) (bins []*sifault.Pattern, raw []int32, cut bool) {
	remaining := make([]int32, len(e.idxs))
	for i := range remaining {
		remaining[i] = int32(i)
	}
	for len(remaining) > 0 {
		// Context honored at super-pass granularity, as in the serial
		// greedy: a cut passes the unmerged remainder through.
		if ctx.Err() != nil {
			for _, ci := range remaining {
				raw = append(raw, e.idxs[ci])
			}
			return bins, raw, true
		}
		nOpen := 0
		openMask := uint64(0)
		next := remaining[:0]
		for _, ci := range remaining {
			kill := uint64(0)
			probeNeed := uint64(0)
			if !e.busDisabled {
				for _, bu := range e.buses[ci] {
					kill |= e.busOcc[bu.line] &^ e.busDrv[bu.line*int32(e.nDrv)+bu.drv]
				}
			} else if len(e.buses[ci]) > 0 {
				probeNeed = ^uint64(0)
			}
			for _, f := range e.fulls[ci] {
				st := &e.clsState[e.clsOff[f.block]+f.cls]
				kill |= e.fullOcc[f.block] &^ st[0]
				kill |= e.baseKill[f.block] &^ st[1]
				probeNeed |= e.suspect[f.block]
			}
			for _, l := range e.looses[ci] {
				o := e.posOcc[int(l.pos)*5 : int(l.pos)*5+5]
				kill |= o[0] &^ o[1+l.sym]
				// Loose-vs-full: an accumulator holding a FULL content
				// class for this block conflicts exactly when that
				// class disagrees at this position — okLoose holds the
				// agreeing accumulators, maintained on full merges.
				// Blocks without an AGREE table (budget overflow)
				// route their full occupants to the probe instead.
				g := l.block
				if e.agreeT[g] != nil {
					kill |= e.fullOcc[g] &^ e.okLoose[e.pairOff[g]+l.pair]
				} else {
					probeNeed |= e.fullOcc[g]
				}
			}
			if !e.filtered[ci] {
				probeNeed = ^uint64(0)
			}
			surv := openMask &^ kill
			for surv != 0 {
				b := bits.TrailingZeros64(surv)
				if probeNeed&(1<<uint(b)) == 0 || e.probe(b, ci) {
					e.mergeInto(b, ci)
					goto placed
				}
				surv &= surv - 1
			}
			if nOpen < fanout {
				// Rejected by every open accumulator: seed the next one
				// (the serial rule "the first reject of a pass seeds
				// the next pass").
				e.mergeInto(nOpen, ci)
				nOpen++
				openMask = openMask<<1 | 1
				continue
			}
			next = append(next, ci)
		placed:
		}
		remaining = next
		for b := 0; b < nOpen; b++ {
			bins = append(bins, e.materialize(b))
		}
		e.resetPass(nOpen)
	}
	return bins, nil, false
}
