package compaction

import (
	"context"
	"fmt"
	"testing"

	"sitam/internal/sifault"
	"sitam/internal/soc"
)

// Benchmark_CompactionSharded measures the conflict-sharded parallel
// first-fit against its own serial drain on the paper's N_r=100 000
// p93791 working point. Every worker count produces byte-identical
// output (differential + fuzz suites at workers {1,2,8}), so the
// sub-benches are pure wall-clock; the acceptance bar is a >= 3x
// speedup of the saturated pool over workers=1. The "patterns" metric
// pins the compacted count so a plan change that trades output quality
// for speed cannot hide in the timing.
func Benchmark_CompactionSharded(b *testing.B) {
	s := soc.MustLoadBenchmark("p93791")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 100000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sp := sifault.NewSpace(s)
	ctx := context.Background()
	for _, w := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var compacted int
			for i := 0; i < b.N; i++ {
				_, stats, cut := greedyWith(ctx, sp, patterns, Config{Workers: w})
				if cut {
					b.Fatal("compaction cut without a deadline")
				}
				compacted = stats.Compacted
			}
			b.ReportMetric(float64(compacted), "patterns")
		})
	}
}
