package compaction

import (
	"context"
	"testing"

	"sitam/internal/sifault"
	"sitam/internal/soc"
)

// Benchmark_CompactionBitset compares the word-parallel bitset greedy
// clique cover against the scalar per-care-position reference on a
// production-scale pattern set (the paper's N_r=100 000 working point
// on p93791). Both paths produce byte-identical output (see the
// differential tests), so the comparison is pure wall-clock; the
// acceptance bar is a >= 4x bitset speedup.
func Benchmark_CompactionBitset(b *testing.B) {
	s := soc.MustLoadBenchmark("p93791")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 100000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sp := sifault.NewSpace(s)
	ctx := context.Background()
	b.Run("bitset", func(b *testing.B) {
		var compacted int
		for i := 0; i < b.N; i++ {
			_, stats, _ := greedy(ctx, sp, patterns)
			compacted = stats.Compacted
		}
		b.ReportMetric(float64(compacted), "patterns")
	})
	b.Run("scalar", func(b *testing.B) {
		var compacted int
		for i := 0; i < b.N; i++ {
			_, stats, _ := greedyScalar(ctx, sp, patterns)
			compacted = stats.Compacted
		}
		b.ReportMetric(float64(compacted), "patterns")
	})
}
