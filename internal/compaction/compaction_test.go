package compaction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sitam/internal/sifault"
	"sitam/internal/soc"
)

func miniSOC() *soc.SOC {
	return &soc.SOC{
		Name:     "mini",
		BusWidth: 4,
		CoreList: []*soc.Core{
			{ID: 1, Inputs: 2, Outputs: 4, Patterns: 1},
			{ID: 2, Inputs: 2, Outputs: 4, Patterns: 1},
			{ID: 3, Inputs: 2, Outputs: 4, Patterns: 1},
		},
	}
}

func pat(weight int32, care []sifault.Care, bus []sifault.BusUse) *sifault.Pattern {
	return &sifault.Pattern{Care: care, Bus: bus, VictimPos: -1, VictimCore: -1, Weight: weight}
}

func TestCompatibleSymbols(t *testing.T) {
	a := pat(1, []sifault.Care{{Pos: 0, Sym: sifault.Rise}, {Pos: 5, Sym: sifault.Zero}}, nil)
	b := pat(1, []sifault.Care{{Pos: 1, Sym: sifault.Fall}, {Pos: 5, Sym: sifault.Zero}}, nil)
	c := pat(1, []sifault.Care{{Pos: 5, Sym: sifault.One}}, nil)
	if !Compatible(a, b) {
		t.Error("a,b should be compatible (disjoint + equal overlap)")
	}
	if Compatible(a, c) {
		t.Error("a,c conflict at position 5 (0 vs 1)")
	}
}

func TestCompatibleBusRule(t *testing.T) {
	// Same line, same driver: compatible. Same line, different driver:
	// not (Section 3's shared-bus rule).
	a := pat(1, []sifault.Care{{Pos: 0, Sym: sifault.Rise}}, []sifault.BusUse{{Line: 2, Driver: 1}})
	b := pat(1, []sifault.Care{{Pos: 1, Sym: sifault.Rise}}, []sifault.BusUse{{Line: 2, Driver: 1}})
	c := pat(1, []sifault.Care{{Pos: 4, Sym: sifault.Rise}}, []sifault.BusUse{{Line: 2, Driver: 2}})
	d := pat(1, []sifault.Care{{Pos: 8, Sym: sifault.Rise}}, []sifault.BusUse{{Line: 3, Driver: 3}})
	if !Compatible(a, b) {
		t.Error("same line same driver should merge")
	}
	if Compatible(a, c) {
		t.Error("same line different driver must not merge")
	}
	if !Compatible(a, d) {
		t.Error("different lines should merge")
	}
}

func TestMerge(t *testing.T) {
	a := pat(2, []sifault.Care{{Pos: 0, Sym: sifault.Rise}, {Pos: 5, Sym: sifault.Zero}},
		[]sifault.BusUse{{Line: 1, Driver: 1}})
	b := pat(3, []sifault.Care{{Pos: 3, Sym: sifault.Fall}, {Pos: 5, Sym: sifault.Zero}},
		[]sifault.BusUse{{Line: 1, Driver: 1}, {Line: 3, Driver: 1}})
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Weight != 5 {
		t.Errorf("Weight = %d, want 5", m.Weight)
	}
	if len(m.Care) != 3 {
		t.Fatalf("Care = %v", m.Care)
	}
	wantCare := []sifault.Care{{Pos: 0, Sym: sifault.Rise}, {Pos: 3, Sym: sifault.Fall}, {Pos: 5, Sym: sifault.Zero}}
	for i, c := range m.Care {
		if c != wantCare[i] {
			t.Errorf("Care[%d] = %v, want %v", i, c, wantCare[i])
		}
	}
	if len(m.Bus) != 2 || m.Bus[0].Line != 1 || m.Bus[1].Line != 3 {
		t.Errorf("Bus = %v", m.Bus)
	}

	c := pat(1, []sifault.Care{{Pos: 0, Sym: sifault.Fall}}, nil)
	if _, err := Merge(a, c); err == nil {
		t.Error("Merge accepted incompatible patterns")
	}
}

func TestGreedySmall(t *testing.T) {
	sp := sifault.NewSpace(miniSOC())
	patterns := []*sifault.Pattern{
		pat(1, []sifault.Care{{Pos: 0, Sym: sifault.Rise}}, nil),
		pat(1, []sifault.Care{{Pos: 1, Sym: sifault.Fall}}, nil),
		pat(1, []sifault.Care{{Pos: 0, Sym: sifault.Fall}}, nil), // conflicts with #0
		pat(1, []sifault.Care{{Pos: 2, Sym: sifault.One}}, nil),
	}
	out, stats := Greedy(sp, patterns)
	if stats.Original != 4 {
		t.Errorf("Original = %d", stats.Original)
	}
	if len(out) != 2 {
		t.Fatalf("Compacted = %d, want 2 (patterns 0,1,3 merge; 2 alone)", len(out))
	}
	if out[0].Weight != 3 || out[1].Weight != 1 {
		t.Errorf("weights = %d,%d, want 3,1", out[0].Weight, out[1].Weight)
	}
	if stats.Ratio() != 2.0 {
		t.Errorf("Ratio = %v", stats.Ratio())
	}
}

func TestGreedyEmpty(t *testing.T) {
	sp := sifault.NewSpace(miniSOC())
	out, stats := Greedy(sp, nil)
	if len(out) != 0 || stats.Original != 0 || stats.Compacted != 0 {
		t.Errorf("Greedy(nil) = %v, %+v", out, stats)
	}
	if stats.Ratio() != 0 {
		t.Errorf("empty Ratio = %v", stats.Ratio())
	}
}

// randomPatterns generates patterns through the real generator for
// property tests.
func randomPatterns(t *testing.T, n int, seed int64) (*sifault.Space, []*sifault.Pattern) {
	t.Helper()
	s := miniSOC()
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return sifault.NewSpace(s), patterns
}

func TestGreedyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		sp, patterns := randomPatterns(t, 60, seed)
		out, stats := Greedy(sp, patterns)
		// Weight conservation.
		var wantW, gotW int64
		for _, p := range patterns {
			wantW += int64(p.Weight)
		}
		for _, p := range out {
			gotW += int64(p.Weight)
			if err := p.Validate(sp); err != nil {
				t.Logf("invalid merged pattern: %v", err)
				return false
			}
		}
		if gotW != wantW || stats.Original != wantW {
			return false
		}
		// Every original pattern is covered by (compatible with, and
		// subsumed by) at least one merged pattern.
		for _, p := range patterns {
			covered := false
			for _, m := range out {
				if subsumes(m, p) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return len(out) <= len(patterns)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// subsumes reports whether merged pattern m determines every care bit of
// p with the same symbol and covers its bus usage.
func subsumes(m, p *sifault.Pattern) bool {
	for _, c := range p.Care {
		if m.SymbolAt(c.Pos) != c.Sym {
			return false
		}
	}
	for _, b := range p.Bus {
		found := false
		for _, mb := range m.Bus {
			if mb.Line == b.Line && mb.Driver == b.Driver {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestGreedyIdempotent(t *testing.T) {
	sp, patterns := randomPatterns(t, 200, 11)
	once, s1 := Greedy(sp, patterns)
	twice, s2 := Greedy(sp, once)
	// Merged patterns of one greedy pass are mutually incompatible, so
	// a second pass is a no-op.
	if s2.Compacted != s1.Compacted || len(twice) != len(once) {
		t.Errorf("second pass changed count: %d -> %d", s1.Compacted, s2.Compacted)
	}
}

func TestGreedyOutputMutuallyIncompatible(t *testing.T) {
	sp, patterns := randomPatterns(t, 300, 13)
	out, _ := Greedy(sp, patterns)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if Compatible(out[i], out[j]) {
				// Greedy guarantees pattern j was incompatible with the
				// accumulated pattern i at the time; the final merged
				// patterns can occasionally be compatible again only if
				// intermediate merges introduced then removed conflicts,
				// which cannot happen (merging only adds constraints).
				t.Errorf("merged patterns %d and %d are still compatible", i, j)
			}
		}
	}
}

func TestDSATURMatchesOrBeatsGreedyOnSmall(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		sp, patterns := randomPatterns(t, 40, seed)
		_, gs := Greedy(sp, patterns)
		_, ds, err := DSATUR(patterns)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Compacted > gs.Compacted+3 {
			t.Errorf("seed %d: DSATUR %d much worse than greedy %d", seed, ds.Compacted, gs.Compacted)
		}
		if ds.Original != gs.Original {
			t.Errorf("seed %d: weight mismatch %d vs %d", seed, ds.Original, gs.Original)
		}
	}
}

func TestExactIsLowerBound(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		sp, patterns := randomPatterns(t, 12, seed)
		_, gs := Greedy(sp, patterns)
		_, ds, err := DSATUR(patterns)
		if err != nil {
			t.Fatal(err)
		}
		_, es, err := Exact(patterns)
		if err != nil {
			t.Fatal(err)
		}
		if es.Compacted > gs.Compacted || es.Compacted > ds.Compacted {
			t.Errorf("seed %d: exact %d worse than greedy %d / DSATUR %d",
				seed, es.Compacted, gs.Compacted, ds.Compacted)
		}
	}
}

func TestExactRejectsLarge(t *testing.T) {
	_, patterns := randomPatterns(t, 30, 1)
	if _, _, err := Exact(patterns); err == nil {
		t.Error("Exact accepted 30 patterns")
	}
}

func TestExactEmpty(t *testing.T) {
	out, stats, err := Exact(nil)
	if err != nil || len(out) != 0 || stats.Compacted != 0 {
		t.Errorf("Exact(nil) = %v, %+v, %v", out, stats, err)
	}
	out, stats, err = DSATUR(nil)
	if err != nil || len(out) != 0 || stats.Compacted != 0 {
		t.Errorf("DSATUR(nil) = %v, %+v, %v", out, stats, err)
	}
}

func TestPairwiseImpliesSetwise(t *testing.T) {
	// The package comment's claim: any pairwise-compatible set merges
	// cleanly. Check on random triples.
	rng := rand.New(rand.NewSource(3))
	sp, patterns := randomPatterns(t, 120, 17)
	_ = sp
	for trial := 0; trial < 2000; trial++ {
		i, j, k := rng.Intn(len(patterns)), rng.Intn(len(patterns)), rng.Intn(len(patterns))
		a, b, c := patterns[i], patterns[j], patterns[k]
		if Compatible(a, b) && Compatible(b, c) && Compatible(a, c) {
			ab, err := Merge(a, b)
			if err != nil {
				t.Fatalf("a,b compatible but Merge failed: %v", err)
			}
			if !Compatible(ab, c) {
				t.Fatalf("pairwise-compatible triple not setwise mergeable (trial %d)", trial)
			}
			if _, err := Merge(ab, c); err != nil {
				t.Fatal(err)
			}
		}
	}
}
