package compaction

import (
	"context"
	"fmt"

	"sitam/internal/sifault"
)

// This file holds reference clique-cover algorithms used to validate the
// greedy heuristic and to run the ablation benches. Minimum clique cover
// of the compatibility graph equals minimum proper coloring of its
// complement (the conflict graph); a color class of the conflict graph is
// a pairwise-compatible set, which (see package comment) is always a
// valid merged pattern.

// conflictGraph builds the adjacency matrix of the conflict graph:
// adj[i][j] is true when patterns i and j must NOT be merged.
func conflictGraph(patterns []*sifault.Pattern) [][]bool {
	n := len(patterns)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !Compatible(patterns[i], patterns[j]) {
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}
	return adj
}

// groupsToPatterns merges each index group into one pattern.
func groupsToPatterns(patterns []*sifault.Pattern, groups [][]int) ([]*sifault.Pattern, error) {
	out := make([]*sifault.Pattern, 0, len(groups))
	for _, g := range groups {
		m := patterns[g[0]].Clone()
		m.VictimPos, m.VictimCore = -1, -1
		for _, idx := range g[1:] {
			var err error
			m, err = Merge(m, patterns[idx])
			if err != nil {
				return nil, fmt.Errorf("compaction: reference cover produced invalid group: %w", err)
			}
		}
		out = append(out, m)
	}
	return out, nil
}

// DSATUR compacts patterns by DSATUR coloring of the conflict graph.
// It is O(n^2) in the pattern count and intended for small-to-medium
// instances; the greedy heuristic is the production path.
func DSATUR(patterns []*sifault.Pattern) ([]*sifault.Pattern, Stats, error) {
	n := len(patterns)
	if n == 0 {
		return nil, Stats{}, nil
	}
	adj := conflictGraph(patterns)
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	degree := make([]int, n)
	for i := range adj {
		for j := range adj[i] {
			if adj[i][j] {
				degree[i]++
			}
		}
	}
	satur := make([]map[int]struct{}, n)
	for i := range satur {
		satur[i] = make(map[int]struct{})
	}
	nColors := 0
	for done := 0; done < n; done++ {
		// Pick the uncolored vertex with maximum saturation, breaking
		// ties by degree then index (deterministic).
		best := -1
		for i := 0; i < n; i++ {
			if color[i] >= 0 {
				continue
			}
			if best < 0 ||
				len(satur[i]) > len(satur[best]) ||
				(len(satur[i]) == len(satur[best]) && degree[i] > degree[best]) {
				best = i
			}
		}
		c := 0
		for {
			if _, used := satur[best][c]; !used {
				break
			}
			c++
		}
		color[best] = c
		if c+1 > nColors {
			nColors = c + 1
		}
		for j := 0; j < n; j++ {
			if adj[best][j] && color[j] < 0 {
				satur[j][c] = struct{}{}
			}
		}
	}
	groups := make([][]int, nColors)
	for i, c := range color {
		groups[c] = append(groups[c], i)
	}
	out, err := groupsToPatterns(patterns, groups)
	if err != nil {
		return nil, Stats{}, err
	}
	var original int64
	for _, p := range patterns {
		original += int64(p.Weight)
	}
	return out, Stats{Original: original, Compacted: len(out), Passes: n}, nil
}

// Exact computes a minimum clique cover by exact graph coloring of the
// conflict graph with branch-and-bound. Exponential; callers should keep
// n at or below roughly 20. Used only in tests to bound the greedy
// heuristic's optimality gap. It is ExactCtx without cancellation.
func Exact(patterns []*sifault.Pattern) ([]*sifault.Pattern, Stats, error) {
	return ExactCtx(context.Background(), patterns)
}

// ExactCtx is Exact under a context. Cancellation or an expired
// deadline aborts the branch-and-bound with an error wrapping
// ctx.Err(): a truncated search cannot certify minimality, so there is
// no degraded result.
func ExactCtx(ctx context.Context, patterns []*sifault.Pattern) ([]*sifault.Pattern, Stats, error) {
	n := len(patterns)
	if n == 0 {
		return nil, Stats{}, nil
	}
	if n > 24 {
		return nil, Stats{}, fmt.Errorf("compaction: exact cover limited to 24 patterns, got %d", n)
	}
	adj := conflictGraph(patterns)

	// Upper bound from DSATUR.
	dsat, stats, err := DSATUR(patterns)
	if err != nil {
		return nil, Stats{}, err
	}
	bestK := stats.Compacted
	_ = dsat

	color := make([]int, n)
	bestColor := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	// Order vertices by decreasing degree for faster pruning.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	deg := make([]int, n)
	for i := range adj {
		for j := range adj[i] {
			if adj[i][j] {
				deg[i]++
			}
		}
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && deg[order[j]] > deg[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	var solve func(idx, used int) bool
	found := false
	nodes := 0
	stopped := false
	solve = func(idx, used int) bool {
		nodes++
		if nodes&255 == 0 && ctx.Err() != nil {
			stopped = true
		}
		if stopped || used >= bestK {
			return false
		}
		if idx == n {
			bestK = used
			copy(bestColor, color)
			found = true
			return true
		}
		v := order[idx]
		var forbidden uint32
		for u := 0; u < n; u++ {
			if adj[v][u] && color[u] >= 0 {
				forbidden |= 1 << uint(color[u])
			}
		}
		for c := 0; c < used+1 && c < bestK; c++ {
			if forbidden&(1<<uint(c)) != 0 {
				continue
			}
			color[v] = c
			nu := used
			if c == used {
				nu++
			}
			solve(idx+1, nu)
			color[v] = -1
		}
		return false
	}
	solve(0, 0)
	if stopped {
		return nil, Stats{}, fmt.Errorf("compaction: exact cover interrupted after %d nodes: %w", nodes, ctx.Err())
	}
	if !found {
		// DSATUR was already optimal; recolor with its assignment.
		return dsat, stats, nil
	}
	groups := make([][]int, bestK)
	for i, c := range bestColor {
		groups[c] = append(groups[c], i)
	}
	out, err := groupsToPatterns(patterns, groups)
	if err != nil {
		return nil, Stats{}, err
	}
	return out, Stats{Original: stats.Original, Compacted: bestK, Passes: n}, nil
}
