package compaction

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"sitam/internal/obs"
	"sitam/internal/sifault"
)

// Config configures a sharded compaction run (GreedyWith). The zero
// value is valid: automatic worker count, default shard cap, no
// tracing.
type Config struct {
	// Workers is the compaction worker-pool size. <= 0 uses
	// runtime.GOMAXPROCS(0). The worker count NEVER affects the output:
	// the shard plan depends only on the pattern corpus, workers only
	// drain the shard queue.
	Workers int

	// MaxShards caps the shard count of the plan; <= 0 uses
	// DefaultMaxShards. Like Workers, it changes scheduling granularity
	// and balance, not output bytes — but unlike Workers it IS part of
	// the plan, so differential fixtures pin it at the default.
	MaxShards int

	// Sink receives the compaction phase span and deadline events; nil
	// traces nothing.
	Sink obs.Sink

	// Group labels trace events with the pattern group being compacted.
	Group string

	// Metrics, when non-nil, receives the shard-plan counters and
	// gauges (compact_shards, compact_shard_patterns_max/min,
	// compact_shard_imbalance_pct).
	Metrics *obs.Registry
}

// DefaultMaxShards bounds the shard plan: enough slack for large
// worker counts to balance, small enough that per-shard merge state
// stays negligible.
const DefaultMaxShards = 64

// GreedyWith is the sharded, parallel form of GreedyCtx. The corpus is
// partitioned into conflict-closed shards (sifault.PlanShards), each
// shard is first-fit compacted independently by a bounded worker pool,
// and the per-shard bins are merged index-by-index in canonical shard
// order. Because serial first-fit assigns every pattern the bin index
// its conflict component alone would assign (see the component theorem
// in internal/sifault/shard.go), the merged output is byte-identical
// to the serial result at ANY worker count — locked by the
// bitset-vs-scalar differential and fuzz suites at workers {1,2,8}.
//
// Context cuts degrade gracefully exactly like GreedyCtx: bins
// materialized before the cut are followed by the unmerged remainder
// in input order, and the cut flag is returned. A run cancelled before
// any work emits the input unchanged.
func GreedyWith(ctx context.Context, sp *sifault.Space, patterns []*sifault.Pattern, cfg Config) ([]*sifault.Pattern, Stats, bool) {
	span := obs.Span(cfg.Sink, "compaction")
	out, stats, cut := greedyWith(ctx, sp, patterns, cfg)
	if cfg.Sink != nil {
		if cut {
			cfg.Sink.Emit(obs.Event{Type: obs.DeadlineHit, Phase: "compaction", Group: cfg.Group, Cause: obs.CtxCause(ctx.Err())})
		}
		span.End(0, int64(stats.Compacted))
	}
	return out, stats, cut
}

type shardResult struct {
	bins []*sifault.Pattern
	raw  []int32 // global indices of a cut run's pass-through remainder
	cut  bool
}

func greedyWith(ctx context.Context, sp *sifault.Space, patterns []*sifault.Pattern, cfg Config) ([]*sifault.Pattern, Stats, bool) {
	var original int64
	for _, p := range patterns {
		original += int64(p.Weight)
	}
	if len(patterns) == 0 {
		return nil, Stats{Original: original}, false
	}

	maxShards := cfg.MaxShards
	if maxShards <= 0 {
		maxShards = DefaultMaxShards
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	plan := sifault.PlanShards(sp, patterns, maxShards)
	reportShardMetrics(cfg.Metrics, plan)

	results := make([]shardResult, len(plan.Shards))
	runShard := func(si int) {
		e := newFFEngine(sp, patterns, plan.Shards[si])
		bins, raw, cut := e.run(ctx)
		results[si] = shardResult{bins: bins, raw: raw, cut: cut}
	}
	if workers == 1 || len(plan.Shards) == 1 {
		for si := range plan.Shards {
			runShard(si)
		}
	} else {
		if workers > len(plan.Shards) {
			workers = len(plan.Shards)
		}
		var wg sync.WaitGroup
		queue := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for si := range queue {
					runShard(si)
				}
			}()
		}
		for si := range plan.Shards {
			queue <- si
		}
		close(queue)
		wg.Wait()
	}

	// Canonical merge: global bin b is the disjoint union of every
	// shard's local bin b (component theorem), so the output is the
	// bin-wise merge in shard order, then any cut remainders replayed
	// in input order.
	nBins := 0
	for si := range results {
		if n := len(results[si].bins); n > nBins {
			nBins = n
		}
	}
	cut := false
	var rawTotal int
	for si := range results {
		cut = cut || results[si].cut
		rawTotal += len(results[si].raw)
	}
	out := make([]*sifault.Pattern, 0, nBins+rawTotal)
	scratch := make([]*sifault.Pattern, 0, len(results))
	for b := 0; b < nBins; b++ {
		scratch = scratch[:0]
		for si := range results {
			if b < len(results[si].bins) {
				scratch = append(scratch, results[si].bins[b])
			}
		}
		if len(scratch) == 1 {
			out = append(out, scratch[0])
		} else {
			out = append(out, mergeDisjoint(scratch))
		}
	}
	if rawTotal > 0 {
		raw := make([]int32, 0, rawTotal)
		for si := range results {
			raw = append(raw, results[si].raw...)
		}
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		for _, gi := range raw {
			out = append(out, patterns[gi])
		}
	}
	return out, Stats{Original: original, Compacted: len(out), Passes: nBins}, cut
}

// mergeDisjoint merges one global bin's per-shard patterns. Shards are
// conflict-closed, so the care position sets are disjoint (a shared
// position would have glued its users into one component) and any bus
// line present in two shards carries the same driver (ditto for a
// mixed-driver line); the merge is a k-way merge by position / line
// with equal lines deduplicated.
func mergeDisjoint(ps []*sifault.Pattern) *sifault.Pattern {
	var weight int64
	nCare, nBus := 0, 0
	for _, p := range ps {
		weight += int64(p.Weight)
		nCare += len(p.Care)
		nBus += len(p.Bus)
	}
	m := &sifault.Pattern{
		VictimPos:  -1,
		VictimCore: -1,
		Weight:     int32(weight),
	}
	m.Care = make([]sifault.Care, 0, nCare)
	heads := make([]int, len(ps))
	for {
		best := -1
		var bestPos int32
		for i, p := range ps {
			if heads[i] < len(p.Care) {
				if pos := p.Care[heads[i]].Pos; best < 0 || pos < bestPos {
					best, bestPos = i, pos
				}
			}
		}
		if best < 0 {
			break
		}
		m.Care = append(m.Care, ps[best].Care[heads[best]])
		heads[best]++
	}
	if nBus > 0 {
		m.Bus = make([]sifault.BusUse, 0, nBus)
		for i := range heads {
			heads[i] = 0
		}
		for {
			best := -1
			var bestLine int32
			for i, p := range ps {
				if heads[i] < len(p.Bus) {
					if l := p.Bus[heads[i]].Line; best < 0 || l < bestLine {
						best, bestLine = i, l
					}
				}
			}
			if best < 0 {
				break
			}
			u := ps[best].Bus[heads[best]]
			heads[best]++
			if n := len(m.Bus); n == 0 || m.Bus[n-1].Line != u.Line {
				m.Bus = append(m.Bus, u)
			}
		}
	}
	return m
}

// reportShardMetrics records the shard plan's shape: how many shards,
// the component count behind them, and the pattern-count imbalance
// (largest/smallest shard and max-over-mean in percent) — the signal
// for "one giant conflict component is serializing the run".
func reportShardMetrics(m *obs.Registry, plan sifault.ShardPlan) {
	if m == nil || len(plan.Shards) == 0 {
		return
	}
	min, max, total := len(plan.Shards[0]), 0, 0
	for _, s := range plan.Shards {
		n := len(s)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		total += n
	}
	m.Counter("compact_runs").Add(1)
	m.Gauge("compact_shards").Set(int64(len(plan.Shards)))
	m.Gauge("compact_components").Set(int64(plan.Components))
	m.Gauge("compact_shard_patterns_max").Set(int64(max))
	m.Gauge("compact_shard_patterns_min").Set(int64(min))
	mean := float64(total) / float64(len(plan.Shards))
	m.Gauge("compact_shard_imbalance_pct").Set(int64(float64(max) / mean * 100))
}
