package compaction

import (
	"context"
	"testing"

	"sitam/internal/sifault"
	"sitam/internal/soc"
)

// Differential coverage for the word-parallel bitset greedy against
// the scalar per-position reference: the two implementations must
// produce byte-identical compacted pattern sets on real fixtures, on
// fuzzed generator inputs, and the packed conflict check must agree
// with the pairwise Compatible predicate.

func samePatternSets(t *testing.T, got, want []*sifault.Pattern) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("compacted %d patterns, scalar %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Weight != w.Weight || g.VictimPos != w.VictimPos || g.VictimCore != w.VictimCore {
			t.Fatalf("pattern %d: header (%d,%d,%d) vs (%d,%d,%d)",
				i, g.Weight, g.VictimPos, g.VictimCore, w.Weight, w.VictimPos, w.VictimCore)
		}
		if len(g.Care) != len(w.Care) {
			t.Fatalf("pattern %d: %d care entries, scalar %d", i, len(g.Care), len(w.Care))
		}
		for j := range w.Care {
			if g.Care[j] != w.Care[j] {
				t.Fatalf("pattern %d care %d: %+v vs %+v", i, j, g.Care[j], w.Care[j])
			}
		}
		if len(g.Bus) != len(w.Bus) {
			t.Fatalf("pattern %d: %d bus uses, scalar %d", i, len(g.Bus), len(w.Bus))
		}
		for j := range w.Bus {
			if g.Bus[j] != w.Bus[j] {
				t.Fatalf("pattern %d bus %d: %+v vs %+v", i, j, g.Bus[j], w.Bus[j])
			}
		}
	}
}

// diffWorkers are the worker counts the sharded path is pinned at:
// byte-identical output is part of GreedyWith's contract at ANY count.
var diffWorkers = []int{1, 2, 8}

func TestGreedyBitsetMatchesScalar(t *testing.T) {
	cases := []struct {
		fixture string
		n       int
		seed    int64
	}{
		{"d695", 3000, 1},
		{"d695", 3000, 2},
		{"d695", 500, 3},
		{"p34392", 2000, 1},
		{"p93791", 2000, 5},
	}
	for _, tc := range cases {
		if testing.Short() && tc.fixture != "d695" {
			continue
		}
		s := soc.MustLoadBenchmark(tc.fixture)
		patterns, err := sifault.Generate(s, sifault.GenConfig{N: tc.n, Seed: tc.seed})
		if err != nil {
			t.Fatal(err)
		}
		sp := sifault.NewSpace(s)
		ctx := context.Background()
		want, wantStats, wantCut := greedyScalar(ctx, sp, patterns)
		if wantCut {
			t.Fatalf("%s/N=%d/seed=%d: unexpected scalar cut", tc.fixture, tc.n, tc.seed)
		}
		for _, workers := range diffWorkers {
			got, gotStats, gotCut := greedyWith(ctx, sp, patterns, Config{Workers: workers})
			if gotCut {
				t.Fatalf("%s/N=%d/seed=%d/workers=%d: unexpected cut", tc.fixture, tc.n, tc.seed, workers)
			}
			if gotStats != wantStats {
				t.Errorf("%s/N=%d/seed=%d/workers=%d: stats %+v vs scalar %+v", tc.fixture, tc.n, tc.seed, workers, gotStats, wantStats)
			}
			samePatternSets(t, got, want)
		}
	}
}

// TestGreedyShardedMultiComponent drives the sharded path on a corpus
// that actually splits: with the bus and external aggressors disabled
// every pattern cares about one core only, so the conflict components
// (and hence the shard plan) are per-core. The merged output must
// still be byte-identical to the serial scalar reference at every
// worker count.
func TestGreedyShardedMultiComponent(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	cfg := sifault.GenConfig{N: 2500, Seed: 7, BusProb: -1, ExternalProb: -1}
	patterns, err := sifault.Generate(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := sifault.NewSpace(s)
	plan := sifault.PlanShards(sp, patterns, DefaultMaxShards)
	if len(plan.Shards) < 2 {
		t.Fatalf("corpus did not shard: %d shards of %d components", len(plan.Shards), plan.Components)
	}
	ctx := context.Background()
	want, wantStats, _ := greedyScalar(ctx, sp, patterns)
	for _, workers := range diffWorkers {
		got, gotStats, _ := greedyWith(ctx, sp, patterns, Config{Workers: workers})
		if gotStats != wantStats {
			t.Errorf("workers=%d: stats %+v vs scalar %+v (shards=%d)", workers, gotStats, wantStats, len(plan.Shards))
		}
		samePatternSets(t, got, want)
	}
}

// TestGreedyCancelledMatchesScalar pins the graceful-degradation path:
// with an already-expired context both implementations pass the whole
// input through unmerged and report the cut.
func TestGreedyCancelledMatchesScalar(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp := sifault.NewSpace(s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, _, gotCut := greedy(ctx, sp, patterns)
	want, _, wantCut := greedyScalar(ctx, sp, patterns)
	if !gotCut || !wantCut {
		t.Fatalf("cut not reported (bitset %v, scalar %v)", gotCut, wantCut)
	}
	samePatternSets(t, got, want)
	if len(got) != len(patterns) {
		t.Errorf("cancelled run emitted %d patterns, want the full %d pass-through", len(got), len(patterns))
	}
}

// TestBitsetCompatibleMatchesPairwise checks the packed conflict
// formula against the pairwise Compatible predicate over generated
// pattern pairs, including the bus pseudo-word encoding.
func TestBitsetCompatibleMatchesPairwise(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sp := sifault.NewSpace(s)
	acc := newBitsetAccumulator(sp.Total(), sp.BusWidth())
	itemsOf := packPatterns(patterns, acc.busBase)
	checked, conflicts := 0, 0
	for i := 0; i < len(patterns); i++ {
		for j := i + 1; j < len(patterns) && j < i+40; j++ {
			acc.reset()
			acc.merge(itemsOf[i])
			got := acc.compatible(itemsOf[j])
			want := Compatible(patterns[i], patterns[j])
			if got != want {
				t.Fatalf("patterns %d,%d: packed compatible = %v, pairwise = %v", i, j, got, want)
			}
			checked++
			if !got {
				conflicts++
			}
		}
	}
	if conflicts == 0 || conflicts == checked {
		t.Fatalf("degenerate corpus: %d/%d conflicts", conflicts, checked)
	}
}

// FuzzGreedyMatchesScalar cross-checks the two greedy implementations
// on generator outputs across fuzzed sizes and seeds.
func FuzzGreedyMatchesScalar(f *testing.F) {
	f.Add(uint16(50), int64(1))
	f.Add(uint16(333), int64(99))
	f.Add(uint16(1), int64(0))
	f.Fuzz(func(t *testing.T, n uint16, seed int64) {
		s := soc.MustLoadBenchmark("d695")
		cfg := sifault.GenConfig{N: int(n%500) + 1, Seed: seed}
		if seed%3 == 0 {
			// A third of the corpus shards for real: no bus, no
			// external aggressors -> per-core conflict components.
			cfg.BusProb = -1
			cfg.ExternalProb = -1
		}
		patterns, err := sifault.Generate(s, cfg)
		if err != nil {
			t.Skip()
		}
		sp := sifault.NewSpace(s)
		ctx := context.Background()
		want, wantStats, _ := greedyScalar(ctx, sp, patterns)
		for _, workers := range diffWorkers {
			got, gotStats, _ := greedyWith(ctx, sp, patterns, Config{Workers: workers})
			if gotStats != wantStats {
				t.Fatalf("workers=%d: stats %+v vs scalar %+v", workers, gotStats, wantStats)
			}
			samePatternSets(t, got, want)
		}
	})
}
