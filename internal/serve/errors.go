package serve

import "errors"

// ErrOverloaded is the admission-control sentinel: the daemon refused a
// job because the bounded queue is full or the scheduler is draining.
// The HTTP layer maps it to 503 Service Unavailable with a Retry-After
// header; embedders test for it with errors.Is(err, ErrOverloaded).
// Wrapping sites must preserve it with %w (enforced by sitlint's
// errwrapcheck analyzer).
var ErrOverloaded = errors.New("sitam: overloaded")

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("sitam: job not found")

// ErrInvalid reports a request rejected by validation (out-of-range
// resources, unknown algorithm, malformed SOC selection). The HTTP
// layer maps it to 400.
var ErrInvalid = errors.New("sitam: invalid request")
