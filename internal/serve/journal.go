package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Journal is the crash-safe append-only job log. Every admitted job
// writes a "submitted" entry before the client sees its 202, and every
// terminal transition writes a "terminal" entry; both are fsynced, so
// after a crash (kill -9 included) the journal names every job the
// daemon ever acknowledged and carries the full Outcome of every job
// that finished. Recovery (see Scheduler) replays terminal entries so
// completed and partial results survive a restart, and closes out
// submitted-but-unterminated jobs as failed — an admitted job reaches a
// terminal state even across a crash.
//
// The format is JSONL. A crash can tear the final line; OpenJournal
// tolerates that by truncating the torn tail (every complete entry
// before it survives) so the journal is well-formed again before
// anything is appended.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// JournalEntry is one journal line.
type JournalEntry struct {
	T  string `json:"t"` // "submitted" | "terminal"
	ID string `json:"id"`

	// submitted entries:
	Req *Request `json:"req,omitempty"`

	// terminal entries:
	State  State    `json:"state,omitempty"`
	Result *Outcome `json:"result,omitempty"`
	Error  string   `json:"error,omitempty"`
}

// OpenJournal opens (creating if needed) the journal at path and
// returns the entries already on disk, oldest first. A torn final line
// left by a crash is truncated away before the journal accepts new
// appends.
func OpenJournal(path string) (*Journal, []JournalEntry, error) {
	entries, validLen, torn, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if torn {
		if err := os.Truncate(path, validLen); err != nil {
			return nil, nil, fmt.Errorf("repairing journal %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{f: f, path: path}, entries, nil
}

// readJournal parses the existing journal. validLen is the byte length
// of the well-formed prefix; torn reports a final line the crash cut
// short (an unparsable line anywhere else is corruption and errors).
func readJournal(path string) (entries []JournalEntry, validLen int64, torn bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64*1024)
	for {
		line, rerr := r.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var e JournalEntry
			if jerr := json.Unmarshal(bytes.TrimSpace(line), &e); jerr != nil {
				if rerr == nil && !atEOF(r) {
					return nil, 0, false, fmt.Errorf("journal %s: unparsable entry %d: %w", path, len(entries)+1, jerr)
				}
				return entries, validLen, true, nil
			}
			entries = append(entries, e)
		}
		if rerr != nil {
			if rerr == io.EOF {
				return entries, validLen + int64(len(line)), false, nil
			}
			return nil, 0, false, rerr
		}
		validLen += int64(len(line))
	}
}

// atEOF reports whether the reader has no further bytes.
func atEOF(r *bufio.Reader) bool {
	_, err := r.Peek(1)
	return err == io.EOF
}

// Append durably writes one entry: the write and the fsync complete
// before Append returns.
func (j *Journal) Append(e JournalEntry) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal sync: %w", err)
	}
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
