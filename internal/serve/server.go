package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"sitam/internal/obs"
)

// ServerConfig parameterizes a Server: the scheduler Config plus the
// HTTP-level knobs.
type ServerConfig struct {
	Config

	// Heartbeat is the SSE keep-alive interval (a comment line when no
	// trace events flow), so proxies and slow links do not reap idle
	// streams. 0 means 10s.
	Heartbeat time.Duration

	// Poll is the SSE trace-follow interval. 0 means 50ms.
	Poll time.Duration
}

// Server is the HTTP/JSON face of a Scheduler:
//
//	POST   /v1/jobs             submit  -> 202 {id}  | 503 + Retry-After
//	GET    /v1/jobs             list job statuses
//	GET    /v1/jobs/{id}        job status (result when terminal)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/events SSE: search trace + heartbeats; client
//	                            disconnect cancels a live job unless
//	                            ?cancel=no
//	GET    /v1/jobs/{id}/trace  flight-recorder replay of a finished
//	                            job's trace as JSONL (byte-stable)
//	GET    /metrics             obs registry snapshot: JSON by default,
//	                            Prometheus 0.0.4 text when the Accept
//	                            header prefers text/plain
//	GET    /healthz             liveness + drain state
type Server struct {
	sched     *Scheduler
	mux       *http.ServeMux
	heartbeat time.Duration
	poll      time.Duration
}

// NewServer builds a scheduler per cfg and the HTTP surface over it.
func NewServer(cfg ServerConfig) (*Server, error) {
	sched, err := NewScheduler(cfg.Config)
	if err != nil {
		return nil, err
	}
	s := &Server{sched: sched, mux: http.NewServeMux(), heartbeat: cfg.Heartbeat, poll: cfg.Poll}
	if s.heartbeat <= 0 {
		s.heartbeat = 10 * time.Second
	}
	if s.poll <= 0 {
		s.poll = 50 * time.Millisecond
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	setBuildInfo(sched.Metrics())
	return s, nil
}

// setBuildInfo publishes the conventional build-info gauge: a constant
// 1 whose labels carry the version facts a fleet dashboard joins on.
func setBuildInfo(reg *obs.Registry) {
	version := "dev"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	reg.Gauge(obs.Labels("sitam_build_info", "version", version, "goversion", runtime.Version())).Set(1)
}

// Scheduler exposes the underlying scheduler (drain, direct job
// access in tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response write failure leaves nothing to do
}

// submitAccepted is the 202 response body.
type submitAccepted struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	StatusURL string `json:"statusURL"`
	EventsURL string `json:"eventsURL"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	body := http.MaxBytesReader(w, r.Body, 2<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request: " + err.Error()})
		return
	}
	job, err := s.sched.Submit(req)
	switch {
	case errors.Is(err, ErrOverloaded):
		// Load shedding: tell the client when to come back instead of
		// queueing unboundedly.
		w.Header().Set("Retry-After", strconv.Itoa(int((s.sched.RetryAfter()+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrInvalid):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, submitAccepted{
		ID:        job.ID,
		State:     job.State(),
		StatusURL: "/v1/jobs/" + job.ID,
		EventsURL: "/v1/jobs/" + job.ID + "/events",
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) *Job {
	job, err := s.sched.Job(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return nil
	}
	return job
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job := s.jobOr404(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.Snapshot())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.sched.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, job.Snapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.sched.Metrics().Snapshot()
	if acceptsPromText(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", obs.PromContentType)
		w.WriteHeader(http.StatusOK)
		obs.WritePrometheus(w, snap) //nolint:errcheck // response write failure leaves nothing to do
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// acceptsPromText decides the /metrics representation from the Accept
// header: the first media range naming text/plain (or the OpenMetrics
// type, which the 0.0.4 text format predates but scrapers send) wins
// over json; absent, empty or wildcard headers keep the historical
// JSON default so existing clients see no change.
func acceptsPromText(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mediaType {
		case "text/plain", "application/openmetrics-text":
			return true
		case "application/json", "*/*":
			return false
		}
	}
	return false
}

// handleTrace replays a finished job's flight recording as JSONL.
// Recordings are immutable, so two replays of one job are
// byte-identical; a sampled recording advertises the elision in the
// X-Sitam-Trace-Dropped header (and the seq gap makes it visible to
// sitrace). Live jobs stream via /events instead — replay of an
// unfinished trace would not be stable.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	rec := s.sched.Recorder().Get(job.ID)
	if rec == nil {
		if !job.State().Terminal() {
			writeJSON(w, http.StatusConflict, errorBody{
				Error: fmt.Sprintf("job %s is %s; stream /v1/jobs/%s/events until it finishes", job.ID, job.State(), job.ID),
			})
			return
		}
		writeJSON(w, http.StatusNotFound, errorBody{
			Error: fmt.Sprintf("job %s has no retained trace (evicted from the flight recorder or replayed from the journal)", job.ID),
		})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Sitam-Trace-Total", strconv.Itoa(rec.Total))
	if rec.Dropped > 0 {
		h.Set("X-Sitam-Trace-Dropped", strconv.Itoa(rec.Dropped))
	}
	w.WriteHeader(http.StatusOK)
	obs.WriteJSONL(w, rec.Events) //nolint:errcheck // response write failure leaves nothing to do
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.sched.Draining(),
		"jobs":     len(s.sched.Jobs()),
	})
}

// handleEvents streams the job's structured search trace as
// server-sent events ("trace" events carrying the JSONL records,
// ": heartbeat" comments on idle, one final "done" event carrying the
// terminal Status). If the client disconnects while the job is live,
// the job is cancelled — an abandoned stream must not keep burning a
// worker — unless the stream was opened with ?cancel=no.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.jobOr404(w, r)
	if job == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	cancelOnDisconnect := r.URL.Query().Get("cancel") != "no"

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	next := 0
	flushTrace := func() {
		events := job.Trace.Since(next)
		if len(events) == 0 {
			return
		}
		next += len(events)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: trace\ndata: %s\n\n", data)
		}
		fl.Flush()
	}

	poll := time.NewTicker(s.poll)
	defer poll.Stop()
	heartbeat := time.NewTicker(s.heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			if cancelOnDisconnect && !job.State().Terminal() {
				s.sched.Cancel(job.ID) //nolint:errcheck // the job is known to exist
			}
			return
		case <-job.Done():
			flushTrace()
			data, err := json.Marshal(job.Snapshot())
			if err == nil {
				fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
			}
			fl.Flush()
			return
		case <-poll.C:
			flushTrace()
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		}
	}
}
