package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sitam/internal/core"
	"sitam/internal/obs"
)

// Config parameterizes a Scheduler.
type Config struct {
	// Workers is the number of jobs run concurrently; 0 means
	// runtime.GOMAXPROCS(0). Jobs are the unit of parallelism — each
	// job's own candidate evaluation defaults to serial (MaxJobWorkers).
	Workers int

	// QueueDepth bounds the admission queue; a submit beyond it is shed
	// with ErrOverloaded. 0 means DefaultQueueDepth.
	QueueDepth int

	// MaxJobWorkers caps the per-job ParallelConfig.Workers a request
	// may claim. 0 means 1 (serial evaluation inside each job).
	MaxJobWorkers int

	// DefaultDeadline applies when a request carries no timeout;
	// MaxDeadline clamps client-supplied values — the second deadline
	// layer that keeps an absurd request from pinning a worker forever.
	// Zero values mean DefaultJobDeadline and DefaultMaxDeadline.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// MaxEvals caps (and, for requests that leave it zero, defaults)
	// the per-job evaluation budget. 0 leaves budgets unlimited.
	MaxEvals int64

	// RetryAfter is the backoff advertised with 503 responses; 0 means
	// one second.
	RetryAfter time.Duration

	// Limits bounds per-request resources; zero means DefaultLimits.
	Limits Limits

	// TestHooks honors Request.Chaos fault injection. Never enable it
	// on a production daemon.
	TestHooks bool

	// JournalPath, when non-empty, makes admissions and terminal
	// transitions durable in an append-only journal there, replayed on
	// construction.
	JournalPath string

	// CachePath, when non-empty, backs every job's evaluation cache
	// with one persistent cache file: entries costed by any job — or by
	// a previous process — seed later jobs' caches. The file is opened
	// at construction and held across drain; a locked or damaged file
	// degrades to memory-only caching with a log line, never a failed
	// startup.
	CachePath string

	// RecorderJobs / RecorderEvents bound the flight recorder: how many
	// finished jobs keep their trace retrievable via
	// GET /v1/jobs/{id}/trace, and how many events one recording may
	// hold before head/tail sampling kicks in. Zero means
	// DefaultRecorderJobs / DefaultRecorderEvents.
	RecorderJobs   int
	RecorderEvents int

	// Metrics receives the scheduler's counters and gauges; created
	// internally when nil so /metrics always has content.
	Metrics *obs.Registry

	// Logf logs operational events; nil discards.
	Logf func(format string, args ...any)
}

// Default scheduler parameters.
const (
	DefaultQueueDepth  = 64
	DefaultJobDeadline = 30 * time.Second
	DefaultMaxDeadline = 2 * time.Minute
)

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxJobWorkers <= 0 {
		c.MaxJobWorkers = 1
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = DefaultJobDeadline
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = DefaultMaxDeadline
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Limits == (Limits{}) {
		c.Limits = DefaultLimits()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Scheduler is the bounded job scheduler: admission control in Submit,
// a fixed worker pool draining the queue, per-job panic isolation in
// execute, and a graceful two-phase Drain. See DESIGN.md §11 for the
// admission and drain state machines.
type Scheduler struct {
	cfg      Config
	journal  *Journal
	cache    *core.CacheFile
	recorder *FlightRecorder

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	nextID   int
	draining bool

	queue   chan *Job
	wg      sync.WaitGroup
	running atomic.Int64

	// runCtx parents every job context; runCancel fires at the drain
	// grace deadline and partial-izes everything still in flight.
	runCtx    context.Context
	runCancel context.CancelFunc
}

// NewScheduler builds a scheduler, replays the journal if configured,
// and starts the worker pool.
func NewScheduler(cfg Config) (*Scheduler, error) {
	cfg.fill()
	s := &Scheduler{
		cfg:      cfg,
		jobs:     make(map[string]*Job),
		queue:    make(chan *Job, cfg.QueueDepth),
		recorder: NewFlightRecorder(cfg.RecorderJobs, cfg.RecorderEvents),
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	if cfg.JournalPath != "" {
		if err := s.recoverJournal(cfg.JournalPath); err != nil {
			return nil, err
		}
	}
	if cfg.CachePath != "" {
		cache, err := core.OpenCacheFile(cfg.CachePath)
		if err != nil {
			cfg.Logf("cache file %s unavailable (%v); jobs run memory-only", cfg.CachePath, err)
		} else {
			s.cache = cache
			cfg.Metrics.Gauge("serve_cache_entries").Set(int64(cache.Len()))
			cfg.Logf("cache file %s: %d entries loaded", cfg.CachePath, cache.Loaded())
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.execute(job)
			}
		}()
	}
	return s, nil
}

// Metrics returns the scheduler's registry (for /metrics and the final
// drain snapshot).
func (s *Scheduler) Metrics() *obs.Registry { return s.cfg.Metrics }

// Recorder returns the flight recorder holding finished jobs' traces.
func (s *Scheduler) Recorder() *FlightRecorder { return s.recorder }

// RetryAfter is the advertised backoff for shed requests.
func (s *Scheduler) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// Draining reports whether the scheduler has stopped admitting jobs.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Submit validates, clamps and admits a job, or sheds it. The returned
// error is ErrOverloaded (possibly wrapped) when the queue is full or
// the scheduler is draining — the HTTP layer maps that to 503 with
// Retry-After; any other error is a rejection of the request itself.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	if err := req.Validate(s.cfg.Limits); err != nil {
		return nil, fmt.Errorf("%w: %s", ErrInvalid, err)
	}
	s.clamp(&req)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.cfg.Metrics.Counter("serve_shed").Inc()
		return nil, fmt.Errorf("draining: %w", ErrOverloaded)
	}
	if len(s.queue) == cap(s.queue) {
		s.cfg.Metrics.Counter("serve_shed").Inc()
		return nil, fmt.Errorf("queue full (%d jobs): %w", cap(s.queue), ErrOverloaded)
	}

	job := newJob(fmt.Sprintf("j%06d", s.nextID+1), req)
	jobCtx, cancel := context.WithCancel(s.runCtx)
	job.setCancel(cancel)
	job.runBase = jobCtx

	// Durability before acknowledgement: the client must never hold a
	// job ID the journal does not know about.
	if err := s.journal.Append(JournalEntry{T: "submitted", ID: job.ID, Req: &req}); err != nil {
		cancel()
		return nil, err
	}

	// The length check above makes this send non-blocking in practice;
	// the default arm is belt and braces against future refactors that
	// move the send out of the lock.
	select {
	case s.queue <- job:
	default:
		cancel()
		s.cfg.Metrics.Counter("serve_shed").Inc()
		return nil, fmt.Errorf("queue full (%d jobs): %w", cap(s.queue), ErrOverloaded)
	}
	s.nextID++
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.cfg.Metrics.Counter("serve_admitted").Inc()
	s.cfg.Metrics.Gauge("serve_queue_depth").Set(int64(len(s.queue)))
	return job, nil
}

// clamp applies the server-side caps to client-supplied knobs so the
// journaled request records the effective values.
func (s *Scheduler) clamp(req *Request) {
	d := s.cfg.DefaultDeadline
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	req.TimeoutMS = d.Milliseconds()
	if s.cfg.MaxEvals > 0 && (req.MaxEvals == 0 || req.MaxEvals > s.cfg.MaxEvals) {
		req.MaxEvals = s.cfg.MaxEvals
	}
	if req.Workers < 1 || req.Workers > s.cfg.MaxJobWorkers {
		req.Workers = s.cfg.MaxJobWorkers
	}
	if !s.cfg.TestHooks {
		req.Chaos = nil
	}
}

// Job returns the job with the given ID.
func (s *Scheduler) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("job %q: %w", id, ErrNotFound)
	}
	return job, nil
}

// Jobs returns every known job in submission order (replayed jobs
// first).
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel requests cancellation of a job. A queued job terminates
// immediately; a running one is interrupted through its context and
// terminates at the engine's next cancellation check.
func (s *Scheduler) Cancel(id string) (*Job, error) {
	job, err := s.Job(id)
	if err != nil {
		return nil, err
	}
	job.Cancel()
	job.mu.Lock()
	queued := job.state == StateQueued
	job.mu.Unlock()
	if queued {
		// If a worker picked the job up in between, finalize is a
		// no-op for it and the cancelled context aborts the run.
		s.finalizeJob(job, StateCanceled, nil, "canceled before start")
	}
	return job, nil
}

// execute runs one job with panic isolation: a crash inside the job —
// engine bug or injected chaos — becomes a structured job-failure
// record, not a daemon crash.
func (s *Scheduler) execute(job *Job) {
	if !job.setRunning() {
		return // canceled while still queued
	}
	s.cfg.Metrics.Gauge("serve_queue_depth").Set(int64(len(s.queue)))
	s.cfg.Metrics.Gauge("serve_running").Set(s.running.Add(1))

	deadline := time.Duration(job.Req.TimeoutMS) * time.Millisecond
	ctx, cancel := context.WithTimeout(job.runBase, deadline)
	start := time.Now()
	defer func() {
		cancel()
		s.cfg.Metrics.Gauge("serve_running").Set(s.running.Add(-1))
		s.cfg.Metrics.HistogramBuckets("serve_job_ms", phaseBucketsMs).Observe(time.Since(start).Milliseconds())
		if r := recover(); r != nil {
			s.cfg.Metrics.Counter("serve_panics").Inc()
			s.finalizeJob(job, StateFailed, nil, fmt.Sprintf("panic: %v", r))
		}
	}()

	outcome, err := job.run(ctx, s.cfg.TestHooks, s.cfg.MaxJobWorkers, s.cache)
	if s.cache != nil {
		s.cfg.Metrics.Gauge("serve_cache_entries").Set(int64(s.cache.Len()))
	}
	switch {
	case err == nil && outcome.Partial:
		s.finalizeJob(job, StatePartial, outcome, "")
	case err == nil:
		s.finalizeJob(job, StateDone, outcome, "")
	case job.canceledByClient() && errors.Is(err, context.Canceled):
		s.finalizeJob(job, StateCanceled, nil, "canceled")
	case errors.Is(err, context.Canceled) && s.Draining():
		s.finalizeJob(job, StateFailed, nil, "daemon draining before any usable result")
	default:
		s.finalizeJob(job, StateFailed, nil, err.Error())
	}
}

// phaseBucketsMs are the fixed bucket bounds (milliseconds) of the
// per-phase job timing histograms exposed as
// sitam_job_phase_ms{phase="..."} on /metrics.
var phaseBucketsMs = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// stateCounterKey maps a terminal state to its per-state counter
// series. The closed switch keeps every series this function can emit
// inside the DESIGN §13 vocabulary (enforced by the metricvocab
// analyzer) — a new State constant cannot leak a new series onto
// /metrics without being added here and to the vocabulary.
func stateCounterKey(state State) string {
	switch state {
	case StateDone:
		return "serve_done"
	case StatePartial:
		return "serve_partial"
	case StateCanceled:
		return "serve_canceled"
	default:
		return "serve_failed"
	}
}

// finalizeJob applies a terminal transition once, journals it durably,
// records the trace in the flight recorder and accounts for it.
func (s *Scheduler) finalizeJob(job *Job, state State, outcome *Outcome, errMsg string) {
	if !job.finalize(state, outcome, errMsg) {
		return
	}
	job.release()
	events := job.Trace.Events()
	s.recorder.Record(job.ID, events)
	s.cfg.Metrics.Counter(stateCounterKey(state)).Inc()
	s.cfg.Metrics.Counter(obs.Labels("sitam_jobs_total", "state", string(state))).Inc()
	for i := range events {
		if ev := &events[i]; ev.Type == obs.PhaseEnd {
			s.cfg.Metrics.HistogramBuckets(
				obs.Labels("sitam_job_phase_ms", "phase", ev.Phase), phaseBucketsMs,
			).Observe(ev.DurNS / 1e6)
		}
	}
	if err := s.journal.Append(JournalEntry{T: "terminal", ID: job.ID, State: state, Result: outcome, Error: errMsg}); err != nil {
		s.cfg.Logf("journal: %v", err)
	}
	s.cfg.Logf("job %s -> %s", job.ID, state)
}

// Drain gracefully shuts the scheduler down: stop admitting (Submit
// sheds with ErrOverloaded), let queued and running jobs finish until
// ctx expires, then cancel what is left so the anytime engine
// partial-izes it, and wait for the pool to exit. Idempotent and safe
// to call concurrently; the journal is closed once the pool is down.
func (s *Scheduler) Drain(ctx context.Context) {
	s.mu.Lock()
	first := !s.draining
	if first {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Grace expired: partial-ize everything still in flight. The
		// engine checks cancellation every few candidates, so the
		// unconditional wait below is short.
		s.runCancel()
		<-done
	}
	s.runCancel()
	if first {
		if err := s.journal.Close(); err != nil {
			s.cfg.Logf("journal close: %v", err)
		}
		if s.cache != nil {
			if err := s.cache.Close(); err != nil {
				s.cfg.Logf("cache file close: %v", err)
			}
		}
	}
}

// recoverJournal opens the journal and replays it: terminal entries
// resurrect finished jobs so their results stay queryable across
// restarts; submitted entries without a terminal record belonged to
// jobs in flight when the previous process died and are closed out as
// failed — durably, so the next recovery already sees them terminal.
func (s *Scheduler) recoverJournal(path string) error {
	journal, entries, err := OpenJournal(path)
	if err != nil {
		return err
	}
	s.journal = journal
	for _, e := range entries {
		switch e.T {
		case "submitted":
			if e.Req == nil || s.jobs[e.ID] != nil {
				continue
			}
			s.addReplayed(newJob(e.ID, *e.Req))
		case "terminal":
			job := s.jobs[e.ID]
			if job == nil {
				job = newJob(e.ID, Request{})
				s.addReplayed(job)
			}
			if job.finalize(e.State, e.Result, e.Error) {
				s.cfg.Metrics.Counter("serve_replayed").Inc()
			}
		}
	}
	orphans := 0
	for _, id := range s.order {
		job := s.jobs[id]
		if job.State().Terminal() {
			continue
		}
		orphans++
		const msg = "daemon crashed before the job completed; resubmit"
		job.finalize(StateFailed, nil, msg)
		s.cfg.Metrics.Counter("serve_orphaned").Inc()
		if err := s.journal.Append(JournalEntry{T: "terminal", ID: id, State: StateFailed, Error: msg}); err != nil {
			return err
		}
	}
	if len(entries) > 0 {
		s.cfg.Logf("journal: replayed %d entries, %d jobs (%d orphaned mid-flight, closed out as failed)",
			len(entries), len(s.order), orphans)
	}
	return nil
}

// addReplayed registers a journal-recovered job and advances the ID
// counter past it. Replayed jobs are never re-enqueued.
func (s *Scheduler) addReplayed(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if n := idNum(job.ID); n > s.nextID {
		s.nextID = n
	}
}

// idNum extracts the numeric suffix of a job ID ("j000042" -> 42).
func idNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}
