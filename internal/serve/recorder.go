package serve

import (
	"sync"

	"sitam/internal/obs"
)

// FlightRecorder retains the search traces of finished jobs for
// post-hoc replay through GET /v1/jobs/{id}/trace. Retention is
// bounded on two axes:
//
//   - at most MaxJobs recordings are kept; recording one more evicts
//     the oldest (a ring over completed jobs, not over events);
//   - one recording holds at most MaxEvents events. An overflowing
//     trace is sampled head-and-tail: the first MaxEvents/2 and last
//     MaxEvents-MaxEvents/2 events survive, the middle is elided and
//     counted in Dropped. Head and tail are the halves that matter for
//     replay — the head carries the phase structure and setup costs,
//     the tail the convergence endpoint and the terminal accounting —
//     and because sampling is positional, not random, a recording is
//     deterministic for a deterministic trace.
//
// Recordings are immutable once stored, so two replays of the same job
// serve byte-identical JSONL.
type FlightRecorder struct {
	maxJobs   int
	maxEvents int

	mu     sync.Mutex
	order  []string // recording order, oldest first
	traces map[string]*Recording
}

// Recording is one job's retained trace.
type Recording struct {
	// JobID is the job-correlation ID; every retained event carries it
	// in its Job field too.
	JobID string

	// Events is the retained (possibly sampled) trace. Sequence numbers
	// are the original ones, so an elided middle is visible as a seq
	// gap between Events[len/2-1] and Events[len/2].
	Events []obs.Event

	// Total is the event count of the full trace; Dropped is how many
	// of them sampling elided (0 when the trace fit).
	Total   int
	Dropped int
}

// Default flight-recorder bounds used when Config leaves them zero.
const (
	DefaultRecorderJobs   = 64
	DefaultRecorderEvents = 8192
)

// NewFlightRecorder builds a recorder with the given bounds; zero or
// negative values take the defaults.
func NewFlightRecorder(maxJobs, maxEvents int) *FlightRecorder {
	if maxJobs <= 0 {
		maxJobs = DefaultRecorderJobs
	}
	if maxEvents <= 0 {
		maxEvents = DefaultRecorderEvents
	}
	return &FlightRecorder{
		maxJobs:   maxJobs,
		maxEvents: maxEvents,
		traces:    map[string]*Recording{},
	}
}

// Record stores a finished job's trace, sampling it if it overflows
// the per-recording bound and evicting the oldest recording beyond the
// job bound. Re-recording an ID replaces the previous recording (a
// finalize is exactly-once, so this only happens in tests).
func (fr *FlightRecorder) Record(jobID string, events []obs.Event) {
	if fr == nil {
		return
	}
	rec := &Recording{JobID: jobID, Events: events, Total: len(events)}
	if len(events) > fr.maxEvents {
		head := fr.maxEvents / 2
		tail := fr.maxEvents - head
		sampled := make([]obs.Event, 0, fr.maxEvents)
		sampled = append(sampled, events[:head]...)
		sampled = append(sampled, events[len(events)-tail:]...)
		rec.Events = sampled
		rec.Dropped = len(events) - fr.maxEvents
	}

	fr.mu.Lock()
	defer fr.mu.Unlock()
	if _, exists := fr.traces[jobID]; !exists {
		fr.order = append(fr.order, jobID)
	}
	fr.traces[jobID] = rec
	for len(fr.order) > fr.maxJobs {
		evict := fr.order[0]
		fr.order = fr.order[1:]
		delete(fr.traces, evict)
	}
}

// Get returns the recording for a job, or nil when it was never
// recorded or has been evicted.
func (fr *FlightRecorder) Get(jobID string) *Recording {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.traces[jobID]
}

// Len returns the number of retained recordings.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.order)
}
