package serve

// Tests of the fleet-telemetry surface: the content-negotiated
// Prometheus exposition on /metrics, the flight recorder, and the
// byte-stable trace replay endpoint.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"sitam/internal/obs"
)

func getWithAccept(t *testing.T, url, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHTTPMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{Config: Config{Workers: 2}})
	acc, _ := postJob(t, ts, quickReq())
	waitHTTPTerminal(t, ts, acc.ID)

	// Default (no Accept, and explicit JSON): the historical JSON
	// snapshot, unchanged for existing clients.
	for _, accept := range []string{"", "application/json", "*/*", "application/json, text/plain"} {
		resp, body := getWithAccept(t, ts.URL+"/metrics", accept)
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Accept %q: Content-Type = %q, want application/json", accept, ct)
		}
		if !bytes.Contains(body, []byte(`"serve_admitted"`)) {
			t.Errorf("Accept %q: JSON body missing counters:\n%s", accept, body)
		}
	}

	// text/plain negotiates the Prometheus 0.0.4 exposition, and the
	// format validator parses every scrape without error.
	for _, accept := range []string{"text/plain", "text/plain; version=0.0.4", "text/plain, application/json", "application/openmetrics-text"} {
		resp, body := getWithAccept(t, ts.URL+"/metrics", accept)
		if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
			t.Errorf("Accept %q: Content-Type = %q, want %q", accept, ct, obs.PromContentType)
		}
		if err := obs.ValidatePrometheus(bytes.NewReader(body)); err != nil {
			t.Errorf("Accept %q: exposition invalid: %v\n%s", accept, err, body)
		}
		for _, want := range []string{
			"# TYPE serve_admitted counter",
			"# TYPE sitam_jobs_total counter",
			`sitam_jobs_total{state="done"} 1`,
			"# TYPE sitam_job_phase_ms histogram",
			`sitam_job_phase_ms_bucket{phase="si schedule",le="+Inf"}`,
			"# TYPE serve_job_ms histogram",
			"serve_job_ms_bucket{le=\"+Inf\"} 1",
			"# TYPE sitam_build_info gauge",
			"sitam_build_info{goversion=",
		} {
			if !strings.Contains(string(body), want) {
				t.Errorf("Accept %q: exposition missing %q:\n%s", accept, want, body)
			}
		}
	}
}

func TestHTTPTraceReplayByteStable(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{Config: Config{Workers: 1}})
	acc, _ := postJob(t, ts, quickReq())
	waitHTTPTerminal(t, ts, acc.ID)

	resp, first := getWithAccept(t, ts.URL+"/v1/jobs/"+acc.ID+"/trace", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d\n%s", resp.StatusCode, first)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	resp2, second := getWithAccept(t, ts.URL+"/v1/jobs/"+acc.ID+"/trace", "")
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(first, second) {
		t.Error("two replays of one finished job differ")
	}

	// The replay parses as a valid trace, every event carries the
	// job-correlation ID, and job spans balance.
	events, err := obs.ReadJSONL(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty replayed trace")
	}
	if err := obs.ValidateTrace(events); err != nil {
		t.Error(err)
	}
	if err := obs.ValidateJobSpans(events); err != nil {
		t.Error(err)
	}
	for i := range events {
		if events[i].Job != acc.ID {
			t.Fatalf("event %d carries job %q, want %q", i, events[i].Job, acc.ID)
		}
	}

	// Unknown jobs 404; unfinished jobs 409 with a pointer to /events.
	resp, _ = getWithAccept(t, ts.URL+"/v1/jobs/j999999/trace", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace status = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPTraceConflictWhileRunning(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{Config: Config{Workers: 1, TestHooks: true}})
	acc, _ := postJob(t, ts, sleepReq(2000))
	job, err := srv.Scheduler().Job(acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateRunning)
	resp, body := getWithAccept(t, ts.URL+"/v1/jobs/"+acc.ID+"/trace", "")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("running job trace status = %d, want 409\n%s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("/events")) {
		t.Errorf("409 body should point at the event stream:\n%s", body)
	}
	job.Cancel()
	waitHTTPTerminal(t, ts, acc.ID)
}

func TestFlightRecorderSampling(t *testing.T) {
	fr := NewFlightRecorder(2, 10)
	long := make([]obs.Event, 100)
	for i := range long {
		long[i] = obs.Event{Seq: uint64(i), Type: obs.CandidateEvaluated, Phase: "merge", Cand: i}
	}
	fr.Record("j1", long)

	rec := fr.Get("j1")
	if rec == nil || len(rec.Events) != 10 {
		t.Fatalf("recording = %+v", rec)
	}
	if rec.Total != 100 || rec.Dropped != 90 {
		t.Errorf("total/dropped = %d/%d, want 100/90", rec.Total, rec.Dropped)
	}
	// Head preserved ...
	for i := 0; i < 5; i++ {
		if rec.Events[i].Seq != uint64(i) {
			t.Fatalf("head event %d has seq %d", i, rec.Events[i].Seq)
		}
	}
	// ... and tail preserved, with the elision visible as a seq gap.
	for i := 5; i < 10; i++ {
		if rec.Events[i].Seq != uint64(95+i-5) {
			t.Fatalf("tail event %d has seq %d", i, rec.Events[i].Seq)
		}
	}

	// A short trace is kept whole.
	fr.Record("j2", long[:4])
	if rec := fr.Get("j2"); rec.Dropped != 0 || len(rec.Events) != 4 {
		t.Errorf("short recording = %+v", rec)
	}

	// The job ring evicts the oldest recording.
	fr.Record("j3", long[:1])
	if fr.Get("j1") != nil {
		t.Error("oldest recording not evicted")
	}
	if fr.Get("j2") == nil || fr.Get("j3") == nil || fr.Len() != 2 {
		t.Errorf("ring state wrong: len=%d", fr.Len())
	}
}

// TestFlightRecorderConcurrent is the -race proof for the recorder:
// concurrent recorders and readers over a small ring.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(8, 16)
	events := make([]obs.Event, 64)
	for i := range events {
		events[i] = obs.Event{Seq: uint64(i), Type: obs.CandidateEvaluated, Phase: "merge"}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("j%d-%d", w, i)
				fr.Record(id, events)
				if rec := fr.Get(id); rec != nil {
					if rec.Dropped != 48 || len(rec.Events) != 16 {
						t.Errorf("recording %s sampled wrong: %d kept, %d dropped", id, len(rec.Events), rec.Dropped)
						return
					}
				}
				fr.Len()
			}
		}(w)
	}
	wg.Wait()
	if fr.Len() != 8 {
		t.Errorf("ring len = %d, want 8", fr.Len())
	}
}
