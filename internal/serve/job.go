// Package serve is the optimization-as-a-service layer behind the
// sitamd daemon: a bounded job scheduler with admission control and
// load shedding, per-job panic isolation, SSE streaming of the search
// trace, graceful drain, and a crash-safe append-only job journal.
//
// The package deliberately contains no search logic: jobs run the same
// anytime pipeline the tamopt CLI uses (pattern generation, grouping,
// SI-aware TAM optimization), so every robustness property of the
// engine — ctx cancellation, eval budgets, StopCause classification,
// byte-determinism at any worker count — carries over to the service
// unchanged.
package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"sitam/internal/core"
	"sitam/internal/obs"
	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/trarchitect"
)

// State is a job's position in its lifecycle. The machine is
//
//	queued -> running -> done | partial | failed | canceled
//
// and every admitted job reaches exactly one of the four terminal
// states — including jobs in flight during a drain (partial-ized), jobs
// whose run panics (failed), and jobs found mid-flight in the journal
// after a crash (failed at recovery).
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StatePartial  State = "partial"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is one of the four end states.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StatePartial, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Request is the submitted job description. Exactly one of SOC (an
// embedded benchmark name) or Source (inline .soc text) selects the
// design; the remaining fields mirror the tamopt flags.
type Request struct {
	SOC    string `json:"soc,omitempty"`
	Source string `json:"source,omitempty"`

	Wmax  int   `json:"wmax"`
	Nr    int   `json:"nr"`
	Parts int   `json:"groups"`
	Seed  int64 `json:"seed"`

	// Algo selects the optimizer: "si" (the paper's Algorithm 2, the
	// default), "baseline" (TR-Architect + SI scheduling) or "ils".
	Algo     string `json:"algo,omitempty"`
	Kicks    int    `json:"kicks,omitempty"`
	Restarts int    `json:"restarts,omitempty"`

	// Workers bounds the job's candidate-evaluation concurrency; the
	// scheduler clamps it to Config.MaxJobWorkers (default 1: jobs are
	// the unit of parallelism, not workers within a job).
	Workers int `json:"workers,omitempty"`

	// MaxEvals is the objective-evaluation budget (0 = server default);
	// clamped to Config.MaxEvals.
	MaxEvals int64 `json:"budget,omitempty"`

	// TimeoutMS is the client-requested deadline in milliseconds
	// (0 = server default). Clamped to Config.MaxDeadline — a second
	// deadline layer, so absurd client values cannot pin a worker.
	TimeoutMS int64 `json:"timeoutMS,omitempty"`

	// Chaos carries fault-injection hooks honored only when the
	// scheduler runs with Config.TestHooks (the chaos harness and the
	// e2e tests); on a production daemon the field is ignored.
	Chaos *ChaosHook `json:"chaos,omitempty"`
}

// ChaosHook is the test-only fault injection carried by a Request.
type ChaosHook struct {
	// Panic makes the job runner panic mid-job, exercising per-job
	// panic isolation.
	Panic bool `json:"panic,omitempty"`

	// SleepMS stalls the job before optimization, for deterministic
	// slow-job scenarios (drain, disconnect-cancel, kill -9).
	SleepMS int64 `json:"sleepMS,omitempty"`
}

// Validate normalizes the request and rejects out-of-range values with
// limits (resource sanity is part of admission control: a hostile nr or
// wmax must fail fast with 400, not OOM a worker).
func (r *Request) Validate(lim Limits) error {
	if (r.SOC == "") == (r.Source == "") {
		return fmt.Errorf("exactly one of soc or source must be set")
	}
	if r.Algo == "" {
		r.Algo = "si"
	}
	switch r.Algo {
	case "si", "baseline", "ils":
	default:
		return fmt.Errorf("unknown algo %q (want si, baseline or ils)", r.Algo)
	}
	if r.Wmax < 1 || r.Wmax > lim.MaxWmax {
		return fmt.Errorf("wmax %d out of range [1, %d]", r.Wmax, lim.MaxWmax)
	}
	if r.Nr < 1 || r.Nr > lim.MaxNr {
		return fmt.Errorf("nr %d out of range [1, %d]", r.Nr, lim.MaxNr)
	}
	if r.Parts < 1 || r.Parts > lim.MaxParts {
		return fmt.Errorf("groups %d out of range [1, %d]", r.Parts, lim.MaxParts)
	}
	if len(r.Source) > lim.MaxSourceBytes {
		return fmt.Errorf("source exceeds %d bytes", lim.MaxSourceBytes)
	}
	if r.Kicks < 0 || r.Kicks > lim.MaxKicks {
		return fmt.Errorf("kicks %d out of range [0, %d]", r.Kicks, lim.MaxKicks)
	}
	if r.Restarts == 0 {
		r.Restarts = 1
	}
	if r.Restarts < 1 || r.Restarts > lim.MaxRestarts {
		return fmt.Errorf("restarts %d out of range [1, %d]", r.Restarts, lim.MaxRestarts)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeoutMS must be >= 0")
	}
	if r.MaxEvals < 0 {
		return fmt.Errorf("budget must be >= 0")
	}
	return nil
}

// Limits bounds the resources a single request may claim.
type Limits struct {
	MaxWmax        int
	MaxNr          int
	MaxParts       int
	MaxKicks       int
	MaxRestarts    int
	MaxSourceBytes int
}

// DefaultLimits are the admission sanity bounds used when Config leaves
// Limits zero.
func DefaultLimits() Limits {
	return Limits{
		MaxWmax:        256,
		MaxNr:          200_000,
		MaxParts:       64,
		MaxKicks:       1_000_000,
		MaxRestarts:    64,
		MaxSourceBytes: 1 << 20,
	}
}

// Outcome is the terminal result record of a job: the time breakdown
// plus the partial/cause classification. It is what the journal
// persists and what survives a daemon restart.
type Outcome struct {
	TimeIn  int64 `json:"timeIn"`
	TimeSI  int64 `json:"timeSI"`
	TimeSOC int64 `json:"timeSOC"`
	Rails   int   `json:"rails"`

	Partial bool   `json:"partial,omitempty"`
	Cause   string `json:"cause,omitempty"`
	Reason  string `json:"reason,omitempty"`

	Patterns int   `json:"patterns"`
	Groups   int   `json:"groups"`
	Evals    int64 `json:"evals"`
}

// Job is one admitted optimization run and its lifecycle record.
type Job struct {
	ID  string
	Req Request

	// Trace collects the job's structured search trace; the SSE
	// endpoint streams it incrementally via Tracer.Since. Replayed
	// (journal-recovered) jobs carry an empty tracer.
	Trace *obs.Tracer

	// runBase is the scheduler-owned parent of the job's run context
	// (cancelled individually by Cancel, collectively at the drain
	// grace deadline); the per-run deadline is layered on top of it at
	// execution time. Set once at admission, before the job is
	// published; nil on journal-replayed jobs.
	runBase context.Context

	mu      sync.Mutex
	state   State
	outcome *Outcome
	errMsg  string

	// cancel cancels the job's run context; safe to call at any time,
	// in any state, more than once. Set before the job is published.
	cancel context.CancelFunc
	// wantCancel distinguishes an explicit client cancellation (DELETE,
	// SSE disconnect) from a drain or deadline when ctx.Err() is
	// context.Canceled.
	wantCancel bool

	done chan struct{}
}

func newJob(id string, req Request) *Job {
	return &Job{ID: id, Req: req, Trace: obs.NewJobTracer(id), state: StateQueued, done: make(chan struct{})}
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot returns the job's externally visible status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:     j.ID,
		State:  j.state,
		Result: j.outcome,
		Error:  j.errMsg,
		Events: j.Trace.Len(),
	}
}

// Cancel requests cancellation of the job's run.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.wantCancel = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// setCancel installs the run-context cancel function at admission.
func (j *Job) setCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
}

// release cancels the job's run context without marking a client
// cancellation — called after finalization so finished jobs detach
// from the scheduler's root context instead of accumulating there for
// the daemon's lifetime.
func (j *Job) release() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// setRunning moves queued -> running; false if the job was finalized
// (canceled) while still queued.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	return true
}

// canceledByClient reports whether Cancel was explicitly requested, as
// opposed to a deadline or drain cancelling the run context.
func (j *Job) canceledByClient() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wantCancel
}

// finalize moves the job to a terminal state exactly once; extra calls
// are ignored (e.g. a cancellation racing a completed run).
func (j *Job) finalize(state State, outcome *Outcome, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state, j.outcome, j.errMsg = state, outcome, errMsg
	close(j.done)
	return true
}

// Status is the JSON view of a job served by GET /v1/jobs/{id}.
type Status struct {
	ID     string   `json:"id"`
	State  State    `json:"state"`
	Result *Outcome `json:"result,omitempty"`
	Error  string   `json:"error,omitempty"`
	Events int      `json:"traceEvents"`
}

// run executes the optimization pipeline for the job. It is the moral
// equivalent of tamopt's run(): generate patterns, build groups,
// optimize, assemble the Outcome. The error return is non-nil only when
// nothing usable was produced; interruption mid-search yields a partial
// Outcome and a nil error, exactly like the facade.
func (j *Job) run(ctx context.Context, hooks bool, maxJobWorkers int, persist *core.CacheFile) (*Outcome, error) {
	req := j.Req
	if hooks && req.Chaos != nil {
		if req.Chaos.SleepMS > 0 {
			select {
			case <-time.After(time.Duration(req.Chaos.SleepMS) * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if req.Chaos.Panic {
			panic("chaos: injected job panic")
		}
	}

	s, err := j.loadSOC()
	if err != nil {
		return nil, err
	}

	out := &Outcome{}
	span := obs.Span(j.Trace, "pattern generation")
	patterns, cut, err := sifault.GenerateCtx(ctx, s, sifault.GenConfig{N: req.Nr, Seed: req.Seed})
	if err != nil {
		return nil, err
	}
	span.End(0, int64(len(patterns)))
	out.Patterns = len(patterns)
	if cut {
		out.Partial = true
		out.Reason = fmt.Sprintf("pattern generation stopped at %d of %d patterns", len(patterns), req.Nr)
		out.Cause = core.CauseOf(ctx.Err()).Label()
	}

	grouping, err := core.BuildGroupsCtx(ctx, s, patterns, core.GroupingOptions{Parts: req.Parts, Seed: req.Seed, Trace: j.Trace})
	if err != nil {
		return nil, err
	}
	out.Groups = len(grouping.Groups)
	if grouping.Partial && !out.Partial {
		out.Partial, out.Reason = true, grouping.Reason
		out.Cause = core.CauseOf(ctx.Err()).Label()
	}

	workers := req.Workers
	if workers < 1 || workers > maxJobWorkers {
		workers = maxJobWorkers
	}
	cfg := core.ParallelConfig{Workers: workers, MaxEvals: req.MaxEvals, Trace: j.Trace, Persist: persist}
	model := sischedule.DefaultModel()

	var res *core.Result
	switch req.Algo {
	case "baseline":
		res, err = trarchitect.OptimizeThenScheduleSIWith(ctx, s, req.Wmax, grouping.Groups, model, cfg)
	case "ils":
		cons, cerr := core.CompileSOCConstraints(s, grouping.Groups)
		if cerr != nil {
			err = cerr
			break
		}
		eng, cache, eerr := core.NewParallelEngine(s, req.Wmax, core.NewIncrementalSIEvaluatorCons(grouping.Groups, model, cons), cfg)
		if eerr != nil {
			err = eerr
			break
		}
		arch, _, st, oerr := eng.OptimizeILSRestartsCtx(ctx, req.Kicks, req.Restarts, req.Seed)
		if oerr != nil {
			err = oerr
			break
		}
		res, err = eng.Finish(arch, st, grouping.Groups, model, cache)
	default:
		res, err = core.TAMOptimizationWith(ctx, s, req.Wmax, grouping.Groups, model, cfg)
	}
	if err != nil {
		return nil, err
	}

	out.TimeIn = res.Breakdown.TimeIn
	out.TimeSI = res.Breakdown.TimeSI
	out.TimeSOC = res.Breakdown.TimeSOC
	out.Rails = len(res.Architecture.Rails)
	out.Evals = res.Metrics.Counter("evals")
	if res.Partial && !out.Partial {
		out.Partial, out.Reason = true, res.Reason
		if out.Cause = res.Cause.Label(); out.Cause == "" {
			out.Cause = core.CauseOf(ctx.Err()).Label()
		}
	}
	return out, nil
}

func (j *Job) loadSOC() (*soc.SOC, error) {
	if j.Req.Source != "" {
		return soc.Parse(strings.NewReader(j.Req.Source))
	}
	return soc.LoadBenchmark(j.Req.SOC)
}
