package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// quickReq is a d695 job small enough to finish in tens of
// milliseconds.
func quickReq() Request {
	return Request{SOC: "d695", Wmax: 12, Nr: 200, Parts: 2, Seed: 1}
}

// sleepReq is a job stalled by the chaos sleep hook before any real
// work starts.
func sleepReq(ms int64) Request {
	r := quickReq()
	r.Chaos = &ChaosHook{SleepMS: ms}
	return r
}

func newTestScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

func waitTerminal(t *testing.T, job *Job) Status {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s stuck in state %s", job.ID, job.State())
	}
	return job.Snapshot()
}

func waitState(t *testing.T, job *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if job.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (state %s)", job.ID, want, job.State())
}

func TestSchedulerRunsJobToCompletion(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 2})
	job, err := s.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	if st.Result == nil || st.Result.TimeSOC <= 0 || st.Result.Rails == 0 {
		t.Fatalf("implausible outcome: %+v", st.Result)
	}
	if st.Events == 0 {
		t.Error("job collected no trace events")
	}
	if got := s.Metrics().Snapshot().Counter("serve_done"); got != 1 {
		t.Errorf("serve_done = %d, want 1", got)
	}
}

func TestSchedulerDeterministicOutcomes(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 2})
	a, err := s.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := waitTerminal(t, a), waitTerminal(t, b)
	if sa.State != StateDone || sb.State != StateDone {
		t.Fatalf("states %s/%s, want done/done", sa.State, sb.State)
	}
	if !reflect.DeepEqual(sa.Result, sb.Result) {
		t.Errorf("identical requests diverged:\n%+v\n%+v", sa.Result, sb.Result)
	}
}

// TestSchedulerShedsWhenSaturated pins the admission-control contract:
// a full queue sheds with ErrOverloaded and every admitted job still
// reaches a terminal state.
func TestSchedulerShedsWhenSaturated(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1, QueueDepth: 1, TestHooks: true})
	running, err := s.Submit(sleepReq(400))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning) // worker busy, queue empty
	queued, err := s.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(quickReq()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third submit: err = %v, want ErrOverloaded", err)
	}
	if got := s.Metrics().Snapshot().Counter("serve_shed"); got != 1 {
		t.Errorf("serve_shed = %d, want 1", got)
	}
	for _, job := range []*Job{running, queued} {
		if st := waitTerminal(t, job); st.State != StateDone {
			t.Errorf("job %s: state %s (%s), want done", job.ID, st.State, st.Error)
		}
	}
}

func TestSchedulerClampsRequests(t *testing.T) {
	s := newTestScheduler(t, Config{
		Workers:         1,
		MaxDeadline:     time.Second,
		DefaultDeadline: 500 * time.Millisecond,
		MaxEvals:        100,
		MaxJobWorkers:   2,
	})
	req := quickReq()
	req.TimeoutMS = 3_600_000 // absurd client deadline
	req.MaxEvals = 1 << 50    // absurd budget
	req.Workers = 64
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if job.Req.TimeoutMS != 1000 {
		t.Errorf("deadline clamped to %dms, want 1000", job.Req.TimeoutMS)
	}
	if job.Req.MaxEvals != 100 {
		t.Errorf("budget clamped to %d, want 100", job.Req.MaxEvals)
	}
	if job.Req.Workers != 2 {
		t.Errorf("workers clamped to %d, want 2", job.Req.Workers)
	}

	// A request with no deadline gets the server default, and chaos
	// hooks are stripped when TestHooks is off.
	job2, err := s.Submit(sleepReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if job2.Req.TimeoutMS != 500 {
		t.Errorf("default deadline = %dms, want 500", job2.Req.TimeoutMS)
	}
	if job2.Req.Chaos != nil {
		t.Error("chaos hook survived TestHooks=false")
	}
}

func TestSchedulerBudgetYieldsPartial(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	req := quickReq()
	req.MaxEvals = 5 // exhausted almost immediately
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StatePartial {
		t.Fatalf("state = %s (%s), want partial", st.State, st.Error)
	}
	if st.Result == nil || !st.Result.Partial || st.Result.Cause != "budget" {
		t.Errorf("outcome = %+v, want partial with cause budget", st.Result)
	}
}

func TestSchedulerRejectsInvalidRequests(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	for name, mutate := range map[string]func(*Request){
		"no soc":       func(r *Request) { r.SOC = "" },
		"both sources": func(r *Request) { r.Source = "x" },
		"bad algo":     func(r *Request) { r.Algo = "quantum" },
		"huge nr":      func(r *Request) { r.Nr = 1 << 30 },
		"zero wmax":    func(r *Request) { r.Wmax = 0 },
		"neg budget":   func(r *Request) { r.MaxEvals = -1 },
	} {
		req := quickReq()
		mutate(&req)
		if _, err := s.Submit(req); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", name, err)
		}
	}
}

// TestSchedulerPanicIsolation pins per-job panic isolation: a crashing
// job becomes a structured failure record and the pool keeps serving.
func TestSchedulerPanicIsolation(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1, TestHooks: true})
	req := quickReq()
	req.Chaos = &ChaosHook{Panic: true}
	crash, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, crash)
	if st.State != StateFailed || !strings.Contains(st.Error, "panic: chaos") {
		t.Fatalf("state = %s (%q), want failed with panic message", st.State, st.Error)
	}
	if got := s.Metrics().Snapshot().Counter("serve_panics"); got != 1 {
		t.Errorf("serve_panics = %d, want 1", got)
	}
	// The worker that recovered the panic still serves.
	next, err := s.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, next); st.State != StateDone {
		t.Errorf("post-panic job: state %s (%s), want done", st.State, st.Error)
	}
}

func TestSchedulerCancelQueuedAndRunning(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1, QueueDepth: 4, TestHooks: true})
	running, err := s.Submit(sleepReq(30_000))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := s.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, queued); st.State != StateCanceled {
		t.Errorf("queued job: state %s, want canceled", st.State)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, running); st.State != StateCanceled {
		t.Errorf("running job: state %s (%s), want canceled", st.State, st.Error)
	}
	if _, err := s.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: err = %v, want ErrNotFound", err)
	}
}

// TestSchedulerDrainPartializes drives a long job into a drain whose
// grace expires: the scheduler must stop admitting (shed with
// ErrOverloaded), interrupt the job, and surface its best-so-far
// result as a partial outcome.
func TestSchedulerDrainPartializes(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	req := quickReq()
	req.Algo = "ils"
	req.Kicks = 1_000_000 // effectively endless at d695 size
	req.TimeoutMS = 60_000
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateRunning)
	// Let the optimization get past its start solution so there is an
	// incumbent to partial-ize.
	deadline := time.Now().Add(10 * time.Second)
	for job.Trace.Len() < 300 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s.Drain(ctx)

	if _, err := s.Submit(quickReq()); !errors.Is(err, ErrOverloaded) {
		t.Errorf("submit during drain: err = %v, want ErrOverloaded", err)
	}
	st := job.Snapshot()
	if st.State != StatePartial {
		t.Fatalf("state = %s (%s), want partial", st.State, st.Error)
	}
	if st.Result == nil || !st.Result.Partial || st.Result.TimeSOC <= 0 {
		t.Errorf("outcome = %+v, want a valid partial result", st.Result)
	}
}

// TestJournalRecovery builds a journal by hand — a finished partial
// job, a job submitted but never finished (the crash victim), and a
// torn final line — and checks recovery replays the former and closes
// out the latter durably.
func TestJournalRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	journal := strings.Join([]string{
		`{"t":"submitted","id":"j000001","req":{"soc":"d695","wmax":12,"nr":200,"groups":2,"seed":1,"algo":"si","restarts":1,"workers":1,"timeoutMS":30000}}`,
		`{"t":"terminal","id":"j000001","state":"partial","result":{"timeIn":100,"timeSI":50,"timeSOC":150,"rails":2,"partial":true,"cause":"budget","patterns":200,"groups":2,"evals":5}}`,
		`{"t":"submitted","id":"j000002","req":{"soc":"d695","wmax":12,"nr":200,"groups":2,"seed":1,"algo":"si","restarts":1,"workers":1,"timeoutMS":30000}}`,
		`{"t":"subm`, // torn by the crash mid-write
	}, "\n")
	if err := os.WriteFile(path, []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestScheduler(t, Config{Workers: 1, JournalPath: path})

	replayed, err := s.Job("j000001")
	if err != nil {
		t.Fatal(err)
	}
	st := replayed.Snapshot()
	if st.State != StatePartial || st.Result == nil || st.Result.TimeSOC != 150 || !st.Result.Partial {
		t.Errorf("replayed job = %+v, want the journaled partial result", st)
	}

	orphan, err := s.Job("j000002")
	if err != nil {
		t.Fatal(err)
	}
	ost := orphan.Snapshot()
	if ost.State != StateFailed || !strings.Contains(ost.Error, "crashed") {
		t.Errorf("orphan job = %+v, want failed with crash message", ost)
	}

	// New submissions continue the ID sequence past replayed jobs.
	job, err := s.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "j000003" {
		t.Errorf("new job ID = %s, want j000003", job.ID)
	}
	waitTerminal(t, job)

	// A second recovery over the journal the first one repaired and
	// extended sees everything terminal, no orphans left.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Drain(ctx)
	s2 := newTestScheduler(t, Config{Workers: 1, JournalPath: path})
	for _, id := range []string{"j000001", "j000002", "j000003"} {
		job, err := s2.Job(id)
		if err != nil {
			t.Fatalf("after second recovery: %v", err)
		}
		if !job.State().Terminal() {
			t.Errorf("job %s not terminal after recovery: %s", id, job.State())
		}
	}
	if got := s2.Metrics().Snapshot().Counter("serve_orphaned"); got != 0 {
		t.Errorf("second recovery orphaned %d jobs, want 0", got)
	}
}

// TestSchedulerPersistentCache pins the daemon-side cache-file
// lifecycle: entries costed by jobs of one scheduler generation are
// reloaded by the next, the warm generation's outcomes are
// byte-identical to the cold one's, and the file survives the drain.
func TestSchedulerPersistentCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "evals.sitcache")

	s1 := newTestScheduler(t, Config{Workers: 1, CachePath: path})
	if s1.cache == nil {
		t.Fatal("scheduler did not open the cache file")
	}
	a, err := s1.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	sa := waitTerminal(t, a)
	if sa.State != StateDone {
		t.Fatalf("cold job state = %s (%s)", sa.State, sa.Error)
	}
	if n := s1.cache.Len(); n == 0 {
		t.Fatal("cold job persisted no cache entries")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s1.Drain(ctx)

	// "Restart": a new scheduler generation over the same file.
	s2 := newTestScheduler(t, Config{Workers: 1, CachePath: path})
	if s2.cache == nil {
		t.Fatal("restarted scheduler did not reopen the cache file")
	}
	if s2.cache.Loaded() == 0 {
		t.Fatal("restarted scheduler loaded no entries from the cache file")
	}
	b, err := s2.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	sb := waitTerminal(t, b)
	if sb.State != StateDone {
		t.Fatalf("warm job state = %s (%s)", sb.State, sb.Error)
	}
	// The cache is a pure accelerator: the warm run's outcome must be
	// indistinguishable from the cold run's.
	if !reflect.DeepEqual(sa.Result, sb.Result) {
		t.Errorf("warm outcome diverged from cold:\n%+v\n%+v", sa.Result, sb.Result)
	}
	if got := s2.Metrics().Snapshot().Gauges["serve_cache_entries"]; got == 0 {
		t.Error("serve_cache_entries gauge not maintained")
	}
}

// TestSchedulerCacheFileLocked: a second daemon generation pointed at a
// still-locked cache file must start and serve jobs memory-only.
func TestSchedulerCacheFileLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "evals.sitcache")
	s1 := newTestScheduler(t, Config{Workers: 1, CachePath: path})
	if s1.cache == nil {
		t.Fatal("first scheduler did not open the cache file")
	}
	s2 := newTestScheduler(t, Config{Workers: 1, CachePath: path})
	if s2.cache != nil {
		t.Fatal("second scheduler shares the locked cache file")
	}
	job, err := s2.Submit(quickReq())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("memory-only job state = %s (%s)", st.State, st.Error)
	}
}
