// Package chaostest is the load/fault-injection harness for the
// sitamd serving layer. It stands up an in-process Server, hammers it
// with a seeded mix of hostile clients — normal jobs across SOC sizes,
// duplicate requests that must produce identical results, slow SSE
// readers, mid-stream disconnects, in-job panics, and saturation
// bursts against a deliberately small queue — then drains and checks
// the invariants the daemon promises:
//
//   - every admitted job reaches a terminal state;
//   - identical requests produce identical outcomes;
//   - saturation sheds with 503 + Retry-After, never by queueing
//     unboundedly;
//   - no goroutines leak once the dust settles.
//
// It also collects submit-to-terminal latency percentiles, written to
// BENCH_serve.json by the test wrapper so CI tracks serving latency
// over time.
package chaostest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"time"

	"sitam/internal/serve"
)

// Options parameterizes a chaos run.
type Options struct {
	// Duration is how long the client mix keeps firing. The run takes
	// longer than this: in-flight waits and the drain ride past it.
	Duration time.Duration

	// Clients is the number of concurrent hostile clients. 0 means 8.
	Clients int

	// Seed makes the op mix reproducible.
	Seed int64

	// Workers / QueueDepth shape the scheduler under test. The queue is
	// small on purpose so saturation bursts actually shed. Zero means
	// 2 workers, queue depth 4.
	Workers    int
	QueueDepth int

	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Percentiles summarizes submit-to-terminal latency.
type Percentiles struct {
	Samples int     `json:"samples"`
	P50ms   float64 `json:"p50_ms"`
	P95ms   float64 `json:"p95_ms"`
	P99ms   float64 `json:"p99_ms"`
}

// Result is everything a chaos run observed. The invariant fields
// (NonTerminal, DeterminismViolations, MissingRetryAfter,
// LeakedGoroutines) are empty/zero on a healthy run.
type Result struct {
	Duration time.Duration `json:"-"`

	Requests    int `json:"requests"`
	Admitted    int `json:"admitted"`
	Shed        int `json:"shed"`
	Panics      int `json:"panics"`
	Disconnects int `json:"disconnects"`
	SlowReads   int `json:"slowReads"`
	Bursts      int `json:"bursts"`
	DupCompared int `json:"dupCompared"`

	Latency Percentiles `json:"latency"`

	NonTerminal           []string `json:"nonTerminal,omitempty"`
	DeterminismViolations []string `json:"determinismViolations,omitempty"`
	MissingRetryAfter     int      `json:"missingRetryAfter,omitempty"`
	LeakedGoroutines      int      `json:"leakedGoroutines,omitempty"`
}

// Healthy reports whether the run upheld every invariant.
func (r *Result) Healthy() bool {
	return len(r.NonTerminal) == 0 &&
		len(r.DeterminismViolations) == 0 &&
		r.MissingRetryAfter == 0 &&
		r.LeakedGoroutines == 0
}

// harness is one run's shared state.
type harness struct {
	opts   Options
	srv    *serve.Server
	ts     *httptest.Server
	client *http.Client

	mu        sync.Mutex
	admitted  []string
	latencies []time.Duration
	canonical map[string]*serve.Outcome // canonical request key -> first done outcome
	res       Result
}

func (h *harness) logf(format string, args ...any) {
	if h.opts.Logf != nil {
		h.opts.Logf(format, args...)
	}
}

// Run executes the chaos mix and returns what it observed.
func Run(opts Options) (*Result, error) {
	if opts.Clients <= 0 {
		opts.Clients = 8
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 4
	}
	if opts.Duration <= 0 {
		opts.Duration = 3 * time.Second
	}

	baseline := settledGoroutines()

	srv, err := serve.NewServer(serve.ServerConfig{
		Config: serve.Config{
			Workers:    opts.Workers,
			QueueDepth: opts.QueueDepth,
			TestHooks:  true,
			RetryAfter: 250 * time.Millisecond,
		},
		Poll: 5 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	h := &harness{
		opts:      opts,
		srv:       srv,
		ts:        httptest.NewServer(srv),
		canonical: make(map[string]*serve.Outcome),
	}
	h.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: opts.Clients * 2}}

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), opts.Duration)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h.clientLoop(ctx, rand.New(rand.NewSource(opts.Seed+int64(id))))
		}(i)
	}
	wg.Wait()
	h.logf("chaos: client mix done after %v (%d requests, %d admitted, %d shed)",
		time.Since(start).Round(time.Millisecond), h.res.Requests, h.res.Admitted, h.res.Shed)

	// Under heavy shedding a short run can miss a hostile path by
	// chance (its submits all got 503s); drive each one to completion
	// deterministically so every invariant is actually exercised.
	h.ensureCoverage(rand.New(rand.NewSource(opts.Seed ^ 0x5eed)))

	// Drain: stop admitting, let in-flight work finish (or partial-ize
	// on grace expiry), then release the HTTP listener.
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 30*time.Second)
	srv.Scheduler().Drain(drainCtx)
	drainCancel()
	h.ts.Close()
	h.client.CloseIdleConnections()

	// Invariant: every admitted job reached a terminal state.
	for _, id := range h.admitted {
		job, err := srv.Scheduler().Job(id)
		if err != nil {
			h.res.NonTerminal = append(h.res.NonTerminal, id+": lost")
			continue
		}
		if !job.State().Terminal() {
			h.res.NonTerminal = append(h.res.NonTerminal, fmt.Sprintf("%s: %s", id, job.State()))
		}
	}

	// Invariant: no goroutine leaks once everything is torn down.
	if after := settleTo(baseline, 10*time.Second); after > baseline {
		h.res.LeakedGoroutines = after - baseline
	}

	h.res.Duration = time.Since(start)
	h.res.Latency = percentiles(h.latencies)
	return &h.res, nil
}

// ensureCoverage retries each hostile path until it has landed at
// least once — with the queue no longer contended, a handful of
// iterations suffices.
func (h *harness) ensureCoverage(rng *rand.Rand) {
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		needPanic := h.res.Panics == 0
		needDisc := h.res.Disconnects == 0
		needShed := h.res.Shed == 0
		needDup := h.res.DupCompared == 0
		h.mu.Unlock()
		if !needPanic && !needDisc && !needShed && !needDup {
			return
		}
		if needPanic {
			h.opPanic()
		}
		if needDisc {
			h.opDisconnect(rng)
		}
		if needShed {
			h.opBurst(rng)
		}
		if needDup {
			h.opDuplicate()
		}
	}
}

// clientLoop is one hostile client: a seeded stream of ops until the
// run context expires.
func (h *harness) clientLoop(ctx context.Context, rng *rand.Rand) {
	for ctx.Err() == nil {
		switch p := rng.Intn(100); {
		case p < 40:
			h.opNormal(rng)
		case p < 55:
			h.opDuplicate()
		case p < 70:
			h.opBurst(rng)
		case p < 80:
			h.opSlowReader(rng)
		case p < 90:
			h.opDisconnect(rng)
		default:
			h.opPanic()
		}
	}
}

// submit posts a request and records admission/shed accounting.
// Returns the job ID, or "" when shed or errored.
func (h *harness) submit(req serve.Request) string {
	body, err := json.Marshal(req)
	if err != nil {
		return ""
	}
	resp, err := h.client.Post(h.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	h.mu.Lock()
	h.res.Requests++
	h.mu.Unlock()
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			return ""
		}
		h.mu.Lock()
		h.res.Admitted++
		h.admitted = append(h.admitted, acc.ID)
		h.mu.Unlock()
		return acc.ID
	case http.StatusServiceUnavailable:
		h.mu.Lock()
		h.res.Shed++
		if resp.Header.Get("Retry-After") == "" {
			h.res.MissingRetryAfter++
		}
		h.mu.Unlock()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return ""
	default:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return ""
	}
}

// status fetches a job snapshot over the wire.
func (h *harness) status(id string) (serve.Status, bool) {
	resp, err := h.client.Get(h.ts.URL + "/v1/jobs/" + id)
	if err != nil {
		return serve.Status{}, false
	}
	defer resp.Body.Close()
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return serve.Status{}, false
	}
	return st, true
}

// waitTerminal polls a job to a terminal state, recording latency.
func (h *harness) waitTerminal(id string, since time.Time) (serve.Status, bool) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := h.status(id)
		if ok && st.State.Terminal() {
			h.mu.Lock()
			h.latencies = append(h.latencies, time.Since(since))
			h.mu.Unlock()
			return st, true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return serve.Status{}, false
}

// smallSOCs is the request mix; sizes vary so the load is not uniform.
var smallSOCs = []struct {
	soc  string
	wmax int
	nr   int
}{
	{"d695", 12, 200},
	{"d695", 16, 300},
	{"p34392", 16, 150},
	{"p93791", 24, 150},
}

// opNormal submits a routine job and waits it to a terminal state.
func (h *harness) opNormal(rng *rand.Rand) {
	pick := smallSOCs[rng.Intn(len(smallSOCs))]
	start := time.Now()
	id := h.submit(serve.Request{
		SOC:   pick.soc,
		Wmax:  pick.wmax,
		Nr:    pick.nr,
		Parts: 1 + rng.Intn(3),
		Seed:  rng.Int63n(1 << 30),
	})
	if id != "" {
		h.waitTerminal(id, start)
	}
}

// canonicalReq is the fixed request duplicate clients replay; every
// completed run of it must produce the identical outcome.
func canonicalReq() serve.Request {
	return serve.Request{SOC: "d695", Wmax: 12, Nr: 200, Parts: 2, Seed: 42}
}

// opDuplicate replays the canonical request and cross-checks the
// outcome against the first completed copy.
func (h *harness) opDuplicate() {
	start := time.Now()
	id := h.submit(canonicalReq())
	if id == "" {
		return
	}
	st, ok := h.waitTerminal(id, start)
	// Only fully completed runs are comparable — a drain or deadline
	// partial legitimately differs.
	if !ok || st.State != serve.StateDone || st.Result == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if prev, seen := h.canonical["d695/42"]; seen {
		h.res.DupCompared++
		if !reflect.DeepEqual(prev, st.Result) {
			h.res.DeterminismViolations = append(h.res.DeterminismViolations,
				fmt.Sprintf("%s: %+v != %+v", id, st.Result, prev))
		}
	} else {
		h.canonical["d695/42"] = st.Result
	}
}

// opBurst fires a quick volley to hit the admission limit; shed
// accounting (and the Retry-After check) happens in submit.
func (h *harness) opBurst(rng *rand.Rand) {
	h.mu.Lock()
	h.res.Bursts++
	h.mu.Unlock()
	var ids []string
	start := time.Now()
	for i := 0; i < 4+rng.Intn(4); i++ {
		if id := h.submit(serve.Request{
			SOC: "d695", Wmax: 12, Nr: 200, Parts: 2, Seed: rng.Int63n(1 << 30),
			Chaos: &serve.ChaosHook{SleepMS: int64(rng.Intn(40))},
		}); id != "" {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		h.waitTerminal(id, start)
	}
	if len(ids) == 0 {
		// Fully shed: honor the backoff a polite client would, so the
		// burster does not monopolize the run with 503s.
		time.Sleep(100 * time.Millisecond)
	}
}

// opSlowReader streams a job's events at a trickle — the server must
// tolerate a slow consumer without stalling the job.
func (h *harness) opSlowReader(rng *rand.Rand) {
	start := time.Now()
	id := h.submit(serve.Request{SOC: "d695", Wmax: 12, Nr: 250, Parts: 2, Seed: rng.Int63n(1 << 30)})
	if id == "" {
		return
	}
	h.mu.Lock()
	h.res.SlowReads++
	h.mu.Unlock()
	resp, err := h.client.Get(h.ts.URL + "/v1/jobs/" + id + "/events?cancel=no")
	if err == nil {
		buf := make([]byte, 256) // tiny reads with pauses = slow client
		for i := 0; i < 50; i++ {
			if _, err := resp.Body.Read(buf); err != nil {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		resp.Body.Close()
	}
	h.waitTerminal(id, start)
}

// opDisconnect opens a job's event stream and drops it mid-flight; the
// server must cancel the abandoned job and the job must still reach a
// terminal state.
func (h *harness) opDisconnect(rng *rand.Rand) {
	start := time.Now()
	id := h.submit(serve.Request{
		SOC: "d695", Wmax: 12, Nr: 200, Parts: 2, Seed: rng.Int63n(1 << 30),
		Chaos: &serve.ChaosHook{SleepMS: int64(200 + rng.Intn(400))},
	})
	if id == "" {
		return
	}
	h.mu.Lock()
	h.res.Disconnects++
	h.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", h.ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err == nil {
		if resp, err := h.client.Do(req); err == nil {
			buf := make([]byte, 64)
			resp.Body.Read(buf) //nolint:errcheck // any bytes at all, then hang up
			cancel()
			resp.Body.Close()
		}
	}
	cancel()
	h.waitTerminal(id, start)
}

// opPanic injects an in-job panic; the daemon must convert it into a
// failed record and keep serving.
func (h *harness) opPanic() {
	start := time.Now()
	id := h.submit(serve.Request{
		SOC: "d695", Wmax: 12, Nr: 200, Parts: 2, Seed: 7,
		Chaos: &serve.ChaosHook{Panic: true},
	})
	if id == "" {
		return
	}
	h.mu.Lock()
	h.res.Panics++
	h.mu.Unlock()
	h.waitTerminal(id, start)
}

// percentiles computes latency percentiles (nearest-rank).
func percentiles(d []time.Duration) Percentiles {
	if len(d) == 0 {
		return Percentiles{}
	}
	sorted := append([]time.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		// Round to microsecond precision so BENCH_serve.json diffs carry
		// only real movement, not float formatting churn.
		return math.Round(float64(sorted[i])/float64(time.Microsecond)) / 1000
	}
	return Percentiles{
		Samples: len(sorted),
		P50ms:   rank(0.50),
		P95ms:   rank(0.95),
		P99ms:   rank(0.99),
	}
}

// settledGoroutines samples the goroutine count after a short settle
// so stragglers from earlier tests do not skew the baseline.
func settledGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		time.Sleep(10 * time.Millisecond)
		if m := runtime.NumGoroutine(); m <= n {
			return m
		} else {
			n = m
		}
	}
	return n
}

// settleTo waits up to max for the goroutine count to return to the
// baseline, returning the final count.
func settleTo(baseline int, max time.Duration) int {
	deadline := time.Now().Add(max)
	n := runtime.NumGoroutine()
	for n > baseline && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}
