package chaostest

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// chaosDuration honors CHAOS_DURATION (e.g. "30s" for the CI smoke
// run) and keeps the default short enough for the ordinary test suite.
func chaosDuration(t *testing.T) time.Duration {
	if v := os.Getenv("CHAOS_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("CHAOS_DURATION=%q: %v", v, err)
		}
		return d
	}
	if testing.Short() {
		return 1 * time.Second
	}
	return 3 * time.Second
}

// TestChaos is the headline robustness gate: a seeded storm of hostile
// clients against a small-queue server, then the four invariants.
func TestChaos(t *testing.T) {
	res, err := Run(Options{
		Duration: chaosDuration(t),
		Clients:  8,
		Seed:     1,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos: %d requests (%d admitted, %d shed) in %v; %d panics, %d disconnects, %d slow reads, %d bursts",
		res.Requests, res.Admitted, res.Shed, res.Duration.Round(time.Millisecond),
		res.Panics, res.Disconnects, res.SlowReads, res.Bursts)
	t.Logf("chaos: latency p50=%.1fms p95=%.1fms p99=%.1fms over %d samples",
		res.Latency.P50ms, res.Latency.P95ms, res.Latency.P99ms, res.Latency.Samples)

	for _, nt := range res.NonTerminal {
		t.Errorf("admitted job never reached a terminal state: %s", nt)
	}
	for _, dv := range res.DeterminismViolations {
		t.Errorf("identical requests diverged: %s", dv)
	}
	if res.MissingRetryAfter > 0 {
		t.Errorf("%d shed responses lacked a Retry-After header", res.MissingRetryAfter)
	}
	if res.LeakedGoroutines > 0 {
		t.Errorf("%d goroutines leaked past drain", res.LeakedGoroutines)
	}

	// A run that never exercised the hostile paths proves nothing.
	if res.Admitted == 0 {
		t.Error("chaos run admitted no jobs")
	}
	if res.Shed == 0 {
		t.Error("chaos run never saturated the queue — admission control untested")
	}
	if res.Panics == 0 {
		t.Error("chaos run injected no panics")
	}
	if res.Disconnects == 0 {
		t.Error("chaos run exercised no mid-stream disconnects")
	}
	if res.DupCompared == 0 {
		t.Error("chaos run never compared duplicate-request outcomes")
	}

	writeBench(t, res)
}

// writeBench records the latency percentiles at the repo root so CI
// diffs serving latency across commits. CHAOS_BENCH_OUT redirects the
// file (sitperf measures a fresh run without clobbering the committed
// baseline).
func writeBench(t *testing.T, res *Result) {
	path := os.Getenv("CHAOS_BENCH_OUT")
	if path == "" {
		root, err := repoRoot()
		if err != nil {
			t.Logf("skipping BENCH_serve.json: %v", err)
			return
		}
		path = filepath.Join(root, "BENCH_serve.json")
	}
	out := struct {
		*Result
		DurationMS int64 `json:"duration_ms"`
	}{Result: res, DurationMS: res.Duration.Milliseconds()}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
