package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Scheduler().Drain(ctx)
		ts.Close()
	})
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, req Request) (submitAccepted, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acc submitAccepted
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
	}
	return acc, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitHTTPTerminal(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := getStatus(t, ts, id); st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never terminal", id)
	return Status{}
}

func TestHTTPSubmitAndResult(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{Config: Config{Workers: 2}})
	acc, resp := postJob(t, ts, quickReq())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if acc.ID == "" || acc.StatusURL == "" || acc.EventsURL == "" {
		t.Fatalf("incomplete 202 body: %+v", acc)
	}
	st := waitHTTPTerminal(t, ts, acc.ID)
	if st.State != StateDone || st.Result == nil || st.Result.TimeSOC <= 0 {
		t.Fatalf("status = %+v, want done with result", st)
	}

	// The metrics endpoint exposes the registry snapshot.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve_admitted"] != 1 || snap.Counters["serve_done"] != 1 {
		t.Errorf("metrics counters = %v, want 1 admitted / 1 done", snap.Counters)
	}
}

func TestHTTPValidationAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{Config: Config{Workers: 1}})
	bad := quickReq()
	bad.Algo = "quantum"
	if _, resp := postJob(t, ts, bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid algo: status = %d, want 400", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"nonsense`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
	gresp, err := http.Get(ts.URL + "/v1/jobs/j424242")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status = %d, want 404", gresp.StatusCode)
	}
}

// TestHTTPShedsWith503RetryAfter pins the load-shedding contract on
// the wire: saturation yields 503 with a Retry-After header.
func TestHTTPShedsWith503RetryAfter(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{
		Config: Config{Workers: 1, QueueDepth: 1, TestHooks: true, RetryAfter: 2 * time.Second},
	})
	acc, _ := postJob(t, ts, sleepReq(500))
	waitRunningHTTP(t, ts, acc.ID)
	if _, resp := postJob(t, ts, quickReq()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: status = %d, want 202", resp.StatusCode)
	}
	_, resp := postJob(t, ts, quickReq())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit: status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
}

func waitRunningHTTP(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if getStatus(t, ts, id).State == StateRunning {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never running", id)
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses events (and bare heartbeat comments, reported with
// name ":") from an event stream until the body closes or the callback
// says stop.
func readSSE(r io.Reader, stop func(sseEvent) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var cur sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ": "):
			if stop(sseEvent{name: ":", data: strings.TrimPrefix(line, ": ")}) {
				return nil
			}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			if stop(cur) {
				return nil
			}
			cur = sseEvent{}
		}
	}
	return sc.Err()
}

// TestHTTPSSEStreamsTraceToCompletion checks the stream carries the
// structured search trace and finishes with a done event holding the
// terminal status.
func TestHTTPSSEStreamsTraceToCompletion(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{Config: Config{Workers: 1}, Poll: 5 * time.Millisecond})
	acc, _ := postJob(t, ts, quickReq())
	resp, err := http.Get(ts.URL + acc.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var traces int
	var done Status
	err = readSSE(resp.Body, func(ev sseEvent) bool {
		switch ev.name {
		case "trace":
			traces++
		case "done":
			if err := json.Unmarshal([]byte(ev.data), &done); err != nil {
				t.Errorf("done event payload: %v", err)
			}
			return true
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if traces == 0 {
		t.Error("stream carried no trace events")
	}
	if done.State != StateDone || done.Result == nil {
		t.Errorf("done event = %+v, want terminal status with result", done)
	}
	if traces != done.Events {
		t.Errorf("streamed %d trace events, job recorded %d", traces, done.Events)
	}
}

// TestHTTPSSEHeartbeat checks idle streams stay warm with heartbeat
// comments.
func TestHTTPSSEHeartbeat(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{
		Config:    Config{Workers: 1, TestHooks: true},
		Heartbeat: 20 * time.Millisecond,
	})
	acc, _ := postJob(t, ts, sleepReq(2_000))
	resp, err := http.Get(ts.URL + acc.EventsURL + "?cancel=no")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := make(chan struct{})
	go readSSE(resp.Body, func(ev sseEvent) bool { //nolint:errcheck
		if ev.name == ":" && ev.data == "heartbeat" {
			close(got)
			return true
		}
		return false
	})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("no heartbeat within 5s on an idle stream")
	}
}

// TestHTTPSSEDisconnectCancelsJob pins the disconnect contract: a
// client that abandons the event stream of a live job cancels it, so
// an orphaned request cannot keep burning a worker.
func TestHTTPSSEDisconnectCancelsJob(t *testing.T) {
	srv, ts := newTestServer(t, ServerConfig{
		Config: Config{Workers: 1, TestHooks: true},
		Poll:   5 * time.Millisecond,
	})
	acc, _ := postJob(t, ts, sleepReq(60_000))
	waitRunningHTTP(t, ts, acc.ID)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+acc.EventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Drop the connection mid-stream.
	cancel()

	job, err := srv.Scheduler().Job(acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job not cancelled after disconnect; state %s", job.State())
	}
	if st := job.Snapshot(); st.State != StateCanceled {
		t.Errorf("state = %s (%s), want canceled", st.State, st.Error)
	}
	if got := srv.Scheduler().Metrics().Snapshot().Counter("serve_canceled"); got != 1 {
		t.Errorf("serve_canceled = %d, want 1", got)
	}
}

// TestHTTPSSEDisconnectOptOut checks ?cancel=no leaves the job
// running after a disconnect.
func TestHTTPSSEDisconnectOptOut(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{
		Config: Config{Workers: 1, TestHooks: true},
		Poll:   5 * time.Millisecond,
	})
	acc, _ := postJob(t, ts, sleepReq(400))
	waitRunningHTTP(t, ts, acc.ID)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+acc.EventsURL+"?cancel=no", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()

	if st := waitHTTPTerminal(t, ts, acc.ID); st.State != StateDone {
		t.Errorf("state = %s (%s), want done despite disconnect", st.State, st.Error)
	}
}

func TestHTTPCancelEndpoint(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{Config: Config{Workers: 1, TestHooks: true}})
	acc, _ := postJob(t, ts, sleepReq(60_000))
	waitRunningHTTP(t, ts, acc.ID)
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+acc.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", resp.StatusCode)
	}
	if st := waitHTTPTerminal(t, ts, acc.ID); st.State != StateCanceled {
		t.Errorf("state = %s, want canceled", st.State)
	}
}

func TestHTTPHealthzAndList(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{Config: Config{Workers: 1}})
	acc, _ := postJob(t, ts, quickReq())
	waitHTTPTerminal(t, ts, acc.ID)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["draining"] != false {
		t.Errorf("healthz = %v", health)
	}
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []Status
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != acc.ID {
		t.Errorf("job list = %+v, want the one submitted job", list)
	}
}

// TestErrOverloadedWrapping pins the sentinel contract errwrapcheck
// enforces: wrapped ErrOverloaded still matches errors.Is.
func TestErrOverloadedWrapping(t *testing.T) {
	err := fmt.Errorf("admission: %w", ErrOverloaded)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("wrapped ErrOverloaded lost its identity")
	}
}
