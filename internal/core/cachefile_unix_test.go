//go:build unix

package core

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestCacheFileLocked pins the contention contract: a second opener —
// same process or another, flock is per file description — gets
// ErrCacheLocked after the retry window instead of blocking or sharing
// the file, and the lock dies with Close.
func TestCacheFileLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.sit")
	cf, err := OpenCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Append(1, testEntry(10, 0x1)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCacheFile(path); !errors.Is(err, ErrCacheLocked) {
		t.Fatalf("second open returned %v, want ErrCacheLocked", err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	cf2, err := OpenCacheFile(path)
	if err != nil {
		t.Fatalf("open after unlock: %v", err)
	}
	defer cf2.Close()
	if cf2.Loaded() != 1 {
		t.Fatalf("loaded %d entries after lock cycle, want 1", cf2.Loaded())
	}
}
