// Package core implements the paper's primary contribution: the
// TAM_Optimization algorithm (Fig. 6) that designs a TestRail
// architecture minimizing the combined SOC testing time
// T_soc = T_soc_in + T_soc_si, together with the two-dimensional SI
// test-set compaction pipeline that produces the SI test groups the
// optimizer schedules.
//
// The optimization engine is parameterized by an objective Evaluator.
// With the InTest-only evaluator it reduces to the TR-Architect
// algorithm of Goel and Marinissen (the paper's baseline, re-exported by
// package trarchitect); with the SI evaluator it is the paper's
// Algorithm 2, whose merging and wire-distribution decisions see the
// full objective and therefore account for the multiple simultaneous
// bottleneck TAMs that SI test groups induce.
package core

import (
	"sitam/internal/obs"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
)

// Evaluator computes the optimization objective of an architecture and
// refreshes the rails' TimeIn/TimeSI bookkeeping fields as a side
// effect (so callers may rank rails by TimeUsed afterwards).
type Evaluator interface {
	Evaluate(a *tam.Architecture) (int64, error)
}

// InTestEvaluator scores architectures by internal test time only —
// the TR-Architect objective.
type InTestEvaluator struct{}

// Evaluate implements Evaluator.
func (InTestEvaluator) Evaluate(a *tam.Architecture) (int64, error) {
	a.Refresh() // recomputes TimeIn for dirty rails only
	for _, r := range a.Rails {
		r.SetTimeSI(0)
	}
	return a.InTestTime(), nil
}

// SIEvaluator scores architectures by the combined objective
// T_soc = T_soc_in + T_soc_si, scheduling the SI test groups with
// Algorithm 1 from scratch on every evaluation. It is the reference
// implementation the incremental evaluator (IncrementalSIEvaluator) is
// pinned against; production entry points use the incremental one.
type SIEvaluator struct {
	Groups []*sischedule.Group
	Model  sischedule.Model

	// Cons optionally constrains the schedule (power budget, precedence,
	// exclusion). Nil scores with plain Algorithm 1, byte-identically to
	// the pre-constraint evaluator.
	Cons *sischedule.Constraints
}

// Evaluate implements Evaluator.
func (e *SIEvaluator) Evaluate(a *tam.Architecture) (int64, error) {
	for _, r := range a.Rails {
		a.RefreshTimeIn(r)
	}
	sched, err := sischedule.ScheduleSITestCons(a, e.Groups, e.Model, e.Cons)
	if err != nil {
		return 0, err
	}
	return a.InTestTime() + sched.TotalSI, nil
}

// TestBusEvaluator scores architectures the way a multiplexed Test Bus
// architecture (Varma & Bhatia) would behave: internal tests run as on
// a TestRail, but the SI test groups must be applied strictly serially
// because a Test Bus multiplexes access to one core's wrapper at a
// time and cannot drive the boundary cells of several partitions
// concurrently. The paper picks the TestRail architecture precisely
// because it supports parallel external test; optimizing under this
// evaluator quantifies what that choice buys (see the ablation bench).
type TestBusEvaluator struct {
	Groups []*sischedule.Group
	Model  sischedule.Model
}

// Evaluate implements Evaluator.
func (e *TestBusEvaluator) Evaluate(a *tam.Architecture) (int64, error) {
	for _, r := range a.Rails {
		a.RefreshTimeIn(r)
	}
	// SerialTime refreshes nothing; approximate per-rail SI usage by a
	// full scheduling pass only for the bookkeeping fields.
	if _, err := sischedule.ScheduleSITest(a, e.Groups, e.Model); err != nil {
		return 0, err
	}
	serial, err := sischedule.SerialTime(a, e.Groups, e.Model)
	if err != nil {
		return 0, err
	}
	return a.InTestTime() + serial, nil
}

// Breakdown reports the two components of the combined objective for a
// final architecture.
type Breakdown struct {
	TimeIn  int64
	TimeSI  int64
	TimeSOC int64
}

// Evaluate computes the breakdown of an architecture under the given
// groups and model, also refreshing the rails' bookkeeping. When the
// SOC carries a Constraints stanza, the schedule honors it (see
// CompileSOCConstraints); an unconstrained SOC takes the exact code
// path it always did.
func EvaluateBreakdown(a *tam.Architecture, groups []*sischedule.Group, m sischedule.Model) (Breakdown, *sischedule.Schedule, error) {
	return EvaluateBreakdownObs(a, groups, m, nil)
}

// EvaluateBreakdownObs is EvaluateBreakdown with tracing: the final
// schedule's slots are reported as si_group_scheduled events inside an
// "si schedule" phase span whose Best carries T_soc — the endpoint of
// the run's convergence curve.
func EvaluateBreakdownObs(a *tam.Architecture, groups []*sischedule.Group, m sischedule.Model, sink obs.Sink) (Breakdown, *sischedule.Schedule, error) {
	cons, err := CompileSOCConstraints(a.SOC, groups)
	if err != nil {
		return Breakdown{}, nil, err
	}
	return EvaluateBreakdownConsObs(a, groups, m, cons, sink)
}

// EvaluateBreakdownConsObs is EvaluateBreakdownObs with a pre-compiled
// constraint set (nil = unconstrained), for callers that already hold
// one and must not pay recompilation.
func EvaluateBreakdownConsObs(a *tam.Architecture, groups []*sischedule.Group, m sischedule.Model, cons *sischedule.Constraints, sink obs.Sink) (Breakdown, *sischedule.Schedule, error) {
	for _, r := range a.Rails {
		a.RefreshTimeIn(r)
	}
	span := obs.Span(sink, "si schedule")
	sched, err := sischedule.ScheduleSITestConsObs(a, groups, m, cons, sink)
	if err != nil {
		return Breakdown{}, nil, err
	}
	in := a.InTestTime()
	span.End(in+sched.TotalSI, int64(len(groups)))
	return Breakdown{TimeIn: in, TimeSI: sched.TotalSI, TimeSOC: in + sched.TotalSI}, sched, nil
}

// CompileSOCConstraints compiles the SOC's optional Constraints stanza
// against a group list. SOCs without constraints (every embedded paper
// fixture) compile to nil, keeping the unconstrained hot paths
// untouched. This is the single funnel through which the engine, the
// evaluators and the CLIs become constraint-aware: constraints travel
// on the SOC, so no entry-point signature changes.
func CompileSOCConstraints(s *soc.SOC, groups []*sischedule.Group) (*sischedule.Constraints, error) {
	return sischedule.CompileConstraints(s, s.Constraints, groups)
}
