package core

import (
	"context"
	"fmt"
	"math/rand"

	"sitam/internal/tam"
)

// This file extends the paper's deterministic TAM_Optimization with
// iterated local search (ILS): after the greedy optimization converges,
// the architecture is "kicked" by a small random perturbation (moving
// random cores between rails and shifting a wire) and re-optimized by
// the same merge/distribute/reshuffle machinery; the best architecture
// seen wins. The paper stops at the greedy fixed point; ILS is the
// natural next step its Section 6 leaves open, and the ablation bench
// quantifies what it buys.

// OptimizeILS runs Optimize and then `kicks` perturbation rounds,
// returning the best architecture found. With kicks == 0 it is exactly
// Optimize. Results are deterministic in seed.
func (e *Engine) OptimizeILS(kicks int, seed int64) (*tam.Architecture, int64, error) {
	a, obj, _, err := e.OptimizeILSCtx(context.Background(), kicks, seed)
	return a, obj, err
}

// OptimizeILSCtx is OptimizeILS as an anytime algorithm: the context is
// checked before and during every kick round, and cancellation or
// deadline expiry mid-search returns the best architecture found so far
// with Status.Partial set and a nil error. The best-so-far objective is
// monotonically non-increasing, so a partial result is never better
// than what the complete run would return. A context that is done
// before any architecture was produced yields the context's error.
func (e *Engine) OptimizeILSCtx(ctx context.Context, kicks int, seed int64) (*tam.Architecture, int64, Status, error) {
	if kicks < 0 {
		return nil, 0, Status{}, fmt.Errorf("core: negative kick count %d", kicks)
	}
	best, bestObj, st, err := e.OptimizeCtx(ctx)
	if err != nil || st.Partial {
		return best, bestObj, st, err
	}
	rng := rand.New(rand.NewSource(seed))
	cur, curObj := best, bestObj
	partial := func(err error, phase string) (*tam.Architecture, int64, Status, error) {
		return best, bestObj, Status{Partial: true, Reason: stopReason(err, phase)}, nil
	}
	for k := 0; k < kicks; k++ {
		if cerr := ctx.Err(); cerr != nil {
			return partial(cerr, fmt.Sprintf("ILS kick %d/%d", k+1, kicks))
		}
		cand := cur.Clone()
		e.kick(cand, rng)
		obj, err := e.Eval.Evaluate(cand)
		if err != nil {
			if isCtxErr(err) {
				return partial(err, fmt.Sprintf("ILS kick %d/%d", k+1, kicks))
			}
			return nil, 0, Status{}, err
		}
		cand, obj, err = e.localSearch(ctx, cand, obj)
		if err != nil {
			if isCtxErr(err) {
				return partial(err, fmt.Sprintf("ILS local search, kick %d/%d", k+1, kicks))
			}
			return nil, 0, Status{}, err
		}
		// Accept improvements; otherwise restart the walk from the
		// incumbent (classic better-acceptance ILS).
		if obj < curObj {
			cur, curObj = cand, obj
		}
		if curObj < bestObj {
			best, bestObj = cur, curObj
		}
	}
	return best, bestObj, Status{}, nil
}

// localSearch re-runs the polishing loops of Optimize on an existing
// architecture: bottom-up merges, then reshuffle.
func (e *Engine) localSearch(ctx context.Context, a *tam.Architecture, obj int64) (*tam.Architecture, int64, error) {
	for improved := true; improved && len(a.Rails) > 1; {
		sortByTimeUsed(a)
		a2, obj2, err := e.mergeTAMs(ctx, a, obj, len(a.Rails)-1)
		if err != nil {
			return nil, 0, err
		}
		improved = obj2 < obj
		a, obj = a2, obj2
	}
	return e.coreReshuffle(ctx, a, obj)
}

// kick applies a random perturbation in place: move 1-2 random cores to
// random rails (possibly new single-wire rails carved out of a wide
// one) and, when possible, shift one wire between two random rails.
func (e *Engine) kick(a *tam.Architecture, rng *rand.Rand) {
	moves := 1 + rng.Intn(2)
	for m := 0; m < moves; m++ {
		from := rng.Intn(len(a.Rails))
		if len(a.Rails[from].Cores) <= 1 {
			continue
		}
		id := a.Rails[from].Cores[rng.Intn(len(a.Rails[from].Cores))]
		removeCore(a.Rails[from], id)
		if len(a.Rails) > 1 && (rng.Intn(3) > 0 || a.Rails[from].Width < 2) {
			// Move to another existing rail.
			to := rng.Intn(len(a.Rails) - 1)
			if to >= from {
				to++
			}
			insertCore(a.Rails[to], id)
		} else {
			// Carve a new single-wire rail out of the source rail.
			a.Rails[from].Width--
			a.Rails = append(a.Rails, &tam.Rail{Cores: []int{id}, Width: 1})
		}
	}
	// Shift one wire between two random rails.
	if len(a.Rails) > 1 {
		from := rng.Intn(len(a.Rails))
		to := rng.Intn(len(a.Rails) - 1)
		if to >= from {
			to++
		}
		if a.Rails[from].Width > 1 {
			a.Rails[from].Width--
			a.Rails[to].Width++
		}
	}
}
