package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"sitam/internal/obs"
	"sitam/internal/tam"
)

// This file extends the paper's deterministic TAM_Optimization with
// iterated local search (ILS): after the greedy optimization converges,
// the architecture is "kicked" by a small random perturbation (moving
// random cores between rails and shifting a wire) and re-optimized by
// the same merge/distribute/reshuffle machinery; the best architecture
// seen wins. The paper stops at the greedy fixed point; ILS is the
// natural next step its Section 6 leaves open, and the ablation bench
// quantifies what it buys.

// OptimizeILS runs Optimize and then `kicks` perturbation rounds,
// returning the best architecture found. With kicks == 0 it is exactly
// Optimize. Results are deterministic in seed.
func (e *Engine) OptimizeILS(kicks int, seed int64) (*tam.Architecture, int64, error) {
	a, obj, _, err := e.OptimizeILSCtx(context.Background(), kicks, seed)
	return a, obj, err
}

// OptimizeILSCtx is OptimizeILS as an anytime algorithm: the context is
// checked before and during every kick round, and cancellation or
// deadline expiry mid-search returns the best architecture found so far
// with Status.Partial set and a nil error. The best-so-far objective is
// monotonically non-increasing, so a partial result is never better
// than what the complete run would return. A context that is done
// before any architecture was produced yields the context's error.
func (e *Engine) OptimizeILSCtx(ctx context.Context, kicks int, seed int64) (*tam.Architecture, int64, Status, error) {
	if kicks < 0 {
		return nil, 0, Status{}, fmt.Errorf("core: negative kick count %d", kicks)
	}
	best, bestObj, st, err := e.OptimizeCtx(ctx)
	if err != nil || st.Partial || kicks == 0 {
		return best, bestObj, st, err
	}
	rng := rand.New(rand.NewSource(seed))
	cur, curObj := best, bestObj
	end := e.phase(phaseILS)
	partial := func(err error, reason string, kick int) (*tam.Architecture, int64, Status, error) {
		e.stopEvent(err, phaseILS, kick)
		end(bestObj)
		return best, bestObj, Status{Partial: true, Reason: stopReason(err, reason), Cause: CauseOf(err)}, nil
	}
	for k := 0; k < kicks; k++ {
		if cerr := ctx.Err(); cerr != nil {
			return partial(cerr, fmt.Sprintf("ILS kick %d/%d", k+1, kicks), k+1)
		}
		cand := cur.Clone()
		e.kick(cand, rng)
		obj, err := e.eval(cand)
		if err != nil {
			if isStop(err) {
				return partial(err, fmt.Sprintf("ILS kick %d/%d", k+1, kicks), k+1)
			}
			return nil, 0, Status{}, err
		}
		cand, obj, err = e.localSearch(ctx, cand, obj)
		if err != nil {
			if isStop(err) {
				return partial(err, fmt.Sprintf("ILS local search, kick %d/%d", k+1, kicks), k+1)
			}
			return nil, 0, Status{}, err
		}
		// Accept improvements; otherwise restart the walk from the
		// incumbent (classic better-acceptance ILS).
		if obj < curObj {
			cur, curObj = cand, obj
		}
		if curObj < bestObj {
			best, bestObj = cur, curObj
		}
		if e.Trace != nil {
			e.Trace.Emit(obs.Event{Type: obs.ILSKick, Phase: phaseILS, Kick: k + 1, Seed: seed, Obj: obj, Best: bestObj})
		}
	}
	end(bestObj)
	return best, bestObj, Status{}, nil
}

// OptimizeILSRestarts runs `restarts` independent ILS searches with
// seeds seed, seed+1, ..., seed+restarts-1 and returns the best
// architecture found. Restarts are mutually independent, so with a
// parallel evaluator they fan out across the worker pool (each restart
// then evaluates serially inside, keeping total concurrency bounded);
// the reduction picks the smallest objective, ties broken by the
// lowest seed, so the outcome is byte-identical at any worker count.
func (e *Engine) OptimizeILSRestarts(kicks, restarts int, seed int64) (*tam.Architecture, int64, error) {
	a, obj, _, err := e.OptimizeILSRestartsCtx(context.Background(), kicks, restarts, seed)
	return a, obj, err
}

// OptimizeILSRestartsCtx is OptimizeILSRestarts as an anytime
// algorithm: on cancellation or deadline expiry the best architecture
// any restart produced so far is returned with Status.Partial set and
// a nil error; the context's error comes back only when no restart
// produced anything.
//
// Each restart traces into its own buffer, drained into the engine's
// sink in restart order once all restarts finish, and counts
// evaluations into its own counter (folded into the engine total), so
// the trace and the per-phase counts are deterministic at any worker
// count. MaxEvals bounds each restart independently.
func (e *Engine) OptimizeILSRestartsCtx(ctx context.Context, kicks, restarts int, seed int64) (*tam.Architecture, int64, Status, error) {
	if restarts < 1 {
		return nil, 0, Status{}, fmt.Errorf("core: restart count %d < 1", restarts)
	}
	if restarts == 1 {
		return e.OptimizeILSCtx(ctx, kicks, seed)
	}
	type outcome struct {
		a   *tam.Architecture
		obj int64
		st  Status
		err error
	}
	res := make([]outcome, restarts)
	var locals []*obs.Local
	if e.Trace != nil {
		locals = make([]*obs.Local, restarts)
		for i := range locals {
			locals[i] = obs.NewLocal()
		}
	}
	counters := make([]*atomic.Int64, restarts)
	run := func(i int) {
		// Each restart searches serially: concurrency lives at the
		// restart level, so the pool stays bounded by Par.Workers.
		inner := *e
		inner.Par = nil
		inner.evals = new(atomic.Int64)
		counters[i] = inner.evals
		if locals != nil {
			inner.Trace = locals[i]
		}
		r := &res[i]
		r.a, r.obj, r.st, r.err = inner.OptimizeILSCtx(ctx, kicks, seed+int64(i))
	}
	if k := e.Par.workers(); k > 1 {
		parallelFor(k, restarts, func(_, i int) { run(i) })
	} else {
		for i := 0; i < restarts; i++ {
			run(i)
		}
	}
	if e.evals != nil {
		for _, c := range counters {
			if c != nil {
				e.evals.Add(c.Load())
			}
		}
	}
	if locals != nil {
		obs.Drain(e.Trace, locals...)
	}
	best := -1
	partial := Status{}
	for i := range res {
		r := &res[i]
		if r.err != nil {
			if isStop(r.err) {
				partial = statusOf(r.err, fmt.Sprintf("ILS restart %d/%d", i+1, restarts))
				continue
			}
			return nil, 0, Status{}, r.err
		}
		if r.st.Partial {
			partial = r.st
		}
		if best < 0 || r.obj < res[best].obj {
			best = i
		}
	}
	if best < 0 {
		return nil, 0, Status{}, ctx.Err()
	}
	return res[best].a, res[best].obj, partial, nil
}

// localSearch re-runs the polishing loops of Optimize on an existing
// architecture: bottom-up merges, then reshuffle.
func (e *Engine) localSearch(ctx context.Context, a *tam.Architecture, obj int64) (*tam.Architecture, int64, error) {
	for improved := true; improved && len(a.Rails) > 1; {
		sortByTimeUsed(a)
		a2, obj2, err := e.mergeTAMs(ctx, a, obj, len(a.Rails)-1, phaseILSLocal)
		if err != nil {
			return nil, 0, err
		}
		improved = obj2 < obj
		a, obj = a2, obj2
	}
	return e.coreReshuffle(ctx, a, obj, phaseILSLocal)
}

// kick applies a random perturbation in place: move 1-2 random cores to
// random rails (possibly new single-wire rails carved out of a wide
// one) and, when possible, shift one wire between two random rails.
func (e *Engine) kick(a *tam.Architecture, rng *rand.Rand) {
	moves := 1 + rng.Intn(2)
	for m := 0; m < moves; m++ {
		from := rng.Intn(len(a.Rails))
		if len(a.Rails[from].Cores) <= 1 {
			continue
		}
		id := a.Rails[from].Cores[rng.Intn(len(a.Rails[from].Cores))]
		if len(a.Rails) > 1 && (rng.Intn(3) > 0 || a.Rails[from].Width < 2) {
			// Move to another existing rail.
			to := rng.Intn(len(a.Rails) - 1)
			if to >= from {
				to++
			}
			a.MoveCore(from, to, id)
		} else {
			// Carve a new single-wire rail out of the source rail.
			a.CarveCore(from, id)
		}
	}
	// Shift one wire between two random rails.
	if len(a.Rails) > 1 {
		from := rng.Intn(len(a.Rails))
		to := rng.Intn(len(a.Rails) - 1)
		if to >= from {
			to++
		}
		if a.Rails[from].Width > 1 {
			a.SetWidth(from, a.Rails[from].Width-1)
			a.SetWidth(to, a.Rails[to].Width+1)
		}
	}
}
