//go:build linux

package core

import (
	"os"
	"path/filepath"
	"testing"
)

// openFDs counts the process's open file descriptors via /proc.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestOpenCacheFileFailureLeaksNoFDs hammers both OpenCacheFile error
// paths — the flock conflict and the foreign-file rejection — and
// requires the process fd table to end exactly where it started: every
// failed open must close its fd (and, on the load-failure path,
// release the flock first, which the successful re-open at the end
// proves).
func TestOpenCacheFileFailureLeaksNoFDs(t *testing.T) {
	dir := t.TempDir()

	oldRetries, oldBackoff := cacheLockRetries, cacheLockBackoff
	cacheLockRetries, cacheLockBackoff = 0, 0
	defer func() { cacheLockRetries, cacheLockBackoff = oldRetries, oldBackoff }()

	// Path 1: the file is held by another open file description, so
	// lockCacheFile fails after its retries.
	locked := filepath.Join(dir, "locked.sitcache")
	holder, err := OpenCacheFile(locked)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()

	// Path 2: a foreign file load() refuses to clobber.
	foreign := filepath.Join(dir, "foreign.bin")
	if err := os.WriteFile(foreign, []byte("definitely not a sitam cache file"), 0o644); err != nil {
		t.Fatal(err)
	}

	before := openFDs(t)
	for i := 0; i < 100; i++ {
		if _, err := OpenCacheFile(locked); err != ErrCacheLocked {
			t.Fatalf("iteration %d: OpenCacheFile(locked) = %v, want ErrCacheLocked", i, err)
		}
		if _, err := OpenCacheFile(foreign); err == nil {
			t.Fatalf("iteration %d: OpenCacheFile(foreign) succeeded on a non-cache file", i)
		}
	}
	if after := openFDs(t); after != before {
		t.Fatalf("fd count drifted across 200 failed opens: %d -> %d (leaked %d fds)", before, after, after-before)
	}

	// The foreign-file failures released their flocks: the file locks
	// cleanly once its contents are legitimate.
	if err := os.Remove(foreign); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCacheFile(foreign)
	if err != nil {
		t.Fatalf("OpenCacheFile after failure storm: %v", err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
}
