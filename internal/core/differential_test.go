package core

import (
	"context"
	"testing"

	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
)

// Differential harness for the parallel evaluation layer: for every
// embedded SOC fixture and W_max in {8, 16, 32, 64}, the parallel
// engine at workers = 1, 2 and 8 (with memoization on) must return the
// same T_soc and a byte-identical architecture dump as the serial,
// cache-free engine — including the ILS path with fixed seeds. The
// expected objectives are pinned to the values the pre-parallel engine
// produced, so the harness also detects behavioral drift of the serial
// path itself.

const (
	diffNr    = 1200
	diffParts = 3
	diffSeed  = 1
	diffILSW  = 16 // W_max for the ILS differential runs
	ilsKicks  = 4
	ilsSeed   = 7
)

var diffWidths = []int{8, 16, 32, 64}

// diffGolden pins T_soc per fixture and width, plus the ILS objective
// at diffILSW, as produced by the serial engine of the seed revision
// (Nr=1200, Parts=3, seed=1; ILS kicks=4, seed=7).
var diffGolden = map[string]struct {
	tsoc map[int]int64
	ils  int64
}{
	"d695":   {tsoc: map[int]int64{8: 151378, 16: 89481, 32: 44589, 64: 23583}, ils: 86138},
	"p34392": {tsoc: map[int]int64{8: 2121140, 16: 1113639, 32: 583114, 64: 549887}, ils: 1113639},
	"p93791": {tsoc: map[int]int64{8: 4161081, 16: 2200797, 32: 1152459, 64: 594462}, ils: 2200797},
}

// diffGroups builds the shared SI test grouping for a fixture.
func diffGroups(t *testing.T, s *soc.SOC) []*sischedule.Group {
	t.Helper()
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: diffNr, Seed: diffSeed})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := BuildGroups(s, patterns, GroupingOptions{Parts: diffParts, Seed: diffSeed})
	if err != nil {
		t.Fatal(err)
	}
	return gr.Groups
}

func TestParallelMatchesSerial(t *testing.T) {
	for name, want := range diffGolden {
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "p93791" {
				t.Skip("skipping the largest fixture in -short mode")
			}
			s := soc.MustLoadBenchmark(name)
			groups := diffGroups(t, s)
			m := sischedule.DefaultModel()
			for _, w := range diffWidths {
				serial, err := TAMOptimization(s, w, groups, m)
				if err != nil {
					t.Fatalf("W=%d serial: %v", w, err)
				}
				if got := serial.Breakdown.TimeSOC; got != want.tsoc[w] {
					t.Errorf("W=%d serial T_soc = %d, want %d (serial engine drifted)", w, got, want.tsoc[w])
				}
				dump := serial.Architecture.String()
				for _, workers := range []int{1, 2, 8} {
					res, err := TAMOptimizationWith(context.Background(), s, w, groups, m,
						ParallelConfig{Workers: workers})
					if err != nil {
						t.Fatalf("W=%d workers=%d: %v", w, workers, err)
					}
					if res.Breakdown.TimeSOC != serial.Breakdown.TimeSOC {
						t.Errorf("W=%d workers=%d: T_soc = %d, serial = %d",
							w, workers, res.Breakdown.TimeSOC, serial.Breakdown.TimeSOC)
					}
					if got := res.Architecture.String(); got != dump {
						t.Errorf("W=%d workers=%d: architecture differs from serial\nparallel:\n%s\nserial:\n%s",
							w, workers, got, dump)
					}
					if st := res.Cache; st.Hits+st.Misses == 0 {
						t.Errorf("W=%d workers=%d: cache saw no lookups", w, workers)
					}
					// The acceptance bar for the memoization layer: at
					// workers=1 the hit/miss split is deterministic, and
					// on the largest fixture at the widest sweep point at
					// least half of all evaluations must come from cache.
					if name == "p93791" && w == 64 && workers == 1 {
						if hr := res.Cache.HitRate(); hr < 0.50 {
							t.Errorf("p93791 W=64: cache hit rate %.1f%%, want >= 50%%", 100*hr)
						}
					}
				}
			}
		})
	}
}

func TestParallelILSMatchesSerial(t *testing.T) {
	for name, want := range diffGolden {
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "p93791" {
				t.Skip("skipping the largest fixture in -short mode")
			}
			s := soc.MustLoadBenchmark(name)
			groups := diffGroups(t, s)
			m := sischedule.DefaultModel()
			eng, err := NewEngine(s, diffILSW, &SIEvaluator{Groups: groups, Model: m})
			if err != nil {
				t.Fatal(err)
			}
			serialArch, serialObj, err := eng.OptimizeILS(ilsKicks, ilsSeed)
			if err != nil {
				t.Fatal(err)
			}
			if serialObj != want.ils {
				t.Errorf("serial ILS objective = %d, want %d (serial engine drifted)", serialObj, want.ils)
			}
			dump := serialArch.String()
			for _, workers := range []int{1, 2, 8} {
				peng, _, err := NewParallelEngine(s, diffILSW, &SIEvaluator{Groups: groups, Model: m},
					ParallelConfig{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				arch, obj, err := peng.OptimizeILS(ilsKicks, ilsSeed)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if obj != serialObj {
					t.Errorf("workers=%d: ILS objective = %d, serial = %d", workers, obj, serialObj)
				}
				if got := arch.String(); got != dump {
					t.Errorf("workers=%d: ILS architecture differs from serial\nparallel:\n%s\nserial:\n%s",
						workers, got, dump)
				}
			}
		})
	}
}

// TestParallelILSRestartsDeterministic checks that multi-restart ILS
// picks the same winner at any worker count and never loses to the
// single-restart run (restart 0 reproduces it exactly).
func TestParallelILSRestartsDeterministic(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	groups := diffGroups(t, s)
	m := sischedule.DefaultModel()
	var baseObj int64
	var baseDump string
	for i, workers := range []int{1, 2, 8} {
		eng, _, err := NewParallelEngine(s, diffILSW, &SIEvaluator{Groups: groups, Model: m},
			ParallelConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		arch, obj, err := eng.OptimizeILSRestarts(ilsKicks, 3, ilsSeed)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			baseObj, baseDump = obj, arch.String()
			single, singleObj, err := eng.OptimizeILS(ilsKicks, ilsSeed)
			if err != nil {
				t.Fatal(err)
			}
			_ = single
			if obj > singleObj {
				t.Errorf("3 restarts objective %d worse than 1 restart %d", obj, singleObj)
			}
			continue
		}
		if obj != baseObj || arch.String() != baseDump {
			t.Errorf("workers=%d: restarts result differs from workers=1 (obj %d vs %d)", workers, obj, baseObj)
		}
	}
	if _, _, err := mustEngine(t, s, groups, m).OptimizeILSRestarts(ilsKicks, 0, ilsSeed); err == nil {
		t.Error("restarts=0 accepted")
	}
}

func mustEngine(t *testing.T, s *soc.SOC, groups []*sischedule.Group, m sischedule.Model) *Engine {
	t.Helper()
	eng, err := NewEngine(s, diffILSW, &SIEvaluator{Groups: groups, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestCopyFrom pins the scratch-reset semantics mapCandidates relies
// on: CopyFrom must produce a deep, independent copy whatever the
// previous shape of the destination.
func TestCopyFrom(t *testing.T) {
	src := &tam.Architecture{Rails: []*tam.Rail{
		{Cores: []int{1, 2}, Width: 4, TimeIn: 10, TimeSI: 5},
		{Cores: []int{3}, Width: 2, TimeIn: 7, TimeSI: 1},
	}}
	for _, dst := range []*tam.Architecture{
		{}, // empty
		{Rails: []*tam.Rail{{Cores: []int{9, 9, 9}, Width: 1}}},                    // shorter
		{Rails: []*tam.Rail{{}, {}, {Cores: []int{8}, Width: 3}, {Width: 1}}},      // longer
		{Rails: []*tam.Rail{{Cores: []int{5}, Width: 9}, {Cores: []int{6, 7, 8}}}}, // same length
	} {
		dst.CopyFrom(src)
		if len(dst.Rails) != len(src.Rails) {
			t.Fatalf("CopyFrom: %d rails, want %d", len(dst.Rails), len(src.Rails))
		}
		for i, r := range src.Rails {
			d := dst.Rails[i]
			if d.Width != r.Width || d.TimeIn != r.TimeIn || d.TimeSI != r.TimeSI {
				t.Errorf("rail %d: copied fields differ: %+v vs %+v", i, d, r)
			}
			if len(d.Cores) != len(r.Cores) {
				t.Fatalf("rail %d: %d cores, want %d", i, len(d.Cores), len(r.Cores))
			}
			for j := range r.Cores {
				if d.Cores[j] != r.Cores[j] {
					t.Errorf("rail %d core %d: %d != %d", i, j, d.Cores[j], r.Cores[j])
				}
			}
		}
		// Mutating the copy must not leak into the source.
		dst.Rails[0].Cores[0] = 99
		dst.Rails[0].Width = 99
		if src.Rails[0].Cores[0] != 1 || src.Rails[0].Width != 4 {
			t.Fatal("CopyFrom aliases the source rails")
		}
		src.Rails[0].Cores[0], src.Rails[0].Width = 1, 4
	}
}
