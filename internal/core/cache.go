package core

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sitam/internal/obs"
	"sitam/internal/tam"
)

// This file implements the memoized cost cache behind the parallel
// candidate evaluation layer. The optimization loops of Fig. 6
// re-evaluate T_soc = T_soc_in + T_soc_si for thousands of candidate
// architectures, and the same rail composition recurs across merge
// rounds, the remaining-rails sweep, ILS local searches and winner
// reconstruction. The objective is a pure function of the rail
// composition — per-rail InTest times depend only on (cores, width),
// and Algorithm 1's T_soc_si and per-rail busy times are invariant
// under rail permutation (the group conflict relation is defined on
// rail identities, not indices) — so a canonical sorted-composition
// key memoizes it exactly.

// DefaultCacheSize is the entry capacity used when a CachedEvaluator
// is built with a non-positive capacity.
const DefaultCacheSize = 1 << 16

// CacheStats is a snapshot of a CachedEvaluator's counters.
type CacheStats struct {
	// Hits and Misses count Evaluate calls answered from the cache and
	// forwarded to the inner evaluator.
	Hits, Misses int64

	// Evictions counts epoch flushes: the cache drops all entries when
	// it reaches capacity.
	Evictions int64

	// Entries is the current number of cached compositions.
	Entries int
}

// HitRate returns the fraction of Evaluate calls answered from the
// cache, in [0, 1].
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cachedRail preserves the bookkeeping side effects of one rail's
// evaluation, keyed by the rail's composition ("cores@width").
type cachedRail struct {
	key            string
	timeIn, timeSI int64
}

type cacheEntry struct {
	obj   int64
	rails []cachedRail // sorted by key
}

// CachedEvaluator memoizes an Evaluator by rail composition. It is
// safe for concurrent use: the worker pool's candidate evaluations
// share one cache. Values are pure, so a racing double-miss stores the
// same entry twice and determinism is unaffected (only the hit/miss
// counters are timing-dependent under concurrency).
type CachedEvaluator struct {
	// Inner is the wrapped evaluator consulted on a miss.
	Inner Evaluator

	capacity     int
	hits, misses atomic.Int64
	evictions    atomic.Int64
	mu           sync.Mutex
	entries      map[string]*cacheEntry

	// sink receives per-lookup cache_hit/cache_miss events. Set only
	// for single-worker runs (NewParallelEngine): under concurrency
	// the hit/miss split is timing-dependent, which would break trace
	// determinism — the totals are always on the metrics snapshot.
	sink obs.Sink
}

// NewCachedEvaluator wraps inner with a memoization cache holding at
// most capacity compositions (DefaultCacheSize when capacity <= 0).
// When full, the cache is flushed whole — epoch eviction keeps the
// bookkeeping trivially deterministic and the steady-state hit rate
// recovers within one merge round.
func NewCachedEvaluator(inner Evaluator, capacity int) *CachedEvaluator {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &CachedEvaluator{
		Inner:    inner,
		capacity: capacity,
		entries:  make(map[string]*cacheEntry),
	}
}

// railCompKey returns one rail's composition key: its core-ID
// signature plus its width.
func railCompKey(r *tam.Rail) string {
	return railKey(r) + "@" + strconv.Itoa(r.Width)
}

// archKey returns the architecture's canonical composition key: the
// sorted rail composition keys. perRail receives the unsorted per-rail
// keys, index-aligned with a.Rails, for restoring bookkeeping on a hit.
func archKey(a *tam.Architecture) (key string, perRail []string) {
	perRail = make([]string, len(a.Rails))
	for i, r := range a.Rails {
		perRail[i] = railCompKey(r)
	}
	sorted := append([]string(nil), perRail...)
	sort.Strings(sorted)
	return strings.Join(sorted, ";"), perRail
}

// Evaluate implements Evaluator. On a hit it restores the per-rail
// TimeIn/TimeSI bookkeeping exactly as a fresh inner evaluation would
// have set it; on a miss it forwards to the inner evaluator and caches
// the outcome. Errors are never cached.
func (c *CachedEvaluator) Evaluate(a *tam.Architecture) (int64, error) {
	key, perRail := archKey(a)
	c.mu.Lock()
	ent, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		if c.sink != nil {
			c.sink.Emit(obs.Event{Type: obs.CacheHit})
		}
		for i, r := range a.Rails {
			j := sort.Search(len(ent.rails), func(j int) bool { return ent.rails[j].key >= perRail[i] })
			r.TimeIn, r.TimeSI = ent.rails[j].timeIn, ent.rails[j].timeSI
		}
		return ent.obj, nil
	}
	c.misses.Add(1)
	if c.sink != nil {
		c.sink.Emit(obs.Event{Type: obs.CacheMiss})
	}
	obj, err := c.Inner.Evaluate(a)
	if err != nil {
		return 0, err
	}
	ent = &cacheEntry{obj: obj, rails: make([]cachedRail, len(a.Rails))}
	for i, r := range a.Rails {
		ent.rails[i] = cachedRail{key: perRail[i], timeIn: r.TimeIn, timeSI: r.TimeSI}
	}
	sort.Slice(ent.rails, func(i, j int) bool { return ent.rails[i].key < ent.rails[j].key })
	c.mu.Lock()
	if len(c.entries) >= c.capacity {
		c.entries = make(map[string]*cacheEntry)
		c.evictions.Add(1)
	}
	c.entries[key] = ent
	c.mu.Unlock()
	return obj, nil
}

// Stats returns a snapshot of the cache counters.
func (c *CachedEvaluator) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

// Reset drops all entries and zeroes the counters (used by the
// cold-vs-warm benchmarks).
func (c *CachedEvaluator) Reset() {
	c.mu.Lock()
	c.entries = make(map[string]*cacheEntry)
	c.mu.Unlock()
	c.ResetStats()
}

// ResetStats zeroes the counters while keeping the cached entries, so
// warm-cache hit rates can be measured without the priming misses.
func (c *CachedEvaluator) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}
