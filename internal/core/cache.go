package core

import (
	"sync"
	"sync/atomic"

	"sitam/internal/obs"
	"sitam/internal/tam"
)

// This file implements the memoized cost cache behind the parallel
// candidate evaluation layer. The optimization loops of Fig. 6
// re-evaluate T_soc = T_soc_in + T_soc_si for thousands of candidate
// architectures, and the same rail composition recurs across merge
// rounds, the remaining-rails sweep, ILS local searches and winner
// reconstruction. The objective is a pure function of the rail
// composition — per-rail InTest times depend only on (cores, width),
// and Algorithm 1's T_soc_si and per-rail busy times are invariant
// under rail permutation (the group conflict relation is defined on
// rail identities, not indices) — so an order-independent composition
// key memoizes it exactly.
//
// The key is tam.Architecture.Hash(): the XOR of the rails' FNV-1a
// (width, cores) sub-hashes, maintained incrementally by the dirty-rail
// machinery. Keying therefore costs O(dirty rails) and zero
// allocations, replacing the sorted-composition string key whose
// build-and-sort overhead BENCH_parallel.json flagged as roughly
// offsetting the memoization win on cold runs. A 64-bit collision over
// a cache of at most 2^16 entries has probability ~1e-10 per run;
// lookups additionally verify the per-rail sub-hashes and fall back to
// a fresh evaluation on any mismatch, so a collision can cost
// performance but never correctness.

// DefaultCacheSize is the entry capacity used when a CachedEvaluator
// is built with a non-positive capacity.
const DefaultCacheSize = 1 << 16

// CacheStats is a snapshot of a CachedEvaluator's counters.
type CacheStats struct {
	// Hits and Misses count Evaluate calls answered from the cache and
	// forwarded to the inner evaluator.
	Hits, Misses int64

	// Loads counts entries seeded from a persistent cache file
	// (AttachPersistent). Loads are deliberately NOT hits: a hit is an
	// Evaluate call the cache answered this run, a load is inventory
	// carried over from a previous process. Conflating them would let a
	// restarted run report a hit rate it never earned.
	Loads int64

	// Evictions counts epoch flushes: the cache drops all entries when
	// it reaches capacity.
	Evictions int64

	// Entries is the current number of cached compositions.
	Entries int
}

// HitRate returns the fraction of Evaluate calls answered from the
// cache, in [0, 1].
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cachedRail preserves the bookkeeping side effects of one rail's
// evaluation, keyed by the rail's composition sub-hash. TimeIn needs no
// entry: the keying Hash() call refreshes every rail's TimeIn already.
type cachedRail struct {
	hash   uint64
	timeSI int64
}

type cacheEntry struct {
	obj   int64
	rails []cachedRail // in the architecture's rail order at store time
}

// CachedEvaluator memoizes an Evaluator by rail composition. It is
// safe for concurrent use: the worker pool's candidate evaluations
// share one cache. Values are pure, so a racing double-miss stores the
// same entry twice and determinism is unaffected (only the hit/miss
// counters are timing-dependent under concurrency).
type CachedEvaluator struct {
	// Inner is the wrapped evaluator consulted on a miss.
	Inner Evaluator

	capacity     int
	hits, misses atomic.Int64
	loads        atomic.Int64
	evictions    atomic.Int64
	mu           sync.Mutex
	entries      map[uint64]cacheEntry

	// persist, when non-nil, receives every freshly evaluated entry so
	// the next process can start warm (AttachPersistent). Append
	// failures drop the file silently: persistence is best-effort, the
	// in-memory cache stays authoritative.
	persist *CacheFile

	// sink receives per-lookup cache_hit/cache_miss events. Set only
	// for single-worker runs (NewParallelEngine): under concurrency
	// the hit/miss split is timing-dependent, which would break trace
	// determinism — the totals are always on the metrics snapshot.
	sink obs.Sink
}

// NewCachedEvaluator wraps inner with a memoization cache holding at
// most capacity compositions (DefaultCacheSize when capacity <= 0).
// When full, the cache is flushed whole — epoch eviction keeps the
// bookkeeping trivially deterministic and the steady-state hit rate
// recovers within one merge round.
func NewCachedEvaluator(inner Evaluator, capacity int) *CachedEvaluator {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &CachedEvaluator{
		Inner:    inner,
		capacity: capacity,
		entries:  make(map[uint64]cacheEntry),
	}
}

// AttachPersistent seeds the cache from cf's on-disk entries and wires
// every future miss-store through to the file. Seeded entries count as
// Loads, never as Hits (see CacheStats.Loads); a single cache_load
// event with the seeded count goes to the trace sink when one is
// attached — one deterministic event, so single-worker trace
// determinism is unaffected. Seeding stops at capacity. Call before
// the first Evaluate; the method is not safe concurrently with
// lookups.
func (c *CachedEvaluator) AttachPersistent(cf *CacheFile) {
	if cf == nil {
		return
	}
	cf.mu.Lock()
	n := 0
	for key, ent := range cf.entries {
		if len(c.entries) >= c.capacity {
			break
		}
		if _, ok := c.entries[key]; !ok {
			n++
		}
		c.entries[key] = ent
	}
	cf.mu.Unlock()
	c.persist = cf
	c.loads.Add(int64(n))
	if c.sink != nil {
		c.sink.Emit(obs.Event{Type: obs.CacheLoad, N: int64(n)})
	}
}

// restore replays the cached per-rail TimeSI bookkeeping onto a. It
// reports false — leaving a untouched — when the rails' sub-hash
// multiset does not match the entry, i.e. on an XOR hash collision.
//
// The common hit presents the rails in the same order they were stored
// (candidate generation is deterministic, so a revisited composition
// is laid out identically), which the aligned fast path verifies with
// one linear compare and no sorting anywhere. Permuted hits take a
// quadratic match with a use-once bitmask — rail counts are a few
// dozen, and the mask keeps duplicate sub-hashes (identical rails)
// honest. Architectures beyond 64 rails skip the permuted path and
// re-evaluate; correctness is unaffected.
func (ent *cacheEntry) restore(a *tam.Architecture) bool {
	if len(ent.rails) != len(a.Rails) {
		return false
	}
	rails := ent.rails
	aligned := true
	for i, r := range a.Rails {
		if rails[i].hash != r.Hash() {
			aligned = false
			break
		}
	}
	if aligned {
		for i, r := range a.Rails {
			r.SetTimeSI(rails[i].timeSI)
		}
		return true
	}
	if len(rails) > 64 {
		return false
	}
	var used uint64
	for _, r := range a.Rails {
		h := r.Hash()
		found := false
		for j := range rails {
			if used&(1<<uint(j)) == 0 && rails[j].hash == h {
				used |= 1 << uint(j)
				r.SetTimeSI(rails[j].timeSI)
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Evaluate implements Evaluator. On a hit it restores the per-rail
// TimeIn/TimeSI bookkeeping exactly as a fresh inner evaluation would
// have set it (TimeIn via the keying refresh, TimeSI from the entry);
// on a miss it forwards to the inner evaluator and caches the outcome.
// Errors are never cached.
func (c *CachedEvaluator) Evaluate(a *tam.Architecture) (int64, error) {
	key := a.Hash() // refreshes dirty rails: TimeIn and sub-hashes are now current
	c.mu.Lock()
	ent, ok := c.entries[key]
	c.mu.Unlock()
	if ok && ent.restore(a) {
		c.hits.Add(1)
		if c.sink != nil {
			c.sink.Emit(obs.Event{Type: obs.CacheHit})
		}
		return ent.obj, nil
	}
	c.misses.Add(1)
	if c.sink != nil {
		c.sink.Emit(obs.Event{Type: obs.CacheMiss})
	}
	obj, err := c.Inner.Evaluate(a)
	if err != nil {
		return 0, err
	}
	ent = cacheEntry{obj: obj, rails: make([]cachedRail, len(a.Rails))}
	for i, r := range a.Rails {
		ent.rails[i] = cachedRail{hash: r.Hash(), timeSI: r.TimeSI}
	}
	c.mu.Lock()
	if len(c.entries) >= c.capacity {
		c.entries = make(map[uint64]cacheEntry)
		c.evictions.Add(1)
	}
	c.entries[key] = ent
	persist := c.persist
	c.mu.Unlock()
	if persist != nil {
		if perr := persist.Append(key, ent); perr != nil {
			// Best-effort persistence: a full disk or closed file must
			// not fail the evaluation or spam retries.
			c.mu.Lock()
			c.persist = nil
			c.mu.Unlock()
		}
	}
	return obj, nil
}

// Stats returns a snapshot of the cache counters.
func (c *CachedEvaluator) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Loads:     c.loads.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

// Reset drops all entries and zeroes the counters (used by the
// cold-vs-warm benchmarks).
func (c *CachedEvaluator) Reset() {
	c.mu.Lock()
	c.entries = make(map[uint64]cacheEntry)
	c.mu.Unlock()
	c.ResetStats()
}

// ResetStats zeroes the counters while keeping the cached entries, so
// warm-cache hit rates can be measured without the priming misses.
func (c *CachedEvaluator) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.loads.Store(0)
	c.evictions.Store(0)
}
