package core

import (
	"context"
	"testing"

	"sitam/internal/sischedule"
	"sitam/internal/soc"
)

// Differential suite for the constrained scheduling path: an SOC whose
// Constraints stanza is present but empty must optimize byte-identically
// to the plain SOC — same T_soc, same architecture dump, same schedule
// listing — across every fixture, width and worker count. The empty
// stanza compiles to a nil *sischedule.Constraints, so this pins the
// promise that constrained and unconstrained runs share one code path
// with zero behavioral drift for unconstrained input (the diffGolden
// values in differential_test.go pin the absolute numbers).

// withEmptyConstraints clones the SOC shallowly and attaches an empty
// constraint stanza.
func withEmptyConstraints(s *soc.SOC) *soc.SOC {
	cp := *s
	cp.Constraints = &soc.ConstraintSet{}
	return &cp
}

func TestEmptyConstraintsByteIdentical(t *testing.T) {
	for name, want := range diffGolden {
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "p93791" {
				t.Skip("skipping the largest fixture in -short mode")
			}
			s := soc.MustLoadBenchmark(name)
			groups := diffGroups(t, s)
			m := sischedule.DefaultModel()
			cs := withEmptyConstraints(s)
			for _, w := range diffWidths {
				plain, err := TAMOptimization(s, w, groups, m)
				if err != nil {
					t.Fatalf("W=%d plain: %v", w, err)
				}
				if got := plain.Breakdown.TimeSOC; got != want.tsoc[w] {
					t.Errorf("W=%d plain T_soc = %d, want %d (engine drifted)", w, got, want.tsoc[w])
				}
				archDump := plain.Architecture.String()
				schedDump := plain.Schedule.String()
				for _, workers := range []int{1, 2, 8} {
					res, err := TAMOptimizationWith(context.Background(), cs, w, groups, m,
						ParallelConfig{Workers: workers})
					if err != nil {
						t.Fatalf("W=%d workers=%d: %v", w, workers, err)
					}
					if res.Breakdown != plain.Breakdown {
						t.Errorf("W=%d workers=%d: breakdown %+v, plain %+v",
							w, workers, res.Breakdown, plain.Breakdown)
					}
					if got := res.Architecture.String(); got != archDump {
						t.Errorf("W=%d workers=%d: architecture differs under empty constraints\nconstrained:\n%s\nplain:\n%s",
							w, workers, got, archDump)
					}
					if got := res.Schedule.String(); got != schedDump {
						t.Errorf("W=%d workers=%d: schedule differs under empty constraints\nconstrained:\n%s\nplain:\n%s",
							w, workers, got, schedDump)
					}
				}
			}
		})
	}
}

// TestNoOpConstraintsSameResult drives the other side of the coin: a
// NON-empty constraint set that cannot bind (budget far above any
// group's power) exercises the cons != nil scheduling path end to end
// and must still reproduce the unconstrained result exactly.
func TestNoOpConstraintsSameResult(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	groups := diffGroups(t, s)
	m := sischedule.DefaultModel()
	cp := *s
	cp.Constraints = &soc.ConstraintSet{PowerBudget: 1 << 40}
	for _, w := range []int{16, 64} {
		plain, err := TAMOptimization(s, w, groups, m)
		if err != nil {
			t.Fatalf("W=%d plain: %v", w, err)
		}
		capped, err := TAMOptimization(&cp, w, groups, m)
		if err != nil {
			t.Fatalf("W=%d capped: %v", w, err)
		}
		if capped.Breakdown != plain.Breakdown {
			t.Errorf("W=%d: non-binding budget changed the breakdown: %+v vs %+v",
				w, capped.Breakdown, plain.Breakdown)
		}
		if capped.Architecture.String() != plain.Architecture.String() {
			t.Errorf("W=%d: non-binding budget changed the architecture", w)
		}
		if capped.Schedule.String() != plain.Schedule.String() {
			t.Errorf("W=%d: non-binding budget changed the schedule", w)
		}
	}
}
