package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sitam/internal/sischedule"
	"sitam/internal/tam"
	"sitam/internal/wrapper"
)

// freshRails builds the trivial valid architecture for smallSOC: one
// rail per core, width w each.
func freshRails(w int) *tam.Architecture {
	s := smallSOC()
	tt, err := wrapper.NewTimeTable(s, 16)
	if err != nil {
		panic(err)
	}
	a := tam.New(s, tt)
	for _, c := range s.Cores() {
		a.Rails = append(a.Rails, &tam.Rail{Cores: []int{c.ID}, Width: w})
	}
	return a
}

// mutateArch applies one random validity-preserving perturbation
// through the tam mutation API: moving a core, widening or narrowing a
// rail, or carving a core out into a new single-wire rail.
func mutateArch(a *tam.Architecture, rng *rand.Rand) {
	switch rng.Intn(4) {
	case 0: // move a core between rails
		from := rng.Intn(len(a.Rails))
		if len(a.Rails[from].Cores) < 2 || len(a.Rails) < 2 {
			return
		}
		id := a.Rails[from].Cores[rng.Intn(len(a.Rails[from].Cores))]
		to := rng.Intn(len(a.Rails) - 1)
		if to >= from {
			to++
		}
		a.MoveCore(from, to, id)
	case 1: // widen (within the width range the time table covers)
		if i := rng.Intn(len(a.Rails)); a.Rails[i].Width < 12 {
			a.SetWidth(i, a.Rails[i].Width+1)
		}
	case 2: // narrow
		i := rng.Intn(len(a.Rails))
		if a.Rails[i].Width > 1 {
			a.SetWidth(i, a.Rails[i].Width-1)
		}
	case 3: // carve a core into a new rail, keeping the source width
		from := rng.Intn(len(a.Rails))
		if len(a.Rails[from].Cores) < 2 {
			return
		}
		id := a.Rails[from].Cores[rng.Intn(len(a.Rails[from].Cores))]
		a.CarveCore(from, id)
		a.SetWidth(from, a.Rails[from].Width+1) // undo CarveCore's wire shrink
	}
}

// checkCachedEqualsFresh evaluates a with both the cached and a fresh
// evaluator and requires identical objectives and identical per-rail
// TimeIn/TimeSI bookkeeping (the side effects a cache hit restores).
func checkCachedEqualsFresh(t *testing.T, cached *CachedEvaluator, fresh Evaluator, a *tam.Architecture) {
	t.Helper()
	b := a.Clone()
	gotObj, gotErr := cached.Evaluate(a)
	wantObj, wantErr := fresh.Evaluate(b)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("cached err = %v, fresh err = %v", gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if gotObj != wantObj {
		t.Fatalf("cached obj = %d, fresh obj = %d\narch:\n%s", gotObj, wantObj, a)
	}
	for i := range a.Rails {
		if a.Rails[i].TimeIn != b.Rails[i].TimeIn || a.Rails[i].TimeSI != b.Rails[i].TimeSI {
			t.Fatalf("rail %d bookkeeping: cached (in=%d, si=%d), fresh (in=%d, si=%d)",
				i, a.Rails[i].TimeIn, a.Rails[i].TimeSI, b.Rails[i].TimeIn, b.Rails[i].TimeSI)
		}
	}
}

// FuzzEvalCache drives a randomized walk over architecture space and
// checks after every step that the memoized evaluator is extensionally
// equal to a fresh one — same objective, same restored bookkeeping —
// under a deliberately tiny capacity so epoch evictions are exercised
// constantly.
func FuzzEvalCache(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(2))
	f.Add(int64(42), uint8(60), uint8(1))
	f.Add(int64(-7), uint8(100), uint8(8))
	f.Add(int64(999), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, steps, capSel uint8) {
		groups := smallGroups()
		m := sischedule.DefaultModel()
		capacity := []int{1, 4, 64, DefaultCacheSize}[int(capSel)%4]
		cached := NewCachedEvaluator(&SIEvaluator{Groups: groups, Model: m}, capacity)
		fresh := &SIEvaluator{Groups: groups, Model: m}
		rng := rand.New(rand.NewSource(seed))
		a := freshRails(1 + rng.Intn(4))
		for i := 0; i < int(steps); i++ {
			mutateArch(a, rng)
			// Evaluate twice: the second call must hit (same epoch,
			// capacity permitting) and still agree with fresh.
			checkCachedEqualsFresh(t, cached, fresh, a)
			checkCachedEqualsFresh(t, cached, fresh, a)
		}
		st := cached.Stats()
		if st.Entries > capacity {
			t.Fatalf("cache holds %d entries, capacity %d", st.Entries, capacity)
		}
		// Each loop iteration issues exactly two cached lookups.
		if st.Hits+st.Misses != 2*int64(steps) {
			t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 2*int64(steps))
		}
	})
}

// TestCachePermutationInvariance pins the keying argument: permuting
// the rail order of an architecture must hit the same cache entry and
// restore the right per-rail bookkeeping for the permuted order.
func TestCachePermutationInvariance(t *testing.T) {
	groups := smallGroups()
	m := sischedule.DefaultModel()
	cached := NewCachedEvaluator(&SIEvaluator{Groups: groups, Model: m}, 0)
	fresh := &SIEvaluator{Groups: groups, Model: m}
	a := freshRails(2)
	a.SetWidth(0, 3) // make rails distinguishable
	checkCachedEqualsFresh(t, cached, fresh, a)
	perm := a.Clone()
	r := perm.Rails
	perm.Rails = []*tam.Rail{r[3], r[1], r[4], r[0], r[2]}
	for i := range perm.Rails {
		// Zero the bookkeeping and mark the rails stale so the hit must
		// rebuild both fields (TimeIn via the keying refresh, TimeSI
		// from the entry).
		perm.Rails[i].TimeIn, perm.Rails[i].TimeSI = 0, 0
		perm.MarkDirty(i)
	}
	checkCachedEqualsFresh(t, cached, fresh, perm)
	st := cached.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("permuted rail order: hits=%d misses=%d, want 1 hit 1 miss", st.Hits, st.Misses)
	}
}

// TestCacheEviction checks the epoch-flush policy: at capacity the map
// is dropped, the eviction counter advances, and results stay correct.
func TestCacheEviction(t *testing.T) {
	cached := NewCachedEvaluator(InTestEvaluator{}, 2)
	fresh := InTestEvaluator{}
	for w := 1; w <= 6; w++ {
		checkCachedEqualsFresh(t, cached, fresh, freshRails(w))
	}
	st := cached.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions after 6 distinct compositions at capacity 2: %+v", st)
	}
	if st.Entries > 2 {
		t.Errorf("entries %d exceed capacity 2", st.Entries)
	}
	cached.Reset()
	st = cached.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 || st.Entries != 0 {
		t.Errorf("Reset left counters %+v", st)
	}
}

// flakyEvaluator fails its first n calls, then delegates.
type flakyEvaluator struct {
	fails atomic.Int64
	inner Evaluator
}

func (f *flakyEvaluator) Evaluate(a *tam.Architecture) (int64, error) {
	if f.fails.Add(-1) >= 0 {
		return 0, errors.New("transient evaluator failure")
	}
	return f.inner.Evaluate(a)
}

// TestCacheDoesNotCacheErrors: a failed evaluation must not poison the
// cache — the next lookup of the same composition re-evaluates.
func TestCacheDoesNotCacheErrors(t *testing.T) {
	fl := &flakyEvaluator{inner: InTestEvaluator{}}
	fl.fails.Store(1)
	cached := NewCachedEvaluator(fl, 0)
	a := freshRails(2)
	if _, err := cached.Evaluate(a); err == nil {
		t.Fatal("first Evaluate should fail")
	}
	obj, err := cached.Evaluate(a)
	if err != nil {
		t.Fatalf("second Evaluate: %v", err)
	}
	want, _ := InTestEvaluator{}.Evaluate(freshRails(2))
	if obj != want {
		t.Fatalf("obj = %d, want %d", obj, want)
	}
}

// atomicCountdown is a race-safe countdownCtx for parallel runs: Err
// flips to DeadlineExceeded after n polls from any goroutine.
type atomicCountdown struct {
	context.Context
	n atomic.Int64
}

func newAtomicCountdown(n int) *atomicCountdown {
	c := &atomicCountdown{Context: context.Background()}
	c.n.Store(int64(n))
	return c
}

func (c *atomicCountdown) Err() error {
	if c.n.Add(-1) < 0 {
		return context.DeadlineExceeded
	}
	return nil
}

// TestParallelCancellationNoLeak cancels parallel optimizations at
// many points mid-flight and checks the anytime contract holds and no
// worker goroutines outlive the call.
func TestParallelCancellationNoLeak(t *testing.T) {
	s := smallSOC()
	groups := smallGroups()
	m := sischedule.DefaultModel()
	before := runtime.NumGoroutine()
	for n := 0; n < 120; n += 7 {
		ctx := newAtomicCountdown(n)
		res, err := TAMOptimizationWith(ctx, s, 12, groups, m, ParallelConfig{Workers: 8})
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("n=%d: unexpected error %v", n, err)
			}
			continue
		}
		if res.Architecture == nil {
			t.Fatalf("n=%d: nil architecture with nil error", n)
		}
		if err := res.Architecture.Validate(); err != nil {
			t.Fatalf("n=%d: invalid partial architecture: %v", n, err)
		}
	}
	// Workers are scoped to each batch; give the scheduler a moment and
	// require the goroutine count to settle back.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, g)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelForPanicPropagation: a panic in any candidate must
// surface on the calling goroutine — and the lowest candidate index
// wins, matching the serial panic surface.
func TestParallelForPanicPropagation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if r != "boom-3" {
			t.Fatalf("propagated %v, want the lowest-index panic boom-3", r)
		}
	}()
	parallelFor(4, 16, func(_, i int) {
		if i >= 3 && i%2 == 1 {
			panic("boom-" + string(rune('0'+i%10)))
		}
	})
}
