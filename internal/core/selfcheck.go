package core

import (
	"sitam/internal/sischedule"
	"sitam/internal/tam"
)

// selfCheckSchedule revalidates an engine-assembled schedule from
// first principles: structural invariants (Schedule.Validate), the
// WOC-based power sweep (ValidatePower, when group powers are plain
// WOC sums), and the compiled constraint set's own power, precedence
// and exclusion checks. It is wired into Engine.Finish behind the
// scheduleSelfCheck flag, which race-detector builds turn on — so
// every optimization run in a `go test -race` CI pass validates its
// final schedule, at zero cost to production binaries.
func selfCheckSchedule(a *tam.Architecture, groups []*sischedule.Group, sched *sischedule.Schedule, cons *sischedule.Constraints) error {
	if err := sched.Validate(); err != nil {
		return err
	}
	if cons.WOCPower() {
		var budget int64
		if cons != nil {
			budget = cons.PowerBudget
		}
		if err := sischedule.ValidatePower(a, sched, budget); err != nil {
			return err
		}
	}
	return cons.ValidateSchedule(groups, sched)
}
