package core

import (
	"context"
	"testing"

	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/wrapper"
)

// Differential harness for the incremental evaluation layer: the
// IncrementalSIEvaluator (dirty-rail InTest refresh + per-rail SI
// composition memo) must be byte-identical to the from-scratch
// SIEvaluator on every fixture, width and worker count, through the
// full pipeline, the ILS path with restarts, and partial deadline or
// budget exits. Both evaluators run with the architecture cache
// disabled so the comparison exercises the evaluators themselves.

func incrEngines(t *testing.T, s *soc.SOC, w int, groups []*sischedule.Group, m sischedule.Model, workers int) (scratch, incr *Engine) {
	t.Helper()
	se, _, err := NewParallelEngine(s, w, &SIEvaluator{Groups: groups, Model: m},
		ParallelConfig{Workers: workers, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ie, _, err := NewParallelEngine(s, w, NewIncrementalSIEvaluator(groups, m),
		ParallelConfig{Workers: workers, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	return se, ie
}

func TestIncrementalMatchesScratch(t *testing.T) {
	for name, want := range diffGolden {
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "p93791" {
				t.Skip("skipping the largest fixture in -short mode")
			}
			s := soc.MustLoadBenchmark(name)
			groups := diffGroups(t, s)
			m := sischedule.DefaultModel()
			for _, w := range diffWidths {
				scratch, _ := incrEngines(t, s, w, groups, m, 1)
				sArch, sObj, err := scratch.Optimize()
				if err != nil {
					t.Fatalf("W=%d scratch: %v", w, err)
				}
				if sObj != want.tsoc[w] {
					t.Errorf("W=%d scratch T_soc = %d, want %d (scratch evaluator drifted)", w, sObj, want.tsoc[w])
				}
				dump := sArch.String()
				for _, workers := range []int{1, 2, 8} {
					_, incr := incrEngines(t, s, w, groups, m, workers)
					iArch, iObj, err := incr.Optimize()
					if err != nil {
						t.Fatalf("W=%d workers=%d incremental: %v", w, workers, err)
					}
					if iObj != sObj {
						t.Errorf("W=%d workers=%d: incremental T_soc = %d, scratch = %d", w, workers, iObj, sObj)
					}
					if got := iArch.String(); got != dump {
						t.Errorf("W=%d workers=%d: incremental architecture differs from scratch\nincremental:\n%s\nscratch:\n%s",
							w, workers, got, dump)
					}
				}
			}
		})
	}
}

func TestIncrementalILSMatchesScratch(t *testing.T) {
	for name, want := range diffGolden {
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "p93791" {
				t.Skip("skipping the largest fixture in -short mode")
			}
			s := soc.MustLoadBenchmark(name)
			groups := diffGroups(t, s)
			m := sischedule.DefaultModel()
			scratch, _ := incrEngines(t, s, diffILSW, groups, m, 1)
			sArch, sObj, err := scratch.OptimizeILS(ilsKicks, ilsSeed)
			if err != nil {
				t.Fatal(err)
			}
			if sObj != want.ils {
				t.Errorf("scratch ILS objective = %d, want %d (scratch evaluator drifted)", sObj, want.ils)
			}
			dump := sArch.String()
			for _, workers := range []int{1, 2, 8} {
				_, incr := incrEngines(t, s, diffILSW, groups, m, workers)
				_, iObj, err := incr.OptimizeILSRestarts(ilsKicks, 2, ilsSeed)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				// Restart 0 reproduces the single ILS run; extra restarts
				// may only improve the objective.
				if iObj > sObj {
					t.Errorf("workers=%d: incremental ILS(2 restarts) objective = %d worse than scratch single run %d",
						workers, iObj, sObj)
				}
				sIArch, sIObj, err := incr.OptimizeILS(ilsKicks, ilsSeed)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if sIObj != sObj {
					t.Errorf("workers=%d: incremental ILS objective = %d, scratch = %d", workers, sIObj, sObj)
				}
				if got := sIArch.String(); got != dump {
					t.Errorf("workers=%d: incremental ILS architecture differs from scratch\nincremental:\n%s\nscratch:\n%s",
						workers, got, dump)
				}
			}
		})
	}
}

// TestIncrementalDeadlineMatchesScratch sweeps a deterministic
// countdown deadline across every interruption point of the pipeline
// and the ILS path: at each cut the incremental engine must surface
// the same partial objective, architecture, status and error as the
// from-scratch engine.
func TestIncrementalDeadlineMatchesScratch(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	groups := diffGroups(t, s)
	m := sischedule.DefaultModel()
	for n := 0; n <= 40; n += 4 {
		scratch, incr := incrEngines(t, s, diffILSW, groups, m, 1)
		sArch, sObj, sStatus, sErr := scratch.OptimizeCtx(newCountdown(n))
		iArch, iObj, iStatus, iErr := incr.OptimizeCtx(newCountdown(n))
		if (sErr == nil) != (iErr == nil) {
			t.Fatalf("countdown=%d: scratch err %v, incremental err %v", n, sErr, iErr)
		}
		if sErr != nil {
			continue
		}
		if iObj != sObj || iStatus != sStatus {
			t.Errorf("countdown=%d: incremental (obj %d, %+v) vs scratch (obj %d, %+v)", n, iObj, iStatus, sObj, sStatus)
		}
		if sArch != nil && iArch != nil && iArch.String() != sArch.String() {
			t.Errorf("countdown=%d: partial architectures differ", n)
		}

		scratch, incr = incrEngines(t, s, diffILSW, groups, m, 1)
		sArch, sObj, sStatus, sErr = scratch.OptimizeILSCtx(newCountdown(n), ilsKicks, ilsSeed)
		iArch, iObj, iStatus, iErr = incr.OptimizeILSCtx(newCountdown(n), ilsKicks, ilsSeed)
		if (sErr == nil) != (iErr == nil) {
			t.Fatalf("ILS countdown=%d: scratch err %v, incremental err %v", n, sErr, iErr)
		}
		if sErr != nil {
			continue
		}
		if iObj != sObj || iStatus != sStatus {
			t.Errorf("ILS countdown=%d: incremental (obj %d, %+v) vs scratch (obj %d, %+v)", n, iObj, iStatus, sObj, sStatus)
		}
		if sArch != nil && iArch != nil && iArch.String() != sArch.String() {
			t.Errorf("ILS countdown=%d: partial architectures differ", n)
		}
	}
}

// TestIncrementalBudgetMatchesScratch does the same for evaluation
// budget exhaustion (Engine.MaxEvals).
func TestIncrementalBudgetMatchesScratch(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	groups := diffGroups(t, s)
	m := sischedule.DefaultModel()
	for _, budget := range []int64{1, 5, 25, 100, 400} {
		scratch, incr := incrEngines(t, s, diffILSW, groups, m, 1)
		scratch.MaxEvals = budget
		incr.MaxEvals = budget
		sArch, sObj, sStatus, sErr := scratch.OptimizeCtx(context.Background())
		iArch, iObj, iStatus, iErr := incr.OptimizeCtx(context.Background())
		if (sErr == nil) != (iErr == nil) {
			t.Fatalf("budget=%d: scratch err %v, incremental err %v", budget, sErr, iErr)
		}
		if sErr != nil {
			continue
		}
		if iObj != sObj || iStatus != sStatus {
			t.Errorf("budget=%d: incremental (obj %d, %+v) vs scratch (obj %d, %+v)", budget, iObj, iStatus, sObj, sStatus)
		}
		if sArch != nil && iArch != nil && iArch.String() != sArch.String() {
			t.Errorf("budget=%d: partial architectures differ", budget)
		}
	}
}

// TestIncrementalStatsAccount checks the recompute accounting: a
// full pipeline run must serve a substantial share of rail cost
// profiles from the composition memo, and the totals must be
// internally consistent.
func TestIncrementalStatsAccount(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	groups := diffGroups(t, s)
	m := sischedule.DefaultModel()
	eval := NewIncrementalSIEvaluator(groups, m)
	eng, _, err := NewParallelEngine(s, 32, eval, ParallelConfig{Workers: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Optimize(); err != nil {
		t.Fatal(err)
	}
	st := eval.Stats()
	if st.Evals == 0 {
		t.Fatal("no evaluations recorded")
	}
	if st.RailsMemoized == 0 {
		t.Error("no rail cost profile was served from the memo")
	}
	if st.RailsRecomputed == 0 {
		t.Error("no rail cost profile was ever computed")
	}
	if st.GroupsMemoized+st.GroupsRecomputed == 0 {
		t.Error("no group accounting recorded")
	}
	if memoShare := float64(st.RailsMemoized) / float64(st.RailsMemoized+st.RailsRecomputed); memoShare < 0.5 {
		t.Errorf("rail memo share %.1f%%, want >= 50%%", 100*memoShare)
	}
}

// FuzzIncrementalMutations drives a random mutation sequence through
// the tam mutation API and cross-checks, after every step, the
// incremental evaluator against a from-scratch evaluation of a fresh
// clone, the maintained composition hash against a rebuilt
// architecture's, and the cached InTestTime against a direct maximum.
func FuzzIncrementalMutations(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{3, 200, 7, 1, 0, 0, 2, 9, 9, 3, 1, 4})
	f.Add([]byte{1, 1, 1, 2, 2, 2, 0, 0, 0, 3, 3, 3, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := smallSOC()
		groups := smallGroups()
		m := sischedule.DefaultModel()
		const wmax = 8
		tt, err := wrapper.NewTimeTable(s, wmax)
		if err != nil {
			t.Fatal(err)
		}
		a := tam.New(s, tt)
		for _, c := range s.Cores() {
			a.AddRail([]int{c.ID}, 1)
		}
		incr := NewIncrementalSIEvaluator(groups, m)
		scratch := &SIEvaluator{Groups: groups, Model: m}

		check := func(step int) {
			got, err := incr.Evaluate(a)
			if err != nil {
				t.Fatalf("step %d: incremental: %v", step, err)
			}
			want, err := scratch.Evaluate(a.Clone())
			if err != nil {
				t.Fatalf("step %d: scratch: %v", step, err)
			}
			if got != want {
				t.Fatalf("step %d: incremental T_soc = %d, scratch = %d\n%s", step, got, want, a)
			}
			// The maintained hash must equal the hash of the same
			// composition built from nothing.
			fresh := tam.New(s, tt)
			for _, r := range a.Rails {
				fresh.AddRail(r.Cores, r.Width)
			}
			if a.Hash() != fresh.Hash() {
				t.Fatalf("step %d: maintained hash %#x != rebuilt hash %#x\n%s", step, a.Hash(), fresh.Hash(), a)
			}
			var mx int64
			for _, r := range a.Rails {
				if r.TimeIn > mx {
					mx = r.TimeIn
				}
			}
			if a.InTestTime() != mx {
				t.Fatalf("step %d: InTestTime %d != max rail TimeIn %d", step, a.InTestTime(), mx)
			}
		}

		check(-1)
		for i := 0; i+2 < len(data); i += 3 {
			op, x, y := data[i]%4, int(data[i+1]), int(data[i+2])
			switch op {
			case 0: // SetWidth
				ri := x % len(a.Rails)
				a.SetWidth(ri, 1+y%wmax)
			case 1: // MoveCore
				from := x % len(a.Rails)
				if len(a.Rails[from].Cores) < 2 {
					continue // keep rails non-empty
				}
				to := y % len(a.Rails)
				id := a.Rails[from].Cores[y%len(a.Rails[from].Cores)]
				a.MoveCore(from, to, id)
			case 2: // CarveCore
				from := x % len(a.Rails)
				r := a.Rails[from]
				if len(r.Cores) < 2 || r.Width < 2 {
					continue
				}
				a.CarveCore(from, r.Cores[y%len(r.Cores)])
			case 3: // MergeRails
				if len(a.Rails) < 2 {
					continue
				}
				dst := x % len(a.Rails)
				src := y % len(a.Rails)
				if dst == src {
					continue
				}
				w := a.Rails[dst].Width + a.Rails[src].Width
				if w > wmax {
					w = wmax
				}
				a.MergeRails(dst, src, w)
			}
			// Evaluate only every other mutation so the evaluator also
			// sees multi-mutation dirty batches.
			if i%2 == 0 {
				check(i)
			}
		}
		check(len(data))
	})
}
