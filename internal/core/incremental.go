package core

import (
	"sync/atomic"

	"sitam/internal/obs"
	"sitam/internal/sischedule"
	"sitam/internal/tam"
)

// IncrementalSIEvaluator scores architectures by the combined objective
// T_soc = T_soc_in + T_soc_si, like SIEvaluator, but as a delta
// computation: rail InTest times are refreshed only for dirty rails
// (tam dirty tracking), and the SI group times come from the planner's
// per-rail composition memo, so a group is recosted only when a rail it
// touches changed. Results are byte-identical to SIEvaluator — the
// differential suite pins this on every fixture, width and worker
// count.
//
// The evaluator is safe for concurrent use (the planner memo is
// shared). The optional sink receives one eval_incremental event per
// evaluation; the engine wires it only for single-worker runs, where
// the event order is deterministic.
type IncrementalSIEvaluator struct {
	Groups []*sischedule.Group
	Model  sischedule.Model

	planner *sischedule.Planner
	sink    obs.Sink

	evals            atomic.Int64
	dirtyRails       atomic.Int64
	railsRecomputed  atomic.Int64
	railsMemoized    atomic.Int64
	groupsRecomputed atomic.Int64
	groupsMemoized   atomic.Int64
}

// NewIncrementalSIEvaluator builds an incremental evaluator over the
// given groups and cost model.
func NewIncrementalSIEvaluator(groups []*sischedule.Group, m sischedule.Model) *IncrementalSIEvaluator {
	return NewIncrementalSIEvaluatorCons(groups, m, nil)
}

// NewIncrementalSIEvaluatorCons is NewIncrementalSIEvaluator under a
// compiled constraint set (nil = unconstrained): the planner packs
// groups under the same power/precedence/exclusion rules the final
// scheduler enforces, so the optimizer's objective and the reported
// schedule agree.
func NewIncrementalSIEvaluatorCons(groups []*sischedule.Group, m sischedule.Model, cons *sischedule.Constraints) *IncrementalSIEvaluator {
	return &IncrementalSIEvaluator{
		Groups:  groups,
		Model:   m,
		planner: sischedule.NewPlannerCons(groups, m, cons),
	}
}

// Evaluate implements Evaluator.
func (e *IncrementalSIEvaluator) Evaluate(a *tam.Architecture) (int64, error) {
	dirty := a.DirtyCount()
	si, st, err := e.planner.Cost(a)
	if err != nil {
		return 0, err
	}
	e.evals.Add(1)
	e.dirtyRails.Add(int64(dirty))
	e.railsRecomputed.Add(int64(st.RailsRecomputed))
	e.railsMemoized.Add(int64(st.RailsMemoized))
	e.groupsRecomputed.Add(int64(st.GroupsRecomputed))
	e.groupsMemoized.Add(int64(st.GroupsMemoized))
	if e.sink != nil {
		e.sink.Emit(obs.Event{
			Type: obs.EvalIncremental,
			N:    int64(dirty),
			Recomputed: st.GroupsRecomputed,
			Memoized:   st.GroupsMemoized,
		})
	}
	return a.InTestTime() + si, nil
}

// IncrementalStats is the cumulative recompute accounting of an
// IncrementalSIEvaluator.
type IncrementalStats struct {
	// Evals is the number of evaluations performed.
	Evals int64

	// DirtyRails is the total number of rails that were stale at
	// evaluation time (and therefore had TimeIn recomputed).
	DirtyRails int64

	// RailsRecomputed / RailsMemoized count per-rail SI cost profiles
	// computed fresh versus served from the composition memo.
	RailsRecomputed int64
	RailsMemoized   int64

	// GroupsRecomputed / GroupsMemoized count SI groups whose time was
	// reassembled through at least one recomputed rail versus entirely
	// from memoized profiles.
	GroupsRecomputed int64
	GroupsMemoized   int64
}

// Stats returns a snapshot of the evaluator's recompute accounting.
func (e *IncrementalSIEvaluator) Stats() IncrementalStats {
	return IncrementalStats{
		Evals:            e.evals.Load(),
		DirtyRails:       e.dirtyRails.Load(),
		RailsRecomputed:  e.railsRecomputed.Load(),
		RailsMemoized:    e.railsMemoized.Load(),
		GroupsRecomputed: e.groupsRecomputed.Load(),
		GroupsMemoized:   e.groupsMemoized.Load(),
	}
}
