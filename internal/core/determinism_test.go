package core

import (
	"testing"

	"sitam/internal/sischedule"
)

// TestOptimizeILSRestartsSameSeedIdenticalHash is the seeded-RNG audit
// regression: two same-seed restart runs must return structurally
// identical architectures (same Architecture.Hash), not merely equal
// objectives. A single global rand.* call anywhere in the restart
// fan-out — which runs restarts in parallel and reduces
// deterministically — would break this; the detrand analyzer enforces
// the same invariant statically.
func TestOptimizeILSRestartsSameSeedIdenticalHash(t *testing.T) {
	groups := smallGroups()
	run := func() (uint64, int64) {
		eng, err := NewEngine(smallSOC(), 6, &SIEvaluator{Groups: groups, Model: sischedule.DefaultModel()})
		if err != nil {
			t.Fatal(err)
		}
		arch, obj, err := eng.OptimizeILSRestarts(12, 4, 99)
		if err != nil {
			t.Fatal(err)
		}
		return arch.Hash(), obj
	}
	h1, o1 := run()
	h2, o2 := run()
	if h1 != h2 || o1 != o2 {
		t.Fatalf("same-seed restart runs diverged: hash %#x vs %#x, objective %d vs %d", h1, h2, o1, o2)
	}
}
