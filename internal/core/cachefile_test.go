package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Corruption-handling coverage for the persistent cache file. The
// contract under test: any damaged, foreign or stale file degrades to
// a cold start (or refuses to touch a non-cache file) — never to a
// wrong entry — and every complete record before a torn tail survives.

func testEntry(obj int64, railHashes ...uint64) cacheEntry {
	ent := cacheEntry{obj: obj}
	for i, h := range railHashes {
		ent.rails = append(ent.rails, cachedRail{hash: h, timeSI: obj*100 + int64(i)})
	}
	return ent
}

// buildCacheBytes renders a well-formed cache file image.
func buildCacheBytes(recs []struct {
	key uint64
	ent cacheEntry
}) []byte {
	buf := make([]byte, 0, cacheHeaderSize)
	buf = append(buf, cacheFileMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, cacheFileVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	for _, r := range recs {
		buf = appendCacheRecord(buf, r.key, r.ent)
	}
	return buf
}

func threeRecords() []struct {
	key uint64
	ent cacheEntry
} {
	return []struct {
		key uint64
		ent cacheEntry
	}{
		{key: 101, ent: testEntry(11, 0xaa, 0xbb)},
		{key: 202, ent: testEntry(22, 0xcc)},
		{key: 303, ent: testEntry(33, 0xdd, 0xee, 0xff)},
	}
}

func writeFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cache.sit")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCacheFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.sit")
	cf, err := OpenCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := threeRecords()
	for _, r := range want {
		if err := cf.Append(r.key, r.ent); err != nil {
			t.Fatal(err)
		}
	}
	if cf.Loaded() != 0 || cf.Len() != 3 {
		t.Fatalf("fresh file: loaded %d, len %d; want 0 and 3", cf.Loaded(), cf.Len())
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	cf2, err := OpenCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf2.Close()
	if cf2.Loaded() != 3 {
		t.Fatalf("reopen loaded %d entries, want 3", cf2.Loaded())
	}
	for _, r := range want {
		got, ok := cf2.entries[r.key]
		if !ok {
			t.Fatalf("key %d missing after reopen", r.key)
		}
		if got.obj != r.ent.obj || len(got.rails) != len(r.ent.rails) {
			t.Fatalf("key %d: entry %+v, want %+v", r.key, got, r.ent)
		}
		for i := range got.rails {
			if got.rails[i] != r.ent.rails[i] {
				t.Fatalf("key %d rail %d: %+v, want %+v", r.key, i, got.rails[i], r.ent.rails[i])
			}
		}
	}
}

// TestCacheFileTornTailEveryPrefix simulates a crash at every possible
// byte: each prefix of a valid file must open cleanly and yield
// exactly the complete records the prefix contains.
func TestCacheFileTornTailEveryPrefix(t *testing.T) {
	recs := threeRecords()
	full := buildCacheBytes(recs)
	// Byte offsets at which 0, 1, 2, 3 records are complete.
	bounds := []int{cacheHeaderSize}
	for _, r := range recs {
		bounds = append(bounds, bounds[len(bounds)-1]+len(appendCacheRecord(nil, r.key, r.ent)))
	}
	for cut := 0; cut <= len(full); cut++ {
		path := writeFile(t, full[:cut])
		cf, err := OpenCacheFile(path)
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		wantN := 0
		for _, b := range bounds[1:] {
			if cut >= b {
				wantN++
			}
		}
		if cf.Loaded() != wantN {
			t.Fatalf("cut=%d: loaded %d records, want %d", cut, cf.Loaded(), wantN)
		}
		for i := 0; i < wantN; i++ {
			if got, ok := cf.entries[recs[i].key]; !ok || got.obj != recs[i].ent.obj {
				t.Fatalf("cut=%d: record %d lost or wrong (%+v)", cut, i, got)
			}
		}
		// The repaired file must be appendable and stable.
		if err := cf.Append(999, testEntry(99, 0x9)); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		cf.Close()
		cf2, err := OpenCacheFile(path)
		if err != nil {
			t.Fatalf("cut=%d: reopen after repair: %v", cut, err)
		}
		if cf2.Loaded() != wantN+1 {
			t.Fatalf("cut=%d: reopen loaded %d, want %d", cut, cf2.Loaded(), wantN+1)
		}
		cf2.Close()
	}
}

// TestCacheFileBadChecksum flips one byte inside the middle record: the
// scan must keep everything before it and truncate the rest — a
// damaged record never surfaces as an entry.
func TestCacheFileBadChecksum(t *testing.T) {
	recs := threeRecords()
	data := buildCacheBytes(recs)
	rec1End := cacheHeaderSize + len(appendCacheRecord(nil, recs[0].key, recs[0].ent))
	data[rec1End+14] ^= 0x40 // inside record 2's obj field
	path := writeFile(t, data)
	cf, err := OpenCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if cf.Loaded() != 1 {
		t.Fatalf("loaded %d records after mid-file corruption, want 1", cf.Loaded())
	}
	if got := cf.entries[recs[0].key]; got.obj != recs[0].ent.obj {
		t.Fatalf("surviving record wrong: %+v", got)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(rec1End) {
		t.Fatalf("file not truncated to last good record: %d bytes, want %d", st.Size(), rec1End)
	}
}

// TestCacheFileWrongVersion: a future (or ancient) version cold-starts
// — the file is reinitialized empty rather than misread.
func TestCacheFileWrongVersion(t *testing.T) {
	data := buildCacheBytes(threeRecords())
	binary.LittleEndian.PutUint32(data[8:12], cacheFileVersion+7)
	path := writeFile(t, data)
	cf, err := OpenCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Loaded() != 0 {
		t.Fatalf("wrong-version file yielded %d records, want cold start", cf.Loaded())
	}
	if err := cf.Append(7, testEntry(70, 0x7)); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	cf2, err := OpenCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf2.Close()
	if cf2.Loaded() != 1 {
		t.Fatalf("reinitialized file reopened with %d records, want 1", cf2.Loaded())
	}
}

// TestCacheFileForeign: a file that is not a sitam cache errors out and
// is left byte-identical — Open must never clobber foreign data.
func TestCacheFileForeign(t *testing.T) {
	for _, data := range [][]byte{
		[]byte("definitely not a cache file, but longer than a header"),
		[]byte("XYZ"), // shorter than the magic
	} {
		path := writeFile(t, data)
		if _, err := OpenCacheFile(path); err == nil {
			t.Fatalf("foreign file %q opened without error", data[:3])
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(after, data) {
			t.Fatalf("foreign file modified: %q -> %q", data, after)
		}
	}
}

// TestCacheFileTornHeader: a crash during initialization leaves a bare
// magic prefix; that is our own file and must cold-start, not error.
func TestCacheFileTornHeader(t *testing.T) {
	for _, n := range []int{1, 4, 8, 12} {
		full := buildCacheBytes(nil)
		path := writeFile(t, full[:n])
		cf, err := OpenCacheFile(path)
		if err != nil {
			t.Fatalf("torn header of %d bytes: %v", n, err)
		}
		if cf.Loaded() != 0 {
			t.Fatalf("torn header yielded %d records", cf.Loaded())
		}
		cf.Close()
	}
}

// TestCacheFileCompaction: duplicate records (a key re-stored with new
// contents) are folded on open once they reach a quarter of the file,
// and the newest record wins.
func TestCacheFileCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.sit")
	cf, err := OpenCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(1); v <= 4; v++ {
		if err := cf.Append(50, testEntry(v, uint64(v))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf.Append(60, testEntry(600, 0x60)); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	grown, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	cf2, err := OpenCacheFile(path) // 5 records, 3 dupes -> compacts
	if err != nil {
		t.Fatal(err)
	}
	defer cf2.Close()
	if cf2.Loaded() != 2 {
		t.Fatalf("loaded %d distinct entries, want 2", cf2.Loaded())
	}
	if got := cf2.entries[50]; got.obj != 4 {
		t.Fatalf("key 50 resolved to obj %d, want the newest record 4", got.obj)
	}
	shrunk, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Size() >= grown.Size() {
		t.Fatalf("compaction did not shrink the file: %d -> %d bytes", grown.Size(), shrunk.Size())
	}
}

// TestCacheFileAppendDedup: re-storing a byte-identical entry (the
// common re-miss after an epoch eviction) must not grow the file.
func TestCacheFileAppendDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.sit")
	cf, err := OpenCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	ent := testEntry(5, 0x5, 0x55)
	if err := cf.Append(1, ent); err != nil {
		t.Fatal(err)
	}
	st1, _ := os.Stat(path)
	for i := 0; i < 10; i++ {
		if err := cf.Append(1, ent); err != nil {
			t.Fatal(err)
		}
	}
	st2, _ := os.Stat(path)
	if st1.Size() != st2.Size() {
		t.Fatalf("identical re-stores grew the file %d -> %d bytes", st1.Size(), st2.Size())
	}
}

// TestCachePersistentWarmRestart is the end-to-end attribution test: a
// second process seeded from the cache file answers a repeated sweep
// entirely from loads — counted as hits at lookup time, with Loads
// kept separate so the warm start is visible — and never calls the
// inner evaluator.
func TestCachePersistentWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.sit")
	fresh := InTestEvaluator{}

	// "Process 1": cold run over five compositions.
	cf1, err := OpenCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCachedEvaluator(InTestEvaluator{}, 0)
	c1.AttachPersistent(cf1)
	for w := 1; w <= 5; w++ {
		checkCachedEqualsFresh(t, c1, fresh, freshRails(w))
	}
	st := c1.Stats()
	if st.Loads != 0 || st.Misses != 5 || st.Hits != 0 {
		t.Fatalf("cold run stats %+v, want 5 misses only", st)
	}
	if err := cf1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Process 2": restart, reattach, repeat the sweep.
	cf2, err := OpenCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf2.Close()
	if cf2.Loaded() != 5 {
		t.Fatalf("restart loaded %d entries, want 5", cf2.Loaded())
	}
	c2 := NewCachedEvaluator(InTestEvaluator{}, 0)
	c2.AttachPersistent(cf2)
	st = c2.Stats()
	if st.Loads != 5 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("post-attach stats %+v: loads must be 5 and NOT count as hits", st)
	}
	for w := 1; w <= 5; w++ {
		checkCachedEqualsFresh(t, c2, fresh, freshRails(w))
	}
	st = c2.Stats()
	if st.Hits != 5 || st.Misses != 0 {
		t.Fatalf("warm sweep stats %+v, want 5 hits 0 misses (hit rate %.0f%% < 90%%)",
			st, st.HitRate()*100)
	}
	if st.Loads != 5 {
		t.Fatalf("warm sweep changed Loads to %d", st.Loads)
	}
}

// TestCacheAppendFailureDegrades: once the file is closed under the
// evaluator, persistence detaches silently and evaluation carries on.
func TestCacheAppendFailureDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.sit")
	cf, err := OpenCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCachedEvaluator(InTestEvaluator{}, 0)
	c.AttachPersistent(cf)
	cf.Close()
	for w := 1; w <= 3; w++ {
		checkCachedEqualsFresh(t, c, InTestEvaluator{}, freshRails(w))
	}
	if c.persist != nil {
		t.Fatal("append failure did not detach the persistent file")
	}
	if st := c.Stats(); st.Misses != 3 {
		t.Fatalf("stats %+v, want 3 misses", st)
	}
}

// FuzzCacheFileFormat throws arbitrary bytes at OpenCacheFile: it must
// never panic, never load a record that fails its checksum, and a file
// it accepts must stay usable (append + reopen round-trips).
func FuzzCacheFileFormat(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(cacheFileMagic))
	f.Add(buildCacheBytes(nil))
	full := buildCacheBytes(threeRecords())
	f.Add(full)
	f.Add(full[:len(full)-5])
	mut := append([]byte(nil), full...)
	mut[cacheHeaderSize+9] ^= 0x80
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "cache.sit")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		cf, err := OpenCacheFile(path)
		if err != nil {
			if errors.Is(err, ErrCacheLocked) {
				t.Fatal("fresh file reported as locked")
			}
			return // rejected foreign/corrupt input: fine
		}
		loaded := cf.Loaded()
		if err := cf.Append(0xfeedface, testEntry(-9, 0x1, 0x2)); err != nil {
			t.Fatalf("append to accepted file: %v", err)
		}
		if err := cf.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		cf2, err := OpenCacheFile(path)
		if err != nil {
			t.Fatalf("reopen of accepted file: %v", err)
		}
		defer cf2.Close()
		if cf2.Loaded() < loaded {
			t.Fatalf("reopen lost entries: %d -> %d", loaded, cf2.Loaded())
		}
		if got, ok := cf2.entries[0xfeedface]; !ok || got.obj != -9 {
			t.Fatalf("appended entry lost or wrong after reopen: %+v ok=%v", got, ok)
		}
	})
}
