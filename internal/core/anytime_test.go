package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
)

// countdownCtx is a deterministic stand-in for a deadline: Err starts
// returning context.DeadlineExceeded after n calls. Every interruption
// point in the optimization stack polls ctx.Err() directly (rather
// than selecting on Done), so this fake can drive cancellation to any
// exact point of the search without wall-clock flakiness.
type countdownCtx struct {
	context.Context
	n int
}

func (c *countdownCtx) Err() error {
	if c.n <= 0 {
		return context.DeadlineExceeded
	}
	c.n--
	return nil
}

func newCountdown(n int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), n: n}
}

// countingCtx never fires but counts how often Err is polled, to size
// countdown sweeps.
type countingCtx struct {
	context.Context
	calls int
}

func (c *countingCtx) Err() error {
	c.calls++
	return nil
}

func newSIEngine(t *testing.T, wmax int) *Engine {
	t.Helper()
	s := smallSOC()
	eng, err := NewEngine(s, wmax, &SIEvaluator{Groups: smallGroups(), Model: sischedule.DefaultModel()})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestOptimizeCtxPreCancelled(t *testing.T) {
	eng := newSIEngine(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, _, st, err := eng.OptimizeCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if a != nil || st.Partial {
		t.Fatalf("pre-cancelled run returned arch=%v status=%+v, want nothing", a, st)
	}
}

func TestOptimizeILSCtxPreCancelled(t *testing.T) {
	eng := newSIEngine(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, _, st, err := eng.OptimizeILSCtx(ctx, 5, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if a != nil || st.Partial {
		t.Fatalf("pre-cancelled run returned arch=%v status=%+v, want nothing", a, st)
	}
}

// TestOptimizeCtxCountdownSweep interrupts OptimizeCtx after every
// possible number of context polls and checks the anytime contract at
// each cut point: a context error only when nothing feasible existed
// yet, otherwise a valid partial architecture whose objective is never
// better than the full run's (the incumbent only ever improves).
func TestOptimizeCtxCountdownSweep(t *testing.T) {
	for _, wmax := range []int{3, 8} { // 3 exercises merge-down, 8 free-wire distribution
		eng := newSIEngine(t, wmax)
		counter := &countingCtx{Context: context.Background()}
		fullA, fullObj, st, err := eng.OptimizeCtx(counter)
		if err != nil || st.Partial {
			t.Fatalf("wmax=%d: full run failed: %v %+v", wmax, err, st)
		}
		if err := fullA.Validate(); err != nil {
			t.Fatalf("wmax=%d: full-run architecture invalid: %v", wmax, err)
		}

		sawPartial, sawComplete := false, false
		for n := 0; n <= counter.calls+1; n++ {
			a, obj, st, err := eng.OptimizeCtx(newCountdown(n))
			switch {
			case err != nil:
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("wmax=%d n=%d: unexpected error %v", wmax, n, err)
				}
				if a != nil {
					t.Fatalf("wmax=%d n=%d: error with non-nil architecture", wmax, n)
				}
			case st.Partial:
				sawPartial = true
				if st.Reason == "" {
					t.Fatalf("wmax=%d n=%d: partial result without a reason", wmax, n)
				}
				if err := a.Validate(); err != nil {
					t.Fatalf("wmax=%d n=%d: partial architecture invalid: %v", wmax, n, err)
				}
				if a.TotalWidth() > wmax {
					t.Fatalf("wmax=%d n=%d: partial width %d exceeds budget", wmax, n, a.TotalWidth())
				}
				if obj < fullObj {
					t.Fatalf("wmax=%d n=%d: partial obj %d beats full-run obj %d", wmax, n, obj, fullObj)
				}
				// The returned objective must describe the returned
				// architecture — catches incumbents corrupted by an
				// interrupted probe.
				if again, err := eng.Eval.Evaluate(a); err != nil || again != obj {
					t.Fatalf("wmax=%d n=%d: reported obj %d, re-evaluated %d (err %v)", wmax, n, obj, again, err)
				}
			default:
				sawComplete = true
				if obj != fullObj {
					t.Fatalf("wmax=%d n=%d: complete run obj %d != %d", wmax, n, obj, fullObj)
				}
			}
		}
		if !sawPartial || !sawComplete {
			t.Fatalf("wmax=%d: sweep saw partial=%v complete=%v, want both", wmax, sawPartial, sawComplete)
		}
	}
}

// TestOptimizeILSCtxCountdownSweep does the same sweep over the ILS
// wrapper: a partial result is never better than the full ILS run and
// never worse than what a plain greedy run achieves at that cut.
func TestOptimizeILSCtxCountdownSweep(t *testing.T) {
	const wmax, kicks, seed = 8, 4, 1
	eng := newSIEngine(t, wmax)
	counter := &countingCtx{Context: context.Background()}
	_, fullObj, st, err := eng.OptimizeILSCtx(counter, kicks, seed)
	if err != nil || st.Partial {
		t.Fatalf("full ILS run failed: %v %+v", err, st)
	}

	sawPartial := false
	for n := 0; n <= counter.calls+1; n += 3 {
		a, obj, st, err := eng.OptimizeILSCtx(newCountdown(n), kicks, seed)
		switch {
		case err != nil:
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("n=%d: unexpected error %v", n, err)
			}
		case st.Partial:
			sawPartial = true
			if err := a.Validate(); err != nil {
				t.Fatalf("n=%d: partial architecture invalid: %v", n, err)
			}
			if obj < fullObj {
				t.Fatalf("n=%d: partial obj %d beats full-run obj %d", n, obj, fullObj)
			}
		default:
			if obj != fullObj {
				t.Fatalf("n=%d: complete run obj %d != %d", n, obj, fullObj)
			}
		}
	}
	if !sawPartial {
		t.Fatal("sweep never produced a partial result")
	}
}

// TestOptimizeILSCtxDeadlineP93791 is the end-to-end acceptance test:
// a real wall-clock deadline expiring mid-search on the p93791
// benchmark yields a valid, schedulable architecture flagged Partial
// with no error.
func TestOptimizeILSCtxDeadlineP93791(t *testing.T) {
	s := soc.MustLoadBenchmark("p93791")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := BuildGroups(s, patterns, GroupingOptions{Parts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wmax above the core count: the start solution is feasible from
	// construction, so any mid-run interruption must degrade
	// gracefully rather than error. A kick budget this large would run
	// for minutes; the deadline cuts it short.
	wmax := len(s.Cores()) + 8
	eng, err := NewEngine(s, wmax, &SIEvaluator{Groups: gr.Groups, Model: sischedule.DefaultModel()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	a, obj, st, err := eng.OptimizeILSCtx(ctx, 100000, 1)
	if err != nil {
		t.Fatalf("deadline run errored: %v", err)
	}
	if !st.Partial {
		t.Fatalf("deadline run not flagged partial (obj %d)", obj)
	}
	if st.Reason == "" {
		t.Fatal("partial result without a reason")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("partial architecture invalid: %v", err)
	}
	if a.TotalWidth() > wmax {
		t.Fatalf("partial width %d exceeds budget %d", a.TotalWidth(), wmax)
	}
	// The partial architecture must be schedulable: the combined
	// objective recomputes Algorithm 1 end to end.
	if again, err := eng.Eval.Evaluate(a); err != nil || again != obj {
		t.Fatalf("reported obj %d, re-evaluated %d (err %v)", obj, again, err)
	}
}
