package core

import (
	"context"
	"strings"
	"testing"

	"sitam/internal/obs"
	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
)

// Differential harness for the observability layer: traces of the same
// run must be deterministic for a fixed seed and worker count —
// identical ordered traces when repeated, identical event multisets
// across worker counts once the single-worker-only cache events are
// filtered out — and the replayed convergence curve must end at exactly
// the returned Breakdown.TimeSOC.

const traceW = 16

// traceRun executes one traced optimization and returns the result and
// the collected events.
func traceRun(t *testing.T, s *soc.SOC, groups []*sischedule.Group, m sischedule.Model, workers int) (*Result, []obs.Event) {
	t.Helper()
	tr := obs.NewTracer()
	res, err := TAMOptimizationWith(context.Background(), s, traceW, groups, m,
		ParallelConfig{Workers: workers, Trace: tr})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	events := tr.Events()
	if err := obs.ValidateTrace(events); err != nil {
		t.Fatalf("workers=%d: invalid trace: %v", workers, err)
	}
	return res, events
}

// singleWorkerOnly reports whether ev is emitted only by single-worker
// runs (cache lookups and incremental evaluation accounting, whose
// split is timing-dependent under concurrency).
func singleWorkerOnly(ev *obs.Event) bool {
	return ev.Type == obs.CacheHit || ev.Type == obs.CacheMiss || ev.Type == obs.EvalIncremental
}

// canon strips the nondeterministic fields (sequence number, wall-clock
// duration) and optionally the single-worker-only events, so traces can
// be compared across runs and worker counts.
func canon(events []obs.Event, dropSingle bool) []obs.Event {
	out := make([]obs.Event, 0, len(events))
	for _, ev := range events {
		if dropSingle && singleWorkerOnly(&ev) {
			continue
		}
		ev.Seq = 0
		out = append(out, ev.Canonical())
	}
	return out
}

func multiset(events []obs.Event) map[obs.Event]int {
	m := make(map[obs.Event]int, len(events))
	for _, ev := range events {
		m[ev]++
	}
	return m
}

func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	for name := range diffGolden {
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "p93791" {
				t.Skip("skipping the largest fixture in -short mode")
			}
			s := soc.MustLoadBenchmark(name)
			groups := diffGroups(t, s)
			m := sischedule.DefaultModel()

			_, base := traceRun(t, s, groups, m, 1)
			_, again := traceRun(t, s, groups, m, 1)
			b, a := canon(base, false), canon(again, false)
			if len(b) != len(a) {
				t.Fatalf("repeated workers=1 traces differ in length: %d != %d", len(b), len(a))
			}
			for i := range b {
				if b[i] != a[i] {
					t.Fatalf("repeated workers=1 traces diverge at event %d: %+v != %+v", i, b[i], a[i])
				}
			}
			var cacheEvents, incEvents int
			for _, ev := range base {
				switch ev.Type {
				case obs.CacheHit, obs.CacheMiss:
					cacheEvents++
				case obs.EvalIncremental:
					incEvents++
				}
			}
			if cacheEvents == 0 {
				t.Error("workers=1 trace carries no cache events")
			}
			if incEvents == 0 {
				t.Error("workers=1 trace carries no eval_incremental events")
			}

			want := multiset(canon(base, true))
			for _, workers := range []int{2, 8} {
				_, events := traceRun(t, s, groups, m, workers)
				for _, ev := range events {
					if singleWorkerOnly(&ev) {
						t.Fatalf("workers=%d trace carries single-worker-only event %+v", workers, ev)
					}
				}
				got := multiset(canon(events, true))
				if len(got) != len(want) {
					t.Errorf("workers=%d: %d distinct events, workers=1 has %d", workers, len(got), len(want))
				}
				for ev, n := range want {
					if got[ev] != n {
						t.Errorf("workers=%d: event %+v seen %d times, want %d", workers, ev, got[ev], n)
					}
				}
			}
		})
	}
}

func TestTraceCurveEndsAtTimeSOC(t *testing.T) {
	for name := range diffGolden {
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "p93791" {
				t.Skip("skipping the largest fixture in -short mode")
			}
			s := soc.MustLoadBenchmark(name)
			groups := diffGroups(t, s)
			res, events := traceRun(t, s, groups, sischedule.DefaultModel(), 1)
			curve := obs.Curve(events)
			if len(curve) == 0 {
				t.Fatal("trace has no convergence curve")
			}
			if got := curve[len(curve)-1].Best; got != res.Breakdown.TimeSOC {
				t.Errorf("curve ends at %d, Breakdown.TimeSOC = %d", got, res.Breakdown.TimeSOC)
			}
			// The curve is a running minimum: strictly decreasing.
			for i := 1; i < len(curve); i++ {
				if curve[i].Best >= curve[i-1].Best {
					t.Errorf("curve point %d (%d) does not improve on %d", i, curve[i].Best, curve[i-1].Best)
				}
			}
		})
	}
}

func TestTraceILSRestartsDeterministic(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	groups := diffGroups(t, s)
	m := sischedule.DefaultModel()
	run := func(workers int) []obs.Event {
		t.Helper()
		tr := obs.NewTracer()
		eng, cache, err := NewParallelEngine(s, traceW, &SIEvaluator{Groups: groups, Model: m},
			ParallelConfig{Workers: workers, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		arch, st, err2 := func() (*Result, Status, error) {
			a, _, st, err := eng.OptimizeILSRestartsCtx(context.Background(), ilsKicks, 3, ilsSeed)
			if err != nil {
				return nil, st, err
			}
			res, err := eng.Finish(a, st, groups, m, cache)
			return res, st, err
		}()
		if err2 != nil {
			t.Fatalf("workers=%d: %v", workers, err2)
		}
		_ = arch
		_ = st
		events := tr.Events()
		if err := obs.ValidateTrace(events); err != nil {
			t.Fatalf("workers=%d: invalid trace: %v", workers, err)
		}
		return events
	}
	want := multiset(canon(run(1), true))
	got := multiset(canon(run(8), true))
	if len(got) != len(want) {
		t.Errorf("workers=8: %d distinct events, workers=1 has %d", len(got), len(want))
	}
	for ev, n := range want {
		if got[ev] != n {
			t.Errorf("workers=8: event %+v seen %d times, want %d", ev, got[ev], n)
		}
	}
}

func TestBudgetStopsWithCause(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	groups := diffGroups(t, s)
	m := sischedule.DefaultModel()
	tr := obs.NewTracer()
	res, err := TAMOptimizationWith(context.Background(), s, traceW, groups, m,
		ParallelConfig{Workers: 1, MaxEvals: 150, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("budget-capped run not partial")
	}
	if res.Cause != CauseBudget {
		t.Errorf("Cause = %v, want CauseBudget", res.Cause)
	}
	if !strings.Contains(res.Reason, "evaluation budget exhausted") {
		t.Errorf("Reason = %q", res.Reason)
	}
	var hit bool
	for _, ev := range tr.Events() {
		if ev.Type == obs.DeadlineHit && ev.Cause == "budget" {
			hit = true
		}
	}
	if !hit {
		t.Error("trace carries no deadline_hit event with cause budget")
	}
	if got := res.Metrics.Counter("evals"); got < 150 {
		t.Errorf("evals metric = %d, want >= 150", got)
	}

	// An ample budget must not trip.
	full, err := TAMOptimizationWith(context.Background(), s, traceW, groups, m,
		ParallelConfig{Workers: 1, MaxEvals: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial || full.Cause != CauseNone {
		t.Errorf("ample budget run partial: %v (%s)", full.Cause, full.Reason)
	}
}

func TestCauseOf(t *testing.T) {
	cases := []struct {
		err    error
		want   StopCause
		label  string
		reason string
	}{
		{nil, CauseNone, "", ""},
		{context.DeadlineExceeded, CauseDeadline, "deadline", "deadline exceeded"},
		{context.Canceled, CauseCancel, "interrupted", "cancelled"},
		{ErrBudgetExhausted, CauseBudget, "budget", "evaluation budget exhausted"},
	}
	for _, c := range cases {
		got := CauseOf(c.err)
		if got != c.want {
			t.Errorf("CauseOf(%v) = %v, want %v", c.err, got, c.want)
		}
		if got.Label() != c.label {
			t.Errorf("%v.Label() = %q, want %q", got, got.Label(), c.label)
		}
		if got.String() != c.reason {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), c.reason)
		}
	}
}

func TestResultMetricsSnapshot(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	groups := diffGroups(t, s)
	m := sischedule.DefaultModel()

	reg := obs.NewRegistry()
	res, err := TAMOptimizationWith(context.Background(), s, traceW, groups, m,
		ParallelConfig{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Metrics
	if snap == nil {
		t.Fatal("Result.Metrics is nil")
	}
	if snap.Counter("evals") <= 0 {
		t.Error("evals counter missing")
	}
	if snap.Counter("cache_hits")+snap.Counter("cache_misses") <= 0 {
		t.Error("cache counters missing")
	}
	if got := snap.Gauges["pool_workers"]; got != 2 {
		t.Errorf("pool_workers = %d, want 2", got)
	}
	if snap.Counter("pool_batches") <= 0 || snap.Counter("pool_candidates") <= 0 {
		t.Error("pool counters missing")
	}
	if snap.Counter("pool_busy_ns") <= 0 || snap.Counter("pool_wall_ns") <= 0 {
		t.Error("pool timing counters missing")
	}
	var phases int
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "phase_ns_") {
			phases++
		}
	}
	if phases < 4 {
		t.Errorf("%d phase duration histograms, want >= 4", phases)
	}

	// Without a registry the snapshot still carries the evaluation and
	// cache counters, so CLIs can report them unconditionally.
	bare, err := TAMOptimizationWith(context.Background(), s, traceW, groups, m,
		ParallelConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Metrics == nil || bare.Metrics.Counter("evals") <= 0 {
		t.Errorf("bare run metrics = %+v", bare.Metrics)
	}
	if bare.Metrics.Counter("cache_hits")+bare.Metrics.Counter("cache_misses") <= 0 {
		t.Error("bare run cache counters missing")
	}
}

func TestSIGroupScheduledEvents(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	groups := diffGroups(t, s)
	_, events := traceRun(t, s, groups, sischedule.DefaultModel(), 1)
	var slots int
	for _, ev := range events {
		if ev.Type == obs.SIGroupScheduled {
			slots++
			if ev.Group == "" || ev.Rails < 1 || ev.End < ev.Begin {
				t.Errorf("malformed slot event %+v", ev)
			}
		}
	}
	if slots == 0 {
		t.Error("trace carries no si_group_scheduled events")
	}
}

// BenchmarkNoopSinkOverhead guards the observability tax on the hot
// path: "off" runs the default configuration (nil sink, nil registry —
// the instrumentation folds to one branch per hook), "trace" and
// "metrics" enable the respective collector. The "off" numbers must
// stay within 2% of the pre-instrumentation baseline; compare "off"
// against "trace"/"metrics" to price the collectors themselves.
func BenchmarkNoopSinkOverhead(b *testing.B) {
	s := soc.MustLoadBenchmark("p34392")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: diffNr, Seed: diffSeed})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := BuildGroups(s, patterns, GroupingOptions{Parts: diffParts, Seed: diffSeed})
	if err != nil {
		b.Fatal(err)
	}
	m := sischedule.DefaultModel()
	run := func(b *testing.B, cfg func() ParallelConfig) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := TAMOptimizationWith(context.Background(), s, 32, gr.Groups, m, cfg()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, func() ParallelConfig { return ParallelConfig{Workers: 1} })
	})
	b.Run("trace", func(b *testing.B) {
		run(b, func() ParallelConfig { return ParallelConfig{Workers: 1, Trace: obs.NewTracer()} })
	})
	b.Run("metrics", func(b *testing.B) {
		run(b, func() ParallelConfig { return ParallelConfig{Workers: 1, Metrics: obs.NewRegistry()} })
	})
}
