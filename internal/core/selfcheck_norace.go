//go:build !race

package core

// scheduleSelfCheck gates the final-schedule revalidation in
// Engine.Finish. Off in normal builds; race-detector builds (CI runs
// the test suite under -race) flip it on via selfcheck_race.go.
const scheduleSelfCheck = false
