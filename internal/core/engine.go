package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"sitam/internal/obs"
	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/wrapper"
)

// Engine runs the TAM_Optimization procedure of Fig. 6 over a given SOC
// with a given objective.
type Engine struct {
	SOC   *soc.SOC
	Wmax  int
	Times *wrapper.TimeTable
	Eval  Evaluator

	// Par fans independent candidate evaluations across a bounded
	// worker pool. nil (the NewEngine default) evaluates serially;
	// either way the selected architectures are byte-identical — see
	// parallel.go. When Par is used with a concurrency-unsafe
	// Evaluator, wrap the evaluator or keep Workers at 1.
	Par *ParallelEvaluator

	// Trace receives the structured search-trace events of the run
	// (see internal/obs). nil — the default — disables tracing at the
	// cost of one branch per emission site. Candidate events are
	// emitted by the coordinating goroutine in candidate order, so the
	// trace is deterministic for a fixed seed at any worker count.
	Trace obs.Sink

	// Metrics receives the run's counters and phase-duration
	// histograms. nil disables metric collection.
	Metrics *obs.Registry

	// MaxEvals bounds the number of objective evaluations the run may
	// spend; 0 means unlimited. When the budget runs out the search
	// stops exactly like a cancelled context: the incumbent comes back
	// as a partial result with CauseBudget. With ILS restarts the
	// bound applies to each restart independently.
	MaxEvals int64

	// evals counts objective evaluations. A pointer so that the
	// shallow engine copies the ILS restart fan-out makes share one
	// total (each restart still counts into its own — see
	// OptimizeILSRestartsCtx).
	evals *atomic.Int64
}

// Phase names used by Status.Reason, the search trace and the
// phase-duration metrics.
const (
	phaseStartSol  = "start solution"
	phaseBottomUp  = "bottom-up merge"
	phaseTopDown   = "top-down merge"
	phaseSweep     = "remaining-rails sweep"
	phaseReshuffle = "core reshuffle"
	phaseILS       = "ILS"
	phaseILSLocal  = "ILS local search"
)

// Status reports how an anytime optimization run ended: a complete run
// has the zero Status, while a run cut short by context cancellation,
// deadline expiry or budget exhaustion that still produced a usable
// architecture has Partial set, Cause classifying the interruption and
// Reason describing where the run was interrupted.
type Status struct {
	Partial bool
	Reason  string
	Cause   StopCause
}

// statusOf builds the partial Status for an interruption during phase.
func statusOf(err error, phase string) Status {
	return Status{Partial: true, Reason: stopReason(err, phase), Cause: CauseOf(err)}
}

// NewEngine builds an engine, precomputing the per-core InTest time
// table up to Wmax.
func NewEngine(s *soc.SOC, wmax int, eval Evaluator) (*Engine, error) {
	if wmax < 1 {
		return nil, fmt.Errorf("core: Wmax must be >= 1, got %d", wmax)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tt, err := wrapper.NewTimeTable(s, wmax)
	if err != nil {
		return nil, err
	}
	return &Engine{SOC: s, Wmax: wmax, Times: tt, Eval: eval, evals: new(atomic.Int64)}, nil
}

// eval scores one candidate, counting the evaluation and enforcing the
// budget: once MaxEvals evaluations have been spent, every further
// call fails with ErrBudgetExhausted, which the optimization loops
// treat exactly like a done context.
func (e *Engine) eval(a *tam.Architecture) (int64, error) {
	if e.evals != nil {
		n := e.evals.Add(1)
		if e.MaxEvals > 0 && n > e.MaxEvals {
			return 0, ErrBudgetExhausted
		}
	}
	return e.Eval.Evaluate(a)
}

// evalCount returns the evaluations spent so far.
func (e *Engine) evalCount() int64 {
	if e.evals == nil {
		return 0
	}
	return e.evals.Load()
}

// phase opens a trace/metrics span for one optimization phase. The
// returned close function emits the matching PhaseEnd — wall-clock
// duration, evaluations spent inside the span, incumbent objective —
// and feeds the duration histogram. When both trace and metrics are
// off it is a no-op and takes no timestamps.
func (e *Engine) phase(name string) func(best int64) {
	if e.Trace == nil && e.Metrics == nil {
		return func(int64) {}
	}
	start := time.Now() //sitlint:allow detrand — feeds only PhaseEnd.DurNS and the duration histogram, never the objective
	n0 := e.evalCount()
	if e.Trace != nil {
		e.Trace.Emit(obs.Event{Type: obs.PhaseStart, Phase: name})
	}
	return func(best int64) {
		dur := int64(time.Since(start))
		if e.Trace != nil {
			e.Trace.Emit(obs.Event{
				Type: obs.PhaseEnd, Phase: name,
				Best: best, N: e.evalCount() - n0, DurNS: dur,
			})
		}
		e.Metrics.Histogram("phase_ns_" + strings.ReplaceAll(name, " ", "_")).Observe(dur)
	}
}

// stopEvent records an anytime interruption in the trace.
func (e *Engine) stopEvent(err error, phase string, kick int) {
	if e.Trace != nil {
		e.Trace.Emit(obs.Event{Type: obs.DeadlineHit, Phase: phase, Kick: kick, Cause: CauseOf(err).Label()})
	}
}

// emitCandidates reports one scored batch to the trace in candidate
// order. Emission happens on the coordinating goroutine after the
// batch completes, so the event stream is identical at any worker
// count.
func (e *Engine) emitCandidates(phase string, res []candResult) {
	if e.Trace == nil {
		return
	}
	for i := range res {
		e.Trace.Emit(obs.Event{Type: obs.CandidateEvaluated, Phase: phase, Cand: i, Obj: res[i].obj})
	}
}

// Optimize runs the full procedure: start solution, bottom-up merging,
// top-down merging, the remaining-rails sweep, and core reshuffling. It
// returns the best architecture found and its objective value.
func (e *Engine) Optimize() (*tam.Architecture, int64, error) {
	a, obj, _, err := e.OptimizeCtx(context.Background())
	return a, obj, err
}

// OptimizeCtx is Optimize as an anytime algorithm: the procedure checks
// ctx between candidate evaluations, and when the context is cancelled
// or its deadline expires mid-run (or the evaluation budget runs out)
// it returns the best architecture found so far with Status.Partial set
// and a nil error. The incumbent objective only improves as the run
// progresses, so a partial result is always a valid, schedulable
// architecture whose objective is at least the value a complete run
// would reach. A context that is already done before any feasible
// architecture exists yields the context's error.
func (e *Engine) OptimizeCtx(ctx context.Context) (*tam.Architecture, int64, Status, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, Status{}, err
	}
	end := e.phase(phaseStartSol)
	a, obj, err := e.startSolution(ctx)
	if err != nil {
		if isStop(err) && a != nil {
			// Interrupted while distributing free wires: the
			// architecture is feasible, just under-provisioned. The
			// re-score calls the evaluator directly — it spends no
			// fresh search effort, so it bypasses the budget.
			if o, eerr := e.Eval.Evaluate(a); eerr == nil {
				e.stopEvent(err, phaseStartSol, 0)
				end(o)
				return a, o, statusOf(err, phaseStartSol), nil
			}
		}
		return nil, 0, Status{}, err
	}
	end(obj)

	// fail folds a loop error into the anytime contract: interruptions
	// close the phase span and return the incumbent as a partial
	// result, hard errors propagate. a and obj are captured by
	// reference, so it always sees the current incumbent.
	fail := func(err error, phase string, end func(int64)) (*tam.Architecture, int64, Status, error) {
		if !isStop(err) {
			return nil, 0, Status{}, err
		}
		e.stopEvent(err, phase, 0)
		end(obj)
		return a, obj, statusOf(err, phase), nil
	}

	// Optimize bottom-up (Lines 17-23): repeatedly try to merge the
	// rail with the smallest utilized time.
	end = e.phase(phaseBottomUp)
	for improved := true; improved && len(a.Rails) > 1; {
		sortByTimeUsed(a)
		last := len(a.Rails) - 1
		a2, obj2, err := e.mergeTAMs(ctx, a, obj, last, phaseBottomUp)
		if err != nil {
			return fail(err, phaseBottomUp, end)
		}
		improved = obj2 < obj
		a, obj = a2, obj2
	}
	end(obj)

	// Optimize top-down (Lines 24-30): try to merge the rail with the
	// largest utilized time.
	end = e.phase(phaseTopDown)
	for improved := true; improved && len(a.Rails) > 1; {
		sortByTimeUsed(a)
		a2, obj2, err := e.mergeTAMs(ctx, a, obj, 0, phaseTopDown)
		if err != nil {
			return fail(err, phaseTopDown, end)
		}
		improved = obj2 < obj
		a, obj = a2, obj2
	}
	end(obj)

	// Sweep the remaining rails (Lines 31-36): keep trying the
	// largest-time rail not yet known to be unmergeable.
	end = e.phase(phaseSweep)
	skip := map[string]bool{}
	if len(a.Rails) > 0 {
		sortByTimeUsed(a)
		skip[a.Rails[0].Key()] = true // top-down loop just failed on it
	}
	for {
		sortByTimeUsed(a)
		pick := -1
		for i, r := range a.Rails {
			if !skip[r.Key()] {
				pick = i
				break
			}
		}
		if pick < 0 {
			break
		}
		a2, obj2, err := e.mergeTAMs(ctx, a, obj, pick, phaseSweep)
		if err != nil {
			return fail(err, phaseSweep, end)
		}
		if obj2 < obj {
			a, obj = a2, obj2
		} else {
			skip[a.Rails[pick].Key()] = true
		}
	}
	end(obj)

	// Core reshuffle (Line 37): move single cores off bottleneck rails.
	end = e.phase(phaseReshuffle)
	a2, obj2, err := e.coreReshuffle(ctx, a, obj, phaseReshuffle)
	if err != nil {
		return fail(err, phaseReshuffle, end)
	}
	end(obj2)
	return a2, obj2, Status{}, nil
}

// startSolution implements Lines 1-16 of Fig. 6: one single-wire rail
// per core, then merge down to Wmax rails or distribute leftover wires.
// It returns the architecture together with its evaluated objective.
//
// On interruption it returns the stop error; the returned architecture
// is non-nil only when it is feasible despite the interruption (total
// width within Wmax, every core assigned) — the objective is not
// meaningful in that case and the caller re-scores.
func (e *Engine) startSolution(ctx context.Context) (*tam.Architecture, int64, error) {
	a := tam.New(e.SOC, e.Times)
	for _, c := range e.SOC.Cores() {
		a.AddRail([]int{c.ID}, 1)
	}
	obj, err := e.eval(a)
	if err != nil {
		return nil, 0, err
	}

	if e.Wmax < len(a.Rails) {
		for len(a.Rails) > e.Wmax {
			if err := ctx.Err(); err != nil {
				// More rails than wires: not a feasible architecture.
				return nil, 0, err
			}
			sortByTimeUsed(a)
			// Merge rail Wmax (0-indexed: the first rail beyond the
			// budget) into whichever of the first Wmax rails minimizes
			// the objective. Start-solution rails all have width 1 and
			// stay width 1.
			victim := e.Wmax
			res, err := e.Par.mapCandidates(ctx, a, e.Wmax, func(cand *tam.Architecture, i int) (int64, int64, error) {
				cand.MergeRails(i, victim, 1)
				o, err := e.eval(cand)
				return o, 0, err
			})
			if err != nil {
				// Stop errors included: mid-merge-down the
				// architecture is not feasible yet.
				return nil, 0, err
			}
			e.emitCandidates(phaseStartSol, res)
			best := -1
			var bestObj int64
			for i, r := range res {
				if best < 0 || r.obj < bestObj {
					best, bestObj = i, r.obj
				}
			}
			a.MergeRails(best, victim, 1)
			if obj, err = e.eval(a); err != nil {
				return nil, 0, err
			}
		}
	} else if free := e.Wmax - len(a.Rails); free > 0 {
		if obj, err = e.distributeFreeWires(ctx, a, free, e.Par, e.Trace); err != nil {
			if isStop(err) {
				// a is feasible with some wires undistributed.
				return a, 0, err
			}
			return nil, 0, err
		}
	}
	return a, obj, nil
}

// distributeFreeWires implements the paper's distributeFreeWires: each
// free wire goes, one at a time, to the rail whose widening minimizes
// the objective — the bottleneck-rail criterion generalized to the
// combined objective. Ties keep the wire on the rail with the largest
// utilized time. It returns the objective of the final widened
// architecture. Context interruption is checked between wires, so a
// is always left in a consistent (if under-widened) state.
//
// The widening trials of one wire are independent and fan out on pe;
// callers already running inside a worker (the per-candidate calls in
// mergeTAMs) pass nil to stay serial and keep the pool bounded, and
// pass a nil sink so only the coordinator-level call traces.
func (e *Engine) distributeFreeWires(ctx context.Context, a *tam.Architecture, free int, pe *ParallelEvaluator, sink obs.Sink) (int64, error) {
	for ; free > 0; free-- {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		widen := make([]int, 0, len(a.Rails))
		for i := range a.Rails {
			if a.Rails[i].Width < e.Wmax {
				widen = append(widen, i)
			}
		}
		if len(widen) == 0 {
			break // every rail already at Wmax
		}
		res, err := pe.mapCandidates(ctx, a, len(widen), func(cand *tam.Architecture, i int) (int64, int64, error) {
			r := cand.Rails[widen[i]]
			cand.SetWidth(widen[i], r.Width+1)
			o, err := e.eval(cand)
			if err != nil {
				return 0, 0, err
			}
			return o, r.TimeUsed(), nil
		})
		if err != nil {
			return 0, err
		}
		if sink != nil {
			for i := range res {
				sink.Emit(obs.Event{Type: obs.CandidateEvaluated, Phase: phaseStartSol, Cand: i, Obj: res[i].obj})
			}
		}
		best := -1
		var bestObj, bestUsed int64
		for i, r := range res {
			if best < 0 || r.obj < bestObj || (r.obj == bestObj && r.aux > bestUsed) {
				best, bestObj, bestUsed = i, r.obj, r.aux
			}
		}
		a.SetWidth(widen[best], a.Rails[widen[best]].Width+1)
	}
	return e.eval(a)
}

// mergeTAMs implements the paper's mergeTAMs procedure: given the rail
// at index r1, enumerate every other rail and every merged width in
// [max(w1,wi), w1+wi], distributing leftover wires, and return the best
// resulting architecture if it beats the current objective; otherwise
// the original architecture. The context is checked before every
// candidate evaluation; an interruption aborts the enumeration and
// propagates the stop error, leaving the caller's incumbent intact.
// phase labels the batch's trace events.
func (e *Engine) mergeTAMs(ctx context.Context, a *tam.Architecture, curObj int64, r1 int, phase string) (*tam.Architecture, int64, error) {
	w1 := a.Rails[r1].Width
	type mergeSpec struct{ ri, w int }
	var specs []mergeSpec
	for ri := range a.Rails {
		if ri == r1 {
			continue
		}
		wi := a.Rails[ri].Width
		lo := w1
		if wi > lo {
			lo = wi
		}
		hi := w1 + wi
		if hi > e.Wmax {
			hi = e.Wmax
		}
		for w := lo; w <= hi; w++ {
			specs = append(specs, mergeSpec{ri, w})
		}
	}
	build := func(cand *tam.Architecture, i int) (int64, int64, error) {
		sp := specs[i]
		wi := cand.Rails[sp.ri].Width
		dst, src := sp.ri, r1
		if dst > src {
			// MergeRails removes src; keep indices valid by always
			// merging the higher index into the lower.
			dst, src = src, dst
		}
		cand.MergeRails(dst, src, sp.w)
		if leftover := w1 + wi - sp.w; leftover > 0 {
			if _, err := e.distributeFreeWires(ctx, cand, leftover, nil, nil); err != nil {
				return 0, 0, err
			}
		}
		o, err := e.eval(cand)
		return o, 0, err
	}
	res, err := e.Par.mapCandidates(ctx, a, len(specs), build)
	if err != nil {
		return nil, 0, err
	}
	e.emitCandidates(phase, res)
	best, bestObj := -1, curObj
	for i, r := range res {
		if r.obj < bestObj {
			best, bestObj = i, r.obj
		}
	}
	if best < 0 {
		if e.Trace != nil && len(specs) > 0 {
			e.Trace.Emit(obs.Event{Type: obs.MergeRejected, Phase: phase, Obj: curObj, N: int64(len(specs))})
		}
		return a, curObj, nil
	}
	winner, err := rebuild(a, best, build)
	if err != nil {
		return nil, 0, err
	}
	if e.Trace != nil {
		e.Trace.Emit(obs.Event{
			Type: obs.MergeAccepted, Phase: phase,
			Cand: best, Obj: bestObj, Best: bestObj,
			Rails: len(winner.Rails), N: int64(len(specs)),
		})
	}
	return winner, bestObj, nil
}

// coreReshuffle implements Line 37: iteratively move one core from a
// bottleneck rail (a rail critical to the objective) to another rail
// while that reduces the objective. phase labels the trace events.
func (e *Engine) coreReshuffle(ctx context.Context, a *tam.Architecture, curObj int64, phase string) (*tam.Architecture, int64, error) {
	for {
		sources := bottleneckRails(a)
		type cmove struct {
			coreID   int
			from, to int
		}
		var specs []cmove
		for _, from := range sources {
			if len(a.Rails[from].Cores) <= 1 {
				continue
			}
			for _, id := range a.Rails[from].Cores {
				for to := range a.Rails {
					if to != from {
						specs = append(specs, cmove{id, from, to})
					}
				}
			}
		}
		build := func(cand *tam.Architecture, i int) (int64, int64, error) {
			mv := specs[i]
			cand.MoveCore(mv.from, mv.to, mv.coreID)
			o, err := e.eval(cand)
			return o, 0, err
		}
		res, err := e.Par.mapCandidates(ctx, a, len(specs), build)
		if err != nil {
			return nil, 0, err
		}
		e.emitCandidates(phase, res)
		best, bestObj := -1, curObj
		for i, r := range res {
			if r.obj < bestObj {
				best, bestObj = i, r.obj
			}
		}
		if best < 0 {
			if e.Trace != nil && len(specs) > 0 {
				e.Trace.Emit(obs.Event{Type: obs.MergeRejected, Phase: phase, Obj: curObj, N: int64(len(specs))})
			}
			return a, curObj, nil
		}
		winner, err := rebuild(a, best, build)
		if err != nil {
			return nil, 0, err
		}
		if e.Trace != nil {
			e.Trace.Emit(obs.Event{
				Type: obs.MergeAccepted, Phase: phase,
				Cand: best, Obj: bestObj, Best: bestObj,
				Rails: len(winner.Rails), N: int64(len(specs)),
			})
		}
		a, curObj = winner, bestObj
	}
}

// bottleneckRails returns the indices of rails that currently determine
// the objective: the rail(s) with maximal InTest time plus any rail with
// non-zero SI utilization equal to the maximum SI utilization. For the
// InTest-only objective the second set is empty.
func bottleneckRails(a *tam.Architecture) []int {
	var maxIn, maxSI int64
	for _, r := range a.Rails {
		if r.TimeIn > maxIn {
			maxIn = r.TimeIn
		}
		if r.TimeSI > maxSI {
			maxSI = r.TimeSI
		}
	}
	var out []int
	for i, r := range a.Rails {
		if r.TimeIn == maxIn || (maxSI > 0 && r.TimeSI == maxSI) {
			out = append(out, i)
		}
	}
	return out
}

// sortByTimeUsed sorts rails by non-increasing utilized time, the order
// the paper's loops operate on. Ties break by core-ID signature for
// determinism (Rail.Key caches the signature, so the comparisons do not
// allocate).
func sortByTimeUsed(a *tam.Architecture) {
	sort.SliceStable(a.Rails, func(i, j int) bool {
		ti, tj := a.Rails[i].TimeUsed(), a.Rails[j].TimeUsed()
		if ti != tj {
			return ti > tj
		}
		return a.Rails[i].Key() < a.Rails[j].Key()
	})
}
