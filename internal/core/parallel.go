package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sitam/internal/obs"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
)

// This file implements the parallel candidate evaluation layer: the
// merge candidates of mergeTAMs, the per-rail trials of
// distributeFreeWires, the move candidates of coreReshuffle and
// independent ILS restarts are all mutually independent, so they fan
// out across a bounded worker pool. Selection stays byte-identical to
// a serial run: every batch is enumerated in the serial iteration
// order, all candidates are scored, and the reduction walks the
// results in that order applying the serial comparison — so the winner
// (and every tie-break) is the one the serial loop would have picked.

// ParallelEvaluator fans independent candidate evaluations across a
// bounded worker pool. The zero value and a nil pointer both evaluate
// serially on the calling goroutine.
type ParallelEvaluator struct {
	// Workers bounds the number of concurrent candidate evaluations:
	// 0 means runtime.GOMAXPROCS(0), 1 evaluates serially, larger
	// values cap the pool explicitly.
	Workers int

	// Pool counters, nil unless a metrics registry was attached (see
	// NewParallelEngine). busyNS sums per-candidate evaluation time
	// across workers and wallNS the batches' elapsed time, so
	// busy/(wall*workers) is the pool utilization. Timestamps are
	// taken only when timed is set.
	batches, candidates *obs.Counter
	busyNS, wallNS      *obs.Counter
	timed               bool
}

// workers resolves the effective pool size.
func (p *ParallelEvaluator) workers() int {
	if p == nil {
		return 1
	}
	if p.Workers > 0 {
		return p.Workers
	}
	if p.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// candResult is one candidate's score: the objective, an auxiliary
// metric some reductions need (e.g. the widened rail's utilized time
// in distributeFreeWires), and the evaluation error if any.
type candResult struct {
	obj int64
	aux int64
	err error
}

// parallelFor runs fn(i) for i in [0, n) on k goroutines fed by a
// shared counter. fn receives the worker index so callers can keep
// per-worker scratch state. Panics inside fn are captured and the one
// with the lowest candidate index is re-raised on the caller's
// goroutine after all workers drain, so the engine's panic surface is
// the same as in a serial run and the facade guard still applies.
func parallelFor(k, n int, fn func(worker, i int)) {
	if k > n {
		k = n
	}
	panics := make([]any, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(k)
	for w := 0; w < k; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					fn(worker, i)
				}()
			}
		}(w)
	}
	wg.Wait()
	for i := range panics {
		if panics[i] != nil {
			panic(panics[i])
		}
	}
}

// mapCandidates scores n candidate architectures derived from base.
// job receives a scratch architecture already reset to a copy of base
// plus the candidate index; it must mutate only the scratch (each
// worker owns one scratch, reused across its candidates). The context
// is checked before every candidate, serial or parallel.
//
// The returned slice is index-aligned with the candidates. On error
// the result is nil and the error is the one the serial loop would
// have surfaced first: results are scanned in candidate order and the
// lowest-index error wins, so error propagation is deterministic for
// deterministic evaluators.
func (p *ParallelEvaluator) mapCandidates(ctx context.Context, base *tam.Architecture, n int, job func(cand *tam.Architecture, i int) (int64, int64, error)) ([]candResult, error) {
	if n == 0 {
		return nil, nil
	}
	timed := p != nil && p.timed
	var wallStart time.Time
	if timed {
		wallStart = time.Now() //sitlint:allow detrand — wall/busy profiling metrics only, never the objective
	}
	k := p.workers()
	if k <= 1 || n == 1 {
		scratch := &tam.Architecture{}
		res := make([]candResult, n)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			scratch.CopyFrom(base)
			obj, aux, err := job(scratch, i)
			if err != nil {
				return nil, err
			}
			res[i] = candResult{obj: obj, aux: aux}
		}
		if timed {
			wall := int64(time.Since(wallStart))
			p.busyNS.Add(wall) // one goroutine: busy time is wall time
			p.wallNS.Add(wall)
			p.batches.Inc()
			p.candidates.Add(int64(n))
		}
		return res, nil
	}
	res := make([]candResult, n)
	scratches := make([]*tam.Architecture, k)
	busy := make([]int64, k)
	parallelFor(k, n, func(worker, i int) {
		if err := ctx.Err(); err != nil {
			res[i].err = err
			return
		}
		scratch := scratches[worker]
		if scratch == nil {
			scratch = &tam.Architecture{}
			scratches[worker] = scratch
		}
		scratch.CopyFrom(base)
		var t0 time.Time
		if timed {
			t0 = time.Now() //sitlint:allow detrand — per-candidate busy-time profiling only, never the objective
		}
		res[i].obj, res[i].aux, res[i].err = job(scratch, i)
		if timed {
			busy[worker] += int64(time.Since(t0))
		}
	})
	if timed {
		for _, b := range busy {
			p.busyNS.Add(b)
		}
		p.wallNS.Add(int64(time.Since(wallStart)))
		p.batches.Inc()
		p.candidates.Add(int64(n))
	}
	for i := range res {
		if res[i].err != nil {
			return nil, res[i].err
		}
	}
	return res, nil
}

// rebuild reconstructs the winning candidate: jobs only score
// candidates into per-worker scratches, so the selected architecture
// is rebuilt once from the base — one clone per improving batch
// instead of one per candidate. With a memoized evaluator the
// re-evaluation inside job is a cache hit.
func rebuild(base *tam.Architecture, i int, job func(cand *tam.Architecture, i int) (int64, int64, error)) (*tam.Architecture, error) {
	cand := base.Clone()
	if _, _, err := job(cand, i); err != nil {
		return nil, err
	}
	return cand, nil
}

// ParallelConfig bundles the concurrency, memoization and
// observability knobs of the optimization entry points.
type ParallelConfig struct {
	// Workers bounds concurrent candidate evaluations: 0 means
	// runtime.GOMAXPROCS(0), 1 runs serially.
	Workers int

	// CacheSize is the evaluation cache capacity in entries: 0 selects
	// DefaultCacheSize, negative disables memoization.
	CacheSize int

	// MaxEvals bounds the objective evaluations of the run; 0 means
	// unlimited. An exhausted budget ends the run like a cancelled
	// context: partial result, CauseBudget.
	MaxEvals int64

	// Trace collects the structured search-trace of the run. nil (the
	// default) disables tracing. At Workers==1 the trace additionally
	// carries per-lookup cache hit/miss events; under concurrency the
	// hit/miss split is timing-dependent, so it is metrics-only.
	Trace *obs.Tracer

	// Metrics collects the run's counters, gauges and phase-duration
	// histograms; a snapshot lands on Result.Metrics. nil disables
	// collection.
	Metrics *obs.Registry

	// Persist, when non-nil, backs the evaluation cache with a
	// persistent cache file: its entries seed the cache before the run
	// (counted as CacheStats.Loads, not hits) and every miss is
	// appended for the next process. Ignored when CacheSize is
	// negative. The CacheFile outlives the run — the caller owns its
	// lifecycle (a daemon keeps one file across jobs and restarts).
	Persist *CacheFile
}

// NewParallelEngine builds an Engine whose candidate evaluations run
// on a cfg.Workers-sized pool against a shared memoization cache. The
// returned CachedEvaluator exposes the cache counters; it is nil when
// cfg.CacheSize is negative.
func NewParallelEngine(s *soc.SOC, wmax int, eval Evaluator, cfg ParallelConfig) (*Engine, *CachedEvaluator, error) {
	var cache *CachedEvaluator
	if cfg.CacheSize >= 0 {
		cache = NewCachedEvaluator(eval, cfg.CacheSize)
		eval = cache
	}
	eng, err := NewEngine(s, wmax, eval)
	if err != nil {
		return nil, nil, err
	}
	par := &ParallelEvaluator{Workers: cfg.Workers}
	eng.Par = par
	eng.MaxEvals = cfg.MaxEvals
	if cfg.Trace != nil {
		eng.Trace = cfg.Trace
		if par.workers() == 1 {
			// Per-lookup cache and eval_incremental events are
			// deterministic only when one goroutine evaluates; see the
			// obs package comment.
			if cache != nil {
				cache.sink = cfg.Trace
			}
			if inc, ok := innerEvaluator(eng.Eval).(*IncrementalSIEvaluator); ok {
				inc.sink = cfg.Trace
			}
		}
	}
	if cache != nil && cfg.Persist != nil {
		// After the sink decision above, so a single-worker traced run
		// records its one deterministic cache_load event.
		cache.AttachPersistent(cfg.Persist)
	}
	if cfg.Metrics != nil {
		eng.Metrics = cfg.Metrics
		par.batches = cfg.Metrics.Counter("pool_batches")
		par.candidates = cfg.Metrics.Counter("pool_candidates")
		par.busyNS = cfg.Metrics.Counter("pool_busy_ns")
		par.wallNS = cfg.Metrics.Counter("pool_wall_ns")
		par.timed = true
		cfg.Metrics.Gauge("pool_workers").Set(int64(par.workers()))
	}
	return eng, cache, nil
}

// TAMOptimizationWith is TAMOptimizationCtx with parallel candidate
// evaluation, memoization and observability per cfg; the result
// additionally carries the cache statistics and metrics snapshot of
// the run.
func TAMOptimizationWith(ctx context.Context, s *soc.SOC, wmax int, groups []*sischedule.Group, m sischedule.Model, cfg ParallelConfig) (*Result, error) {
	cons, err := CompileSOCConstraints(s, groups)
	if err != nil {
		return nil, err
	}
	eng, cache, err := NewParallelEngine(s, wmax, NewIncrementalSIEvaluatorCons(groups, m, cons), cfg)
	if err != nil {
		return nil, err
	}
	arch, _, st, err := eng.OptimizeCtx(ctx)
	if err != nil {
		return nil, err
	}
	return eng.Finish(arch, st, groups, m, cache)
}
