package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"sitam/internal/sischedule"
	"sitam/internal/tam"
)

// faultEvaluator wraps an Evaluator and fails the failAt-th Evaluate
// call (1-based) with err, simulating a downstream component that dies
// or notices its own deadline mid-search.
type faultEvaluator struct {
	inner  Evaluator
	failAt int
	calls  int
	err    error
}

func (f *faultEvaluator) Evaluate(a *tam.Architecture) (int64, error) {
	f.calls++
	if f.calls == f.failAt {
		return 0, f.err
	}
	return f.inner.Evaluate(a)
}

// TestEvaluatorErrorPropagates injects a hard (non-context) failure at
// every evaluation point of the search and checks that the error
// surfaces unwrapped-able and that no partial result is fabricated.
func TestEvaluatorErrorPropagates(t *testing.T) {
	sentinel := errors.New("injected evaluator failure")
	base := &SIEvaluator{Groups: smallGroups(), Model: sischedule.DefaultModel()}

	// Count the evaluations of a clean run to size the sweep.
	probe := &faultEvaluator{inner: base, failAt: -1}
	eng, err := NewEngine(smallSOC(), 8, probe)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Optimize(); err != nil {
		t.Fatal(err)
	}
	total := probe.calls
	if total < 10 {
		t.Fatalf("clean run made only %d evaluations, fixture too small", total)
	}

	for failAt := 1; failAt <= total; failAt++ {
		fe := &faultEvaluator{inner: base, failAt: failAt, err: sentinel}
		eng.Eval = fe
		a, _, st, err := eng.OptimizeCtx(context.Background())
		if !errors.Is(err, sentinel) {
			t.Fatalf("failAt=%d: err = %v, want the injected sentinel", failAt, err)
		}
		if a != nil || st.Partial {
			t.Fatalf("failAt=%d: hard failure returned arch=%v status=%+v", failAt, a, st)
		}
	}
}

// TestStalledEvaluatorYieldsPartial injects a context-wrapped error —
// an evaluator that aborted because its own downstream deadline fired —
// at every point after the start solution exists, and checks the run
// degrades to a valid partial result whose reported objective matches
// the returned architecture (i.e. the incumbent was not corrupted by
// the interrupted probe).
func TestStalledEvaluatorYieldsPartial(t *testing.T) {
	stall := fmt.Errorf("evaluator aborted: %w", context.DeadlineExceeded)
	base := &SIEvaluator{Groups: smallGroups(), Model: sischedule.DefaultModel()}

	probe := &faultEvaluator{inner: base, failAt: -1}
	eng, err := NewEngine(smallSOC(), 8, probe) // wmax > #cores: feasible from construction
	if err != nil {
		t.Fatal(err)
	}
	_, fullObj, err := eng.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	total := probe.calls

	// failAt=1 hits the very first evaluation, before any feasible
	// architecture exists: the context error is the right answer.
	fe := &faultEvaluator{inner: base, failAt: 1, err: stall}
	eng.Eval = fe
	if a, _, _, err := eng.OptimizeCtx(context.Background()); !errors.Is(err, context.DeadlineExceeded) || a != nil {
		t.Fatalf("failAt=1: got arch=%v err=%v, want nil arch and DeadlineExceeded", a, err)
	}

	for failAt := 2; failAt <= total; failAt++ {
		fe := &faultEvaluator{inner: base, failAt: failAt, err: stall}
		eng.Eval = fe
		a, obj, st, err := eng.OptimizeCtx(context.Background())
		if err != nil {
			t.Fatalf("failAt=%d: err = %v, want graceful degradation", failAt, err)
		}
		if !st.Partial || st.Reason == "" {
			t.Fatalf("failAt=%d: status %+v, want Partial with a reason", failAt, st)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("failAt=%d: partial architecture invalid: %v", failAt, err)
		}
		if obj < fullObj {
			t.Fatalf("failAt=%d: partial obj %d beats full-run obj %d", failAt, obj, fullObj)
		}
		if again, err := base.Evaluate(a); err != nil || again != obj {
			t.Fatalf("failAt=%d: reported obj %d, re-evaluated %d (err %v): best-so-far corrupted", failAt, obj, again, err)
		}
	}
}

// TestStalledEvaluatorDuringILS checks the same contract one layer up:
// an evaluator stall during the kick rounds returns the pre-kick best,
// flagged partial, with no error.
func TestStalledEvaluatorDuringILS(t *testing.T) {
	stall := fmt.Errorf("evaluator aborted: %w", context.Canceled)
	base := &SIEvaluator{Groups: smallGroups(), Model: sischedule.DefaultModel()}

	probe := &faultEvaluator{inner: base, failAt: -1}
	eng, err := NewEngine(smallSOC(), 8, probe)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Optimize(); err != nil {
		t.Fatal(err)
	}
	greedyCalls := probe.calls

	_, greedyObj, err := eng.Optimize()
	if err != nil {
		t.Fatal(err)
	}

	// Fail a few evaluations into the ILS phase.
	fe := &faultEvaluator{inner: base, failAt: greedyCalls + 3, err: stall}
	eng.Eval = fe
	a, obj, st, err := eng.OptimizeILSCtx(context.Background(), 50, 1)
	if err != nil {
		t.Fatalf("err = %v, want graceful degradation", err)
	}
	if !st.Partial {
		t.Fatalf("status %+v, want Partial", st)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("partial architecture invalid: %v", err)
	}
	if obj > greedyObj {
		t.Fatalf("ILS partial obj %d worse than its own greedy incumbent %d", obj, greedyObj)
	}
	if again, err := base.Evaluate(a); err != nil || again != obj {
		t.Fatalf("reported obj %d, re-evaluated %d (err %v)", obj, again, err)
	}
}

// TestNoGoroutineLeakAfterCancel runs many cancelled and timed-out
// optimizations and checks the goroutine count settles back to the
// baseline: the anytime machinery must not strand workers or timers.
func TestNoGoroutineLeakAfterCancel(t *testing.T) {
	eng := newSIEngine(t, 8)
	before := runtime.NumGoroutine()

	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*time.Millisecond)
		_, _, _, _ = eng.OptimizeILSCtx(ctx, 20, int64(i))
		cancel()

		cctx, ccancel := context.WithCancel(context.Background())
		ccancel()
		_, _, _, _ = eng.OptimizeCtx(cctx)
	}

	// Timer goroutines from WithTimeout unwind asynchronously; allow a
	// grace period before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d, leak suspected", before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
