//go:build unix

package core

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// Kill -9 crash smoke: a helper process appends cache records as fast
// as it can and is SIGKILLed mid-stream. The reopened file must load a
// clean prefix of what was written — the torn record truncated, the
// flock released by the kernel, every surviving entry intact.

// TestCacheFileCrashHelperProcess is the helper body, re-executed from
// TestCacheFileCrashReopen; it is a no-op in a normal test run.
func TestCacheFileCrashHelperProcess(t *testing.T) {
	if os.Getenv("SITAM_CACHE_CRASH_HELPER") != "1" {
		t.Skip("helper process body; driven by TestCacheFileCrashReopen")
	}
	cf, err := OpenCacheFile(os.Getenv("SITAM_CACHE_CRASH_PATH"))
	if err != nil {
		fmt.Printf("HELPER_OPEN_ERR %v\n", err)
		os.Exit(1)
	}
	fmt.Println("HELPER_READY")
	for i := uint64(0); ; i++ {
		if err := cf.Append(i, testEntry(int64(i), i, i+1, i+2)); err != nil {
			fmt.Printf("HELPER_APPEND_ERR %v\n", err)
			os.Exit(1)
		}
	}
}

func TestCacheFileCrashReopen(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Skip("test binary path unavailable")
	}
	path := filepath.Join(t.TempDir(), "cache.sit")
	cmd := exec.Command(exe, "-test.run=TestCacheFileCrashHelperProcess", "-test.v")
	cmd.Env = append(os.Environ(),
		"SITAM_CACHE_CRASH_HELPER=1",
		"SITAM_CACHE_CRASH_PATH="+path,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	sc := bufio.NewScanner(stdout)
	ready := false
	for sc.Scan() {
		line := sc.Text()
		if line == "HELPER_READY" {
			ready = true
			break
		}
		if len(line) > 6 && line[:6] == "HELPER" {
			t.Fatalf("helper failed: %s", line)
		}
	}
	if !ready {
		t.Fatal("helper never became ready")
	}
	// Let appends accumulate, then kill -9 mid-write.
	time.Sleep(100 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// The kernel released the flock with the process; reopen must
	// succeed immediately and yield a clean prefix.
	cf, err := OpenCacheFile(path)
	if err != nil {
		t.Fatalf("reopen after kill -9: %v", err)
	}
	defer cf.Close()
	n := cf.Loaded()
	if n == 0 {
		t.Fatal("no records survived the crash — helper wrote nothing?")
	}
	for i := uint64(0); i < uint64(n); i++ {
		got, ok := cf.entries[i]
		if !ok {
			t.Fatalf("surviving records are not a prefix: key %d of %d missing", i, n)
		}
		if got.obj != int64(i) || len(got.rails) != 3 || got.rails[0].hash != i {
			t.Fatalf("record %d corrupted after crash: %+v", i, got)
		}
	}
	t.Logf("kill -9 smoke: %d records survived intact", n)
}
