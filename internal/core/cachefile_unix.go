//go:build unix

package core

import (
	"os"
	"syscall"
	"time"
)

// Unix backing for the persistent cache: BSD flock for the exclusive
// advisory lock and a read-only shared mapping for the open scan, so
// loading a warm multi-megabyte cache costs page faults instead of a
// copy.

// cacheLockRetries × cacheLockBackoff bounds how long a second opener
// waits before degrading to memory-only with ErrCacheLocked. Vars, not
// consts, so the fd-leak regression test can drop the backoff and
// hammer the failure path without waiting out the retry window; the
// defaults are unchanged.
var (
	cacheLockRetries = 5
	cacheLockBackoff = 20 * time.Millisecond
)

func lockCacheFile(f *os.File) error {
	for i := 0; ; i++ {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if err == nil {
			return nil
		}
		if err != syscall.EWOULDBLOCK && err != syscall.EAGAIN {
			return err
		}
		if i >= cacheLockRetries {
			return ErrCacheLocked
		}
		time.Sleep(cacheLockBackoff)
	}
}

func unlockCacheFile(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}

// mapCacheFile maps size bytes of f read-only. The caller must invoke
// the returned cleanup before truncating or closing the file.
func mapCacheFile(f *os.File, size int64) ([]byte, func(), error) {
	if size == 0 {
		return nil, func() {}, nil
	}
	if size != int64(int(size)) {
		return nil, nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { syscall.Munmap(data) }, nil
}
