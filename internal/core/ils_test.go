package core

import (
	"testing"

	"sitam/internal/sischedule"
)

func TestOptimizeILSZeroKicksEqualsOptimize(t *testing.T) {
	groups := smallGroups()
	mk := func() *Engine {
		eng, err := NewEngine(smallSOC(), 6, &SIEvaluator{Groups: groups, Model: sischedule.DefaultModel()})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	_, plain, err := mk().Optimize()
	if err != nil {
		t.Fatal(err)
	}
	_, ils, err := mk().OptimizeILS(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plain != ils {
		t.Errorf("0-kick ILS %d != plain %d", ils, plain)
	}
}

func TestOptimizeILSNeverWorse(t *testing.T) {
	groups := smallGroups()
	for _, wmax := range []int{4, 8} {
		eng, err := NewEngine(smallSOC(), wmax, &SIEvaluator{Groups: groups, Model: sischedule.DefaultModel()})
		if err != nil {
			t.Fatal(err)
		}
		_, plain, err := eng.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		arch, ils, err := eng.OptimizeILS(20, 7)
		if err != nil {
			t.Fatal(err)
		}
		if ils > plain {
			t.Errorf("Wmax=%d: ILS %d worse than greedy %d", wmax, ils, plain)
		}
		if err := arch.Validate(); err != nil {
			t.Fatalf("Wmax=%d: %v", wmax, err)
		}
		if arch.TotalWidth() > wmax {
			t.Errorf("Wmax=%d: ILS width %d over budget", wmax, arch.TotalWidth())
		}
	}
}

func TestOptimizeILSDeterministic(t *testing.T) {
	groups := smallGroups()
	run := func() int64 {
		eng, err := NewEngine(smallSOC(), 6, &SIEvaluator{Groups: groups, Model: sischedule.DefaultModel()})
		if err != nil {
			t.Fatal(err)
		}
		_, obj, err := eng.OptimizeILS(15, 42)
		if err != nil {
			t.Fatal(err)
		}
		return obj
	}
	if a, b := run(), run(); a != b {
		t.Errorf("ILS not deterministic: %d vs %d", a, b)
	}
}

func TestOptimizeILSRejectsNegativeKicks(t *testing.T) {
	eng, err := NewEngine(smallSOC(), 4, InTestEvaluator{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.OptimizeILS(-1, 0); err == nil {
		t.Error("accepted negative kicks")
	}
}
