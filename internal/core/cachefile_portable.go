//go:build !unix

package core

import "os"

// Portable backing for the persistent cache on platforms without flock
// or mmap: no inter-process lock (single-process use is still safe —
// the CacheFile mutex serializes appends) and a plain read instead of
// a mapping. OpenCacheFile's read fallback kicks in because
// mapCacheFile always declines.

func lockCacheFile(*os.File) error { return nil }

func unlockCacheFile(*os.File) {}

func mapCacheFile(*os.File, int64) ([]byte, func(), error) {
	return nil, nil, os.ErrInvalid
}
