package core

import (
	"context"
	"fmt"
	"sort"

	"sitam/internal/compaction"
	"sitam/internal/hypergraph"
	"sitam/internal/obs"
	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
)

// GroupingResult is the outcome of the two-dimensional compaction
// pipeline: the SI test groups ready for scheduling, plus the compacted
// patterns and statistics behind them.
type GroupingResult struct {
	// Groups holds the schedulable SI test groups: one per partition
	// part with at least one pattern, plus (for Parts > 1) a residual
	// group holding the patterns whose care cores span multiple parts.
	// The residual group, when present, is first.
	Groups []*sischedule.Group

	// GroupPatterns[i] holds the compacted patterns of Groups[i].
	GroupPatterns [][]*sifault.Pattern

	// PartOf maps core ID to partition part (0..Parts-1).
	PartOf map[int]int

	// Parts is the requested partition count g.
	Parts int

	// CutPatterns is the number of original patterns that fell into the
	// residual group (the weight of the hypergraph cut).
	CutPatterns int64

	// Stats aggregates the vertical compaction over all groups.
	Stats compaction.Stats

	// Partial reports that the compaction pipeline was degraded by a
	// done context: the partitioner skipped refinement and/or some
	// patterns were passed through uncompacted. The groups are still a
	// valid, schedulable cover of the full pattern set.
	Partial bool

	// Reason describes what was cut short when Partial is set.
	Reason string

	// Cause classifies the interruption when Partial is set.
	Cause StopCause
}

// TotalCompacted returns the total compacted pattern count across all
// groups.
func (g *GroupingResult) TotalCompacted() int {
	n := 0
	for _, ps := range g.GroupPatterns {
		n += len(ps)
	}
	return n
}

// GroupingOptions configures BuildGroups.
type GroupingOptions struct {
	// Parts is the number of hypergraph partition parts (the paper's
	// g). 1 disables horizontal compaction (pure pattern-count
	// reduction).
	Parts int

	// Seed drives the randomized partitioner.
	Seed int64

	// Tolerance is the partitioner's balance tolerance; zero uses the
	// partitioner default (0.10).
	Tolerance float64

	// Trace receives the grouping pipeline's search-trace events
	// (partitioning and per-group compaction spans); nil disables
	// tracing.
	Trace obs.Sink

	// CompactWorkers is the per-group compaction worker-pool size
	// passed through to compaction.GreedyWith: 0 keeps the serial
	// default (workers=1), negative uses runtime.GOMAXPROCS(0). The
	// worker count never changes a single output bit — sharding is
	// conflict-component exact — only wall-clock.
	CompactWorkers int

	// Metrics, when non-nil, receives the compaction shard-plan
	// counters and gauges (compact_shards, compact_shard_imbalance_pct,
	// ...).
	Metrics *obs.Registry
}

// compactWorkers maps the GroupingOptions convention (0 = serial) onto
// the compaction.Config one (<=0 = GOMAXPROCS).
func (o GroupingOptions) compactWorkers() int {
	switch {
	case o.CompactWorkers == 0:
		return 1
	case o.CompactWorkers < 0:
		return 0
	default:
		return o.CompactWorkers
	}
}

// BuildGroups runs the paper's two-dimensional SI test-set compaction
// (Section 3): it partitions the cores into opts.Parts groups with a
// hypergraph partitioner (vertices: cores weighted by WOC count;
// hyperedges: patterns connecting their care cores, weighted by
// multiplicity), classifies each pattern into the part containing all
// its care cores or into the residual group, and then compacts every
// group separately with the greedy clique-cover heuristic.
func BuildGroups(s *soc.SOC, patterns []*sifault.Pattern, opts GroupingOptions) (*GroupingResult, error) {
	return BuildGroupsCtx(context.Background(), s, patterns, opts)
}

// BuildGroupsCtx is BuildGroups with graceful degradation under a done
// context: the partitioner falls back to unrefined greedy bisections
// and the per-group compaction passes remaining patterns through
// unmerged. The result is then marked Partial but remains a valid,
// schedulable grouping covering every input pattern. The context's
// error is returned only when it is done before any work started.
func BuildGroupsCtx(ctx context.Context, s *soc.SOC, patterns []*sifault.Pattern, opts GroupingOptions) (*GroupingResult, error) {
	if opts.Parts < 1 {
		return nil, fmt.Errorf("core: Parts must be >= 1, got %d", opts.Parts)
	}
	sp := sifault.NewSpace(s)
	cores := s.Cores()
	if opts.Parts > len(cores) {
		return nil, fmt.Errorf("core: Parts=%d exceeds core count %d", opts.Parts, len(cores))
	}
	// Caller-built patterns may reference positions outside the SOC's
	// WOC space; validate up front so bad input surfaces as an error
	// here instead of a panic inside the care-core scan below.
	for i, p := range patterns {
		if err := p.Validate(sp); err != nil {
			return nil, fmt.Errorf("core: pattern %d: %w", i, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Vertex numbering: position order.
	vertexOf := make(map[int]int, len(cores))
	weights := make([]int64, len(cores))
	for i, c := range cores {
		vertexOf[c.ID] = i
		weights[i] = int64(c.WOC())
	}

	// Care-core sets per pattern, deduplicated into weighted hyperedges.
	careCores := make([][]int, len(patterns))
	edgeWeight := make(map[string]int64)
	edgePins := make(map[string][]int)
	for i, p := range patterns {
		cc := p.CareCores(sp)
		careCores[i] = cc
		pins := make([]int, len(cc))
		for j, id := range cc {
			pins[j] = vertexOf[id]
		}
		k := pinKey(pins)
		edgeWeight[k] += int64(p.Weight)
		if _, ok := edgePins[k]; !ok {
			edgePins[k] = pins
		}
	}

	assign := make([]int, len(cores)) // all zero for Parts == 1
	partitionCut := false
	if opts.Parts > 1 {
		h := hypergraph.New(weights)
		keys := make([]string, 0, len(edgePins))
		for k := range edgePins {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic edge order
		for _, k := range keys {
			if err := h.AddEdge(edgePins[k], edgeWeight[k]); err != nil {
				return nil, err
			}
		}
		var err error
		assign, _, partitionCut, err = hypergraph.PartitionKCtx(ctx, h, opts.Parts, hypergraph.Options{
			Seed:      opts.Seed,
			Tolerance: opts.Tolerance,
			Trace:     opts.Trace,
		})
		if err != nil {
			return nil, err
		}
	}

	res := &GroupingResult{Parts: opts.Parts, PartOf: make(map[int]int, len(cores))}
	for i, c := range cores {
		res.PartOf[c.ID] = assign[i]
	}

	// Classify patterns into parts; spanning patterns go to the
	// residual bucket.
	perPart := make([][]*sifault.Pattern, opts.Parts)
	var residual []*sifault.Pattern
	for i, p := range patterns {
		cc := careCores[i]
		part := assign[vertexOf[cc[0]]]
		spans := false
		for _, id := range cc[1:] {
			if assign[vertexOf[id]] != part {
				spans = true
				break
			}
		}
		if spans {
			residual = append(residual, p)
			res.CutPatterns += int64(p.Weight)
		} else {
			perPart[part] = append(perPart[part], p)
		}
	}

	// Compact each bucket separately and build schedulable groups. The
	// residual group comes first: it involves (nearly) every core, so
	// scheduling it early keeps Algorithm 1's packing tight.
	compactionCut := false
	addGroup := func(name string, ps []*sifault.Pattern) {
		if len(ps) == 0 {
			return
		}
		comp, stats, cut := compaction.GreedyWith(ctx, sp, ps, compaction.Config{
			Workers: opts.compactWorkers(),
			Sink:    opts.Trace,
			Group:   name,
			Metrics: opts.Metrics,
		})
		compactionCut = compactionCut || cut
		res.Stats.Original += stats.Original
		res.Stats.Compacted += stats.Compacted
		res.Stats.Passes += stats.Passes
		coreSet := make(map[int]struct{})
		for _, p := range comp {
			for _, id := range p.CareCores(sp) {
				coreSet[id] = struct{}{}
			}
		}
		ids := make([]int, 0, len(coreSet))
		for id := range coreSet {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		res.Groups = append(res.Groups, &sischedule.Group{
			Name:     name,
			Cores:    ids,
			Patterns: int64(len(comp)),
		})
		res.GroupPatterns = append(res.GroupPatterns, comp)
	}
	if opts.Parts > 1 {
		addGroup("RES", residual)
	}
	for part := 0; part < opts.Parts; part++ {
		addGroup(fmt.Sprintf("G%d", part+1), perPart[part])
	}
	if partitionCut || compactionCut {
		res.Partial = true
		res.Cause = CauseOf(ctx.Err())
		switch {
		case partitionCut && compactionCut:
			res.Reason = stopReason(ctx.Err(), "partitioning and compaction")
		case partitionCut:
			res.Reason = stopReason(ctx.Err(), "partitioning")
		default:
			res.Reason = stopReason(ctx.Err(), "compaction")
		}
	}
	return res, nil
}

func pinKey(pins []int) string {
	b := make([]byte, 0, len(pins)*3)
	for _, p := range pins {
		b = append(b, byte(p), byte(p>>8), byte(p>>16))
	}
	return string(b)
}

// TAMOptimization is the paper's Algorithm 2: it designs a TestRail
// architecture of total width wmax for SOC s minimizing
// T_soc = T_in + T_si over the given SI test groups, and returns the
// architecture with its objective breakdown and SI schedule.
func TAMOptimization(s *soc.SOC, wmax int, groups []*sischedule.Group, m sischedule.Model) (*Result, error) {
	return TAMOptimizationCtx(context.Background(), s, wmax, groups, m)
}

// TAMOptimizationCtx is TAMOptimization as an anytime algorithm: on
// cancellation or deadline expiry mid-search the best architecture
// found so far is evaluated and returned with Result.Partial set and a
// nil error. Only when no valid architecture was produced at all does
// the context's error come back.
func TAMOptimizationCtx(ctx context.Context, s *soc.SOC, wmax int, groups []*sischedule.Group, m sischedule.Model) (*Result, error) {
	cons, err := CompileSOCConstraints(s, groups)
	if err != nil {
		return nil, err
	}
	eng, err := NewEngine(s, wmax, NewIncrementalSIEvaluatorCons(groups, m, cons))
	if err != nil {
		return nil, err
	}
	arch, _, st, err := eng.OptimizeCtx(ctx)
	if err != nil {
		return nil, err
	}
	return eng.Finish(arch, st, groups, m, nil)
}

// Finish assembles the Result of an optimization run: it evaluates the
// final architecture's breakdown and SI schedule (emitting the
// si_group_scheduled events when the engine traces), snapshots the
// cache counters and metrics onto the result, and carries the anytime
// status. Every entry point that produces a Result funnels through it.
func (e *Engine) Finish(arch *tam.Architecture, st Status, groups []*sischedule.Group, m sischedule.Model, cache *CachedEvaluator) (*Result, error) {
	cons, err := CompileSOCConstraints(arch.SOC, groups)
	if err != nil {
		return nil, err
	}
	bd, sched, err := EvaluateBreakdownConsObs(arch, groups, m, cons, e.Trace)
	if err != nil {
		return nil, err
	}
	if scheduleSelfCheck {
		if err := selfCheckSchedule(arch, groups, sched, cons); err != nil {
			return nil, fmt.Errorf("core: schedule self-check: %w", err)
		}
	}
	res := &Result{
		Architecture: arch, Breakdown: bd, Schedule: sched,
		Partial: st.Partial, Reason: st.Reason, Cause: st.Cause,
	}
	if cache != nil {
		res.Cache = cache.Stats()
	}
	res.Metrics = e.snapshotMetrics(cache)
	return res, nil
}

// snapshotMetrics copies the registry (when attached) into plain data
// and adds the counters every run has regardless of a registry: total
// evaluations, the cache totals, and the incremental evaluator's
// recompute accounting.
func (e *Engine) snapshotMetrics(cache *CachedEvaluator) *obs.Snapshot {
	snap := e.Metrics.Snapshot() // nil-safe: empty snapshot without a registry
	snap.Counters["evals"] = e.evalCount()
	if cache != nil {
		st := cache.Stats()
		snap.Counters["cache_hits"] = st.Hits
		snap.Counters["cache_misses"] = st.Misses
		snap.Counters["cache_loads"] = st.Loads
		snap.Counters["cache_evictions"] = st.Evictions
		snap.Gauges["cache_entries"] = int64(st.Entries)
	}
	if inc, ok := innerEvaluator(e.Eval).(*IncrementalSIEvaluator); ok {
		st := inc.Stats()
		snap.Counters["eval_dirty_rails"] = st.DirtyRails
		snap.Counters["eval_rails_recomputed"] = st.RailsRecomputed
		snap.Counters["eval_rails_memoized"] = st.RailsMemoized
		snap.Counters["eval_groups_recomputed"] = st.GroupsRecomputed
		snap.Counters["eval_groups_memoized"] = st.GroupsMemoized
	}
	return snap
}

// innerEvaluator unwraps the memoization layer, exposing the evaluator
// the engine ultimately scores with.
func innerEvaluator(eval Evaluator) Evaluator {
	if c, ok := eval.(*CachedEvaluator); ok {
		return c.Inner
	}
	return eval
}

// Result is the outcome of a TAM optimization run: the designed
// architecture, its time breakdown and the SI schedule on it.
type Result struct {
	Architecture *tam.Architecture
	Breakdown    Breakdown
	Schedule     *sischedule.Schedule

	// Partial reports that the optimization was interrupted by a done
	// context and Architecture is the best solution found so far rather
	// than the converged one. It is still a valid, schedulable
	// architecture; Breakdown and Schedule describe it exactly.
	Partial bool

	// Reason describes what was interrupted when Partial is set, e.g.
	// "deadline exceeded during bottom-up merge".
	Reason string

	// Cause classifies the interruption when Partial is set: deadline
	// expiry, cancellation or budget exhaustion.
	Cause StopCause

	// Cache holds the evaluation-cache counters of the run, when the
	// optimization ran with memoization (TAMOptimizationWith and the
	// cfg-aware facade entry points); zero otherwise.
	Cache CacheStats

	// Metrics is the run's metrics snapshot. Always non-nil on results
	// assembled by the engine: it carries at least the "evals" counter
	// and, with memoization, the cache totals; runs configured with a
	// metrics registry add the pool counters and phase-duration
	// histograms.
	Metrics *obs.Snapshot
}
