package core

import (
	"testing"

	"sitam/internal/sifault"
	"sitam/internal/soc"
)

func TestBuildGroupsValidation(t *testing.T) {
	s := smallSOC()
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildGroups(s, patterns, GroupingOptions{Parts: 0}); err == nil {
		t.Error("accepted Parts=0")
	}
	if _, err := BuildGroups(s, patterns, GroupingOptions{Parts: 99}); err == nil {
		t.Error("accepted Parts > core count")
	}
}

func TestBuildGroupsSinglePart(t *testing.T) {
	s := smallSOC()
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := BuildGroups(s, patterns, GroupingOptions{Parts: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Groups) != 1 {
		t.Fatalf("g=1 produced %d groups", len(gr.Groups))
	}
	if gr.CutPatterns != 0 {
		t.Errorf("g=1 has %d residual patterns", gr.CutPatterns)
	}
	if gr.Stats.Original != 500 {
		t.Errorf("Original = %d", gr.Stats.Original)
	}
	if gr.Groups[0].Patterns != int64(len(gr.GroupPatterns[0])) {
		t.Errorf("group pattern count %d != %d", gr.Groups[0].Patterns, len(gr.GroupPatterns[0]))
	}
}

func TestBuildGroupsPartitionInvariants(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	sp := sifault.NewSpace(s)
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{2, 4, 8} {
		gr, err := BuildGroups(s, patterns, GroupingOptions{Parts: parts, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		// Every core assigned to exactly one part in range.
		if len(gr.PartOf) != s.NumCores() {
			t.Fatalf("parts=%d: PartOf covers %d cores", parts, len(gr.PartOf))
		}
		for id, p := range gr.PartOf {
			if p < 0 || p >= parts {
				t.Fatalf("parts=%d: core %d in part %d", parts, id, p)
			}
		}
		// Weight conservation across all groups.
		var weight int64
		for _, ps := range gr.GroupPatterns {
			for _, p := range ps {
				weight += int64(p.Weight)
				if err := p.Validate(sp); err != nil {
					t.Fatalf("parts=%d: %v", parts, err)
				}
			}
		}
		if weight != 3000 {
			t.Errorf("parts=%d: weight %d != 3000", parts, weight)
		}
		// Non-residual groups stay within one part; their care cores
		// are a subset of the group's declared cores.
		for gi, g := range gr.Groups {
			declared := map[int]bool{}
			for _, id := range g.Cores {
				declared[id] = true
			}
			var wantPart = -1
			for _, p := range gr.GroupPatterns[gi] {
				for _, id := range p.CareCores(sp) {
					if !declared[id] {
						t.Fatalf("parts=%d group %s: pattern cares about undeclared core %d", parts, g.Name, id)
					}
					if g.Name != "RES" {
						if wantPart < 0 {
							wantPart = gr.PartOf[id]
						} else if gr.PartOf[id] != wantPart {
							t.Fatalf("parts=%d group %s: spans parts %d and %d", parts, g.Name, wantPart, gr.PartOf[id])
						}
					}
				}
			}
		}
		// Residual (if any) is first and counts match.
		if parts > 1 && len(gr.Groups) > 0 && gr.CutPatterns > 0 {
			if gr.Groups[0].Name != "RES" {
				t.Errorf("parts=%d: first group is %s, want RES", parts, gr.Groups[0].Name)
			}
			var resWeight int64
			for _, p := range gr.GroupPatterns[0] {
				resWeight += int64(p.Weight)
			}
			if resWeight != gr.CutPatterns {
				t.Errorf("parts=%d: residual weight %d != CutPatterns %d", parts, resWeight, gr.CutPatterns)
			}
		}
	}
}

func TestBuildGroupsDeterministic(t *testing.T) {
	s := smallSOC()
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 800, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildGroups(s, patterns, GroupingOptions{Parts: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGroups(s, patterns, GroupingOptions{Parts: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCompacted() != b.TotalCompacted() || a.CutPatterns != b.CutPatterns {
		t.Error("BuildGroups not deterministic")
	}
	for id, p := range a.PartOf {
		if b.PartOf[id] != p {
			t.Errorf("core %d part differs", id)
		}
	}
}

func TestGroupingReducesPatternLengthWork(t *testing.T) {
	// The point of horizontal compaction: with g parts, most patterns
	// involve far fewer cores than the whole SOC.
	s := soc.MustLoadBenchmark("p93791")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 2000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	gr1, err := BuildGroups(s, patterns, GroupingOptions{Parts: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	gr4, err := BuildGroups(s, patterns, GroupingOptions{Parts: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr1.Groups[0].Cores) != s.NumCores() {
		t.Errorf("g=1 group involves %d cores, want all %d", len(gr1.Groups[0].Cores), s.NumCores())
	}
	// At least one non-residual g=4 group involves at most half the cores.
	small := false
	for _, g := range gr4.Groups {
		if g.Name != "RES" && len(g.Cores) <= s.NumCores()/2 {
			small = true
		}
	}
	if !small {
		t.Error("g=4 produced no small core groups")
	}
}
