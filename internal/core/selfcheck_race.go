//go:build race

package core

// scheduleSelfCheck: race-detector builds revalidate every final
// schedule in Engine.Finish (see selfcheck.go).
const scheduleSelfCheck = true
