package core

import (
	"context"
	"errors"
)

// StopCause classifies why an anytime optimization run ended early. It
// replaces string matching on Status.Reason: the enum travels on
// Status, Result and GroupingResult, surfaces in the trace's
// deadline_hit events, and renders the CLI partial markers.
type StopCause int

const (
	// CauseNone means the run was not interrupted.
	CauseNone StopCause = iota

	// CauseDeadline means the context's deadline expired.
	CauseDeadline

	// CauseCancel means the context was cancelled (e.g. SIGINT).
	CauseCancel

	// CauseBudget means the evaluation budget (Engine.MaxEvals) ran out.
	CauseBudget
)

// ErrBudgetExhausted is the sentinel the engine's evaluation counter
// returns once Engine.MaxEvals objective evaluations have been spent.
// The optimization loops treat it exactly like a done context: the
// incumbent comes back as a partial result with CauseBudget.
var ErrBudgetExhausted = errors.New("core: evaluation budget exhausted")

// CauseOf classifies an interruption error. Any stop error that is
// neither a deadline expiry nor the budget sentinel counts as a
// cancellation, matching the reason strings of earlier releases.
func CauseOf(err error) StopCause {
	switch {
	case err == nil:
		return CauseNone
	case errors.Is(err, context.DeadlineExceeded):
		return CauseDeadline
	case errors.Is(err, ErrBudgetExhausted):
		return CauseBudget
	}
	return CauseCancel
}

// String renders the cause the way Status.Reason phrases it
// ("deadline exceeded", "cancelled", "evaluation budget exhausted").
func (c StopCause) String() string {
	switch c {
	case CauseDeadline:
		return "deadline exceeded"
	case CauseCancel:
		return "cancelled"
	case CauseBudget:
		return "evaluation budget exhausted"
	}
	return ""
}

// Label returns the short token used by the trace's deadline_hit
// events and the CLIs' RESULT PARTIAL markers: "deadline",
// "interrupted" or "budget".
func (c StopCause) Label() string {
	switch c {
	case CauseDeadline:
		return "deadline"
	case CauseCancel:
		return "interrupted"
	case CauseBudget:
		return "budget"
	}
	return ""
}

// isStop reports whether err is an anytime interruption — a context
// error (including wrapped ones, e.g. an Evaluator that aborted because
// its own downstream context fired) or the evaluation-budget sentinel —
// as opposed to a hard failure.
func isStop(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrBudgetExhausted)
}

// stopReason renders a human-readable interruption reason for
// Status.Reason.
func stopReason(err error, phase string) string {
	return CauseOf(err).String() + " during " + phase
}
