package core

import (
	"testing"

	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
)

func smallSOC() *soc.SOC {
	return &soc.SOC{
		Name:     "small",
		BusWidth: 8,
		CoreList: []*soc.Core{
			{ID: 1, Inputs: 8, Outputs: 8, ScanChains: []int{40, 40}, Patterns: 50},
			{ID: 2, Inputs: 4, Outputs: 12, ScanChains: []int{60}, Patterns: 30},
			{ID: 3, Inputs: 6, Outputs: 6, Patterns: 200},
			{ID: 4, Inputs: 10, Outputs: 10, ScanChains: []int{25, 25, 25}, Patterns: 80},
			{ID: 5, Inputs: 3, Outputs: 9, ScanChains: []int{15}, Patterns: 120},
		},
	}
}

func smallGroups() []*sischedule.Group {
	return []*sischedule.Group{
		{Name: "RES", Cores: []int{1, 2, 3, 4, 5}, Patterns: 300},
		{Name: "G1", Cores: []int{1, 2}, Patterns: 500},
		{Name: "G2", Cores: []int{3, 4, 5}, Patterns: 400},
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(smallSOC(), 0, InTestEvaluator{}); err == nil {
		t.Error("accepted Wmax=0")
	}
	bad := smallSOC()
	bad.CoreList[0].Inputs = -1
	if _, err := NewEngine(bad, 8, InTestEvaluator{}); err == nil {
		t.Error("accepted invalid SOC")
	}
}

func TestOptimizeInTestProducesValidArchitecture(t *testing.T) {
	for _, wmax := range []int{2, 3, 5, 8, 16} {
		eng, err := NewEngine(smallSOC(), wmax, InTestEvaluator{})
		if err != nil {
			t.Fatal(err)
		}
		arch, obj, err := eng.Optimize()
		if err != nil {
			t.Fatalf("Wmax=%d: %v", wmax, err)
		}
		if err := arch.Validate(); err != nil {
			t.Fatalf("Wmax=%d: %v", wmax, err)
		}
		if arch.TotalWidth() > wmax {
			t.Errorf("Wmax=%d: total width %d exceeds budget", wmax, arch.TotalWidth())
		}
		if obj != arch.InTestTime() {
			t.Errorf("Wmax=%d: objective %d != InTestTime %d", wmax, obj, arch.InTestTime())
		}
	}
}

func TestOptimizeFewerWiresThanCores(t *testing.T) {
	// Wmax=2 < 5 cores: start solution must merge down to 2 rails of
	// width 1.
	eng, err := NewEngine(smallSOC(), 2, InTestEvaluator{})
	if err != nil {
		t.Fatal(err)
	}
	arch, _, err := eng.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Validate(); err != nil {
		t.Fatal(err)
	}
	if arch.TotalWidth() > 2 {
		t.Errorf("total width %d > 2", arch.TotalWidth())
	}
}

func TestOptimizeMonotonicOverWidth(t *testing.T) {
	// More TAM wires never hurt the optimized InTest time by much; the
	// heuristic is not guaranteed monotonic, but on this small SOC a
	// doubling of width must strictly help.
	times := map[int]int64{}
	for _, wmax := range []int{2, 4, 8, 16} {
		eng, err := NewEngine(smallSOC(), wmax, InTestEvaluator{})
		if err != nil {
			t.Fatal(err)
		}
		_, obj, err := eng.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		times[wmax] = obj
	}
	if times[4] >= times[2] || times[8] >= times[4] || times[16] >= times[8] {
		t.Errorf("optimized times not improving with width: %v", times)
	}
}

func TestOptimizeSIAwareValid(t *testing.T) {
	groups := smallGroups()
	for _, wmax := range []int{3, 6, 12} {
		eng, err := NewEngine(smallSOC(), wmax, &SIEvaluator{Groups: groups, Model: sischedule.DefaultModel()})
		if err != nil {
			t.Fatal(err)
		}
		arch, obj, err := eng.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		if err := arch.Validate(); err != nil {
			t.Fatal(err)
		}
		if arch.TotalWidth() > wmax {
			t.Errorf("Wmax=%d: width %d over budget", wmax, arch.TotalWidth())
		}
		bd, sched, err := EvaluateBreakdown(arch, groups, sischedule.DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		if bd.TimeSOC != obj {
			t.Errorf("Wmax=%d: objective %d != breakdown %d", wmax, obj, bd.TimeSOC)
		}
		if err := sched.Validate(); err != nil {
			t.Error(err)
		}
		if bd.TimeSOC != bd.TimeIn+bd.TimeSI {
			t.Errorf("breakdown inconsistent: %+v", bd)
		}
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	groups := smallGroups()
	run := func() (int64, string) {
		eng, err := NewEngine(smallSOC(), 6, &SIEvaluator{Groups: groups, Model: sischedule.DefaultModel()})
		if err != nil {
			t.Fatal(err)
		}
		arch, obj, err := eng.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		return obj, arch.String()
	}
	o1, a1 := run()
	o2, a2 := run()
	if o1 != o2 || a1 != a2 {
		t.Errorf("optimization not deterministic:\n%s\nvs\n%s", a1, a2)
	}
}

func TestSIAwareBeatsBaselineOnSIHeavyWorkload(t *testing.T) {
	// With SI tests dominating, the SI-aware objective must not be
	// worse than evaluating the InTest-optimized architecture.
	groups := []*sischedule.Group{
		{Name: "RES", Cores: []int{1, 2, 3, 4, 5}, Patterns: 5000},
		{Name: "G1", Cores: []int{1, 2}, Patterns: 8000},
		{Name: "G2", Cores: []int{3, 4, 5}, Patterns: 7000},
	}
	m := sischedule.DefaultModel()
	s := smallSOC()

	engBase, err := NewEngine(s, 8, InTestEvaluator{})
	if err != nil {
		t.Fatal(err)
	}
	baseArch, _, err := engBase.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	baseBD, _, err := EvaluateBreakdown(baseArch, groups, m)
	if err != nil {
		t.Fatal(err)
	}

	engSI, err := NewEngine(s, 8, &SIEvaluator{Groups: groups, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	_, siObj, err := engSI.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if siObj > baseBD.TimeSOC {
		t.Errorf("SI-aware %d worse than SI-oblivious %d on SI-heavy workload", siObj, baseBD.TimeSOC)
	}
}

func TestSingleCoreSOC(t *testing.T) {
	s := &soc.SOC{
		Name:     "one",
		BusWidth: 4,
		CoreList: []*soc.Core{{ID: 1, Inputs: 4, Outputs: 4, ScanChains: []int{10}, Patterns: 20}},
	}
	eng, err := NewEngine(s, 4, InTestEvaluator{})
	if err != nil {
		t.Fatal(err)
	}
	arch, _, err := eng.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(arch.Rails) != 1 {
		t.Errorf("single core spread over %d rails", len(arch.Rails))
	}
}

func TestWmaxEqualsCoreCount(t *testing.T) {
	eng, err := NewEngine(smallSOC(), 5, InTestEvaluator{})
	if err != nil {
		t.Fatal(err)
	}
	arch, _, err := eng.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Validate(); err != nil {
		t.Fatal(err)
	}
	if arch.TotalWidth() > 5 {
		t.Errorf("width %d > 5", arch.TotalWidth())
	}
}

func TestFreeWiresGoToBottleneck(t *testing.T) {
	// One heavy core and one trivial core: with plenty of wires, the
	// heavy core's rail must end up wider.
	s := &soc.SOC{Name: "skew", BusWidth: 4, CoreList: []*soc.Core{
		{ID: 1, Inputs: 8, Outputs: 8, ScanChains: []int{100, 100, 100, 100}, Patterns: 200},
		{ID: 2, Inputs: 2, Outputs: 2, Patterns: 5},
	}}
	eng, err := NewEngine(s, 8, InTestEvaluator{})
	if err != nil {
		t.Fatal(err)
	}
	arch, _, err := eng.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Validate(); err != nil {
		t.Fatal(err)
	}
	heavy := arch.RailOf(1)
	light := arch.RailOf(2)
	if heavy != light && arch.Rails[heavy].Width <= arch.Rails[light].Width {
		t.Errorf("heavy core rail width %d <= light core rail width %d\n%s",
			arch.Rails[heavy].Width, arch.Rails[light].Width, arch)
	}
}

func TestBottleneckRails(t *testing.T) {
	eng, err := NewEngine(smallSOC(), 5, InTestEvaluator{})
	if err != nil {
		t.Fatal(err)
	}
	arch, _, err := eng.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	bn := bottleneckRails(arch)
	if len(bn) == 0 {
		t.Fatal("no bottleneck rails found")
	}
	maxIn := arch.InTestTime()
	foundMax := false
	for _, i := range bn {
		if arch.Rails[i].TimeIn == maxIn {
			foundMax = true
		}
	}
	if !foundMax {
		t.Error("bottleneck set omits the max-InTest rail")
	}
}

func TestTestBusEvaluatorSerializesSI(t *testing.T) {
	s := smallSOC()
	groups := smallGroups()
	m := sischedule.DefaultModel()

	engRail, err := NewEngine(s, 8, &SIEvaluator{Groups: groups, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	_, railObj, err := engRail.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	engBus, err := NewEngine(s, 8, &TestBusEvaluator{Groups: groups, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	busArch, busObj, err := engBus.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if err := busArch.Validate(); err != nil {
		t.Fatal(err)
	}
	// Serial ExTest can never beat the overlapped schedule on the same
	// problem: the TestRail objective is a relaxation.
	if busObj < railObj {
		t.Errorf("Test Bus objective %d below TestRail %d", busObj, railObj)
	}
	// And the bus objective must equal T_in + serial SI on its arch.
	serial, err := sischedule.SerialTime(busArch, groups, m)
	if err != nil {
		t.Fatal(err)
	}
	if busObj != busArch.InTestTime()+serial {
		t.Errorf("bus objective %d != T_in %d + serial %d", busObj, busArch.InTestTime(), serial)
	}
}

func TestEvaluateBreakdownMatchesGenerator(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := BuildGroups(s, patterns, GroupingOptions{Parts: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TAMOptimization(s, 16, gr.Groups, sischedule.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Architecture.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.TimeSOC != res.Breakdown.TimeIn+res.Breakdown.TimeSI {
		t.Errorf("breakdown inconsistent: %+v", res.Breakdown)
	}
	if res.Schedule.TotalSI != res.Breakdown.TimeSI {
		t.Errorf("schedule T_si %d != breakdown %d", res.Schedule.TotalSI, res.Breakdown.TimeSI)
	}
}
