package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// This file implements the persistent form of the evaluation cache: an
// append-only, checksummed, flock-guarded journal of (composition key,
// objective, per-rail TimeSI) records that a restarted process loads to
// skip re-evaluating every architecture a previous run already costed.
// The cache is a pure performance layer — every entry is re-verified by
// the same per-rail sub-hash match as an in-memory hit — so the file
// format defends correctness aggressively and availability lazily: any
// suspect byte sequence (torn tail, bad checksum, foreign version)
// degrades to a cold start, never to a wrong cost.
//
// Layout (all fixed-width fields little-endian):
//
//	header  "SITCACHE" | version u32 | reserved u32
//	entry   nRails u32 | key u64 | obj i64 | nRails×(hash u64, timeSI i64) | sum u64
//
// sum is FNV-1a over the entry's preceding bytes. Appends are plain
// writes without fsync — a crash tears at most the final entry, and
// OpenCacheFile truncates the torn tail exactly like the serve journal
// does. Duplicate keys (re-misses after an epoch eviction, or repeated
// runs) are legal; the last record for a key wins, and the file is
// compacted in place when a quarter or more of its records are
// duplicates. An exclusive flock serializes whole files between
// processes: a second opener gets ErrCacheLocked and is expected to run
// memory-only rather than block.

// ErrCacheLocked reports that another process holds the cache file;
// callers degrade to an in-memory cache rather than wait.
var ErrCacheLocked = errors.New("core: cache file locked by another process")

const (
	cacheFileMagic   = "SITCACHE"
	cacheFileVersion = 1
	cacheHeaderSize  = 16

	// maxCacheFileRails bounds a single record's rail count during the
	// open scan; real architectures carry a few dozen rails, so a
	// larger claim is corruption, not data.
	maxCacheFileRails = 1 << 12

	// cacheCompactNum/Den: compact the file on open when at least
	// Num/Den of its records are duplicate keys.
	cacheCompactNum = 1
	cacheCompactDen = 4
)

// CacheFile is the persistent backing store of a CachedEvaluator. It
// holds the deduplicated on-disk entries in memory (seeded into the
// evaluator by AttachPersistent) and appends every new miss. Safe for
// concurrent use.
type CacheFile struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	entries map[uint64]cacheEntry
	order   []uint64 // distinct keys in first-seen order, for deterministic compaction
	loaded  int      // distinct entries found at open, before any Append
	closed  bool
}

// OpenCacheFile opens (creating if needed) the persistent cache at
// path, repairs any crash damage, and takes an exclusive advisory lock
// for the file's lifetime. A concurrently held lock returns
// ErrCacheLocked after a short retry window. A file of the wrong
// version is reinitialized empty (cold start); a file that is not a
// sitam cache at all is left untouched and reported as an error.
func OpenCacheFile(path string) (*CacheFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockCacheFile(f); err != nil {
		f.Close()
		return nil, err
	}
	cf := &CacheFile{f: f, path: path, entries: make(map[uint64]cacheEntry)}
	if err := cf.load(); err != nil {
		unlockCacheFile(f)
		f.Close()
		return nil, err
	}
	return cf, nil
}

// load scans the file, truncating a torn or corrupt tail, reinitializing
// on a version mismatch, and compacting when the duplicate ratio
// crosses the threshold. On return the file offset sits at the end,
// ready for appends.
func (cf *CacheFile) load() error {
	st, err := cf.f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size == 0 {
		return cf.reinit()
	}
	data, unmap, err := mapCacheFile(cf.f, size)
	if err != nil {
		// Mapping can fail on exotic filesystems; fall back to a read.
		data = make([]byte, size)
		if _, rerr := io.ReadFull(io.NewSectionReader(cf.f, 0, size), data); rerr != nil {
			return rerr
		}
		unmap = func() {}
	}

	if size < cacheHeaderSize {
		// A crash during initialization can tear the header itself. A
		// prefix of our magic is our own torn file; anything else is a
		// foreign file we must not clobber.
		n := len(data)
		if n > len(cacheFileMagic) {
			n = len(cacheFileMagic)
		}
		ours := bytes.Equal(data[:n], []byte(cacheFileMagic)[:n])
		unmap()
		if !ours {
			return fmt.Errorf("cache file %s: not a sitam cache", cf.path)
		}
		return cf.reinit()
	}
	if string(data[:len(cacheFileMagic)]) != cacheFileMagic {
		unmap()
		return fmt.Errorf("cache file %s: not a sitam cache", cf.path)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != cacheFileVersion {
		unmap()
		return cf.reinit()
	}

	records := 0
	off := int64(cacheHeaderSize)
	for {
		key, ent, next, ok := decodeCacheRecord(data, off)
		if !ok {
			break
		}
		if _, dup := cf.entries[key]; !dup {
			cf.order = append(cf.order, key)
		}
		cf.entries[key] = ent
		records++
		off = next
	}
	unmap()

	cf.loaded = len(cf.entries)
	dupes := records - cf.loaded
	switch {
	case dupes*cacheCompactDen >= records*cacheCompactNum && dupes > 0:
		return cf.rewrite()
	case off < size:
		if err := cf.f.Truncate(off); err != nil {
			return fmt.Errorf("repairing cache file %s: %w", cf.path, err)
		}
	}
	_, err = cf.f.Seek(off, io.SeekStart)
	return err
}

// reinit truncates the file to a fresh empty cache (cold start).
func (cf *CacheFile) reinit() error {
	cf.entries = make(map[uint64]cacheEntry)
	cf.order = nil
	cf.loaded = 0
	return cf.rewrite()
}

// rewrite replaces the file's contents with the header plus the
// in-memory entries in first-seen key order. A crash mid-rewrite
// leaves a torn tail the next open repairs — entries can be lost,
// never corrupted into wrong costs.
func (cf *CacheFile) rewrite() error {
	if err := cf.f.Truncate(0); err != nil {
		return err
	}
	if _, err := cf.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	buf := make([]byte, 0, cacheHeaderSize)
	buf = append(buf, cacheFileMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, cacheFileVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	for _, key := range cf.order {
		buf = appendCacheRecord(buf, key, cf.entries[key])
	}
	if _, err := cf.f.Write(buf); err != nil {
		return err
	}
	return cf.f.Sync()
}

// Append persists one freshly evaluated entry. Identical re-stores of
// a key already on disk are skipped; a changed entry for an existing
// key is appended and supersedes the old record on the next open. The
// write is not fsynced — see the package comment on crash semantics.
func (cf *CacheFile) Append(key uint64, ent cacheEntry) error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.closed {
		return os.ErrClosed
	}
	if old, ok := cf.entries[key]; ok {
		if old.obj == ent.obj && len(old.rails) == len(ent.rails) {
			same := true
			for i := range old.rails {
				if old.rails[i] != ent.rails[i] {
					same = false
					break
				}
			}
			if same {
				return nil
			}
		}
	} else {
		cf.order = append(cf.order, key)
	}
	cf.entries[key] = ent
	_, err := cf.f.Write(appendCacheRecord(nil, key, ent))
	return err
}

// Len returns the number of distinct entries held (disk plus appends).
func (cf *CacheFile) Len() int {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return len(cf.entries)
}

// Loaded returns the number of distinct entries found on disk at open
// time, before any Append of the current process.
func (cf *CacheFile) Loaded() int { return cf.loaded }

// Path returns the file path the cache persists to.
func (cf *CacheFile) Path() string { return cf.path }

// Sync flushes pending appends to stable storage.
func (cf *CacheFile) Sync() error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.closed {
		return os.ErrClosed
	}
	return cf.f.Sync()
}

// Close syncs, releases the lock and closes the file. Further Appends
// fail with os.ErrClosed.
func (cf *CacheFile) Close() error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.closed {
		return nil
	}
	cf.closed = true
	serr := cf.f.Sync()
	unlockCacheFile(cf.f)
	cerr := cf.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// appendCacheRecord encodes one record onto buf: the fixed prefix, the
// rails, and the FNV-1a checksum of everything preceding it.
func appendCacheRecord(buf []byte, key uint64, ent cacheEntry) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ent.rails)))
	buf = binary.LittleEndian.AppendUint64(buf, key)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ent.obj))
	for _, r := range ent.rails {
		buf = binary.LittleEndian.AppendUint64(buf, r.hash)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.timeSI))
	}
	return binary.LittleEndian.AppendUint64(buf, fnv1aSum(buf[start:]))
}

// decodeCacheRecord parses the record at off. ok is false when the
// record is incomplete, claims an absurd rail count, or fails its
// checksum — the caller treats the position as the torn tail.
func decodeCacheRecord(data []byte, off int64) (key uint64, ent cacheEntry, next int64, ok bool) {
	if off+4 > int64(len(data)) {
		return 0, cacheEntry{}, 0, false
	}
	nRails := int64(binary.LittleEndian.Uint32(data[off:]))
	if nRails > maxCacheFileRails {
		return 0, cacheEntry{}, 0, false
	}
	body := 4 + 8 + 8 + nRails*16
	if off+body+8 > int64(len(data)) {
		return 0, cacheEntry{}, 0, false
	}
	if binary.LittleEndian.Uint64(data[off+body:]) != fnv1aSum(data[off:off+body]) {
		return 0, cacheEntry{}, 0, false
	}
	key = binary.LittleEndian.Uint64(data[off+4:])
	ent.obj = int64(binary.LittleEndian.Uint64(data[off+12:]))
	if nRails > 0 {
		ent.rails = make([]cachedRail, nRails)
		p := off + 20
		for i := range ent.rails {
			ent.rails[i].hash = binary.LittleEndian.Uint64(data[p:])
			ent.rails[i].timeSI = int64(binary.LittleEndian.Uint64(data[p+8:]))
			p += 16
		}
	}
	return key, ent, off + body + 8, true
}

// fnv1aSum is the 64-bit FNV-1a of b — the same family as the
// composition keys, inlined to keep record encoding allocation-free.
func fnv1aSum(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
