package sicheck

import (
	"strings"
	"testing"
)

// testInstance: two rails, three groups. Group A (core 1, rail 0) and
// group B (core 2, rail 1) are rail-disjoint; group C (cores 1 and 2)
// spans both rails. WOC 8 everywhere, width 4, Bypass 1, Overhead 3.
// Per-pattern costs: A on rail 0: ceil(8/4) + 1 bypass (core 3) + 3 =
// 6; 10 patterns = 60 cycles.
func testInstance() *Instance {
	return &Instance{
		WOC: map[int]int{1: 8, 2: 8, 3: 8, 4: 8},
		Rails: []Rail{
			{Width: 4, Cores: []int{1, 3}},
			{Width: 4, Cores: []int{2, 4}},
		},
		Groups: []Group{
			{Name: "A", Cores: []int{1}, Patterns: 10},
			{Name: "B", Cores: []int{2}, Patterns: 10},
			{Name: "C", Cores: []int{1, 2}, Patterns: 10},
		},
		Bypass:   1,
		Overhead: 3,
	}
}

func TestCheckAcceptsLegalSchedule(t *testing.T) {
	inst := testInstance()
	// A and B in parallel (disjoint rails), then C on both rails.
	slots := []Slot{
		{Group: "A", Begin: 0, End: 60},
		{Group: "B", Begin: 0, End: 60},
		{Group: "C", Begin: 60, End: 120},
	}
	if err := inst.Check(slots, 120); err != nil {
		t.Fatalf("legal schedule rejected: %v", err)
	}
}

func TestCheckRejectsBrokenSchedules(t *testing.T) {
	cases := []struct {
		name  string
		tweak func(inst *Instance) ([]Slot, int64)
		want  string
	}{
		{
			name: "rail overlap",
			tweak: func(inst *Instance) ([]Slot, int64) {
				// C overlaps A on rail 0.
				return []Slot{
					{Group: "A", Begin: 0, End: 60},
					{Group: "B", Begin: 120, End: 180},
					{Group: "C", Begin: 30, End: 90},
				}, 180
			},
			want: "overlap on rail",
		},
		{
			name: "wrong duration",
			tweak: func(inst *Instance) ([]Slot, int64) {
				return []Slot{
					{Group: "A", Begin: 0, End: 59},
					{Group: "B", Begin: 0, End: 60},
					{Group: "C", Begin: 60, End: 120},
				}, 120
			},
			want: "cost model says",
		},
		{
			name: "power over budget",
			tweak: func(inst *Instance) ([]Slot, int64) {
				// A and B overlap: 8 + 8 > 15.
				inst.PowerBudget = 15
				return []Slot{
					{Group: "A", Begin: 0, End: 60},
					{Group: "B", Begin: 0, End: 60},
					{Group: "C", Begin: 60, End: 120},
				}, 120
			},
			want: "exceeds budget",
		},
		{
			name: "power override over budget",
			tweak: func(inst *Instance) ([]Slot, int64) {
				// Overrides push the same overlap to 30+30 > 40.
				inst.PowerBudget = 40
				inst.CorePower = map[int]int64{1: 30, 2: 30}
				return []Slot{
					{Group: "A", Begin: 0, End: 60},
					{Group: "B", Begin: 0, End: 60},
					{Group: "C", Begin: 60, End: 120},
				}, 120
			},
			want: "exceeds budget",
		},
		{
			name: "precedence violated",
			tweak: func(inst *Instance) ([]Slot, int64) {
				// Core 2's groups must precede core 1's: B before A, and
				// C (contains both) is exempt.
				inst.Precedences = [][2]int{{2, 1}}
				return []Slot{
					{Group: "A", Begin: 0, End: 60},
					{Group: "B", Begin: 0, End: 60},
					{Group: "C", Begin: 60, End: 120},
				}, 120
			},
			want: "Precede 2 1 violated",
		},
		{
			name: "exclusion violated",
			tweak: func(inst *Instance) ([]Slot, int64) {
				inst.Exclusions = [][]int{{1, 2}}
				return []Slot{
					{Group: "A", Begin: 0, End: 60},
					{Group: "B", Begin: 0, End: 60},
					{Group: "C", Begin: 60, End: 120},
				}, 120
			},
			want: "Exclude [1 2] violated",
		},
		{
			name: "wrong makespan",
			tweak: func(inst *Instance) ([]Slot, int64) {
				return []Slot{
					{Group: "A", Begin: 0, End: 60},
					{Group: "B", Begin: 0, End: 60},
					{Group: "C", Begin: 60, End: 120},
				}, 110
			},
			want: "claimed makespan",
		},
		{
			name: "missing group",
			tweak: func(inst *Instance) ([]Slot, int64) {
				return []Slot{
					{Group: "A", Begin: 0, End: 60},
					{Group: "B", Begin: 0, End: 60},
				}, 60
			},
			want: "not scheduled",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := testInstance()
			slots, total := tc.tweak(inst)
			err := inst.Check(slots, total)
			if err == nil {
				t.Fatalf("broken schedule accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestPrecedenceBothEndpointExempt pins the exemption rule: a group
// containing both cores of an edge satisfies it internally and must
// not be reported against either side.
func TestPrecedenceBothEndpointExempt(t *testing.T) {
	inst := testInstance()
	inst.Precedences = [][2]int{{1, 2}}
	// C contains cores 1 and 2; it must be allowed to run before,
	// after, or across anything. A (core 1) must still precede B
	// (core 2): here A ends at 60, B starts at 60 — legal.
	slots := []Slot{
		{Group: "A", Begin: 0, End: 60},
		{Group: "B", Begin: 60, End: 120},
		{Group: "C", Begin: 120, End: 180},
	}
	if err := inst.Check(slots, 180); err != nil {
		t.Fatalf("exempt schedule rejected: %v", err)
	}
	// Flip A and B: now the edge is violated.
	slots = []Slot{
		{Group: "B", Begin: 0, End: 60},
		{Group: "A", Begin: 60, End: 120},
		{Group: "C", Begin: 120, End: 180},
	}
	if err := inst.Check(slots, 180); err == nil {
		t.Fatal("violated precedence accepted")
	}
}

// TestZeroDurationExempt pins the zero-duration exemption: a
// zero-pattern group occupies nothing and is exempt from rail, power,
// precedence and exclusion checks.
func TestZeroDurationExempt(t *testing.T) {
	inst := testInstance()
	inst.Groups[2].Patterns = 0 // C takes zero time
	inst.PowerBudget = 16
	inst.Precedences = [][2]int{{2, 1}} // would order C after B if not exempt
	inst.Exclusions = [][]int{{1, 2}}   // would forbid C overlapping A/B
	slots := []Slot{
		{Group: "B", Begin: 0, End: 60},
		{Group: "A", Begin: 60, End: 120},
		{Group: "C", Begin: 0, End: 0},
	}
	if err := inst.Check(slots, 120); err != nil {
		t.Fatalf("zero-duration slot not exempt: %v", err)
	}
}
