// Package sicheck is the independent constraint checker of the
// generative differential harness: given a plain-data description of a
// scheduling instance and a finished schedule, it re-derives every
// property the scheduler is supposed to guarantee — slot durations from
// the paper's cost model, rail exclusivity, the power budget, and the
// core-level precedence and exclusion semantics — from first
// principles.
//
// The package intentionally shares no code (and no types) with
// internal/sischedule: it has its own ceiling division, its own
// bottleneck-rail scan, and it checks precedence and exclusion against
// the raw core-level constraint vocabulary rather than the scheduler's
// lifted group-index form. Everything is written for obviousness, not
// speed — O(n^2) scans with no incremental state — so a disagreement
// between the two implementations always indicts the clever one. See
// DESIGN.md ("Generator/checker independence").
package sicheck

import "fmt"

// Rail is one TestRail: a width and the IDs of the cores it hosts.
type Rail struct {
	Width int
	Cores []int
}

// Group is one SI test group.
type Group struct {
	Name     string
	Cores    []int
	Patterns int64
}

// Slot is one scheduled group, matched to Groups by name.
type Slot struct {
	Group      string
	Begin, End int64
}

// Instance is the plain-data description of a constrained scheduling
// instance.
type Instance struct {
	// WOC maps a core ID to its wrapper output cell count.
	WOC map[int]int

	Rails  []Rail
	Groups []Group

	// Bypass and Overhead are the cost model's per-pattern constants.
	Bypass, Overhead int64

	// PowerBudget caps the summed power of concurrently running
	// groups; 0 means unlimited.
	PowerBudget int64

	// CorePower overrides a core's test power; cores not in the map
	// default to their WOC.
	CorePower map[int]int64

	// Precedences holds core-level edges [before, after]: every group
	// involving `before` must finish before any group involving
	// `after` starts, except groups containing both cores (internally
	// satisfied) and zero-duration groups.
	Precedences [][2]int

	// Exclusions holds core-level sets: no two distinct groups each
	// involving a core of one set may overlap in time.
	Exclusions [][]int
}

func ceil(a, b int64) int64 {
	q := a / b
	if q*b < a {
		q++
	}
	return q
}

func (inst *Instance) power(coreID int) int64 {
	if p, ok := inst.CorePower[coreID]; ok {
		return p
	}
	return int64(inst.WOC[coreID])
}

func contains(cores []int, id int) bool {
	for _, c := range cores {
		if c == id {
			return true
		}
	}
	return false
}

// Duration recomputes group g's testing time on the instance's rails:
// for every rail hosting at least one group core, the per-pattern cost
// is the sum of ceil(WOC/width) over the cores on the rail that are in
// the group, plus Bypass for each hosted core not in the group, plus
// Overhead; the group's time is Patterns times the worst rail. A group
// touching no rail takes zero time.
func (inst *Instance) Duration(g *Group) int64 {
	var worst int64
	for _, r := range inst.Rails {
		var shift int64
		skipped := int64(0)
		involved := false
		for _, id := range r.Cores {
			if contains(g.Cores, id) {
				shift += ceil(int64(inst.WOC[id]), int64(r.Width))
				involved = true
			} else {
				skipped++
			}
		}
		if !involved {
			continue
		}
		t := g.Patterns * (shift + inst.Bypass*skipped + inst.Overhead)
		if t > worst {
			worst = t
		}
	}
	return worst
}

// GroupPower recomputes group g's test power: the sum of its cores'
// powers (duplicate core IDs counted once).
func (inst *Instance) GroupPower(g *Group) int64 {
	var p int64
	for i, id := range g.Cores {
		if !contains(g.Cores[:i], id) {
			p += inst.power(id)
		}
	}
	return p
}

// rails returns the indices of the rails hosting at least one core of g.
func (inst *Instance) rails(g *Group) []int {
	var out []int
	for ri, r := range inst.Rails {
		for _, id := range r.Cores {
			if contains(g.Cores, id) {
				out = append(out, ri)
				break
			}
		}
	}
	return out
}

// Check validates a finished schedule against the instance. totalSI is
// the schedule's claimed makespan. It verifies, in order:
//
//  1. every group appears in exactly one slot and vice versa;
//  2. every slot's duration equals the recomputed group time, and
//     totalSI is the maximum slot end;
//  3. no two temporally overlapping slots share a rail;
//  4. at no slot start does the summed power of running groups exceed
//     the budget;
//  5. every core-level precedence edge is respected;
//  6. no two mutually exclusive groups overlap.
//
// Zero-duration slots are exempt from 3-6 (they occupy nothing).
func (inst *Instance) Check(slots []Slot, totalSI int64) error {
	bySlot := make(map[string]int, len(slots))
	for i, sl := range slots {
		if _, dup := bySlot[sl.Group]; dup {
			return fmt.Errorf("sicheck: group %q scheduled twice", sl.Group)
		}
		bySlot[sl.Group] = i
	}
	groupOf := make(map[string]*Group, len(inst.Groups))
	var maxEnd int64
	for gi := range inst.Groups {
		g := &inst.Groups[gi]
		if _, dup := groupOf[g.Name]; dup {
			return fmt.Errorf("sicheck: duplicate group name %q", g.Name)
		}
		groupOf[g.Name] = g
		si, ok := bySlot[g.Name]
		if !ok {
			return fmt.Errorf("sicheck: group %q not scheduled", g.Name)
		}
		sl := slots[si]
		if sl.Begin < 0 || sl.End < sl.Begin {
			return fmt.Errorf("sicheck: group %q has slot [%d, %d)", g.Name, sl.Begin, sl.End)
		}
		if want := inst.Duration(g); sl.End-sl.Begin != want {
			return fmt.Errorf("sicheck: group %q runs %d cycles, cost model says %d", g.Name, sl.End-sl.Begin, want)
		}
		if sl.End > maxEnd {
			maxEnd = sl.End
		}
	}
	for name := range bySlot {
		if _, ok := groupOf[name]; !ok {
			return fmt.Errorf("sicheck: slot for unknown group %q", name)
		}
	}
	if totalSI != maxEnd {
		return fmt.Errorf("sicheck: claimed makespan %d, slots end at %d", totalSI, maxEnd)
	}

	// run[i] is slot i restated with its group and rails, zero-duration
	// slots dropped.
	type runSlot struct {
		g          *Group
		begin, end int64
		rails      []int
	}
	var run []runSlot
	for _, sl := range slots {
		if sl.End == sl.Begin {
			continue
		}
		g := groupOf[sl.Group]
		run = append(run, runSlot{g: g, begin: sl.Begin, end: sl.End, rails: inst.rails(g)})
	}
	overlap := func(a, b *runSlot) bool {
		return a.begin < b.end && b.begin < a.end
	}

	for i := range run {
		for j := i + 1; j < len(run); j++ {
			if !overlap(&run[i], &run[j]) {
				continue
			}
			for _, ra := range run[i].rails {
				for _, rb := range run[j].rails {
					if ra == rb {
						return fmt.Errorf("sicheck: groups %q and %q overlap on rail %d", run[i].g.Name, run[j].g.Name, ra)
					}
				}
			}
		}
	}

	if inst.PowerBudget > 0 {
		for i := range run {
			var inUse int64
			for j := range run {
				if run[j].begin <= run[i].begin && run[i].begin < run[j].end {
					inUse += inst.GroupPower(run[j].g)
				}
			}
			if inUse > inst.PowerBudget {
				return fmt.Errorf("sicheck: power %d in use at t=%d exceeds budget %d", inUse, run[i].begin, inst.PowerBudget)
			}
		}
	}

	for _, pr := range inst.Precedences {
		before, after := pr[0], pr[1]
		for i := range run {
			gb := run[i].g
			if !contains(gb.Cores, before) || contains(gb.Cores, after) {
				continue
			}
			for j := range run {
				ga := run[j].g
				if ga == gb || !contains(ga.Cores, after) || contains(ga.Cores, before) {
					continue
				}
				if run[i].end > run[j].begin {
					return fmt.Errorf("sicheck: Precede %d %d violated: %q ends at %d after %q starts at %d",
						before, after, gb.Name, run[i].end, ga.Name, run[j].begin)
				}
			}
		}
	}

	for _, set := range inst.Exclusions {
		inSet := func(g *Group) bool {
			for _, id := range set {
				if contains(g.Cores, id) {
					return true
				}
			}
			return false
		}
		for i := range run {
			if !inSet(run[i].g) {
				continue
			}
			for j := i + 1; j < len(run); j++ {
				if inSet(run[j].g) && overlap(&run[i], &run[j]) {
					return fmt.Errorf("sicheck: Exclude %v violated: %q and %q overlap", set, run[i].g.Name, run[j].g.Name)
				}
			}
		}
	}
	return nil
}
