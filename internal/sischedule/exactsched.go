package sischedule

import (
	"context"
	"fmt"
	"sort"

	"sitam/internal/obs"
	"sitam/internal/tam"
)

// Exact SI scheduling for small group counts. Algorithm 1 is a greedy
// first-fit list scheduler; for a handful of groups the optimal
// makespan can be found by branch-and-bound over the serial
// schedule-generation scheme: every permutation of the groups, each
// placed at its earliest rail-feasible start, enumerates all active
// schedules, which are known to contain an optimum for makespan
// objectives. Used by tests and the ablation study to bound Algorithm
// 1's optimality gap.

// MaxExactGroups bounds the instance size ExactSchedule accepts.
const MaxExactGroups = 10

// ExactSchedule returns the minimum-makespan SI testing time for the
// groups on the architecture (same cost model as ScheduleSITest) and
// the number of branch-and-bound nodes explored.
func ExactSchedule(a *tam.Architecture, groups []*Group, m Model) (int64, int, error) {
	t, nodes, _, err := ExactScheduleCtx(context.Background(), a, groups, m)
	return t, nodes, err
}

// ExactScheduleCtx is ExactSchedule as an anytime algorithm. The
// context is polled every 256 branch-and-bound nodes; on cancellation
// or deadline expiry the search stops and the best complete schedule
// found so far is returned with the partial flag set. Because the
// search enumerates complete active schedules, a partial result is a
// valid achievable makespan — an upper bound on the true optimum, never
// below it. If the context fires before any complete schedule was
// found, the context's error is returned.
func ExactScheduleCtx(ctx context.Context, a *tam.Architecture, groups []*Group, m Model) (int64, int, bool, error) {
	return ExactScheduleObs(ctx, a, groups, m, nil)
}

// ExactScheduleObs is ExactScheduleCtx with tracing: the search is
// bracketed in an "exact schedule" phase span whose PhaseEnd carries
// the optimal (or best-so-far) makespan and the explored node count,
// and an interruption additionally emits a deadline_hit event. A nil
// sink traces nothing.
func ExactScheduleObs(ctx context.Context, a *tam.Architecture, groups []*Group, m Model, sink obs.Sink) (int64, int, bool, error) {
	span := obs.Span(sink, "exact schedule")
	t, nodes, stopped, err := exactSchedule(ctx, a, groups, m)
	if sink != nil && err == nil {
		if stopped {
			sink.Emit(obs.Event{Type: obs.DeadlineHit, Phase: "exact schedule", Cause: obs.CtxCause(ctx.Err())})
		}
		span.End(t, int64(nodes))
	}
	return t, nodes, stopped, err
}

// ExactScheduleCons is ExactScheduleCtx under a compiled constraint
// set: branch-and-bound over precedence-feasible permutations, each job
// placed at its earliest start satisfying rail availability, power
// headroom over its whole duration, finished predecessors and idle
// exclusion partners. This is the serial schedule-generation scheme of
// resource-constrained project scheduling, whose enumeration is known
// to contain an optimum for regular measures; it bounds the constrained
// Algorithm 1's optimality gap exactly as the unconstrained pair does.
// A nil cons falls back to the unconstrained search unchanged.
func ExactScheduleCons(ctx context.Context, a *tam.Architecture, groups []*Group, m Model, cons *Constraints) (int64, int, bool, error) {
	if cons == nil {
		return exactSchedule(ctx, a, groups, m)
	}
	return exactScheduleCons(ctx, a, groups, m, cons)
}

func exactSchedule(ctx context.Context, a *tam.Architecture, groups []*Group, m Model) (int64, int, bool, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, false, err
	}
	times, err := CalculateSITestTime(a, groups, m)
	if err != nil {
		return 0, 0, false, err
	}
	if len(a.Rails) > 64 {
		return 0, 0, false, fmt.Errorf("sischedule: exact scheduling supports at most 64 rails, got %d", len(a.Rails))
	}
	type job struct {
		dur  int64
		mask uint64
	}
	var jobs []job
	for i := range groups {
		if times[i].Time <= 0 || len(times[i].Rails) == 0 {
			continue
		}
		var mask uint64
		for _, ri := range times[i].Rails {
			mask |= 1 << uint(ri)
		}
		jobs = append(jobs, job{times[i].Time, mask})
	}
	if len(jobs) > MaxExactGroups {
		return 0, 0, false, fmt.Errorf("sischedule: exact scheduling limited to %d groups, got %d", MaxExactGroups, len(jobs))
	}
	if len(jobs) == 0 {
		return 0, 0, false, nil
	}

	// Per-rail total load: a lower bound on the makespan.
	railLoad := make([]int64, len(a.Rails))
	for _, j := range jobs {
		for r := 0; r < len(a.Rails); r++ {
			if j.mask&(1<<uint(r)) != 0 {
				railLoad[r] += j.dur
			}
		}
	}
	var best int64 = -1
	railFree := make([]int64, len(a.Rails))
	remaining := make([]int64, len(a.Rails))
	copy(remaining, railLoad)
	used := make([]bool, len(jobs))
	nodes := 0
	stopped := false

	var dfs func(done int, makespan int64)
	dfs = func(done int, makespan int64) {
		nodes++
		if nodes&255 == 0 && ctx.Err() != nil {
			stopped = true
		}
		if stopped {
			return
		}
		if best >= 0 {
			// Bound: any completion is at least the current makespan
			// and at least each rail's free time plus its remaining
			// load.
			lb := makespan
			for r := range railFree {
				if v := railFree[r] + remaining[r]; v > lb {
					lb = v
				}
			}
			if lb >= best {
				return
			}
		}
		if done == len(jobs) {
			if best < 0 || makespan < best {
				best = makespan
			}
			return
		}
		for i, j := range jobs {
			if used[i] {
				continue
			}
			if stopped {
				return
			}
			// Earliest feasible start: all involved rails free.
			var start int64
			for r := range railFree {
				if j.mask&(1<<uint(r)) != 0 && railFree[r] > start {
					start = railFree[r]
				}
			}
			end := start + j.dur
			// Apply.
			saved := make([]int64, 0, 4)
			for r := range railFree {
				if j.mask&(1<<uint(r)) != 0 {
					saved = append(saved, railFree[r])
					railFree[r] = end
					remaining[r] -= j.dur
				}
			}
			used[i] = true
			ms := makespan
			if end > ms {
				ms = end
			}
			dfs(done+1, ms)
			// Undo.
			used[i] = false
			k := 0
			for r := range railFree {
				if j.mask&(1<<uint(r)) != 0 {
					railFree[r] = saved[k]
					remaining[r] += j.dur
					k++
				}
			}
		}
	}
	dfs(0, 0)
	if stopped && best < 0 {
		return 0, nodes, false, ctx.Err()
	}
	return best, nodes, stopped, nil
}

func exactScheduleCons(ctx context.Context, a *tam.Architecture, groups []*Group, m Model, cons *Constraints) (int64, int, bool, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, false, err
	}
	times, err := CalculateSITestTime(a, groups, m)
	if err != nil {
		return 0, 0, false, err
	}
	if err := cons.Feasible(groups, times); err != nil {
		return 0, 0, false, err
	}
	if len(a.Rails) > 64 {
		return 0, 0, false, fmt.Errorf("sischedule: exact scheduling supports at most 64 rails, got %d", len(a.Rails))
	}
	type job struct {
		dur   int64
		mask  uint64
		gi    int32
		power int64
		preds []int32 // job indices that must be placed and finished first
		excl  []int32 // job indices that may not overlap
	}
	var jobs []job
	jobOf := make([]int32, len(groups)) // group index -> job index, -1 = zero slot
	for i := range jobOf {
		jobOf[i] = -1
	}
	for i, g := range groups {
		if times[i].Time <= 0 || len(times[i].Rails) == 0 || g.Patterns == 0 {
			continue
		}
		var mask uint64
		for _, ri := range times[i].Rails {
			mask |= 1 << uint(ri)
		}
		jobOf[i] = int32(len(jobs))
		jobs = append(jobs, job{dur: times[i].Time, mask: mask, gi: int32(i), power: cons.GroupPower[i]})
	}
	if len(jobs) > MaxExactGroups {
		return 0, 0, false, fmt.Errorf("sischedule: exact scheduling limited to %d groups, got %d", MaxExactGroups, len(jobs))
	}
	if len(jobs) == 0 {
		return 0, 0, false, nil
	}
	// Lift the group-level relations to job indices; relations touching
	// zero-duration groups are satisfied at t=0 and drop out.
	for ji := range jobs {
		gi := jobs[ji].gi
		for _, p := range cons.preds[gi] {
			if j := jobOf[p]; j >= 0 {
				jobs[ji].preds = append(jobs[ji].preds, j)
			}
		}
		for _, e := range cons.excl[gi] {
			if j := jobOf[e]; j >= 0 {
				jobs[ji].excl = append(jobs[ji].excl, j)
			}
		}
	}

	railLoad := make([]int64, len(a.Rails))
	for _, j := range jobs {
		for r := 0; r < len(a.Rails); r++ {
			if j.mask&(1<<uint(r)) != 0 {
				railLoad[r] += j.dur
			}
		}
	}
	var best int64 = -1
	railFree := make([]int64, len(a.Rails))
	remaining := make([]int64, len(a.Rails))
	copy(remaining, railLoad)
	type placed struct {
		begin, end int64
		job        int32
		power      int64
	}
	placedJobs := make([]placed, 0, len(jobs))
	used := make([]bool, len(jobs))
	endAt := make([]int64, len(jobs))
	nodes := 0
	stopped := false

	// feasibleAt reports whether job j can occupy [t, t+dur) against the
	// placed intervals: no overlapping exclusion partner, and the power
	// profile (piecewise constant, changing only at interval boundaries)
	// stays within budget over the whole window.
	feasibleAt := func(j *job, t int64) bool {
		end := t + j.dur
		for _, e := range j.excl {
			if used[e] {
				for pi := range placedJobs {
					p := &placedJobs[pi]
					if p.job == e && p.begin < end && t < p.end {
						return false
					}
				}
			}
		}
		if cons.PowerBudget > 0 {
			probe := func(q int64) bool {
				inUse := j.power
				for pi := range placedJobs {
					p := &placedJobs[pi]
					if p.begin <= q && q < p.end {
						inUse += p.power
					}
				}
				return inUse <= cons.PowerBudget
			}
			if !probe(t) {
				return false
			}
			for pi := range placedJobs {
				if b := placedJobs[pi].begin; t < b && b < end && !probe(b) {
					return false
				}
			}
		}
		return true
	}

	var dfs func(done int, makespan int64)
	dfs = func(done int, makespan int64) {
		nodes++
		if nodes&255 == 0 && ctx.Err() != nil {
			stopped = true
		}
		if stopped {
			return
		}
		if best >= 0 {
			lb := makespan
			for r := range railFree {
				if v := railFree[r] + remaining[r]; v > lb {
					lb = v
				}
			}
			if lb >= best {
				return
			}
		}
		if done == len(jobs) {
			if best < 0 || makespan < best {
				best = makespan
			}
			return
		}
	nextJob:
		for i := range jobs {
			j := &jobs[i]
			if used[i] {
				continue
			}
			if stopped {
				return
			}
			// Earliest start: involved rails free and predecessors done.
			// Precedence-infeasible orders (a pred not yet placed) are
			// skipped; every topological order is still enumerated.
			var start int64
			for r := range railFree {
				if j.mask&(1<<uint(r)) != 0 && railFree[r] > start {
					start = railFree[r]
				}
			}
			for _, p := range j.preds {
				if !used[p] {
					continue nextJob
				}
				if endAt[p] > start {
					start = endAt[p]
				}
			}
			// Push the start right past infeasible windows. The profile
			// only improves at placed-interval ends, so those (plus the
			// base start) are the only candidates; past the last end all
			// intervals are over and the job runs alone.
			if !feasibleAt(j, start) {
				var ends []int64
				for pi := range placedJobs {
					if e := placedJobs[pi].end; e > start {
						ends = append(ends, e)
					}
				}
				sort.Slice(ends, func(x, y int) bool { return ends[x] < ends[y] })
				ok := false
				for _, e := range ends {
					if feasibleAt(j, e) {
						start = e
						ok = true
						break
					}
				}
				if !ok {
					continue // cannot place in this branch's order
				}
			}
			end := start + j.dur
			saved := make([]int64, 0, 4)
			for r := range railFree {
				if j.mask&(1<<uint(r)) != 0 {
					saved = append(saved, railFree[r])
					railFree[r] = end
					remaining[r] -= j.dur
				}
			}
			used[i] = true
			endAt[i] = end
			placedJobs = append(placedJobs, placed{begin: start, end: end, job: int32(i), power: j.power})
			ms := makespan
			if end > ms {
				ms = end
			}
			dfs(done+1, ms)
			placedJobs = placedJobs[:len(placedJobs)-1]
			used[i] = false
			k := 0
			for r := range railFree {
				if j.mask&(1<<uint(r)) != 0 {
					railFree[r] = saved[k]
					remaining[r] += j.dur
					k++
				}
			}
		}
	}
	dfs(0, 0)
	if stopped && best < 0 {
		return 0, nodes, false, ctx.Err()
	}
	if best < 0 {
		return 0, nodes, false, fmt.Errorf("sischedule: no feasible constrained schedule for %d groups", len(jobs))
	}
	return best, nodes, stopped, nil
}
