package sischedule

import (
	"context"
	"fmt"

	"sitam/internal/obs"
	"sitam/internal/tam"
)

// Exact SI scheduling for small group counts. Algorithm 1 is a greedy
// first-fit list scheduler; for a handful of groups the optimal
// makespan can be found by branch-and-bound over the serial
// schedule-generation scheme: every permutation of the groups, each
// placed at its earliest rail-feasible start, enumerates all active
// schedules, which are known to contain an optimum for makespan
// objectives. Used by tests and the ablation study to bound Algorithm
// 1's optimality gap.

// MaxExactGroups bounds the instance size ExactSchedule accepts.
const MaxExactGroups = 10

// ExactSchedule returns the minimum-makespan SI testing time for the
// groups on the architecture (same cost model as ScheduleSITest) and
// the number of branch-and-bound nodes explored.
func ExactSchedule(a *tam.Architecture, groups []*Group, m Model) (int64, int, error) {
	t, nodes, _, err := ExactScheduleCtx(context.Background(), a, groups, m)
	return t, nodes, err
}

// ExactScheduleCtx is ExactSchedule as an anytime algorithm. The
// context is polled every 256 branch-and-bound nodes; on cancellation
// or deadline expiry the search stops and the best complete schedule
// found so far is returned with the partial flag set. Because the
// search enumerates complete active schedules, a partial result is a
// valid achievable makespan — an upper bound on the true optimum, never
// below it. If the context fires before any complete schedule was
// found, the context's error is returned.
func ExactScheduleCtx(ctx context.Context, a *tam.Architecture, groups []*Group, m Model) (int64, int, bool, error) {
	return ExactScheduleObs(ctx, a, groups, m, nil)
}

// ExactScheduleObs is ExactScheduleCtx with tracing: the search is
// bracketed in an "exact schedule" phase span whose PhaseEnd carries
// the optimal (or best-so-far) makespan and the explored node count,
// and an interruption additionally emits a deadline_hit event. A nil
// sink traces nothing.
func ExactScheduleObs(ctx context.Context, a *tam.Architecture, groups []*Group, m Model, sink obs.Sink) (int64, int, bool, error) {
	span := obs.Span(sink, "exact schedule")
	t, nodes, stopped, err := exactSchedule(ctx, a, groups, m)
	if sink != nil && err == nil {
		if stopped {
			sink.Emit(obs.Event{Type: obs.DeadlineHit, Phase: "exact schedule", Cause: obs.CtxCause(ctx.Err())})
		}
		span.End(t, int64(nodes))
	}
	return t, nodes, stopped, err
}

func exactSchedule(ctx context.Context, a *tam.Architecture, groups []*Group, m Model) (int64, int, bool, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, false, err
	}
	times, err := CalculateSITestTime(a, groups, m)
	if err != nil {
		return 0, 0, false, err
	}
	if len(a.Rails) > 64 {
		return 0, 0, false, fmt.Errorf("sischedule: exact scheduling supports at most 64 rails, got %d", len(a.Rails))
	}
	type job struct {
		dur  int64
		mask uint64
	}
	var jobs []job
	for i := range groups {
		if times[i].Time <= 0 || len(times[i].Rails) == 0 {
			continue
		}
		var mask uint64
		for _, ri := range times[i].Rails {
			mask |= 1 << uint(ri)
		}
		jobs = append(jobs, job{times[i].Time, mask})
	}
	if len(jobs) > MaxExactGroups {
		return 0, 0, false, fmt.Errorf("sischedule: exact scheduling limited to %d groups, got %d", MaxExactGroups, len(jobs))
	}
	if len(jobs) == 0 {
		return 0, 0, false, nil
	}

	// Per-rail total load: a lower bound on the makespan.
	railLoad := make([]int64, len(a.Rails))
	for _, j := range jobs {
		for r := 0; r < len(a.Rails); r++ {
			if j.mask&(1<<uint(r)) != 0 {
				railLoad[r] += j.dur
			}
		}
	}
	var best int64 = -1
	railFree := make([]int64, len(a.Rails))
	remaining := make([]int64, len(a.Rails))
	copy(remaining, railLoad)
	used := make([]bool, len(jobs))
	nodes := 0
	stopped := false

	var dfs func(done int, makespan int64)
	dfs = func(done int, makespan int64) {
		nodes++
		if nodes&255 == 0 && ctx.Err() != nil {
			stopped = true
		}
		if stopped {
			return
		}
		if best >= 0 {
			// Bound: any completion is at least the current makespan
			// and at least each rail's free time plus its remaining
			// load.
			lb := makespan
			for r := range railFree {
				if v := railFree[r] + remaining[r]; v > lb {
					lb = v
				}
			}
			if lb >= best {
				return
			}
		}
		if done == len(jobs) {
			if best < 0 || makespan < best {
				best = makespan
			}
			return
		}
		for i, j := range jobs {
			if used[i] {
				continue
			}
			if stopped {
				return
			}
			// Earliest feasible start: all involved rails free.
			var start int64
			for r := range railFree {
				if j.mask&(1<<uint(r)) != 0 && railFree[r] > start {
					start = railFree[r]
				}
			}
			end := start + j.dur
			// Apply.
			saved := make([]int64, 0, 4)
			for r := range railFree {
				if j.mask&(1<<uint(r)) != 0 {
					saved = append(saved, railFree[r])
					railFree[r] = end
					remaining[r] -= j.dur
				}
			}
			used[i] = true
			ms := makespan
			if end > ms {
				ms = end
			}
			dfs(done+1, ms)
			// Undo.
			used[i] = false
			k := 0
			for r := range railFree {
				if j.mask&(1<<uint(r)) != 0 {
					railFree[r] = saved[k]
					remaining[r] += j.dur
					k++
				}
			}
		}
	}
	dfs(0, 0)
	if stopped && best < 0 {
		return 0, nodes, false, ctx.Err()
	}
	return best, nodes, stopped, nil
}
