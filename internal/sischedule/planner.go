package sischedule

// The Planner is the incremental counterpart of CalculateSITestTime +
// scheduleSITest: a cost-only Algorithm-1 evaluator that memoizes the
// per-rail SI cost contributions by the rail's (width, cores)
// composition hash. The optimizer's hot loops mutate only one or two
// rails per candidate, so almost every rail of a candidate hits the
// memo and only the rails that actually changed are recosted; the
// Algorithm-1 packing itself is rebuilt from the memoized group times,
// which is cheap (O(groups²) with tiny constants) compared to the
// per-core cost scan it replaces.
//
// The memo key is tam.Rail.Hash(), which identifies the (width, cores)
// composition — exactly the inputs of a rail's per-pattern cost — so a
// memo hit is always semantically exact. The planner produces results
// byte-identical to ScheduleSITest: same group times, same bottleneck
// tie-breaks (first strict maximum in rail-index order), same
// first-fit packing, same per-rail TimeSI side effects, same deadlock
// error. The differential suite in internal/core pins this.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sitam/internal/soc"
	"sitam/internal/tam"
)

// plannerMemoCap bounds the number of memoized rail compositions; when
// exceeded the memo is flushed wholesale (the entries are cheap to
// recompute and the epoch-style flush keeps the planner allocation-free
// in steady state).
const plannerMemoCap = 1 << 16

// railTouch is one group's cost contribution of a memoized rail: the
// group index and the rail's per-pattern cycle cost for that group.
type railTouch struct {
	group      int32
	perPattern int64
}

// railInfo is the memoized cost profile of one rail composition.
type railInfo struct {
	touches []railTouch
}

// coreMeta is the per-core data the cost model needs: the core's WOC
// and the groups it belongs to.
type coreMeta struct {
	woc    int64
	groups []int32
}

// CostStats reports how much of one Cost call was recomputed versus
// served from the memo.
type CostStats struct {
	// RailsRecomputed / RailsMemoized count rail cost profiles.
	RailsRecomputed int
	RailsMemoized   int

	// GroupsRecomputed counts groups whose time changed hands through at
	// least one recomputed rail; GroupsMemoized is the rest.
	GroupsRecomputed int
	GroupsMemoized   int
}

// Planner evaluates the SI scheduling cost of architectures over a
// fixed group set and cost model, memoizing per-rail cost profiles by
// composition hash. It is safe for concurrent use; concurrent misses of
// the same composition may compute the profile twice, which is benign
// (the profiles are pure values).
type Planner struct {
	groups []*Group
	model  Model
	cons   *Constraints

	initOnce sync.Once
	initErr  error
	cores    map[int]*coreMeta

	memo      atomic.Pointer[sync.Map] // uint64 -> *railInfo
	memoCount atomic.Int64

	scratch sync.Pool
}

// NewPlanner builds a planner over the given groups and model. The
// per-core metadata is derived lazily from the first architecture's
// SOC; all architectures passed to Cost must share that SOC.
func NewPlanner(groups []*Group, m Model) *Planner {
	return NewPlannerCons(groups, m, nil)
}

// NewPlannerCons is NewPlanner under a compiled constraint set: Cost
// packs with the constrained Algorithm 1 (power, precedence,
// exclusion), matching ScheduleSITestCons's TotalSI exactly. The rail
// cost memo is unaffected — constraints only shape the packing, never
// a rail's per-pattern cost. A nil cons is byte-identical to
// NewPlanner.
func NewPlannerCons(groups []*Group, m Model, cons *Constraints) *Planner {
	p := &Planner{groups: groups, model: m, cons: cons}
	p.memo.Store(new(sync.Map))
	p.scratch.New = func() any {
		return &costScratch{perGroup: make([][]railContrib, len(groups))}
	}
	return p
}

func (p *Planner) buildMeta(s *soc.SOC) {
	cores := make(map[int]*coreMeta, s.NumCores())
	for _, c := range s.Cores() {
		cores[c.ID] = &coreMeta{woc: int64(c.WOC())}
	}
	for gi, g := range p.groups {
		for _, id := range g.Cores {
			cm, ok := cores[id]
			if !ok {
				p.initErr = fmt.Errorf("sischedule: group %q involves unknown core %d", g.Name, id)
				return
			}
			cm.groups = append(cm.groups, int32(gi))
		}
	}
	p.cores = cores
}

// railContrib is one rail's contribution to a group, assembled per
// evaluation in rail-index order.
type railContrib struct {
	rail int32
	time int64 // Patterns × perPattern
}

// costScratch holds the reusable per-evaluation state of one Cost call.
type costScratch struct {
	// Assembly state (indexed by group).
	perGroup   [][]railContrib
	groupTime  []int64
	groupDirty []bool

	// Packing state (indexed by rail / queue position).
	railSI []int64
	busy   []bool
	queue  []int32
	active []activeRun

	// Constrained packing state (indexed by group; used only when the
	// planner carries constraints). endOf[g] is -1 while unscheduled.
	endOf    []int64
	runningG []bool

	// computeRail state (indexed by group, epoch-marked).
	shift    []int64
	nCare    []int32
	gEpoch   []uint32
	epoch    uint32
	touchedG []int32
}

type activeRun struct {
	end   int64
	group int32
}

func (sc *costScratch) reset(nGroups, nRails int) {
	for i := range sc.perGroup {
		sc.perGroup[i] = sc.perGroup[i][:0]
	}
	if cap(sc.groupTime) < nGroups {
		sc.groupTime = make([]int64, nGroups)
		sc.groupDirty = make([]bool, nGroups)
		sc.shift = make([]int64, nGroups)
		sc.nCare = make([]int32, nGroups)
		sc.gEpoch = make([]uint32, nGroups)
	}
	sc.groupTime = sc.groupTime[:nGroups]
	sc.groupDirty = sc.groupDirty[:nGroups]
	for i := range sc.groupDirty {
		sc.groupTime[i] = 0
		sc.groupDirty[i] = false
	}
	if cap(sc.railSI) < nRails {
		sc.railSI = make([]int64, nRails)
		sc.busy = make([]bool, nRails)
	}
	sc.railSI = sc.railSI[:nRails]
	sc.busy = sc.busy[:nRails]
	for i := range sc.railSI {
		sc.railSI[i] = 0
		sc.busy[i] = false
	}
	sc.queue = sc.queue[:0]
	sc.active = sc.active[:0]
}

// computeRail builds the cost profile of one rail composition: for each
// group with care cores on the rail, the per-pattern cycle cost
//
//	Σ ceil(WOC/width) over care cores + Bypass·(don't-care cores) + Overhead
//
// identical to CalculateSITestTime's inner loop.
func (p *Planner) computeRail(r *tam.Rail, sc *costScratch) *railInfo {
	sc.epoch++
	sc.touchedG = sc.touchedG[:0]
	w := int64(r.Width)
	for _, id := range r.Cores {
		cm := p.cores[id]
		if cm == nil {
			// Rail cores outside the SOC carry no group membership and
			// contribute only to the bypass term, matching the original
			// lookup-miss behavior.
			continue
		}
		for _, g := range cm.groups {
			if sc.gEpoch[g] != sc.epoch {
				sc.gEpoch[g] = sc.epoch
				sc.shift[g] = 0
				sc.nCare[g] = 0
				sc.touchedG = append(sc.touchedG, g)
			}
			sc.shift[g] += (cm.woc + w - 1) / w
			sc.nCare[g]++
		}
	}
	info := &railInfo{touches: make([]railTouch, 0, len(sc.touchedG))}
	nCores := int64(len(r.Cores))
	for _, g := range sc.touchedG {
		perPattern := sc.shift[g] + p.model.Bypass*(nCores-int64(sc.nCare[g])) + p.model.Overhead
		info.touches = append(info.touches, railTouch{group: g, perPattern: perPattern})
	}
	return info
}

// railProfile returns the (possibly memoized) cost profile of rail r,
// recording memo statistics and marking recomputed groups in st/sc.
func (p *Planner) railProfile(r *tam.Rail, sc *costScratch, st *CostStats) *railInfo {
	h := r.Hash()
	memo := p.memo.Load()
	if v, ok := memo.Load(h); ok {
		st.RailsMemoized++
		return v.(*railInfo)
	}
	info := p.computeRail(r, sc)
	st.RailsRecomputed++
	for _, t := range info.touches {
		sc.groupDirty[t.group] = true
	}
	if _, loaded := memo.LoadOrStore(h, info); !loaded {
		if p.memoCount.Add(1) > plannerMemoCap {
			p.memo.Store(new(sync.Map))
			p.memoCount.Store(0)
		}
	}
	return info
}

// Cost evaluates the SI scheduling cost of a: it refreshes the
// architecture (recomputing only dirty rails), assembles each group's
// time from the memoized per-rail profiles, packs the groups with
// Algorithm 1, and refreshes every rail's TimeSI. The returned total is
// identical to ScheduleSITest's TotalSI.
func (p *Planner) Cost(a *tam.Architecture) (int64, CostStats, error) {
	p.initOnce.Do(func() { p.buildMeta(a.SOC) })
	var st CostStats
	if p.initErr != nil {
		return 0, st, p.initErr
	}
	a.Refresh()

	sc := p.scratch.Get().(*costScratch)
	defer p.scratch.Put(sc)
	sc.reset(len(p.groups), len(a.Rails))

	// Assemble group contributions in rail-index order, preserving the
	// original bottleneck tie-break (first strict maximum wins).
	for ri, r := range a.Rails {
		info := p.railProfile(r, sc, &st)
		for _, t := range info.touches {
			g := t.group
			sc.perGroup[g] = append(sc.perGroup[g], railContrib{rail: int32(ri), time: p.groups[g].Patterns * t.perPattern})
		}
	}
	for gi := range p.groups {
		var mx int64
		for _, c := range sc.perGroup[gi] {
			if c.time > mx {
				mx = c.time
			}
			sc.railSI[c.rail] += c.time
		}
		sc.groupTime[gi] = mx
		if sc.groupDirty[gi] {
			st.GroupsRecomputed++
		} else {
			st.GroupsMemoized++
		}
	}

	// Algorithm 1, cost only: first-fit packing of the groups onto the
	// rails, concurrent when rail sets are disjoint. Zero-pattern and
	// rail-less groups take no time and are skipped (scheduleSITest
	// records them as zero-length slots, which do not move TotalSI).
	// Under constraints the pick additionally requires power headroom,
	// finished predecessors and idle exclusion partners, exactly like
	// ScheduleSITestCons; skipped groups count as finished at t=0.
	cons := p.cons
	if cons != nil {
		if cap(sc.endOf) < len(p.groups) {
			sc.endOf = make([]int64, len(p.groups))
			sc.runningG = make([]bool, len(p.groups))
		}
		sc.endOf = sc.endOf[:len(p.groups)]
		sc.runningG = sc.runningG[:len(p.groups)]
		for i := range sc.endOf {
			sc.endOf[i] = -1
			sc.runningG[i] = false
		}
	}
	for gi, g := range p.groups {
		if g.Patterns == 0 || len(sc.perGroup[gi]) == 0 {
			if cons != nil {
				sc.endOf[gi] = 0
			}
			continue
		}
		if cons != nil && cons.PowerBudget > 0 && cons.GroupPower[gi] > cons.PowerBudget {
			return 0, st, fmt.Errorf("sischedule: group %q needs power %d > budget %d", g.Name, cons.GroupPower[gi], cons.PowerBudget)
		}
		sc.queue = append(sc.queue, int32(gi))
	}
	var total, currTime, powerInUse int64
	for len(sc.queue) > 0 {
		found := -1
		for qi, g := range sc.queue {
			if cons != nil && !cons.admissible(g, cons.GroupPower[g], powerInUse, currTime, sc.endOf, sc.runningG) {
				continue
			}
			ok := true
			for _, c := range sc.perGroup[g] {
				if sc.busy[c.rail] {
					ok = false
					break
				}
			}
			if ok {
				found = qi
				break
			}
		}
		if found >= 0 {
			g := sc.queue[found]
			sc.queue = append(sc.queue[:found], sc.queue[found+1:]...)
			end := currTime + sc.groupTime[g]
			for _, c := range sc.perGroup[g] {
				sc.busy[c.rail] = true
			}
			sc.active = append(sc.active, activeRun{end: end, group: g})
			if cons != nil {
				powerInUse += cons.GroupPower[g]
				sc.endOf[g] = end
				sc.runningG[g] = true
			}
			if end > total {
				total = end
			}
			continue
		}
		var next int64 = -1
		for _, r := range sc.active {
			if r.end > currTime && (next < 0 || r.end < next) {
				next = r.end
			}
		}
		if next < 0 {
			return 0, st, fmt.Errorf("sischedule: deadlock — %d groups unscheduled with no active group", len(sc.queue))
		}
		currTime = next
		keep := sc.active[:0]
		for _, r := range sc.active {
			if r.end > currTime {
				keep = append(keep, r)
			} else {
				for _, c := range sc.perGroup[r.group] {
					sc.busy[c.rail] = false
				}
				if cons != nil {
					powerInUse -= cons.GroupPower[r.group]
					sc.runningG[r.group] = false
				}
			}
		}
		sc.active = keep
	}

	for i := range a.Rails {
		a.Rails[i].SetTimeSI(sc.railSI[i])
	}
	return total, st, nil
}
