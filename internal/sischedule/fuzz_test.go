package sischedule

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/wrapper"
)

// nodeCountdownCtx makes Err fire after n polls, driving the exact
// scheduler's every-256-nodes interruption check deterministically.
type nodeCountdownCtx struct {
	context.Context
	n int
}

func (c *nodeCountdownCtx) Err() error {
	if c.n <= 0 {
		return context.DeadlineExceeded
	}
	c.n--
	return nil
}

// FuzzExactSchedule decodes an arbitrary byte string into a tiny SOC,
// architecture and group set and checks the exact scheduler's contract
// on it: it never panics, Algorithm 1 never beats it, and a search cut
// short at any node budget reports an achievable makespan — an upper
// bound that never undercuts the true optimum.
func FuzzExactSchedule(f *testing.F) {
	f.Add([]byte{3, 2, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{6, 3, 4, 0, 7, 2, 9, 1, 5, 8, 255, 0, 1, 2, 3})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		take := func() int {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return int(b)
		}

		nCores := 2 + take()%5
		s := &soc.SOC{Name: "fuzz", BusWidth: 4 + take()%8}
		for id := 1; id <= nCores; id++ {
			s.CoreList = append(s.CoreList, &soc.Core{
				ID: id, Inputs: 1 + take()%4, Outputs: 1 + take()%6,
				ScanChains: []int{1 + take()%8}, Patterns: 1 + take()%9,
			})
		}
		if s.Validate() != nil {
			t.Skip()
		}
		tt, err := wrapper.NewTimeTable(s, 8)
		if err != nil {
			t.Skip()
		}

		nRails := 1 + take()%3
		if nRails > nCores {
			nRails = nCores
		}
		railCores := make([][]int, nRails)
		for id := 1; id <= nCores; id++ {
			r := (take() + id) % nRails
			railCores[r] = append(railCores[r], id)
		}
		a := tam.New(s, tt)
		for _, cores := range railCores {
			if len(cores) > 0 {
				a.AddRail(cores, 1+take()%3)
			}
		}
		if a.Validate() != nil {
			t.Skip()
		}

		nGroups := 1 + take()%4
		var groups []*Group
		for g := 0; g < nGroups; g++ {
			mask := take()
			var cores []int
			for id := 1; id <= nCores; id++ {
				if mask&(1<<uint(id%8)) != 0 {
					cores = append(cores, id)
				}
			}
			if len(cores) == 0 {
				cores = []int{1 + g%nCores}
			}
			groups = append(groups, &Group{
				Name: fmt.Sprintf("G%d", g), Cores: cores, Patterns: int64(1 + take()%50),
			})
		}

		opt, _, err := ExactSchedule(a, groups, Model{})
		if err != nil {
			return // rejected instance (e.g. over the group limit): must not panic, nothing more to check
		}
		greedy, err := ScheduleSITest(a, groups, Model{})
		if err != nil {
			t.Fatalf("exact accepted but Algorithm 1 rejected: %v", err)
		}
		if greedy.TotalSI < opt {
			t.Fatalf("greedy makespan %d beats the exact optimum %d", greedy.TotalSI, opt)
		}

		for n := 0; n <= 3; n++ {
			ctx := &nodeCountdownCtx{Context: context.Background(), n: n}
			bound, _, partial, err := ExactScheduleCtx(ctx, a, groups, Model{})
			if err != nil {
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("n=%d: unexpected error %v", n, err)
				}
				continue
			}
			if bound < opt {
				t.Fatalf("n=%d: cut-short makespan %d undercuts the optimum %d (partial=%v)", n, bound, opt, partial)
			}
		}
	})
}
