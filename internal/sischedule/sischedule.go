// Package sischedule implements the paper's SI test scheduling for a
// given TestRail architecture: the CalculateSITestTime procedure
// (per-group testing time, Example 1 semantics) and Algorithm 1,
// ScheduleSITest (Fig. 5), which packs SI test groups onto the rails so
// that groups whose rail sets are disjoint run concurrently.
//
// The per-rail, per-pattern cost model: shifting one SI pattern of group
// s through rail r costs
//
//	Σ_{c ∈ C(r)∩C(s)} ceil(WOC_c / width(r))   (boundary shift)
//	+ Bypass · |C(r) \ C(s)|                    (don't-care core bypass)
//	+ Overhead                                  (launch + capture)
//
// cycles; the rail's time for the group is that times the group's
// pattern count, and the group's testing time is the maximum over its
// involved rails — the bottleneck rail (Example 1).
package sischedule

import (
	"fmt"
	"sort"

	"sitam/internal/obs"
	"sitam/internal/tam"
)

// Group is one SI test group: a set of involved cores and a compacted
// pattern count (the data structure of Fig. 4, left).
type Group struct {
	// Name labels the group in schedules and reports.
	Name string

	// Cores holds the IDs of the involved cores (the paper's C(s)),
	// sorted ascending.
	Cores []int

	// Patterns is the number of (compacted) SI test patterns.
	Patterns int64
}

// Clone returns a deep copy of the group.
func (g *Group) Clone() *Group {
	c := *g
	c.Cores = append([]int(nil), g.Cores...)
	return &c
}

// Model holds the per-pattern cost constants of the shift model. The
// zero value means zero bypass and zero overhead cycles; use
// DefaultModel for the constants the experiments assume.
type Model struct {
	// Bypass is the cycle cost per pattern of bypassing one don't-care
	// core on a rail.
	Bypass int64

	// Overhead is the per-pattern launch/capture cycle cost added to
	// every involved rail.
	Overhead int64
}

// DefaultModel returns the cost constants used throughout the
// experiments: 1 bypass cycle per skipped core, and 3 launch/capture
// cycles per pattern (two launch cycles for the vector pair plus one
// capture).
func DefaultModel() Model { return Model{Bypass: 1, Overhead: 3} }

// GroupTime is the outcome of CalculateSITestTime for one group.
type GroupTime struct {
	// Time is the group's SI testing time time_si(s): pattern count
	// times the bottleneck rail's per-pattern cycles.
	Time int64

	// Rails holds the indices (into the architecture's rail slice) of
	// the rails involved in the group — R_tam(s).
	Rails []int

	// Bottleneck is the index of the bottleneck rail r_btn(s), the
	// involved rail with the largest time.
	Bottleneck int

	// PerRail[i] is the rail Rails[i]'s own busy time for this group
	// (pattern count times that rail's per-pattern cycles). The
	// bottleneck entry equals Time.
	PerRail []int64
}

// CalculateSITestTime computes, for every group, its testing time under
// the given architecture (the paper's CalculateSITestTime procedure).
//
// The implementation is allocation-lean: core WOCs and group membership
// live in dense ID-indexed slices (core IDs are small in every
// benchmark SOC) with membership epoch-stamped per group instead of one
// map per group, and all groups' Rails/PerRail slices are carved out of
// two shared arenas. This function sits under the from-scratch
// evaluator and the optimizer's cost loops, so steady-state garbage is
// measurable end to end (see Benchmark_ScheduleSITest).
func CalculateSITestTime(a *tam.Architecture, groups []*Group, m Model) ([]GroupTime, error) {
	out := make([]GroupTime, len(groups))
	maxID := -1
	for _, c := range a.SOC.Cores() {
		if c.ID > maxID {
			maxID = c.ID
		}
	}
	// wocByID[id] is the core's WOC, or -1 for IDs that name no core.
	wocByID := make([]int64, maxID+1)
	for i := range wocByID {
		wocByID[i] = -1
	}
	for _, c := range a.SOC.Cores() {
		wocByID[c.ID] = int64(c.WOC())
	}
	// inGroup[id] == epoch marks membership in the current group; a new
	// epoch invalidates all marks at once, so the slice is written only
	// for the group's own cores.
	inGroup := make([]uint32, maxID+1)
	var epoch uint32
	// Shared arenas for every group's Rails/PerRail. Slice headers are
	// fixed up after the fill, when the backing arrays stop moving.
	railsArena := make([]int, 0, 4*len(groups))
	perArena := make([]int64, 0, 4*len(groups))
	offs := make([]int, len(groups)+1)
	for gi, g := range groups {
		epoch++
		for _, id := range g.Cores {
			if id < 0 || id >= len(wocByID) || wocByID[id] < 0 {
				return nil, fmt.Errorf("sischedule: group %q involves unknown core %d", g.Name, id)
			}
			inGroup[id] = epoch
		}
		gt := GroupTime{Bottleneck: -1}
		offs[gi] = len(railsArena)
		for ri := range a.Rails {
			r := a.Rails[ri]
			var shift int64
			nCare := 0
			for _, id := range r.Cores {
				if inGroup[id] == epoch {
					shift += ceilDiv(wocByID[id], int64(r.Width))
					nCare++
				}
			}
			if nCare == 0 {
				continue // rail not involved
			}
			perPattern := shift + m.Bypass*int64(len(r.Cores)-nCare) + m.Overhead
			t := g.Patterns * perPattern
			railsArena = append(railsArena, ri)
			perArena = append(perArena, t)
			if t > gt.Time || gt.Bottleneck < 0 {
				gt.Time = t
				gt.Bottleneck = ri
			}
		}
		out[gi] = gt
	}
	offs[len(groups)] = len(railsArena)
	for gi := range out {
		if offs[gi] == offs[gi+1] {
			continue // no involved rails: keep Rails/PerRail nil
		}
		out[gi].Rails = railsArena[offs[gi]:offs[gi+1]:offs[gi+1]]
		out[gi].PerRail = perArena[offs[gi]:offs[gi+1]:offs[gi+1]]
	}
	return out, nil
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// Slot is one scheduled group.
type Slot struct {
	Group *Group
	GroupTime
	Begin int64
	End   int64

	// Power is the group's test power under the schedule's constraint
	// set (0 when the schedule was built unconstrained).
	Power int64
}

// Schedule is the result of ScheduleSITest.
type Schedule struct {
	Slots []Slot

	// TotalSI is the SOC SI testing time T_soc_si: the time at which
	// the last group finishes.
	TotalSI int64

	// RailSI[i] is the accumulated busy SI time of rail i across all
	// groups — the time_si(r) bookkeeping of Fig. 4.
	RailSI []int64
}

// ScheduleSITest implements Algorithm 1 (Fig. 5): it schedules the SI
// test groups on the architecture's rails, running groups concurrently
// whenever their rail sets are disjoint, and returns the schedule and
// T_soc_si. Groups are considered in input order (the paper's "find s*"
// picks the first schedulable unscheduled test).
//
// As a side effect it refreshes each rail's TimeSI field with the rail's
// accumulated busy time.
func ScheduleSITest(a *tam.Architecture, groups []*Group, m Model) (*Schedule, error) {
	return ScheduleSITestConsObs(a, groups, m, nil, nil)
}

// ScheduleSITestCons is ScheduleSITest under a compiled constraint set:
// a group is only picked when its rails are free AND its power fits the
// remaining budget AND all its predecessor groups have finished AND no
// mutually exclusive group is running; otherwise time advances exactly
// as in Algorithm 1. A nil cons is byte-identical to ScheduleSITest —
// constrained and unconstrained runs share this one code path.
func ScheduleSITestCons(a *tam.Architecture, groups []*Group, m Model, cons *Constraints) (*Schedule, error) {
	return ScheduleSITestConsObs(a, groups, m, cons, nil)
}

// ScheduleSITestObs is ScheduleSITest with tracing: each scheduled
// slot is reported as an si_group_scheduled event (group name, begin
// and end times, involved rail count, bottleneck rail, pattern count)
// in slot order, which is deterministic. A nil sink traces nothing.
func ScheduleSITestObs(a *tam.Architecture, groups []*Group, m Model, sink obs.Sink) (*Schedule, error) {
	return ScheduleSITestConsObs(a, groups, m, nil, sink)
}

// ScheduleSITestConsObs is ScheduleSITestCons with tracing. Under a
// constraint set each si_group_scheduled event additionally carries the
// group's power and the budget, making every event self-contained for
// downstream power validation (sitrace -check) even on truncated
// traces.
func ScheduleSITestConsObs(a *tam.Architecture, groups []*Group, m Model, cons *Constraints, sink obs.Sink) (*Schedule, error) {
	sched, err := scheduleSITest(a, groups, m, cons)
	if err != nil || sink == nil {
		return sched, err
	}
	var budget int64
	if cons != nil {
		budget = cons.PowerBudget
	}
	for i := range sched.Slots {
		sl := &sched.Slots[i]
		if len(sl.Rails) == 0 {
			continue // group touches no rail: nothing was placed
		}
		sink.Emit(obs.Event{
			Type: obs.SIGroupScheduled, Group: sl.Group.Name,
			Begin: sl.Begin, End: sl.End,
			Rails: len(sl.Rails), Rail: sl.Bottleneck,
			N:     sl.Group.Patterns,
			Power: sl.Power, Budget: budget,
		})
	}
	return sched, nil
}

func scheduleSITest(a *tam.Architecture, groups []*Group, m Model, cons *Constraints) (*Schedule, error) {
	times, err := CalculateSITestTime(a, groups, m)
	if err != nil {
		return nil, err
	}
	if err := cons.Feasible(groups, times); err != nil {
		return nil, err
	}
	sched := &Schedule{
		Slots:  make([]Slot, 0, len(groups)),
		RailSI: make([]int64, len(a.Rails)),
	}

	type pending struct {
		g     *Group
		gt    GroupTime
		gi    int32 // index into groups (constraint tables)
		power int64
	}
	// endOf[gi] is group gi's finish time, or -1 while unscheduled;
	// runningG[gi] marks gi currently occupying its rails. Only used
	// under constraints.
	var endOf []int64
	var runningG []bool
	if cons != nil {
		endOf = make([]int64, len(groups))
		for i := range endOf {
			endOf[i] = -1
		}
		runningG = make([]bool, len(groups))
	}
	unsched := make([]pending, 0, len(groups))
	for i, g := range groups {
		// Groups that touch no rail (no involved cores or zero rails)
		// take no time; record them as zero-length slots at t=0. They
		// are exempt from constraints and count as finished immediately.
		if len(times[i].Rails) == 0 || g.Patterns == 0 {
			sched.Slots = append(sched.Slots, Slot{Group: g, GroupTime: times[i]})
			for j, ri := range times[i].Rails {
				sched.RailSI[ri] += times[i].PerRail[j]
			}
			if cons != nil {
				endOf[i] = 0
			}
			continue
		}
		p := pending{g: g, gt: times[i], gi: int32(i)}
		if cons != nil {
			p.power = cons.GroupPower[i]
		}
		unsched = append(unsched, p)
	}

	busy := make([]bool, len(a.Rails)) // currSchedTAMs
	type running struct {
		end   int64
		rails []int
		gi    int32
		power int64
	}
	active := make([]running, 0, len(a.Rails))
	var currTime, powerInUse int64

	for len(unsched) > 0 {
		// Find the first unscheduled group whose rails are all free and,
		// under constraints, whose power fits, predecessors finished and
		// exclusion partners idle.
		found := -1
		for i, p := range unsched {
			if cons != nil && !cons.admissible(p.gi, p.power, powerInUse, currTime, endOf, runningG) {
				continue
			}
			ok := true
			for _, ri := range p.gt.Rails {
				if busy[ri] {
					ok = false
					break
				}
			}
			if ok {
				found = i
				break
			}
		}
		if found >= 0 {
			p := unsched[found]
			unsched = append(unsched[:found], unsched[found+1:]...)
			slot := Slot{Group: p.g, GroupTime: p.gt, Begin: currTime, End: currTime + p.gt.Time, Power: p.power}
			sched.Slots = append(sched.Slots, slot)
			for j, ri := range p.gt.Rails {
				busy[ri] = true
				sched.RailSI[ri] += p.gt.PerRail[j]
			}
			active = append(active, running{slot.End, p.gt.Rails, p.gi, p.power})
			powerInUse += p.power
			if cons != nil {
				endOf[p.gi] = slot.End
				runningG[p.gi] = true
			}
			if slot.End > sched.TotalSI {
				sched.TotalSI = slot.End
			}
			continue
		}
		// No group fits: advance to the earliest end after currTime and
		// release its rails (Lines 13-16).
		var next int64 = -1
		for _, r := range active {
			if r.end > currTime && (next < 0 || r.end < next) {
				next = r.end
			}
		}
		if next < 0 {
			return nil, fmt.Errorf("sischedule: deadlock — %d groups unscheduled with no active group", len(unsched))
		}
		currTime = next
		keep := active[:0]
		for _, r := range active {
			if r.end > currTime {
				keep = append(keep, r)
			} else {
				for _, ri := range r.rails {
					busy[ri] = false
				}
				powerInUse -= r.power
				if cons != nil {
					runningG[r.gi] = false
				}
			}
		}
		active = keep
	}

	for i, t := range sched.RailSI {
		a.Rails[i].SetTimeSI(t)
	}
	return sched, nil
}

// admissible reports whether group gi may start at currTime under the
// constraints, given the scheduler's running state: power headroom,
// predecessors finished (scheduled with end <= now), and no running
// exclusion partner. Rail availability is the caller's check.
func (c *Constraints) admissible(gi int32, power, powerInUse, currTime int64, endOf []int64, runningG []bool) bool {
	if c.PowerBudget > 0 && powerInUse+power > c.PowerBudget {
		return false
	}
	for _, p := range c.preds[gi] {
		if endOf[p] < 0 || endOf[p] > currTime {
			return false
		}
	}
	for _, e := range c.excl[gi] {
		if runningG[e] {
			return false
		}
	}
	return true
}

// SerialTime returns the SI testing time when the groups are applied
// strictly one after another (no Algorithm 1 concurrency): the sum of
// the group times. Used as the scheduling ablation baseline.
func SerialTime(a *tam.Architecture, groups []*Group, m Model) (int64, error) {
	times, err := CalculateSITestTime(a, groups, m)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, gt := range times {
		total += gt.Time
	}
	return total, nil
}

// Validate checks schedule invariants: no two temporally overlapping
// slots share a rail, every slot's duration matches its group time.
func (s *Schedule) Validate() error {
	for i, a := range s.Slots {
		if a.End-a.Begin != a.Time {
			return fmt.Errorf("sischedule: slot %d duration %d != group time %d", i, a.End-a.Begin, a.Time)
		}
		for j := i + 1; j < len(s.Slots); j++ {
			b := s.Slots[j]
			if a.Begin < b.End && b.Begin < a.End && a.Time > 0 && b.Time > 0 {
				for _, ra := range a.Rails {
					for _, rb := range b.Rails {
						if ra == rb {
							return fmt.Errorf("sischedule: slots %d and %d overlap on rail %d", i, j, ra)
						}
					}
				}
			}
		}
	}
	return nil
}

// String renders the schedule as a time-sorted listing.
func (s *Schedule) String() string {
	slots := append([]Slot(nil), s.Slots...)
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].Begin != slots[j].Begin {
			return slots[i].Begin < slots[j].Begin
		}
		return slots[i].Group.Name < slots[j].Group.Name
	})
	out := fmt.Sprintf("SI schedule: T_si=%d\n", s.TotalSI)
	for _, sl := range slots {
		out += fmt.Sprintf("  [%8d, %8d) %-8s rails=%v bottleneck=TAM%d patterns=%d\n",
			sl.Begin, sl.End, sl.Group.Name, sl.Rails, sl.Bottleneck+1, sl.Group.Patterns)
	}
	return out
}
