package sischedule

import (
	"math/rand"
	"testing"

	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/wrapper"
)

func TestExactScheduleFig3(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 4, 5}, 2)
	a.AddRail([]int{2, 3}, 2)
	groups := fig3Groups()
	// Algorithm 1 achieves 360 here, which is also optimal: SI1 (both
	// rails, 120) serializes with everything, and SI2 (240) dominates
	// SI3 (40) on the other rail.
	opt, nodes, err := ExactSchedule(a, groups, Model{})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 360 {
		t.Errorf("optimal makespan = %d, want 360", opt)
	}
	if nodes <= 0 {
		t.Error("no nodes explored")
	}
	greedy, err := ScheduleSITest(a, groups, Model{})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.TotalSI < opt {
		t.Errorf("greedy %d beat the optimum %d", greedy.TotalSI, opt)
	}
}

func TestExactScheduleEmptyAndLimits(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2, 3, 4, 5}, 2)
	opt, _, err := ExactSchedule(a, nil, Model{})
	if err != nil || opt != 0 {
		t.Errorf("empty = (%d, %v)", opt, err)
	}
	var many []*Group
	for i := 0; i < MaxExactGroups+1; i++ {
		many = append(many, &Group{Name: "g", Cores: []int{1}, Patterns: 1})
	}
	if _, _, err := ExactSchedule(a, many, Model{}); err == nil {
		t.Error("accepted too many groups")
	}
}

// TestGreedyNeverBeatsExact is the core soundness property: Algorithm 1
// must be lower-bounded by the exact branch-and-bound makespan, and on
// these small instances it should also be close to it.
func TestGreedyNeverBeatsExact(t *testing.T) {
	s := &soc.SOC{Name: "x", BusWidth: 8}
	for id := 1; id <= 6; id++ {
		s.CoreList = append(s.CoreList, &soc.Core{
			ID: id, Inputs: 2, Outputs: 4 + id, ScanChains: []int{5}, Patterns: 5,
		})
	}
	tt, err := wrapper.NewTimeTable(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	worstGap := 0.0
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := tam.New(s, tt)
		// Random 2-3 rails.
		nRails := 2 + rng.Intn(2)
		railCores := make([][]int, nRails)
		for id := 1; id <= 6; id++ {
			r := rng.Intn(nRails)
			railCores[r] = append(railCores[r], id)
		}
		ok := true
		for _, rc := range railCores {
			if len(rc) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, rc := range railCores {
			a.AddRail(rc, 1+rng.Intn(3))
		}
		// Random 3-7 groups.
		var groups []*Group
		for gi := 3 + rng.Intn(5); gi > 0; gi-- {
			var cores []int
			for id := 1; id <= 6; id++ {
				if rng.Intn(3) == 0 {
					cores = append(cores, id)
				}
			}
			if len(cores) == 0 {
				cores = []int{1 + rng.Intn(6)}
			}
			groups = append(groups, &Group{Name: "g", Cores: cores, Patterns: int64(1 + rng.Intn(50))})
		}
		greedy, err := ScheduleSITest(a, groups, DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		opt, _, err := ExactSchedule(a, groups, DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		if greedy.TotalSI < opt {
			t.Fatalf("seed %d: greedy %d beat exact %d — bound bug", seed, greedy.TotalSI, opt)
		}
		if opt > 0 {
			gap := float64(greedy.TotalSI-opt) / float64(opt)
			if gap > worstGap {
				worstGap = gap
			}
		}
	}
	t.Logf("worst Algorithm 1 gap vs exact schedule over 40 instances: %.2f%%", 100*worstGap)
	if worstGap > 0.35 {
		t.Errorf("Algorithm 1 gap %.1f%% is suspiciously large on tiny instances", 100*worstGap)
	}
}
