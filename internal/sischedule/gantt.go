package sischedule

import (
	"fmt"
	"strings"
)

// Gantt renders the schedule as an ASCII chart: one row per rail,
// time flowing left to right across `cols` character cells. Each SI
// test group is drawn with a single letter (A, B, C, ... in slot
// order); idle rail time is '.'. A header scale and a legend are
// included. Zero-duration slots are omitted.
func (s *Schedule) Gantt(nRails, cols int) string {
	if cols < 10 {
		cols = 10
	}
	if s.TotalSI <= 0 || nRails <= 0 {
		return "(empty SI schedule)\n"
	}
	scale := float64(cols) / float64(s.TotalSI)
	rows := make([][]byte, nRails)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", cols))
	}
	var legend strings.Builder
	letter := byte('A')
	for _, sl := range s.Slots {
		if sl.Time <= 0 {
			continue
		}
		from := int(float64(sl.Begin) * scale)
		to := int(float64(sl.End) * scale)
		if to <= from {
			to = from + 1
		}
		if to > cols {
			to = cols
		}
		for _, ri := range sl.Rails {
			if ri >= nRails {
				continue
			}
			for c := from; c < to; c++ {
				rows[ri][c] = letter
			}
		}
		fmt.Fprintf(&legend, "  %c = %s (%d patterns, [%d,%d))\n",
			letter, sl.Group.Name, sl.Group.Patterns, sl.Begin, sl.End)
		if letter < 'Z' {
			letter++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SI schedule Gantt, 0 .. %d cc\n", s.TotalSI)
	for i, row := range rows {
		fmt.Fprintf(&b, "  TAM%-2d |%s|\n", i+1, row)
	}
	b.WriteString(legend.String())
	return b.String()
}
