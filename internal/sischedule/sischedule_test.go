package sischedule

import (
	"strings"
	"testing"

	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/wrapper"
)

// fig3SOC builds the five-core SOC of the paper's Fig. 3 / Example 1.
// Every core has 8 WOCs so that per-core shift time on a 2-wire rail is
// 4 cycles per pattern.
func fig3SOC(t *testing.T) (*soc.SOC, *wrapper.TimeTable) {
	t.Helper()
	s := &soc.SOC{Name: "fig3", BusWidth: 8}
	for id := 1; id <= 5; id++ {
		s.CoreList = append(s.CoreList, &soc.Core{
			ID: id, Inputs: 2, Outputs: 8, ScanChains: []int{5}, Patterns: 10,
		})
	}
	tt, err := wrapper.NewTimeTable(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	return s, tt
}

func fig3Groups() []*Group {
	return []*Group{
		{Name: "SI1", Cores: []int{1, 2, 3, 4, 5}, Patterns: 10},
		{Name: "SI2", Cores: []int{1, 4, 5}, Patterns: 20},
		{Name: "SI3", Cores: []int{2, 3}, Patterns: 5},
	}
}

// TestExample1Fig3a reproduces Example 1 for the TAM design of
// Fig. 3(a): TAM1={1,2}, TAM2={3,4}, TAM3={5}, all 2 wires wide.
func TestExample1Fig3a(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2}, 2)
	a.AddRail([]int{3, 4}, 2)
	a.AddRail([]int{5}, 2)

	times, err := CalculateSITestTime(a, fig3Groups(), Model{})
	if err != nil {
		t.Fatal(err)
	}
	// Per-core shift on a 2-wire rail: ceil(8/2) = 4 cycles/pattern.
	// SI1: T_si1 = max(T1+T2, T3+T4, T5) = max(80, 80, 40) = 80.
	if times[0].Time != 80 {
		t.Errorf("SI1 time = %d, want 80", times[0].Time)
	}
	if len(times[0].Rails) != 3 {
		t.Errorf("SI1 rails = %v, want all three", times[0].Rails)
	}
	// SI2 involves cores 1,4,5 -> 4*20=80 on each of the three rails.
	if times[1].Time != 80 || len(times[1].Rails) != 3 {
		t.Errorf("SI2 = %+v, want 80 over 3 rails", times[1])
	}
	// SI3 involves cores 2,3 -> 20 on TAM1 and TAM2 only.
	if times[2].Time != 20 || len(times[2].Rails) != 2 {
		t.Errorf("SI3 = %+v, want 20 over rails {0,1}", times[2])
	}
	for _, ri := range times[2].Rails {
		if ri == 2 {
			t.Error("SI3 must not involve TAM3")
		}
	}

	// All three groups share rails, so the schedule is fully serial:
	// T_si = 80 + 80 + 20 = 180.
	sched, err := ScheduleSITest(a, fig3Groups(), Model{})
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalSI != 180 {
		t.Errorf("T_si = %d, want 180\n%s", sched.TotalSI, sched)
	}
	if err := sched.Validate(); err != nil {
		t.Error(err)
	}
}

// TestExample1Fig3b checks the bottleneck shift of Fig. 3(b):
// TAM1={1,4,5}, TAM2={2,3}. SI1's time becomes T1+T4+T5 = 120 even
// though the same SI test uses the same total TAM resources.
func TestExample1Fig3b(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 4, 5}, 2)
	a.AddRail([]int{2, 3}, 2)

	times, err := CalculateSITestTime(a, fig3Groups(), Model{})
	if err != nil {
		t.Fatal(err)
	}
	if times[0].Time != 120 {
		t.Errorf("SI1 time = %d, want 120 (= T1+T4+T5 on TAM1)", times[0].Time)
	}
	if times[0].Bottleneck != 0 {
		t.Errorf("SI1 bottleneck = TAM%d, want TAM1", times[0].Bottleneck+1)
	}
	// SI2 {1,4,5}: TAM1 3*4*20=240, TAM2 uninvolved.
	if times[1].Time != 240 || len(times[1].Rails) != 1 {
		t.Errorf("SI2 = %+v", times[1])
	}
	// SI3 {2,3}: TAM2 only, 2*4*5 = 40.
	if times[2].Time != 40 || len(times[2].Rails) != 1 || times[2].Rails[0] != 1 {
		t.Errorf("SI3 = %+v", times[2])
	}

	// SI2 (TAM1 only) and SI3 (TAM2 only) overlap after SI1:
	// T_si = 120 + max(240, 40) = 360.
	sched, err := ScheduleSITest(a, fig3Groups(), Model{})
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalSI != 360 {
		t.Errorf("T_si = %d, want 360\n%s", sched.TotalSI, sched)
	}
	if err := sched.Validate(); err != nil {
		t.Error(err)
	}
	// Check the overlap actually happened.
	var si2, si3 Slot
	for _, sl := range sched.Slots {
		switch sl.Group.Name {
		case "SI2":
			si2 = sl
		case "SI3":
			si3 = sl
		}
	}
	if si2.Begin != 120 || si3.Begin != 120 {
		t.Errorf("SI2 begins %d, SI3 begins %d; want both 120", si2.Begin, si3.Begin)
	}
}

func TestBypassAndOverheadModel(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2}, 2)
	a.AddRail([]int{3, 4}, 2)

	groups := []*Group{{Name: "g", Cores: []int{2, 3}, Patterns: 5}}
	times, err := CalculateSITestTime(a, groups, Model{Bypass: 1, Overhead: 3})
	if err != nil {
		t.Fatal(err)
	}
	// On TAM1: shift 4 (core 2) + bypass 1 (core 1) + overhead 3 = 8
	// cycles/pattern -> 40 over 5 patterns. Same on TAM2.
	if times[0].Time != 40 {
		t.Errorf("time = %d, want 40", times[0].Time)
	}
}

func TestScheduleRailUtilization(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2}, 2)
	a.AddRail([]int{3, 4}, 2)
	a.AddRail([]int{5}, 2)

	sched, err := ScheduleSITest(a, fig3Groups(), Model{})
	if err != nil {
		t.Fatal(err)
	}
	// TAM3 is busy 40 (SI1) + 80 (SI2) = 120; Fig. 4's example
	// time_si(TAM3) = T5^si1 + T5^si2.
	if sched.RailSI[2] != 120 {
		t.Errorf("RailSI[TAM3] = %d, want 120", sched.RailSI[2])
	}
	if a.Rails[2].TimeSI != 120 {
		t.Errorf("rail TimeSI not refreshed: %d", a.Rails[2].TimeSI)
	}
	// TAM1: SI1 80 + SI2 80 (core 1) + SI3 20 (core 2) = 180.
	if sched.RailSI[0] != 180 {
		t.Errorf("RailSI[TAM1] = %d, want 180", sched.RailSI[0])
	}
}

func TestZeroPatternGroupTakesNoTime(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2, 3, 4, 5}, 4)
	groups := []*Group{
		{Name: "empty", Cores: []int{1}, Patterns: 0},
		{Name: "real", Cores: []int{2}, Patterns: 10},
	}
	sched, err := ScheduleSITest(a, groups, Model{})
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalSI != 20 { // ceil(8/4)=2 cycles * 10 patterns
		t.Errorf("T_si = %d, want 20", sched.TotalSI)
	}
}

func TestGroupWithNoCores(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2, 3, 4, 5}, 4)
	sched, err := ScheduleSITest(a, []*Group{{Name: "none", Patterns: 5}}, Model{})
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalSI != 0 {
		t.Errorf("T_si = %d, want 0", sched.TotalSI)
	}
}

func TestUnknownCoreRejected(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2, 3, 4, 5}, 4)
	if _, err := CalculateSITestTime(a, []*Group{{Name: "bad", Cores: []int{77}, Patterns: 1}}, Model{}); err == nil {
		t.Error("accepted group with unknown core")
	}
}

func TestSerialTimeIsUpperBound(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 4, 5}, 2)
	a.AddRail([]int{2, 3}, 2)
	groups := fig3Groups()
	sched, err := ScheduleSITest(a, groups, Model{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := SerialTime(a, groups, Model{})
	if err != nil {
		t.Fatal(err)
	}
	if serial < sched.TotalSI {
		t.Errorf("serial %d < scheduled %d", serial, sched.TotalSI)
	}
	if serial != 120+240+40 {
		t.Errorf("serial = %d, want 400", serial)
	}
}

func TestManyDisjointGroupsOverlapFully(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	for id := 1; id <= 5; id++ {
		a.AddRail([]int{id}, 2)
	}
	var groups []*Group
	for id := 1; id <= 5; id++ {
		groups = append(groups, &Group{Name: "g", Cores: []int{id}, Patterns: 10})
	}
	sched, err := ScheduleSITest(a, groups, Model{})
	if err != nil {
		t.Fatal(err)
	}
	// All five groups run concurrently: 4 cycles * 10 patterns each.
	if sched.TotalSI != 40 {
		t.Errorf("T_si = %d, want 40 (full overlap)", sched.TotalSI)
	}
	for _, sl := range sched.Slots {
		if sl.Begin != 0 {
			t.Errorf("slot %s begins at %d, want 0", sl.Group.Name, sl.Begin)
		}
	}
}

func TestScheduleValidateCatchesOverlap(t *testing.T) {
	bad := &Schedule{Slots: []Slot{
		{Group: &Group{Name: "a", Patterns: 1}, GroupTime: GroupTime{Time: 10, Rails: []int{0}}, Begin: 0, End: 10},
		{Group: &Group{Name: "b", Patterns: 1}, GroupTime: GroupTime{Time: 10, Rails: []int{0}}, Begin: 5, End: 15},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted overlapping slots on one rail")
	}
	wrongDur := &Schedule{Slots: []Slot{
		{Group: &Group{Name: "a", Patterns: 1}, GroupTime: GroupTime{Time: 10, Rails: []int{0}}, Begin: 0, End: 5},
	}}
	if err := wrongDur.Validate(); err == nil {
		t.Error("Validate accepted wrong duration")
	}
}

func TestScheduleString(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2, 3, 4, 5}, 2)
	sched, err := ScheduleSITest(a, fig3Groups(), Model{})
	if err != nil {
		t.Fatal(err)
	}
	out := sched.String()
	for _, want := range []string{"SI1", "SI2", "SI3", "T_si="} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestGroupClone(t *testing.T) {
	g := &Group{Name: "g", Cores: []int{1, 2}, Patterns: 5}
	c := g.Clone()
	c.Cores[0] = 9
	if g.Cores[0] != 1 {
		t.Error("Clone shares core slice")
	}
}
