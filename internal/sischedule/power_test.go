package sischedule

import (
	"testing"

	"sitam/internal/tam"
)

func TestPowerUnlimitedMatchesAlgorithm1(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 4, 5}, 2)
	a.AddRail([]int{2, 3}, 2)
	groups := fig3Groups()

	plain, err := ScheduleSITest(a, groups, Model{})
	if err != nil {
		t.Fatal(err)
	}
	unlimited, err := ScheduleSITestPower(a, groups, Model{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.TotalSI != plain.TotalSI {
		t.Errorf("unlimited power schedule %d != Algorithm 1 %d", unlimited.TotalSI, plain.TotalSI)
	}
}

func TestPowerBudgetSerializes(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 4, 5}, 2)
	a.AddRail([]int{2, 3}, 2)
	// SI2 (cores 1,4,5: power 24) and SI3 (cores 2,3: power 16) sit on
	// disjoint rails in the Fig. 3(b) design, so Algorithm 1 overlaps
	// them. A budget of 30 forbids the overlap (24+16 > 30) while each
	// group alone still fits.
	groups := []*Group{fig3Groups()[1], fig3Groups()[2]}
	sched, err := ScheduleSITestPower(a, groups, Model{}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePower(a, sched, 30); err != nil {
		t.Fatal(err)
	}
	// Unconstrained T_si is max(240, 40) = 240; serialized it is
	// 240 + 40 = 280.
	if sched.TotalSI != 280 {
		t.Errorf("T_si = %d, want 280 (serialized)\n%s", sched.TotalSI, sched)
	}
	unconstrained, err := ScheduleSITestPower(a, groups, Model{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unconstrained.TotalSI != 240 {
		t.Errorf("unconstrained T_si = %d, want 240", unconstrained.TotalSI)
	}
}

func TestPowerMonotonicInBudget(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 4, 5}, 2)
	a.AddRail([]int{2, 3}, 2)
	// Drop SI1 (power 40) so tighter budgets stay feasible.
	groups := []*Group{fig3Groups()[1], fig3Groups()[2]}

	prev := int64(-1)
	for _, budget := range []int64{24, 30, 40, 0} { // 0 = unlimited, last
		sched, err := ScheduleSITestPower(a, groups, Model{}, budget)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if err := ValidatePower(a, sched, budget); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if prev >= 0 && sched.TotalSI > prev {
			t.Errorf("budget %d: T_si %d worse than tighter budget's %d", budget, sched.TotalSI, prev)
		}
		prev = sched.TotalSI
	}
}

func TestPowerInfeasibleGroup(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2, 3, 4, 5}, 2)
	groups := fig3Groups()
	// SI1 involves all five cores: power 40 > budget 39.
	if _, err := ScheduleSITestPower(a, groups, Model{}, 39); err == nil {
		t.Error("accepted an infeasible group")
	}
}

func TestGroupPower(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2, 3, 4, 5}, 2)
	g := &Group{Name: "g", Cores: []int{1, 2}, Patterns: 1}
	if got := GroupPower(a, g); got != 16 {
		t.Errorf("GroupPower = %d, want 16 (two 8-WOC cores)", got)
	}
	unknown := &Group{Name: "u", Cores: []int{99}, Patterns: 1}
	if got := GroupPower(a, unknown); got != 0 {
		t.Errorf("GroupPower(unknown) = %d, want 0", got)
	}
}

func TestValidatePowerCatchesViolation(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 4, 5}, 2)
	a.AddRail([]int{2, 3}, 2)
	// Build an unconstrained schedule, then validate against a budget
	// it violates.
	sched, err := ScheduleSITest(a, fig3Groups(), Model{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePower(a, sched, 30); err == nil {
		t.Error("ValidatePower missed the SI2/SI3 overlap at budget 30")
	}
}
