package sischedule

import (
	"fmt"

	"sitam/internal/tam"
)

// Power-constrained SI test scheduling. During an SI test every
// involved core's boundary cells toggle at speed, so running many
// groups concurrently can exceed the SOC's test power envelope — the
// classic constraint of SOC test scheduling (Chou et al.; Iyengar &
// Chakrabarty). The paper schedules SI tests with rail exclusivity
// only; this extension additionally enforces a power ceiling, and
// degrades gracefully to Algorithm 1 when the budget is unlimited.

// GroupPower estimates the test power of an SI group as the total
// number of wrapper output cells it toggles: Σ WOC over its cores.
func GroupPower(a *tam.Architecture, g *Group) int64 {
	var p int64
	for _, id := range g.Cores {
		c := a.SOC.CoreByID(id)
		if c != nil {
			p += int64(c.WOC())
		}
	}
	return p
}

// ScheduleSITestPower is ScheduleSITest with a power ceiling: at any
// instant the sum of GroupPower over the running groups must not
// exceed budget. A budget <= 0 means unlimited. An individual group
// whose power alone exceeds a positive budget makes the schedule
// infeasible and is reported as an error.
func ScheduleSITestPower(a *tam.Architecture, groups []*Group, m Model, budget int64) (*Schedule, error) {
	times, err := CalculateSITestTime(a, groups, m)
	if err != nil {
		return nil, err
	}
	if budget > 0 {
		for _, g := range groups {
			if p := GroupPower(a, g); p > budget {
				return nil, fmt.Errorf("sischedule: group %q needs power %d > budget %d", g.Name, p, budget)
			}
		}
	}
	sched := &Schedule{RailSI: make([]int64, len(a.Rails))}

	type pending struct {
		g     *Group
		gt    GroupTime
		power int64
	}
	unsched := make([]pending, 0, len(groups))
	for i, g := range groups {
		if len(times[i].Rails) == 0 || g.Patterns == 0 {
			sched.Slots = append(sched.Slots, Slot{Group: g, GroupTime: times[i]})
			for j, ri := range times[i].Rails {
				sched.RailSI[ri] += times[i].PerRail[j]
			}
			continue
		}
		unsched = append(unsched, pending{g, times[i], GroupPower(a, g)})
	}

	busy := make([]bool, len(a.Rails))
	type running struct {
		end   int64
		rails []int
		power int64
	}
	var active []running
	var currTime, powerInUse int64

	for len(unsched) > 0 {
		found := -1
		for i, p := range unsched {
			if budget > 0 && powerInUse+p.power > budget {
				continue
			}
			ok := true
			for _, ri := range p.gt.Rails {
				if busy[ri] {
					ok = false
					break
				}
			}
			if ok {
				found = i
				break
			}
		}
		if found >= 0 {
			p := unsched[found]
			unsched = append(unsched[:found], unsched[found+1:]...)
			slot := Slot{Group: p.g, GroupTime: p.gt, Begin: currTime, End: currTime + p.gt.Time}
			sched.Slots = append(sched.Slots, slot)
			for j, ri := range p.gt.Rails {
				busy[ri] = true
				sched.RailSI[ri] += p.gt.PerRail[j]
			}
			active = append(active, running{slot.End, p.gt.Rails, p.power})
			powerInUse += p.power
			if slot.End > sched.TotalSI {
				sched.TotalSI = slot.End
			}
			continue
		}
		var next int64 = -1
		for _, r := range active {
			if r.end > currTime && (next < 0 || r.end < next) {
				next = r.end
			}
		}
		if next < 0 {
			return nil, fmt.Errorf("sischedule: deadlock — %d groups unscheduled with no active group", len(unsched))
		}
		currTime = next
		keep := active[:0]
		for _, r := range active {
			if r.end > currTime {
				keep = append(keep, r)
			} else {
				for _, ri := range r.rails {
					busy[ri] = false
				}
				powerInUse -= r.power
			}
		}
		active = keep
	}

	for i, t := range sched.RailSI {
		a.Rails[i].SetTimeSI(t)
	}
	return sched, nil
}

// ValidatePower checks that no instant of the schedule exceeds the
// power budget (budget <= 0 always passes).
func ValidatePower(a *tam.Architecture, s *Schedule, budget int64) error {
	if budget <= 0 {
		return nil
	}
	// Sweep the slot boundaries.
	for _, probe := range s.Slots {
		if probe.Time <= 0 {
			continue
		}
		var inUse int64
		for _, sl := range s.Slots {
			if sl.Time <= 0 {
				continue
			}
			if sl.Begin <= probe.Begin && probe.Begin < sl.End {
				inUse += GroupPower(a, sl.Group)
			}
		}
		if inUse > budget {
			return fmt.Errorf("sischedule: power %d in use at t=%d exceeds budget %d", inUse, probe.Begin, budget)
		}
	}
	return nil
}
