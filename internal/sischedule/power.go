package sischedule

import (
	"fmt"

	"sitam/internal/tam"
)

// Power-constrained SI test scheduling. During an SI test every
// involved core's boundary cells toggle at speed, so running many
// groups concurrently can exceed the SOC's test power envelope — the
// classic constraint of SOC test scheduling (Chou et al.; Iyengar &
// Chakrabarty). The paper schedules SI tests with rail exclusivity
// only; this extension additionally enforces a power ceiling, and
// degrades gracefully to Algorithm 1 when the budget is unlimited.

// GroupPower estimates the test power of an SI group as the total
// number of wrapper output cells it toggles: Σ WOC over its cores.
func GroupPower(a *tam.Architecture, g *Group) int64 {
	var p int64
	for _, id := range g.Cores {
		c := a.SOC.CoreByID(id)
		if c != nil {
			p += int64(c.WOC())
		}
	}
	return p
}

// ScheduleSITestPower is ScheduleSITest with a power ceiling: at any
// instant the sum of GroupPower over the running groups must not
// exceed budget. A budget <= 0 means unlimited. An individual group
// whose power alone exceeds a positive budget makes the schedule
// infeasible and is reported as an error.
//
// It is a compatibility wrapper over ScheduleSITestCons with a
// budget-only constraint set; the full constraint vocabulary (power
// plus precedence and exclusion, from the .soc Constraints stanza)
// goes through CompileConstraints.
func ScheduleSITestPower(a *tam.Architecture, groups []*Group, m Model, budget int64) (*Schedule, error) {
	return ScheduleSITestCons(a, groups, m, powerOnly(a, groups, budget))
}

// ValidatePower checks that no instant of the schedule exceeds the
// power budget (budget <= 0 always passes).
func ValidatePower(a *tam.Architecture, s *Schedule, budget int64) error {
	if budget <= 0 {
		return nil
	}
	// Sweep the slot boundaries.
	for _, probe := range s.Slots {
		if probe.Time <= 0 {
			continue
		}
		var inUse int64
		for _, sl := range s.Slots {
			if sl.Time <= 0 {
				continue
			}
			if sl.Begin <= probe.Begin && probe.Begin < sl.End {
				inUse += GroupPower(a, sl.Group)
			}
		}
		if inUse > budget {
			return fmt.Errorf("sischedule: power %d in use at t=%d exceeds budget %d", inUse, probe.Begin, budget)
		}
	}
	return nil
}
