package sischedule

import (
	"fmt"
	"sort"

	"sitam/internal/soc"
	"sitam/internal/tam"
)

// Constraints is a soc.ConstraintSet compiled against a concrete group
// list: the core-level vocabulary of the .soc Constraints stanza lifted
// onto SI test group indices, in the form the scheduling loops consume
// directly. A nil *Constraints means unconstrained, and every scheduler
// entry point taking one degrades to plain Algorithm 1 byte-for-byte.
//
// Compilation is per (constraint set, group list) and independent of
// the architecture: group membership and core powers do not change as
// the optimizer moves cores between rails, so one compiled value is
// shared across every candidate evaluation of a run.
type Constraints struct {
	// PowerBudget caps the summed GroupPower of concurrently running
	// groups; 0 means unlimited.
	PowerBudget int64

	// GroupPower[gi] is the test power of group gi: Σ PowerOf over its
	// cores (CorePower override or WOC default).
	GroupPower []int64

	// preds[gi] lists the group indices that must finish before group
	// gi may start (the core precedence relation lifted to groups).
	preds [][]int32

	// excl[gi] lists the group indices that may not run concurrently
	// with group gi (symmetric).
	excl [][]int32

	// wocPower records that GroupPower was derived purely from WOC
	// sizes (no CorePower overrides), so the WOC-based ValidatePower
	// sweep is applicable as an independent cross-check.
	wocPower bool
}

// WOCPower reports whether the group powers are plain WOC sums with no
// per-core overrides. A nil receiver (unconstrained) reports true.
func (c *Constraints) WOCPower() bool {
	return c == nil || c.wocPower
}

// CompileConstraints lifts a core-level constraint set onto the given
// groups. A nil or empty set compiles to nil (unconstrained). The
// lifting rules:
//
//   - GroupPower: each group's power is the sum of its cores' powers.
//   - Precede b a: every group involving core b must finish before any
//     group involving core a starts. A group containing both cores
//     satisfies the relation internally and is exempt from that edge.
//   - Exclude set: no two distinct groups each involving a core of the
//     set may run concurrently.
//
// The lifted precedence relation must be acyclic over groups — cores
// sharing groups can induce group-level cycles that are invisible at
// core level — and a cycle is reported as an error wrapping
// soc.ErrInvalid.
func CompileConstraints(s *soc.SOC, cs *soc.ConstraintSet, groups []*Group) (*Constraints, error) {
	if cs.Empty() {
		return nil, nil
	}
	if err := cs.Validate(s); err != nil {
		return nil, err
	}
	c := &Constraints{
		PowerBudget: cs.PowerBudget,
		GroupPower:  make([]int64, len(groups)),
		preds:       make([][]int32, len(groups)),
		excl:        make([][]int32, len(groups)),
		wocPower:    len(cs.CorePower) == 0,
	}
	powerOf := make(map[int]int64, s.NumCores())
	for _, core := range s.Cores() {
		powerOf[core.ID] = cs.PowerOf(core)
	}
	// groupsOf[id] = indices of groups involving core id.
	groupsOf := make(map[int][]int32)
	has := make([]map[int]bool, len(groups))
	for gi, g := range groups {
		has[gi] = make(map[int]bool, len(g.Cores))
		for _, id := range g.Cores {
			if has[gi][id] {
				continue
			}
			has[gi][id] = true
			c.GroupPower[gi] += powerOf[id]
			groupsOf[id] = append(groupsOf[id], int32(gi))
		}
	}

	edge := make(map[[2]int32]bool)
	for _, pr := range cs.Precedences {
		for _, gb := range groupsOf[pr.Before] {
			if has[gb][pr.After] {
				continue // contains both endpoints: internally satisfied
			}
			for _, ga := range groupsOf[pr.After] {
				if gb == ga || has[ga][pr.Before] {
					continue
				}
				k := [2]int32{gb, ga}
				if !edge[k] {
					edge[k] = true
					c.preds[ga] = append(c.preds[ga], gb)
				}
			}
		}
	}
	for gi := range c.preds {
		sortInt32s(c.preds[gi])
	}
	if cyc := groupCycle(c.preds); cyc != nil {
		names := make([]string, len(cyc))
		for i, gi := range cyc {
			names[i] = groups[gi].Name
		}
		return nil, fmt.Errorf("%w: core precedence lifts to a cyclic group order through %v", soc.ErrInvalid, names)
	}

	pair := make(map[[2]int32]bool)
	for _, exset := range cs.Exclusions {
		var touched []int32
		seenG := make(map[int32]bool)
		for _, id := range exset {
			for _, gi := range groupsOf[id] {
				if !seenG[gi] {
					seenG[gi] = true
					touched = append(touched, gi)
				}
			}
		}
		sortInt32s(touched)
		for i, ga := range touched {
			for _, gb := range touched[i+1:] {
				k := [2]int32{ga, gb}
				if !pair[k] {
					pair[k] = true
					c.excl[ga] = append(c.excl[ga], gb)
					c.excl[gb] = append(c.excl[gb], ga)
				}
			}
		}
	}
	for gi := range c.excl {
		sortInt32s(c.excl[gi])
	}
	return c, nil
}

func sortInt32s(v []int32) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

// groupCycle returns the group indices left unpeeled by Kahn's
// algorithm over the lifted precedence DAG, or nil when acyclic.
func groupCycle(preds [][]int32) []int32 {
	n := len(preds)
	indeg := make([]int, n)
	succ := make([][]int32, n)
	for gi, ps := range preds {
		indeg[gi] = len(ps)
		for _, p := range ps {
			succ[p] = append(succ[p], int32(gi))
		}
	}
	queue := make([]int32, 0, n)
	for gi, d := range indeg {
		if d == 0 {
			queue = append(queue, int32(gi))
		}
	}
	left := n
	for len(queue) > 0 {
		gi := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		left--
		for _, nxt := range succ[gi] {
			if indeg[nxt]--; indeg[nxt] == 0 {
				queue = append(queue, nxt)
			}
		}
	}
	if left == 0 {
		return nil
	}
	var cyc []int32
	for gi, d := range indeg {
		if d > 0 {
			cyc = append(cyc, int32(gi))
		}
	}
	return cyc
}

// powerOnly compiles a budget-only constraint (the ScheduleSITestPower
// compatibility path): GroupPower from plain WOC sums, no precedence,
// no exclusion. A budget <= 0 compiles to nil.
func powerOnly(a *tam.Architecture, groups []*Group, budget int64) *Constraints {
	if budget <= 0 {
		return nil
	}
	c := &Constraints{
		PowerBudget: budget,
		GroupPower:  make([]int64, len(groups)),
		preds:       make([][]int32, len(groups)),
		excl:        make([][]int32, len(groups)),
		wocPower:    true,
	}
	for gi, g := range groups {
		c.GroupPower[gi] = GroupPower(a, g)
	}
	return c
}

// Feasible reports the first group whose power alone exceeds the
// budget, making any schedule impossible. Groups that never occupy a
// rail (no involved rails, or zero patterns) are recorded as
// zero-length slots by the scheduler and are exempt — the exemption
// matches the scheduler's pending split exactly.
func (c *Constraints) Feasible(groups []*Group, times []GroupTime) error {
	if c == nil || c.PowerBudget <= 0 {
		return nil
	}
	for gi, g := range groups {
		if times != nil && (len(times[gi].Rails) == 0 || g.Patterns == 0) {
			continue
		}
		if c.GroupPower[gi] > c.PowerBudget {
			return fmt.Errorf("sischedule: group %q needs power %d > budget %d", g.Name, c.GroupPower[gi], c.PowerBudget)
		}
	}
	return nil
}

// ValidateSchedule checks a finished schedule against the compiled
// constraints: no instant exceeds the power budget, every precedence
// edge is respected, and no two mutually exclusive groups overlap.
// Zero-duration slots are exempt throughout, mirroring the scheduler.
// groups must be the same slice the constraints were compiled against.
// A nil receiver validates trivially.
func (c *Constraints) ValidateSchedule(groups []*Group, s *Schedule) error {
	if c == nil {
		return nil
	}
	// slotOf[gi] is the slot of group gi, or -1 (group not in schedule).
	slotOf := make(map[*Group]int, len(groups))
	for si := range s.Slots {
		slotOf[s.Slots[si].Group] = si
	}
	slot := func(gi int32) *Slot {
		si, ok := slotOf[groups[gi]]
		if !ok {
			return nil
		}
		return &s.Slots[si]
	}
	overlaps := func(a, b *Slot) bool {
		return a != nil && b != nil && a.Time > 0 && b.Time > 0 &&
			a.Begin < b.End && b.Begin < a.End
	}
	if c.PowerBudget > 0 {
		for i := range s.Slots {
			probe := &s.Slots[i]
			if probe.Time <= 0 {
				continue
			}
			var inUse int64
			for gi := range groups {
				if sl := slot(int32(gi)); overlaps(sl, probe) && sl.Begin <= probe.Begin && probe.Begin < sl.End {
					inUse += c.GroupPower[gi]
				}
			}
			if inUse > c.PowerBudget {
				return fmt.Errorf("sischedule: power %d in use at t=%d exceeds budget %d", inUse, probe.Begin, c.PowerBudget)
			}
		}
	}
	for gi := range groups {
		sl := slot(int32(gi))
		if sl == nil || sl.Time <= 0 {
			continue
		}
		for _, p := range c.preds[gi] {
			psl := slot(p)
			if psl == nil || psl.Time <= 0 {
				continue
			}
			if psl.End > sl.Begin {
				return fmt.Errorf("sischedule: group %q starts at %d before predecessor %q ends at %d",
					groups[gi].Name, sl.Begin, groups[p].Name, psl.End)
			}
		}
		for _, e := range c.excl[gi] {
			if int(e) <= gi {
				continue // symmetric: check each pair once
			}
			if esl := slot(e); overlaps(sl, esl) {
				return fmt.Errorf("sischedule: mutually exclusive groups %q and %q overlap ([%d,%d) vs [%d,%d))",
					groups[gi].Name, groups[e].Name, sl.Begin, sl.End, esl.Begin, esl.End)
			}
		}
	}
	return nil
}
