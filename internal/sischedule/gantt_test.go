package sischedule

import (
	"strings"
	"testing"

	"sitam/internal/tam"
)

func TestGanttRendering(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 4, 5}, 2)
	a.AddRail([]int{2, 3}, 2)
	sched, err := ScheduleSITest(a, fig3Groups(), Model{})
	if err != nil {
		t.Fatal(err)
	}
	out := sched.Gantt(2, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "360") {
		t.Errorf("header missing total time: %q", lines[0])
	}
	if !strings.Contains(out, "TAM1") || !strings.Contains(out, "TAM2") {
		t.Errorf("missing rail rows:\n%s", out)
	}
	// SI1 is slot A on both rails from t=0; both rows must start with A.
	for _, row := range lines[1:3] {
		bar := row[strings.Index(row, "|")+1:]
		if bar[0] != 'A' {
			t.Errorf("row does not start with A: %q", row)
		}
	}
	// Legend lists all three groups.
	for _, g := range []string{"SI1", "SI2", "SI3"} {
		if !strings.Contains(out, g) {
			t.Errorf("legend missing %s:\n%s", g, out)
		}
	}
	// TAM2 idles after SI3 while SI2 still runs on TAM1: row 2 must
	// contain idle dots at the end.
	if !strings.HasSuffix(strings.TrimSuffix(lines[2], "|"), ".") {
		t.Errorf("TAM2 row shows no trailing idle time: %q", lines[2])
	}
}

func TestGanttEmpty(t *testing.T) {
	empty := &Schedule{}
	if out := empty.Gantt(3, 40); !strings.Contains(out, "empty") {
		t.Errorf("empty schedule Gantt = %q", out)
	}
}

func TestGanttClampsColumns(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2, 3, 4, 5}, 2)
	sched, err := ScheduleSITest(a, fig3Groups(), Model{})
	if err != nil {
		t.Fatal(err)
	}
	out := sched.Gantt(1, 3) // clamped up to 10 columns
	rows := strings.Split(out, "\n")
	if len(rows) < 2 || !strings.Contains(rows[1], "|") {
		t.Fatalf("Gantt = %q", out)
	}
}
