package sischedule

import (
	"context"
	"errors"
	"testing"

	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/wrapper"
)

// disjointSetup builds four single-core rails so that the four
// one-core groups run fully concurrently under plain Algorithm 1
// (each takes ceil(8/2)·10 = 40 cycles; unconstrained T_si = 40).
func disjointSetup(t *testing.T) (*tam.Architecture, []*Group) {
	t.Helper()
	s := &soc.SOC{Name: "disjoint", BusWidth: 8}
	for id := 1; id <= 4; id++ {
		s.CoreList = append(s.CoreList, &soc.Core{
			ID: id, Inputs: 2, Outputs: 8, ScanChains: []int{5}, Patterns: 10,
		})
	}
	tt, err := wrapper.NewTimeTable(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := tam.New(s, tt)
	for id := 1; id <= 4; id++ {
		a.AddRail([]int{id}, 2)
	}
	groups := []*Group{
		{Name: "A", Cores: []int{1}, Patterns: 10},
		{Name: "B", Cores: []int{2}, Patterns: 10},
		{Name: "C", Cores: []int{3}, Patterns: 10},
		{Name: "D", Cores: []int{4}, Patterns: 10},
	}
	return a, groups
}

func compile(t *testing.T, a *tam.Architecture, groups []*Group, cs *soc.ConstraintSet) *Constraints {
	t.Helper()
	cons, err := CompileConstraints(a.SOC, cs, groups)
	if err != nil {
		t.Fatal(err)
	}
	return cons
}

func TestCompileConstraintsEmpty(t *testing.T) {
	a, groups := disjointSetup(t)
	for _, cs := range []*soc.ConstraintSet{nil, {}} {
		cons, err := CompileConstraints(a.SOC, cs, groups)
		if err != nil || cons != nil {
			t.Errorf("CompileConstraints(%v) = %v, %v; want nil, nil", cs, cons, err)
		}
	}
}

func TestCompileConstraintsLifting(t *testing.T) {
	a, groups := disjointSetup(t)
	cons := compile(t, a, groups, &soc.ConstraintSet{
		PowerBudget: 100,
		CorePower:   map[int]int64{2: 50},
		Precedences: []soc.Precedence{{Before: 1, After: 3}},
		Exclusions:  [][]int{{2, 4}},
	})
	// Group powers: WOC default (8) except core 2's override.
	want := []int64{8, 50, 8, 8}
	for gi, w := range want {
		if cons.GroupPower[gi] != w {
			t.Errorf("GroupPower[%d] = %d, want %d", gi, cons.GroupPower[gi], w)
		}
	}
	// Precede 1 3 lifts to edge A -> C (group indices 0 -> 2).
	if len(cons.preds[2]) != 1 || cons.preds[2][0] != 0 {
		t.Errorf("preds[C] = %v, want [0]", cons.preds[2])
	}
	// Exclude 2 4 lifts to the symmetric pair B <-> D (indices 1, 3).
	if len(cons.excl[1]) != 1 || cons.excl[1][0] != 3 ||
		len(cons.excl[3]) != 1 || cons.excl[3][0] != 1 {
		t.Errorf("excl = %v / %v, want [3] / [1]", cons.excl[1], cons.excl[3])
	}
}

func TestCompileBothEndpointGroupExempt(t *testing.T) {
	a, _ := disjointSetup(t)
	// One group holds both endpoint cores: the edge is internally
	// satisfied and must not lift to a self- or cross-edge.
	groups := []*Group{
		{Name: "AB", Cores: []int{1, 2}, Patterns: 10},
		{Name: "C", Cores: []int{3}, Patterns: 10},
	}
	cons := compile(t, a, groups, &soc.ConstraintSet{
		Precedences: []soc.Precedence{{Before: 1, After: 2}},
	})
	for gi := range groups {
		if len(cons.preds[gi]) != 0 {
			t.Errorf("preds[%d] = %v, want none", gi, cons.preds[gi])
		}
	}
}

func TestCompileLiftedCycleRejected(t *testing.T) {
	a, _ := disjointSetup(t)
	// Core-level relation 1->3, 4->2 is acyclic, but over groups
	// G1={1,2}, G2={3,4} it lifts to G1->G2 and G2->G1.
	groups := []*Group{
		{Name: "G1", Cores: []int{1, 2}, Patterns: 10},
		{Name: "G2", Cores: []int{3, 4}, Patterns: 10},
	}
	_, err := CompileConstraints(a.SOC, &soc.ConstraintSet{
		Precedences: []soc.Precedence{{Before: 1, After: 3}, {Before: 4, After: 2}},
	}, groups)
	if err == nil {
		t.Fatal("lifted cycle accepted")
	}
	if !errors.Is(err, soc.ErrInvalid) {
		t.Fatalf("error %v does not wrap soc.ErrInvalid", err)
	}
}

func TestPowerBudgetLimitsConcurrency(t *testing.T) {
	a, groups := disjointSetup(t)
	cons := compile(t, a, groups, &soc.ConstraintSet{PowerBudget: 16})
	sched, err := ScheduleSITestCons(a, groups, Model{}, cons)
	if err != nil {
		t.Fatal(err)
	}
	// Each group needs 8 of the 16 budget: two at a time, T = 80.
	if sched.TotalSI != 80 {
		t.Errorf("T_si = %d, want 80\n%s", sched.TotalSI, sched)
	}
	if err := sched.Validate(); err != nil {
		t.Error(err)
	}
	if err := cons.ValidateSchedule(groups, sched); err != nil {
		t.Error(err)
	}
	for _, sl := range sched.Slots {
		if sl.Power != 8 {
			t.Errorf("slot %s power = %d, want 8", sl.Group.Name, sl.Power)
		}
	}
}

func TestPrecedenceForcesOrder(t *testing.T) {
	a, groups := disjointSetup(t)
	cons := compile(t, a, groups, &soc.ConstraintSet{
		Precedences: []soc.Precedence{{Before: 1, After: 2}, {Before: 2, After: 3}},
	})
	sched, err := ScheduleSITestCons(a, groups, Model{}, cons)
	if err != nil {
		t.Fatal(err)
	}
	// Chain A -> B -> C serializes three of the four groups: T = 120.
	if sched.TotalSI != 120 {
		t.Errorf("T_si = %d, want 120\n%s", sched.TotalSI, sched)
	}
	begin := map[string]int64{}
	end := map[string]int64{}
	for _, sl := range sched.Slots {
		begin[sl.Group.Name] = sl.Begin
		end[sl.Group.Name] = sl.End
	}
	if begin["B"] < end["A"] || begin["C"] < end["B"] {
		t.Errorf("precedence violated: A=[%d,%d) B=[%d,%d) C=[%d,%d)",
			begin["A"], end["A"], begin["B"], end["B"], begin["C"], end["C"])
	}
	if begin["D"] != 0 {
		t.Errorf("unconstrained group D delayed to %d", begin["D"])
	}
	if err := cons.ValidateSchedule(groups, sched); err != nil {
		t.Error(err)
	}
}

func TestExclusionSerializes(t *testing.T) {
	a, groups := disjointSetup(t)
	cons := compile(t, a, groups, &soc.ConstraintSet{Exclusions: [][]int{{1, 2, 3}}})
	sched, err := ScheduleSITestCons(a, groups, Model{}, cons)
	if err != nil {
		t.Fatal(err)
	}
	// A, B, C are pairwise exclusive: T = 120; D overlaps freely.
	if sched.TotalSI != 120 {
		t.Errorf("T_si = %d, want 120\n%s", sched.TotalSI, sched)
	}
	if err := cons.ValidateSchedule(groups, sched); err != nil {
		t.Error(err)
	}
}

func TestNilConsIdenticalToUnconstrained(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2}, 2)
	a.AddRail([]int{3, 4}, 2)
	a.AddRail([]int{5}, 2)
	ref, err := ScheduleSITest(a, fig3Groups(), DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScheduleSITestCons(a, fig3Groups(), DefaultModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ref.String() != got.String() {
		t.Errorf("nil-cons schedule differs:\n%s\nvs\n%s", ref, got)
	}
}

func TestPlannerMatchesConstrainedScheduler(t *testing.T) {
	cases := []*soc.ConstraintSet{
		{PowerBudget: 16},
		{PowerBudget: 8},
		{Precedences: []soc.Precedence{{Before: 1, After: 2}, {Before: 2, After: 3}}},
		{Exclusions: [][]int{{1, 2, 3}}},
		{PowerBudget: 24, CorePower: map[int]int64{1: 20},
			Precedences: []soc.Precedence{{Before: 4, After: 1}},
			Exclusions:  [][]int{{2, 3}}},
	}
	for i, cs := range cases {
		a, groups := disjointSetup(t)
		cons := compile(t, a, groups, cs)
		sched, err := ScheduleSITestCons(a, groups, Model{}, cons)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		p := NewPlannerCons(groups, Model{}, cons)
		for pass := 0; pass < 2; pass++ { // cold memo, then warm
			total, _, err := p.Cost(a)
			if err != nil {
				t.Fatalf("case %d pass %d: %v", i, pass, err)
			}
			if total != sched.TotalSI {
				t.Errorf("case %d pass %d: planner cost %d != scheduler %d", i, pass, total, sched.TotalSI)
			}
		}
		for ri, r := range a.Rails {
			if r.TimeSI != sched.RailSI[ri] {
				t.Errorf("case %d: rail %d TimeSI %d != schedule %d", i, ri, r.TimeSI, sched.RailSI[ri])
			}
		}
	}
}

func TestExactConsMatchesGreedyOnSerialChain(t *testing.T) {
	a, groups := disjointSetup(t)
	cons := compile(t, a, groups, &soc.ConstraintSet{
		Precedences: []soc.Precedence{
			{Before: 1, After: 2}, {Before: 2, After: 3}, {Before: 3, After: 4},
		},
	})
	sched, err := ScheduleSITestCons(a, groups, Model{}, cons)
	if err != nil {
		t.Fatal(err)
	}
	exact, _, _, err := ExactScheduleCons(context.Background(), a, groups, Model{}, cons)
	if err != nil {
		t.Fatal(err)
	}
	// A full chain admits exactly one order: both must hit 160.
	if exact != 160 || sched.TotalSI != 160 {
		t.Errorf("exact = %d, greedy = %d, want 160/160", exact, sched.TotalSI)
	}
}

func TestExactConsNeverBeatenByGreedy(t *testing.T) {
	cases := []*soc.ConstraintSet{
		nil,
		{PowerBudget: 16},
		{PowerBudget: 24},
		{Precedences: []soc.Precedence{{Before: 1, After: 2}}},
		{Exclusions: [][]int{{1, 2}, {3, 4}}},
		{PowerBudget: 16, Precedences: []soc.Precedence{{Before: 1, After: 4}}},
	}
	for i, cs := range cases {
		a, groups := disjointSetup(t)
		var cons *Constraints
		if cs != nil {
			cons = compile(t, a, groups, cs)
		}
		sched, err := ScheduleSITestCons(a, groups, Model{}, cons)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		exact, _, _, err := ExactScheduleCons(context.Background(), a, groups, Model{}, cons)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if exact > sched.TotalSI {
			t.Errorf("case %d: exact %d worse than greedy %d", i, exact, sched.TotalSI)
		}
	}
}

func TestExactConsNilMatchesUnconstrained(t *testing.T) {
	s, tt := fig3SOC(t)
	a := tam.New(s, tt)
	a.AddRail([]int{1, 2}, 2)
	a.AddRail([]int{3, 4}, 2)
	a.AddRail([]int{5}, 2)
	ref, refNodes, err := ExactSchedule(a, fig3Groups(), DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	got, gotNodes, _, err := ExactScheduleCons(context.Background(), a, fig3Groups(), DefaultModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref || gotNodes != refNodes {
		t.Errorf("nil-cons exact (%d, %d nodes) != unconstrained (%d, %d nodes)", got, gotNodes, ref, refNodes)
	}
}

func TestValidateScheduleCatchesViolations(t *testing.T) {
	a, groups := disjointSetup(t)
	cons := compile(t, a, groups, &soc.ConstraintSet{
		PowerBudget: 16,
		Precedences: []soc.Precedence{{Before: 1, After: 2}},
		Exclusions:  [][]int{{3, 4}},
	})
	times, err := CalculateSITestTime(a, groups, Model{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(begins []int64) *Schedule {
		s := &Schedule{}
		for gi := range groups {
			s.Slots = append(s.Slots, Slot{
				Group: groups[gi], GroupTime: times[gi],
				Begin: begins[gi], End: begins[gi] + times[gi].Time,
			})
		}
		return s
	}
	// All four at t=0: 32 power > 16, B before A ends, C overlaps D.
	if err := cons.ValidateSchedule(groups, mk([]int64{0, 0, 0, 0})); err == nil {
		t.Error("power violation not caught")
	}
	// Power ok (two at a time), but B starts before A ends.
	if err := cons.ValidateSchedule(groups, mk([]int64{0, 20, 40, 80})); err == nil {
		t.Error("precedence violation not caught")
	}
	// Power ok, precedence ok, but C and D overlap.
	if err := cons.ValidateSchedule(groups, mk([]int64{0, 40, 80, 100})); err == nil {
		t.Error("exclusion violation not caught")
	}
	// A fully legal schedule passes.
	if err := cons.ValidateSchedule(groups, mk([]int64{0, 40, 80, 120})); err != nil {
		t.Errorf("legal schedule rejected: %v", err)
	}
	// And nil constraints validate anything.
	var nilCons *Constraints
	if err := nilCons.ValidateSchedule(groups, mk([]int64{0, 0, 0, 0})); err != nil {
		t.Errorf("nil constraints rejected a schedule: %v", err)
	}
}

func TestConstrainedInfeasibleGroup(t *testing.T) {
	a, groups := disjointSetup(t)
	cons := compile(t, a, groups, &soc.ConstraintSet{PowerBudget: 4})
	if _, err := ScheduleSITestCons(a, groups, Model{}, cons); err == nil {
		t.Error("scheduler accepted group hotter than the budget")
	}
	p := NewPlannerCons(groups, Model{}, cons)
	if _, _, err := p.Cost(a); err == nil {
		t.Error("planner accepted group hotter than the budget")
	}
	if _, _, _, err := ExactScheduleCons(context.Background(), a, groups, Model{}, cons); err == nil {
		t.Error("exact accepted group hotter than the budget")
	}
}
