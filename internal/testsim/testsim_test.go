package testsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
	"sitam/internal/wrapper"
)

// TestInTestSimMatchesFormula validates the analytic InTest time
// formula against the literal cycle-by-cycle simulation, across every
// core of both main benchmarks and a sweep of widths.
func TestInTestSimMatchesFormula(t *testing.T) {
	for _, name := range []string{"p34392", "d695"} {
		s := soc.MustLoadBenchmark(name)
		for _, c := range s.Cores() {
			for _, w := range []int{1, 2, 3, 7, 16} {
				want, err := wrapper.InTestTime(c, w)
				if err != nil {
					t.Fatal(err)
				}
				// Simulating hundreds of patterns bit-by-bit is slow;
				// cap the pattern count and compare against the formula
				// at the same count.
				p := c.Patterns
				if p > 5 {
					p = 5
				}
				d, err := wrapper.Combine(c, w)
				if err != nil {
					t.Fatal(err)
				}
				wantCapped := d.TestTime(p)
				got, err := InTestRun(c, w, p)
				if err != nil {
					t.Fatal(err)
				}
				if got != wantCapped {
					t.Errorf("%s core %d w=%d: simulated %d cycles, formula %d", name, c.ID, w, got, wantCapped)
				}
				_ = want
			}
		}
	}
}

func TestInTestSimZeroPatterns(t *testing.T) {
	s := soc.MustLoadBenchmark("d695")
	got, err := InTestRun(s.Cores()[0], 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("0 patterns took %d cycles", got)
	}
}

// buildRailSOC makes a small SOC and space for rail simulations.
func buildRailSOC(t *testing.T) (*soc.SOC, *sifault.Space) {
	t.Helper()
	s := &soc.SOC{Name: "rail", BusWidth: 8, CoreList: []*soc.Core{
		{ID: 1, Inputs: 3, Outputs: 7, Patterns: 1},
		{ID: 2, Inputs: 2, Outputs: 12, Patterns: 1},
		{ID: 3, Inputs: 4, Outputs: 5, Patterns: 1},
	}}
	return s, sifault.NewSpace(s)
}

// TestApplySIDeliversPattern checks end-to-end data integrity: after
// the simulated shift, every involved boundary cell holds exactly the
// symbol the pattern requested.
func TestApplySIDeliversPattern(t *testing.T) {
	s, sp := buildRailSOC(t)
	rng := rand.New(rand.NewSource(4))
	for _, width := range []int{1, 2, 3, 5} {
		rail, err := NewRail(s, sp, []int{1, 2, 3}, width)
		if err != nil {
			t.Fatal(err)
		}
		// A dense random pattern over cores 1 and 3; core 2 bypassed.
		var care []sifault.Care
		for _, id := range []int{1, 3} {
			start, n := sp.Range(id)
			for j := 0; j < n; j++ {
				sym := []sifault.Symbol{sifault.Zero, sifault.One, sifault.Rise, sifault.Fall}[rng.Intn(4)]
				care = append(care, sifault.Care{Pos: int32(start + j), Sym: sym})
			}
		}
		p := &sifault.Pattern{Care: care, VictimPos: -1, VictimCore: -1, Weight: 1}
		sortCares(p)
		involved := map[int]bool{1: true, 3: true}
		cycles, err := rail.ApplySI(sp, p, involved, 3)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		// Analytic per-pattern cost: ceil(7/w) + ceil(5/w) + 1 bypass + 3.
		want := wrapper.SIShiftCycles(7, width) + wrapper.SIShiftCycles(5, width) + 1 + 3
		if cycles != want {
			t.Errorf("width %d: simulated %d cycles, model %d", width, cycles, want)
		}
	}
}

func sortCares(p *sifault.Pattern) {
	for i := 1; i < len(p.Care); i++ {
		for j := i; j > 0 && p.Care[j].Pos < p.Care[j-1].Pos; j-- {
			p.Care[j], p.Care[j-1] = p.Care[j-1], p.Care[j]
		}
	}
}

// TestApplySIMatchesScheduleModel cross-validates the simulator against
// sischedule.CalculateSITestTime on a full rail with random groups.
func TestApplySIMatchesScheduleModel(t *testing.T) {
	s, sp := buildRailSOC(t)
	tt, err := wrapper.NewTimeTable(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + rng.Intn(6)
		// Random involved subset (non-empty).
		var cores []int
		for _, id := range []int{1, 2, 3} {
			if rng.Intn(2) == 0 {
				cores = append(cores, id)
			}
		}
		if len(cores) == 0 {
			cores = []int{2}
		}
		group := &sischedule.Group{Name: "g", Cores: cores, Patterns: 1}
		a := tam.New(s, tt)
		a.AddRail([]int{1, 2, 3}, width)
		m := sischedule.Model{Bypass: 1, Overhead: 3}
		times, err := sischedule.CalculateSITestTime(a, []*sischedule.Group{group}, m)
		if err != nil {
			return false
		}

		rail, err := NewRail(s, sp, []int{1, 2, 3}, width)
		if err != nil {
			return false
		}
		involved := map[int]bool{}
		var care []sifault.Care
		for _, id := range cores {
			involved[id] = true
			start, n := sp.Range(id)
			for j := 0; j < n; j++ {
				care = append(care, sifault.Care{Pos: int32(start + j), Sym: sifault.One})
			}
		}
		p := &sifault.Pattern{Care: care, VictimPos: -1, VictimCore: -1, Weight: 1}
		cycles, err := rail.ApplySI(sp, p, involved, m.Overhead)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// The group has 1 pattern on a single rail: its analytic time
		// is exactly the per-pattern cost.
		if cycles != times[0].Time {
			t.Logf("seed %d width %d cores %v: simulated %d, model %d",
				seed, width, cores, cycles, times[0].Time)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestNewRailValidation(t *testing.T) {
	s, sp := buildRailSOC(t)
	if _, err := NewRail(s, sp, []int{1, 99}, 2); err == nil {
		t.Error("accepted unknown core")
	}
	if _, err := NewRail(s, sp, []int{1}, 0); err == nil {
		t.Error("accepted width 0")
	}
}

func TestShiftRegisterSemantics(t *testing.T) {
	r := newShiftRegister(3)
	outs := []byte{}
	for _, in := range []byte{1, 2, 3, 4, 5} {
		outs = append(outs, r.clock(in))
	}
	// First three clocks emit zeros, then the first bits re-emerge.
	want := []byte{0, 0, 0, 1, 2}
	for i := range want {
		if outs[i] != want[i] {
			t.Fatalf("outs = %v, want %v", outs, want)
		}
	}
	if r.cells[0] != 5 || r.cells[2] != 3 {
		t.Errorf("cells = %v", r.cells)
	}
	empty := newShiftRegister(0)
	if got := empty.clock(7); got != 7 {
		t.Errorf("zero-length chain clock = %d, want feed-through", got)
	}
}
