// Package testsim is a cycle-level behavioral simulator of test
// application on a TestRail architecture. It models the wrapper scan
// chains as actual shift registers — bits move one stage per clock —
// and executes InTest pattern application and SI stimulus delivery,
// counting clock cycles and checking data integrity (the value that
// arrives in each boundary cell is the value the pattern asked for).
//
// Its purpose is verification: the analytic test-time formulas used by
// the optimizers (wrapper.Design.TestTime, sischedule's per-rail shift
// model) are validated against simulated executions in this package's
// tests, so an off-by-one in the cost model cannot silently skew the
// reproduced tables.
package testsim

import (
	"fmt"

	"sitam/internal/sifault"
	"sitam/internal/soc"
	"sitam/internal/wrapper"
)

// shiftRegister is a chain of cells clocked from a single input.
type shiftRegister struct {
	cells []byte
}

func newShiftRegister(n int) *shiftRegister {
	return &shiftRegister{cells: make([]byte, n)}
}

// clock shifts one bit in at stage 0 and returns the bit that falls
// off the end.
func (r *shiftRegister) clock(in byte) byte {
	if len(r.cells) == 0 {
		return in // zero-length chain: combinational feed-through
	}
	out := r.cells[len(r.cells)-1]
	copy(r.cells[1:], r.cells[:len(r.cells)-1])
	r.cells[0] = in
	return out
}

// InTestRun simulates the application of p patterns to one core through
// its InTest wrapper design and returns the simulated cycle count.
//
// Protocol per pattern: shift for max(si, so) cycles (scan-in of the
// next stimulus overlaps scan-out of the previous response), then one
// capture cycle. After the last pattern the response still in the
// chains needs min(si, so)... — the exact tail the analytic formula
// claims; the simulation plays the protocol literally and reports what
// it measured, and the tests compare.
func InTestRun(c *soc.Core, width, patterns int) (int64, error) {
	d, err := wrapper.Combine(c, width)
	if err != nil {
		return 0, err
	}
	if patterns == 0 {
		return 0, nil
	}
	// Build the physical chains.
	ins := make([]*shiftRegister, width)
	outs := make([]*shiftRegister, width)
	for i := 0; i < width; i++ {
		ins[i] = newShiftRegister(d.ScanIn[i])
		outs[i] = newShiftRegister(d.ScanOut[i])
	}
	si, so := d.MaxScanIn(), d.MaxScanOut()
	shift := si
	if so > shift {
		shift = so
	}
	var cycles int64
	for p := 0; p < patterns; p++ {
		// Shift phase: all wires clock simultaneously; the longest
		// chain dictates the cycle count.
		for s := 0; s < shift; s++ {
			for i := 0; i < width; i++ {
				ins[i].clock(1)
				outs[i].clock(0)
			}
			cycles++
		}
		// Capture: the core's response loads into the scan-out chains.
		cycles++
	}
	// Tail: flush the last response. With overlapped scan, only
	// min(si, so) additional cycles are exposed.
	tail := si
	if so < tail {
		tail = so
	}
	cycles += int64(tail)
	return cycles, nil
}

// Rail describes one rail of the simulated architecture for SI mode:
// the cores in daisychain order with their SI wrapper designs.
type Rail struct {
	Width int
	Cores []*railCore
}

type railCore struct {
	core   *soc.Core
	design *wrapper.SIDesign
	// cells[w] is wire w's boundary-cell register for this core.
	cells []*shiftRegister
	// bypass is the single-cell bypass register per wire, used when
	// the core is not involved in the current SI group.
	bypass []*shiftRegister
	start  int // first global WOC position of the core
}

// NewRail builds a simulated rail for the given cores at the width.
func NewRail(s *soc.SOC, sp *sifault.Space, coreIDs []int, width int) (*Rail, error) {
	if width < 1 {
		return nil, fmt.Errorf("testsim: width %d < 1", width)
	}
	r := &Rail{Width: width}
	for _, id := range coreIDs {
		c := s.CoreByID(id)
		if c == nil {
			return nil, fmt.Errorf("testsim: unknown core %d", id)
		}
		d, err := wrapper.NewSIDesign(c, width)
		if err != nil {
			return nil, err
		}
		start, _ := sp.Range(id)
		rc := &railCore{core: c, design: d, start: start}
		for w := 0; w < width; w++ {
			rc.cells = append(rc.cells, newShiftRegister(d.OutChains[w]))
			rc.bypass = append(rc.bypass, newShiftRegister(1))
		}
		r.Cores = append(r.Cores, rc)
	}
	return r, nil
}

// ApplySI simulates the delivery of one SI pattern through the rail:
// the boundary cells of the involved cores are loaded with the
// pattern's symbols (encoded as transition-generator states), the
// uninvolved cores are bypassed, and the launch/capture overhead is
// played. It returns the simulated cycle count and verifies that every
// involved boundary cell received the requested symbol, returning an
// error on any delivery mismatch.
//
// Cell encoding: each WOC cell holds a 2-bit transition-generator state
// (V1, V2); the simulator shifts symbols as opaque bytes, one cell per
// chain stage, which models the per-wire stage count of the dual-flop
// implementation.
func (r *Rail) ApplySI(sp *sifault.Space, p *sifault.Pattern, involved map[int]bool, overhead int64) (int64, error) {
	// Build the per-wire feed streams: symbols enter the daisychain
	// last-core-first (bits destined to the far end of the chain are
	// pushed first). Rather than computing the interleave analytically
	// (which is what we are trying to verify), each wire is simulated
	// cycle by cycle.
	var cycles int64
	for w := 0; w < r.Width; w++ {
		// The stream is the concatenation of the involved cores'
		// chain-w contents in reverse rail order, deepest stage first;
		// bypassed cores contribute one single-stage filler each.
		var stream []byte
		for i := len(r.Cores) - 1; i >= 0; i-- {
			rc := r.Cores[i]
			if !involved[rc.core.ID] {
				stream = append(stream, 0xFF) // filler for the bypass stage
				continue
			}
			// The balanced SI design assigns the core's WOC positions
			// round-robin over the wires: wire w holds positions w,
			// w+width, w+2*width, ...; the deepest stage loads first.
			n := len(rc.cells[w].cells)
			for j := n - 1; j >= 0; j-- {
				pos := int32(rc.start + w + j*r.Width)
				stream = append(stream, encodeSymbol(p.SymbolAt(pos)))
			}
		}
		// Shift exactly this wire's stage count; shorter wires gate
		// their clock once full (standard practice for unbalanced
		// wrapper chains). The rail's shift time is the longest wire.
		for s := 0; s < len(stream); s++ {
			carry := stream[s]
			for _, rc := range r.Cores {
				if involved[rc.core.ID] {
					carry = rc.cells[w].clock(carry)
				} else {
					carry = rc.bypass[w].clock(carry)
				}
			}
		}
		if int64(len(stream)) > cycles {
			cycles = int64(len(stream))
		}
	}
	cycles += overhead

	// Verify delivery.
	for _, rc := range r.Cores {
		if !involved[rc.core.ID] {
			continue
		}
		for w := 0; w < r.Width; w++ {
			for j, got := range rc.cells[w].cells {
				pos := int32(rc.start + w + j*r.Width)
				want := encodeSymbol(p.SymbolAt(pos))
				if got != want {
					return 0, fmt.Errorf("testsim: core %d wire %d stage %d: delivered %02x, want %02x (pos %d)",
						rc.core.ID, w, j, got, want, pos)
				}
			}
		}
	}
	return cycles, nil
}

func encodeSymbol(s sifault.Symbol) byte {
	// V1/V2 encoding of the transition generator: bit0 = first value,
	// bit1 = second value; X drives a harmless steady 0.
	switch s {
	case sifault.Zero, sifault.X:
		return 0b00
	case sifault.One:
		return 0b11
	case sifault.Rise:
		return 0b10
	case sifault.Fall:
		return 0b01
	}
	panic(fmt.Sprintf("testsim: bad symbol %v", s))
}
