package experiments

import (
	"context"
	"fmt"
	"io"

	"sitam/internal/sifault"
	"sitam/internal/sisim"
	"sitam/internal/soc"
	"sitam/internal/topology"
)

// RunCoverage demonstrates the paper's premise quantitatively: high SI
// fault coverage on core-external interconnects requires very large
// pattern counts. It builds an interconnect topology over a benchmark
// SOC, grades growing prefixes of randomly generated SI patterns with
// the behavioral fault simulator, and contrasts the curve with the
// deterministic maximal-aggressor test set (complete by construction
// at 6 patterns per net).
//
// The context is checked between stages; a cancelled or expired context
// stops the study with a trailing note and the context's error.
func RunCoverage(ctx context.Context, w io.Writer, seed int64, quick bool) error {
	s, err := soc.LoadBenchmark("p34392")
	if err != nil {
		return err
	}
	topo, err := topology.Random(s, topology.RandomConfig{FanOut: 2, Width: 16, BusFraction: 0.5}, seed)
	if err != nil {
		return err
	}
	k := 3
	sim, err := sisim.New(topo, sisim.Config{LocalityK: k, Threshold: 0.6})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SI fault coverage on %s: %d nets, %d MA faults (locality k=%d, threshold 0.6)\n",
		s.Name, len(topo.Nets), 6*len(topo.Nets), k)

	ma, err := topology.MAPatterns(topo, k)
	if err != nil {
		return err
	}
	maCov := sim.Grade(ma)
	fmt.Fprintf(w, "  deterministic MA set: %d patterns -> %.1f%% coverage\n",
		len(ma), 100*maCov.Fraction())

	if err := ctx.Err(); err != nil {
		fmt.Fprintf(w, "  [stopped before random-pattern curve: %v]\n", err)
		return err
	}
	n := 80000
	checkpoints := []int{1000, 5000, 10000, 20000, 40000, 80000}
	if quick {
		n = 8000
		checkpoints = []int{500, 2000, 8000}
	}
	random, err := sifault.Generate(s, sifault.GenConfig{N: n, Seed: seed})
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		fmt.Fprintf(w, "  [stopped before coverage grading: %v]\n", err)
		return err
	}
	curve := sim.CoverageCurve(random, checkpoints)
	fmt.Fprintf(w, "  random patterns (the N_r protocol):\n")
	for i, cp := range checkpoints {
		fmt.Fprintf(w, "    N_r=%6d: %5.1f%% coverage\n", cp, 100*curve[i])
	}
	fmt.Fprintf(w, "  -> random stimuli need orders of magnitude more patterns than the\n")
	fmt.Fprintf(w, "     deterministic set for the same faults, which is why the paper's\n")
	fmt.Fprintf(w, "     N_r reaches 100000 and SI test time rivals core-internal test time.\n")
	return nil
}
