package experiments

import (
	"fmt"
	"strings"

	"sitam/internal/sifault"
)

// Motivation reproduces the Section 2 back-of-envelope estimate that
// motivates the paper: a 32-bit functional bus shared by ten cores, each
// core on average sending data to two others, yields N = 2·10·32 = 640
// victim interconnects; the MA fault model then needs 6N = 3840 test
// vector pairs and the reduced MT model with locality factor k = 3
// roughly N·2^(2k+2) = 163840 — driving serial ExTest time into the
// millions of cycles, comparable to or above core-internal test time.
type Motivation struct {
	Cores          int
	BusWidth       int
	FanOut         int
	Victims        int
	MAPairs        int64
	ReducedMTPairs int64
	LocalityK      int

	// TotalIOCells is the assumed sum of all core I/Os ("several
	// thousand for a typical SOC").
	TotalIOCells int64

	// SerialMACycles and SerialMTCycles are the serial (1-bit) ExTest
	// times for the two models.
	SerialMACycles int64
	SerialMTCycles int64
}

// DefaultMotivation returns the paper's exact Section 2 example.
func DefaultMotivation() Motivation {
	return NewMotivation(10, 32, 2, 3, 4000)
}

// NewMotivation computes the estimate for the given SOC shape.
func NewMotivation(cores, busWidth, fanOut, k int, totalIOCells int64) Motivation {
	victims := fanOut * cores * busWidth
	m := Motivation{
		Cores:          cores,
		BusWidth:       busWidth,
		FanOut:         fanOut,
		Victims:        victims,
		LocalityK:      k,
		MAPairs:        sifault.MACount(victims),
		ReducedMTPairs: sifault.ReducedMTCount(victims, k),
		TotalIOCells:   totalIOCells,
	}
	m.SerialMACycles = sifault.SerialExTestCycles(m.MAPairs, totalIOCells)
	m.SerialMTCycles = sifault.SerialExTestCycles(m.ReducedMTPairs, totalIOCells)
	return m
}

// Format renders the estimate as a short report.
func (m Motivation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2 motivation estimate\n")
	fmt.Fprintf(&b, "  %d cores on a %d-bit bus, fan-out %d -> N = %d victim interconnects\n",
		m.Cores, m.BusWidth, m.FanOut, m.Victims)
	fmt.Fprintf(&b, "  MA fault model:          6N = %d test vector pairs\n", m.MAPairs)
	fmt.Fprintf(&b, "  reduced MT (k=%d): N*2^(2k+2) = %d test vector pairs\n", m.LocalityK, m.ReducedMTPairs)
	fmt.Fprintf(&b, "  serial ExTest over %d boundary cells:\n", m.TotalIOCells)
	fmt.Fprintf(&b, "    MA:         %d cc (millions of cycles)\n", m.SerialMACycles)
	fmt.Fprintf(&b, "    reduced MT: %d cc (two orders of magnitude higher)\n", m.SerialMTCycles)
	return b.String()
}
