package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"sitam/internal/soc"
)

func TestMotivationMatchesPaper(t *testing.T) {
	m := DefaultMotivation()
	if m.Victims != 640 {
		t.Errorf("Victims = %d, want 640", m.Victims)
	}
	if m.MAPairs != 3840 {
		t.Errorf("MAPairs = %d, want 3840", m.MAPairs)
	}
	if m.ReducedMTPairs != 163840 {
		t.Errorf("ReducedMTPairs = %d, want 163840", m.ReducedMTPairs)
	}
	if m.SerialMACycles < 1_000_000 {
		t.Errorf("MA serial ExTest %d not in the millions", m.SerialMACycles)
	}
	if m.SerialMTCycles < 40*m.SerialMACycles {
		t.Errorf("MT %d not ~two orders above MA %d", m.SerialMTCycles, m.SerialMACycles)
	}
	out := m.Format()
	for _, want := range []string{"640", "3840", "163840"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestRunTableSmall(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	var progress bytes.Buffer
	cfg := TableConfig{
		Widths:    []int{8, 16},
		Nr:        []int{2000},
		Groupings: []int{1, 2},
		Seed:      1,
		Progress:  &progress,
	}
	tbl, err := RunTable(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(tbl.Cells))
	}
	for _, c := range tbl.Cells {
		if c.T8 <= 0 || c.Tmin <= 0 {
			t.Errorf("cell W=%d has non-positive times: %+v", c.Wmax, c)
		}
		if len(c.Tg) != 2 {
			t.Errorf("cell W=%d has %d Tg entries", c.Wmax, len(c.Tg))
		}
		if c.Tmin > c.Tg[0] || c.Tmin > c.Tg[1] {
			t.Errorf("Tmin %d above a Tg value %v", c.Tmin, c.Tg)
		}
		if c.DeltaTg() < 0 {
			t.Errorf("ΔT_g negative: %v", c.DeltaTg())
		}
	}
	// Wider TAM must help substantially on this SOC.
	if tbl.Cells[1].Tmin >= tbl.Cells[0].Tmin {
		t.Errorf("W=16 Tmin %d not below W=8 Tmin %d", tbl.Cells[1].Tmin, tbl.Cells[0].Tmin)
	}
	if stats := tbl.CompactionStats[2000][1]; stats.Compacted == 0 || stats.Original != 2000 {
		t.Errorf("compaction stats wrong: %+v", stats)
	}
	if progress.Len() == 0 {
		t.Error("no progress output")
	}

	text := tbl.Format()
	for _, want := range []string{"p34392", "N_r = 2000", "T_[8]", "ΔT_g"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q", want)
		}
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| Wmax |") || !strings.Contains(md, "#### p34392") {
		t.Errorf("Markdown malformed:\n%s", md)
	}
}

func TestCellDeltas(t *testing.T) {
	c := Cell{T8: 200, Tg: []int64{150, 120}, Tmin: 120}
	if got := c.DeltaT8(); got != 40 {
		t.Errorf("DeltaT8 = %v, want 40", got)
	}
	if got := c.DeltaTg(); got != 20 {
		t.Errorf("DeltaTg = %v, want 20", got)
	}
	var zero Cell
	if zero.DeltaT8() != 0 || zero.DeltaTg() != 0 {
		t.Error("zero cell deltas should be 0")
	}
}

func TestRunAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	var buf bytes.Buffer
	if err := RunAblations(context.Background(), &buf, 1, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[1]", "[2]", "[3]", "[4]", "[5]", "greedy", "DSATUR"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}
