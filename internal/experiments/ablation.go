package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"sitam/internal/compaction"
	"sitam/internal/core"
	"sitam/internal/exact"
	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
)

// RunAblations exercises the design choices DESIGN.md calls out and
// writes a report to w:
//
//  1. greedy vs DSATUR clique cover (compacted pattern count and the
//     greedy heuristic's gap on a medium instance);
//  2. victim-core quiescing probability vs compaction ratio and T_soc;
//  3. bus usage probability vs compaction (the shared-bus conflict
//     rule's effect);
//  4. hypergraph balance tolerance vs residual (cut) patterns;
//  5. Algorithm 1's concurrent SI scheduling vs naive serial
//     application of the groups.
//
// The context is checked between sections: a cancelled or expired
// context stops the study after the section in flight, reporting the
// sections already written plus a trailing note, and returns the
// context's error so callers can distinguish a truncated report.
func RunAblations(ctx context.Context, w io.Writer, seed int64, quick bool) error {
	s, err := soc.LoadBenchmark("p34392")
	if err != nil {
		return err
	}
	section := func(name string) error {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(w, "\n[stopped before section %s: %v]\n", name, err)
			return err
		}
		return nil
	}
	nr := 20000
	sample := 3000
	if quick {
		nr = 5000
		sample = 800
	}
	wmax := 32

	fmt.Fprintf(w, "Ablation study on %s (Nr=%d, Wmax=%d, seed=%d)\n", s.Name, nr, wmax, seed)

	// --- 1. Greedy vs DSATUR cover.
	if err := section("1"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n[1] vertical compaction: greedy vs DSATUR (first %d patterns)\n", sample)
	patterns, err := sifault.Generate(s, sifault.GenConfig{N: sample, Seed: seed})
	if err != nil {
		return err
	}
	sp := sifault.NewSpace(s)
	_, gs := compaction.Greedy(sp, patterns)
	_, ds, err := compaction.DSATUR(patterns)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "    greedy: %d -> %d (ratio %.2fx)\n", gs.Original, gs.Compacted, gs.Ratio())
	fmt.Fprintf(w, "    DSATUR: %d -> %d (ratio %.2fx); greedy gap %.1f%%\n",
		ds.Original, ds.Compacted, ds.Ratio(),
		100*float64(gs.Compacted-ds.Compacted)/float64(ds.Compacted))

	// --- 2. Quiescing probability sweep.
	if err := section("2"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n[2] victim-core quiescing probability vs compaction and T_soc (g=4, W=%d)\n", wmax)
	for _, q := range []float64{-1, 0.25, 0.5, 1.0} {
		pats, err := sifault.Generate(s, sifault.GenConfig{N: nr, Seed: seed, QuiesceProb: q})
		if err != nil {
			return err
		}
		gr, err := core.BuildGroups(s, pats, core.GroupingOptions{Parts: 4, Seed: seed})
		if err != nil {
			return err
		}
		res, err := core.TAMOptimization(s, wmax, gr.Groups, sischedule.DefaultModel())
		if err != nil {
			return err
		}
		label := q
		if q < 0 {
			label = 0
		}
		fmt.Fprintf(w, "    q=%.2f: %6d -> %5d patterns (%.1fx), T_soc=%d (T_si=%d)\n",
			label, gr.Stats.Original, gr.TotalCompacted(), gr.Stats.Ratio(),
			res.Breakdown.TimeSOC, res.Breakdown.TimeSI)
	}

	// --- 3. Bus usage probability sweep.
	if err := section("3"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n[3] shared-bus usage probability vs compaction (g=1)\n")
	for _, bp := range []float64{-1, 0.25, 0.5, 0.75} {
		pats, err := sifault.Generate(s, sifault.GenConfig{N: nr, Seed: seed, BusProb: bp})
		if err != nil {
			return err
		}
		gr, err := core.BuildGroups(s, pats, core.GroupingOptions{Parts: 1, Seed: seed})
		if err != nil {
			return err
		}
		label := bp
		if bp < 0 {
			label = 0
		}
		fmt.Fprintf(w, "    busProb=%.2f: %6d -> %5d patterns (%.1fx)\n",
			label, gr.Stats.Original, gr.TotalCompacted(), gr.Stats.Ratio())
	}

	// --- 4. Balance tolerance sweep.
	if err := section("4"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n[4] hypergraph balance tolerance vs residual patterns (g=4)\n")
	patterns, err = sifault.Generate(s, sifault.GenConfig{N: nr, Seed: seed})
	if err != nil {
		return err
	}
	for _, tol := range []float64{0.02, 0.10, 0.30, 0.60} {
		gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 4, Seed: seed, Tolerance: tol})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "    tol=%.2f: residual %6d of %d patterns (%.1f%%), %d compacted\n",
			tol, gr.CutPatterns, gr.Stats.Original,
			100*float64(gr.CutPatterns)/float64(gr.Stats.Original), gr.TotalCompacted())
	}

	// --- 5. Concurrent vs serial SI scheduling.
	if err := section("5"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n[5] Algorithm 1 concurrency vs serial SI application (g=8, W=%d)\n", wmax)
	gr, err := core.BuildGroups(s, patterns, core.GroupingOptions{Parts: 8, Seed: seed})
	if err != nil {
		return err
	}
	res, err := core.TAMOptimization(s, wmax, gr.Groups, sischedule.DefaultModel())
	if err != nil {
		return err
	}
	serial, err := sischedule.SerialTime(res.Architecture, gr.Groups, sischedule.DefaultModel())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "    Algorithm 1: T_si=%d; serial: T_si=%d (overlap saves %.1f%%)\n",
		res.Breakdown.TimeSI, serial,
		100*float64(serial-res.Breakdown.TimeSI)/float64(serial))

	// --- 6. TestRail vs multiplexed Test Bus.
	if err := section("6"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n[6] TestRail vs Test Bus architecture style (g=8, W=%d)\n", wmax)
	engBus, err := core.NewEngine(s, wmax, &core.TestBusEvaluator{Groups: gr.Groups, Model: sischedule.DefaultModel()})
	if err != nil {
		return err
	}
	busArch, busObj, err := engBus.Optimize()
	if err != nil {
		return err
	}
	_ = busArch
	fmt.Fprintf(w, "    TestRail (parallel ExTest): T_soc=%d; Test Bus (serial ExTest): T_soc=%d (+%.1f%%)\n",
		res.Breakdown.TimeSOC, busObj,
		100*float64(busObj-res.Breakdown.TimeSOC)/float64(res.Breakdown.TimeSOC))

	// --- 7. Heuristic optimality gap on tiny instances.
	if err := section("7"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n[7] Algorithm 2 vs exhaustive optimum (tiny random SOCs)\n")
	instances := 12
	if quick {
		instances = 5
	}
	worst, sum := 0.0, 0.0
	for i := 0; i < instances; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		ts := randomTinySOC(rng)
		gset := randomTinyGroups(rng, ts)
		gap, err := exact.Gap(ts, 2+rng.Intn(4), gset, sischedule.DefaultModel())
		if err != nil {
			return err
		}
		sum += gap
		if gap > worst {
			worst = gap
		}
	}
	fmt.Fprintf(w, "    %d instances: mean gap %.2f%%, worst gap %.2f%%\n",
		instances, 100*sum/float64(instances), 100*worst)

	// --- 8. Algorithm 1 vs exact branch-and-bound schedule.
	if err := section("8"); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n[8] Algorithm 1 vs optimal SI schedule (same g=8 groups, W=%d)\n", wmax)
	optSI, nodes, err := sischedule.ExactSchedule(res.Architecture, gr.Groups, sischedule.DefaultModel())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "    Algorithm 1: T_si=%d; optimal: T_si=%d (gap %.2f%%, %d B&B nodes)\n",
		res.Breakdown.TimeSI, optSI,
		100*float64(res.Breakdown.TimeSI-optSI)/float64(optSI), nodes)
	return nil
}

func randomTinySOC(rng *rand.Rand) *soc.SOC {
	s := &soc.SOC{Name: "tiny", BusWidth: 8}
	n := 3 + rng.Intn(3)
	for id := 1; id <= n; id++ {
		c := &soc.Core{
			ID:       id,
			Inputs:   1 + rng.Intn(10),
			Outputs:  1 + rng.Intn(10),
			Patterns: 1 + rng.Intn(60),
		}
		for j := rng.Intn(3); j > 0; j-- {
			c.ScanChains = append(c.ScanChains, 1+rng.Intn(40))
		}
		s.CoreList = append(s.CoreList, c)
	}
	return s
}

func randomTinyGroups(rng *rand.Rand, s *soc.SOC) []*sischedule.Group {
	var groups []*sischedule.Group
	for gi := 1 + rng.Intn(3); gi > 0; gi-- {
		var cores []int
		for _, c := range s.Cores() {
			if rng.Intn(2) == 0 {
				cores = append(cores, c.ID)
			}
		}
		if len(cores) == 0 {
			cores = []int{s.Cores()[0].ID}
		}
		groups = append(groups, &sischedule.Group{Name: "g", Cores: cores, Patterns: int64(1 + rng.Intn(200))})
	}
	return groups
}
