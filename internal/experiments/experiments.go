// Package experiments regenerates the evaluation artifacts of the paper:
// Tables 2 and 3 (overall SOC test time for p34392 and p93791 under the
// SI-oblivious baseline and the SI-aware optimizer at several SI test
// grouping counts), the Section 2 motivation estimates, and the ablation
// sweeps called out in DESIGN.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"sitam/internal/core"
	"sitam/internal/sifault"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/trarchitect"
)

// TableConfig parameterizes one table run (the paper's Table 2/3 setup).
type TableConfig struct {
	// Widths is the set of W_max values. Nil defaults to 8..64 step 8.
	Widths []int

	// Nr is the set of initial SI pattern counts. Nil defaults to
	// {10000, 100000}.
	Nr []int

	// Groupings is the set of SI partition counts g. Nil defaults to
	// {1, 2, 4, 8}.
	Groupings []int

	// Seed drives pattern generation and partitioning.
	Seed int64

	// Gen overrides the pattern generator defaults (N and Seed are set
	// per run and ignored here).
	Gen sifault.GenConfig

	// Model is the SI shift cost model; the zero value selects
	// sischedule.DefaultModel.
	Model sischedule.Model

	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer

	// Parallel configures candidate-evaluation concurrency and
	// memoization for every optimization in the sweep. The zero value
	// runs serially without a cache, matching the historical behavior;
	// any setting yields byte-identical table numbers.
	Parallel core.ParallelConfig
}

func (c TableConfig) withDefaults() TableConfig {
	if c.Widths == nil {
		c.Widths = []int{8, 16, 24, 32, 40, 48, 56, 64}
	}
	if c.Nr == nil {
		c.Nr = []int{10000, 100000}
	}
	if c.Groupings == nil {
		c.Groupings = []int{1, 2, 4, 8}
	}
	if c.Model == (sischedule.Model{}) {
		c.Model = sischedule.DefaultModel()
	}
	return c
}

// Cell is one table entry: the outcomes at a single (Nr, Wmax).
type Cell struct {
	Wmax int
	Nr   int

	// T8 is the SI-oblivious result: architecture optimized for InTest
	// only, SI tests then scheduled on it (best grouping).
	T8 int64

	// Tg[i] is the SI-aware result with Groupings[i] parts.
	Tg []int64

	// Tmin is min over Tg.
	Tmin int64

	// InTest8 and InTestMin are the InTest components of T8 and Tmin
	// (reported for shape analysis; not a paper column).
	InTest8   int64
	InTestMin int64
}

// DeltaT8 returns (T8-Tmin)/T8 in percent — the paper's ΔT_[8].
func (c Cell) DeltaT8() float64 {
	if c.T8 == 0 {
		return 0
	}
	return float64(c.T8-c.Tmin) / float64(c.T8) * 100
}

// DeltaTg returns (Tg1-Tmin)/Tg1 in percent — the paper's ΔT_g, the
// benefit of two-dimensional compaction over count-only compaction.
func (c Cell) DeltaTg() float64 {
	if len(c.Tg) == 0 || c.Tg[0] == 0 {
		return 0
	}
	return float64(c.Tg[0]-c.Tmin) / float64(c.Tg[0]) * 100
}

// Table is the outcome of a full table run for one SOC.
type Table struct {
	SOC       string
	Groupings []int
	Cells     []Cell
	Elapsed   time.Duration

	// CompactionStats[nr][g] records the 2-D compaction outcome used
	// for the cells with that Nr and grouping count.
	CompactionStats map[int]map[int]GroupingStat

	// Partial reports that the run was cut short by a done context.
	// Cells holds only the fully computed cells — a cell whose
	// optimization was interrupted is discarded, never reported with a
	// degraded number, so every value present is exact.
	Partial bool

	// Reason describes where the run stopped when Partial is set.
	Reason string
}

// GroupingStat summarizes one (Nr, g) compaction.
type GroupingStat struct {
	Original  int64
	Compacted int
	Residual  int64
	Groups    int
}

// parCfg resolves TableConfig.Parallel: the zero value selects the
// historical serial, cache-free path; anything else passes through
// (with core's own zero-value conventions: Workers 0 = GOMAXPROCS,
// CacheSize 0 = DefaultCacheSize).
func parCfg(cfg TableConfig) core.ParallelConfig {
	if cfg.Parallel == (core.ParallelConfig{}) {
		return core.ParallelConfig{Workers: 1, CacheSize: -1}
	}
	return cfg.Parallel
}

// RunTable reproduces one of the paper's tables for SOC s.
func RunTable(s *soc.SOC, cfg TableConfig) (*Table, error) {
	return RunTableCtx(context.Background(), s, cfg)
}

// RunTableCtx is RunTable with graceful degradation under a done
// context. The table is built cell by cell; on cancellation or deadline
// expiry the run stops and the cells completed so far come back in a
// Table marked Partial with a nil error — a cell whose optimization was
// interrupted is discarded rather than reported with degraded numbers,
// so every cell present is exact. Only when the context fires before
// the first cell completed does the context's error come back.
func RunTableCtx(ctx context.Context, s *soc.SOC, cfg TableConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	tbl := &Table{
		SOC:             s.Name,
		Groupings:       append([]int(nil), cfg.Groupings...),
		CompactionStats: make(map[int]map[int]GroupingStat),
	}
	logf := func(format string, a ...any) {
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, format+"\n", a...)
		}
	}
	// finish marks the table partial at the given stage and returns it,
	// or surfaces the context error when nothing was completed.
	finish := func(stage string) (*Table, error) {
		tbl.Elapsed = time.Since(start)
		if len(tbl.Cells) == 0 {
			return nil, ctx.Err()
		}
		tbl.Partial = true
		tbl.Reason = fmt.Sprintf("stopped during %s: %v", stage, ctx.Err())
		logf("%s: %s; returning %d completed cells", s.Name, tbl.Reason, len(tbl.Cells))
		return tbl, nil
	}

	for _, nr := range cfg.Nr {
		gen := cfg.Gen
		gen.N = nr
		gen.Seed = cfg.Seed + int64(nr)
		patterns, cut, err := sifault.GenerateCtx(ctx, s, gen)
		if err != nil {
			return nil, err
		}
		if cut {
			// A truncated pattern set would make the Nr label a lie;
			// drop the whole block instead.
			return finish(fmt.Sprintf("pattern generation (Nr=%d)", nr))
		}
		logf("%s: generated %d SI patterns (seed %d)", s.Name, nr, gen.Seed)

		// One 2-D compaction per grouping count, shared across widths.
		groupsByG := make(map[int][]*sischedule.Group, len(cfg.Groupings))
		tbl.CompactionStats[nr] = make(map[int]GroupingStat)
		for _, g := range cfg.Groupings {
			gr, err := core.BuildGroupsCtx(ctx, s, patterns, core.GroupingOptions{Parts: g, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			if gr.Partial {
				delete(tbl.CompactionStats, nr)
				return finish(fmt.Sprintf("compaction (Nr=%d, g=%d)", nr, g))
			}
			groupsByG[g] = gr.Groups
			tbl.CompactionStats[nr][g] = GroupingStat{
				Original:  gr.Stats.Original,
				Compacted: gr.TotalCompacted(),
				Residual:  gr.CutPatterns,
				Groups:    len(gr.Groups),
			}
			logf("%s: Nr=%d g=%d: %d -> %d patterns (%.1fx), %d residual",
				s.Name, nr, g, gr.Stats.Original, gr.TotalCompacted(), gr.Stats.Ratio(), gr.CutPatterns)
		}

		for _, w := range cfg.Widths {
			cell := Cell{Wmax: w, Nr: nr}

			// Baseline: InTest-only architecture, then the SI tests
			// (best grouping for that fixed architecture, so the
			// baseline is not penalized by the grouping choice).
			arch, _, st, err := trarchitect.OptimizeWithCtx(ctx, s, w, parCfg(cfg))
			if err != nil {
				return nil, err
			}
			if st.Partial {
				return finish(fmt.Sprintf("baseline optimization (Nr=%d, W=%d)", nr, w))
			}
			for _, g := range cfg.Groupings {
				bd, _, err := core.EvaluateBreakdown(arch, groupsByG[g], cfg.Model)
				if err != nil {
					return nil, err
				}
				if cell.T8 == 0 || bd.TimeSOC < cell.T8 {
					cell.T8 = bd.TimeSOC
					cell.InTest8 = bd.TimeIn
				}
			}

			// SI-aware optimization per grouping count.
			for _, g := range cfg.Groupings {
				res, err := core.TAMOptimizationWith(ctx, s, w, groupsByG[g], cfg.Model, parCfg(cfg))
				if err != nil {
					return nil, err
				}
				if res.Partial {
					return finish(fmt.Sprintf("SI-aware optimization (Nr=%d, W=%d, g=%d)", nr, w, g))
				}
				cell.Tg = append(cell.Tg, res.Breakdown.TimeSOC)
				if cell.Tmin == 0 || res.Breakdown.TimeSOC < cell.Tmin {
					cell.Tmin = res.Breakdown.TimeSOC
					cell.InTestMin = res.Breakdown.TimeIn
				}
				logf("%s: Nr=%d W=%d g=%d: T_soc=%d (T_in=%d, T_si=%d)",
					s.Name, nr, w, g, res.Breakdown.TimeSOC, res.Breakdown.TimeIn, res.Breakdown.TimeSI)
			}
			logf("%s: Nr=%d W=%d: T_[8]=%d T_min=%d ΔT_[8]=%.2f%% ΔT_g=%.2f%%",
				s.Name, nr, w, cell.T8, cell.Tmin, cell.DeltaT8(), cell.DeltaTg())
			tbl.Cells = append(tbl.Cells, cell)
		}
	}
	tbl.Elapsed = time.Since(start)
	return tbl, nil
}

// Format renders the table in the layout of the paper's Tables 2 and 3:
// one block per Nr, one row per Wmax.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SOC %s (elapsed %v)\n", t.SOC, t.Elapsed.Round(time.Millisecond))
	byNr := map[int][]Cell{}
	var nrOrder []int
	for _, c := range t.Cells {
		if _, ok := byNr[c.Nr]; !ok {
			nrOrder = append(nrOrder, c.Nr)
		}
		byNr[c.Nr] = append(byNr[c.Nr], c)
	}
	for _, nr := range nrOrder {
		fmt.Fprintf(&b, "\nN_r = %d\n", nr)
		fmt.Fprintf(&b, "%-6s %12s", "Wmax", "T_[8](cc)")
		for _, g := range t.Groupings {
			fmt.Fprintf(&b, " %12s", fmt.Sprintf("T_g%d(cc)", g))
		}
		fmt.Fprintf(&b, " %12s %9s %9s\n", "T_min(cc)", "ΔT_[8]%", "ΔT_g%")
		for _, c := range byNr[nr] {
			fmt.Fprintf(&b, "%-6d %12d", c.Wmax, c.T8)
			for _, tg := range c.Tg {
				fmt.Fprintf(&b, " %12d", tg)
			}
			fmt.Fprintf(&b, " %12d %9.2f %9.2f\n", c.Tmin, c.DeltaT8(), c.DeltaTg())
		}
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table, one
// section per Nr.
func (t *Table) Markdown() string {
	var b strings.Builder
	byNr := map[int][]Cell{}
	var nrOrder []int
	for _, c := range t.Cells {
		if _, ok := byNr[c.Nr]; !ok {
			nrOrder = append(nrOrder, c.Nr)
		}
		byNr[c.Nr] = append(byNr[c.Nr], c)
	}
	for _, nr := range nrOrder {
		fmt.Fprintf(&b, "\n#### %s, N_r = %d\n\n", t.SOC, nr)
		b.WriteString("| Wmax | T_[8] (cc) |")
		for _, g := range t.Groupings {
			fmt.Fprintf(&b, " T_g%d (cc) |", g)
		}
		b.WriteString(" T_min (cc) | ΔT_[8] (%) | ΔT_g (%) |\n")
		b.WriteString("|---|---|")
		for range t.Groupings {
			b.WriteString("---|")
		}
		b.WriteString("---|---|---|\n")
		for _, c := range byNr[nr] {
			fmt.Fprintf(&b, "| %d | %d |", c.Wmax, c.T8)
			for _, tg := range c.Tg {
				fmt.Fprintf(&b, " %d |", tg)
			}
			fmt.Fprintf(&b, " %d | %.2f | %.2f |\n", c.Tmin, c.DeltaT8(), c.DeltaTg())
		}
	}
	return b.String()
}
