// Package tam models TestRail test access mechanism (TAM) architectures
// for core-based SOCs: a partition of the SOC's cores over a set of rails,
// each rail with its own wire width.
//
// On a TestRail (Marinissen et al., ITC 1998) the cores assigned to one
// rail are daisychained and tested serially in InTest mode, so the rail's
// internal test time is the sum of its cores' wrapper test times at the
// rail width, and the SOC internal test time is the maximum over rails.
// Unlike the multiplexed Test Bus architecture, a TestRail allows the
// boundary cells of all its cores to be accessed concurrently, which is
// what makes parallel external (interconnect) testing possible — the
// property the paper's SI test scheduling relies on.
//
// The Rail type carries the bookkeeping fields of the paper's Fig. 4 data
// structure: TimeIn (internal testing time), TimeSI (utilized SI testing
// time) and TimeUsed (their sum), which the optimization algorithms use
// to rank rails.
//
// # Dirty-rail tracking
//
// The optimizer's hot loops mutate only one or two rails per candidate,
// so the architecture tracks which rails are stale. Mutations must go
// through the mutation API (SetWidth, MoveCore, CarveCore, MergeRails,
// SetTimeSI, MarkDirty, or AddRail/CopyFrom/Clone), which marks the
// touched rails dirty; Refresh then recomputes TimeIn only for dirty
// rails. Each clean
// rail carries a 64-bit FNV-1a sub-hash of its (width, cores)
// composition, and the architecture maintains the XOR of the clean
// rails' sub-hashes incrementally, giving evaluators an O(dirty)
// order-independent identity key (Hash) without string building. A
// zero-value Rail is dirty, so rails constructed directly by callers are
// refreshed on the next Refresh.
package tam

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sitam/internal/soc"
	"sitam/internal/wrapper"
)

// Rail is one TestRail: a set of cores daisychained on Width TAM wires.
type Rail struct {
	// Cores holds the IDs of the cores on this rail, in ascending order.
	Cores []int

	// Width is the number of TAM wires of the rail.
	Width int

	// TimeIn is the rail's InTest time: the sum over its cores of the
	// core InTest time at the rail width (cores on a rail test
	// serially).
	TimeIn int64

	// TimeSI is the SI testing time utilized on this rail, as computed
	// by the most recent SI schedule (sum over SI groups of the rail's
	// busy time in that group).
	TimeSI int64

	// clean reports that TimeIn and hash match (Cores, Width). The zero
	// value is dirty, so externally constructed rails are safe.
	clean bool

	// hash is the FNV-1a sub-hash of (Width, Cores), valid when clean.
	hash uint64

	// key caches the comma-joined core-ID signature ("" = not built).
	key string
}

// TimeUsed returns the rail's total utilized testing time, the ranking
// key of the paper's optimization loops.
func (r *Rail) TimeUsed() int64 { return r.TimeIn + r.TimeSI }

// SetTimeSI records the SI testing time the most recent SI schedule
// utilized on the rail. It is the sanctioned way for schedulers to
// write the field from outside the package: TimeSI is schedule output,
// not part of the rail's (Width, Cores) composition, so setting it
// does not dirty the rail or change its sub-hash.
func (r *Rail) SetTimeSI(t int64) { r.TimeSI = t }

// Has reports whether the rail hosts the given core.
func (r *Rail) Has(coreID int) bool {
	i := sort.SearchInts(r.Cores, coreID)
	return i < len(r.Cores) && r.Cores[i] == coreID
}

// Hash returns the rail's composition sub-hash. It is valid only when
// the rail is clean (after Architecture.Refresh); callers that mutate
// rails must refresh before reading hashes.
func (r *Rail) Hash() uint64 { return r.hash }

// Key returns the rail's core-ID signature ("3,7,12"), the stable
// identity the optimization loops use for deterministic tie-breaks. The
// string is cached on the rail and rebuilt only when the core set
// changes, so repeated comparisons do not allocate.
func (r *Rail) Key() string {
	if r.key == "" && len(r.Cores) > 0 {
		var b strings.Builder
		b.Grow(4 * len(r.Cores))
		for i, id := range r.Cores {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(id))
		}
		r.key = b.String()
	}
	return r.key
}

// Clone returns a deep copy of the rail.
func (r *Rail) Clone() *Rail {
	c := *r
	c.Cores = append([]int(nil), r.Cores...)
	return &c
}

// String implements fmt.Stringer.
func (r *Rail) String() string {
	ids := make([]string, len(r.Cores))
	for i, id := range r.Cores {
		ids[i] = fmt.Sprint(id)
	}
	return fmt.Sprintf("rail(w=%d cores=[%s] tIn=%d tSI=%d)", r.Width, strings.Join(ids, " "), r.TimeIn, r.TimeSI)
}

// FNV-1a 64-bit over machine words (width then core IDs).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func subHash(r *Rail) uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(r.Width)) * fnvPrime64
	for _, id := range r.Cores {
		h = (h ^ uint64(id)) * fnvPrime64
	}
	return h
}

// Architecture is a complete TestRail architecture for an SOC: a set of
// rails partitioning the SOC's cores.
type Architecture struct {
	SOC   *soc.SOC
	Rails []*Rail

	// Times caches per-core InTest times by width; all rails of one
	// architecture share it.
	Times *wrapper.TimeTable

	// hash is the XOR of the clean rails' sub-hashes. Maintained
	// incrementally: dirtying a rail XORs its stale sub-hash out,
	// refreshing XORs the new one in. Rail order does not matter.
	hash uint64

	// inTest caches InTestTime; valid only when inTestOK, which any
	// mutation clears.
	inTest   int64
	inTestOK bool
}

// New builds an architecture over s with no rails yet. The time table
// must cover every width the caller will use.
func New(s *soc.SOC, times *wrapper.TimeTable) *Architecture {
	return &Architecture{SOC: s, Times: times}
}

// dirtyRail marks r stale, removing its sub-hash from the maintained
// architecture hash.
func (a *Architecture) dirtyRail(r *Rail) {
	if r.clean {
		a.hash ^= r.hash
		r.clean = false
	}
	a.inTestOK = false
}

// refreshRail recomputes r's TimeIn and sub-hash and folds it back into
// the architecture hash.
func (a *Architecture) refreshRail(r *Rail) {
	if r.clean {
		a.hash ^= r.hash
	}
	var sum int64
	for _, id := range r.Cores {
		sum += a.Times.Time(id, r.Width)
	}
	r.TimeIn = sum
	r.hash = subHash(r)
	r.clean = true
	a.hash ^= r.hash
	a.inTestOK = false
}

// AddRail appends a rail hosting the given cores at the given width and
// refreshes its InTest time. The core ID slice is copied and sorted.
func (a *Architecture) AddRail(coreIDs []int, width int) *Rail {
	r := &Rail{Cores: append([]int(nil), coreIDs...), Width: width}
	sort.Ints(r.Cores)
	a.refreshRail(r)
	a.Rails = append(a.Rails, r)
	return r
}

// RefreshTimeIn recomputes r.TimeIn (and the rail's sub-hash) from the
// architecture's time table, regardless of the rail's dirty state. The
// rail must belong to a.
func (a *Architecture) RefreshTimeIn(r *Rail) {
	a.refreshRail(r)
}

// MarkDirty marks rail i stale after an out-of-API mutation, forcing the
// next Refresh to recompute its TimeIn and sub-hash.
func (a *Architecture) MarkDirty(i int) { a.dirtyRail(a.Rails[i]) }

// DirtyCount returns the number of rails currently marked stale.
func (a *Architecture) DirtyCount() int {
	n := 0
	for _, r := range a.Rails {
		if !r.clean {
			n++
		}
	}
	return n
}

// SetWidth sets rail i's width, marking it dirty on change.
func (a *Architecture) SetWidth(i, width int) {
	r := a.Rails[i]
	if r.Width == width {
		return
	}
	a.dirtyRail(r)
	r.Width = width
}

// MoveCore moves core id from rail from to rail to, keeping both rails'
// core lists sorted. It panics if the source rail does not host the
// core.
func (a *Architecture) MoveCore(from, to, id int) {
	a.takeCore(from, id)
	r := a.Rails[to]
	a.dirtyRail(r)
	r.Cores = append(r.Cores, id)
	sort.Ints(r.Cores)
	r.key = ""
}

// CarveCore removes core id from rail from, shrinks that rail's width by
// one wire, and appends a fresh single-core rail of width 1 hosting the
// core. It panics if the source rail does not host the core.
func (a *Architecture) CarveCore(from, id int) *Rail {
	a.takeCore(from, id)
	a.Rails[from].Width--
	nr := &Rail{Cores: []int{id}, Width: 1}
	a.Rails = append(a.Rails, nr)
	return nr
}

func (a *Architecture) takeCore(from, id int) {
	r := a.Rails[from]
	for i, c := range r.Cores {
		if c == id {
			a.dirtyRail(r)
			r.Cores = append(r.Cores[:i], r.Cores[i+1:]...)
			r.key = ""
			return
		}
	}
	panic(fmt.Sprintf("tam: rail does not host core %d", id))
}

// MergeRails merges rail src into rail dst at the given width and
// removes src from the architecture. dst keeps its identity (marked
// dirty); indices above src shift down by one.
func (a *Architecture) MergeRails(dst, src, width int) {
	d, s := a.Rails[dst], a.Rails[src]
	a.dirtyRail(d)
	a.dirtyRail(s) // removes s's sub-hash from the architecture hash
	d.Cores = append(d.Cores, s.Cores...)
	sort.Ints(d.Cores)
	d.Width = width
	d.key = ""
	a.Rails = append(a.Rails[:src], a.Rails[src+1:]...)
}

// Refresh brings every dirty rail's TimeIn, the architecture hash and
// the cached InTestTime up to date. Clean rails are not recomputed.
func (a *Architecture) Refresh() {
	var mx int64
	for _, r := range a.Rails {
		if !r.clean {
			a.refreshRail(r)
		}
		if r.TimeIn > mx {
			mx = r.TimeIn
		}
	}
	a.inTest, a.inTestOK = mx, true
}

// Hash refreshes the architecture and returns its order-independent
// composition hash: the XOR of the rails' FNV-1a (width, cores)
// sub-hashes. Two architectures carrying the same multiset of
// (width, cores) rails hash equal regardless of rail order.
func (a *Architecture) Hash() uint64 {
	a.Refresh()
	return a.hash
}

// TotalWidth returns the sum of all rail widths.
func (a *Architecture) TotalWidth() int {
	w := 0
	for _, r := range a.Rails {
		w += r.Width
	}
	return w
}

// InTestTime returns the SOC internal test time: the maximum rail InTest
// time (rails test their cores concurrently with one another, serially
// within the rail). Like before dirty tracking, it reads the rails'
// stored TimeIn values; call Refresh first if rails were mutated.
func (a *Architecture) InTestTime() int64 {
	if a.inTestOK {
		return a.inTest
	}
	var mx int64
	all := true
	for _, r := range a.Rails {
		if !r.clean {
			all = false
		}
		if r.TimeIn > mx {
			mx = r.TimeIn
		}
	}
	if all {
		a.inTest, a.inTestOK = mx, true
	}
	return mx
}

// RailOf returns the index of the rail hosting coreID, or -1.
func (a *Architecture) RailOf(coreID int) int {
	for i, r := range a.Rails {
		if r.Has(coreID) {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the architecture (sharing the immutable
// SOC and time table).
func (a *Architecture) Clone() *Architecture {
	c := &Architecture{
		SOC: a.SOC, Times: a.Times, Rails: make([]*Rail, len(a.Rails)),
		hash: a.hash, inTest: a.inTest, inTestOK: a.inTestOK,
	}
	for i, r := range a.Rails {
		c.Rails[i] = r.Clone()
	}
	return c
}

// CopyFrom resets a to a deep copy of src (sharing the immutable SOC
// and time table), reusing a's existing rail structs and core-ID
// slices. It is the scratch-reuse counterpart of Clone: a candidate
// evaluator can rebuild many trial architectures into one scratch
// without allocating a fresh clone per candidate. Rails are only ever
// grown by appending fresh structs, so a scratch that previously held
// a shrunk rail slice never resurrects stale rail pointers.
func (a *Architecture) CopyFrom(src *Architecture) {
	a.SOC, a.Times = src.SOC, src.Times
	a.hash, a.inTest, a.inTestOK = src.hash, src.inTest, src.inTestOK
	for len(a.Rails) < len(src.Rails) {
		a.Rails = append(a.Rails, &Rail{})
	}
	a.Rails = a.Rails[:len(src.Rails)]
	for i, r := range src.Rails {
		dst := a.Rails[i]
		dst.Cores = append(dst.Cores[:0], r.Cores...)
		dst.Width, dst.TimeIn, dst.TimeSI = r.Width, r.TimeIn, r.TimeSI
		dst.clean, dst.hash, dst.key = r.clean, r.hash, r.key
	}
}

// Validate checks that the rails form a partition of the SOC's cores and
// that every rail has positive width.
func (a *Architecture) Validate() error {
	seen := make(map[int]int) // core ID -> rail index
	for i, r := range a.Rails {
		if r.Width < 1 {
			return fmt.Errorf("tam: rail %d has width %d", i, r.Width)
		}
		if len(r.Cores) == 0 {
			return fmt.Errorf("tam: rail %d is empty", i)
		}
		for _, id := range r.Cores {
			if a.SOC.CoreByID(id) == nil {
				return fmt.Errorf("tam: rail %d hosts unknown core %d", i, id)
			}
			if j, dup := seen[id]; dup {
				return fmt.Errorf("tam: core %d on both rail %d and rail %d", id, j, i)
			}
			seen[id] = i
		}
	}
	if len(seen) != a.SOC.NumCores() {
		return fmt.Errorf("tam: %d of %d cores assigned to rails", len(seen), a.SOC.NumCores())
	}
	return nil
}

// String implements fmt.Stringer.
func (a *Architecture) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "architecture: %d rails, total width %d, T_in=%d\n", len(a.Rails), a.TotalWidth(), a.InTestTime())
	for i, r := range a.Rails {
		fmt.Fprintf(&b, "  TAM%d %s\n", i+1, r)
	}
	return b.String()
}
