// Package tam models TestRail test access mechanism (TAM) architectures
// for core-based SOCs: a partition of the SOC's cores over a set of rails,
// each rail with its own wire width.
//
// On a TestRail (Marinissen et al., ITC 1998) the cores assigned to one
// rail are daisychained and tested serially in InTest mode, so the rail's
// internal test time is the sum of its cores' wrapper test times at the
// rail width, and the SOC internal test time is the maximum over rails.
// Unlike the multiplexed Test Bus architecture, a TestRail allows the
// boundary cells of all its cores to be accessed concurrently, which is
// what makes parallel external (interconnect) testing possible — the
// property the paper's SI test scheduling relies on.
//
// The Rail type carries the bookkeeping fields of the paper's Fig. 4 data
// structure: TimeIn (internal testing time), TimeSI (utilized SI testing
// time) and TimeUsed (their sum), which the optimization algorithms use
// to rank rails.
package tam

import (
	"fmt"
	"sort"
	"strings"

	"sitam/internal/soc"
	"sitam/internal/wrapper"
)

// Rail is one TestRail: a set of cores daisychained on Width TAM wires.
type Rail struct {
	// Cores holds the IDs of the cores on this rail, in ascending order.
	Cores []int

	// Width is the number of TAM wires of the rail.
	Width int

	// TimeIn is the rail's InTest time: the sum over its cores of the
	// core InTest time at the rail width (cores on a rail test
	// serially).
	TimeIn int64

	// TimeSI is the SI testing time utilized on this rail, as computed
	// by the most recent SI schedule (sum over SI groups of the rail's
	// busy time in that group).
	TimeSI int64
}

// TimeUsed returns the rail's total utilized testing time, the ranking
// key of the paper's optimization loops.
func (r *Rail) TimeUsed() int64 { return r.TimeIn + r.TimeSI }

// Has reports whether the rail hosts the given core.
func (r *Rail) Has(coreID int) bool {
	i := sort.SearchInts(r.Cores, coreID)
	return i < len(r.Cores) && r.Cores[i] == coreID
}

// Clone returns a deep copy of the rail.
func (r *Rail) Clone() *Rail {
	c := *r
	c.Cores = append([]int(nil), r.Cores...)
	return &c
}

// String implements fmt.Stringer.
func (r *Rail) String() string {
	ids := make([]string, len(r.Cores))
	for i, id := range r.Cores {
		ids[i] = fmt.Sprint(id)
	}
	return fmt.Sprintf("rail(w=%d cores=[%s] tIn=%d tSI=%d)", r.Width, strings.Join(ids, " "), r.TimeIn, r.TimeSI)
}

// Architecture is a complete TestRail architecture for an SOC: a set of
// rails partitioning the SOC's cores.
type Architecture struct {
	SOC   *soc.SOC
	Rails []*Rail

	// Times caches per-core InTest times by width; all rails of one
	// architecture share it.
	Times *wrapper.TimeTable
}

// New builds an architecture over s with no rails yet. The time table
// must cover every width the caller will use.
func New(s *soc.SOC, times *wrapper.TimeTable) *Architecture {
	return &Architecture{SOC: s, Times: times}
}

// AddRail appends a rail hosting the given cores at the given width and
// refreshes its InTest time. The core ID slice is copied and sorted.
func (a *Architecture) AddRail(coreIDs []int, width int) *Rail {
	r := &Rail{Cores: append([]int(nil), coreIDs...), Width: width}
	sort.Ints(r.Cores)
	a.RefreshTimeIn(r)
	a.Rails = append(a.Rails, r)
	return r
}

// RefreshTimeIn recomputes r.TimeIn from the architecture's time table.
func (a *Architecture) RefreshTimeIn(r *Rail) {
	var sum int64
	for _, id := range r.Cores {
		sum += a.Times.Time(id, r.Width)
	}
	r.TimeIn = sum
}

// TotalWidth returns the sum of all rail widths.
func (a *Architecture) TotalWidth() int {
	w := 0
	for _, r := range a.Rails {
		w += r.Width
	}
	return w
}

// InTestTime returns the SOC internal test time: the maximum rail InTest
// time (rails test their cores concurrently with one another, serially
// within the rail).
func (a *Architecture) InTestTime() int64 {
	var mx int64
	for _, r := range a.Rails {
		if r.TimeIn > mx {
			mx = r.TimeIn
		}
	}
	return mx
}

// RailOf returns the index of the rail hosting coreID, or -1.
func (a *Architecture) RailOf(coreID int) int {
	for i, r := range a.Rails {
		if r.Has(coreID) {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the architecture (sharing the immutable
// SOC and time table).
func (a *Architecture) Clone() *Architecture {
	c := &Architecture{SOC: a.SOC, Times: a.Times, Rails: make([]*Rail, len(a.Rails))}
	for i, r := range a.Rails {
		c.Rails[i] = r.Clone()
	}
	return c
}

// CopyFrom resets a to a deep copy of src (sharing the immutable SOC
// and time table), reusing a's existing rail structs and core-ID
// slices. It is the scratch-reuse counterpart of Clone: a candidate
// evaluator can rebuild many trial architectures into one scratch
// without allocating a fresh clone per candidate. Rails are only ever
// grown by appending fresh structs, so a scratch that previously held
// a shrunk rail slice never resurrects stale rail pointers.
func (a *Architecture) CopyFrom(src *Architecture) {
	a.SOC, a.Times = src.SOC, src.Times
	for len(a.Rails) < len(src.Rails) {
		a.Rails = append(a.Rails, &Rail{})
	}
	a.Rails = a.Rails[:len(src.Rails)]
	for i, r := range src.Rails {
		dst := a.Rails[i]
		dst.Cores = append(dst.Cores[:0], r.Cores...)
		dst.Width, dst.TimeIn, dst.TimeSI = r.Width, r.TimeIn, r.TimeSI
	}
}

// Validate checks that the rails form a partition of the SOC's cores and
// that every rail has positive width.
func (a *Architecture) Validate() error {
	seen := make(map[int]int) // core ID -> rail index
	for i, r := range a.Rails {
		if r.Width < 1 {
			return fmt.Errorf("tam: rail %d has width %d", i, r.Width)
		}
		if len(r.Cores) == 0 {
			return fmt.Errorf("tam: rail %d is empty", i)
		}
		for _, id := range r.Cores {
			if a.SOC.CoreByID(id) == nil {
				return fmt.Errorf("tam: rail %d hosts unknown core %d", i, id)
			}
			if j, dup := seen[id]; dup {
				return fmt.Errorf("tam: core %d on both rail %d and rail %d", id, j, i)
			}
			seen[id] = i
		}
	}
	if len(seen) != a.SOC.NumCores() {
		return fmt.Errorf("tam: %d of %d cores assigned to rails", len(seen), a.SOC.NumCores())
	}
	return nil
}

// String implements fmt.Stringer.
func (a *Architecture) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "architecture: %d rails, total width %d, T_in=%d\n", len(a.Rails), a.TotalWidth(), a.InTestTime())
	for i, r := range a.Rails {
		fmt.Fprintf(&b, "  TAM%d %s\n", i+1, r)
	}
	return b.String()
}
