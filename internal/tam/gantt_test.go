package tam

import (
	"strings"
	"testing"
)

func TestInTestGantt(t *testing.T) {
	s, tt := testSOC(t)
	a := New(s, tt)
	a.AddRail([]int{1, 2}, 2)
	a.AddRail([]int{3}, 1)
	out := a.InTestGantt(50)
	if !strings.Contains(out, "TAM1") || !strings.Contains(out, "TAM2") {
		t.Fatalf("missing rails:\n%s", out)
	}
	for _, want := range []string{"core 1", "core 2", "core 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("legend missing %q:\n%s", want, out)
		}
	}
	// The first rail's row must start with core 1's letter 'A' and the
	// bottleneck rail must have no trailing idle dots.
	lines := strings.Split(out, "\n")
	row1 := lines[1][strings.Index(lines[1], "|")+1:]
	if row1[0] != 'A' {
		t.Errorf("row 1 starts with %q, want A", row1[0])
	}
	bottleneck := 0
	if a.Rails[1].TimeIn > a.Rails[0].TimeIn {
		bottleneck = 1
	}
	rowB := lines[1+bottleneck]
	bar := rowB[strings.Index(rowB, "|")+1 : strings.LastIndex(rowB, "|")]
	if strings.HasSuffix(bar, ".") {
		t.Errorf("bottleneck rail shows idle tail: %q", bar)
	}
}

func TestInTestGanttEmpty(t *testing.T) {
	s, tt := testSOC(t)
	a := New(s, tt)
	if out := a.InTestGantt(40); !strings.Contains(out, "empty") {
		t.Errorf("empty Gantt = %q", out)
	}
}

func TestInTestGanttManyCores(t *testing.T) {
	// More cores than letters between A and Z must not panic and must
	// continue into lowercase.
	s, tt := testSOC(t)
	a := New(s, tt)
	var ids []int
	for _, c := range s.Cores() {
		ids = append(ids, c.ID)
	}
	for i := 0; i < 12; i++ {
		a.AddRail(ids[:1], 1)
	}
	_ = a.InTestGantt(40) // smoke: must not panic
}
