package tam

import (
	"fmt"
	"strings"
)

// InTestGantt renders the internal-test phase of the architecture as an
// ASCII chart: one row per rail, the cores of each rail drawn serially
// in proportion to their InTest time at the rail width, across `cols`
// character cells scaled to the SOC InTest time. Idle time (rails that
// finish before the bottleneck rail) is '.'. Each core gets a letter in
// row order; the legend maps letters to core IDs and times.
func (a *Architecture) InTestGantt(cols int) string {
	if cols < 10 {
		cols = 10
	}
	total := a.InTestTime()
	if total <= 0 || len(a.Rails) == 0 {
		return "(empty InTest schedule)\n"
	}
	scale := float64(cols) / float64(total)
	var b, legend strings.Builder
	fmt.Fprintf(&b, "InTest schedule Gantt, 0 .. %d cc\n", total)
	letter := byte('A')
	nextLetter := func() byte {
		l := letter
		if letter < 'z' {
			letter++
			if letter == '[' { // skip the punctuation between Z and a
				letter = 'a'
			}
		}
		return l
	}
	for i, r := range a.Rails {
		row := []byte(strings.Repeat(".", cols))
		var t int64
		for _, id := range r.Cores {
			ct := a.Times.Time(id, r.Width)
			from := int(float64(t) * scale)
			to := int(float64(t+ct) * scale)
			if to <= from {
				to = from + 1
			}
			if to > cols {
				to = cols
			}
			l := nextLetter()
			for c := from; c < to; c++ {
				row[c] = l
			}
			fmt.Fprintf(&legend, "  %c = core %d on TAM%d (%d cc at width %d)\n", l, id, i+1, ct, r.Width)
			t += ct
		}
		fmt.Fprintf(&b, "  TAM%-2d |%s|\n", i+1, row)
	}
	b.WriteString(legend.String())
	return b.String()
}
