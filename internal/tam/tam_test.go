package tam

import (
	"strings"
	"testing"

	"sitam/internal/soc"
	"sitam/internal/wrapper"
)

func testSOC(t *testing.T) (*soc.SOC, *wrapper.TimeTable) {
	t.Helper()
	s := &soc.SOC{
		Name:     "t",
		BusWidth: 8,
		CoreList: []*soc.Core{
			{ID: 1, Inputs: 4, Outputs: 4, ScanChains: []int{10, 10}, Patterns: 10},
			{ID: 2, Inputs: 2, Outputs: 6, ScanChains: []int{20}, Patterns: 5},
			{ID: 3, Inputs: 3, Outputs: 3, Patterns: 50},
		},
	}
	tt, err := wrapper.NewTimeTable(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	return s, tt
}

func TestAddRailComputesTime(t *testing.T) {
	s, tt := testSOC(t)
	a := New(s, tt)
	r := a.AddRail([]int{2, 1}, 2)
	if len(r.Cores) != 2 || r.Cores[0] != 1 || r.Cores[1] != 2 {
		t.Errorf("Cores = %v, want sorted [1 2]", r.Cores)
	}
	want := tt.Time(1, 2) + tt.Time(2, 2)
	if r.TimeIn != want {
		t.Errorf("TimeIn = %d, want %d", r.TimeIn, want)
	}
	if r.TimeUsed() != r.TimeIn {
		t.Errorf("TimeUsed = %d with zero SI", r.TimeUsed())
	}
}

func TestInTestTimeIsMaxOverRails(t *testing.T) {
	s, tt := testSOC(t)
	a := New(s, tt)
	r1 := a.AddRail([]int{1}, 2)
	r2 := a.AddRail([]int{2, 3}, 3)
	want := r1.TimeIn
	if r2.TimeIn > want {
		want = r2.TimeIn
	}
	if got := a.InTestTime(); got != want {
		t.Errorf("InTestTime = %d, want %d", got, want)
	}
	if a.TotalWidth() != 5 {
		t.Errorf("TotalWidth = %d", a.TotalWidth())
	}
}

func TestRailHasAndRailOf(t *testing.T) {
	s, tt := testSOC(t)
	a := New(s, tt)
	a.AddRail([]int{1, 3}, 1)
	a.AddRail([]int{2}, 1)
	if a.RailOf(3) != 0 || a.RailOf(2) != 1 {
		t.Errorf("RailOf wrong: %d %d", a.RailOf(3), a.RailOf(2))
	}
	if a.RailOf(99) != -1 {
		t.Error("RailOf(99) should be -1")
	}
	if !a.Rails[0].Has(1) || a.Rails[0].Has(2) {
		t.Error("Has wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s, tt := testSOC(t)
	a := New(s, tt)
	a.AddRail([]int{1, 2}, 2)
	c := a.Clone()
	c.Rails[0].Cores[0] = 3
	c.Rails[0].Width = 7
	if a.Rails[0].Cores[0] != 1 || a.Rails[0].Width != 2 {
		t.Error("Clone shares rail state")
	}
}

func TestValidate(t *testing.T) {
	s, tt := testSOC(t)

	valid := New(s, tt)
	valid.AddRail([]int{1, 2}, 2)
	valid.AddRail([]int{3}, 1)
	if err := valid.Validate(); err != nil {
		t.Errorf("valid architecture rejected: %v", err)
	}

	missing := New(s, tt)
	missing.AddRail([]int{1, 2}, 2)
	if err := missing.Validate(); err == nil {
		t.Error("accepted architecture missing core 3")
	}

	dup := New(s, tt)
	dup.AddRail([]int{1, 2}, 2)
	dup.AddRail([]int{2, 3}, 1)
	if err := dup.Validate(); err == nil {
		t.Error("accepted core on two rails")
	}

	unknown := New(s, tt)
	unknown.Rails = append(unknown.Rails, &Rail{Cores: []int{1, 2, 3, 9}, Width: 2})
	if err := unknown.Validate(); err == nil {
		t.Error("accepted unknown core")
	}

	zeroW := New(s, tt)
	zeroW.Rails = append(zeroW.Rails, &Rail{Cores: []int{1, 2, 3}, Width: 0})
	if err := zeroW.Validate(); err == nil {
		t.Error("accepted zero-width rail")
	}

	empty := New(s, tt)
	empty.AddRail([]int{1, 2, 3}, 1)
	empty.Rails = append(empty.Rails, &Rail{Width: 1})
	if err := empty.Validate(); err == nil {
		t.Error("accepted empty rail")
	}
}

func TestStringRendering(t *testing.T) {
	s, tt := testSOC(t)
	a := New(s, tt)
	a.AddRail([]int{1, 2}, 2)
	a.AddRail([]int{3}, 1)
	out := a.String()
	if !strings.Contains(out, "TAM1") || !strings.Contains(out, "TAM2") || !strings.Contains(out, "total width 3") {
		t.Errorf("String() = %q", out)
	}
	if !strings.Contains(a.Rails[0].String(), "cores=[1 2]") {
		t.Errorf("Rail.String() = %q", a.Rails[0].String())
	}
}

func TestWiderRailNoSlowerInTest(t *testing.T) {
	s, tt := testSOC(t)
	a := New(s, tt)
	narrow := a.AddRail([]int{1, 2, 3}, 1)
	wide := a.AddRail([]int{1, 2, 3}, 8) // structurally invalid, fine for time math
	if wide.TimeIn > narrow.TimeIn {
		t.Errorf("wider rail slower: %d > %d", wide.TimeIn, narrow.TimeIn)
	}
}
