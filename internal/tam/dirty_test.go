package tam

import (
	"testing"

	"sitam/internal/soc"
	"sitam/internal/wrapper"
)

// Tests for the dirty-rail tracking and the incrementally maintained
// order-independent composition hash.

func dirtySOC(t *testing.T) (*soc.SOC, *wrapper.TimeTable) {
	t.Helper()
	s := soc.MustLoadBenchmark("d695")
	tt, err := wrapper.NewTimeTable(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	return s, tt
}

func TestMutationsMarkDirtyAndRefreshClears(t *testing.T) {
	s, tt := dirtySOC(t)
	a := New(s, tt)
	ids := make([]int, 0, s.NumCores())
	for _, c := range s.Cores() {
		ids = append(ids, c.ID)
	}
	a.AddRail(ids[:3], 4)
	a.AddRail(ids[3:6], 2)
	a.AddRail(ids[6:], 8)
	if got := a.DirtyCount(); got != 0 {
		t.Fatalf("after AddRail: %d dirty rails, want 0", got)
	}

	a.SetWidth(0, 6)
	if got := a.DirtyCount(); got != 1 {
		t.Errorf("after SetWidth: %d dirty rails, want 1", got)
	}
	a.SetWidth(0, 6) // no-op: same width
	if got := a.DirtyCount(); got != 1 {
		t.Errorf("after no-op SetWidth: %d dirty rails, want 1", got)
	}
	a.MoveCore(1, 2, a.Rails[1].Cores[0])
	if got := a.DirtyCount(); got != 3 {
		t.Errorf("after MoveCore: %d dirty rails, want 3", got)
	}
	a.Refresh()
	if got := a.DirtyCount(); got != 0 {
		t.Errorf("after Refresh: %d dirty rails, want 0", got)
	}

	a.CarveCore(2, a.Rails[2].Cores[0])
	// CarveCore dirties the source rail and appends the carved core's
	// new rail stale (its TimeIn is computed lazily by Refresh), so two
	// rails are dirty.
	if got := a.DirtyCount(); got != 2 {
		t.Errorf("after CarveCore: %d dirty rails, want 2", got)
	}
	a.Refresh()

	n := len(a.Rails)
	a.MergeRails(0, 1, 8)
	if len(a.Rails) != n-1 {
		t.Fatalf("MergeRails: %d rails, want %d", len(a.Rails), n-1)
	}
	if got := a.DirtyCount(); got != 1 {
		t.Errorf("after MergeRails: %d dirty rails, want 1", got)
	}

	a.Refresh()
	a.MarkDirty(0)
	if got := a.DirtyCount(); got != 1 {
		t.Errorf("after MarkDirty: %d dirty rails, want 1", got)
	}
}

func TestRefreshRecomputesOnlyDirtyRails(t *testing.T) {
	s, tt := dirtySOC(t)
	a := New(s, tt)
	var ids []int
	for _, c := range s.Cores() {
		ids = append(ids, c.ID)
	}
	a.AddRail(ids[:4], 4)
	a.AddRail(ids[4:], 4)
	a.Refresh()
	// Corrupt a clean rail's TimeIn out-of-API: Refresh must NOT fix
	// it, because the rail is not marked dirty.
	a.Rails[0].TimeIn = 12345
	a.SetWidth(1, 8)
	a.Refresh()
	if a.Rails[0].TimeIn != 12345 {
		t.Error("Refresh recomputed a clean rail")
	}
	// After MarkDirty the corruption is repaired.
	a.MarkDirty(0)
	a.Refresh()
	if a.Rails[0].TimeIn == 12345 {
		t.Error("Refresh skipped a dirty rail")
	}
}

func TestHashOrderIndependent(t *testing.T) {
	s, tt := dirtySOC(t)
	var ids []int
	for _, c := range s.Cores() {
		ids = append(ids, c.ID)
	}
	a := New(s, tt)
	a.AddRail(ids[:3], 4)
	a.AddRail(ids[3:6], 2)
	a.AddRail(ids[6:], 8)

	b := New(s, tt)
	b.AddRail(ids[6:], 8)
	b.AddRail(ids[:3], 4)
	b.AddRail(ids[3:6], 2)

	if a.Hash() != b.Hash() {
		t.Errorf("same rail multiset, different hash: %#x vs %#x", a.Hash(), b.Hash())
	}

	c := New(s, tt)
	c.AddRail(ids[:3], 5) // one width differs
	c.AddRail(ids[3:6], 2)
	c.AddRail(ids[6:], 8)
	if a.Hash() == c.Hash() {
		t.Error("different composition, same hash")
	}
}

func TestHashMaintainedIncrementally(t *testing.T) {
	s, tt := dirtySOC(t)
	var ids []int
	for _, c := range s.Cores() {
		ids = append(ids, c.ID)
	}
	a := New(s, tt)
	a.AddRail(ids[:5], 4)
	a.AddRail(ids[5:], 4)

	// Mutate through the API, then rebuild the same composition from
	// nothing: the incrementally maintained hash must agree.
	a.SetWidth(0, 7)
	a.MoveCore(0, 1, a.Rails[0].Cores[2])
	a.CarveCore(1, a.Rails[1].Cores[0])
	a.MergeRails(0, 2, 8)

	fresh := New(s, tt)
	for _, r := range a.Rails {
		fresh.AddRail(r.Cores, r.Width)
	}
	if a.Hash() != fresh.Hash() {
		t.Errorf("maintained hash %#x != rebuilt hash %#x", a.Hash(), fresh.Hash())
	}

	// Clone must carry the hash state.
	if cl := a.Clone(); cl.Hash() != a.Hash() {
		t.Errorf("clone hash %#x != source hash %#x", cl.Hash(), a.Hash())
	}
	// CopyFrom must too, whatever the destination held before.
	dst := New(s, tt)
	dst.AddRail(ids[:2], 3)
	dst.CopyFrom(a)
	if dst.Hash() != a.Hash() {
		t.Errorf("CopyFrom hash %#x != source hash %#x", dst.Hash(), a.Hash())
	}
}

func TestRailKeyInvalidatedByMutation(t *testing.T) {
	s, tt := dirtySOC(t)
	var ids []int
	for _, c := range s.Cores() {
		ids = append(ids, c.ID)
	}
	a := New(s, tt)
	a.AddRail(ids[:4], 4)
	a.AddRail(ids[4:], 4)
	k0 := a.Rails[0].Key()
	a.MoveCore(0, 1, a.Rails[0].Cores[0])
	if a.Rails[0].Key() == k0 {
		t.Error("rail key unchanged after core composition changed")
	}
}
