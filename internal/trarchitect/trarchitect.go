// Package trarchitect provides the paper's baseline: the TR-Architect
// algorithm of Goel and Marinissen ("Effective and Efficient Test
// Architecture Design for SOCs", ITC 2002), which designs a TestRail
// architecture minimizing the core-internal test time only, oblivious to
// core-external interconnect SI tests.
//
// It runs the shared optimization engine of package core with the
// InTest-only objective, so the baseline and the paper's SI-aware
// Algorithm 2 differ in exactly one thing — the objective function —
// mirroring the comparison made in the paper's Tables 2 and 3: T_[8]
// (this package) versus T_g_i (package core).
package trarchitect

import (
	"context"

	"sitam/internal/core"
	"sitam/internal/sischedule"
	"sitam/internal/soc"
	"sitam/internal/tam"
)

// Optimize designs a TestRail architecture of total width wmax for s,
// minimizing the SOC internal test time T_soc_in.
func Optimize(s *soc.SOC, wmax int) (*tam.Architecture, int64, error) {
	a, obj, _, err := OptimizeCtx(context.Background(), s, wmax)
	return a, obj, err
}

// OptimizeCtx is Optimize as an anytime algorithm, with the same
// best-so-far semantics as core.(*Engine).OptimizeCtx: interruption
// mid-search returns the incumbent architecture with Status.Partial
// set and a nil error.
func OptimizeCtx(ctx context.Context, s *soc.SOC, wmax int) (*tam.Architecture, int64, core.Status, error) {
	eng, err := core.NewEngine(s, wmax, core.InTestEvaluator{})
	if err != nil {
		return nil, 0, core.Status{}, err
	}
	return eng.OptimizeCtx(ctx)
}

// OptimizeWithCtx is OptimizeCtx with parallel candidate evaluation
// and a memoized evaluation cache per cfg (see core.ParallelConfig).
// The selected architecture is byte-identical at any worker count.
func OptimizeWithCtx(ctx context.Context, s *soc.SOC, wmax int, cfg core.ParallelConfig) (*tam.Architecture, int64, core.Status, error) {
	eng, _, err := core.NewParallelEngine(s, wmax, core.InTestEvaluator{}, cfg)
	if err != nil {
		return nil, 0, core.Status{}, err
	}
	return eng.OptimizeCtx(ctx)
}

// LowerBound returns a lower bound on the achievable SOC internal test
// time at total TAM width wmax, after Goel and Marinissen: no schedule
// can beat either the largest single-core test time at full width (a
// core cannot use more wires than exist) or the total test data volume
// spread perfectly over all wires (width-1 test time approximates each
// core's volume in wire-cycles).
func LowerBound(s *soc.SOC, wmax int) (int64, error) {
	eng, err := core.NewEngine(s, wmax, core.InTestEvaluator{})
	if err != nil {
		return 0, err
	}
	var maxCore, volume int64
	for _, c := range s.Cores() {
		t := eng.Times.Time(c.ID, wmax)
		if t > maxCore {
			maxCore = t
		}
		volume += eng.Times.Time(c.ID, 1)
	}
	area := (volume + int64(wmax) - 1) / int64(wmax)
	if maxCore > area {
		return maxCore, nil
	}
	return area, nil
}

// OptimizeThenScheduleSI reproduces the T_[8] column of the paper's
// tables: optimize the architecture for InTest only, then compute the
// total testing time T_soc = T_in + T_si once the SI test groups are
// scheduled on that SI-oblivious architecture.
func OptimizeThenScheduleSI(s *soc.SOC, wmax int, groups []*sischedule.Group, m sischedule.Model) (*core.Result, error) {
	return OptimizeThenScheduleSICtx(context.Background(), s, wmax, groups, m)
}

// OptimizeThenScheduleSICtx is OptimizeThenScheduleSI as an anytime
// algorithm: interruption mid-optimization evaluates and returns the
// best SI-oblivious architecture found so far with Result.Partial set.
func OptimizeThenScheduleSICtx(ctx context.Context, s *soc.SOC, wmax int, groups []*sischedule.Group, m sischedule.Model) (*core.Result, error) {
	return OptimizeThenScheduleSIWith(ctx, s, wmax, groups, m, core.ParallelConfig{Workers: 1, CacheSize: -1})
}

// OptimizeThenScheduleSIWith is OptimizeThenScheduleSICtx with
// parallel candidate evaluation, memoization, tracing and metrics per
// cfg. Result.Cause, Result.Cache and Result.Metrics are populated the
// same way as for the SI-aware optimizer.
func OptimizeThenScheduleSIWith(ctx context.Context, s *soc.SOC, wmax int, groups []*sischedule.Group, m sischedule.Model, cfg core.ParallelConfig) (*core.Result, error) {
	eng, cache, err := core.NewParallelEngine(s, wmax, core.InTestEvaluator{}, cfg)
	if err != nil {
		return nil, err
	}
	arch, _, st, err := eng.OptimizeCtx(ctx)
	if err != nil {
		return nil, err
	}
	return eng.Finish(arch, st, groups, m, cache)
}
