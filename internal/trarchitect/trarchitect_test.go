package trarchitect

import (
	"testing"

	"sitam/internal/sischedule"
	"sitam/internal/soc"
)

func TestOptimizeBenchmarksValid(t *testing.T) {
	for _, name := range soc.Benchmarks() {
		s := soc.MustLoadBenchmark(name)
		for _, w := range []int{8, 24, 64} {
			arch, obj, err := Optimize(s, w)
			if err != nil {
				t.Fatalf("%s W=%d: %v", name, w, err)
			}
			if err := arch.Validate(); err != nil {
				t.Fatalf("%s W=%d: %v", name, w, err)
			}
			if arch.TotalWidth() > w {
				t.Errorf("%s W=%d: width %d over budget", name, w, arch.TotalWidth())
			}
			if obj != arch.InTestTime() {
				t.Errorf("%s W=%d: objective %d != InTest time %d", name, w, obj, arch.InTestTime())
			}
		}
	}
}

func TestOptimizeImprovesWithWidth(t *testing.T) {
	s := soc.MustLoadBenchmark("p93791")
	t8, _, err := Optimize(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	t32, _, err := Optimize(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	t64, _, err := Optimize(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !(t64.InTestTime() < t32.InTestTime() && t32.InTestTime() < t8.InTestTime()) {
		t.Errorf("InTest time not improving: W=8:%d W=32:%d W=64:%d",
			t8.InTestTime(), t32.InTestTime(), t64.InTestTime())
	}
}

func TestP34392BottleneckFlattening(t *testing.T) {
	// p34392's core 18 has an 800-FF scan chain: once the TAM is wide
	// enough the SOC InTest time is pinned near 680*801 cc and more
	// wires stop helping — the flattening visible in the paper's
	// Table 2 for Wmax >= 40.
	s := soc.MustLoadBenchmark("p34392")
	a48, _, err := Optimize(s, 48)
	if err != nil {
		t.Fatal(err)
	}
	a64, _, err := Optimize(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	floor := int64(680 * 801)
	if a64.InTestTime() < floor {
		t.Errorf("W=64 InTest %d below the core-18 bound %d", a64.InTestTime(), floor)
	}
	ratio := float64(a48.InTestTime()) / float64(a64.InTestTime())
	if ratio > 1.10 {
		t.Errorf("no flattening: W=48 %d vs W=64 %d", a48.InTestTime(), a64.InTestTime())
	}
}

func TestLowerBound(t *testing.T) {
	for _, name := range soc.Benchmarks() {
		s := soc.MustLoadBenchmark(name)
		for _, w := range []int{8, 16, 32, 64} {
			lb, err := LowerBound(s, w)
			if err != nil {
				t.Fatal(err)
			}
			arch, _, err := Optimize(s, w)
			if err != nil {
				t.Fatal(err)
			}
			if arch.InTestTime() < lb {
				t.Errorf("%s W=%d: optimized time %d below lower bound %d",
					name, w, arch.InTestTime(), lb)
			}
			// The heuristic should land within 2.5x of the bound on
			// these benchmarks (it is typically much closer).
			if float64(arch.InTestTime()) > 2.5*float64(lb) {
				t.Errorf("%s W=%d: optimized time %d far above lower bound %d",
					name, w, arch.InTestTime(), lb)
			}
		}
	}
}

func TestLowerBoundMonotonic(t *testing.T) {
	s := soc.MustLoadBenchmark("p93791")
	prev := int64(0)
	for _, w := range []int{64, 32, 16, 8} {
		lb, err := LowerBound(s, w)
		if err != nil {
			t.Fatal(err)
		}
		if lb < prev {
			t.Errorf("lower bound decreased when narrowing the TAM: %d -> %d at W=%d", prev, lb, w)
		}
		prev = lb
	}
}

func TestOptimizeThenScheduleSI(t *testing.T) {
	s := soc.MustLoadBenchmark("p34392")
	groups := []*sischedule.Group{
		{Name: "g1", Cores: s.SortedIDs(), Patterns: 1000},
		{Name: "g2", Cores: []int{1, 2, 3}, Patterns: 500},
	}
	res, err := OptimizeThenScheduleSI(s, 16, groups, sischedule.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Architecture.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.TimeSI <= 0 {
		t.Error("SI time not accounted")
	}
	if res.Breakdown.TimeSOC != res.Breakdown.TimeIn+res.Breakdown.TimeSI {
		t.Errorf("breakdown inconsistent: %+v", res.Breakdown)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Error(err)
	}
	// The baseline optimizes InTest only, so its InTest time matches a
	// plain Optimize run.
	arch, _, err := Optimize(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.TimeIn != arch.InTestTime() {
		t.Errorf("baseline InTest %d != plain optimize %d", res.Breakdown.TimeIn, arch.InTestTime())
	}
}
