package detmerge_a

import "sort"

// LeakOrder ranges over a map with no sort — it carries the MapOrder
// fact and is flagged when called from a merge path in another
// package. It is not reachable from any root here, so no diagnostic
// lands in this file.
func LeakOrder(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SortedWalk collects and sorts in the same function — the sanctioned
// idiom, no MapOrder fact.
func SortedWalk(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
