package detmerge_b

import (
	"sort"

	"detmerge_a"
)

//sitlint:detmerge-root
func Merge(parts []map[int]int, done chan int, extra chan int) []int {
	var out []int
	for _, m := range parts {
		out = append(out, collect(m)...)
	}
	select { // want `select-based reduction`
	case v := <-done:
		out = append(out, v)
	case v := <-extra:
		out = append(out, v)
	}
	out = append(out, detmerge_a.LeakOrder(parts[0])) // want `nondeterministic order`
	out = append(out, detmerge_a.SortedWalk(parts[0])...)
	return out
}

// collect is reachable from the root and ranges a map without sorting.
func collect(m map[int]int) []int {
	var out []int
	for k := range m { // want `map iteration on the deterministic merge path`
		out = append(out, k)
	}
	return out
}

// collectSorted is also reachable but sorts — clean.
func collectSorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

//sitlint:detmerge-root
func mergeSorted(parts []map[int]int) []int {
	var out []int
	for _, m := range parts {
		out = append(out, collectSorted(m)...)
	}
	return out
}

// unreachable ranges a map but no root reaches it — clean here (it
// does export MapOrder for external callers).
func unreachable(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// ctxStyle select with one receive and a default is the cancellation
// poll, not a reduction — clean.
//
//sitlint:detmerge-root
func ctxStyle(stop chan struct{}, parts []map[int]int) int {
	n := 0
	for range parts {
		select {
		case <-stop:
			return n
		default:
		}
		n++
	}
	return n
}
