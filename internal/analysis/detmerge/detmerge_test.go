package detmerge_test

import (
	"testing"

	"sitam/internal/analysis/analysistest"
	"sitam/internal/analysis/detmerge"
)

func TestFixtures(t *testing.T) {
	// Roots stay untouched: the fixtures exercise the
	// //sitlint:detmerge-root marker instead.
	analysistest.Run(t, detmerge.Analyzer, "detmerge_a", "detmerge_b")
}
