// Package detmerge guards the repeatability pillar on the parallel
// reduction paths (DESIGN §15): everything reachable from the sharded
// compactor's merge path and the parallel evaluator's candidate map
// must combine results in deterministic index order, because two runs
// of the same optimization must produce byte-identical architectures.
//
// The analyzer walks the in-package call graph from the Roots entry
// points and flags, inside every reachable function:
//
//   - ranging over a map, unless the function also sorts (a
//     collect-then-sort.Ints walk is the sanctioned idiom);
//
//   - a select with two or more receive cases — arrival-order
//     reduction;
//
//   - a call to an imported function carrying the MapOrder fact (its
//     body ranges over a map without sorting), which is how
//     nondeterminism hiding in a helper package reaches the merge
//     path.
//
// The MapOrder fact is exported for every function in every analyzed
// package, so the check crosses package boundaries without whole-
// program analysis. Additional roots can be declared in source with a
// //sitlint:detmerge-root comment on the line above the function
// declaration. Per-site exemptions use //sitlint:allow detmerge.
package detmerge

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"sitam/internal/analysis"
)

// Roots lists the merge-path entry points as "pkgpath.key" (key is
// Name or Type.Name for methods). Mutable for the analysistest
// fixtures.
var Roots = map[string]bool{
	"sitam/internal/compaction.GreedyWith":               true,
	"sitam/internal/compaction.greedyWith":               true,
	"sitam/internal/compaction.mergeDisjoint":            true,
	"sitam/internal/core.ParallelEvaluator.mapCandidates": true,
}

// rootMarker promotes a function to a root from source.
const rootMarker = "//sitlint:detmerge-root"

// MapOrder is the object fact exported for functions whose body ranges
// over a map without sorting: callers on a deterministic merge path
// must not depend on their iteration order.
type MapOrder struct{}

func (*MapOrder) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "detmerge",
	Doc:       "parallel reduction paths must merge in deterministic index order",
	Run:       run,
	FactTypes: []analysis.Fact{(*MapOrder)(nil)},
}

type funcNode struct {
	decl *ast.FuncDecl
	key  string
}

func run(pass *analysis.Pass) error {
	// Collect functions, export MapOrder facts, find this package's
	// roots.
	var nodes []*funcNode
	byKey := map[string]*funcNode{}
	var roots []*funcNode
	markers := markerLines(pass)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := &funcNode{decl: fd, key: analysis.ObjectKey(obj)}
			nodes = append(nodes, n)
			byKey[n.key] = n
			if hasUnsortedMapRange(pass, fd.Body) {
				pass.ExportObjectFact(obj, &MapOrder{})
			}
			pos := pass.Fset.Position(fd.Pos())
			if Roots[pass.Pkg.Path()+"."+n.key] || markers[posKey(pos.Filename, pos.Line)] {
				roots = append(roots, n)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// BFS over the in-package call graph.
	reachable := map[string]bool{}
	queue := roots
	for _, r := range roots {
		reachable[r.key] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, key, _, ok := analysis.FuncKey(pass.TypesInfo, call); ok && pkgPath == pass.Pkg.Path() {
				if m := byKey[key]; m != nil && !reachable[key] {
					reachable[key] = true
					queue = append(queue, m)
				}
			}
			return true
		})
	}

	for _, n := range nodes {
		if reachable[n.key] {
			checkReachable(pass, n)
		}
	}
	return nil
}

// checkReachable flags the nondeterministic constructs inside one
// merge-path function.
func checkReachable(pass *analysis.Pass, n *funcNode) {
	sorted := containsSortCall(pass, n.decl.Body)
	ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
		switch v := nd.(type) {
		case *ast.RangeStmt:
			if isMapType(pass.TypesInfo.TypeOf(v.X)) && !sorted {
				pass.Reportf(v.Pos(), "map iteration on the deterministic merge path: collect keys and sort, or index by position (reachable from %s)", rootsLabel())
			}
		case *ast.SelectStmt:
			if receiveCases(v) >= 2 {
				pass.Reportf(v.Pos(), "select-based reduction merges in arrival order; receive from workers in index order instead")
			}
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, v)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == pass.Pkg.Path() {
				return true
			}
			var fact MapOrder
			if pass.ImportObjectFact(fn, &fact) {
				pass.Reportf(v.Pos(), "call to %s.%s on the deterministic merge path: its body ranges over a map in nondeterministic order", fn.Pkg().Path(), fn.Name())
			}
		}
		return true
	})
}

// hasUnsortedMapRange reports a map range in a body with no sort call
// — the exported MapOrder property.
func hasUnsortedMapRange(pass *analysis.Pass, body *ast.BlockStmt) bool {
	if containsSortCall(pass, body) {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok && isMapType(pass.TypesInfo.TypeOf(r.X)) {
			found = true
		}
		return !found
	})
	return found
}

// containsSortCall reports any call into sort or slices.Sort* — the
// sanctioned collect-then-sort idiom.
func containsSortCall(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort":
			found = true
		case "slices":
			if strings.HasPrefix(fn.Name(), "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}

func receiveCases(s *ast.SelectStmt) int {
	n := 0
	for _, cc := range s.Body.List {
		cl, ok := cc.(*ast.CommClause)
		if !ok || cl.Comm == nil {
			continue // default case
		}
		switch c := cl.Comm.(type) {
		case *ast.ExprStmt, *ast.AssignStmt:
			_ = c
			n++
		}
	}
	return n
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// markerLines collects the lines holding //sitlint:detmerge-root
// comments; a function declared on the following line is a root.
func markerLines(pass *analysis.Pass) map[string]bool {
	lines := map[string]bool{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, rootMarker) {
					pos := pass.Fset.Position(c.Pos())
					lines[posKey(pos.Filename, pos.Line+1)] = true
				}
			}
		}
	}
	return lines
}

func posKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

func rootsLabel() string { return "GreedyWith/ParallelEvaluator merge roots" }
