// Package ctxflow enforces the deadline-degradation contract on the
// optimization loops: code that iterates over candidates or patterns
// must thread a context.Context so a deadline or cancellation can cut
// the search short between evaluations.
//
// Three mechanical rules, applied to exported functions of the target
// packages (the engine and every package it fans work out to):
//
//  1. missing parameter — an exported function with no context.Context
//     parameter must not contain a loop that calls context-aware work
//     (a callee whose signature takes a context.Context): such a loop
//     can only feed its callees context.Background, which disables the
//     anytime contract for the whole iteration. The same applies to a
//     loop that calls a recursive local closure (the enumeration
//     pattern `var enumerate func(...); enumerate = func(...) { ... }`):
//     recursive enumeration is unbounded work, and without a context
//     it cannot be cut short at all.
//
//  2. unchecked loop — an exported function that has a context.Context
//     parameter and contains significant loops (loops that call
//     non-builtin functions) must consult the context in at least one
//     of them: mention ctx in a loop body (ctx.Err(), ctx.Done(),
//     passing ctx to a callee) or call a local closure whose body
//     mentions ctx. A function that accepts a context and then loops
//     without ever consulting it has opted out of cancellation
//     silently.
//
//  3. discarded context — a function with a context.Context parameter
//     must not manufacture context.Background()/context.TODO(): that
//     severs the caller's deadline from the work being done.
//
// Allow-list policy: only the packages in Targets are checked (the
// schedulers' inner loops below one objective evaluation are atomic by
// design — the contract checks between evaluations, not inside one),
// _test.go files are skipped, and individual sites can carry a
// //sitlint:allow ctxflow directive with a justification.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"sitam/internal/analysis"
)

// Targets is the set of package paths the contract applies to.
// Mutable so the analysistest fixtures can enroll themselves.
var Targets = map[string]bool{
	"sitam/internal/core":       true,
	"sitam/internal/exact":      true,
	"sitam/internal/compaction": true,
	"sitam/internal/hypergraph": true,
	"sitam/internal/sischedule": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "exported optimization loops must accept a context.Context and check cancellation",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !Targets[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc applies the three rules to one exported function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	hasCtx := hasContextParam(pass, fd)

	// Local closures whose bodies mention a context value: calling one
	// inside a loop counts as consulting the context (the restart
	// fan-out pattern: `run := func(i int) { ...OptimizeILSCtx(ctx...)... }`).
	ctxClosures := contextClosures(pass, fd)
	// Recursive local closures: calling one inside a loop is unbounded
	// enumeration (the `var enumerate func(...)` pattern).
	recClosures := recursiveClosures(pass, fd)

	var loops []loopInfo
	collectLoops(pass, fd.Body, &loops, ctxClosures, recClosures)

	if !hasCtx {
		for _, l := range loops {
			switch {
			case l.ctxAwareCall != nil:
				pass.Reportf(l.pos,
					"exported function %s loops over context-aware work (%s) without accepting a context.Context; add a ctx parameter (or a %sCtx variant) and thread it",
					fd.Name.Name, l.ctxAwareCall.Name(), fd.Name.Name)
			case l.recursiveCall != "":
				pass.Reportf(l.pos,
					"exported function %s drives recursive enumeration (%s) without accepting a context.Context; the search cannot be cancelled — add a ctx parameter (or a %sCtx variant) and check ctx.Err() in the recursion",
					fd.Name.Name, l.recursiveCall, fd.Name.Name)
			}
		}
		return
	}

	significant := 0
	touched := false
	for _, l := range loops {
		if !l.significant {
			continue
		}
		significant++
		if l.touchesCtx {
			touched = true
		}
	}
	if significant > 0 && !touched {
		pass.Reportf(fd.Name.Pos(),
			"exported function %s accepts a context.Context but none of its loops consult it; check ctx.Err() (or pass ctx to a callee) inside the iteration",
			fd.Name.Name)
	}

	// Rule 3: context.Background()/TODO() inside a ctx-taking function.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.FuncFromPkg(pass.TypesInfo, call, "context"); fn != nil {
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				pass.Reportf(call.Pos(),
					"%s has a context.Context parameter but calls context.%s(); thread the parameter instead",
					fd.Name.Name, fn.Name())
			}
		}
		return true
	})
}

// loopInfo summarizes one for/range statement.
type loopInfo struct {
	pos           token.Pos
	significant   bool        // body calls at least one non-builtin function
	touchesCtx    bool        // body mentions a context value or calls a ctx closure
	ctxAwareCall  *types.Func // a callee whose signature takes a context.Context, if any
	recursiveCall string      // name of a recursive local closure called in the body, if any
}

// collectLoops walks body and records every for/range statement.
func collectLoops(pass *analysis.Pass, body ast.Node, out *[]loopInfo, ctxClosures, recClosures map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			loopBody = n.Body
		case *ast.RangeStmt:
			loopBody = n.Body
		default:
			return true
		}
		info := loopInfo{pos: n.Pos()}
		ast.Inspect(loopBody, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if fn := analysis.CalleeFunc(pass.TypesInfo, m); fn != nil {
					info.significant = true
					if takesContext(fn) && info.ctxAwareCall == nil {
						info.ctxAwareCall = fn
					}
				} else if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
					obj := pass.TypesInfo.Uses[id]
					if obj != nil && recClosures[obj] && info.recursiveCall == "" {
						info.significant = true
						info.recursiveCall = id.Name
					}
					if obj != nil && ctxClosures[obj] {
						info.significant = true
						info.touchesCtx = true
					} else if _, isBuiltin := obj.(*types.Builtin); obj != nil && !isBuiltin {
						if _, isType := obj.(*types.TypeName); !isType {
							info.significant = true // call of a local func value
						}
					}
				}
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[m]; obj != nil && analysis.IsContextType(obj.Type()) {
					info.touchesCtx = true
				}
			}
			return true
		})
		*out = append(*out, info)
		return true
	})
}

// contextClosures returns the objects of local variables bound to
// function literals whose bodies mention a context value.
func contextClosures(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok || i >= len(assign.Lhs) {
				continue
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			mentions := false
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if o := pass.TypesInfo.Uses[id]; o != nil && analysis.IsContextType(o.Type()) {
						mentions = true
					}
				}
				return !mentions
			})
			if mentions {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// recursiveClosures returns the objects of local variables bound to
// function literals whose bodies call the variable itself — the
// `var enumerate func(...); enumerate = func(...) {... enumerate(...) ...}`
// pattern used for recursive enumeration.
func recursiveClosures(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok || i >= len(assign.Lhs) {
				continue
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			selfCall := false
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if cid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && pass.TypesInfo.Uses[cid] == obj {
						selfCall = true
					}
				}
				return !selfCall
			})
			if selfCall {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// hasContextParam reports whether fd declares a context.Context
// parameter.
func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && analysis.IsContextType(t) {
			return true
		}
	}
	return false
}

// takesContext reports whether fn's signature has a context.Context
// parameter.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
