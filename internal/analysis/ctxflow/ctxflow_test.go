package ctxflow_test

import (
	"testing"

	"sitam/internal/analysis/analysistest"
	"sitam/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	ctxflow.Targets["a"] = true
	defer delete(ctxflow.Targets, "a")
	analysistest.Run(t, ctxflow.Analyzer, "a")
}

// TestOutsideTargets checks the allow-list policy: the same violations
// in a package outside Targets report nothing.
func TestOutsideTargets(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "b")
}
