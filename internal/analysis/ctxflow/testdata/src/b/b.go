// Package b mirrors the flagged fixture but is not enrolled in
// ctxflow.Targets, so nothing is reported: the schedulers' inner loops
// below one objective evaluation are atomic by design.
package b

import "context"

func evalCtx(ctx context.Context, x int) int { return x }

func NoCtx(items []int) int {
	total := 0
	for _, x := range items {
		total += evalCtx(context.Background(), x)
	}
	return total
}
