// Package a exercises the ctxflow analyzer: exported optimization
// loops must accept a context.Context and check cancellation.
package a

import "context"

func evalCtx(ctx context.Context, x int) int { return x }
func eval(x int) int                         { return x }

// Rule 1: a loop over context-aware work in a function with no ctx
// parameter can only feed its callees context.Background.
func NoCtx(items []int) int {
	total := 0
	for _, x := range items { // want `loops over context-aware work \(evalCtx\) without accepting a context\.Context`
		total += evalCtx(context.Background(), x)
	}
	return total
}

// Rule 1b: recursive enumeration (the `var rec func(...)` pattern)
// without a ctx parameter cannot be cancelled at all.
func Enumerate(n int) int {
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			count++
			return
		}
		for b := 0; b <= i; b++ { // want `drives recursive enumeration \(rec\) without accepting a context\.Context`
			rec(i + 1)
		}
	}
	rec(0)
	return count
}

// Rule 2: accepts a context but no loop ever consults it.
func WithCtx(ctx context.Context, items []int) int { // want `accepts a context\.Context but none of its loops consult it`
	total := 0
	for _, x := range items {
		total += eval(x)
	}
	return total
}

// Rule 3: manufacturing context.Background severs the caller's
// deadline.
func Detached(ctx context.Context, x int) int {
	return evalCtx(context.Background(), x) // want `calls context\.Background\(\); thread the parameter instead`
}

// Good threads and checks the context between evaluations.
func Good(ctx context.Context, items []int) (int, error) {
	total := 0
	for _, x := range items {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += eval(x)
	}
	return total, nil
}

// GoodClosure consults the context through a local closure (the
// restart fan-out pattern).
func GoodClosure(ctx context.Context, n int) int {
	total := 0
	run := func(i int) { total += evalCtx(ctx, i) }
	for i := 0; i < n; i++ {
		run(i)
	}
	return total
}

// Trivial loops that call no functions are not significant; the
// contract checks between evaluations, not around arithmetic.
func Trivial(ctx context.Context, items []int) int {
	total := 0
	for _, x := range items {
		total += x
	}
	return total
}

// unexported helpers are outside the exported-API contract.
func noCtx(items []int) int {
	total := 0
	for _, x := range items {
		total += evalCtx(context.Background(), x)
	}
	return total
}

// Suppressed demonstrates an audited exception.
func Suppressed(items []int) int {
	total := 0
	//sitlint:allow ctxflow — batch is bounded and sub-millisecond
	for _, x := range items {
		total += evalCtx(context.Background(), x)
	}
	return total
}
