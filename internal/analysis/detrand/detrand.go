// Package detrand protects the byte-identical determinism guarantees
// of the differential test suites: inside the deterministic search
// path, randomness must come from an injected, seeded *rand.Rand and
// wall-clock time must not influence results.
//
// Two rules:
//
//  1. global randomness — any reference to a top-level math/rand (or
//     math/rand/v2) function other than the constructors New, NewSource
//     and NewZipf is flagged everywhere in the module. The global
//     functions draw from a process-wide, non-reseedable source, so two
//     same-seed runs stop being byte-identical the moment one sneaks in.
//
//  2. wall-clock — calls to time.Now() are flagged inside the
//     deterministic-path packages. Timing capture that feeds only the
//     trace's documented nondeterministic fields (PhaseEnd.DurNS, the
//     busy/wall metrics) is exempted site by site with a
//     //sitlint:allow detrand directive, which keeps each exemption
//     visible in review.
//
// Allow-list policy: packages in Exempt (internal/obs — the layer that
// defines the nondeterministic fields — and internal/experiments,
// which reports wall-clock by design) are skipped entirely, as are the
// CLIs, tools and examples (paths outside internal/ and the facade),
// and _test.go files.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"sitam/internal/analysis"
)

// Exempt lists packages the analyzer skips entirely. Mutable for the
// analysistest fixtures.
var Exempt = map[string]bool{
	"sitam/internal/obs":             true,
	"sitam/internal/experiments":     true,
	"sitam/internal/serve":           true, // serving layer: heartbeats, latency, Retry-After are wall-clock by design
	"sitam/internal/serve/chaostest": true, // load harness: measures wall-clock latency percentiles
}

// randConstructors are the math/rand functions that build injected
// generators — the only sanctioned way to get randomness.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand and time.Now in the deterministic search path",
	Run:  run,
}

// inScope reports whether the package is part of the deterministic
// search path: the facade and every internal package except the
// exempted observability/reporting layers. CLIs (sitam/cmd/...),
// tools and examples capture timing by design and are out of scope.
func inScope(path string) bool {
	if Exempt[path] {
		return false
	}
	for _, prefix := range []string{"sitam/cmd", "sitam/tools", "sitam/examples"} {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return false
		}
	}
	return true
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods on *rand.Rand are
			// the sanctioned injected generators.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					pass.Reportf(sel.Sel.Pos(),
						"global rand.%s draws from the process-wide source and breaks seed determinism; use the injected *rand.Rand",
						fn.Name())
				}
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Sel.Pos(),
						"time.Now in the deterministic search path; results must not depend on wall-clock (timing capture sites carry //sitlint:allow detrand)")
				}
			}
			return true
		})
	}
	return nil
}
