package a

import "math/rand"

// _test.go files are outside the deterministic-path contract: tests
// may use global randomness to build arbitrary inputs.
func testHelper() int { return rand.Intn(3) }
