// Package a exercises the detrand analyzer: no global math/rand and no
// time.Now in the deterministic search path.
package a

import (
	"math/rand"
	"time"
)

func flagged(xs []int) int {
	n := rand.Intn(10) // want `global rand\.Intn draws from the process-wide source`
	rand.Shuffle(len(xs), func(i, j int) { // want `global rand\.Shuffle draws from the process-wide source`
		xs[i], xs[j] = xs[j], xs[i]
	})
	t := time.Now() // want `time\.Now in the deterministic search path`
	_ = t
	return n
}

func allowed() int {
	// Constructors build the injected, seeded generators; methods on
	// the resulting *rand.Rand are the sanctioned randomness.
	rng := rand.New(rand.NewSource(1))
	return rng.Intn(10)
}

func suppressed() int64 {
	t := time.Now() //sitlint:allow detrand — timing capture feeding a metrics histogram only
	return t.UnixNano()
}
