// Package b mirrors the flagged fixture but is enrolled in
// detrand.Exempt by the test, as internal/obs and internal/experiments
// are in the real tree: reporting layers measure wall-clock by design.
package b

import (
	"math/rand"
	"time"
)

func unflagged() int64 {
	return int64(rand.Intn(10)) + time.Now().UnixNano()
}
