package detrand_test

import (
	"testing"

	"sitam/internal/analysis/analysistest"
	"sitam/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "a")
}

// TestExempt checks the allow-list policy: an exempted package may use
// wall-clock and global randomness freely.
func TestExempt(t *testing.T) {
	detrand.Exempt["b"] = true
	defer delete(detrand.Exempt, "b")
	analysistest.Run(t, detrand.Analyzer, "b")
}
