// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the subset
// sitlint needs.
//
// Fixtures live under <analyzer package>/testdata/src/<name>/ and are
// type-checked as package path <name> against the real module: a
// fixture may import sitam/internal/tam, context, math/rand — anything
// reachable from the module root. Expectations are trailing comments:
//
//	r.Width = 3 // want `direct write to tam\.Rail field Width`
//
// The payload is a Go string literal (backquoted or double-quoted)
// holding a regular expression; several literals on one line expect
// several diagnostics. Every diagnostic must be wanted and every want
// must be matched, both at exact (file, line) positions.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"sitam/internal/analysis"
	"sitam/internal/analysis/load"
)

// resolver is shared across all analyzer test packages in one process:
// building the dependency universe shells out to go list once.
var (
	resolverOnce sync.Once
	resolver     *load.Resolver
	resolverErr  error
)

// extraStd lists stdlib packages fixtures may import beyond the
// module's own dependency closure.
var extraStd = []string{"context", "errors", "fmt", "math/rand", "time", "os"}

func sharedResolver() (*load.Resolver, error) {
	resolverOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			resolverErr = err
			return
		}
		resolver, resolverErr = load.NewResolver(root, append([]string{"./..."}, extraStd...)...)
	})
	return resolver, resolverErr
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run checks the analyzer against each named fixture package under
// testdata/src relative to the test's working directory. The fixtures
// share one analysis session and are checked in the order given, so a
// later fixture may import an earlier one (the import path is the
// fixture directory name) and observe the facts exported while it was
// analyzed — the fixture leg of cross-package fact propagation.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	r, err := sharedResolver()
	if err != nil {
		t.Fatal(err)
	}
	session := analysis.NewSession()
	for _, name := range fixtures {
		dir := filepath.Join("testdata", "src", name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			t.Fatalf("%s: fixture has no .go files", name)
		}
		pkg, err := r.CheckFiles(name, files...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		diags, err := analysis.RunSession(session, a, pkg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		check(t, pkg, diags)
	}
}

// want is one expectation: a regexp at a (file, line).
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range wantRE.FindAllString(text[idx+len("want "):], -1) {
					payload, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(payload)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, payload, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
