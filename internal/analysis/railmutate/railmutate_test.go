package railmutate_test

import (
	"testing"

	"sitam/internal/analysis/analysistest"
	"sitam/internal/analysis/railmutate"
)

func TestRailmutate(t *testing.T) {
	analysistest.Run(t, railmutate.Analyzer, "a")
}
