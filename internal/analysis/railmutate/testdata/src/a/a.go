// Package a exercises the railmutate analyzer: direct writes to
// tam.Rail and tam.Architecture fields outside internal/tam desync the
// dirty-rail hash and must go through the mutation API.
package a

import "sitam/internal/tam"

// local shares field names with tam.Rail; writes to it are fine.
type local struct {
	Width  int
	TimeSI int64
}

func flagged(a *tam.Architecture, r *tam.Rail) {
	r.Width = 3           // want `direct write to tam\.Rail field Width`
	r.TimeSI = 7          // want `direct write to tam\.Rail field TimeSI`
	r.Cores[0] = 2        // want `direct write to tam\.Rail field Cores`
	r.TimeIn++            // want `direct write to tam\.Rail field TimeIn`
	a.Rails = nil         // want `direct write to tam\.Architecture field Rails`
	a.Rails[0].TimeSI = 1 // want `direct write to tam\.Rail field TimeSI`
}

func allowed(a *tam.Architecture, r *tam.Rail, l *local) {
	_ = r.Width // reads are fine
	l.Width = 3 // same field names on an unrelated type are fine
	l.TimeSI = 7
	a.SetWidth(0, 3) // the mutation API is the sanctioned path
	r.SetTimeSI(9)
	a.MarkDirty(0)
}

func suppressed(r *tam.Rail) {
	r.TimeIn = 0 //sitlint:allow railmutate — fixture demonstrates an audited exception
}
