// Package railmutate flags direct writes to tam.Rail and
// tam.Architecture struct fields from outside internal/tam.
//
// Invariant: the architecture's incremental XOR hash and the rails'
// dirty bits are maintained only by the tam mutation API (AddRail,
// SetWidth, MoveCore, CarveCore, MergeRails, SetTimeSI, MarkDirty,
// CopyFrom). A direct field write — `rail.Cores = ...`,
// `a.Rails[i].Width++` — changes the composition without dirtying the
// rail, so the cached hash, TimeIn and the evaluation-cache key all
// silently desync from the real architecture.
//
// Allow-list policy: package internal/tam itself is exempt (it owns
// the invariant), _test.go files are exempt (the differential suite
// corrupts rails on purpose to prove MarkDirty works), and composite
// literals are allowed — a freshly constructed Rail is dirty by
// definition of the zero value, so `&tam.Rail{Width: 1}` cannot
// desync anything.
package railmutate

import (
	"go/ast"
	"go/types"

	"sitam/internal/analysis"
)

// TamPath is the import path of the package owning the guarded types.
// A var so the analysistest fixtures could substitute their own; the
// shipped configuration never changes it.
var TamPath = "sitam/internal/tam"

// guarded are the tam type names whose fields must not be written
// directly.
var guarded = map[string]bool{"Rail": true, "Architecture": true}

var Analyzer = &analysis.Analyzer{
	Name: "railmutate",
	Doc:  "flag direct writes to tam.Rail/tam.Architecture fields outside internal/tam",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == TamPath {
		return nil
	}
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, n.X)
			}
			return true
		})
	}
	return nil
}

// checkWrite reports lhs if it selects a field of a guarded tam type,
// or writes an element of such a field (`r.Cores[0] = id` changes the
// composition just as silently as replacing the slice).
func checkWrite(pass *analysis.Pass, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		lhs = ast.Unparen(idx.X)
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != TamPath || !guarded[obj.Name()] {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"direct write to tam.%s field %s outside internal/tam desyncs the dirty-rail hash; use the mutation API (AddRail/SetWidth/MoveCore/CarveCore/MergeRails/SetTimeSI/MarkDirty/CopyFrom)",
		obj.Name(), sel.Sel.Name)
}
