// Package gorojoin turns the chaostest no-goroutine-leak invariant
// into a compile-time check (DESIGN §15): every `go` statement in the
// serving layer, the sharded compaction pool and the parallel
// evaluator must have a provable join, so a drained daemon cannot
// strand workers.
//
// A go statement is considered joined when any of these holds:
//
//   - WaitGroup: the goroutine body calls Done (usually deferred) on a
//     sync.WaitGroup whose Wait is called somewhere in the same
//     package on the same WaitGroup (same local variable, or the same
//     struct field — e.g. the scheduler pool Done()s s.wg in the
//     worker and Wait()s it in Drain).
//
//   - channel drain: the goroutine body sends on or closes a channel
//     that the function containing the go statement receives from
//     (<-ch, range ch) — the drain-waiter idiom
//     `go func() { wg.Wait(); close(done) }(); <-done`.
//
//   - joined callee: `go f(...)` where f carries the SignalsDone fact
//     (its body Done()s a WaitGroup or closes a channel it was
//     given), and the spawning function also contains a Wait call or
//     channel receive. The fact crosses package boundaries.
//
// Anything else is flagged. Intentionally detached goroutines carry a
// //sitlint:allow gorojoin directive with a justification.
package gorojoin

import (
	"fmt"
	"go/ast"
	"go/types"

	"sitam/internal/analysis"
)

// Scope lists the packages whose go statements must join. Mutable for
// the analysistest fixtures.
var Scope = map[string]bool{
	"sitam/internal/serve":      true,
	"sitam/internal/compaction": true,
	"sitam/internal/core":       true,
}

// SignalsDone is the object fact exported for named functions whose
// body signals completion (WaitGroup.Done or close of a channel), so
// `go pkg.Worker(&wg)` can be proven joined from another package.
type SignalsDone struct{}

func (*SignalsDone) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "gorojoin",
	Doc:       "every go statement in serve/compaction/parallel-eval must have a provable join",
	Run:       run,
	FactTypes: []analysis.Fact{(*SignalsDone)(nil)},
}

func run(pass *analysis.Pass) error {
	inScope := Scope[pass.Pkg.Path()]

	// Fact export runs everywhere so out-of-scope helper packages can
	// still vouch for their workers.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if bodySignalsDone(pass, fd.Body) {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					pass.ExportObjectFact(obj, &SignalsDone{})
				}
			}
		}
	}
	if !inScope {
		return nil
	}

	// Package-wide Wait identities (rule 1 joins the scheduler pool:
	// Done in the worker goroutine, Wait in Drain).
	waits := map[string]bool{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := wgMethodTarget(pass, call, "Wait"); ok {
				waits[id] = true
			}
			return true
		})
	}

	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		// Walk with the stack of enclosing function bodies so a go
		// statement knows which function's receives can drain it.
		var stack []*ast.BlockStmt
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Body == nil {
					return false
				}
				stack = append(stack, v.Body)
				ast.Inspect(v.Body, visit)
				stack = stack[:len(stack)-1]
				return false
			case *ast.FuncLit:
				stack = append(stack, v.Body)
				ast.Inspect(v.Body, visit)
				stack = stack[:len(stack)-1]
				return false
			case *ast.GoStmt:
				var enclosing *ast.BlockStmt
				if len(stack) > 0 {
					enclosing = stack[len(stack)-1]
				}
				checkGo(pass, v, enclosing, waits)
				return true
			}
			return true
		}
		for _, decl := range f.Decls {
			ast.Inspect(decl, visit)
		}
	}
	return nil
}

func checkGo(pass *analysis.Pass, g *ast.GoStmt, enclosing *ast.BlockStmt, waits map[string]bool) {
	// Case 1+2: goroutine body is a function literal.
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		// WaitGroup join: Done in the body, Wait anywhere in the package
		// on the same WaitGroup.
		joined := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := wgMethodTarget(pass, call, "Done"); ok && waits[id] {
				joined = true
			}
			return true
		})
		if joined {
			return
		}
		// Channel drain: the body signals a channel the enclosing
		// function receives from.
		signaled := map[string]bool{}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SendStmt:
				if id, ok := chanIdentity(pass, v.Chan); ok {
					signaled[id] = true
				}
			case *ast.CallExpr:
				if fun, ok := v.Fun.(*ast.Ident); ok && fun.Name == "close" && len(v.Args) == 1 {
					if id, ok := chanIdentity(pass, v.Args[0]); ok {
						signaled[id] = true
					}
				}
			}
			return true
		})
		if len(signaled) > 0 && enclosing != nil && receivesAny(pass, enclosing, signaled) {
			return
		}
		pass.Reportf(g.Pos(), "go statement has no provable join: no WaitGroup Done/Wait pair and no channel drained by the spawning function (detached goroutines need //sitlint:allow gorojoin with a justification)")
		return
	}

	// Case 3: go f(...) — a named callee that signals completion.
	if fn := analysis.CalleeFunc(pass.TypesInfo, g.Call); fn != nil {
		var fact SignalsDone
		if pass.ImportObjectFact(fn, &fact) && enclosing != nil && hasJoinPoint(pass, enclosing) {
			return
		}
		pass.Reportf(g.Pos(), "go %s has no provable join: callee does not signal completion into a Wait/receive in the spawning function", fn.Name())
		return
	}
	pass.Reportf(g.Pos(), "go statement has no provable join (dynamic callee)")
}

// bodySignalsDone reports whether a function body calls
// sync.WaitGroup.Done or closes / sends on a channel — the exportable
// "this worker signals completion" property.
func bodySignalsDone(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if _, ok := wgMethodTarget(pass, v, "Done"); ok {
				found = true
			}
			if fun, ok := v.Fun.(*ast.Ident); ok && fun.Name == "close" && len(v.Args) == 1 {
				if _, ok := chanIdentity(pass, v.Args[0]); ok {
					found = true
				}
			}
		case *ast.SendStmt:
			found = true
		}
		return !found
	})
	return found
}

// hasJoinPoint reports whether the block contains any WaitGroup Wait
// call or channel receive — the loose join requirement for go calls of
// fact-carrying named workers.
func hasJoinPoint(pass *analysis.Pass, block *ast.BlockStmt) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if _, ok := wgMethodTarget(pass, v, "Wait"); ok {
				found = true
			}
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// receivesAny reports whether the block receives from (or ranges over)
// any of the identified channels.
func receivesAny(pass *analysis.Pass, block *ast.BlockStmt, ids map[string]bool) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				if id, ok := chanIdentity(pass, v.X); ok && ids[id] {
					found = true
				}
			}
		case *ast.RangeStmt:
			if id, ok := chanIdentity(pass, v.X); ok && ids[id] {
				if t := pass.TypesInfo.TypeOf(v.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// wgMethodTarget matches a call of the named sync.WaitGroup method and
// returns the identity of the WaitGroup it targets.
func wgMethodTarget(pass *analysis.Pass, call *ast.CallExpr, method string) (string, bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	recv, ok := fn.Type().(*types.Signature)
	if !ok || recv.Recv() == nil {
		return "", false
	}
	if named, ok := derefNamed(recv.Recv().Type()); !ok || named.Obj().Name() != "WaitGroup" {
		return "", false
	} else {
		_ = named
	}
	return identity(pass, sel.X)
}

// chanIdentity returns the identity of a channel-typed expression.
func chanIdentity(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return "", false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return "", false
	}
	return identity(pass, expr)
}

// identity names a variable or struct field stably: struct fields as
// "pkg.Type.field" (so the worker's s.wg and Drain's s.wg agree across
// methods), other objects by their declaration position.
func identity(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(x)
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("obj@%d", obj.Pos()), true
	case *ast.SelectorExpr:
		s := pass.TypesInfo.Selections[x]
		if s == nil {
			return "", false
		}
		if named, ok := derefNamed(s.Recv()); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + s.Obj().Name(), true
		}
	}
	return "", false
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
