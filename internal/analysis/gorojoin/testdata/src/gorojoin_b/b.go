package gorojoin_b

import (
	"sync"

	"gorojoin_a"
)

type Pool struct {
	wg    sync.WaitGroup
	queue chan int
}

// Start's worker Done()s the struct-field WaitGroup; the Wait lives in
// Drain — the cross-method scheduler-pool idiom.
func (p *Pool) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for range p.queue {
		}
	}()
}

func (p *Pool) Drain() {
	close(p.queue)
	p.wg.Wait()
}

func goodLocal() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func goodClose() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

func goodSend() {
	errs := make(chan error, 1)
	go func() {
		errs <- nil
	}()
	<-errs
}

func goodFact(wg *sync.WaitGroup) {
	wg.Add(1)
	go gorojoin_a.Worker(wg)
	wg.Wait()
}

func badDetached() {
	go func() {}() // want `no provable join`
}

func badNoWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `no provable join`
		defer wg.Done()
	}()
}

func badFactNoWait(wg *sync.WaitGroup) {
	go gorojoin_a.Worker(wg) // want `no provable join`
}

func badSilent(done chan struct{}) {
	go gorojoin_a.Silent() // want `no provable join`
	<-done
}

func allowedDetached() {
	//sitlint:allow gorojoin — fixture: fire-and-forget by design
	go func() {}()
}
