package gorojoin_a

import "sync"

// Worker signals completion through the WaitGroup, so spawners that
// Wait on it get the SignalsDone fact credit.
func Worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

// Silent never signals completion.
func Silent() {}
