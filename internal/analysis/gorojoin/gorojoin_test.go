package gorojoin_test

import (
	"testing"

	"sitam/internal/analysis/analysistest"
	"sitam/internal/analysis/gorojoin"
)

func TestFixtures(t *testing.T) {
	oldScope := gorojoin.Scope
	gorojoin.Scope = map[string]bool{"gorojoin_b": true}
	defer func() { gorojoin.Scope = oldScope }()
	analysistest.Run(t, gorojoin.Analyzer, "gorojoin_a", "gorojoin_b")
}
