package lockorder_b

import (
	"sync"

	"lockorder_a"
)

type Guard struct {
	Mu sync.Mutex
}

func goodCross(o *lockorder_a.Outer) {
	lockorder_a.LockInner(o)
}

func badCross(g *Guard, o *lockorder_a.Outer) {
	g.Mu.Lock()
	defer g.Mu.Unlock()
	lockorder_a.LockInner(o) // want `lock-order inversion`
}
