package lockorder_a

import "sync"

type Outer struct {
	Mu sync.Mutex
	In Inner
}

type Inner struct {
	Mu sync.Mutex
}

func use(o *Outer) {}

// LockInner is the exported helper fixture b calls to exercise the
// imported Acquires fact.
func LockInner(o *Outer) {
	o.In.Mu.Lock()
	defer o.In.Mu.Unlock()
}

func lockOuter(o *Outer) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
}

func goodDefer(o *Outer) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	use(o)
}

func goodManual(o *Outer) {
	o.Mu.Lock()
	use(o)
	o.Mu.Unlock()
}

func goodNested(o *Outer) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.In.Mu.Lock()
	defer o.In.Mu.Unlock()
}

func badReturn(o *Outer, x bool) {
	o.Mu.Lock()
	if x {
		return // want `return while lockorder_a\.Outer\.Mu .*still held`
	}
	o.Mu.Unlock()
}

func badLeak(o *Outer) {
	o.Mu.Lock() // want `not released on every path`
	use(o)
}

func badInversion(o *Outer) {
	o.In.Mu.Lock()
	defer o.In.Mu.Unlock()
	o.Mu.Lock() // want `lock-order inversion`
	defer o.Mu.Unlock()
}

func badSelf(o *Outer) {
	o.Mu.Lock()
	defer o.Mu.Unlock()
	o.Mu.Lock() // want `self-deadlock` `not released on every path`
}

func badIndirect(o *Outer) {
	o.In.Mu.Lock()
	defer o.In.Mu.Unlock()
	lockOuter(o) // want `lock-order inversion`
}

func allowedLeak(o *Outer) {
	o.Mu.Lock() //sitlint:allow lockorder — fixture: released by caller
	use(o)
}
